// Quickstart: colocate one latency-sensitive model with one best-effort
// model under SGDRC on a simulated RTX A2000, and print what the paper's
// abstract promises — SLO attainment for the LS service AND best-effort
// throughput at the same time.
//
//   ./quickstart
#include <cstdio>

#include "core/harness.h"
#include "core/sgdrc_policy.h"

using namespace sgdrc;
using namespace sgdrc::core;

int main() {
  // 1. Pick a GPU and a workload: MobileNetV3 serving real-time requests,
  //    DenseNet161 crunching batches in the background.
  HarnessOptions options;
  options.spec = gpusim::rtx_a2000();
  options.ls_letters = "ABFG";  // Tab. 3: MobileNetV3/SqueezeNet/MobileBert/MobileViT
  options.be_letters = "J";   // Tab. 3: DenseNet161
  options.utilization = 0.8;
  options.duration = 1 * kNsPerSec;

  // 2. The harness runs the paper's offline phase: per-kernel profiling
  //    (min TPCs, memory-boundedness), SPT kernel transformation, SLO
  //    derivation and trace generation.
  ServingHarness harness(options);
  std::printf("offline profiling done: MobileNetV3 isolated latency %s\n",
              format_time(harness.isolated_latency(0)).c_str());

  // 3. The online phase: SGDRC's tidal SM masking + bimodal tensors.
  SgdrcPolicy sgdrc(options.spec);
  const auto metrics = harness.run(sgdrc, /*spt=*/true);

  std::printf("\n=== SGDRC on %s ===\n", options.spec.name.c_str());
  for (const auto& t : metrics.tenants) {
    if (t.qos == workload::QosClass::kLatencySensitive) {
      std::printf("LS %-14s p99 %.3f ms (SLO %.3f ms) attainment %.1f%%\n",
                  t.name.c_str(), t.p99_ms(), to_ms(t.slo),
                  100.0 * t.attainment());
    } else {
      std::printf("BE %-14s %.1f samples/s (%llu evictions)\n",
                  t.name.c_str(), t.samples() / to_sec(metrics.duration),
                  static_cast<unsigned long long>(t.evictions));
    }
  }
  std::printf("overall throughput: %.1f samples/s\n",
              metrics.overall_throughput());
  return 0;
}
