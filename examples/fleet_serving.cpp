// Fleet serving with a load spike: 4 GPUs running SGDRC per device,
// 3 latency-sensitive tenants (3 replicas for tenant A, 2 for the rest)
// and 4 best-effort tenants sharded by QoS-aware placement. Midway
// through the run, tenant A's request rate jumps 3×; the example
// compares routing strategies under that spike — blind round-robin
// splits it evenly across A's replicas no matter how uneven their
// co-tenancy is, while the load-aware routers rebalance toward
// whichever device has headroom at each instant.
//
//   ./fleet_serving
#include <algorithm>
#include <cstdio>
#include <memory>

#include "common/table.h"
#include "core/profiler.h"
#include "core/sgdrc_policy.h"
#include "fleet/fleet.h"
#include "models/zoo.h"
#include "workload/trace.h"

using namespace sgdrc;
using namespace sgdrc::fleet;

namespace {

constexpr TimeNs kDuration = 1 * kNsPerSec;
constexpr TimeNs kSpikeStart = 300 * kNsPerMs;
constexpr TimeNs kSpikeEnd = 700 * kNsPerMs;
constexpr double kSpikeFactor = 3.0;

std::vector<workload::Request> spiky_trace(
    const std::vector<double>& base_rates) {
  workload::TraceOptions base;
  base.services = static_cast<unsigned>(base_rates.size());
  base.duration = kDuration;
  base.per_service_rates = base_rates;
  base.seed = 0x5b1ce;
  auto trace = workload::generate_apollo_like_trace(base);

  // The spike: extra tenant-A traffic inside [kSpikeStart, kSpikeEnd).
  workload::TraceOptions spike;
  spike.services = 1;
  spike.duration = kSpikeEnd - kSpikeStart;
  spike.per_service_rates = {base_rates[0] * (kSpikeFactor - 1.0)};
  spike.seed = 0x5b1ce ^ 0xa;
  for (auto r : workload::generate_apollo_like_trace(spike)) {
    trace.push_back({r.arrival + kSpikeStart, 0});
  }
  std::sort(trace.begin(), trace.end(),
            [](const workload::Request& a, const workload::Request& b) {
              return a.arrival < b.arrival;
            });
  return trace;
}

void report(const std::string& router, const FleetMetrics& m) {
  std::printf("router: %s\n", router.c_str());
  TextTable t({"tenant", "class", "p99 (ms)", "SLO att.", "served",
               "samples/s"});
  for (const auto& tm : m.tenants) {
    const bool ls = tm.qos == workload::QosClass::kLatencySensitive;
    t.add_row({tm.name, workload::qos_name(tm.qos),
               ls ? TextTable::num(tm.p99_ms(), 2) : "-",
               ls ? TextTable::pct(tm.attainment()) : "-",
               ls ? std::to_string(tm.served) : "-",
               ls ? "-"
                  : TextTable::num(tm.samples() / to_sec(m.duration), 1)});
  }
  t.print();
  std::printf("  routed per device:");
  for (const uint64_t r : m.routed) std::printf(" %lu", (unsigned long)r);
  std::printf("   (imbalance cv %.3f, max/mean %.2f)\n",
              m.imbalance_cv(), m.imbalance_max_over_mean());
  std::printf("  fleet: %.1f%% attainment, %.0f goodput/s, %.1f BE "
              "samples/s, p99 %.2f ms\n\n",
              100.0 * m.mean_attainment(), m.ls_goodput(),
              m.be_throughput(), m.fleet_p99_ms());
}

}  // namespace

int main() {
  const auto spec = gpusim::rtx_a2000();
  core::OfflineProfiler profiler(spec);

  auto ls_a = models::make_model('A');
  auto ls_b = models::make_model('B');
  auto ls_c = models::make_model('C');
  auto be_i = models::make_model('I');
  auto be_j = models::make_model('J');
  auto be_k = models::make_model('K');
  for (auto* m : {&ls_a, &ls_b, &ls_c, &be_i, &be_j, &be_k}) {
    profiler.profile(*m);
  }
  const TimeNs iso_a = profiler.isolated_latency(ls_a);
  const TimeNs iso_b = profiler.isolated_latency(ls_b);
  const TimeNs iso_c = profiler.isolated_latency(ls_c);

  // Base load: each LS tenant at ~50% of one replica's capacity, so a
  // replica pair has slack — until the spike eats it.
  const std::vector<double> rates{0.5 / to_sec(iso_a), 0.5 / to_sec(iso_b),
                                  0.5 / to_sec(iso_c)};
  const auto trace = spiky_trace(rates);

  std::vector<FleetTenantSpec> tenants{
      // The spiking tenant gets 3 replicas; its siblings get 2, so A's
      // replicas face unequal co-tenancy — the asymmetry load-aware
      // routing exploits and blind rotation cannot.
      replicated(core::latency_sensitive_tenant(ls_a, iso_a), 3),
      replicated(core::latency_sensitive_tenant(ls_b, iso_b), 2),
      replicated(core::latency_sensitive_tenant(ls_c, iso_c), 2),
      replicated(core::best_effort_tenant(be_i), 2),
      replicated(core::best_effort_tenant(be_j), 2),
      replicated(core::best_effort_tenant(be_k), 2),
      replicated(core::best_effort_tenant(be_i), 2),  // second I instance
  };

  std::printf("fleet serving on 4× %s: 3 LS (3+2+2 replicas) + 4 BE "
              "tenants, %zu requests,\ntenant A spikes %.0fx in "
              "[%.0f ms, %.0f ms)\n\n",
              spec.name.c_str(), trace.size(), kSpikeFactor,
              to_ms(kSpikeStart), to_ms(kSpikeEnd));

  const PolicyFactory sgdrc_per_device =
      [](const gpusim::GpuSpec& gs) -> std::unique_ptr<control::Controller> {
    return std::make_unique<core::SgdrcPolicy>(gs);
  };

  std::unique_ptr<Router> routers[] = {
      std::make_unique<RoundRobinRouter>(),
      std::make_unique<LeastOutstandingRouter>(),
      std::make_unique<QosLoadAwareRouter>(),
  };
  for (auto& router : routers) {
    FleetConfig cfg;
    cfg.spec = spec;
    cfg.devices = 4;
    cfg.duration = kDuration;
    cfg.slo_multiplier = 4.0;
    cfg.seed = 0xf1ee7;
    cfg.dispatch_latency = 2 * kNsPerUs;
    cfg.dispatch_jitter = 3 * kNsPerUs;
    QosAwarePlacement placement;
    FleetSim fleet(cfg, tenants, placement, *router, sgdrc_per_device);
    report(router->name(), fleet.run(trace));
  }

  std::printf(
      "Reading: round-robin splits the spike evenly across tenant A's\n"
      "three replicas no matter how deep their queues get;\n"
      "least-outstanding drains to whichever replica is free, and the\n"
      "QoS-load-aware router also dodges devices busy with other\n"
      "tenants' work. The BE tenants keep their tide-pool throughput on\n"
      "every device throughout.\n");
  return 0;
}
