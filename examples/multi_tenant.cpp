// N-way colocation through the tenant API: two latency-sensitive
// services plus TWO best-effort tenants co-resident at the same time on
// one RTX A2000 — a scenario the old hardcoded LS/BE-pair API could not
// express. Compares §9.2's round-robin BE rotation against concurrent
// co-residency under SGDRC, per tenant.
//
//   ./multi_tenant
#include <cstdio>

#include "common/table.h"
#include "core/profiler.h"
#include "core/serving.h"
#include "core/sgdrc_policy.h"
#include "models/zoo.h"
#include "workload/trace.h"

using namespace sgdrc;
using namespace sgdrc::core;

namespace {

void report(const char* mode, const workload::ServingMetrics& m) {
  std::printf("BE mode: %s\n", mode);
  TextTable t({"tenant", "class", "p99 (ms)", "SLO att.", "samples/s",
               "evictions"});
  for (const auto& tm : m.tenants) {
    const bool ls = tm.qos == workload::QosClass::kLatencySensitive;
    t.add_row({tm.name, workload::qos_name(tm.qos),
               ls ? TextTable::num(tm.p99_ms(), 2) : "-",
               ls ? TextTable::pct(tm.attainment()) : "-",
               ls ? "-" : TextTable::num(tm.samples() / to_sec(m.duration), 1),
               ls ? "-" : std::to_string(tm.evictions)});
  }
  t.print();
  std::printf("mean attainment %.1f%%, BE %.1f samples/s, overall %.0f/s\n\n",
              100.0 * m.mean_attainment(), m.be_throughput(),
              m.overall_throughput());
}

}  // namespace

int main() {
  const auto spec = gpusim::rtx_a2000();
  OfflineProfiler profiler(spec);

  // Offline phase for all four tenants' models (min-TPC counts and
  // memory-boundedness feed the tidal scheduler).
  auto ls_a = models::make_model('A');  // MobileNetV3
  auto ls_b = models::make_model('B');  // SqueezeNet
  auto be_i = models::make_model('I');
  auto be_j = models::make_model('J');
  for (auto* m : {&ls_a, &ls_b, &be_i, &be_j}) profiler.profile(*m);
  const TimeNs iso_a = profiler.isolated_latency(ls_a);
  const TimeNs iso_b = profiler.isolated_latency(ls_b);

  // One shared trace: both LS services at ~25% of serialized capacity.
  workload::TraceOptions topt;
  topt.services = 2;
  topt.duration = 1 * kNsPerSec;
  topt.per_service_rates = {0.25 / to_sec(iso_a), 0.25 / to_sec(iso_b)};
  topt.seed = 0x7e7a;
  const auto trace = workload::generate_apollo_like_trace(topt);

  std::printf("multi-tenant colocation on %s: 2 LS + 2 BE tenants, %zu "
              "requests\n\n",
              spec.name.c_str(), trace.size());

  for (const auto mode : {BeMode::kRoundRobin, BeMode::kConcurrent}) {
    SgdrcPolicy policy(spec);
    const auto sim = ServingSimBuilder()
                         .gpu(spec)
                         .duration(topt.duration)
                         .best_effort_mode(mode)
                         .add_latency_sensitive(ls_a, iso_a)
                         .add_latency_sensitive(ls_b, iso_b)
                         .add_best_effort(be_i)
                         .add_best_effort(be_j)
                         .build(policy);
    report(mode == BeMode::kRoundRobin ? "round-robin (§9.2 rotation)"
                                       : "concurrent (both BE resident)",
           sim->run(trace));
  }

  std::printf(
      "Reading: the rotation serves one BE tenant at a time (batches\n"
      "alternate); concurrent mode keeps both resident and SGDRC's tide\n"
      "pool is shared — per-tenant progress is now visible because every\n"
      "workload owns a TenantId-keyed metrics slot.\n");
  return 0;
}
