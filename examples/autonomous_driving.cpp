// The paper's motivating scenario (§1): an autonomous-driving inference
// fleet — eight latency-sensitive perception/NLP models replaying an
// Apollo-like real-time trace — colocated with best-effort batch jobs on
// one Tesla P40. Compares SGDRC against MPS head-to-head.
//
//   ./autonomous_driving
#include <cstdio>

#include "baselines/baseline_policies.h"
#include "common/table.h"
#include "core/harness.h"
#include "core/sgdrc_policy.h"

using namespace sgdrc;
using namespace sgdrc::core;

int main() {
  HarnessOptions options;
  options.spec = gpusim::tesla_p40();
  options.ls_letters = "ABCDEFGH";  // the full Tab. 3 LS fleet
  options.be_letters = "IJK";       // rotating BE batch jobs
  options.utilization = 1.45;       // heavy: the original trace rate
  options.burstiness = 0.35;
  options.duration = 2 * kNsPerSec;
  ServingHarness harness(options);

  std::printf("replaying %zu requests over %s on %s (8 LS services x 4 "
              "instances + BE rotation I/J/K)\n\n",
              harness.trace().size(),
              format_time(options.duration).c_str(),
              options.spec.name.c_str());

  SgdrcPolicy sgdrc(options.spec);
  baselines::MpsPolicy mps(options.spec);
  const auto m_sgdrc = harness.run(sgdrc, /*spt=*/true);
  const auto m_mps = harness.run(mps, /*spt=*/false);

  TextTable t({"LS service", "SLO (ms)", "SGDRC p99 (ms)", "MPS p99 (ms)",
               "SGDRC att.", "MPS att."});
  const auto ls_sgdrc =
      m_sgdrc.of_class(workload::QosClass::kLatencySensitive);
  const auto ls_mps = m_mps.of_class(workload::QosClass::kLatencySensitive);
  for (size_t s = 0; s < ls_sgdrc.size(); ++s) {
    const auto& a = *ls_sgdrc[s];
    const auto& b = *ls_mps[s];
    t.add_row({a.name, TextTable::num(to_ms(a.slo), 2),
               TextTable::num(a.p99_ms(), 2), TextTable::num(b.p99_ms(), 2),
               TextTable::pct(a.attainment()), TextTable::pct(b.attainment())});
  }
  t.print();

  std::printf("\nSGDRC: attainment %.1f%%, BE %.1f samples/s, overall %.0f/s\n",
              100.0 * m_sgdrc.mean_attainment(), m_sgdrc.be_throughput(),
              m_sgdrc.overall_throughput());
  std::printf("MPS:   attainment %.1f%%, BE %.1f samples/s, overall %.0f/s\n",
              100.0 * m_mps.mean_attainment(), m_mps.be_throughput(),
              m_mps.overall_throughput());
  std::printf(
      "\nMPS splits thread slices but cannot isolate intra-SM resources or\n"
      "VRAM channels (§9.3) — the perception fleet's tail pays for it.\n");
  return 0;
}
