// One "day" of dynamic serving, compressed into 1.2 simulated seconds:
//
//   * morning   — light diurnal traffic ramps up (0.4x → 1.6x, sine)
//   * 10:00     — a new LS service launches (tenant arrival, model D)
//   * noon      — a batch team drops a best-effort backfill job on the
//                 fleet (BE arrival)
//   * evening   — service A's traffic flash-crowds 4x; the reactive
//                 autoscaler adds a replica and retires it when the
//                 crowd leaves
//   * 22:00     — the on-call tightens every SLO to 0.75x for the
//                 nightly latency audit
//
// All of it is one workload::Scenario script; the engine compiles the
// rate timeline into a trace and drives a 3-GPU fleet running SGDRC on
// every device. This is the template for scripting your own dynamics.
//
//   ./dynamic_day
#include <cstdio>

#include "common/table.h"
#include "core/profiler.h"
#include "core/sgdrc_policy.h"
#include "models/zoo.h"
#include "workload/scenario.h"

using namespace sgdrc;
using namespace sgdrc::workload;

int main() {
  const auto spec = gpusim::rtx_a2000();
  core::OfflineProfiler profiler(spec);

  auto ls_a = models::make_model('A');
  auto ls_b = models::make_model('B');
  auto ls_d = models::make_model('D');
  auto be_i = models::make_model('I');
  auto be_j = models::make_model('J');
  for (auto* m : {&ls_a, &ls_b, &ls_d, &be_i, &be_j}) profiler.profile(*m);
  const TimeNs iso_a = profiler.isolated_latency(ls_a);
  const TimeNs iso_b = profiler.isolated_latency(ls_b);
  const TimeNs iso_d = profiler.isolated_latency(ls_d);

  const TimeNs day = 1200 * kNsPerMs;  // 1 "hour" = 50 ms
  auto hour = [day](unsigned h) { return day * h / 24; };

  // The script. Initial mix: A and B serving since midnight, one
  // overnight batch job. Service indices: A=0, B=1, D=2 (it arrives).
  Scenario sc("dynamic-day", "a compressed day of dynamic serving", day);
  sc.devices(3)
      .diurnal(0.4, 1.6, 12)
      .arrive(hour(10),
              {core::latency_sensitive_tenant(ls_d, iso_d),
               0.45 / to_sec(iso_d), 2})
      .arrive(hour(12), {core::best_effort_tenant(be_j), 0.0, 2})
      .rate(0, hour(18), 4.0)   // the evening crowd piles onto A
      .rate(0, hour(21), 1.0)   // and disperses
      .slo_factor(hour(22), 0.75);
  fleet::AutoscalerOptions aso;
  aso.interval = 10 * kNsPerMs;
  aso.scale_up_outstanding = 5.0;
  aso.scale_down_outstanding = 0.3;
  aso.cooldown_ticks = 3;
  sc.autoscale(aso);

  const std::vector<ScenarioTenant> initial{
      {core::latency_sensitive_tenant(ls_a, iso_a), 0.5 / to_sec(iso_a), 2},
      {core::latency_sensitive_tenant(ls_b, iso_b), 0.5 / to_sec(iso_b), 2},
      {core::best_effort_tenant(be_i), 0.0, 2},
  };

  ScenarioEngineConfig cfg;
  cfg.spec = spec;
  cfg.slo_multiplier = 4.0;
  cfg.seed = 0xda7;
  cfg.dispatch_latency = 2 * kNsPerUs;
  cfg.dispatch_jitter = 3 * kNsPerUs;

  std::printf("dynamic day on 3x %s: %s\n\n", spec.name.c_str(),
              sc.description().c_str());

  fleet::QosAwarePlacement placement;
  fleet::QosLoadAwareRouter router;
  const auto out = run_scenario(
      sc, initial, cfg, placement, router,
      [](const gpusim::GpuSpec& gs) -> std::unique_ptr<control::Controller> {
        return std::make_unique<core::SgdrcPolicy>(gs);
      });

  TextTable t({"tenant", "class", "p99 (ms)", "SLO att.", "served",
               "samples/s"});
  for (const auto& tm : out.metrics.tenants) {
    const bool ls = tm.qos == QosClass::kLatencySensitive;
    t.add_row({tm.name, qos_name(tm.qos),
               ls ? TextTable::num(tm.p99_ms(), 2) : "-",
               ls ? TextTable::pct(tm.attainment()) : "-",
               ls ? std::to_string(tm.served) : "-",
               ls ? "-"
                  : TextTable::num(tm.samples() / to_sec(day), 1)});
  }
  t.print();

  std::printf("\n%zu requests; fleet p99 %.2f ms, %.1f%% attainment, "
              "%.0f goodput/s, %.1f BE samples/s\n",
              out.requests, out.metrics.fleet_p99_ms(),
              100.0 * out.metrics.mean_attainment(),
              out.metrics.ls_goodput(), out.metrics.be_throughput());

  std::printf("\nautoscaler log (%zu actions):\n", out.scaling.size());
  for (const auto& s : out.scaling) {
    std::printf("  %6.0f ms  %-10s tenant %u on device %u -> %zu "
                "replica%s\n",
                to_ms(s.at), s.scale_up ? "scale-up" : "scale-down",
                s.tenant, s.device, s.replicas_after,
                s.replicas_after == 1 ? "" : "s");
  }
  std::printf(
      "\nReading: the diurnal trough leaves the GPUs to the batch jobs\n"
      "(monopolisation), the noon peak and the evening crowd trigger\n"
      "scale-ups that drain away once load falls, and the SLO tighten\n"
      "shows up as a lower attainment tail after hour 22 — all from one\n"
      "Scenario script.\n");
  return 0;
}
