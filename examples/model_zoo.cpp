// A model zoo under VRAM pressure: 12 LS services drawn from the small
// and mid-size profiled models on a 3-GPU fleet whose modeled VRAM is
// squeezed to 48 MB per device — far below the zoo's registered
// footprint — with services launching and retiring mid-run.
// Weights load on first touch, evict under pressure, and demand-page
// when nothing can be freed.
//
// The same scripted day runs twice: once behind the residency-blind
// least-outstanding router, once behind the warm-weight router that
// steers each request toward a replica whose weights are already
// resident. The printout compares the cold-start rate and tail each
// stack pays.
//
//   ./model_zoo
#include <cstdio>
#include <string>
#include <vector>

#include "common/table.h"
#include "core/profiler.h"
#include "core/sgdrc_policy.h"
#include "models/zoo.h"
#include "workload/scenario.h"

using namespace sgdrc;
using namespace sgdrc::workload;

namespace {

struct Zoo {
  std::vector<models::ModelDesc> models;
  std::vector<TimeNs> iso;
};

Zoo profile_zoo(const gpusim::GpuSpec& spec) {
  core::OfflineProfiler profiler(spec);
  Zoo z;
  for (const char c : std::string("ABCDFGHABCDF")) {  // 12 services
    models::ModelDesc m = models::make_model(c);
    profiler.profile(m);
    z.iso.push_back(profiler.isolated_latency(m));
    z.models.push_back(std::move(m));
  }
  return z;
}

ScenarioTenant tenant_for(const Zoo& z, size_t i) {
  // Light per-service traffic: the interesting contention here is VRAM,
  // not SM time.
  return {core::latency_sensitive_tenant(z.models[i], z.iso[i]),
          0.15 / to_sec(z.iso[i]), 2};
}

ScenarioOutcome run_zoo(const Zoo& z, const gpusim::GpuSpec& spec,
                        const memory::MemoryOptions& mem, bool warm_routing) {
  const TimeNs day = 600 * kNsPerMs;
  // Services 0-7 serve from t=0; 8-11 launch through the morning; the
  // two oldest retire in the afternoon — a steady churn of model
  // registrations the evictor has to make room for.
  Scenario sc("model-zoo-day", "12-model zoo under VRAM pressure", day);
  sc.devices(3).memory(mem);
  std::vector<ScenarioTenant> initial;
  for (size_t i = 0; i < 8; ++i) initial.push_back(tenant_for(z, i));
  for (size_t i = 8; i < 12; ++i) {
    sc.arrive(day * (i - 7) / 8, tenant_for(z, i));
  }
  sc.depart(day / 2, 0);
  sc.depart(day * 5 / 8, 1);

  ScenarioEngineConfig cfg;
  cfg.spec = spec;
  cfg.slo_multiplier = 8.0;
  cfg.seed = 0x200;

  fleet::QuotaAwarePlacement placement(spec.num_tpcs,
                                       mem.vram_bytes_override);
  fleet::WarmWeightRouter warm;
  fleet::LeastOutstandingRouter blind;
  fleet::Router& router =
      warm_routing ? static_cast<fleet::Router&>(warm) : blind;
  return run_scenario(
      sc, initial, cfg, placement, router,
      [](const gpusim::GpuSpec& gs) -> std::unique_ptr<control::Controller> {
        return std::make_unique<core::SgdrcPolicy>(gs);
      });
}

double cold_rate(const fleet::FleetMetrics& m) {
  uint64_t served = 0;
  for (const auto& t : m.tenants) served += t.served;
  return served ? static_cast<double>(m.cold_requests()) /
                      static_cast<double>(served)
                : 0.0;
}

}  // namespace

int main() {
  const auto spec = gpusim::rtx_a2000();
  const Zoo z = profile_zoo(spec);

  uint64_t footprint = 0;
  for (const auto& m : z.models) footprint += m.weight_bytes();

  memory::MemoryOptions mem;
  mem.enabled = true;
  mem.vram_bytes_override = 48ull << 20;
  mem.oversubscribe = true;
  mem.load_gbps = 8.0;

  std::printf("model zoo on 3x %s: 12 services, %.0f MB of weights vs "
              "%.0f MB modeled VRAM per device\n\n",
              spec.name.c_str(),
              static_cast<double>(footprint) / (1024.0 * 1024.0),
              static_cast<double>(mem.vram_bytes_override) /
                  (1024.0 * 1024.0));

  const auto blind = run_zoo(z, spec, mem, /*warm_routing=*/false);
  const auto warm = run_zoo(z, spec, mem, /*warm_routing=*/true);

  TextTable t({"router", "fleet p99 ms", "cold p99 ms", "cold req",
               "cold rate", "loads", "evict", "paged", "SLO att."});
  for (const auto* o : {&blind, &warm}) {
    const auto& m = o->metrics;
    const double cp = m.cold_start_p99_ms();
    t.add_row({o == &warm ? "warm-weight" : "least-outstanding",
               TextTable::num(m.fleet_p99_ms(), 2),
               std::isnan(cp) ? "-" : TextTable::num(cp, 2),
               std::to_string(m.cold_requests()),
               TextTable::pct(cold_rate(m)),
               std::to_string(m.weight_loads()),
               std::to_string(m.weight_evictions()),
               std::to_string(m.paged_requests()),
               TextTable::pct(m.mean_attainment())});
  }
  t.print();

  std::printf("\nper-service residency traffic (warm-weight run):\n");
  TextTable pt({"service", "weights MB", "served", "cold req", "loads",
                "evictions", "paged"});
  // Fleet tenants sit in script order: initial services 0-7, then the
  // four arrivals — the same order as the zoo list.
  for (size_t i = 0; i < warm.metrics.tenants.size(); ++i) {
    const auto& tm = warm.metrics.tenants[i];
    if (tm.qos != QosClass::kLatencySensitive) continue;
    const double mb = i < z.models.size()
                          ? static_cast<double>(z.models[i].weight_bytes()) /
                                (1024.0 * 1024.0)
                          : 0.0;
    pt.add_row({tm.name, TextTable::num(mb, 1),
                std::to_string(tm.served),
                std::to_string(tm.cold_latency.count()),
                std::to_string(tm.weight_loads),
                std::to_string(tm.weight_evictions),
                std::to_string(tm.paged_requests)});
  }
  pt.print();

  std::printf(
      "\nReading: both stacks register the same models and run the same\n"
      "quota-aware evictor; the only difference is routing. The blind\n"
      "router keeps bouncing traffic onto whichever replica is idlest,\n"
      "re-warming (and re-evicting) weights on both replicas of every\n"
      "service; the warm-weight router concentrates each service on a\n"
      "resident replica, so the fleet pays a fraction of the cold-start\n"
      "requests, DMA loads, and demand-paged requests for the same SLO\n"
      "attainment.\n");
  return 0;
}
