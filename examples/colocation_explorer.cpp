// Explore the resource-control space SGDRC exposes: sweep the BE channel
// share (ChBE) and the BE model choice on an RTX A2000, showing how the
// software-defined knobs trade LS tail latency against BE throughput —
// the capability NVIDIA exposes no interface for (§1 challenge 2).
//
//   ./colocation_explorer
#include <cstdio>

#include "common/table.h"
#include "core/harness.h"
#include "core/sgdrc_policy.h"

using namespace sgdrc;
using namespace sgdrc::core;

int main() {
  std::printf(
      "SGDRC colocation explorer — RTX A2000, MobileNetV3+EfficientNet LS\n\n");

  for (const char be_model : {'I', 'J', 'K'}) {
    HarnessOptions options;
    options.spec = gpusim::rtx_a2000();
    options.ls_letters = "AD";
    options.be_letters = std::string(1, be_model);
    options.utilization = 0.4;
    options.duration = 1 * kNsPerSec;
    ServingHarness harness(options);

    std::printf("BE task: %s\n", harness.be_model(0).name.c_str());
    TextTable t({"ChBE", "BE channels", "LS worst p99 (ms)", "SLO att.",
                 "BE samples/s"});
    // ChBE rounds to whole channel groups (pairs on the A2000) so the
    // partition stays colorable at the 2 KiB granularity (Tab. 4).
    for (const double ch_be : {1.0 / 3, 2.0 / 3, 5.0 / 6}) {
      SgdrcOptions opt;
      opt.ch_be = ch_be;
      SgdrcPolicy policy(options.spec, opt);
      const auto m = harness.run(policy, true);
      double worst = 0;
      for (const auto* ls : m.of_class(workload::QosClass::kLatencySensitive)) {
        worst = std::max(worst, ls->p99_ms());
      }
      t.add_row({TextTable::num(ch_be, 2),
                 gpusim::channel_set_to_string(policy.be_channels()),
                 TextTable::num(worst, 2),
                 TextTable::pct(m.mean_attainment()),
                 TextTable::num(m.be_throughput(), 1)});
    }
    t.print();
    std::printf("\n");
  }
  std::printf(
      "Reading: more BE channels buy BE bandwidth at the cost of the LS\n"
      "tail; the paper fixes ChBE = 1/3 (§6). Channel sets round to whole\n"
      "channel groups so the partition stays colorable (Tab. 4).\n");
  return 0;
}
