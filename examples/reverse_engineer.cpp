// Reverse-engineer a black-box GPU's VRAM channel mapping end to end
// (§5 of the paper), through timing probes only:
//   1. calibrate hit/miss/bank-conflict thresholds (Mei&Chu-style),
//   2. discover the channels and their L2 fill sets (Algorithms 1-3),
//   3. collect majority-denoised samples and train the DNN,
//   4. build a lookup table and score it against the silicon oracle,
//   5. run the structure census (groups, region size → Tab. 4 rules).
//
//   ./reverse_engineer
#include <cstdio>

#include "gpusim/device.h"
#include "reveng/lut.h"
#include "reveng/permutation.h"
#include "reveng/pipeline.h"

using namespace sgdrc;
using namespace sgdrc::gpusim;
using namespace sgdrc::reveng;

int main() {
  // A small Ampere-like part keeps this example fast; swap in
  // tesla_p40() / rtx_a2000() for the full-size campaign (see
  // bench/sec53_hash_learning for those).
  GpuDevice dev(test_gpu(), /*process_seed=*/0x5eed);
  std::printf("GPU: %s — %u channels, %.1f GiB VRAM, noise %.0f%%\n",
              dev.spec().name.c_str(), dev.spec().num_channels,
              static_cast<double>(dev.spec().vram_bytes) / (1u << 30),
              100.0 * dev.spec().cache_noise_rate);

  PipelineOptions opt;
  opt.samples = 8000;
  opt.hidden = {64, 32};
  opt.train.epochs = 50;
  HashCracker cracker(dev, opt);
  const auto report = cracker.run();

  std::printf("\n-- campaign --\n");
  std::printf("thresholds: L2 miss > %s, bank conflict > %s\n",
              format_time(report.calibration.l2_miss_threshold).c_str(),
              format_time(report.calibration.bank_conflict_threshold).c_str());
  std::printf("channels discovered: %u\n", report.channels);
  std::printf("samples: %zu labelled, %zu unlabeled, %.1f%% raw probe noise\n",
              report.samples_collected, report.samples_unlabeled,
              100.0 * report.single_trial_noise);
  std::printf("timing probes issued: %llu\n",
              static_cast<unsigned long long>(report.probes));
  std::printf("DNN holdout accuracy (unseen addresses): %.2f%%\n",
              100.0 * report.holdout_accuracy);

  // Lookup table over the first 64 MiB, scored against the ground truth
  // the probes never saw.
  const auto lut = cracker.build_lut(0, 64ull << 20);
  std::printf("LUT accuracy vs silicon oracle: %.2f%%\n",
              100.0 * lut_oracle_accuracy(lut, dev.oracle(), 10000, 3));

  // Structure census — what Fig. 8/9 visualise.
  std::vector<int> labels;
  for (uint64_t p = 0; p < lut.partitions(); ++p) {
    labels.push_back(lut.channel_of(lut.start_pa() + p * kPartitionBytes));
  }
  const auto census = analyze_channel_labels(labels, report.channels);
  std::printf("\n-- structure --\n");
  std::printf("channel groups of %u, region size %u KiB "
              "(= max coloring granularity, Tab. 4)\n",
              census.region_size, census.region_size);
  std::printf("%zu permutation patterns, uniformity deviation %.1f%%\n",
              census.pattern_counts.size(),
              100.0 * census.pattern_uniform_deviation);
  return 0;
}
