// Dynamic request batching end-to-end: a latency-sensitive service
// (MobileNetV3, bursty Apollo-like arrivals) runs three ways beside two
// concurrent best-effort batch tenants —
//
//   1. unbatched               — every request is its own kernel launch;
//   2. batched, plain SGDRC    — requests assemble into batches of up to
//                                8 (1.5 ms assembly window), the stock
//                                tidal controller schedules them;
//   3. batched, batch-aware    — same workload, but the controller
//                                watches batch occupancy and holds the
//                                SM reservation wide enough for the
//                                batches it is actually seeing.
//
// Watch three numbers move: best-effort samples/s rises when batching
// amortises the LS service's launch overhead and weight traffic, the LS
// p99 *improves* under bursts (the queue drains in batches instead of
// one kernel at a time), and the batch-aware controller trims the tail
// the plain tide leaves on freshly assembled wide batches.
//
//   ./batched_serving
#include <cstdio>

#include "control/batch_aware.h"
#include "core/harness.h"
#include "core/sgdrc_policy.h"

using namespace sgdrc;
using namespace sgdrc::core;

namespace {

void report(const char* title, const workload::ServingMetrics& m) {
  const auto& ls = m.tenants[0];
  double occupancy = 1.0;
  if (!ls.batch_sizes.empty()) occupancy = ls.batch_sizes.mean();
  std::printf("%-28s p99 %6.2f ms  att %6.1f%%  occupancy %4.2f  "
              "BE %6.1f samples/s\n",
              title, ls.p99_ms(), 100.0 * ls.attainment(), occupancy,
              m.be_throughput());
}

}  // namespace

int main() {
  std::printf(
      "Dynamic request batching: one LS service + 2 concurrent BE tenants "
      "on an RTX A2000\n\n");

  HarnessOptions o;
  o.spec = gpusim::rtx_a2000();
  o.ls_letters = "A";
  o.be_letters = "IJ";
  o.utilization = 0.45;
  o.burstiness = 0.5;  // frame-aligned bursts: what batching eats
  o.duration = 1 * kNsPerSec;
  o.seed = 0xbea7;
  const ServingHarness h(o);

  const auto run = [&](bool batch, control::Controller& controller) {
    ServingSimBuilder b;
    b.gpu(o.spec)
        .duration(o.duration)
        .slo_multiplier(11.0)
        .best_effort_mode(BeMode::kConcurrent)
        .seed(o.seed);
    b.add_latency_sensitive(h.ls_model_spt(0), h.isolated_latency(0));
    if (batch) b.batching(workload::batch_up_to(8, 1500 * kNsPerUs));
    for (size_t i = 0; i < h.be_count(); ++i) {
      b.add_best_effort(h.be_model_spt(i));
    }
    return b.build(controller)->run(h.trace());
  };

  SgdrcPolicy unbatched(o.spec);
  SgdrcPolicy plain(o.spec);
  control::BatchAwareSgdrc aware(o.spec);

  const auto m_unbatched = run(false, unbatched);
  const auto m_plain = run(true, plain);
  const auto m_aware = run(true, aware);

  report("unbatched SGDRC", m_unbatched);
  report("batched, plain SGDRC", m_plain);
  report("batched, batch-aware SGDRC", m_aware);

  std::printf(
      "\nBatching frees GPU time (BE %+.0f%% vs unbatched) and drains "
      "bursts whole,\nso the LS tail improves too; the occupancy feedback "
      "loop keeps the tide\nsized for the batches actually running.\n",
      100.0 * (m_aware.be_throughput() / m_unbatched.be_throughput() - 1.0));
  return 0;
}
