// Software-defined vGPUs: declare per-tenant guarantees (hard TPC
// quota, channel share, priority) on the TenantSpec, let the control
// plane enforce them, and watch a latency-sensitive tenant hold its SLO
// against a best-effort flood that would otherwise bury it. Also shows
// the declarative Controller API end-to-end: a custom 20-line
// controller that emits ResourcePlans instead of poking the simulator.
//
//   ./vgpu_quota
#include <cstdio>

#include "control/controller.h"
#include "core/harness.h"
#include "core/sgdrc_policy.h"

using namespace sgdrc;
using namespace sgdrc::core;
using control::Allocation;
using control::ResourcePlan;
using control::SimView;

namespace {

// A minimal custom controller, to show what the Controller interface
// asks of you: look at the view, return a plan. This one statically
// splits the device — LS kernels on the guaranteed region, BE on the
// rest — with none of SGDRC's tidal finesse.
class NaiveSplitController : public control::Controller {
 public:
  std::string name() const override { return "naive-split"; }

  ResourcePlan plan(const SimView& view) override {
    ResourcePlan plan;
    const auto full = gpusim::full_tpc_mask(view.spec().num_tpcs);
    const auto all_ch = gpusim::all_channels(view.spec().num_channels);
    const auto ls_region =
        view.guaranteed_union(workload::QosClass::kLatencySensitive);
    for (const auto& job :
         view.waiting_jobs(workload::QosClass::kLatencySensitive)) {
      plan.launch(job.id, Allocation{ls_region ? ls_region : full, all_ch});
    }
    for (const auto& job :
         view.waiting_jobs(workload::QosClass::kBestEffort)) {
      const auto residual = full & ~ls_region;
      if (residual) plan.launch(job.id, Allocation{residual, all_ch});
    }
    return plan;
  }
};

void report(const char* title, const workload::ServingMetrics& m) {
  std::printf("\n=== %s ===\n", title);
  for (const auto& t : m.tenants) {
    if (t.qos == workload::QosClass::kLatencySensitive) {
      std::printf("LS %-14s p99 %6.2f ms (SLO %.2f ms) attainment %5.1f%%\n",
                  t.name.c_str(), t.p99_ms(), to_ms(t.slo),
                  100.0 * t.attainment());
    } else {
      std::printf("BE %-14s %6.1f samples/s\n", t.name.c_str(),
                  t.samples() / to_sec(m.duration));
    }
  }
  std::printf("guarantee violations: %llu\n",
              static_cast<unsigned long long>(m.guarantee_violations));
}

}  // namespace

int main() {
  HarnessOptions options;
  options.spec = gpusim::rtx_a2000();
  options.ls_letters = "A";    // MobileNetV3 serving real-time requests
  options.be_letters = "IJK";  // the batch flood
  options.utilization = 0.3;
  options.duration = 500 * kNsPerMs;
  ServingHarness harness(options);

  // The vGPU: three quarters of the TPCs hard-reserved, 60% of the VRAM
  // channels, top launch priority. The rest is the flood's residual.
  const control::VgpuSpec vgpu =
      control::guaranteed_vgpu((options.spec.num_tpcs * 3) / 4, 0.6, 1.0, 1);

  auto build = [&](control::Controller& controller, bool quota, bool spt) {
    ServingSimBuilder b;
    b.gpu(options.spec)
        .duration(options.duration)
        .slo_multiplier(6.5)
        .best_effort_mode(BeMode::kConcurrent);
    b.add_latency_sensitive(spt ? harness.ls_model_spt(0) : harness.ls_model(0),
                            harness.isolated_latency(0));
    if (quota) b.quota(vgpu);
    for (unsigned i = 0; i < 4; ++i) {  // four concurrent BE tenants
      const size_t m = i % harness.be_count();
      b.add_best_effort(spt ? harness.be_model_spt(m) : harness.be_model(m));
    }
    return b.build(controller);
  };

  std::printf("vGPU quota on %s: %u/%u TPCs + %.0f%% channels guaranteed "
              "to the LS tenant; 4 concurrent BE tenants flood the rest\n",
              options.spec.name.c_str(), vgpu.guaranteed_tpcs,
              options.spec.num_tpcs, 100.0 * vgpu.channel_share);

  {
    SgdrcPolicy sgdrc(options.spec);
    report("SGDRC + vGPU quota",
           build(sgdrc, /*quota=*/true, /*spt=*/true)->run(harness.trace()));
  }
  {
    SgdrcPolicy sgdrc(options.spec);
    report("SGDRC, no quota (pure tidal sharing)",
           build(sgdrc, /*quota=*/false, /*spt=*/true)->run(harness.trace()));
  }
  {
    NaiveSplitController naive;
    report("custom NaiveSplitController + quota",
           build(naive, /*quota=*/true, /*spt=*/false)->run(harness.trace()));
  }
  std::printf(
      "\nThe quota pins the LS tail regardless of the flood; the custom\n"
      "controller shows the Controller/ResourcePlan API in ~20 lines —\n"
      "the enforcer validates its plans against the same guarantees.\n");
  return 0;
}
