// vGPU quota isolation: a latency-sensitive tenant with a declared
// VgpuSpec guarantee (hard TPC region + channel share) against an
// adversarial flood of N concurrent best-effort batch tenants, swept
// over flood sizes × systems:
//
//   * SGDRC + quota   — the software-defined vGPU: the enforcer carves
//                       the region, the plan-emitting controller keeps
//                       the tide out of it;
//   * SGDRC           — same controller, no guarantees (pure tidal
//                       sharing — the pre-quota behaviour);
//   * Multi-streaming — no control at all; its traced plans trespass
//                       the regions, which the enforcer counts.
//
// The headline: with the quota, the LS tenant's p99 stays within its
// SLO in *every* flood cell while best-effort soaks the residual TPCs;
// without it, the flood drags the tail over the SLO as N grows.
//
//   ./vgpu_isolation [--quick] [--json BENCH_vgpu.json] [--seed N]
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "baselines/registry.h"
#include "bench_cli.h"
#include "common/json.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "core/harness.h"

using namespace sgdrc;
using namespace sgdrc::core;

namespace {

struct Cell {
  unsigned be_tenants = 1;
  std::string system;   // registry key
  bool quota = false;   // attach the VgpuSpec guarantee to the LS tenant
};

struct CellResult {
  Cell cell;
  workload::ServingMetrics metrics;
  TimeNs slo = 0;
};

std::string label(const Cell& c) {
  return c.quota ? c.system + " + quota" : c.system;
}

/// The guarantee under test: all but three SMs hard-reserved plus a 60%
/// channel share for the LS tenant — the flood lives off the residual.
/// (On the A2000's 2-channel groups the 60% share resolves to the same
/// 4/6 LS split as the controller default; declaring it pins that floor
/// against any regression that would hand BE a wider ChBE.)
control::VgpuSpec ls_guarantee(const gpusim::GpuSpec& spec) {
  return {/*guaranteed_tpcs=*/spec.num_tpcs - 3,
          /*channel_share=*/0.6, /*weight=*/1.0, /*priority=*/1};
}

CellResult run_cell(const ServingHarness& h, const Cell& cell,
                    double slo_multiplier) {
  const auto& sys = baselines::system(cell.system);
  ServingSimBuilder b;
  b.gpu(h.options().spec)
      .duration(h.options().duration)
      .slo_multiplier(slo_multiplier)
      .best_effort_mode(BeMode::kConcurrent)
      .seed(h.options().seed);
  b.add_latency_sensitive(sys.uses_spt ? h.ls_model_spt(0) : h.ls_model(0),
                          h.isolated_latency(0));
  if (cell.quota) b.quota(ls_guarantee(h.options().spec));
  for (unsigned i = 0; i < cell.be_tenants; ++i) {
    const size_t m = i % h.be_count();  // cycle I, J, K, I, ...
    b.add_best_effort(sys.uses_spt ? h.be_model_spt(m) : h.be_model(m));
  }
  const auto controller = sys.make(h.options().spec);
  auto sim = b.build(*controller);
  const TimeNs slo = sim->slo_of(0);
  return {cell, sim->run(h.trace()), slo};
}

void emit_json(const std::string& path, const std::vector<CellResult>& all,
               TimeNs duration, bool quick, unsigned quota_slo_ok,
               unsigned quota_cells) {
  std::ofstream os(path);
  SGDRC_REQUIRE(os.good(), "cannot open JSON output path");
  JsonWriter j(os);
  j.begin_object();
  j.kv("bench", "vgpu_isolation");
  j.kv("quick", quick);
  j.kv("duration_ms", to_ms(duration));
  j.kv("quota_cells_within_slo", static_cast<uint64_t>(quota_slo_ok));
  j.kv("quota_cells", static_cast<uint64_t>(quota_cells));
  j.key("cells").begin_array();
  for (const auto& r : all) {
    const auto& ls = r.metrics.tenants[0];
    j.begin_object();
    j.kv("be_tenants", r.cell.be_tenants);
    j.kv("system", label(r.cell));
    j.kv("quota", r.cell.quota);
    j.kv("p99_ms", ls.p99_ms());
    j.kv("slo_ms", to_ms(r.slo));
    // A tenant with zero served requests has no p99 — its slo_ok is
    // null (no data), never a vacuous true the gate would wave through.
    if (ls.has_latency_data()) {
      j.kv("slo_ok", ls.p99_ms() <= to_ms(r.slo));
    } else {
      j.kv("slo_ok", std::numeric_limits<double>::quiet_NaN());
    }
    j.kv("attainment", ls.attainment());
    j.kv("be_samples_per_s", r.metrics.be_throughput());
    j.kv("guarantee_violations", r.metrics.guarantee_violations);
    j.end_object();
  }
  j.end_array();
  j.end_object();
  std::printf("wrote %s (%zu cells)\n", path.c_str(), all.size());
}

}  // namespace

int main(int argc, char** argv) {
  const auto cli = sgdrc::bench::BenchCli::parse(argc, argv);
  const uint64_t seed = cli.seed_or(0x96b0);
  const TimeNs duration = cli.quick ? 250 * kNsPerMs : 1 * kNsPerSec;
  const std::vector<unsigned> floods =
      cli.quick ? std::vector<unsigned>{1, 4} : std::vector<unsigned>{1, 2, 4, 8};
  // A fixed SLO that does NOT grow with the flood size — the adversarial
  // part: more BE tenants do not buy the LS tenant any slack.
  const double slo_multiplier = 6.5;

  HarnessOptions o;
  o.spec = gpusim::rtx_a2000();
  o.ls_letters = "A";
  o.be_letters = "IJK";
  o.utilization = 0.3;
  o.burstiness = 0.35;
  o.duration = duration;
  o.seed = seed;
  const ServingHarness h(o);

  std::vector<Cell> cells;
  for (const unsigned n : floods) {
    cells.push_back({n, "SGDRC", true});
    cells.push_back({n, "SGDRC", false});
    cells.push_back({n, "Multi-streaming", false});
  }
  const auto guar = ls_guarantee(o.spec);
  std::printf("vGPU isolation on %s: LS model A (quota: %u/%u TPCs, "
              "%.0f%% channels, SLO %.1fx iso) vs a concurrent BE flood\n",
              o.spec.name.c_str(), guar.guaranteed_tpcs, o.spec.num_tpcs,
              100.0 * guar.channel_share, slo_multiplier);

  std::vector<CellResult> results(cells.size());
  ThreadPool pool(8);
  pool.parallel_for(cells.size(), [&](size_t i) {
    results[i] = run_cell(h, cells[i], slo_multiplier);
  });

  TextTable t({"BE flood", "system", "p99 ms", "SLO ms", "SLO?", "att.",
               "BE samples/s", "violations"});
  unsigned quota_slo_ok = 0, quota_cells = 0;
  for (const auto& r : results) {
    const auto& ls = r.metrics.tenants[0];
    const bool ok = ls.has_latency_data() && ls.p99_ms() <= to_ms(r.slo);
    if (r.cell.quota) {
      ++quota_cells;
      quota_slo_ok += ok;
    }
    t.add_row({std::to_string(r.cell.be_tenants), label(r.cell),
               TextTable::num(ls.p99_ms(), 2), TextTable::num(to_ms(r.slo), 2),
               ok ? "yes" : "NO", TextTable::pct(ls.attainment()),
               TextTable::num(r.metrics.be_throughput(), 1),
               std::to_string(r.metrics.guarantee_violations)});
  }
  t.print();

  std::printf("\nguaranteed-quota LS tenant within SLO in %u of %u flood "
              "cells; best-effort soaks the residual in every one.\n",
              quota_slo_ok, quota_cells);
  if (!cli.json_path.empty()) {
    emit_json(cli.json_path, results, duration, cli.quick, quota_slo_ok,
              quota_cells);
  }
  return quota_slo_ok == quota_cells ? 0 : 1;
}
