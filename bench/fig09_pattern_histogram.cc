// Fig. 9 — frequency histogram of the permutation patterns of one channel
// group across the VRAM space: all patterns are uniformly distributed.
// Uses the silicon layout directly (the census input is just labels; the
// probing path is exercised by fig08/sec53) over a large address span.
#include <cstdio>

#include "common/stats.h"
#include "common/table.h"
#include "gpusim/hash_mapping.h"
#include "reveng/permutation.h"

using namespace sgdrc;
using namespace sgdrc::gpusim;

namespace {

void histogram(const GpuSpec& spec, uint64_t partitions) {
  std::printf("---- %s (%llu MiB scanned) ----\n", spec.name.c_str(),
              (unsigned long long)(partitions >> 10));
  const AddressMapping m(spec);
  std::vector<int> labels;
  labels.reserve(partitions);
  for (uint64_t p = 0; p < partitions; ++p) {
    labels.push_back(static_cast<int>(m.channel_of(p * kPartitionBytes)));
  }
  const auto census = reveng::analyze_channel_labels(labels,
                                                     spec.num_channels);
  TextTable t({"pattern", "count", "frequency"});
  uint64_t total = 0;
  for (const auto& [k, v] : census.pattern_counts) total += v;
  for (const auto& [k, v] : census.pattern_counts) {
    t.add_row({k, std::to_string(v),
               TextTable::pct(static_cast<double>(v) /
                              static_cast<double>(total))});
  }
  t.print();
  std::printf("patterns: %zu, max deviation from uniform: %.2f%%\n\n",
              census.pattern_counts.size(),
              100.0 * census.pattern_uniform_deviation);
}

}  // namespace

int main() {
  std::printf(
      "Fig. 9 — permutation-pattern frequency histogram (group 0)\n\n");
  histogram(tesla_p40(), 1ull << 20);   // 1 GiB worth of partitions
  histogram(rtx_a2000(), 1ull << 20);
  std::printf(
      "Shape check: every pattern of the group occurs with (near-)equal\n"
      "frequency — channels are evenly spread over the VRAM space.\n");
  return 0;
}
