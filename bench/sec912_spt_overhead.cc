// §9.1.2 — overheads of VRAM channel isolation: per-kernel SPT runtime
// overhead (paper: ~2.9% on transformed kernels) and the end-to-end
// inference overhead after transforming only the memory-bound kernels
// (paper: ~0.5%), plus a google-benchmark micro of the translate()
// re-indexing arithmetic itself (2 integer ops).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "coloring/translate.h"
#include "common/table.h"
#include "core/harness.h"
#include "core/profiler.h"
#include "models/zoo.h"

using namespace sgdrc;

static void BM_TranslateOffset(benchmark::State& state) {
  uint64_t off = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(coloring::translate_offset(off, 2048));
    off += 4;
  }
}
BENCHMARK(BM_TranslateOffset);

namespace {

void print_overheads() {
  std::printf("§9.1.2 — SPT runtime overheads\n\n");
  TextTable t({"GPU", "model", "kernel overhead (transformed)",
               "end-to-end overhead"});
  for (const auto& spec : {gpusim::tesla_p40(), gpusim::rtx_a2000()}) {
    core::OfflineProfiler prof(spec);
    Accumulator e2e;
    Accumulator kernel_oh;
    for (const char c : std::string("ABCDEFGH")) {
      auto plain = models::make_model(c);
      prof.profile(plain);
      const auto spt = core::ServingHarness::transform_for_spt(plain, prof);
      // Per-kernel overhead on the transformed (memory-bound) kernels.
      EventQueue q;
      gpusim::GpuExecutor exec(spec, q);
      TimeNs plain_total = 0, spt_total = 0;
      for (size_t i = 0; i < plain.kernels.size(); ++i) {
        const TimeNs tp = exec.solo_runtime(
            plain.kernels[i], spec.num_tpcs, spec.num_channels, false);
        const TimeNs ts = exec.solo_runtime(
            spt.kernels[i], spec.num_tpcs, spec.num_channels,
            spt.kernels[i].spt_transformed);
        plain_total += tp;
        spt_total += ts;
        if (spt.kernels[i].spt_transformed) {
          kernel_oh.add(static_cast<double>(ts - tp) /
                        static_cast<double>(tp));
        }
      }
      e2e.add(static_cast<double>(spt_total - plain_total) /
              static_cast<double>(plain_total));
    }
    t.add_row({spec.name, "A-H (mean)", TextTable::pct(kernel_oh.mean()),
               TextTable::pct(e2e.mean())});
  }
  t.print();
  std::printf(
      "\nPaper: ~2.9%% per transformed kernel; ~0.5%% end-to-end (only\n"
      "memory-bound kernels are transformed).\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  print_overheads();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
