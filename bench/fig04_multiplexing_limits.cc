// Fig. 4 — limitations of temporal and spatial multiplexing (A2000-like
// scenario, MobileNetV3 as LS, DenseNet161 as BE):
//  (a) temporal multiplexing: LS SLO attainment stays high, but the BE
//      task starves as the LS load rises;
//  (b) spatial multiplexing: BE throughput stays high, but the LS SLO
//      attainment collapses under contention.
#include <cstdio>

#include "baselines/baseline_policies.h"
#include "common/table.h"
#include "core/harness.h"

using namespace sgdrc;
using namespace sgdrc::core;

int main() {
  std::printf(
      "Fig. 4 — temporal vs spatial multiplexing; LS: MobileNetV3,\n"
      "BE: DenseNet161; load sweep (fraction of heavy)\n\n");
  TextTable t({"load", "temporal att.", "temporal BE/s", "spatial att.",
               "spatial BE/s"});
  for (const double load : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    HarnessOptions o;
    o.spec = gpusim::rtx_a2000();
    o.ls_letters = "A";
    o.be_letters = "J";
    o.utilization = 0.55;  // feasible single-service range
    o.load_scale = load;
    o.burstiness = 0.35;
    o.duration = 1 * kNsPerSec;
    o.seed = 41;
    ServingHarness h(o);
    baselines::TemporalPolicy temporal;
    baselines::MultiStreamPolicy spatial;
    const auto mt = h.run(temporal, false);
    const auto ms = h.run(spatial, false);
    t.add_row({TextTable::num(load, 2), TextTable::pct(mt.mean_attainment()),
               TextTable::num(mt.be_throughput(), 1),
               TextTable::pct(ms.mean_attainment()),
               TextTable::num(ms.be_throughput(), 1)});
  }
  t.print();
  std::printf(
      "\nShape check (paper Fig. 4): temporal holds the SLO but starves\n"
      "BE as load rises; spatial keeps BE throughput but loses SLO.\n");
  return 0;
}
