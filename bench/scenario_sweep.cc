// Dynamic-scenario sweep: every scenario in the stock catalog (steady,
// diurnal, flash-crowd, tenant-churn, BE-backfill-surge, SLO-tighten,
// batching, model-zoo, hetero-diurnal, flash-overload, retry-storm,
// device-failure — see docs/scenarios.md) × {SGDRC, SGDRC (Static),
// MPS, Multi-streaming} on a small fleet. Load shifts, tenants churn,
// SLOs tighten, devices fail, demand exceeds capacity — the half of the
// paper's claim a fixed trace never stresses. Two gates:
//
//   1. Headline: dynamic SGDRC beats the best *static* baseline on
//      fleet LS p99 in most scenarios while keeping BE throughput
//      within 10% of that baseline.
//   2. Overload order (exit code): in flash-overload — an 8x spike on a
//      mixed A2000/A100 fleet through the front door — SGDRC must
//      degrade in QoS order: BE pauses first, low-priority LS sheds
//      next, and the premium tier (priority 2) sheds least and keeps
//      the highest attainment.
//
//   ./scenario_sweep [--quick] [--json BENCH_scenarios.json] [--seed N]
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "baselines/registry.h"
#include "bench_cli.h"
#include "common/json.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "core/harness.h"
#include "models/zoo.h"
#include "workload/scenario.h"

using namespace sgdrc;
using namespace sgdrc::workload;

namespace {

// SGDRC first, then the *static-partitioning* baselines the headline
// compares against (the paper's static ablation and MPS's fixed thread
// split), then Multi-streaming as the no-control reference — it
// partitions nothing, so it is reported but not a "static baseline".
constexpr const char* kSystems[] = {"SGDRC", "SGDRC (Static)", "MPS",
                                    "Multi-streaming"};

// Construction and classification come from the shared registry: SPT
// selection (SGDRC variants run transformed kernels) and the
// static-partitioning flag the headline comparison keys on.
bool is_static(const std::string& system) {
  return baselines::system(system).static_partitioning;
}
bool uses_spt(const std::string& system) {
  return baselines::system(system).uses_spt;
}

fleet::ControllerFactory factory_for(const std::string& system) {
  return baselines::system(system).make;
}

/// Initial tenant mix (LS first — the catalog's churn script departs
/// initial tenant 1, which must be LS). Rates target the configured
/// per-device utilisation across a `devices`-wide fleet with 2-replica
/// tenants.
std::vector<ScenarioTenant> make_tenants(const core::ServingHarness& h,
                                         bool spt, unsigned devices) {
  std::vector<ScenarioTenant> out;
  for (size_t i = 0; i < h.ls_count(); ++i) {
    out.push_back({core::latency_sensitive_tenant(
                       spt ? h.ls_model_spt(i) : h.ls_model(i),
                       h.isolated_latency(i)),
                   h.rate_for(i) * static_cast<double>(devices), 2});
  }
  for (size_t i = 0; i < h.be_count(); ++i) {
    out.push_back({core::best_effort_tenant(spt ? h.be_model_spt(i)
                                                : h.be_model(i)),
                   0.0, 2});
  }
  return out;
}

struct SweepRun {
  std::string scenario;
  std::string system;
  unsigned devices = 0;
  ScenarioOutcome outcome;
};

void emit_json(const std::string& path, const std::vector<Scenario>& catalog,
               const std::vector<SweepRun>& runs, TimeNs duration,
               bool quick, unsigned wins, bool overload_order_ok) {
  std::ofstream os(path);
  SGDRC_REQUIRE(os.good(), "cannot open JSON output path");
  JsonWriter j(os);
  j.begin_object();
  j.kv("bench", "scenario_sweep");
  j.kv("quick", quick);
  j.kv("duration_ms", to_ms(duration));
  j.kv("sgdrc_wins_vs_best_static", static_cast<uint64_t>(wins));
  j.kv("overload_order_ok", overload_order_ok);
  j.kv("scenario_count", static_cast<uint64_t>(catalog.size()));
  j.key("scenarios").begin_array();
  for (const auto& sc : catalog) {
    j.begin_object();
    j.kv("name", sc.name());
    j.kv("description", sc.description());
    j.kv("devices", sc.device_count());
    j.kv("autoscaled", sc.autoscaled());
    // Heterogeneous scenarios carry one spec name per device; records
    // for homogeneous scenarios stay byte-identical to the pre-hetero
    // schema (no key at all), so refreshed baselines diff cleanly.
    if (!sc.device_specs().empty()) {
      j.key("device_specs").begin_array();
      for (const auto& spec : sc.device_specs()) j.value(spec.name);
      j.end_array();
    }
    if (sc.front_door_config().enabled) j.kv("front_door", true);
    j.key("systems").begin_array();
    for (const auto& r : runs) {
      if (r.scenario != sc.name()) continue;
      const auto& m = r.outcome.metrics;
      j.begin_object();
      j.kv("name", r.system);
      j.kv("fleet_p99_ms", m.fleet_p99_ms());
      j.kv("slo_attainment", m.mean_attainment());
      j.kv("ls_goodput_per_s", m.ls_goodput());
      j.kv("be_samples_per_s", m.be_throughput());
      j.kv("requests", static_cast<uint64_t>(r.outcome.requests));
      j.kv("scaling_actions",
           static_cast<uint64_t>(r.outcome.scaling.size()));
      if (sc.front_door_config().enabled) {
        const auto& fd = m.front_door;
        j.key("front_door").begin_object();
        j.kv("arrived", fd.arrived);
        j.kv("admitted", fd.admitted);
        j.kv("rejected", fd.rejected);
        j.kv("shed", fd.shed);
        j.kv("retries", fd.retries);
        j.kv("dropped", fd.dropped);
        j.kv("expired", fd.expired);
        j.kv("pending_retries", fd.pending_retries);
        j.kv("be_pause_events", fd.be_pause_events);
        j.kv("be_paused_ms", to_ms(fd.be_paused_ns));
        j.key("services").begin_array();
        for (size_t s = 0; s < fd.arrived_by_service.size(); ++s) {
          j.begin_object();
          j.kv("service", static_cast<uint64_t>(s));
          j.kv("arrived", fd.arrived_by_service[s]);
          j.kv("admitted", fd.admitted_by_service[s]);
          j.kv("rejected", fd.rejected_by_service[s]);
          j.kv("shed", fd.shed_by_service[s]);
          j.kv("dropped", fd.dropped_by_service[s]);
          if (s < m.tenants.size() &&
              m.tenants[s].qos == QosClass::kLatencySensitive) {
            j.kv("attainment", m.tenants[s].attainment());
            // Over demand (door arrivals), so shed requests count
            // against the tier — the QoS-order gate's metric.
            j.kv("demand_attainment",
                 fd.arrived_by_service[s]
                     ? static_cast<double>(m.tenants[s].attained) /
                           static_cast<double>(fd.arrived_by_service[s])
                     : 0.0);
          }
          j.end_object();
        }
        j.end_array();
        j.end_object();
      }
      j.end_object();
    }
    j.end_array();
    j.end_object();
  }
  j.end_array();
  j.end_object();
  std::printf("wrote %s (%zu scenarios x %zu systems)\n", path.c_str(),
              catalog.size(), std::size(kSystems));
}

}  // namespace

int main(int argc, char** argv) {
  const auto cli = sgdrc::bench::BenchCli::parse(argc, argv);
  const uint64_t seed = cli.seed_or(0x5ce0);
  const TimeNs duration = cli.quick ? 240 * kNsPerMs : 1 * kNsPerSec;
  const unsigned devices = 2;

  core::HarnessOptions ho;
  ho.spec = gpusim::rtx_a2000();
  ho.ls_letters = "ABC";
  ho.be_letters = "IJ";
  ho.utilization = 0.4;
  ho.burstiness = 0.35;
  ho.duration = duration;
  ho.seed = seed;
  const core::ServingHarness h(ho);

  // Churn arrivals: a fourth LS model (D) and surge BE models (I/J/K
  // round-robin) minted per system variant inside run (SPT differs).
  core::OfflineProfiler prof(ho.spec, ho.exec_params);
  models::ModelDesc arrival_model = models::make_model('D');
  prof.profile(arrival_model);
  const TimeNs arrival_iso = prof.isolated_latency(arrival_model);
  const models::ModelDesc arrival_spt =
      core::ServingHarness::transform_for_spt(arrival_model, prof);
  models::ModelDesc surge_model = models::make_model('I');
  prof.profile(surge_model);
  const models::ModelDesc surge_spt =
      core::ServingHarness::transform_for_spt(surge_model, prof);

  ScenarioEngineConfig ecfg;
  ecfg.spec = ho.spec;
  ecfg.exec_params = ho.exec_params;
  ecfg.ls_instances = ho.ls_instances;
  // Constant n across every scenario and fleet shape (tenant churn would
  // otherwise drift the per-device default).
  ecfg.slo_multiplier = static_cast<double>(h.ls_count() + 1);
  ecfg.seed = seed;
  ecfg.dispatch_latency = 2 * kNsPerUs;
  ecfg.dispatch_jitter = 3 * kNsPerUs;
  ecfg.burstiness = ho.burstiness;

  // One catalog per SPT variant: churn/surge arrivals carry the model
  // flavour the system under test runs everywhere else.
  auto catalog_for = [&](bool spt) {
    ScenarioCatalogOptions copt;
    copt.duration = duration;
    copt.devices = devices;
    copt.initial_tenants =
        static_cast<unsigned>(h.ls_count() + h.be_count());
    const double arrival_rate =
        ho.utilization /
        (static_cast<double>(h.ls_count()) * to_sec(arrival_iso)) *
        static_cast<double>(devices);
    copt.make_ls_arrival = [&, spt, arrival_rate](unsigned) {
      return ScenarioTenant{
          core::latency_sensitive_tenant(spt ? arrival_spt : arrival_model,
                                         arrival_iso),
          arrival_rate, 2};
    };
    copt.make_be_arrival = [&, spt](unsigned) {
      return ScenarioTenant{
          core::best_effort_tenant(spt ? surge_spt : surge_model), 0.0, 2};
    };
    // model-zoo runs under modeled VRAM pressure (the registered
    // footprint of the churned model fleet well exceeds 256 MiB),
    // degrading to demand paging instead of rejecting; the other
    // scenarios ignore this and stay memory-less.
    copt.model_zoo_memory.enabled = true;
    copt.model_zoo_memory.vram_bytes_override = 256ull << 20;
    copt.model_zoo_memory.oversubscribe = true;
    // Mixed fleet for the heterogeneous scenarios: the workstation
    // baseline next to a datacenter A100 (~4.8x by the TPC+bandwidth
    // perf model). Everything else stays homogeneous A2000.
    copt.hetero_specs = {ho.spec, gpusim::a100_sxm4()};
    // Shed-oriented door for flash-overload / device-failure: no
    // admission bucket; BE pauses at queue depth 12, priority-0 LS
    // sheds at 20, the priority-2 premium tier not before 60. One
    // retry only — under a sustained spike the lower tiers must
    // actually lose demand, or "premium degrades last" is vacuous.
    copt.front_door.enabled = true;
    copt.front_door.be_pause_depth = 12;
    copt.front_door.shed_depth = 20;
    copt.front_door.max_retries = 1;
    // Admission-oriented door for retry-storm: a bucket sized near each
    // service's steady rate, so the 3x surge overdraws it and the
    // rejected herd exercises the backoff/jitter model.
    copt.admission_door.enabled = true;
    copt.admission_door.admit_rate = 120.0;
    copt.admission_door.admit_burst = 8.0;
    copt.admission_door.max_retries = 3;
    return scenario_catalog(copt);
  };
  const auto catalog_spt = catalog_for(true);
  const auto catalog_plain = catalog_for(false);

  std::printf("scenario sweep on %u-GPU %s fleets: %zu LS + %zu BE "
              "tenants, %zu scenarios x %zu systems, %.0f ms each\n",
              devices, ho.spec.name.c_str(), h.ls_count(), h.be_count(),
              catalog_spt.size(), std::size(kSystems), to_ms(duration));

  std::vector<SweepRun> runs(catalog_spt.size() * std::size(kSystems));
  ThreadPool pool(8);
  pool.parallel_for(runs.size(), [&](size_t i) {
    const size_t sc_i = i / std::size(kSystems);
    const std::string system = kSystems[i % std::size(kSystems)];
    const bool spt = uses_spt(system);
    const auto& catalog = spt ? catalog_spt : catalog_plain;
    const Scenario& sc = catalog[sc_i];
    // Heterogeneous scenarios place perf-aware (normalized against the
    // engine baseline spec); the empty-factor ctor is the exact legacy
    // homogeneous policy.
    fleet::QosAwarePlacement placement(
        sc.device_specs().empty()
            ? std::vector<double>{}
            : fleet::device_perf_factors(sc.device_specs(), ecfg.spec));
    fleet::QosLoadAwareRouter router;
    const auto outcome =
        run_scenario(sc, make_tenants(h, spt, devices), ecfg, placement,
                     router, factory_for(system));
    runs[i] = {sc.name(), system, sc.device_count(), outcome};
  });

  TextTable t({"scenario", "system", "fleet p99 ms", "SLO att.",
               "LS goodput/s", "BE samples/s", "requests", "scale ops"});
  for (const auto& r : runs) {
    const auto& m = r.outcome.metrics;
    t.add_row({r.scenario, r.system, TextTable::num(m.fleet_p99_ms(), 2),
               TextTable::pct(m.mean_attainment()),
               TextTable::num(m.ls_goodput(), 0),
               TextTable::num(m.be_throughput(), 1),
               std::to_string(r.outcome.requests),
               std::to_string(r.outcome.scaling.size())});
  }
  t.print();

  // Headline: SGDRC vs the best static baseline per scenario.
  unsigned wins = 0, be_ok = 0;
  std::printf("\nSGDRC vs best static baseline (by fleet LS p99):\n");
  for (const auto& sc : catalog_spt) {
    const SweepRun* dynamic = nullptr;
    const SweepRun* best_static = nullptr;
    for (const auto& r : runs) {
      if (r.scenario != sc.name()) continue;
      if (r.system == "SGDRC") {
        dynamic = &r;
      } else if (!is_static(r.system)) {
        continue;  // no-control reference, not a static baseline
      } else if (!best_static ||
                 r.outcome.metrics.fleet_p99_ms() <
                     best_static->outcome.metrics.fleet_p99_ms()) {
        best_static = &r;
      }
    }
    SGDRC_CHECK(dynamic && best_static, "sweep missing a system");
    const double dp = dynamic->outcome.metrics.fleet_p99_ms();
    const double sp = best_static->outcome.metrics.fleet_p99_ms();
    const double dbe = dynamic->outcome.metrics.be_throughput();
    const double sbe = best_static->outcome.metrics.be_throughput();
    const bool p99_win = dp < sp;
    const bool be_within = dbe >= 0.9 * sbe;
    wins += p99_win;
    be_ok += be_within;
    std::printf("  %-18s p99 %6.2f vs %6.2f ms (%s, best static: %s)  "
                "BE %7.1f vs %7.1f (%s)\n",
                sc.name().c_str(), dp, sp, p99_win ? "win " : "loss",
                best_static->system.c_str(), dbe, sbe,
                be_within ? "within 10%" : "BELOW");
  }
  std::printf("\nSGDRC beats the best static baseline on LS p99 in %u of "
              "%zu scenarios (BE within 10%% in %u).\n",
              wins, catalog_spt.size(), be_ok);

  // Overload-order gate: in flash-overload, SGDRC must degrade in QoS
  // order — BE actually paused, low-priority LS actually shed, and the
  // premium tier (service 0, priority 2) shed strictly least and left
  // with attainment no worse than any lower-priority LS service.
  bool overload_order_ok = true;
  for (const auto& r : runs) {
    if (r.scenario != "flash-overload" || r.system != "SGDRC") continue;
    const auto& m = r.outcome.metrics;
    const auto& fd = m.front_door;
    const auto shed_frac = [&](size_t s) {
      return fd.arrived_by_service[s]
                 ? static_cast<double>(fd.shed_by_service[s]) /
                       static_cast<double>(fd.arrived_by_service[s])
                 : 0.0;
    };
    // Attainment over *demand* (attained / door arrivals), not over
    // served: shedding a request is a degradation even though it never
    // produces a latency sample — attained/served would score a
    // hard-shedding tier as healthy.
    const auto demand_att = [&](size_t s) {
      return fd.arrived_by_service[s]
                 ? static_cast<double>(m.tenants[s].attained) /
                       static_cast<double>(fd.arrived_by_service[s])
                 : 0.0;
    };
    const bool be_paused = fd.be_paused_ns > 0;
    bool others_shed = false;      // some lower tier actually shed
    bool premium_least = true;     // premium shed frac <= every other
    bool premium_attains = true;   // premium demand att. >= every other
    const double premium_att = demand_att(0);
    for (size_t s = 1; s < fd.arrived_by_service.size(); ++s) {
      if (fd.shed_by_service[s] > 0) others_shed = true;
      if (shed_frac(0) > shed_frac(s)) premium_least = false;
      if (s < m.tenants.size() &&
          m.tenants[s].qos == QosClass::kLatencySensitive &&
          premium_att < demand_att(s)) {
        premium_attains = false;
      }
    }
    overload_order_ok =
        be_paused && others_shed && premium_least && premium_attains;
    std::printf(
        "\nflash-overload QoS order (SGDRC): BE paused %.1f ms (%s), "
        "premium shed %.1f%% vs worst other %.1f%% (%s), premium "
        "demand attainment %.1f%% (%s) -> %s\n",
        to_ms(fd.be_paused_ns), be_paused ? "ok" : "NEVER",
        100.0 * shed_frac(0),
        [&] {
          double worst = 0.0;
          for (size_t s = 1; s < fd.arrived_by_service.size(); ++s) {
            worst = std::max(worst, shed_frac(s));
          }
          return 100.0 * worst;
        }(),
        premium_least && others_shed ? "ordered" : "OUT OF ORDER",
        100.0 * premium_att, premium_attains ? "highest" : "NOT HIGHEST",
        overload_order_ok ? "PASS" : "FAIL");
  }

  if (!cli.json_path.empty()) {
    emit_json(cli.json_path, catalog_spt, runs, duration, cli.quick, wins,
              overload_order_ok);
  }
  if (!overload_order_ok) {
    std::printf("FAIL: flash-overload degradation is not QoS-ordered\n");
    return 1;
  }
  return 0;
}
