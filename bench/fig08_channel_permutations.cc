// Fig. 8 / Fig. 19 / Fig. 10 — VRAM channel layout discovery, using the
// full timing-probe pipeline (Algorithms 1–3, no oracle in the loop):
//  * mark a contiguous physical window at 1 KiB granularity,
//  * print the observed layout (letters = discovered channels),
//  * run the structure census: channel groups, region size (= max
//    coloring granularity) and permutation patterns,
//  * derive the Fig. 10 address-bit roles from the measurements.
#include <cstdio>

#include "common/table.h"
#include "gpusim/device.h"
#include "reveng/conflict.h"
#include "reveng/lut.h"
#include "reveng/marker.h"
#include "reveng/permutation.h"
#include "reveng/probe_arena.h"

using namespace sgdrc;
using namespace sgdrc::gpusim;
using namespace sgdrc::reveng;

namespace {

void analyze(const GpuSpec& spec, uint64_t window_partitions) {
  std::printf("---- %s ----\n", spec.name.c_str());
  GpuDevice dev(spec, /*process_seed=*/0xf19);
  ProbeArena arena(dev, 0.9);
  ConflictProber prober(arena);
  const auto cal = prober.calibrate();
  std::printf(
      "calibration: hit=%lluns miss=%lluns pair-baseline=%lluns "
      "conflict-threshold=%lluns\n",
      (unsigned long long)cal.l2_hit_ns, (unsigned long long)cal.l2_miss_ns,
      (unsigned long long)cal.pair_baseline_ns,
      (unsigned long long)cal.bank_conflict_threshold);

  ChannelMarker marker(arena, prober);
  marker.build(spec.num_channels);

  // Mark a contiguous physical window (the paper marks 10 MiB; a smaller
  // window carries the same structure). Partitions outside the arena
  // stay unknown ('?' in Fig. 8); the census tolerates them.
  std::vector<int> labels;
  uint64_t marked = 0;
  for (uint64_t p = 0; p < window_partitions; ++p) {
    const PhysAddr pa = p << kPartitionBits;
    if (!arena.owns_pa(pa)) {
      labels.push_back(-1);
      continue;
    }
    const auto l = marker.label(pa);
    labels.push_back(l ? static_cast<int>(*l) : -1);
    ++marked;
  }
  std::printf("marked %llu of %llu contiguous 1 KiB partitions\n",
              (unsigned long long)marked,
              (unsigned long long)window_partitions);

  // Layout strip (first 64 partitions), Fig. 8 style.
  std::printf("layout: ");
  for (size_t i = 0; i < std::min<size_t>(64, labels.size()); ++i) {
    std::printf("%c", labels[i] < 0 ? '?' : static_cast<char>('A' + labels[i]));
    if (i % 16 == 15) std::printf(" ");
  }
  std::printf("\n");

  const auto census = analyze_channel_labels(labels, spec.num_channels);
  std::printf("region size: %u KiB (max coloring granularity)\n",
              census.region_size);
  std::printf("channel groups:");
  for (const auto& g : census.groups) {
    std::printf(" {");
    for (size_t i = 0; i < g.size(); ++i) {
      std::printf("%s%c", i ? "," : "", static_cast<char>('A' + g[i]));
    }
    std::printf("}");
  }
  std::printf("\ndistinct permutation patterns (group 0): %zu, "
              "uniformity deviation %.1f%%\n",
              census.pattern_counts.size(),
              100.0 * census.pattern_uniform_deviation);

  // Fig. 10 derivation from measurements.
  std::printf(
      "Fig. 10: bits 0..9 = offset inside a channel partition (every 1 KiB\n"
      "shares one channel); bits 10..34 feed the hash; %u KiB regions\n"
      "carry one channel group.\n\n",
      census.region_size);
}

}  // namespace

int main() {
  std::printf("Fig. 8 / 19 — VRAM channel permutations via Algorithms 1-3\n\n");
  analyze(tesla_p40(), 768);
  analyze(rtx_a2000(), 768);
  return 0;
}
