// Fig. 15 — evaluation of VRAM channel isolation on both GPUs:
//  (a) CDF of LS kernels' runtime speedup after applying channel
//      isolation, co-executing with memory-intensive BE kernels (SMs
//      evenly partitioned via smctrl in both groups). Paper: +28.7%
//      mean on the P40, +47.5% on the A2000.
//  (b) CDF of extra registers used by the transformed kernels. Paper:
//      ~80% need none, >90% fewer than 5.
#include <cstdio>
#include <functional>
#include <string>

#include "coloring/transformer.h"
#include "common/event_queue.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/sgdrc_policy.h"
#include "gpusim/executor.h"
#include "models/zoo.h"

using namespace sgdrc;
using namespace sgdrc::gpusim;

namespace {

// A memory-intensive BE kernel (high DRAM throughput, §9.1.1).
KernelDesc be_thrasher(const GpuSpec& spec) {
  KernelDesc k;
  k.name = "be.memhog";
  k.flops = 1000;
  k.bytes = static_cast<uint64_t>(spec.vram_gbps * 1e6 * 50.0);
  k.blocks = 8192;
  k.max_useful_tpcs = 64;
  k.preemptible = true;
  return k;
}

// Runtime of `victim` co-executing with the thrasher, SMs split evenly;
// `isolate` applies the (1-ChBE)/ChBE channel partition of §6.
TimeNs corun_runtime(const GpuSpec& spec, const KernelDesc& victim,
                     bool isolate) {
  EventQueue q;
  GpuExecutor exec(spec, q);
  const KernelDesc hog = be_thrasher(spec);
  const unsigned half = spec.num_tpcs / 2;
  const ChannelSet be_ch =
      isolate ? core::be_channel_partition(spec, 1.0 / 3.0) : 0;
  const ChannelSet ls_ch =
      isolate ? (all_channels(spec.num_channels) & ~be_ch) : 0;

  // Closed-loop thrasher on the lower half.
  std::function<void()> relaunch = [&]() {
    exec.launch({&hog, tpc_range(0, spec.num_tpcs - half), be_ch},
                [&](GpuExecutor::LaunchId, TimeNs) { relaunch(); });
  };
  relaunch();

  TimeNs start = 0, done = 0;
  Samples lat;
  std::function<void()> run_victim = [&]() {
    if (lat.count() >= 30) return;
    start = q.now();
    exec.launch({&victim, tpc_range(spec.num_tpcs - half, half), ls_ch},
                [&](GpuExecutor::LaunchId, TimeNs t) {
                  lat.add(static_cast<double>(t - start));
                  done = t;
                  run_victim();
                });
  };
  run_victim();
  q.run_until(4 * kNsPerSec);
  return static_cast<TimeNs>(lat.p99());
}

void isolation_speedups(const GpuSpec& spec) {
  Samples speedup;
  for (const char c : std::string("ABCDEFGH")) {
    const auto m = models::make_model(c);
    for (const auto& k : m.kernels) {
      const TimeNs with = corun_runtime(spec, k, true);
      const TimeNs without = corun_runtime(spec, k, false);
      speedup.add(static_cast<double>(without) /
                      static_cast<double>(with) -
                  1.0);
    }
  }
  std::printf("  %s: mean speedup %+.1f%%, max %+.1f%%\n", spec.name.c_str(),
              100.0 * speedup.mean(), 100.0 * speedup.max());
  TextTable t({"percentile", "speedup"});
  for (const double p : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0}) {
    t.add_row({TextTable::num(p, 0) + "%",
               TextTable::pct(speedup.percentile(p))});
  }
  t.print();
}

void register_cdf(const GpuSpec& spec) {
  EventQueue q;
  GpuExecutor exec(spec, q);
  Samples regs;
  for (const char c : std::string("ABCDEFGHIJK")) {
    const auto m = models::make_model(c);
    for (const auto& k : m.kernels) {
      const TimeNs iso =
          exec.solo_runtime(k, spec.num_tpcs, spec.num_channels, false);
      regs.add(coloring::transform_kernel(k, iso).extra_registers);
    }
  }
  std::printf("  %s: %.1f%% zero extra, %.1f%% fewer than 5, max %.0f\n",
              spec.name.c_str(), 100.0 * regs.fraction_at_most(0.0).value(),
              100.0 * regs.fraction_at_most(4.0).value(), regs.max());
}

}  // namespace

int main() {
  std::printf(
      "Fig. 15a — LS kernel p99 speedup from VRAM channel isolation\n"
      "(co-executed with memory-intensive BE kernels, even SM split)\n\n");
  for (const auto& spec : {gpusim::tesla_p40(), gpusim::rtx_a2000()}) {
    isolation_speedups(spec);
  }
  std::printf(
      "\nPaper: isolation reduces p99 by 28.7%% (P40) / 47.5%% (A2000) on\n"
      "average, up to 135%% / 106%%.\n");

  std::printf("\nFig. 15b — extra registers from the SPT transform\n\n");
  for (const auto& spec : {gpusim::tesla_p40(), gpusim::rtx_a2000()}) {
    register_cdf(spec);
  }
  std::printf(
      "\nPaper: 80.4%% / 80.0%% of kernels need no extra register; 93.8%% /\n"
      "91.2%% use fewer than 5; outliers are tiny (<0.01 ms) kernels.\n");
  return 0;
}
