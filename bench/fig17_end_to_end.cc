// Fig. 17 — end-to-end evaluation: 6 systems × 2 GPUs × 2 workloads.
//  (a) per-LS-model p99 latency,
//  (b) SLO attainment rate,
//  (c) throughput (LS goodput + BE samples/s, normalized to SGDRC).
//
// All systems run the same trace on the same substrate; SGDRC variants
// run SPT-transformed kernels (and pay the §9.1.2 overhead). MPS is
// reported on both GPUs here even though the real P40 no longer supports
// it (the paper omits it there).
//
//   ./fig17_end_to_end [--quick] [--json BENCH_fig17.json] [--seed N]
//
// --quick shrinks the run for CI smoke (one GPU, short window); --json
// emits every scenario machine-readably (the BENCH_fig17.json artifact).
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>

#include "bench_cli.h"

#include "baselines/registry.h"
#include "common/json.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "core/harness.h"

using namespace sgdrc;
using namespace sgdrc::core;

namespace {

// The Fig. 17 six, in column order (SGDRC last: the normalisation
// anchor). Construction and SPT metadata come from the shared registry.
constexpr const char* kFig17Systems[] = {"Multi-streaming", "TGS",
                                         "MPS",             "Orion",
                                         "SGDRC (Static)",  "SGDRC"};

struct SystemResult {
  std::string name;
  workload::ServingMetrics metrics;
};

struct ScenarioResult {
  std::string gpu;
  bool heavy = false;
  std::vector<SystemResult> systems;
};

std::vector<SystemResult> run_all(const ServingHarness& h,
                                  const gpusim::GpuSpec& spec) {
  const size_t n = std::size(kFig17Systems);
  std::vector<SystemResult> out(n);
  ThreadPool pool(n);
  pool.parallel_for(n, [&](size_t i) {
    const auto& sys = baselines::system(kFig17Systems[i]);
    const auto controller = sys.make(spec);
    out[i] = {sys.name, h.run(*controller, sys.uses_spt)};
  });
  return out;
}

ScenarioResult run_scenario(const gpusim::GpuSpec& spec, bool heavy,
                            TimeNs duration, uint64_t seed) {
  std::printf("\n==== %s — %s workload ====\n", spec.name.c_str(),
              heavy ? "heavy" : "light");
  HarnessOptions o;
  o.spec = spec;
  o.utilization = 1.45;
  o.load_scale = heavy ? 1.0 : 0.5;  // §9.2: light = half the rate
  o.burstiness = 0.35;
  o.duration = duration;
  o.seed = seed;
  const ServingHarness h(o);
  const auto results = run_all(h, spec);

  // (a) per-model p99 latency.
  {
    std::vector<std::string> header{"p99 (ms)"};
    for (const auto& r : results) header.push_back(r.name);
    TextTable t(header);
    const auto first_ls =
        results[0].metrics.of_class(workload::QosClass::kLatencySensitive);
    for (size_t s = 0; s < first_ls.size(); ++s) {
      std::vector<std::string> row{std::string(1, first_ls[s]->letter)};
      for (const auto& r : results) {
        const auto ls =
            r.metrics.of_class(workload::QosClass::kLatencySensitive);
        row.push_back(TextTable::num(ls[s]->p99_ms(), 2));
      }
      t.add_row(row);
    }
    t.print();
  }

  // (b) SLO attainment + (c) throughput.
  {
    TextTable t({"system", "SLO att.", "LS goodput/s", "BE samples/s",
                 "overall/s", "norm. overall", "norm. BE"});
    const double sg_overall = results[5].metrics.overall_throughput();
    const double sg_be = results[5].metrics.be_throughput();
    for (const auto& r : results) {
      const auto& m = r.metrics;
      t.add_row({r.name, TextTable::pct(m.mean_attainment()),
                 TextTable::num(m.ls_goodput(), 0),
                 TextTable::num(m.be_throughput(), 1),
                 TextTable::num(m.overall_throughput(), 0),
                 TextTable::num(m.overall_throughput() / sg_overall, 2),
                 TextTable::num(sg_be > 0
                                    ? m.be_throughput() / sg_be
                                    : 0.0, 2)});
    }
    t.print();
  }
  return {spec.name, heavy, results};
}

void emit_json(const std::string& path,
               const std::vector<ScenarioResult>& scenarios,
               TimeNs duration, bool quick) {
  std::ofstream os(path);
  SGDRC_REQUIRE(os.good(), "cannot open JSON output path");
  JsonWriter j(os);
  j.begin_object();
  j.kv("bench", "fig17_end_to_end");
  j.kv("quick", quick);
  j.kv("duration_ms", to_ms(duration));
  j.key("scenarios").begin_array();
  for (const auto& sc : scenarios) {
    j.begin_object();
    j.kv("gpu", sc.gpu);
    j.kv("load", sc.heavy ? "heavy" : "light");
    j.key("systems").begin_array();
    for (const auto& r : sc.systems) {
      const auto& m = r.metrics;
      j.begin_object();
      j.kv("name", r.name);
      j.kv("slo_attainment", m.mean_attainment());
      j.kv("ls_goodput_per_s", m.ls_goodput());
      j.kv("be_samples_per_s", m.be_throughput());
      j.kv("overall_per_s", m.overall_throughput());
      j.key("p99_ms").begin_object();
      for (const auto* t :
           m.of_class(workload::QosClass::kLatencySensitive)) {
        j.kv(std::string(1, t->letter), t->p99_ms());
      }
      j.end_object();
      j.end_object();
    }
    j.end_array();
    j.end_object();
  }
  j.end_array();
  j.end_object();
  std::printf("wrote %s (%zu scenarios)\n", path.c_str(), scenarios.size());
}

}  // namespace

int main(int argc, char** argv) {
  const auto cli = sgdrc::bench::BenchCli::parse(argc, argv);
  const bool quick = cli.quick;
  const uint64_t seed = cli.seed_or(0xf17);
  const TimeNs duration = quick ? 300 * kNsPerMs : 2 * kNsPerSec;
  const auto gpus = quick
                        ? std::vector<gpusim::GpuSpec>{gpusim::rtx_a2000()}
                        : std::vector<gpusim::GpuSpec>{gpusim::tesla_p40(),
                                                       gpusim::rtx_a2000()};
  std::printf("Fig. 17 — end-to-end evaluation (6 systems, %zu GPU%s, "
              "2 loads)\n",
              gpus.size(), gpus.size() == 1 ? "" : "s");
  std::vector<ScenarioResult> scenarios;
  for (const auto& spec : gpus) {
    scenarios.push_back(run_scenario(spec, /*heavy=*/true, duration, seed));
    scenarios.push_back(run_scenario(spec, /*heavy=*/false, duration, seed));
  }
  if (!cli.json_path.empty()) {
    emit_json(cli.json_path, scenarios, duration, quick);
  }
  std::printf(
      "\nShape check (paper): SGDRC attains the highest SLO rate; its p99\n"
      "is comparable to or lower than Orion's; Multi-streaming buys\n"
      "throughput with LS tail latency; TGS pays context switches; MPS\n"
      "lacks intra-SM/channel isolation; SGDRC (Static) trails dynamic\n"
      "SGDRC, most visibly on BE throughput at light load.\n");
  return 0;
}
