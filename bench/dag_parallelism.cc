// Operator-DAG co-scheduling: the inception-style wide recipes
// (models::inception_ls / inception_be) swept through every registry
// system twice over the identical trace —
//
//   * DAG        — the model carries explicit kernel_deps
//                  (ModelBuilder::build_dag), so each request exposes a
//                  frontier of dependency-independent operators and the
//                  serving layer multi-launches them, Opara-style;
//   * serialized — the byte-for-byte same kernels as a flat chain, one
//                  kernel in flight per request (the pre-DAG behaviour).
//
// The headline: under SGDRC the DAG form strictly beats the serialized
// form on LS p99 without giving up SLO attainment — the branches of one
// request co-execute on disjoint slices of the tidal LS region while
// §4's spatial-temporal rule keeps counting the tenant as ONE co-runner
// (SgdrcOptions::intra_tenant_width). The exit code gates exactly that:
// non-zero unless SGDRC's DAG p99 < serialized p99 with attainment >=
// the serialized run's.
//
//   ./dag_parallelism [--quick] [--json BENCH_dag.json] [--seed N]
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "baselines/registry.h"
#include "bench_cli.h"
#include "common/json.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "core/harness.h"
#include "models/zoo.h"
#include "workload/trace.h"

using namespace sgdrc;
using namespace sgdrc::core;

namespace {

struct Cell {
  std::string system;  // registry key
  bool dag = false;    // explicit kernel_deps vs serialized chain
};

struct CellResult {
  Cell cell;
  workload::ServingMetrics metrics;
  TimeNs slo = 0;
};

std::string label(const Cell& c) {
  return c.system + (c.dag ? " DAG" : " serialized");
}

/// The profiled model set: both forms of both inception recipes, plus
/// the SPT-transformed variants SGDRC runs. The DAG and serialized
/// forms hold byte-identical kernels — only kernel_deps differs — so
/// one isolated latency (the serialized sum) is the SLO base for both.
struct ModelSet {
  models::ModelDesc ls[2], be[2];          // [dag]
  models::ModelDesc ls_spt[2], be_spt[2];  // [dag]
  TimeNs iso = 0;
};

ModelSet build_models(const OfflineProfiler& prof) {
  ModelSet s;
  for (const int dag : {0, 1}) {
    s.ls[dag] = models::inception_ls(dag != 0);
    s.be[dag] = models::inception_be(dag != 0);
    prof.profile(s.ls[dag]);
    prof.profile(s.be[dag]);
    s.ls_spt[dag] = ServingHarness::transform_for_spt(s.ls[dag], prof);
    s.be_spt[dag] = ServingHarness::transform_for_spt(s.be[dag], prof);
  }
  s.iso = prof.isolated_latency(s.ls[0]);
  return s;
}

CellResult run_cell(const gpusim::GpuSpec& spec, const ModelSet& models,
                    const std::vector<workload::Request>& trace,
                    const Cell& cell, TimeNs duration,
                    double slo_multiplier, uint64_t seed) {
  const auto& sys = baselines::system(cell.system);
  const int d = cell.dag ? 1 : 0;
  ServingSimBuilder b;
  b.gpu(spec)
      .duration(duration)
      .slo_multiplier(slo_multiplier)
      .best_effort_mode(BeMode::kConcurrent)
      .seed(seed);
  b.add_latency_sensitive(sys.uses_spt ? models.ls_spt[d] : models.ls[d],
                          models.iso);
  b.add_best_effort(sys.uses_spt ? models.be_spt[d] : models.be[d]);
  const auto controller = sys.make(spec);
  auto sim = b.build(*controller);
  const TimeNs slo = sim->slo_of(0);
  return {cell, sim->run(trace), slo};
}

void emit_json(const std::string& path, const std::vector<CellResult>& all,
               TimeNs duration, bool quick, double dag_p99,
               double serial_p99, double dag_att, double serial_att,
               bool gate_ok) {
  std::ofstream os(path);
  SGDRC_REQUIRE(os.good(), "cannot open JSON output path");
  JsonWriter j(os);
  j.begin_object();
  j.kv("bench", "dag_parallelism");
  j.kv("quick", quick);
  j.kv("duration_ms", to_ms(duration));
  j.key("gate").begin_object();
  j.kv("system", "SGDRC");
  j.kv("dag_p99_ms", dag_p99);
  j.kv("serialized_p99_ms", serial_p99);
  j.kv("speedup", serial_p99 / dag_p99);
  j.kv("dag_attainment", dag_att);
  j.kv("serialized_attainment", serial_att);
  j.kv("ok", gate_ok);
  j.end_object();
  j.key("cells").begin_array();
  for (const auto& r : all) {
    const auto& ls = r.metrics.tenants[0];
    j.begin_object();
    j.kv("system", r.cell.system);
    j.kv("dag", r.cell.dag);
    j.kv("p99_ms", ls.p99_ms());
    j.kv("slo_ms", to_ms(r.slo));
    j.kv("attainment", ls.attainment());
    j.kv("be_samples_per_s", r.metrics.be_throughput());
    j.end_object();
  }
  j.end_array();
  j.end_object();
  std::printf("wrote %s (%zu cells)\n", path.c_str(), all.size());
}

}  // namespace

int main(int argc, char** argv) {
  const auto cli = sgdrc::bench::BenchCli::parse(argc, argv);
  const uint64_t seed = cli.seed_or(0xda60);
  const TimeNs duration = cli.quick ? 250 * kNsPerMs : 1 * kNsPerSec;
  // SLO and load match the end-to-end benches: moderate LS utilisation
  // against one always-on BE colocation partner.
  const double utilization = 0.30;
  const double slo_multiplier = 6.0;

  const gpusim::GpuSpec spec = gpusim::rtx_a2000();
  const OfflineProfiler prof(spec);
  const ModelSet models = build_models(prof);

  workload::TraceOptions topt;
  topt.services = 1;
  topt.duration = duration;
  topt.burstiness = 0.35;
  topt.seed = seed;
  topt.per_service_rates.push_back(utilization / to_sec(models.iso));
  const auto trace = workload::generate_apollo_like_trace(topt);

  std::printf(
      "operator-DAG co-scheduling on %s: InceptionLS (%zu kernels, "
      "4-branch blocks) + InceptionBE, DAG vs serialized, iso %.2f ms\n",
      spec.name.c_str(), models.ls[0].kernels.size(), to_ms(models.iso));

  std::vector<Cell> cells;
  for (const auto& sys : baselines::system_registry()) {
    cells.push_back({sys.name, true});
    cells.push_back({sys.name, false});
  }

  std::vector<CellResult> results(cells.size());
  ThreadPool pool(8);
  pool.parallel_for(cells.size(), [&](size_t i) {
    results[i] = run_cell(spec, models, trace, cells[i], duration,
                          slo_multiplier, seed);
  });

  TextTable t({"system", "p99 ms", "SLO ms", "att.", "BE samples/s"});
  double dag_p99 = 0, serial_p99 = 0, dag_att = 0, serial_att = 0;
  for (const auto& r : results) {
    const auto& ls = r.metrics.tenants[0];
    if (r.cell.system == "SGDRC") {
      (r.cell.dag ? dag_p99 : serial_p99) = ls.p99_ms();
      (r.cell.dag ? dag_att : serial_att) = ls.attainment();
    }
    t.add_row({label(r.cell), TextTable::num(ls.p99_ms(), 2),
               TextTable::num(to_ms(r.slo), 2),
               TextTable::pct(ls.attainment()),
               TextTable::num(r.metrics.be_throughput(), 1)});
  }
  t.print();

  const bool gate_ok = dag_p99 < serial_p99 && dag_att >= serial_att;
  std::printf(
      "\nSGDRC: DAG p99 %.2f ms vs serialized %.2f ms (%.2fx), "
      "attainment %.1f%% vs %.1f%% — %s\n",
      dag_p99, serial_p99, dag_p99 > 0 ? serial_p99 / dag_p99 : 0.0,
      100.0 * dag_att, 100.0 * serial_att,
      gate_ok ? "DAG co-scheduling pays for itself"
              : "GATE FAILED (DAG must strictly beat serialized)");
  if (!cli.json_path.empty()) {
    emit_json(cli.json_path, results, duration, cli.quick, dag_p99,
              serial_p99, dag_att, serial_att, gate_ok);
  }
  return gate_ok ? 0 : 1;
}
