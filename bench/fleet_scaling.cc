// Fleet scaling: shard the Tab. 3 tenant mix across 1→8 simulated GPUs
// and sweep placement {spread, pack} × routing {round-robin,
// least-outstanding} × per-device resource control {SGDRC,
// Multi-streaming}. Load scales with the fleet (per-device utilisation
// held constant), so ideal scaling is linear goodput; the table shows
// where placement/routing choices bend the curve and that SGDRC per
// device beats the baseline fleet-wide at every size.
//
// A second section benchmarks the sharded engine itself: 256-device
// (quick) to 1024-device (full) fleets run once serially and once on
// the thread pool (FleetOptions::parallel), reporting events/sec,
// sim-seconds per wall-second, the parallel speedup, and — the hard
// gate — whether the parallel run reproduced the serial results
// bit-for-bit (docs/fleet-engine.md).
//
//   ./fleet_scaling [--quick] [--json BENCH_fleet.json] [--seed N]
//
// --quick shrinks the sweep for CI smoke runs; --json emits the full
// result grid machine-readably (the BENCH_fleet.json artifact).
// sgdrc-lint: allow-file(wall-clock) — the throughput section measures
// the *machine* (events/sec, sim-seconds per wall-second), the one place
// wall-clock belongs; simulated results never depend on it.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_cli.h"

#include "baselines/registry.h"
#include "common/json.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "core/harness.h"
#include "fleet/fleet.h"

using namespace sgdrc;
using namespace sgdrc::fleet;

namespace {

struct RunSpec {
  unsigned devices = 1;
  std::string placement;  // "spread" | "pack" | "qos-aware"
  std::string router;     // "round-robin" | "least-outstanding" | ...
  std::string system;     // "SGDRC" | "Multi-streaming"
};

struct RunResult {
  RunSpec spec;
  FleetMetrics metrics;
};

std::unique_ptr<PlacementPolicy> make_placement(const std::string& name) {
  if (name == "spread") return std::make_unique<SpreadPlacement>();
  if (name == "pack") return std::make_unique<PackPlacement>();
  if (name == "qos-aware") return std::make_unique<QosAwarePlacement>();
  SGDRC_REQUIRE(false, "unknown placement");
  return nullptr;
}

std::unique_ptr<Router> make_router(const std::string& name) {
  if (name == "round-robin") return std::make_unique<RoundRobinRouter>();
  if (name == "least-outstanding") {
    return std::make_unique<LeastOutstandingRouter>();
  }
  if (name == "qos-load-aware") return std::make_unique<QosLoadAwareRouter>();
  SGDRC_REQUIRE(false, "unknown router");
  return nullptr;
}

/// One fleet tenant per harness model. LS tenants get ≥2 replicas (so
/// routers have a choice) but fewer than the fleet size at 4+ GPUs (so
/// placements differ — replicas == devices would pin every strategy to
/// the same assignment).
std::vector<FleetTenantSpec> make_tenants(const core::ServingHarness& h,
                                          unsigned devices, bool spt) {
  const unsigned replicas = std::max(2u, (devices + 1) / 2);
  std::vector<FleetTenantSpec> out;
  for (size_t i = 0; i < h.ls_count(); ++i) {
    out.push_back(replicated(
        core::latency_sensitive_tenant(
            spt ? h.ls_model_spt(i) : h.ls_model(i), h.isolated_latency(i)),
        replicas));
  }
  for (size_t i = 0; i < h.be_count(); ++i) {
    out.push_back(replicated(
        core::best_effort_tenant(spt ? h.be_model_spt(i) : h.be_model(i)),
        replicas));
  }
  return out;
}

RunResult run_one(const core::ServingHarness& h, const RunSpec& spec,
                  const std::vector<workload::Request>& trace,
                  TimeNs duration, uint64_t seed) {
  const auto& sys = baselines::system(spec.system);
  FleetConfig cfg;
  // Homogeneous by construction: this bench scales *fleet shape*
  // (devices x placement x router), never device mix, so the single
  // `spec` (and the one implicit spec per JSON record) is intentional.
  // Heterogeneous fleets are scenario_sweep territory, where records
  // carry a per-device "device_specs" array.
  cfg.spec = h.options().spec;
  cfg.exec_params = h.options().exec_params;
  cfg.devices = spec.devices;
  cfg.duration = duration;
  // Constant SLO across every fleet shape: n = LS tenants + one BE slot,
  // as if the whole mix shared one GPU (the 1-device baseline).
  cfg.slo_multiplier = static_cast<double>(h.ls_count() + 1);
  cfg.seed = seed;
  cfg.dispatch_latency = 2 * kNsPerUs;
  cfg.dispatch_jitter = 3 * kNsPerUs;

  const auto placement = make_placement(spec.placement);
  const auto router = make_router(spec.router);
  FleetSim sim(cfg, make_tenants(h, spec.devices, sys.uses_spt), *placement,
               *router, sys.make);
  return {spec, sim.run(trace)};
}

/// Fleet-wide trace: total load scales with the device count so each
/// size runs at the same per-device utilisation.
std::vector<workload::Request> make_trace(const core::ServingHarness& h,
                                          unsigned devices,
                                          TimeNs duration, uint64_t seed) {
  workload::TraceOptions topt;
  topt.services = static_cast<unsigned>(h.ls_count());
  topt.duration = duration;
  topt.burstiness = h.options().burstiness;
  topt.seed = seed + devices;  // same trace for every config at a size
  for (size_t i = 0; i < h.ls_count(); ++i) {
    topt.per_service_rates.push_back(h.rate_for(i) *
                                     static_cast<double>(devices));
  }
  return workload::generate_apollo_like_trace(topt);
}

// ------------------------------------- sharded-engine throughput ----

struct ThroughputResult {
  unsigned devices = 0;
  unsigned threads = 0;       // parallel pool width
  TimeNs sim_duration = 0;
  uint64_t events = 0;        // engine events per run (serial == parallel)
  double serial_wall_ms = 0.0;
  double parallel_wall_ms = 0.0;
  bool matches_serial = false;  // parallel reproduced serial bit-for-bit

  double speedup() const {
    return parallel_wall_ms > 0.0 ? serial_wall_ms / parallel_wall_ms : 0.0;
  }
  static double events_per_s(uint64_t events, double wall_ms) {
    return wall_ms > 0.0 ? 1e3 * static_cast<double>(events) / wall_ms : 0.0;
  }
  /// Simulated seconds advanced per wall-clock second.
  static double sim_per_wall(TimeNs sim, double wall_ms) {
    return wall_ms > 0.0 ? to_ms(sim) / wall_ms : 0.0;
  }
};

/// Bit-exact fingerprint of a run — counters, router decisions, and raw
/// latency samples — mirroring tests/fleet_parallel_test.cc. Serial and
/// parallel must produce equal fingerprints (the matches_serial gate).
std::string fingerprint(const FleetMetrics& m) {
  std::ostringstream os;
  os.precision(17);
  os << m.events << '|';
  for (const uint64_t r : m.routed) os << r << ',';
  for (const auto& t : m.tenants) {
    os << '|' << t.arrived << ':' << t.served << ':' << t.attained << ':'
       << t.kernels_done << ':';
    for (const auto s : t.latency.raw()) os << s << ' ';
  }
  return os.str();
}

ThroughputResult run_throughput(const core::ServingHarness& h,
                                unsigned devices, TimeNs duration,
                                uint64_t seed, unsigned threads) {
  // The blind-router configuration is the throughput showcase: the
  // round-robin window lets dispatches coalesce, so the engine
  // barriers at control spacing instead of per dispatch.
  const RunSpec spec{devices, "spread", "round-robin", "SGDRC"};
  const auto trace = make_trace(h, devices, duration, seed);

  ThroughputResult out;
  out.devices = devices;
  out.threads = threads;
  out.sim_duration = duration;

  std::string prints[2];
  for (const bool parallel : {false, true}) {
    const auto& sys = baselines::system(spec.system);
    FleetConfig cfg;
    cfg.spec = h.options().spec;
    cfg.exec_params = h.options().exec_params;
    cfg.devices = devices;
    cfg.duration = duration;
    cfg.slo_multiplier = static_cast<double>(h.ls_count() + 1);
    cfg.seed = seed;
    cfg.dispatch_latency = 2 * kNsPerUs;
    cfg.dispatch_jitter = 3 * kNsPerUs;
    cfg.engine.parallel = parallel;
    cfg.engine.threads = threads;
    const auto placement = make_placement(spec.placement);
    const auto router = make_router(spec.router);
    FleetSim sim(cfg, make_tenants(h, devices, sys.uses_spt), *placement,
                 *router, sys.make);
    const auto start = std::chrono::steady_clock::now();
    const FleetMetrics m = sim.run(trace);
    const double wall_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count();
    prints[parallel ? 1 : 0] = fingerprint(m);
    if (parallel) {
      out.parallel_wall_ms = wall_ms;
    } else {
      out.serial_wall_ms = wall_ms;
      out.events = m.events;
    }
  }
  out.matches_serial = prints[0] == prints[1];
  return out;
}

void emit_json(const std::string& path, const std::vector<RunResult>& all,
               const std::vector<ThroughputResult>& throughput,
               TimeNs duration, bool quick) {
  std::ofstream os(path);
  SGDRC_REQUIRE(os.good(), "cannot open JSON output path");
  JsonWriter j(os);
  j.begin_object();
  j.kv("bench", "fleet_scaling");
  j.kv("quick", quick);
  j.kv("duration_ms", to_ms(duration));
  j.key("runs").begin_array();
  for (const auto& r : all) {
    const auto& m = r.metrics;
    j.begin_object();
    j.kv("devices", r.spec.devices);
    j.kv("placement", r.spec.placement);
    j.kv("router", r.spec.router);
    j.kv("system", r.spec.system);
    j.kv("slo_attainment", m.mean_attainment());
    j.kv("ls_goodput_per_s", m.ls_goodput());
    j.kv("be_samples_per_s", m.be_throughput());
    j.kv("overall_per_s", m.overall_throughput());
    j.kv("fleet_p99_ms", m.fleet_p99_ms());
    j.kv("imbalance_cv", m.imbalance_cv());
    j.kv("imbalance_max_over_mean", m.imbalance_max_over_mean());
    j.key("routed_per_device").begin_array();
    for (const uint64_t d : m.routed) j.value(d);
    j.end_array();
    j.key("ls_tenants").begin_array();
    for (const auto& t : m.tenants) {
      if (t.qos != workload::QosClass::kLatencySensitive) continue;
      j.begin_object();
      j.kv("letter", std::string(1, t.letter));
      j.kv("p99_ms", t.p99_ms());
      j.kv("attainment", t.attainment());
      j.kv("served", t.served);
      j.end_object();
    }
    j.end_array();
    j.end_object();
  }
  j.end_array();
  // The sharded-engine throughput section. hw_threads records the
  // machine the numbers came from: wall-clock metrics only mean
  // something relative to it, and the CI gate checks the >=3x parallel
  // speedup only when the recording machine actually had 8+ hardware
  // threads (matches_serial is gated unconditionally).
  j.kv("hw_threads",
       static_cast<uint64_t>(std::thread::hardware_concurrency()));
  j.key("throughput").begin_array();
  for (const auto& r : throughput) {
    j.begin_object();
    j.kv("devices", r.devices);
    j.kv("threads", r.threads);
    j.kv("sim_ms", to_ms(r.sim_duration));
    j.kv("events", r.events);
    j.kv("serial_wall_ms", r.serial_wall_ms);
    j.kv("parallel_wall_ms", r.parallel_wall_ms);
    j.kv("serial_events_per_s",
         ThroughputResult::events_per_s(r.events, r.serial_wall_ms));
    j.kv("parallel_events_per_s",
         ThroughputResult::events_per_s(r.events, r.parallel_wall_ms));
    j.kv("serial_sim_s_per_wall_s",
         ThroughputResult::sim_per_wall(r.sim_duration, r.serial_wall_ms));
    j.kv("parallel_sim_s_per_wall_s",
         ThroughputResult::sim_per_wall(r.sim_duration, r.parallel_wall_ms));
    j.kv("speedup", r.speedup());
    j.kv("matches_serial", r.matches_serial);
    j.end_object();
  }
  j.end_array();
  j.end_object();
  std::printf("wrote %s (%zu runs, %zu throughput cells)\n", path.c_str(),
              all.size(), throughput.size());
}

}  // namespace

int main(int argc, char** argv) {
  const auto cli = sgdrc::bench::BenchCli::parse(argc, argv);
  const bool quick = cli.quick;
  const uint64_t seed = cli.seed_or(0xf1ee7);

  const TimeNs duration = quick ? 150 * kNsPerMs : 500 * kNsPerMs;
  const std::vector<unsigned> device_counts =
      quick ? std::vector<unsigned>{1, 2, 4} : std::vector<unsigned>{1, 2, 4, 8};

  core::HarnessOptions o;
  o.spec = gpusim::rtx_a2000();
  o.ls_letters = "ABC";
  o.be_letters = "IJ";
  o.utilization = 0.8;
  o.burstiness = 0.35;
  o.duration = duration;
  o.seed = seed;
  const core::ServingHarness h(o);

  std::vector<RunSpec> specs;
  for (const unsigned d : device_counts) {
    for (const char* placement : {"spread", "pack"}) {
      for (const char* router : {"round-robin", "least-outstanding"}) {
        for (const char* system : {"SGDRC", "Multi-streaming"}) {
          specs.push_back({d, placement, router, system});
        }
      }
    }
    // Showcase of the QoS-aware variants (full grid would be 3×3×2).
    specs.push_back({d, "qos-aware", "qos-load-aware", "SGDRC"});
  }

  std::printf("fleet scaling on %s: %zu LS + %zu BE tenants, %zu configs\n",
              o.spec.name.c_str(), h.ls_count(), h.be_count(), specs.size());

  // Traces are shared per device count; fleet runs are independent.
  std::vector<std::vector<workload::Request>> traces;
  for (const unsigned d : device_counts) {
    traces.push_back(make_trace(h, d, duration, seed));
  }
  auto trace_for = [&](unsigned d) -> const std::vector<workload::Request>& {
    for (size_t i = 0; i < device_counts.size(); ++i) {
      if (device_counts[i] == d) return traces[i];
    }
    SGDRC_REQUIRE(false, "no trace for device count");
    return traces[0];
  };

  std::vector<RunResult> results(specs.size());
  ThreadPool pool(8);
  pool.parallel_for(specs.size(), [&](size_t i) {
    results[i] =
        run_one(h, specs[i], trace_for(specs[i].devices), duration, seed);
  });

  TextTable t({"GPUs", "placement", "router", "system", "SLO att.",
               "LS goodput/s", "BE samples/s", "fleet p99 ms", "imb. cv",
               "max/mean"});
  for (const auto& r : results) {
    const auto& m = r.metrics;
    t.add_row({std::to_string(r.spec.devices), r.spec.placement,
               r.spec.router, r.spec.system,
               TextTable::pct(m.mean_attainment()),
               TextTable::num(m.ls_goodput(), 0),
               TextTable::num(m.be_throughput(), 1),
               TextTable::num(m.fleet_p99_ms(), 2),
               TextTable::num(m.imbalance_cv(), 3),
               TextTable::num(m.imbalance_max_over_mean(), 2)});
  }
  t.print();

  // Headline: does per-device SGDRC beat the baseline fleet-wide at the
  // largest size, per placement × router cell?
  const unsigned top = device_counts.back();
  std::printf("\nat %u GPUs (goodput SGDRC vs Multi-streaming):\n", top);
  for (const auto& a : results) {
    if (a.spec.devices != top || a.spec.system != "SGDRC") continue;
    for (const auto& b : results) {
      if (b.spec.devices == top && b.spec.system == "Multi-streaming" &&
          b.spec.placement == a.spec.placement &&
          b.spec.router == a.spec.router) {
        std::printf("  %-7s + %-17s  %7.0f vs %7.0f  (%.2fx)\n",
                    a.spec.placement.c_str(), a.spec.router.c_str(),
                    a.metrics.ls_goodput(), b.metrics.ls_goodput(),
                    b.metrics.ls_goodput() > 0
                        ? a.metrics.ls_goodput() / b.metrics.ls_goodput()
                        : 0.0);
      }
    }
  }

  // ---- sharded-engine throughput: serial vs parallel, big fleets ----
  // Runs are timed, so they execute sequentially with the whole machine
  // to themselves (the grid above already released the pool).
  const std::vector<unsigned> big_fleets =
      quick ? std::vector<unsigned>{256}
            : std::vector<unsigned>{256, 512, 1024};
  const TimeNs tp_duration = quick ? 40 * kNsPerMs : 200 * kNsPerMs;
  const unsigned tp_threads =
      std::max(1u, std::thread::hardware_concurrency());
  std::vector<ThroughputResult> throughput;
  for (const unsigned d : big_fleets) {
    throughput.push_back(run_throughput(h, d, tp_duration, seed, tp_threads));
  }

  std::printf("\nsharded engine, %u worker thread(s), %u hw thread(s):\n",
              tp_threads, std::thread::hardware_concurrency());
  TextTable tp({"GPUs", "events", "serial ms", "parallel ms", "speedup",
                "par Mev/s", "par sim-s/wall-s", "bit-identical"});
  bool all_match = true;
  for (const auto& r : throughput) {
    all_match = all_match && r.matches_serial;
    tp.add_row({std::to_string(r.devices), std::to_string(r.events),
                TextTable::num(r.serial_wall_ms, 1),
                TextTable::num(r.parallel_wall_ms, 1),
                TextTable::num(r.speedup(), 2),
                TextTable::num(ThroughputResult::events_per_s(
                                   r.events, r.parallel_wall_ms) /
                                   1e6,
                               2),
                TextTable::num(ThroughputResult::sim_per_wall(
                                   r.sim_duration, r.parallel_wall_ms),
                               3),
                r.matches_serial ? "yes" : "NO"});
  }
  tp.print();

  if (!cli.json_path.empty()) {
    emit_json(cli.json_path, results, throughput, duration, quick);
  }
  if (!all_match) {
    std::printf("FAIL: parallel engine diverged from serial results\n");
    return 1;
  }
  return 0;
}
