// §5.3 / Fig. 11 — cracking the VRAM channel hash mapping:
//  * SGDRC: timing-probe marking (majority-denoised) → 15 K samples →
//    train the DNN → lookup table; report accuracy vs the silicon oracle.
//  * FGPU baseline: XOR equation system — works on the GTX 1080 (linear
//    hash), turns inconsistent on P40/A2000 (non-linear) and is polluted
//    by even one noisy sample.
#include <cstdio>

#include "common/table.h"
#include "gpusim/device.h"
#include "reveng/fgpu_xor.h"
#include "reveng/lut.h"
#include "reveng/pipeline.h"
#include "reveng/marker.h"
#include "reveng/probe_arena.h"

using namespace sgdrc;
using namespace sgdrc::gpusim;
using namespace sgdrc::reveng;

int main() {
  std::printf("§5.3 — DNN-based hash learning vs FGPU's XOR solver\n\n");

  // The paper runs its DNN campaign on the two non-linear parts; the
  // GTX 1080's linear hash is FGPU's home turf and needs no DNN.
  TextTable t({"GPU", "samples", "probe noise", "holdout acc.",
               "LUT vs oracle"});
  for (const GpuSpec& spec : {tesla_p40(), rtx_a2000()}) {
    GpuDevice dev(spec, /*process_seed=*/0x5eed1);
    PipelineOptions opt;
    opt.samples = 15000;  // the paper's campaign size
    opt.hidden = {96, 48};
    opt.train.epochs = 60;
    HashCracker cracker(dev, opt);
    const auto report = cracker.run();

    // Score a lookup table over a 256 MiB window against the oracle.
    const auto lut = cracker.build_lut(0, 256ull << 20);
    const double lut_acc = lut_oracle_accuracy(lut, dev.oracle(), 20000, 7);

    t.add_row({spec.name, std::to_string(report.samples_collected),
               TextTable::pct(report.single_trial_noise),
               TextTable::pct(report.holdout_accuracy),
               TextTable::pct(lut_acc)});
  }
  t.print();

  std::printf(
      "\nFGPU's XOR equation solver on measured (majority-denoised) "
      "samples:\n");
  {
    TextTable f({"GPU", "system", "result"});
    for (const GpuSpec& spec : {gtx1080(), tesla_p40(), rtx_a2000()}) {
      GpuDevice dev(spec, 0x7a11);
      ProbeArena arena(dev, 0.9);
      ConflictProber prober(arena);
      prober.calibrate();
      ChannelMarker marker(arena, prober);
      marker.build(spec.num_channels);
      // FGPU needs only ~dozens of equations; heavy majority voting gets
      // this small set nearly noise-free (repeats=9).
      std::vector<std::pair<PhysAddr, unsigned>> samples;
      Rng rng(11);
      const uint64_t parts = arena.bytes() >> kPartitionBits;
      while (samples.size() < 120) {
        const PhysAddr pa = dev.pa_of(
            arena.base() + rng.uniform_u64(parts) * kPartitionBytes);
        if (const auto l = marker.label(pa, 9)) {
          samples.emplace_back(pa, *l);
        }
      }
      const auto fgpu = fgpu_solve(samples, spec.num_channels);
      std::string result;
      if (fgpu.success) {
        const auto flut = ChannelLut::from_function(
            [&](PhysAddr pa) {
              return static_cast<int>(fgpu_predict(fgpu, pa));
            },
            0, 256ull << 20, spec.num_channels);
        result = "solved; oracle acc " +
                 TextTable::pct(
                     lut_oracle_accuracy(flut, dev.oracle(), 20000, 9));
      } else {
        result = "FAILED: " + fgpu.failure.substr(0, 44);
      }
      f.add_row({spec.name, std::string("FGPU [23]"), result});
    }
    f.print();
  }

  std::printf(
      "\nFig. 11's noise claim — one flipped sample breaks FGPU's system\n"
      "even on the linear GTX 1080:\n");
  {
    GpuDevice dev(gtx1080(), 0xbad);
    Rng rng(3);
    std::vector<std::pair<PhysAddr, unsigned>> samples;
    for (int i = 0; i < 400; ++i) {
      const PhysAddr pa =
          rng.uniform_u64(dev.spec().partitions()) * kPartitionBytes;
      samples.emplace_back(pa, dev.oracle().channel_of(pa));
    }
    const auto clean = fgpu_solve(samples, dev.spec().num_channels);
    samples[100].second = (samples[100].second + 1) % 8;
    const auto noisy = fgpu_solve(samples, dev.spec().num_channels);
    std::printf("  clean samples: %s | one false positive: %s\n",
                clean.success ? "solved" : "failed",
                noisy.success ? "solved" : "failed");
  }

  std::printf(
      "\nPaper: the DNN labels >99.9%% of unseen addresses correctly;\n"
      "FGPU's assumption holds only on the GTX 1080 and collapses under\n"
      "the ~1%%/~5%% cache noise of Pascal/Ampere parts.\n");
  return 0;
}
