// Fig. 16 — VRAM footprints introduced by bimodal tensors, per model:
// original tensors (reuse disabled), bimodal without reuse (~2×), and
// bimodal with intermediate-tensor reuse (recovers most of the cost,
// especially for the large-batch BE models I∼K).
#include <cstdio>

#include "common/table.h"
#include "core/profiler.h"
#include "gpusim/gpu_spec.h"
#include "models/footprint.h"
#include "models/zoo.h"

using namespace sgdrc;
using namespace sgdrc::models;

int main() {
  core::OfflineProfiler prof(gpusim::rtx_a2000());

  std::printf(
      "Fig. 16 — normalized VRAM footprints (1.0 = original tensors,\n"
      "reuse disabled). W = weights share of the original footprint.\n\n");
  TextTable t({"Model", "W", "orig", "bimodal (no reuse)",
               "bimodal (reuse)"});
  for (auto& m : standard_zoo()) {
    prof.profile(m);  // sets memory-bound flags (the duplicated subset)
    const auto fp = analyze_footprint(m);
    const double base = static_cast<double>(fp.original(false));
    t.add_row({std::string(1, m.letter) + " " + m.name,
               TextTable::pct(static_cast<double>(fp.weight_bytes) / base),
               TextTable::num(1.0, 2),
               TextTable::num(static_cast<double>(fp.bimodal(false)) / base, 2),
               TextTable::num(static_cast<double>(fp.bimodal(true)) / base, 2)});
  }
  t.print();
  std::printf(
      "\nShape check (paper §9.1.3): without reuse the footprints of all\n"
      "DNNs nearly double; reuse recovers most of it, most visibly for\n"
      "the large-batch BE models I~K.\n");
  return 0;
}
