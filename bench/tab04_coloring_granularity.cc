// Tab. 4 / §A.3 — coloring granularities: minimum (channel partition
// size), maximum (# contiguous channels), and the granularity-selection
// rule for 2^N vs non-power-of-two channel allocations.
#include <cstdio>

#include "coloring/rules.h"
#include "common/table.h"
#include "gpusim/gpu_spec.h"

using namespace sgdrc;
using namespace sgdrc::gpusim;

int main() {
  std::printf("Tab. 4 — coloring granularities\n\n");
  TextTable t({"GPU", "Min gran. (KiB)", "Max gran. (KiB)",
               "# contiguous channels", "# channels"});
  for (const GpuSpec& s : {gtx1080(), tesla_p40(), rtx_a2000()}) {
    t.add_row({s.name, std::to_string(coloring::min_granularity_kib(s)),
               std::to_string(coloring::max_granularity_kib(s)),
               std::to_string(s.channel_group_size),
               std::to_string(s.num_channels)});
  }
  t.print();

  std::printf("\n§A.3 rule — granularity for a task owning N channels\n\n");
  TextTable r({"GPU", "N=1", "N=2", "N=3", "N=4", "N=6"});
  for (const GpuSpec& s : {tesla_p40(), rtx_a2000()}) {
    std::vector<std::string> row{s.name};
    for (const unsigned n : {1u, 2u, 3u, 4u, 6u}) {
      if (n > s.num_channels) {
        row.push_back("-");
      } else {
        row.push_back(std::to_string(coloring::granularity_for(s, n)) +
                      " KiB");
      }
    }
    r.add_row(row);
  }
  r.print();
  std::printf(
      "\nRule check: 2^N channels -> min(2^N, max) KiB; non-power-of-two\n"
      "allocations can only be colored at 1 KiB.\n");
  return 0;
}
