// Fig. 3 — resource contention in GPU sharing (RTX A2000 testbed).
//  (a) intra-SM conflicts: victim matmul vs compute / compute+L1
//      interference tasks sharing the same SMs;
//  (b) inter-SM conflicts: victim matmul vs VRAM-thrashing tasks on
//      disjoint SMs (shared channels).
// The victim's p99 latency grows with interferer count in both cases.
#include <cstdio>
#include <functional>
#include <vector>

#include "common/event_queue.h"
#include "common/stats.h"
#include "common/table.h"
#include "gpusim/executor.h"
#include "gpusim/gpu_spec.h"

using namespace sgdrc;
using namespace sgdrc::gpusim;

namespace {

KernelDesc matmul_victim() {
  KernelDesc k;
  k.name = "victim.matmul";
  k.flops = 400'000'000;  // ~0.65ms on 1 TPC of the A2000
  k.bytes = 6'000'000;
  k.blocks = 1024;
  k.max_useful_tpcs = 2.0;
  return k;
}

KernelDesc compute_interferer(bool with_l1) {
  KernelDesc k;
  k.name = with_l1 ? "interf.comp+l1c" : "interf.comp";
  k.flops = 4'000'000'000ull;
  // The L1-cache interference task also streams data, amplifying the
  // intra-SM pressure (§2.2's "L1C" series).
  k.bytes = with_l1 ? 400'000'000ull : 4'000'000ull;
  k.blocks = 4096;
  k.max_useful_tpcs = 64;
  return k;
}

KernelDesc vram_interferer() {
  KernelDesc k;
  k.name = "interf.vram";
  k.flops = 1000;
  k.bytes = 2'000'000'000ull;  // continuously read/write VRAM (L2 misses)
  k.blocks = 4096;
  k.max_useful_tpcs = 64;
  return k;
}

// p99 of the victim across repeated executions with n interferers.
double victim_p99_ms(const GpuSpec& spec, const KernelDesc& victim,
                     const KernelDesc& interferer, unsigned n,
                     bool share_sms) {
  EventQueue q;
  GpuExecutor exec(spec, q);
  // Interferers run "forever" (relaunched on completion). The relaunch
  // closures outlive the whole simulation.
  std::vector<std::function<void()>> relaunchers(n);
  for (unsigned i = 0; i < n; ++i) {
    const TpcMask mask =
        share_sms ? tpc_range(0, 2)  // same SMs as the victim
                  : tpc_range(2 + 2 * (i % 5), 2);
    relaunchers[i] = [&exec, &interferer, mask, &relaunchers, i]() {
      exec.launch({&interferer, mask, 0},
                  [&relaunchers, i](GpuExecutor::LaunchId, TimeNs) {
                    relaunchers[i]();
                  });
    };
    relaunchers[i]();
  }
  Samples lat;
  TimeNs start = 0;
  std::function<void()> run_victim = [&]() {
    if (lat.count() >= 50) return;
    start = q.now();
    exec.launch({&victim, tpc_range(0, 2), 0},
                [&](GpuExecutor::LaunchId, TimeNs t) {
                  lat.add(to_ms(t - start));
                  run_victim();
                });
  };
  run_victim();
  q.run_until(2 * kNsPerSec);
  return lat.empty() ? 0.0 : lat.p99();
}

}  // namespace

int main() {
  const GpuSpec spec = rtx_a2000();
  const KernelDesc victim = matmul_victim();

  std::printf("Fig. 3a — intra-SM conflicts (victim p99, ms; RTX A2000)\n\n");
  {
    TextTable t({"# interference tasks", "Comp.", "Comp. + L1C"});
    const KernelDesc comp = compute_interferer(false);
    const KernelDesc l1c = compute_interferer(true);
    for (unsigned n = 0; n <= 4; ++n) {
      t.add_row({std::to_string(n),
                 TextTable::num(victim_p99_ms(spec, victim, comp, n, true), 3),
                 TextTable::num(victim_p99_ms(spec, victim, l1c, n, true), 3)});
    }
    t.print();
  }

  std::printf(
      "\nFig. 3b — inter-SM conflicts (disjoint SMs, shared channels)\n\n");
  {
    TextTable t({"# interference tasks", "victim p99 (ms)"});
    const KernelDesc vram = vram_interferer();
    for (unsigned n = 0; n <= 4; ++n) {
      t.add_row({std::to_string(n), TextTable::num(victim_p99_ms(
                                        spec, victim, vram, n, false), 3)});
    }
    t.print();
  }
  std::printf(
      "\nShape check: p99 grows monotonically with interferer count; the\n"
      "L1C variant exceeds pure compute; VRAM interferers degrade the\n"
      "victim without sharing a single SM (the conflict coloring removes).\n");
  return 0;
}
