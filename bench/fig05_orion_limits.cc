// Fig. 5 — interference-aware multiplexing (Orion) is no panacea:
//  (a) as LS load rises, Orion keeps the SLO but its BE throughput
//      declines sharply (the scheduler cannot find safe co-execution
//      slots);
//  (b) constraint census over the BE models I∼K: fraction of BE kernels
//      subject to each constraint class (Res / SM / Runtime) — the paper
//      reports 73.8% of kernels face at least one.
#include <cstdio>

#include "baselines/baseline_policies.h"
#include "common/table.h"
#include "core/harness.h"
#include "core/profiler.h"
#include "models/zoo.h"

using namespace sgdrc;
using namespace sgdrc::core;

int main() {
  const auto spec = gpusim::rtx_a2000();

  std::printf("Fig. 5a — Orion under rising LS load (RTX A2000)\n\n");
  {
    TextTable t({"load", "SLO att.", "BE samples/s", "admit", "rejected"});
    for (const double load : {0.25, 0.5, 0.75, 1.0}) {
      HarnessOptions o;
      o.spec = spec;
      o.ls_letters = "A";
      o.be_letters = "J";
      o.utilization = 0.5;  // the LS service stays within its SLO
      o.load_scale = load;
      o.burstiness = 0.35;
      o.duration = 1 * kNsPerSec;
      o.seed = 43;
      ServingHarness h(o);
      baselines::OrionPolicy orion;
      const auto m = h.run(orion, false);
      t.add_row({TextTable::num(load, 2), TextTable::pct(m.mean_attainment()),
                 TextTable::num(m.be_throughput(), 1),
                 std::to_string(orion.admitted()),
                 std::to_string(orion.rejected_sm() +
                                orion.rejected_runtime() +
                                orion.rejected_resource())});
    }
    t.print();
  }

  std::printf(
      "\nFig. 5b — scheduling constraints on BE kernels (models I~K)\n\n");
  {
    OfflineProfiler prof(spec);
    // The LS co-runner context: median LS kernel runtime and spare SMs.
    auto ls = models::mobilenet_v3();
    prof.profile(ls);
    EventQueue q;
    gpusim::GpuExecutor exec(spec, q);
    Samples ls_rt;
    unsigned ls_sm = 0;
    for (const auto& k : ls.kernels) {
      ls_rt.add(static_cast<double>(exec.solo_runtime(
          k, spec.num_tpcs, spec.num_channels, false)));
      ls_sm = std::max(ls_sm, k.min_tpcs);
    }
    const double ref_ls_rt = ls_rt.p95();  // a generous co-runner budget
    const unsigned spare_tpcs = spec.num_tpcs - ls_sm;

    TextTable t({"BE model", "kernels", "Res.", "SM", "Runtime",
                 ">=1 constraint"});
    uint64_t total = 0, constrained = 0;
    for (const char letter : {'I', 'J', 'K'}) {
      auto m = models::make_model(letter);
      prof.profile(m);
      uint64_t res = 0, sm = 0, rt = 0, any = 0;
      for (const auto& k : m.kernels) {
        const bool c_res = k.memory_bound;  // memory-pressure constraint
        const bool c_sm = k.min_tpcs > spare_tpcs;
        const bool c_rt =
            static_cast<double>(exec.solo_runtime(
                k, spec.num_tpcs, spec.num_channels, false)) >
            3.0 * ref_ls_rt;
        res += c_res;
        sm += c_sm;
        rt += c_rt;
        any += c_res || c_sm || c_rt;
      }
      total += m.kernels.size();
      constrained += any;
      t.add_row({m.name, std::to_string(m.kernels.size()),
                 TextTable::pct(static_cast<double>(res) / m.kernels.size()),
                 TextTable::pct(static_cast<double>(sm) / m.kernels.size()),
                 TextTable::pct(static_cast<double>(rt) / m.kernels.size()),
                 TextTable::pct(static_cast<double>(any) / m.kernels.size())});
    }
    t.print();
    std::printf(
        "\nOverall: %.1f%% of BE kernels face >=1 constraint "
        "(paper: 73.8%%).\n",
        100.0 * static_cast<double>(constrained) /
            static_cast<double>(total));
  }
  return 0;
}
