// Shared argv parsing for the JSON-emitting benches (fig17_end_to_end,
// fleet_scaling, scenario_sweep):
//
//   ./bench [--quick] [--json PATH] [--seed N]
//
// --quick shrinks the run for CI smoke, --json emits the BENCH_*.json
// artifact the CI perf gate compares against bench/baselines/, --seed
// overrides the bench's default RNG seed (0 keeps the default so
// baselines stay reproducible).
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace sgdrc::bench {

struct BenchCli {
  bool quick = false;
  std::string json_path;
  uint64_t seed = 0;  // 0 = keep the bench default

  uint64_t seed_or(uint64_t fallback) const { return seed ? seed : fallback; }

  /// Parse argv; prints usage and exits(2) on unknown flags.
  static BenchCli parse(int argc, char** argv) {
    BenchCli cli;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--quick") == 0) {
        cli.quick = true;
      } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
        cli.json_path = argv[++i];
      } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
        cli.seed = std::strtoull(argv[++i], nullptr, 0);
      } else {
        std::fprintf(stderr,
                     "usage: %s [--quick] [--json PATH] [--seed N]\n",
                     argv[0]);
        std::exit(2);
      }
    }
    return cli;
  }
};

}  // namespace sgdrc::bench
