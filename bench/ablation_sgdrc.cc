// Ablations of SGDRC's design choices (DESIGN.md §4):
//  * ChBE sweep — the BE channel share trades LS tail latency against BE
//    throughput (§6 fixes 1/3);
//  * sliding-window length — SM reservation depth (§7.1);
//  * monopolisation (tide-out promotion) on/off — the dynamic half of
//    "dynamic resource control".
#include <cstdio>

#include "common/table.h"
#include "core/harness.h"
#include "core/sgdrc_policy.h"

using namespace sgdrc;
using namespace sgdrc::core;

int main() {
  HarnessOptions o;
  o.spec = gpusim::rtx_a2000();
  o.utilization = 1.45;
  o.load_scale = 0.75;
  o.burstiness = 0.35;
  o.duration = 1 * kNsPerSec;
  o.seed = 0xab1a;
  const ServingHarness h(o);

  std::printf("Ablation 1 — ChBE (BE channel share), RTX A2000\n\n");
  {
    TextTable t({"ChBE", "SLO att.", "BE samples/s", "overall/s"});
    for (const double ch : {1.0 / 6.0, 1.0 / 3.0, 1.0 / 2.0, 2.0 / 3.0}) {
      SgdrcOptions opt;
      opt.ch_be = ch;
      SgdrcPolicy p(o.spec, opt);
      const auto m = h.run(p, true);
      t.add_row({TextTable::num(ch, 2), TextTable::pct(m.mean_attainment()),
                 TextTable::num(m.be_throughput(), 1),
                 TextTable::num(m.overall_throughput(), 0)});
    }
    t.print();
  }

  std::printf("\nAblation 2 — sliding-window length (§7.1)\n\n");
  {
    TextTable t({"window", "SLO att.", "BE samples/s", "evictions"});
    for (const size_t w : {1ul, 4ul, 8ul, 16ul}) {
      SgdrcOptions opt;
      opt.sliding_window = w;
      SgdrcPolicy p(o.spec, opt);
      const auto m = h.run(p, true);
      uint64_t ev = 0;
      for (const auto* b : m.of_class(workload::QosClass::kBestEffort)) {
        ev += b->evictions;
      }
      t.add_row({std::to_string(w), TextTable::pct(m.mean_attainment()),
                 TextTable::num(m.be_throughput(), 1), std::to_string(ev)});
    }
    t.print();
  }

  std::printf("\nAblation 3 — reserve decay (tide inertia)\n\n");
  {
    TextTable t({"decay interval", "SLO att.", "BE samples/s"});
    for (const TimeNs d : {20 * kNsPerUs, 100 * kNsPerUs, 500 * kNsPerUs,
                           2000 * kNsPerUs}) {
      SgdrcOptions opt;
      opt.reserve_decay_interval = d;
      SgdrcPolicy p(o.spec, opt);
      const auto m = h.run(p, true);
      t.add_row({format_time(d), TextTable::pct(m.mean_attainment()),
                 TextTable::num(m.be_throughput(), 1)});
    }
    t.print();
  }
  return 0;
}
