// GPU memory virtualization under pressure: a 12-service model fleet on
// 2 devices whose summed weight footprint is swept to 1x..6x the modeled
// VRAM (vram = sum weights / pressure). Traffic rotates through hot sets
// in three phases — the residency layer must keep re-deciding which
// weights stay warm — while service 0 holds a declared memory quota and
// stays hot all run. Two systems, both on the SGDRC controller:
//
//   * SGDRC (memory-quota)   — LRU-by-tenant-priority eviction that
//                              respects quotas and in-flight work, plus
//                              the warm-weight router that steers each
//                              request to a resident replica;
//   * Naive (resident-FIFO)  — first-loaded-first-evicted, blind to
//                              quotas, priority, and activity, behind a
//                              residency-blind least-outstanding router.
//
// The headline: SGDRC's cold-start p99 beats the naive stack at every
// pressure ratio >= 2x (no cold requests at all counts as a win).
//
//   ./memory_pressure [--quick] [--json BENCH_memory.json] [--seed N]
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "baselines/registry.h"
#include "bench_cli.h"
#include "common/json.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "core/harness.h"
#include "workload/scenario.h"

using namespace sgdrc;
using namespace sgdrc::workload;

namespace {

constexpr unsigned kServices = 12;  // service i runs model letters[i % 6]
constexpr unsigned kDevices = 2;
constexpr double kColdMult = 0.15;  // trickle rate for out-of-phase services

struct Cell {
  double pressure = 1.0;  // sum(weights) / modeled VRAM
  bool sgdrc = true;      // memory-quota stack vs the naive FIFO stack
};

struct CellResult {
  Cell cell;
  uint64_t vram_bytes = 0;
  fleet::FleetMetrics metrics;
  size_t requests = 0;
};

const char* label(const Cell& c) {
  return c.sgdrc ? "SGDRC (memory-quota)" : "Naive (resident-FIFO)";
}

/// The 12 scripted services: every tenant replicated on both devices, so
/// each device's registered footprint is the full model zoo. Service 0
/// (the quota holder under SGDRC) pins its weights with a declared
/// memory_bytes guarantee and priority.
std::vector<ScenarioTenant> make_tenants(const core::ServingHarness& h,
                                         bool quota) {
  std::vector<ScenarioTenant> out;
  for (unsigned s = 0; s < kServices; ++s) {
    const size_t m = s % h.ls_count();
    core::TenantSpec spec = core::latency_sensitive_tenant(
        h.ls_model(m), h.isolated_latency(m));
    if (s == 0 && quota) {
      spec.vgpu.priority = 1;
      spec.vgpu.memory_bytes = spec.model.weight_bytes();
    }
    out.push_back({std::move(spec),
                   h.rate_for(m) * static_cast<double>(kDevices), kDevices});
  }
  return out;
}

/// A rolling hot set: each of services 1-11 runs at full rate for one
/// third of the run, with starts staggered evenly across the first two
/// thirds — so ~4-5 services are hot at any moment and the hot set
/// shifts by one service at a time (no synchronized mass flips). Cold
/// services idle at a trickle — exactly the traffic that pays cold
/// starts when the evictor guesses wrong; service 0 is hot throughout.
Scenario make_scenario(TimeNs d, const memory::MemoryOptions& mem) {
  Scenario sc("memory-pressure",
              "12 services, a rolling hot set, weights swept past VRAM",
              d);
  sc.devices(kDevices).memory(mem);
  for (unsigned s = 1; s < kServices; ++s) {
    const TimeNs hot_from = (s - 1) * (2 * d / 3) / (kServices - 2);
    const TimeNs hot_to = hot_from + d / 3;
    if (hot_from > 0) sc.rate(s, 0, kColdMult);
    sc.rate(s, hot_from, 1.0);
    if (hot_to < d) sc.rate(s, hot_to, kColdMult);
  }
  return sc;
}

CellResult run_cell(const core::ServingHarness& h, const Cell& cell,
                    uint64_t total_weights, TimeNs duration, uint64_t seed) {
  memory::MemoryOptions mem;
  mem.enabled = true;
  mem.vram_bytes_override = static_cast<uint64_t>(
      static_cast<double>(total_weights) / cell.pressure);
  mem.oversubscribe = true;
  // PCIe gen3-class weight streaming: heavy enough that a wrong
  // eviction costs real tail latency at every swept pressure.
  mem.load_gbps = 8.0;
  mem.evict = cell.sgdrc ? memory::EvictPolicy::kLruPriority
                         : memory::EvictPolicy::kFifo;

  ScenarioEngineConfig ecfg;
  ecfg.spec = h.options().spec;
  ecfg.exec_params = h.options().exec_params;
  ecfg.slo_multiplier = 8.0;
  ecfg.seed = seed;
  ecfg.burstiness = h.options().burstiness;

  const Scenario sc = make_scenario(duration, mem);
  // Placement is forced here (replicas == devices), but the quota stack
  // goes through the byte-aware bin-packer all the same — the path the
  // fleet layer uses when placements are real.
  fleet::QuotaAwarePlacement quota_placement(ecfg.spec.num_tpcs,
                                             mem.vram_bytes_override);
  fleet::SpreadPlacement spread_placement;
  const fleet::PlacementPolicy& placement =
      cell.sgdrc ? static_cast<const fleet::PlacementPolicy&>(quota_placement)
                 : spread_placement;
  fleet::WarmWeightRouter warm_router;
  fleet::LeastOutstandingRouter naive_router;
  fleet::Router& router =
      cell.sgdrc ? static_cast<fleet::Router&>(warm_router) : naive_router;

  const auto outcome =
      run_scenario(sc, make_tenants(h, cell.sgdrc), ecfg, placement, router,
                   baselines::system("SGDRC").make);
  return {cell, mem.vram_bytes_override, outcome.metrics, outcome.requests};
}

void emit_json(const std::string& path, const std::vector<CellResult>& all,
               TimeNs duration, bool quick, unsigned wins, unsigned compared) {
  std::ofstream os(path);
  SGDRC_REQUIRE(os.good(), "cannot open JSON output path");
  JsonWriter j(os);
  j.begin_object();
  j.kv("bench", "memory_pressure");
  j.kv("quick", quick);
  j.kv("duration_ms", to_ms(duration));
  j.kv("sgdrc_cold_p99_wins", static_cast<uint64_t>(wins));
  j.kv("compared_pressures", static_cast<uint64_t>(compared));
  j.key("cells").begin_array();
  for (const auto& r : all) {
    const auto& m = r.metrics;
    j.begin_object();
    j.kv("pressure", r.cell.pressure);
    j.kv("vram_mb", static_cast<double>(r.vram_bytes) / (1024.0 * 1024.0));
    j.kv("system", label(r.cell));
    j.kv("p99_ms", m.fleet_p99_ms());
    // No cold requests -> no cold p99: null, the best possible outcome
    // (the gate's null-propagation treats a regression *to* null on the
    // naive side as data loss, so the asymmetry is handled there).
    j.kv("cold_start_p99_ms", m.cold_start_p99_ms());
    j.kv("cold_requests", m.cold_requests());
    j.kv("weight_loads", m.weight_loads());
    j.kv("weight_evictions", m.weight_evictions());
    j.kv("paged_requests", m.paged_requests());
    j.kv("goodput_per_s", m.ls_goodput());
    j.kv("attainment", m.mean_attainment());
    const double att = m.mean_attainment();
    if (std::isnan(att)) {
      j.kv("slo_ok", std::numeric_limits<double>::quiet_NaN());
    } else {
      j.kv("slo_ok", att >= 0.9);
    }
    j.kv("memory_trespasses", m.memory_trespasses());
    j.kv("requests", static_cast<uint64_t>(r.requests));
    j.end_object();
  }
  j.end_array();
  j.end_object();
  std::printf("wrote %s (%zu cells)\n", path.c_str(), all.size());
}

}  // namespace

int main(int argc, char** argv) {
  const auto cli = sgdrc::bench::BenchCli::parse(argc, argv);
  const uint64_t seed = cli.seed_or(0x3e30);
  const TimeNs duration = cli.quick ? 300 * kNsPerMs : 1 * kNsPerSec;
  const std::vector<double> pressures =
      cli.quick ? std::vector<double>{2, 4} : std::vector<double>{1, 2, 4, 6};

  core::HarnessOptions ho;
  ho.spec = gpusim::rtx_a2000();
  ho.ls_letters = "ABCDFG";  // small serving models; duplicated to 12
  ho.be_letters = "";
  ho.utilization = 0.7;
  ho.burstiness = 0.35;
  ho.duration = duration;
  ho.seed = seed;
  const core::ServingHarness h(ho);

  uint64_t total_weights = 0;
  for (unsigned s = 0; s < kServices; ++s) {
    total_weights += h.ls_model(s % h.ls_count()).weight_bytes();
  }

  std::printf("memory pressure on %u-GPU %s fleets: %u services "
              "(%.0f MB registered per device), 3 rotating hot phases, "
              "vram swept to 1/pressure of the footprint\n",
              kDevices, ho.spec.name.c_str(), kServices,
              static_cast<double>(total_weights) / (1024.0 * 1024.0));

  std::vector<Cell> cells;
  for (const double p : pressures) {
    cells.push_back({p, true});
    cells.push_back({p, false});
  }
  std::vector<CellResult> results(cells.size());
  ThreadPool pool(8);
  pool.parallel_for(cells.size(), [&](size_t i) {
    results[i] = run_cell(h, cells[i], total_weights, duration, seed);
  });

  TextTable t({"pressure", "system", "p99 ms", "cold p99 ms", "cold req",
               "loads", "evict", "paged", "goodput/s", "att."});
  for (const auto& r : results) {
    const auto& m = r.metrics;
    const double cp = m.cold_start_p99_ms();
    t.add_row({TextTable::num(r.cell.pressure, 0), label(r.cell),
               TextTable::num(m.fleet_p99_ms(), 2),
               std::isnan(cp) ? "-" : TextTable::num(cp, 2),
               std::to_string(m.cold_requests()),
               std::to_string(m.weight_loads()),
               std::to_string(m.weight_evictions()),
               std::to_string(m.paged_requests()),
               TextTable::num(m.ls_goodput(), 0),
               TextTable::pct(m.mean_attainment())});
  }
  t.print();

  // Headline: at every pressure >= 2x, the quota stack's cold-start p99
  // beats the naive stack's. A side with no cold requests has no p99:
  // SGDRC-null wins outright, naive-null with SGDRC data is a loss,
  // both-null ties as a pass.
  unsigned wins = 0, compared = 0;
  for (const double p : pressures) {
    if (p < 2.0) continue;
    const CellResult* sg = nullptr;
    const CellResult* nv = nullptr;
    for (const auto& r : results) {
      if (r.cell.pressure != p) continue;
      (r.cell.sgdrc ? sg : nv) = &r;
    }
    SGDRC_CHECK(sg && nv, "sweep missing a system");
    const double a = sg->metrics.cold_start_p99_ms();
    const double b = nv->metrics.cold_start_p99_ms();
    const bool win = std::isnan(a) ? true : (std::isnan(b) ? false : a < b);
    ++compared;
    wins += win;
    std::printf("%spressure %.0fx: cold p99 %s vs %s ms (%s)\n",
                compared == 1 ? "\n" : "", p,
                std::isnan(a) ? "-" : TextTable::num(a, 2).c_str(),
                std::isnan(b) ? "-" : TextTable::num(b, 2).c_str(),
                win ? "win" : "LOSS");
  }
  std::printf("\nSGDRC (memory-quota) beats Naive (resident-FIFO) on "
              "cold-start p99 at %u of %u pressures >= 2x.\n",
              wins, compared);

  if (!cli.json_path.empty()) {
    emit_json(cli.json_path, results, duration, cli.quick, wins, compared);
  }
  return wins == compared ? 0 : 1;
}
