// Dynamic request batching: the throughput-for-latency axis, swept over
// max batch size × systems on one GPU. One latency-sensitive service
// (model A, bursty Apollo-like arrivals) batches up to N requests per
// launch (fixed assembly timeout) beside two concurrent best-effort
// tenants:
//
//   * SGDRC           — the batch-aware controller (SGDRC wrapped with
//                       the occupancy feedback loop of
//                       control/batch_aware.h);
//   * SGDRC (Static)  — frozen even split, no tide, no occupancy loop;
//   * Multi-streaming — no control at all.
//
// The headline: batching >1 amortises per-kernel launch overhead and
// weight traffic, so the GPU time the LS service frees flows to
// best-effort — BE samples/s rises with the batch cap — while SGDRC
// holds the LS p99 within its (fixed) SLO in every swept cell. Exit
// status enforces the SGDRC-holds-SLO half, like vgpu_isolation.
//
//   ./batching_sweep [--quick] [--json BENCH_batching.json] [--seed N]
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "baselines/registry.h"
#include "bench_cli.h"
#include "common/json.h"
#include "common/table.h"
#include "common/thread_pool.h"
#include "control/batch_aware.h"
#include "core/harness.h"

using namespace sgdrc;
using namespace sgdrc::core;

namespace {

constexpr TimeNs kAssemblyTimeout = 1500 * kNsPerUs;

struct Cell {
  unsigned max_batch = 1;
  std::string system;  // registry key ("SGDRC" runs the batch-aware wrap)
};

struct CellResult {
  Cell cell;
  workload::ServingMetrics metrics;
  TimeNs slo = 0;
};

/// "SGDRC" cells run the batch-occupancy feedback controller; the name
/// stays the family name so the sweep reads as the Fig. 17 comparison.
std::string controller_name(const std::string& system) {
  return system == "SGDRC" ? "SGDRC (Batch-aware)" : system;
}

CellResult run_cell(const ServingHarness& h, const Cell& cell,
                    double slo_multiplier) {
  const auto& sys = baselines::system(controller_name(cell.system));
  ServingSimBuilder b;
  b.gpu(h.options().spec)
      .duration(h.options().duration)
      .slo_multiplier(slo_multiplier)
      .best_effort_mode(BeMode::kConcurrent)
      .seed(h.options().seed);
  b.add_latency_sensitive(sys.uses_spt ? h.ls_model_spt(0) : h.ls_model(0),
                          h.isolated_latency(0));
  if (cell.max_batch > 1) {
    b.batching(workload::batch_up_to(cell.max_batch, kAssemblyTimeout));
  }
  for (size_t i = 0; i < h.be_count(); ++i) {
    b.add_best_effort(sys.uses_spt ? h.be_model_spt(i) : h.be_model(i));
  }
  const auto controller = sys.make(h.options().spec);
  auto sim = b.build(*controller);
  const TimeNs slo = sim->slo_of(0);
  return {cell, sim->run(h.trace()), slo};
}

double occupancy_of(const workload::TenantMetrics& ls, unsigned max_batch) {
  // max_batch 1 disables the assembly queue: every request is its own
  // job, occupancy 1 by definition. A batching cell that never launched
  // a batch has no occupancy — NaN (null in the JSON), not a made-up 1.
  if (max_batch <= 1) return 1.0;
  if (ls.batch_sizes.empty()) return std::numeric_limits<double>::quiet_NaN();
  return ls.batch_sizes.mean();
}

void emit_json(const std::string& path, const std::vector<CellResult>& all,
               TimeNs duration, bool quick, unsigned sgdrc_slo_ok,
               unsigned sgdrc_cells) {
  std::ofstream os(path);
  SGDRC_REQUIRE(os.good(), "cannot open JSON output path");
  JsonWriter j(os);
  j.begin_object();
  j.kv("bench", "batching_sweep");
  j.kv("quick", quick);
  j.kv("duration_ms", to_ms(duration));
  j.kv("assembly_timeout_ms", to_ms(kAssemblyTimeout));
  j.kv("sgdrc_cells_within_slo", static_cast<uint64_t>(sgdrc_slo_ok));
  j.kv("sgdrc_cells", static_cast<uint64_t>(sgdrc_cells));
  j.key("cells").begin_array();
  for (const auto& r : all) {
    const auto& ls = r.metrics.tenants[0];
    j.begin_object();
    j.kv("max_batch", r.cell.max_batch);
    j.kv("system", r.cell.system);
    j.kv("controller", controller_name(r.cell.system));
    j.kv("p99_ms", ls.p99_ms());
    j.kv("slo_ms", to_ms(r.slo));
    // Null (not a vacuous true) when the tenant served nothing.
    if (ls.has_latency_data()) {
      j.kv("slo_ok", ls.p99_ms() <= to_ms(r.slo));
    } else {
      j.kv("slo_ok", std::numeric_limits<double>::quiet_NaN());
    }
    j.kv("attainment", ls.attainment());
    j.kv("mean_batch_occupancy", occupancy_of(ls, r.cell.max_batch));
    j.kv("ls_goodput_per_s", r.metrics.ls_goodput());
    j.kv("be_samples_per_s", r.metrics.be_throughput());
    j.kv("overall_per_s", r.metrics.overall_throughput());
    j.end_object();
  }
  j.end_array();
  j.end_object();
  std::printf("wrote %s (%zu cells)\n", path.c_str(), all.size());
}

}  // namespace

int main(int argc, char** argv) {
  const auto cli = sgdrc::bench::BenchCli::parse(argc, argv);
  const uint64_t seed = cli.seed_or(0xba7c);
  const TimeNs duration = cli.quick ? 250 * kNsPerMs : 1 * kNsPerSec;
  const std::vector<unsigned> batches =
      cli.quick ? std::vector<unsigned>{1, 4, 16}
                : std::vector<unsigned>{1, 2, 4, 8, 16, 32};
  // Fixed SLO across every cell: batching must live inside the same
  // budget single-request serving gets (assembly wait included).
  const double slo_multiplier = 11.0;

  HarnessOptions o;
  o.spec = gpusim::rtx_a2000();
  o.ls_letters = "A";
  o.be_letters = "IJ";
  o.utilization = 0.45;   // bursty near-half load: assembly queues fill
  o.burstiness = 0.5;     // frame-aligned bursts are what batching eats
  o.duration = duration;
  o.seed = seed;
  const ServingHarness h(o);

  const std::vector<std::string> systems = {"SGDRC", "SGDRC (Static)",
                                            "Multi-streaming"};
  std::vector<Cell> cells;
  for (const unsigned b : batches) {
    for (const auto& s : systems) cells.push_back({b, s});
  }
  std::printf("request-batching sweep on %s: LS model A (%.0f req/s, "
              "assembly %.1f ms, SLO %.1fx iso) + %zu concurrent BE "
              "tenants, batch cap 1..%u x %zu systems\n",
              o.spec.name.c_str(), h.rate_for(0), to_ms(kAssemblyTimeout),
              slo_multiplier, h.be_count(), batches.back(), systems.size());

  std::vector<CellResult> results(cells.size());
  ThreadPool pool(8);
  pool.parallel_for(cells.size(), [&](size_t i) {
    results[i] = run_cell(h, cells[i], slo_multiplier);
  });

  TextTable t({"batch", "system", "occup.", "p99 ms", "SLO ms", "SLO?",
               "att.", "LS goodput/s", "BE samples/s"});
  unsigned sgdrc_slo_ok = 0, sgdrc_cells = 0;
  for (const auto& r : results) {
    const auto& ls = r.metrics.tenants[0];
    const bool ok = ls.has_latency_data() && ls.p99_ms() <= to_ms(r.slo);
    if (r.cell.system == "SGDRC") {
      ++sgdrc_cells;
      sgdrc_slo_ok += ok;
    }
    t.add_row({std::to_string(r.cell.max_batch), r.cell.system,
               TextTable::num(occupancy_of(ls, r.cell.max_batch), 2),
               TextTable::num(ls.p99_ms(), 2),
               TextTable::num(to_ms(r.slo), 2), ok ? "yes" : "NO",
               TextTable::pct(ls.attainment()),
               TextTable::num(r.metrics.ls_goodput(), 0),
               TextTable::num(r.metrics.be_throughput(), 1)});
  }
  t.print();

  // The throughput half of the story: BE gains from LS batching.
  double be_at_1 = 0.0, be_best = 0.0;
  for (const auto& r : results) {
    if (r.cell.system != "SGDRC") continue;
    const double be = r.metrics.be_throughput();
    if (r.cell.max_batch == 1) be_at_1 = be;
    be_best = std::max(be_best, be);
  }
  std::printf("\nSGDRC holds the LS SLO in %u of %u batching cells; "
              "best-effort throughput %.1f -> %.1f samples/s "
              "(%+.0f%%) as the batch cap grows.\n",
              sgdrc_slo_ok, sgdrc_cells, be_at_1, be_best,
              be_at_1 > 0 ? 100.0 * (be_best / be_at_1 - 1.0) : 0.0);
  if (!cli.json_path.empty()) {
    emit_json(cli.json_path, results, duration, cli.quick, sgdrc_slo_ok,
              sgdrc_cells);
  }
  return sgdrc_slo_ok == sgdrc_cells ? 0 : 1;
}
