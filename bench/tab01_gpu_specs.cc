// Tab. 1 — VRAM size, bus width and channel count of the three GPUs, with
// the cross-validation rule (#channels = bus width / per-GDDR width) and
// the simulated parts' measured channel counts (discovered by probing,
// matching the PCB-photo count of Fig. 18).
#include <cstdio>

#include "common/table.h"
#include "gpusim/gpu_spec.h"
#include "gpusim/hash_mapping.h"

using namespace sgdrc;
using namespace sgdrc::gpusim;

int main() {
  std::printf("Tab. 1 — VRAM size, bus width, and # VRAM channels\n\n");
  TextTable t({"Specification", "GTX 1080", "Tesla P40", "RTX A2000"});
  const GpuSpec specs[] = {gtx1080(), tesla_p40(), rtx_a2000()};

  auto row = [&](const std::string& name, auto getter) {
    std::vector<std::string> r{name};
    for (const auto& s : specs) r.push_back(getter(s));
    t.add_row(r);
  };
  row("Architecture", [](const GpuSpec& s) { return s.architecture; });
  row("VRAM size (GiB)", [](const GpuSpec& s) {
    return std::to_string(s.vram_bytes >> 30);
  });
  row("VRAM bus width (bit)", [](const GpuSpec& s) {
    return std::to_string(s.vram_bus_width_bits);
  });
  row("Bus width per GDDR unit (bit)", [](const GpuSpec& s) {
    return std::to_string(s.bus_width_per_gddr_bits);
  });
  row("# VRAM channels (spec rule)", [](const GpuSpec& s) {
    return std::to_string(s.vram_bus_width_bits / s.bus_width_per_gddr_bits);
  });
  // Measured: count the distinct channels the hidden mapping produces
  // over a VRAM sample — what the probing campaign observes.
  row("# VRAM channels (measured)", [](const GpuSpec& s) {
    AddressMapping m(s);
    uint32_t seen = 0;
    for (uint64_t p = 0; p < 1 << 16; ++p) {
      seen |= 1u << m.channel_of(p * kPartitionBytes);
    }
    unsigned n = 0;
    while (seen) {
      n += seen & 1;
      seen >>= 1;
    }
    return std::to_string(n);
  });
  row("Hash family", [](const GpuSpec& s) {
    return std::string(s.linear_hash ? "linear XOR (FGPU-crackable)"
                                     : "non-linear (permutation)");
  });
  t.print();
  std::printf(
      "\nPaper: FGPU [23] is only compatible with the GTX 1080 — the only\n"
      "part whose channel count is a power of two with a linear hash.\n");
  return 0;
}
