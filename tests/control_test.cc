// Control-plane tests: the declarative ResourcePlan/Controller API, the
// enforcer inside ServingSim (explicit allocations, guaranteed-region
// validation, pre_applied traces), vGPU quota wiring (regions, set_vgpu,
// overcommit), and — the redesign's anchor — bit-for-bit equivalence of
// the plan-emitting SGDRC controllers with a verbatim copy of the
// historic imperative implementation.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>

#include "baselines/baseline_policies.h"
#include "control/controller.h"
#include "core/harness.h"
#include "core/sgdrc_policy.h"
#include "fleet/fleet.h"
#include "models/zoo.h"

namespace sgdrc::core {
namespace {

using control::Allocation;
using control::Controller;
using control::ResourcePlan;
using control::SimView;
using control::VgpuSpec;
using gpusim::ChannelSet;
using gpusim::TpcMask;

// ===================================================================
// Verbatim copies of the pre-redesign imperative policies (the last
// Policy-based SgdrcPolicy/SgdrcStaticPolicy), kept here as the golden
// reference: the plan-emitting rewrite must reproduce their metrics
// bit-for-bit on identical fixed-seed runs.
// ===================================================================

class LegacyImperativeSgdrc : public Policy {
 public:
  explicit LegacyImperativeSgdrc(const gpusim::GpuSpec& spec,
                                 SgdrcOptions opt = {})
      : opt_(opt), num_tpcs_(spec.num_tpcs) {
    be_channels_ = be_channel_partition(spec, opt_.ch_be);
    ls_channels_ = gpusim::all_channels(spec.num_channels) & ~be_channels_;
  }

  std::string name() const override { return "SGDRC (legacy imperative)"; }

  void schedule(ServingSim& sim) override {
    const auto waiting = sim.waiting_jobs(QosClass::kLatencySensitive);
    const bool ls_active =
        !waiting.empty() || sim.inflight(QosClass::kLatencySensitive) > 0;

    if (ls_active) last_ls_activity_ = sim.now();

    struct BeRun {
      JobId job;
      TpcMask mask;
      bool monopolising;
      bool evicting;
    };
    TpcMask ls_used = 0;
    TpcMask be_mask_running = 0;
    bool be_memory_bound_in_flight = false;
    std::vector<BeRun> be_runs;
    for (const auto& info : sim.exec().running_infos()) {
      const auto job = sim.find_job(info.tag);
      if (job && job->qos == QosClass::kBestEffort) {
        const TpcMask mask =
            info.tpc_mask ? info.tpc_mask : gpusim::full_tpc_mask(num_tpcs_);
        be_mask_running |= mask;
        be_memory_bound_in_flight |= info.kernel->memory_bound;
        const bool monopolising =
            info.channels == 0 && info.kernel->memory_bound;
        be_runs.push_back({job->id, mask, monopolising, job->evicting});
      } else {
        ls_used |= info.tpc_mask;
      }
    }

    TpcMask claimed_from_be = 0;
    if (!waiting.empty()) {
      const bool colocated = be_memory_bound_in_flight;
      size_t launched = 0;
      for (const auto& job : waiting) {
        if (launched >= opt_.sliding_window) break;
        if (ls_used == gpusim::full_tpc_mask(num_tpcs_)) break;
        const unsigned need = std::max(1u, job.next_kernel->min_tpcs);
        TpcMask mask = 0;
        unsigned got = 0;
        for (int t = static_cast<int>(num_tpcs_) - 1; t >= 0 && got < need;
             --t) {
          const TpcMask bit = gpusim::tpc_bit(static_cast<unsigned>(t));
          if ((ls_used | be_mask_running) & bit) continue;
          mask |= bit;
          ++got;
        }
        for (int t = static_cast<int>(num_tpcs_) - 1; t >= 0 && got < need;
             --t) {
          const TpcMask bit = gpusim::tpc_bit(static_cast<unsigned>(t));
          if ((ls_used & bit) || !(be_mask_running & bit)) continue;
          mask |= bit;
          ++got;
          claimed_from_be |= bit;
        }
        if (got == 0) break;
        ls_used |= mask;
        sim.launch(job.id, {mask, colocated ? ls_channels_ : 0});
        ++launched;
      }
    }

    for (const auto& run : be_runs) {
      if (run.evicting) continue;
      if ((ls_active && run.monopolising) || (run.mask & claimed_from_be)) {
        sim.evict(run.job);
      }
    }

    if (!ls_active && claimed_from_be == 0) {
      for (const auto& run : be_runs) {
        if (run.evicting) continue;
        const bool colocated_mode =
            run.mask != gpusim::full_tpc_mask(num_tpcs_);
        if (!colocated_mode) continue;
        if (sim.now() >= last_ls_activity_ + 200 * kNsPerUs) {
          sim.evict(run.job);
        } else {
          sim.poke_at(last_ls_activity_ + 200 * kNsPerUs);
        }
      }
    }

    unsigned window_need = 1;
    for (const auto* k : sim.upcoming_kernels(QosClass::kLatencySensitive,
                                              opt_.sliding_window)) {
      window_need = std::max(window_need, std::max(1u, k->min_tpcs));
    }
    window_need = std::max(window_need, gpusim::tpc_count(ls_used));
    if (window_need >= ls_reserve_) {
      ls_reserve_ = std::min(num_tpcs_, window_need);
      last_decay_ = sim.now();
    } else if (sim.now() >= last_decay_ + opt_.reserve_decay_interval) {
      const unsigned steps = static_cast<unsigned>(
          (sim.now() - last_decay_) / opt_.reserve_decay_interval);
      ls_reserve_ = std::max(
          window_need, ls_reserve_ > steps ? ls_reserve_ - steps : 1u);
      last_decay_ = sim.now();
    }

    for (const auto& job : sim.waiting_jobs(QosClass::kBestEffort)) {
      if (!ls_active) {
        sim.launch(job.id, {0, 0});
      } else {
        const TpcMask reserved =
            gpusim::tpc_range(num_tpcs_ - ls_reserve_, ls_reserve_);
        const TpcMask free =
            gpusim::full_tpc_mask(num_tpcs_) & ~ls_used & ~reserved;
        if (free) {
          sim.launch(job.id, {free, be_channels_});
        }
      }
    }
  }

 private:
  SgdrcOptions opt_;
  unsigned num_tpcs_;
  ChannelSet be_channels_;
  ChannelSet ls_channels_;
  TimeNs last_ls_activity_ = 0;
  unsigned ls_reserve_ = 1;
  TimeNs last_decay_ = 0;
};

class LegacyImperativeStatic : public Policy {
 public:
  explicit LegacyImperativeStatic(const gpusim::GpuSpec& spec) {
    const unsigned half = spec.num_tpcs / 2;
    ls_mask_ = gpusim::tpc_range(half, spec.num_tpcs - half);
    be_mask_ = gpusim::tpc_range(0, half);
    be_channels_ = be_channel_partition(spec, 0.5);
    ls_channels_ = gpusim::all_channels(spec.num_channels) & ~be_channels_;
  }

  std::string name() const override { return "SGDRC Static (legacy)"; }

  void schedule(ServingSim& sim) override {
    TpcMask ls_used = 0;
    for (const auto& info : sim.exec().running_infos()) {
      const auto job = sim.find_job(info.tag);
      if (!job || job->qos != QosClass::kBestEffort) ls_used |= info.tpc_mask;
    }
    for (const auto& job : sim.waiting_jobs(QosClass::kLatencySensitive)) {
      const TpcMask free = ls_mask_ & ~ls_used;
      if (!free) break;
      const unsigned need = std::max(1u, job.next_kernel->min_tpcs);
      TpcMask mask = 0;
      unsigned got = 0;
      for (int t = 63; t >= 0 && got < need; --t) {
        const TpcMask bit = TpcMask{1} << t;
        if (!(free & bit)) continue;
        mask |= bit;
        ++got;
      }
      ls_used |= mask;
      sim.launch(job.id, {mask, ls_channels_});
    }
    for (const auto& job : sim.waiting_jobs(QosClass::kBestEffort)) {
      sim.launch(job.id, {be_mask_, be_channels_});
    }
  }

 private:
  TpcMask ls_mask_, be_mask_;
  ChannelSet ls_channels_, be_channels_;
};

// ------------------------------------------------------------------
// Exact metric equality: the simulation is deterministic, so a faithful
// rewrite reproduces every counter and every latency sample.
// ------------------------------------------------------------------
void expect_metrics_equal(const workload::ServingMetrics& a,
                          const workload::ServingMetrics& b) {
  ASSERT_EQ(a.tenants.size(), b.tenants.size());
  EXPECT_EQ(a.ls_busy_ns, b.ls_busy_ns);
  EXPECT_EQ(a.be_busy_ns, b.be_busy_ns);
  EXPECT_EQ(a.guarantee_violations, b.guarantee_violations);
  for (size_t t = 0; t < a.tenants.size(); ++t) {
    const auto& x = a.tenants[t];
    const auto& y = b.tenants[t];
    EXPECT_EQ(x.arrived, y.arrived) << "tenant " << t;
    EXPECT_EQ(x.served, y.served) << "tenant " << t;
    EXPECT_EQ(x.attained, y.attained) << "tenant " << t;
    EXPECT_EQ(x.evictions, y.evictions) << "tenant " << t;
    EXPECT_EQ(x.kernels_done, y.kernels_done) << "tenant " << t;
    EXPECT_EQ(x.batches_completed, y.batches_completed) << "tenant " << t;
    ASSERT_EQ(x.latency.count(), y.latency.count()) << "tenant " << t;
    if (!x.latency.empty()) {
      // Exact double equality on purpose: same samples, same order.
      EXPECT_EQ(x.latency.mean(), y.latency.mean()) << "tenant " << t;
      EXPECT_EQ(x.latency.p99(), y.latency.p99()) << "tenant " << t;
    }
  }
}

HarnessOptions fig17_like_options(double load_scale, BeMode be_mode) {
  HarnessOptions o;
  o.spec = gpusim::rtx_a2000();
  o.ls_letters = "ABC";
  o.be_letters = "IJ";
  o.utilization = 1.45;
  o.load_scale = load_scale;
  o.burstiness = 0.35;
  o.duration = 120 * kNsPerMs;
  o.be_mode = be_mode;
  o.seed = 0xf17;
  return o;
}

TEST(PlanEquivalence, SgdrcPlanPathMatchesLegacyImperativeBitForBit) {
  for (const double load : {1.0, 0.5}) {
    const ServingHarness h(fig17_like_options(load, BeMode::kRoundRobin));
    SgdrcPolicy plan_based(h.options().spec);
    LegacyImperativeSgdrc imperative(h.options().spec);
    expect_metrics_equal(h.run(plan_based, true), h.run(imperative, true));
  }
}

TEST(PlanEquivalence, SgdrcPlanPathMatchesLegacyUnderConcurrentBe) {
  const ServingHarness h(fig17_like_options(1.0, BeMode::kConcurrent));
  SgdrcPolicy plan_based(h.options().spec);
  LegacyImperativeSgdrc imperative(h.options().spec);
  expect_metrics_equal(h.run(plan_based, true), h.run(imperative, true));
}

TEST(PlanEquivalence, SgdrcPlanPathMatchesLegacyInASharedQueueFleet) {
  // Fleet regression for the full-mask encoding: an LS kernel packed
  // onto every TPC must stay an *explicit* mask through the enforcer
  // (only Allocation::all() compiles to the legacy 0), or the next
  // plan's occupancy snapshot loses it and routing diverges.
  HarnessOptions o = fig17_like_options(1.0, BeMode::kRoundRobin);
  o.utilization = 0.8;
  const ServingHarness h(o);
  workload::TraceOptions topt;
  topt.services = static_cast<unsigned>(h.ls_count());
  topt.duration = o.duration;
  topt.burstiness = o.burstiness;
  topt.seed = o.seed + 2;
  for (size_t i = 0; i < h.ls_count(); ++i) {
    topt.per_service_rates.push_back(h.rate_for(i) * 2.0);
  }
  const auto trace = workload::generate_apollo_like_trace(topt);

  auto run = [&](const fleet::ControllerFactory& f) {
    fleet::FleetConfig cfg;
    cfg.spec = o.spec;
    cfg.devices = 2;
    cfg.duration = o.duration;
    cfg.slo_multiplier = 4.0;
    cfg.seed = 0xf1ee7;
    cfg.dispatch_latency = 2 * kNsPerUs;
    cfg.dispatch_jitter = 3 * kNsPerUs;
    std::vector<fleet::FleetTenantSpec> tenants;
    for (size_t i = 0; i < h.ls_count(); ++i) {
      tenants.push_back(fleet::replicated(
          latency_sensitive_tenant(h.ls_model_spt(i), h.isolated_latency(i)),
          2));
    }
    for (size_t i = 0; i < h.be_count(); ++i) {
      tenants.push_back(
          fleet::replicated(best_effort_tenant(h.be_model_spt(i)), 2));
    }
    fleet::QosAwarePlacement placement;
    fleet::QosLoadAwareRouter router;
    fleet::FleetSim sim(cfg, std::move(tenants), placement, router, f);
    return sim.run(trace);
  };
  const auto plan_based =
      run([](const gpusim::GpuSpec& gs) -> std::unique_ptr<Controller> {
        return std::make_unique<SgdrcPolicy>(gs);
      });
  const auto imperative = run([](const gpusim::GpuSpec& gs) {
    return control::adapt(std::make_unique<LegacyImperativeSgdrc>(gs));
  });
  EXPECT_EQ(plan_based.routed, imperative.routed);
  ASSERT_EQ(plan_based.tenants.size(), imperative.tenants.size());
  for (size_t t = 0; t < plan_based.tenants.size(); ++t) {
    EXPECT_EQ(plan_based.tenants[t].served, imperative.tenants[t].served);
    EXPECT_EQ(plan_based.tenants[t].kernels_done,
              imperative.tenants[t].kernels_done);
    ASSERT_EQ(plan_based.tenants[t].latency.count(),
              imperative.tenants[t].latency.count());
    if (!plan_based.tenants[t].latency.empty()) {
      EXPECT_EQ(plan_based.tenants[t].latency.p99(),
                imperative.tenants[t].latency.p99());
    }
  }
}

TEST(PlanEquivalence, StaticPlanPathMatchesLegacyImperativeBitForBit) {
  const ServingHarness h(fig17_like_options(1.0, BeMode::kRoundRobin));
  SgdrcStaticPolicy plan_based(h.options().spec);
  LegacyImperativeStatic imperative(h.options().spec);
  expect_metrics_equal(h.run(plan_based, true), h.run(imperative, true));
}

// ===================================================================
// Plan / enforcer mechanics on a small synthetic setup.
// ===================================================================

/// Controller driven by a std::function — scripts plans from tests.
class FnController : public Controller {
 public:
  explicit FnController(std::function<ResourcePlan(const SimView&)> fn)
      : fn_(std::move(fn)) {}
  std::string name() const override { return "test-fn-controller"; }
  ResourcePlan plan(const SimView& view) override { return fn_(view); }

 private:
  std::function<ResourcePlan(const SimView&)> fn_;
};

models::ModelDesc tiny_be_model(const std::string& name, char letter) {
  models::ModelDesc m;
  m.name = name;
  m.letter = letter;
  m.service = models::ServiceClass::kBestEffort;
  m.batch = 4;
  for (int i = 0; i < 3; ++i) {
    gpusim::KernelDesc k;
    k.name = name + ".k" + std::to_string(i);
    k.flops = 4'000'000;
    k.bytes = 200'000;
    k.blocks = 64;
    k.max_useful_tpcs = 4;
    k.preemptible = true;
    k.memory_bound = i == 1;
    k.min_tpcs = 1;
    m.kernels.push_back(std::move(k));
  }
  return m;
}

ServingSimBuilder two_be_builder() {
  return ServingSimBuilder()
      .gpu(gpusim::test_gpu())
      .duration(20 * kNsPerMs)
      .add_best_effort(tiny_be_model("tiny-x", 'X'))
      .add_best_effort(tiny_be_model("tiny-y", 'Y'));
}

TEST(ResourcePlanApi, EmptyAllocationIsRejectedLoudly) {
  // The zero-means-all footgun is gone: a plan with a default-initialised
  // Allocation must fail, pointing at Allocation::all().
  FnController c([&](const SimView& view) {
    ResourcePlan p;
    for (const auto& job : view.waiting_jobs(QosClass::kBestEffort)) {
      p.launch(job.id, Allocation{});  // forgot the masks
    }
    return p;
  });
  auto sim = two_be_builder().build(c);
  EXPECT_THROW(sim->run({}), ConfigError);
}

TEST(ResourcePlanApi, AllocationAllBehavesLikeLegacyMonopolisation) {
  // Allocation::all() compiles to the canonical whole-device launch: the
  // executor sees the same encoding the legacy {0,0} produced.
  FnController c([&](const SimView& view) {
    ResourcePlan p;
    if (view.inflight(QosClass::kBestEffort) == 0) {
      const auto waiting = view.waiting_jobs(QosClass::kBestEffort);
      if (!waiting.empty()) p.launch(waiting.front().id, Allocation::all());
    }
    return p;
  });
  auto sim = two_be_builder().build(c);
  sim->begin();  // the first plan launches a batch kernel at t = 0
  const auto infos = sim->exec().running_infos();
  ASSERT_EQ(infos.size(), 1u);
  EXPECT_EQ(infos[0].tpc_mask, 0u);  // canonical "all TPCs"
  EXPECT_EQ(infos[0].channels, 0u);  // canonical "all channels"
  const auto m = sim->finish();
  EXPECT_EQ(m.guarantee_violations, 0u);
}

TEST(ResourcePlanApi, OutOfDeviceMasksAreRejected) {
  FnController c([&](const SimView& view) {
    ResourcePlan p;
    const auto waiting = view.waiting_jobs(QosClass::kBestEffort);
    if (!waiting.empty()) {
      // TPC 63 does not exist on the 4-TPC test GPU.
      p.launch(waiting.front().id,
               Allocation{gpusim::tpc_bit(63), ~ChannelSet{0}});
    }
    return p;
  });
  auto sim = two_be_builder().build(c);
  EXPECT_THROW(sim->run({}), ConfigError);
}

TEST(ResourcePlanApi, WakeAtDirectiveReplansLater) {
  size_t plans = 0;
  FnController c([&](const SimView& view) {
    ++plans;
    ResourcePlan p;
    if (view.now() < 1 * kNsPerMs) p.wake_at(view.now() + 100 * kNsPerUs);
    EXPECT_EQ(p.next_wakeup().has_value(), view.now() < 1 * kNsPerMs);
    return p;
  });
  auto sim = two_be_builder().build(c);
  sim->run({});
  EXPECT_GE(plans, 10u);  // ~1ms of 100us self-wakeups
}

// ===================================================================
// vGPU guarantees: regions, enforcement, runtime re-planning.
// ===================================================================

TEST(VgpuQuota, RegionsAreCarvedDisjointLsTopBeBottom) {
  FnController idle([](const SimView&) { return ResourcePlan{}; });
  auto sim = ServingSimBuilder()
                 .gpu(gpusim::test_gpu())  // 4 TPCs
                 .duration(1 * kNsPerMs)
                 .add_best_effort(tiny_be_model("tiny-x", 'X'))
                 .quota({.guaranteed_tpcs = 1})
                 .add_best_effort(tiny_be_model("tiny-y", 'Y'))
                 .quota({.guaranteed_tpcs = 2})
                 .build(idle);
  const TpcMask x = sim->guaranteed_mask(0);
  const TpcMask y = sim->guaranteed_mask(1);
  EXPECT_EQ(gpusim::tpc_count(x), 1u);
  EXPECT_EQ(gpusim::tpc_count(y), 2u);
  EXPECT_EQ(x & y, 0u);
  EXPECT_EQ(x, gpusim::tpc_bit(0));  // BE regions grow from the bottom
  EXPECT_EQ(sim->guaranteed_union(QosClass::kBestEffort), x | y);
}

TEST(VgpuQuota, OvercommittedGuaranteesAreRejectedAtConstruction) {
  FnController idle([](const SimView&) { return ResourcePlan{}; });
  EXPECT_THROW(ServingSimBuilder()
                   .gpu(gpusim::test_gpu())  // 4 TPCs
                   .add_best_effort(tiny_be_model("tiny-x", 'X'))
                   .quota({.guaranteed_tpcs = 3})
                   .add_best_effort(tiny_be_model("tiny-y", 'Y'))
                   .quota({.guaranteed_tpcs = 2})
                   .build(idle),
               ConfigError);
  EXPECT_THROW(ServingSimBuilder()
                   .gpu(gpusim::test_gpu())
                   .add_best_effort(tiny_be_model("tiny-x", 'X'))
                   .quota({.channel_share = 0.7})
                   .add_best_effort(tiny_be_model("tiny-y", 'Y'))
                   .quota({.channel_share = 0.6})
                   .build(idle),
               ConfigError);
}

TEST(VgpuQuota, PlanTrespassingOnForeignRegionIsRejected) {
  // Tenant 0 deliberately launches into tenant 1's guaranteed region:
  // the enforcer must refuse the plan.
  FnController c([&](const SimView& view) {
    ResourcePlan p;
    for (const auto& job : view.waiting_jobs(QosClass::kBestEffort)) {
      if (job.tenant == 0) {
        p.launch(job.id, Allocation{view.guaranteed_mask(1), ~ChannelSet{0}});
      }
    }
    return p;
  });
  // The quota rides on the last-added tenant (tiny-y, tenant 1).
  auto sim = two_be_builder().quota({.guaranteed_tpcs = 2}).build(c);
  EXPECT_THROW(sim->run({}), ConfigError);
}

TEST(VgpuQuota, LegacyPoliciesAreCountedNotCrashed) {
  // A guarantee-blind imperative policy (Multi-streaming launches
  // everything whole-device) runs against guaranteed tenants: its traced
  // plans are logs, so the run completes, but every trespass is counted.
  baselines::MultiStreamPolicy ms;
  auto sim = two_be_builder().quota({.guaranteed_tpcs = 2}).build(ms);
  const auto m = sim->run({});
  EXPECT_GT(m.guarantee_violations, 0u);
}

TEST(VgpuQuota, SetVgpuRecarvesAndValidates) {
  FnController idle([](const SimView&) { return ResourcePlan{}; });
  auto sim = two_be_builder().build(idle);
  EXPECT_EQ(sim->guaranteed_mask(0), 0u);
  sim->set_vgpu(0, {.guaranteed_tpcs = 2});
  EXPECT_EQ(gpusim::tpc_count(sim->guaranteed_mask(0)), 2u);
  sim->set_vgpu(0, {.guaranteed_tpcs = 1});
  EXPECT_EQ(gpusim::tpc_count(sim->guaranteed_mask(0)), 1u);
  // Freed head-room is available to the other tenant again.
  sim->set_vgpu(1, {.guaranteed_tpcs = 3});
  EXPECT_EQ(gpusim::tpc_count(sim->guaranteed_mask(1)), 3u);
  // And overcommit on top of the live set still throws — without
  // touching the tenant's current guarantee (strong exception safety:
  // a rejected re-plan means "old quota still holds").
  EXPECT_THROW(sim->set_vgpu(0, {.guaranteed_tpcs = 2}), ConfigError);
  EXPECT_EQ(gpusim::tpc_count(sim->guaranteed_mask(0)), 1u);
  EXPECT_EQ(sim->tenant(0).vgpu.guaranteed_tpcs, 1u);
}

TEST(VgpuQuota, RemovalReleasesTheRegion) {
  FnController idle([](const SimView&) { return ResourcePlan{}; });
  auto sim = two_be_builder().quota({.guaranteed_tpcs = 3}).build(idle);
  EXPECT_EQ(gpusim::tpc_count(sim->guaranteed_mask(1)), 3u);
  sim->begin();
  sim->remove_tenant(1);
  EXPECT_EQ(sim->guaranteed_mask(1), 0u);
  sim->set_vgpu(0, {.guaranteed_tpcs = 4});  // the whole device again
  EXPECT_EQ(gpusim::tpc_count(sim->guaranteed_mask(0)), 4u);
  sim->finish();
}

TEST(VgpuQuota, UnequalBeWeightsPartitionTheTideProportionally) {
  // Plan-level check: with LS active and two waiting BE jobs weighted
  // 1 vs 3, SGDRC splits the tide pool into disjoint slices sized from
  // the *whole* pool (the heavy tenant gets ~3x, and the last tenant
  // picks up the rounding dust — nothing idles). Equal weights keep the
  // legacy full-overlap sharing, covered by the equivalence suite.
  FnController idle([](const SimView&) { return ResourcePlan{}; });
  auto sim = ServingSimBuilder()
                 .gpu(gpusim::rtx_a2000())  // 13 TPCs
                 .duration(20 * kNsPerMs)
                 .best_effort_mode(BeMode::kConcurrent)
                 .add_latency_sensitive(tiny_be_model("tiny-ls", 'L'),
                                        1 * kNsPerMs)
                 .add_best_effort(tiny_be_model("tiny-x", 'X'))
                 .quota({.weight = 1.0})
                 .add_best_effort(tiny_be_model("tiny-y", 'Y'))
                 .quota({.weight = 3.0})
                 .build(idle);
  sim->begin();
  sim->inject(0, 0);  // one waiting LS request keeps LS "active"
  SgdrcPolicy sgdrc(gpusim::rtx_a2000());
  const auto plan = sgdrc.plan(SimView(*sim));
  TpcMask slice[2] = {0, 0};
  for (const auto& d : plan.directives) {
    if (d.kind != control::Directive::Kind::kLaunch) continue;
    const auto job = sim->find_job(d.job);
    ASSERT_TRUE(job.has_value());
    if (job->qos == QosClass::kBestEffort) {
      slice[job->tenant - 1] = d.alloc.tpcs;
    }
  }
  ASSERT_NE(slice[0], 0u);
  ASSERT_NE(slice[1], 0u);
  EXPECT_EQ(slice[0] & slice[1], 0u);  // disjoint partition
  EXPECT_GE(gpusim::tpc_count(slice[1]), 2 * gpusim::tpc_count(slice[0]));
  sim->finish();
}

TEST(VgpuQuota, SgdrcControllerKeepsBeOutOfGuaranteedLsRegion) {
  // An LS tenant with a hard 2-TPC guarantee against a BE batch tenant:
  // SGDRC's tide must never hand those TPCs to BE (zero violations, and
  // every BE running mask stays clear of the region).
  HarnessOptions o = fig17_like_options(1.0, BeMode::kRoundRobin);
  o.ls_letters = "A";
  o.be_letters = "I";
  o.duration = 60 * kNsPerMs;
  const ServingHarness h(o);

  ServingSimBuilder builder;
  builder.gpu(o.spec)
      .duration(o.duration)
      .slo_multiplier(2.0)
      .add_latency_sensitive(h.ls_model_spt(0), h.isolated_latency(0))
      .quota({.guaranteed_tpcs = 4})
      .add_best_effort(h.be_model_spt(0));
  SgdrcPolicy sgdrc(o.spec);
  auto sim = builder.build(sgdrc);
  const TpcMask region = sim->guaranteed_mask(0);
  EXPECT_EQ(gpusim::tpc_count(region), 4u);
  const auto m = sim->run(h.trace());
  EXPECT_EQ(m.guarantee_violations, 0u);
  EXPECT_GT(m.tenants[0].served, 0u);
  EXPECT_GT(m.tenants[1].kernels_done, 0u);  // BE still made progress
}

// ===================================================================
// Builder additions: config()/tenants() round-trip and the fleet-mode
// build(EventQueue&, …) overloads.
// ===================================================================

TEST(BuilderApi, FleetModeOverloadSharesTheExternalQueue) {
  EventQueue queue;
  FnController idle([](const SimView&) { return ResourcePlan{}; });
  ServingConfig cfg;
  cfg.spec = gpusim::test_gpu();
  cfg.duration = 5 * kNsPerMs;
  auto sim = ServingSimBuilder()
                 .config(cfg)
                 .tenants({best_effort_tenant(tiny_be_model("tiny-x", 'X'))})
                 .build(queue, idle);
  sim->begin();
  queue.schedule_at(1 * kNsPerMs, [] {});
  queue.run_until(cfg.duration);
  EXPECT_EQ(sim->now(), queue.now());
  const auto m = sim->finish();
  EXPECT_EQ(m.tenants.size(), 1u);
}

TEST(BuilderApi, ConfigSeedsEveryField) {
  ServingConfig cfg;
  cfg.spec = gpusim::test_gpu();
  cfg.duration = 7 * kNsPerMs;
  cfg.ls_instances = 2;
  cfg.slo_multiplier = 3.5;
  cfg.be_mode = BeMode::kConcurrent;
  cfg.seed = 0xabc;
  FnController idle([](const SimView&) { return ResourcePlan{}; });
  auto sim = ServingSimBuilder()
                 .config(cfg)
                 .tenants({best_effort_tenant(tiny_be_model("tiny-x", 'X'))})
                 .build(idle);
  EXPECT_EQ(sim->config().duration, cfg.duration);
  EXPECT_EQ(sim->config().ls_instances, cfg.ls_instances);
  EXPECT_EQ(sim->config().slo_multiplier, cfg.slo_multiplier);
  EXPECT_EQ(sim->config().seed, cfg.seed);
}

}  // namespace
}  // namespace sgdrc::core
