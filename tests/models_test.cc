// Tests for the Tab. 3 model zoo: structural invariants, FLOP/traffic
// sanity against the published architectures, and the footprint analysis
// behind Fig. 16.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "models/builder.h"
#include "models/batching.h"
#include "models/footprint.h"
#include "models/model.h"
#include "models/zoo.h"

namespace sgdrc::models {
namespace {

class ZooTest : public ::testing::TestWithParam<char> {};

INSTANTIATE_TEST_SUITE_P(AllModels, ZooTest,
                         ::testing::Values('A', 'B', 'C', 'D', 'E', 'F',
                                           'G', 'H', 'I', 'J', 'K'),
                         [](const auto& inf) {
                           return std::string("Model_") + inf.param;
                         });

TEST_P(ZooTest, StructuralInvariants) {
  const ModelDesc m = make_model(GetParam());
  EXPECT_EQ(m.letter, GetParam());
  EXPECT_GE(m.kernels.size(), 20u) << m.name;
  EXPECT_FALSE(m.tensors.empty());

  for (const auto& k : m.kernels) {
    EXPECT_GT(k.flops, 0u) << k.name;
    EXPECT_GT(k.bytes, 0u) << k.name;
    EXPECT_GE(k.blocks, 1u) << k.name;
    EXPECT_FALSE(k.accesses.empty()) << k.name;
    EXPECT_GE(k.max_useful_tpcs, 1.0) << k.name;
    for (const auto& a : k.accesses) {
      ASSERT_GE(a.tensor, 0);
      ASSERT_LT(static_cast<size_t>(a.tensor), m.tensors.size());
    }
    // Tab. 3 service classes drive preemptibility (§7.1): only BE kernels
    // poll the eviction flag.
    EXPECT_EQ(k.preemptible, !m.is_ls()) << k.name;
  }

  // Exactly one output tensor, produced by some kernel.
  int outputs = 0;
  for (const auto& t : m.tensors) {
    if (t.kind == TensorKind::kOutput) {
      ++outputs;
      EXPECT_GE(t.produced_by, 0);
    }
  }
  EXPECT_EQ(outputs, 1) << m.name;
}

TEST_P(ZooTest, TensorGraphIsConsistent) {
  const ModelDesc m = make_model(GetParam());
  for (size_t ti = 0; ti < m.tensors.size(); ++ti) {
    const auto& t = m.tensors[ti];
    // Consumers must come after the producer.
    for (const int k : t.consumed_by) {
      ASSERT_LT(k, static_cast<int>(m.kernels.size()));
      if (t.produced_by >= 0) {
        EXPECT_GE(k, t.produced_by) << t.name;
      }
    }
    if (t.kind == TensorKind::kWeight) {
      EXPECT_EQ(t.produced_by, -1) << t.name;
      EXPECT_FALSE(t.consumed_by.empty()) << t.name;
    }
  }
}

TEST(Zoo, ServiceClassesMatchTable3) {
  const auto zoo = standard_zoo();
  ASSERT_EQ(zoo.size(), 11u);
  std::set<char> ls, be;
  for (const auto& m : zoo) {
    if (m.is_ls()) {
      ls.insert(m.letter);
    } else {
      be.insert(m.letter);
    }
  }
  EXPECT_EQ(ls, (std::set<char>{'A', 'B', 'C', 'D', 'E', 'F', 'G', 'H'}));
  EXPECT_EQ(be, (std::set<char>{'I', 'J', 'K'}));
}

TEST(Zoo, BatchSizesFollowSection92) {
  EXPECT_EQ(mobilenet_v3().batch, 1u);
  EXPECT_EQ(resnet152().batch, 16u);
  EXPECT_EQ(densenet161().batch, 8u);
  EXPECT_EQ(bert().batch, 16u);
}

TEST(Zoo, FlopTotalsMatchPublishedArchitectures) {
  // Published forward-pass numbers (×2 flops/MAC, ×batch). Generous
  // tolerance: recipes approximate padding/stride details.
  const double mnv3 = static_cast<double>(mobilenet_v3().total_flops());
  EXPECT_GT(mnv3, 0.2e9);
  EXPECT_LT(mnv3, 1.2e9);  // ~0.44 GFLOP

  const double r34 = static_cast<double>(resnet34().total_flops());
  EXPECT_GT(r34, 4e9);
  EXPECT_LT(r34, 12e9);  // ~7.3 GFLOP

  const double r152 =
      static_cast<double>(resnet152().total_flops()) / 16.0;  // per sample
  EXPECT_GT(r152, 15e9);
  EXPECT_LT(r152, 35e9);  // ~23 GFLOP

  const double bert_f =
      static_cast<double>(bert().total_flops()) / 16.0;
  EXPECT_GT(bert_f, 10e9);
  EXPECT_LT(bert_f, 40e9);  // ~22 GFLOP @ seq 128
}

TEST(Zoo, DenseNetIsTheMemoryHog) {
  // DenseNet's dense concatenation makes it the most memory-intensive
  // BE model per FLOP — the paper uses it as the canonical interferer.
  const auto dn = densenet161();
  const auto rn = resnet152();
  const double dn_ratio = static_cast<double>(dn.total_bytes()) /
                          static_cast<double>(dn.total_flops());
  const double rn_ratio = static_cast<double>(rn.total_bytes()) /
                          static_cast<double>(rn.total_flops());
  EXPECT_GT(dn_ratio, rn_ratio * 1.1);
}

TEST(Zoo, LsModelsAreLighterThanBeModels) {
  const auto zoo = standard_zoo();
  uint64_t max_ls = 0, min_be = ~0ull;
  for (const auto& m : zoo) {
    if (m.is_ls()) {
      max_ls = std::max(max_ls, m.total_flops());
    } else {
      min_be = std::min(min_be, m.total_flops());
    }
  }
  EXPECT_LT(max_ls, min_be);
}

// ---------------------------------------------------------- Footprint ----

TEST(Footprint, PeakNeverExceedsSum) {
  for (const auto& m : standard_zoo()) {
    const auto fp = analyze_footprint(m);
    EXPECT_LE(fp.inter_peak_bytes, fp.inter_sum_bytes) << m.name;
    EXPECT_GT(fp.inter_peak_bytes, 0u) << m.name;
    EXPECT_GT(fp.weight_bytes, 0u) << m.name;
  }
}

TEST(Footprint, ReuseShrinksChainModels) {
  // Linear-chain models (ResNet) keep only a couple of live buffers.
  const auto fp = analyze_footprint(resnet152());
  EXPECT_LT(fp.inter_peak_bytes, fp.inter_sum_bytes / 4);
}

TEST(Footprint, BimodalNearlyDoublesWithoutReuse) {
  // Fig. 16's headline: with all tensors memory-bound and no reuse,
  // bimodal ≈ 2× original.
  ModelDesc m = mobilenet_v3();
  for (auto& t : m.tensors) t.memory_bound = true;
  const auto fp = analyze_footprint(m);
  const double ratio = static_cast<double>(fp.bimodal(false)) /
                       static_cast<double>(fp.original(false));
  EXPECT_GT(ratio, 1.9);
  EXPECT_LE(ratio, 2.0);
}

TEST(Footprint, ReuseRecoversMostOfTheDuplication) {
  ModelDesc m = densenet161();
  for (auto& t : m.tensors) t.memory_bound = true;
  const auto fp = analyze_footprint(m);
  // Reuse-enabled bimodal is far below reuse-disabled bimodal — the
  // effect is strongest for the large-batch BE models (§9.1.3).
  EXPECT_LT(fp.bimodal(true), fp.bimodal(false) / 2);
}

TEST(Footprint, OnlyMemoryBoundTensorsDuplicate) {
  ModelDesc m = resnet34();
  const auto before = analyze_footprint(m);
  EXPECT_EQ(before.bimodal(false), before.original(false));  // no MB flags
  m.tensors[1].memory_bound = true;  // one weight tensor
  ASSERT_EQ(m.tensors[1].kind, TensorKind::kWeight);
  const auto after = analyze_footprint(m);
  EXPECT_EQ(after.bimodal(false),
            after.original(false) + m.tensors[1].bytes);
}


// ---------------------------------------------------------------- DAG ----

TEST(Dag, ChainRecipeMatchesLegacyOrder) {
  // A branch-free recipe built with build_dag(): every kernel depends on
  // exactly its predecessor (through the activation tensor), so the DAG
  // executes in the legacy chain order.
  ModelBuilder b("toy", 'Z', ServiceClass::kLatencySensitive, 1);
  int x = b.add_input(1024);
  x = b.conv("c1", x, 3, 8, 3, 16, 16);
  x = b.conv("c2", x, 8, 8, 3, 16, 16);
  b.pool("p", x, 2);
  const ModelDesc m = b.build_dag();
  ASSERT_EQ(m.kernel_deps.size(), m.kernels.size());
  EXPECT_FALSE(m.is_chain());
  EXPECT_TRUE(m.kernel_deps[0].empty());
  for (size_t i = 1; i < m.kernel_deps.size(); ++i) {
    ASSERT_EQ(m.kernel_deps[i].size(), 1u) << m.kernels[i].name;
    EXPECT_EQ(m.kernel_deps[i][0], static_cast<int>(i) - 1);
  }
}

TEST(Dag, BuildLeavesChainsChainy) {
  // build() (the zoo path) must keep kernel_deps empty — that emptiness
  // is what routes the serving layer down the exact pre-DAG code path.
  for (const auto& m : standard_zoo()) {
    EXPECT_TRUE(m.is_chain()) << m.name;
  }
}

TEST(Dag, DiamondJoinDependsOnBothBranches) {
  ModelBuilder b("toy", 'Z', ServiceClass::kLatencySensitive, 1);
  const int in = b.add_input(1024);
  const int stem = b.conv("stem", in, 3, 8, 3, 16, 16);   // kernel 0
  const int left = b.conv("left", stem, 8, 8, 3, 16, 16);  // kernel 1
  const int right = b.conv("right", stem, 8, 8, 3, 16, 16);  // kernel 2
  b.shuffle("join", {left, right});                          // kernel 3
  const ModelDesc m = b.build_dag();
  ASSERT_EQ(m.kernel_deps.size(), 4u);
  EXPECT_EQ(m.kernel_deps[0], (std::vector<int>{}));
  EXPECT_EQ(m.kernel_deps[1], (std::vector<int>{0}));
  EXPECT_EQ(m.kernel_deps[2], (std::vector<int>{0}));
  EXPECT_EQ(m.kernel_deps[3], (std::vector<int>{1, 2}));
}

TEST(Dag, CyclicTensorGraphRejected) {
  // Hand-built backward edge: a tensor produced by kernel 1 feeding
  // kernel 0 breaks the topological-order invariant.
  ModelDesc m;
  m.kernels.resize(2);
  m.tensors.push_back({"loop", 64, TensorKind::kIntermediate,
                       /*produced_by=*/1, /*consumed_by=*/{0}});
  EXPECT_THROW(derive_kernel_deps(m), ConfigError);
  // Self-loop: a kernel consuming its own output is equally cyclic.
  m.tensors[0].consumed_by = {1};
  EXPECT_THROW(derive_kernel_deps(m), ConfigError);
}

TEST(Dag, OutOfRangeTensorIndicesRejectedAtBuild) {
  ModelDesc m;
  m.kernels.resize(1);
  m.tensors.push_back({"bad", 64, TensorKind::kIntermediate,
                       /*produced_by=*/5, /*consumed_by=*/{}});
  EXPECT_THROW(validate_tensor_graph(m), ConfigError);
  m.tensors[0].produced_by = 0;
  m.tensors[0].consumed_by = {7};
  EXPECT_THROW(validate_tensor_graph(m), ConfigError);
}

TEST(Dag, BatchVariantPreservesKernelDeps) {
  const ModelDesc m = inception_be(true);
  ASSERT_FALSE(m.is_chain());
  const ModelDesc b4 = batched_variant(m, 4);
  EXPECT_EQ(b4.kernel_deps, m.kernel_deps);
  EXPECT_EQ(b4.kernels.size(), m.kernels.size());
}

TEST(Dag, InceptionRecipesExposeParallelBranches) {
  const ModelDesc dag = inception_ls(true);
  const ModelDesc chain = inception_ls(false);
  // Identical kernels, only the dependency edges differ.
  ASSERT_EQ(dag.kernels.size(), chain.kernels.size());
  for (size_t i = 0; i < dag.kernels.size(); ++i) {
    EXPECT_EQ(dag.kernels[i].name, chain.kernels[i].name);
  }
  EXPECT_TRUE(chain.is_chain());
  ASSERT_FALSE(dag.is_chain());
  // Wide: some kernel index is a dependency of at least two others (a
  // block input fanning out to parallel branches).
  std::vector<int> fanout(dag.kernels.size(), 0);
  for (const auto& deps : dag.kernel_deps) {
    for (const int d : deps) ++fanout[static_cast<size_t>(d)];
  }
  EXPECT_GE(*std::max_element(fanout.begin(), fanout.end()), 2);
  // And every edge respects topological order.
  for (size_t i = 0; i < dag.kernel_deps.size(); ++i) {
    for (const int d : dag.kernel_deps[i]) {
      EXPECT_LT(d, static_cast<int>(i));
      EXPECT_GE(d, 0);
    }
  }
}

// ------------------------------------------------------------ Builder ----

TEST(Builder, ElementwiseSharesIndexExpression) {
  ModelBuilder b("toy", 'Z', ServiceClass::kLatencySensitive, 1);
  const int in = b.add_input(1024);
  const int c1 = b.conv("c1", in, 3, 8, 3, 16, 16);
  const int c2 = b.conv("c2", in, 3, 8, 3, 16, 16);
  b.elementwise("add", c1, c2);
  const ModelDesc m = b.build();
  const auto& add = m.kernels.back();
  ASSERT_EQ(add.accesses.size(), 3u);
  EXPECT_EQ(add.accesses[0].index_expr, add.accesses[1].index_expr);
  EXPECT_EQ(add.accesses[0].index_expr, add.accesses[2].index_expr);
}

TEST(Builder, GroupedConvReducesFlops) {
  ModelBuilder b("toy", 'Z', ServiceClass::kLatencySensitive, 1);
  const int in = b.add_input(64 * 64 * 32 * 4);
  b.conv("dense", in, 32, 32, 3, 64, 64, 1);
  b.conv("depthwise", in, 32, 32, 3, 64, 64, 32);
  const ModelDesc m = b.build();
  EXPECT_EQ(m.kernels[0].flops, m.kernels[1].flops * 32);
}

TEST(Builder, RejectsBadGroupCounts) {
  ModelBuilder b("toy", 'Z', ServiceClass::kLatencySensitive, 1);
  const int in = b.add_input(1024);
  EXPECT_THROW(b.conv("bad", in, 30, 32, 3, 8, 8, 7), ConfigError);
}

}  // namespace
}  // namespace sgdrc::models
