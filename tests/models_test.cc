// Tests for the Tab. 3 model zoo: structural invariants, FLOP/traffic
// sanity against the published architectures, and the footprint analysis
// behind Fig. 16.
#include <gtest/gtest.h>

#include <set>

#include "models/builder.h"
#include "models/footprint.h"
#include "models/model.h"
#include "models/zoo.h"

namespace sgdrc::models {
namespace {

class ZooTest : public ::testing::TestWithParam<char> {};

INSTANTIATE_TEST_SUITE_P(AllModels, ZooTest,
                         ::testing::Values('A', 'B', 'C', 'D', 'E', 'F',
                                           'G', 'H', 'I', 'J', 'K'),
                         [](const auto& inf) {
                           return std::string("Model_") + inf.param;
                         });

TEST_P(ZooTest, StructuralInvariants) {
  const ModelDesc m = make_model(GetParam());
  EXPECT_EQ(m.letter, GetParam());
  EXPECT_GE(m.kernels.size(), 20u) << m.name;
  EXPECT_FALSE(m.tensors.empty());

  for (const auto& k : m.kernels) {
    EXPECT_GT(k.flops, 0u) << k.name;
    EXPECT_GT(k.bytes, 0u) << k.name;
    EXPECT_GE(k.blocks, 1u) << k.name;
    EXPECT_FALSE(k.accesses.empty()) << k.name;
    EXPECT_GE(k.max_useful_tpcs, 1.0) << k.name;
    for (const auto& a : k.accesses) {
      ASSERT_GE(a.tensor, 0);
      ASSERT_LT(static_cast<size_t>(a.tensor), m.tensors.size());
    }
    // Tab. 3 service classes drive preemptibility (§7.1): only BE kernels
    // poll the eviction flag.
    EXPECT_EQ(k.preemptible, !m.is_ls()) << k.name;
  }

  // Exactly one output tensor, produced by some kernel.
  int outputs = 0;
  for (const auto& t : m.tensors) {
    if (t.kind == TensorKind::kOutput) {
      ++outputs;
      EXPECT_GE(t.produced_by, 0);
    }
  }
  EXPECT_EQ(outputs, 1) << m.name;
}

TEST_P(ZooTest, TensorGraphIsConsistent) {
  const ModelDesc m = make_model(GetParam());
  for (size_t ti = 0; ti < m.tensors.size(); ++ti) {
    const auto& t = m.tensors[ti];
    // Consumers must come after the producer.
    for (const int k : t.consumed_by) {
      ASSERT_LT(k, static_cast<int>(m.kernels.size()));
      if (t.produced_by >= 0) {
        EXPECT_GE(k, t.produced_by) << t.name;
      }
    }
    if (t.kind == TensorKind::kWeight) {
      EXPECT_EQ(t.produced_by, -1) << t.name;
      EXPECT_FALSE(t.consumed_by.empty()) << t.name;
    }
  }
}

TEST(Zoo, ServiceClassesMatchTable3) {
  const auto zoo = standard_zoo();
  ASSERT_EQ(zoo.size(), 11u);
  std::set<char> ls, be;
  for (const auto& m : zoo) {
    if (m.is_ls()) {
      ls.insert(m.letter);
    } else {
      be.insert(m.letter);
    }
  }
  EXPECT_EQ(ls, (std::set<char>{'A', 'B', 'C', 'D', 'E', 'F', 'G', 'H'}));
  EXPECT_EQ(be, (std::set<char>{'I', 'J', 'K'}));
}

TEST(Zoo, BatchSizesFollowSection92) {
  EXPECT_EQ(mobilenet_v3().batch, 1u);
  EXPECT_EQ(resnet152().batch, 16u);
  EXPECT_EQ(densenet161().batch, 8u);
  EXPECT_EQ(bert().batch, 16u);
}

TEST(Zoo, FlopTotalsMatchPublishedArchitectures) {
  // Published forward-pass numbers (×2 flops/MAC, ×batch). Generous
  // tolerance: recipes approximate padding/stride details.
  const double mnv3 = static_cast<double>(mobilenet_v3().total_flops());
  EXPECT_GT(mnv3, 0.2e9);
  EXPECT_LT(mnv3, 1.2e9);  // ~0.44 GFLOP

  const double r34 = static_cast<double>(resnet34().total_flops());
  EXPECT_GT(r34, 4e9);
  EXPECT_LT(r34, 12e9);  // ~7.3 GFLOP

  const double r152 =
      static_cast<double>(resnet152().total_flops()) / 16.0;  // per sample
  EXPECT_GT(r152, 15e9);
  EXPECT_LT(r152, 35e9);  // ~23 GFLOP

  const double bert_f =
      static_cast<double>(bert().total_flops()) / 16.0;
  EXPECT_GT(bert_f, 10e9);
  EXPECT_LT(bert_f, 40e9);  // ~22 GFLOP @ seq 128
}

TEST(Zoo, DenseNetIsTheMemoryHog) {
  // DenseNet's dense concatenation makes it the most memory-intensive
  // BE model per FLOP — the paper uses it as the canonical interferer.
  const auto dn = densenet161();
  const auto rn = resnet152();
  const double dn_ratio = static_cast<double>(dn.total_bytes()) /
                          static_cast<double>(dn.total_flops());
  const double rn_ratio = static_cast<double>(rn.total_bytes()) /
                          static_cast<double>(rn.total_flops());
  EXPECT_GT(dn_ratio, rn_ratio * 1.1);
}

TEST(Zoo, LsModelsAreLighterThanBeModels) {
  const auto zoo = standard_zoo();
  uint64_t max_ls = 0, min_be = ~0ull;
  for (const auto& m : zoo) {
    if (m.is_ls()) {
      max_ls = std::max(max_ls, m.total_flops());
    } else {
      min_be = std::min(min_be, m.total_flops());
    }
  }
  EXPECT_LT(max_ls, min_be);
}

// ---------------------------------------------------------- Footprint ----

TEST(Footprint, PeakNeverExceedsSum) {
  for (const auto& m : standard_zoo()) {
    const auto fp = analyze_footprint(m);
    EXPECT_LE(fp.inter_peak_bytes, fp.inter_sum_bytes) << m.name;
    EXPECT_GT(fp.inter_peak_bytes, 0u) << m.name;
    EXPECT_GT(fp.weight_bytes, 0u) << m.name;
  }
}

TEST(Footprint, ReuseShrinksChainModels) {
  // Linear-chain models (ResNet) keep only a couple of live buffers.
  const auto fp = analyze_footprint(resnet152());
  EXPECT_LT(fp.inter_peak_bytes, fp.inter_sum_bytes / 4);
}

TEST(Footprint, BimodalNearlyDoublesWithoutReuse) {
  // Fig. 16's headline: with all tensors memory-bound and no reuse,
  // bimodal ≈ 2× original.
  ModelDesc m = mobilenet_v3();
  for (auto& t : m.tensors) t.memory_bound = true;
  const auto fp = analyze_footprint(m);
  const double ratio = static_cast<double>(fp.bimodal(false)) /
                       static_cast<double>(fp.original(false));
  EXPECT_GT(ratio, 1.9);
  EXPECT_LE(ratio, 2.0);
}

TEST(Footprint, ReuseRecoversMostOfTheDuplication) {
  ModelDesc m = densenet161();
  for (auto& t : m.tensors) t.memory_bound = true;
  const auto fp = analyze_footprint(m);
  // Reuse-enabled bimodal is far below reuse-disabled bimodal — the
  // effect is strongest for the large-batch BE models (§9.1.3).
  EXPECT_LT(fp.bimodal(true), fp.bimodal(false) / 2);
}

TEST(Footprint, OnlyMemoryBoundTensorsDuplicate) {
  ModelDesc m = resnet34();
  const auto before = analyze_footprint(m);
  EXPECT_EQ(before.bimodal(false), before.original(false));  // no MB flags
  m.tensors[1].memory_bound = true;  // one weight tensor
  ASSERT_EQ(m.tensors[1].kind, TensorKind::kWeight);
  const auto after = analyze_footprint(m);
  EXPECT_EQ(after.bimodal(false),
            after.original(false) + m.tensors[1].bytes);
}

// ------------------------------------------------------------ Builder ----

TEST(Builder, ElementwiseSharesIndexExpression) {
  ModelBuilder b("toy", 'Z', ServiceClass::kLatencySensitive, 1);
  const int in = b.add_input(1024);
  const int c1 = b.conv("c1", in, 3, 8, 3, 16, 16);
  const int c2 = b.conv("c2", in, 3, 8, 3, 16, 16);
  b.elementwise("add", c1, c2);
  const ModelDesc m = b.build();
  const auto& add = m.kernels.back();
  ASSERT_EQ(add.accesses.size(), 3u);
  EXPECT_EQ(add.accesses[0].index_expr, add.accesses[1].index_expr);
  EXPECT_EQ(add.accesses[0].index_expr, add.accesses[2].index_expr);
}

TEST(Builder, GroupedConvReducesFlops) {
  ModelBuilder b("toy", 'Z', ServiceClass::kLatencySensitive, 1);
  const int in = b.add_input(64 * 64 * 32 * 4);
  b.conv("dense", in, 32, 32, 3, 64, 64, 1);
  b.conv("depthwise", in, 32, 32, 3, 64, 64, 32);
  const ModelDesc m = b.build();
  EXPECT_EQ(m.kernels[0].flops, m.kernels[1].flops * 32);
}

TEST(Builder, RejectsBadGroupCounts) {
  ModelBuilder b("toy", 'Z', ServiceClass::kLatencySensitive, 1);
  const int in = b.add_input(1024);
  EXPECT_THROW(b.conv("bad", in, 30, 32, 3, 8, 8, 7), ConfigError);
}

}  // namespace
}  // namespace sgdrc::models
