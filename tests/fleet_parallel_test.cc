// The determinism contract of the sharded fleet engine
// (docs/determinism.md): FleetOptions::parallel changes wall-clock
// only. Every run here executes the same fleet serially and on a
// thread pool — across device counts, thread counts, blind and
// state-reading routers, and mid-run control actions — and compares
// the results bit-for-bit, down to the raw latency samples.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/profiler.h"
#include "core/sgdrc_policy.h"
#include "fleet/fleet.h"
#include "models/zoo.h"
#include "workload/trace.h"

namespace sgdrc::fleet {
namespace {

using core::best_effort_tenant;
using core::latency_sensitive_tenant;

// Shared profiled models (profiling dominates test time; do it once).
struct Zoo {
  gpusim::GpuSpec spec = gpusim::test_gpu();
  models::ModelDesc ls_a = models::make_model('A');
  models::ModelDesc ls_b = models::make_model('B');
  models::ModelDesc be_i = models::make_model('I');
  TimeNs iso_a = 0, iso_b = 0;

  Zoo() {
    core::OfflineProfiler prof(spec);
    for (auto* m : {&ls_a, &ls_b, &be_i}) prof.profile(*m);
    iso_a = prof.isolated_latency(ls_a);
    iso_b = prof.isolated_latency(ls_b);
  }
};

const Zoo& zoo() {
  static const Zoo z;
  return z;
}

PolicyFactory sgdrc_factory() {
  return [](const gpusim::GpuSpec& spec)
             -> std::unique_ptr<control::Controller> {
    return std::make_unique<core::SgdrcPolicy>(spec);
  };
}

/// Exact textual fingerprint of a whole fleet run: event count, router
/// decisions, and per-tenant counters down to every raw latency sample.
/// Two runs with equal digests are bit-identical in every metric the
/// repo reports.
std::string digest(const FleetMetrics& m) {
  std::ostringstream os;
  os.precision(17);
  os << "events=" << m.events << "\nrouted=";
  for (const uint64_t r : m.routed) os << r << ',';
  for (const auto& t : m.tenants) {
    os << "\ntenant " << t.id << ": arrived=" << t.arrived
       << " served=" << t.served << " attained=" << t.attained
       << " kernels=" << t.kernels_done << " lat=";
    for (const auto s : t.latency.raw()) os << s << ' ';
  }
  os << '\n';
  return os.str();
}

std::vector<FleetTenantSpec> mixed_tenants(unsigned devices) {
  const auto& z = zoo();
  const unsigned reps = std::min(devices, 3u);
  return {
      replicated(latency_sensitive_tenant(z.ls_a, z.iso_a), reps),
      replicated(latency_sensitive_tenant(z.ls_b, z.iso_b), reps),
      replicated(best_effort_tenant(z.be_i), reps),
  };
}

FleetConfig base_config(unsigned devices, TimeNs duration) {
  FleetConfig cfg;
  cfg.spec = zoo().spec;
  cfg.devices = devices;
  cfg.duration = duration;
  cfg.slo_multiplier = 3.0;
  cfg.seed = 0xf1ee7;
  cfg.dispatch_latency = 2 * kNsPerUs;
  cfg.dispatch_jitter = 3 * kNsPerUs;
  return cfg;
}

std::vector<workload::Request> shared_trace(TimeNs duration) {
  workload::TraceOptions topt;
  topt.services = 2;
  topt.duration = duration;
  topt.per_service_rates = {500.0, 350.0};
  topt.seed = 0x7ace;
  return workload::generate_apollo_like_trace(topt);
}

std::string run_digest(unsigned devices, bool parallel, unsigned threads,
                       Router& router, TimeNs duration) {
  FleetConfig cfg = base_config(devices, duration);
  cfg.engine.parallel = parallel;
  cfg.engine.threads = threads;
  SpreadPlacement spread;
  FleetSim fleet(cfg, mixed_tenants(devices), spread, router,
                 sgdrc_factory());
  EXPECT_EQ(fleet.parallel(), parallel && devices > 1);
  const FleetMetrics m = fleet.run(shared_trace(duration));
  // Guard against a vacuous comparison of two empty runs.
  uint64_t served = 0;
  for (const auto& t : m.tenants) served += t.served;
  EXPECT_GT(served, 0u);
  EXPECT_GT(m.events, 0u);
  return digest(m);
}

// ------------------------------------------------- bit-identity grid ----

TEST(FleetParallel, BitIdenticalAcrossDeviceAndThreadCounts) {
  const TimeNs duration = 60 * kNsPerMs;
  for (const unsigned devices : {1u, 4u, 8u, 64u}) {
    RoundRobinRouter serial_router;
    const std::string serial =
        run_digest(devices, false, 0, serial_router, duration);
    for (const unsigned threads : {2u, 5u}) {
      RoundRobinRouter parallel_router;
      EXPECT_EQ(serial,
                run_digest(devices, true, threads, parallel_router, duration))
          << "parallel diverged at " << devices << " devices, " << threads
          << " threads";
    }
  }
}

TEST(FleetParallel, BitIdenticalWithStateReadingRouter) {
  // Least-outstanding routes by live device state, forcing the engine
  // onto the per-dispatch barrier path (no coalescing) — the parallel
  // barrier must still reproduce the serial read exactly.
  const TimeNs duration = 60 * kNsPerMs;
  for (const unsigned devices : {4u, 8u}) {
    LeastOutstandingRouter serial_router;
    const std::string serial =
        run_digest(devices, false, 0, serial_router, duration);
    for (const unsigned threads : {2u, 5u}) {
      LeastOutstandingRouter parallel_router;
      EXPECT_EQ(serial,
                run_digest(devices, true, threads, parallel_router, duration))
          << "parallel diverged at " << devices << " devices, " << threads
          << " threads";
    }
  }
}

// --------------------------------------- control actions and churn ----

/// A scripted run through the external-driver API: mid-run replica
/// churn, an SLO tighten, and same-instant injections — every control
/// tier of the engine, serial vs parallel.
std::string run_scripted(bool parallel, unsigned threads) {
  const auto& z = zoo();
  const TimeNs duration = 80 * kNsPerMs;
  FleetConfig cfg = base_config(4, duration);
  cfg.engine.parallel = parallel;
  cfg.engine.threads = threads;
  std::vector<FleetTenantSpec> tenants{
      replicated(latency_sensitive_tenant(z.ls_a, z.iso_a), 2),
      replicated(best_effort_tenant(z.be_i), 2),
  };
  SpreadPlacement spread;
  LeastOutstandingRouter router;
  FleetSim fleet(cfg, tenants, spread, router, sgdrc_factory());

  const auto trace = shared_trace(duration);
  fleet.begin();
  for (const auto& r : trace) {
    if (r.service != 0 || r.arrival >= duration) continue;
    fleet.at(r.arrival, [&fleet, r] { fleet.inject(0, r.arrival); });
  }
  fleet.at(20 * kNsPerMs, [&fleet] { fleet.add_replica(0, 2); });
  fleet.at(20 * kNsPerMs, [&fleet] { fleet.set_slo_factor(0.9); });
  fleet.at(50 * kNsPerMs, [&fleet] { fleet.remove_replica(0, 0); });
  fleet.run_until(duration);
  return digest(fleet.finish());
}

TEST(FleetParallel, BitIdenticalUnderScriptedChurn) {
  const std::string serial = run_scripted(false, 0);
  for (const unsigned threads : {2u, 5u}) {
    EXPECT_EQ(serial, run_scripted(true, threads))
        << "scripted churn diverged at " << threads << " threads";
  }
}

// ------------------------------- overload front door, retry storms ----

/// A fleet driven past capacity through the front door: a tight
/// admission bucket plus queue-depth shedding produce rejections,
/// retries (with jittered backoff), BE pauses, and drops — every
/// front-door code path — while the QoS router reads live device state.
/// Optionally heterogeneous, so perf-normalized routing and per-device
/// specs are under the same serial-vs-parallel microscope.
std::string run_overload(bool parallel, unsigned threads, bool hetero) {
  const TimeNs duration = 60 * kNsPerMs;
  FleetConfig cfg = base_config(4, duration);
  cfg.engine.parallel = parallel;
  cfg.engine.threads = threads;
  if (hetero) {
    cfg.device_specs = {zoo().spec, gpusim::a100_sxm4(), zoo().spec,
                        gpusim::a100_sxm4()};
  }
  cfg.front_door.enabled = true;
  cfg.front_door.admit_rate = 400.0;
  cfg.front_door.admit_burst = 4.0;
  cfg.front_door.be_pause_depth = 4;
  cfg.front_door.shed_depth = 8;
  cfg.front_door.max_retries = 2;
  SpreadPlacement spread;
  QosLoadAwareRouter router;
  FleetSim fleet(cfg, mixed_tenants(4), spread, router, sgdrc_factory());
  EXPECT_EQ(fleet.parallel(), parallel);
  const FleetMetrics m = fleet.run(shared_trace(duration));
  const auto& fd = m.front_door;
  // The storm must actually storm, or the digest compares idle doors.
  EXPECT_GT(fd.rejected, 0u);
  EXPECT_GT(fd.retries, 0u);
  std::ostringstream os;
  os << digest(m) << "door arrived=" << fd.arrived << " admitted="
     << fd.admitted << " rejected=" << fd.rejected << " shed=" << fd.shed
     << " retries=" << fd.retries << " dropped=" << fd.dropped
     << " expired=" << fd.expired << " pending=" << fd.pending_retries
     << " pauses=" << fd.be_pause_events << " paused_ns="
     << fd.be_paused_ns << '\n';
  return os.str();
}

TEST(FleetParallel, BitIdenticalThroughRetryStorm) {
  const std::string serial = run_overload(false, 0, false);
  for (const unsigned threads : {2u, 5u}) {
    EXPECT_EQ(serial, run_overload(true, threads, false))
        << "retry storm diverged at " << threads << " threads";
  }
}

TEST(FleetParallel, BitIdenticalThroughRetryStormOnHeteroFleet) {
  const std::string serial = run_overload(false, 0, true);
  for (const unsigned threads : {2u, 5u}) {
    EXPECT_EQ(serial, run_overload(true, threads, true))
        << "hetero retry storm diverged at " << threads << " threads";
  }
}


// ------------------------------------------------- DAG-model fleets ----

/// Wide-model fleets: inception DAG tenants expose multi-kernel
/// frontiers on every device, so each shard multi-launches kernels of a
/// single request. The sharded engine must replay that bit-identically
/// at any thread count.
struct DagZoo {
  models::ModelDesc ls = models::inception_ls(true);
  models::ModelDesc be = models::inception_be(true);
  TimeNs iso = 0;

  DagZoo() {
    core::OfflineProfiler prof(zoo().spec);
    prof.profile(ls);
    prof.profile(be);
    iso = prof.isolated_latency(ls);
  }
};

const DagZoo& dag_zoo() {
  static const DagZoo z;
  return z;
}

std::string run_dag_digest(bool parallel, unsigned threads) {
  const TimeNs duration = 60 * kNsPerMs;
  FleetConfig cfg = base_config(4, duration);
  cfg.engine.parallel = parallel;
  cfg.engine.threads = threads;
  const auto& z = dag_zoo();
  std::vector<FleetTenantSpec> tenants{
      replicated(latency_sensitive_tenant(z.ls, z.iso), 3),
      replicated(best_effort_tenant(z.be), 3),
  };
  SpreadPlacement spread;
  LeastOutstandingRouter router;
  FleetSim fleet(cfg, tenants, spread, router, sgdrc_factory());
  workload::TraceOptions topt;
  topt.services = 1;
  topt.duration = duration;
  topt.per_service_rates = {400.0};
  topt.seed = 0xdaf7;
  const FleetMetrics m =
      fleet.run(workload::generate_apollo_like_trace(topt));
  uint64_t served = 0;
  for (const auto& t : m.tenants) served += t.served;
  EXPECT_GT(served, 0u);
  return digest(m);
}

TEST(FleetParallel, BitIdenticalWithDagModelFrontiers) {
  const std::string serial = run_dag_digest(false, 0);
  for (const unsigned threads : {2u, 5u}) {
    EXPECT_EQ(serial, run_dag_digest(true, threads))
        << "DAG fleet diverged at " << threads << " threads";
  }
}

// ------------------------------------------------------- defaults ----

TEST(FleetParallel, SerialIsTheDefaultAndSingleDeviceStaysSerial) {
  EXPECT_FALSE(FleetOptions{}.parallel);
  // One device has nothing to parallelise; the pool is never built.
  FleetConfig cfg = base_config(1, 10 * kNsPerMs);
  cfg.engine.parallel = true;
  SpreadPlacement spread;
  RoundRobinRouter rr;
  FleetSim fleet(cfg, mixed_tenants(1), spread, rr, sgdrc_factory());
  EXPECT_FALSE(fleet.parallel());
}

}  // namespace
}  // namespace sgdrc::fleet
