// Tests for the kernel-level discrete-event executor: roofline math,
// processor sharing, interference terms, isolation, and Reef-style
// eviction/restart semantics.
#include <gtest/gtest.h>

#include <vector>

#include "common/event_queue.h"
#include "gpusim/executor.h"
#include "gpusim/gpu_spec.h"

namespace sgdrc::gpusim {
namespace {

// test_gpu: 4 TPCs, 2 TFLOPS (500 flops/ns/TPC), 100 GB/s (25 B/ns/chan),
// 4 channels.
class ExecutorTest : public ::testing::Test {
 protected:
  ExecutorTest() : exec_(test_gpu(), q_) {}

  KernelDesc compute_kernel(double ms, double useful_tpcs = 1e9) {
    KernelDesc k;
    k.name = "comp";
    k.flops = static_cast<uint64_t>(ms * 1e6 * 2000);  // full GPU: ms
    k.bytes = 0;
    k.blocks = 1u << 16;  // huge grid: occupancy does not cap parallelism
    k.max_useful_tpcs = useful_tpcs;
    return k;
  }

  KernelDesc memory_kernel(double ms) {
    KernelDesc k;
    k.name = "mem";
    k.flops = 1000;  // negligible
    k.bytes = static_cast<uint64_t>(ms * 1e6 * 100);  // full BW: ms
    k.blocks = 1u << 16;
    k.max_useful_tpcs = 1e9;
    return k;
  }

  TimeNs run_to_completion(const KernelLaunch& l) {
    TimeNs done = 0;
    exec_.launch(l, [&](GpuExecutor::LaunchId, TimeNs t) { done = t; });
    q_.run_all();
    return done;
  }

  EventQueue q_;
  GpuExecutor exec_;
};

TEST_F(ExecutorTest, SoloComputeKernelMatchesClosedForm) {
  const KernelDesc k = compute_kernel(1.0);
  const TimeNs start = q_.now();
  const TimeNs done = run_to_completion({&k});
  EXPECT_EQ(done - start, exec_.solo_runtime(k, 4, 4, false));
  EXPECT_NEAR(to_ms(done - start), 1.0, 0.01);
}

TEST_F(ExecutorTest, SoloMemoryKernelMatchesClosedForm) {
  const KernelDesc k = memory_kernel(2.0);
  const TimeNs done = run_to_completion({&k});
  EXPECT_EQ(done, exec_.solo_runtime(k, 4, 4, false));
  EXPECT_NEAR(to_ms(done), 2.0, 0.01);
}

TEST_F(ExecutorTest, ComputeScalesWithTpcsUntilCap) {
  const KernelDesc k = compute_kernel(1.0, /*useful_tpcs=*/2.0);
  const TimeNs t1 = exec_.solo_runtime(k, 1, 4, false);
  const TimeNs t2 = exec_.solo_runtime(k, 2, 4, false);
  const TimeNs t4 = exec_.solo_runtime(k, 4, 4, false);
  EXPECT_GT(t1, t2);
  EXPECT_EQ(t2, t4);  // saturated at min_tpcs = 2 (§7.1's SM_LS)
}

TEST_F(ExecutorTest, MemoryScalesWithChannels) {
  const KernelDesc k = memory_kernel(1.0);
  const TimeNs t4 = exec_.solo_runtime(k, 4, 4, false);
  const TimeNs t2 = exec_.solo_runtime(k, 4, 2, false);
  const TimeNs t1 = exec_.solo_runtime(k, 4, 1, false);
  EXPECT_GT(t2, t4);
  EXPECT_GT(t1, t2);
  // Halving channels at least halves bandwidth, plus the L2-shrink term.
  EXPECT_GT(t2, static_cast<TimeNs>(static_cast<double>(t4) * 1.9));
}

TEST_F(ExecutorTest, SptOverheadApplied) {
  KernelDesc k = memory_kernel(1.0);
  const TimeNs plain = exec_.solo_runtime(k, 4, 4, false);
  const TimeNs spt = exec_.solo_runtime(k, 4, 4, true);
  const double overhead = static_cast<double>(spt - plain) /
                          static_cast<double>(plain);
  EXPECT_NEAR(overhead, 0.029, 0.005);  // §9.1.2
}

TEST_F(ExecutorTest, FullOverlapComputeSharing) {
  // Two identical compute kernels sharing everything: each runs at
  // 1/(2(1+γ)) speed → 2.5× solo with γ=0.25.
  const KernelDesc k = compute_kernel(1.0);
  const TimeNs solo = exec_.solo_runtime(k, 4, 4, false);
  std::vector<TimeNs> done;
  for (int i = 0; i < 2; ++i) {
    exec_.launch({&k}, [&](GpuExecutor::LaunchId, TimeNs t) {
      done.push_back(t);
    });
  }
  q_.run_all();
  ASSERT_EQ(done.size(), 2u);
  const double gamma = exec_.params().intra_sm_gamma;
  const double expected = static_cast<double>(solo) * 2.0 * (1.0 + gamma);
  EXPECT_NEAR(static_cast<double>(done.back()), expected, expected * 0.02);
}

TEST_F(ExecutorTest, FullOverlapMemorySharing) {
  const KernelDesc k = memory_kernel(1.0);
  const TimeNs solo = exec_.solo_runtime(k, 4, 4, false);
  std::vector<TimeNs> done;
  for (int i = 0; i < 2; ++i) {
    exec_.launch({&k}, [&](GpuExecutor::LaunchId, TimeNs t) {
      done.push_back(t);
    });
  }
  q_.run_all();
  const double beta = exec_.params().inter_channel_beta;
  const double expected = static_cast<double>(solo) * 2.0 * (1.0 + beta);
  EXPECT_NEAR(static_cast<double>(done.back()), expected, expected * 0.02);
}

TEST_F(ExecutorTest, DisjointPartitionsGivePerfectIsolation) {
  // The core SGDRC property: disjoint TPC masks + disjoint channel sets
  // ⇒ co-running kernels behave exactly as if alone on their partitions.
  KernelDesc a = memory_kernel(1.0);
  a.max_useful_tpcs = 2.0;
  KernelDesc b = a;
  const TimeNs solo = exec_.solo_runtime(a, 2, 2, false);

  std::vector<TimeNs> done;
  exec_.launch({&a, tpc_range(0, 2), 0b0011},
               [&](GpuExecutor::LaunchId, TimeNs t) { done.push_back(t); });
  exec_.launch({&b, tpc_range(2, 2), 0b1100},
               [&](GpuExecutor::LaunchId, TimeNs t) { done.push_back(t); });
  q_.run_all();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_NEAR(static_cast<double>(done[0]), static_cast<double>(solo), 2.0);
  EXPECT_NEAR(static_cast<double>(done[1]), static_cast<double>(solo), 2.0);
}

TEST_F(ExecutorTest, ChannelOverlapHurtsOnlyMemoryBound) {
  // Disjoint TPCs, overlapping channels: Fig. 3b's inter-SM conflict.
  KernelDesc victim_mem = memory_kernel(1.0);
  victim_mem.max_useful_tpcs = 2.0;
  KernelDesc victim_comp = compute_kernel(1.0, 2.0);
  KernelDesc aggressor = memory_kernel(4.0);
  aggressor.max_useful_tpcs = 2.0;

  auto co_run = [&](const KernelDesc& victim) {
    EventQueue q;
    GpuExecutor exec(test_gpu(), q);
    TimeNs victim_done = 0;
    exec.launch({&aggressor, tpc_range(2, 2), 0},
                [](GpuExecutor::LaunchId, TimeNs) {});
    exec.launch({&victim, tpc_range(0, 2), 0},
                [&](GpuExecutor::LaunchId, TimeNs t) { victim_done = t; });
    q.run_all();
    return victim_done;
  };

  const TimeNs mem_solo = exec_.solo_runtime(victim_mem, 2, 4, false);
  const TimeNs comp_solo = exec_.solo_runtime(victim_comp, 2, 4, false);
  EXPECT_GT(co_run(victim_mem),
            static_cast<TimeNs>(static_cast<double>(mem_solo) * 1.5));
  EXPECT_LT(co_run(victim_comp),
            static_cast<TimeNs>(static_cast<double>(comp_solo) * 1.05));
}

TEST_F(ExecutorTest, InterferenceGrowsWithAggressorCount) {
  // Fig. 3's shape: victim latency increases monotonically with the
  // number of co-located interference tasks.
  KernelDesc victim = memory_kernel(0.5);
  victim.max_useful_tpcs = 1.0;
  KernelDesc aggressor = memory_kernel(10.0);
  aggressor.max_useful_tpcs = 1.0;

  TimeNs prev = 0;
  for (unsigned n = 0; n <= 3; ++n) {
    EventQueue q;
    GpuExecutor exec(test_gpu(), q);
    for (unsigned i = 0; i < n; ++i) {
      exec.launch({&aggressor, tpc_bit(1 + i), 0},
                  [](GpuExecutor::LaunchId, TimeNs) {});
    }
    TimeNs done = 0;
    exec.launch({&victim, tpc_bit(0), 0},
                [&](GpuExecutor::LaunchId, TimeNs t) { done = t; });
    q.run_all();
    EXPECT_GT(done, prev) << "aggressors=" << n;
    prev = done;
  }
}

TEST_F(ExecutorTest, RateChangeMidFlight) {
  // A runs alone for S/2, then B joins on the same resources; A's
  // completion reflects the slower second half.
  const KernelDesc k = compute_kernel(1.0);
  const double S = static_cast<double>(exec_.solo_runtime(k, 4, 4, false));
  TimeNs a_done = 0;
  exec_.launch({&k}, [&](GpuExecutor::LaunchId, TimeNs t) { a_done = t; });
  q_.schedule_at(static_cast<TimeNs>(S / 2), [&] {
    exec_.launch({&k}, [](GpuExecutor::LaunchId, TimeNs) {});
  });
  q_.run_all();
  const double slowdown = 2.0 * (1.0 + exec_.params().intra_sm_gamma);
  const double expected = S / 2 + (S / 2) * slowdown;
  EXPECT_NEAR(static_cast<double>(a_done), expected, expected * 0.02);
}

TEST_F(ExecutorTest, EvictionKillsAndLosesProgress) {
  KernelDesc be = compute_kernel(1.0);
  be.preemptible = true;
  bool completed = false, evicted = false;
  TimeNs evict_time = 0;
  const auto id = exec_.launch(
      {&be}, [&](GpuExecutor::LaunchId, TimeNs) { completed = true; });
  q_.schedule_at(from_ms(0.5), [&] {
    exec_.evict(id, [&](GpuExecutor::LaunchId, TimeNs t) {
      evicted = true;
      evict_time = t;
    });
  });
  q_.run_all();
  EXPECT_TRUE(evicted);
  EXPECT_FALSE(completed);
  EXPECT_EQ(evict_time, from_ms(0.5) + exec_.params().evict_latency);
  EXPECT_EQ(exec_.evictions(), 1u);
  EXPECT_EQ(exec_.running_count(), 0u);

  // Restart: full runtime again (progress was lost — §7.1).
  TimeNs done = 0;
  exec_.launch({&be}, [&](GpuExecutor::LaunchId, TimeNs t) { done = t; });
  q_.run_all();
  EXPECT_EQ(done - evict_time, exec_.solo_runtime(be, 4, 4, false));
}

TEST_F(ExecutorTest, EvictingNonPreemptibleThrows) {
  const KernelDesc ls = compute_kernel(1.0);  // no eviction-flag poll
  const auto id = exec_.launch({&ls}, nullptr);
  EXPECT_THROW(exec_.evict(id, nullptr), ConfigError);
}

TEST_F(ExecutorTest, EvictCompletionRaceFavoursCompletion) {
  KernelDesc be = compute_kernel(0.01);
  be.preemptible = true;
  bool completed = false, evicted = false;
  const auto id = exec_.launch(
      {&be}, [&](GpuExecutor::LaunchId, TimeNs) { completed = true; });
  // Evict 1ns before natural completion: the kernel finishes during the
  // flag-check latency, so the eviction callback must not fire.
  const TimeNs t_done = exec_.solo_runtime(be, 4, 4, false);
  q_.schedule_at(t_done - 1, [&] {
    exec_.evict(id, [&](GpuExecutor::LaunchId, TimeNs) { evicted = true; });
  });
  q_.run_all();
  EXPECT_TRUE(completed);
  EXPECT_FALSE(evicted);
}

TEST_F(ExecutorTest, BusyViewsTrackRunningKernels) {
  const KernelDesc k = compute_kernel(1.0);
  EXPECT_EQ(exec_.busy_tpcs(), 0u);
  exec_.launch({&k, tpc_range(0, 2), 0b0011}, nullptr);
  EXPECT_EQ(exec_.busy_tpcs(), tpc_range(0, 2));
  EXPECT_EQ(exec_.busy_channels(), 0b0011u);
  q_.run_all();
  EXPECT_EQ(exec_.busy_tpcs(), 0u);
}

TEST_F(ExecutorTest, ManySequentialKernelsAllComplete) {
  // Work conservation under a random launch pattern.
  const KernelDesc k = compute_kernel(0.05);
  int completions = 0;
  std::function<void()> next = [&] {
    if (completions >= 50) return;
    exec_.launch({&k}, [&](GpuExecutor::LaunchId, TimeNs) {
      ++completions;
      next();
    });
  };
  next();
  q_.run_all();
  EXPECT_EQ(completions, 50);
  EXPECT_EQ(exec_.completions(), 50u);
}

TEST_F(ExecutorTest, RejectsInvalidLaunches) {
  const KernelDesc k = compute_kernel(1.0);
  EXPECT_THROW(exec_.launch({nullptr}, nullptr), ConfigError);
  EXPECT_THROW(exec_.launch({&k, tpc_bit(60), 0}, nullptr), ConfigError);
  EXPECT_THROW(exec_.launch({&k, 0, channel_bit(20)}, nullptr), ConfigError);
}

}  // namespace
}  // namespace sgdrc::gpusim
