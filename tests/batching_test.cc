// Dynamic request batching: the batch-size latency model
// (models/batching.h), the assembly queue inside ServingSim (timeout
// fires partial batches, the cap is respected, churned tenants drain,
// per-request latency includes assembly wait), occupancy visibility to
// controllers, router-facing queue depth, and bit-identical reruns with
// batching enabled.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>

#include "baselines/registry.h"
#include "control/batch_aware.h"
#include "core/serving.h"
#include "core/sgdrc_policy.h"
#include "models/batching.h"

namespace sgdrc::core {
namespace {

using workload::BatchPolicy;
using workload::Request;
using workload::batch_up_to;

gpusim::GpuSpec spec() { return gpusim::test_gpu(); }

/// Policy driven by a std::function (same pattern as core_test.cc).
class FnPolicy : public Policy {
 public:
  explicit FnPolicy(std::function<void(ServingSim&)> fn)
      : fn_(std::move(fn)) {}
  std::string name() const override { return "test-fn"; }
  void schedule(ServingSim& sim) override { fn_(sim); }

 private:
  std::function<void(ServingSim&)> fn_;
};

/// Greedy scheduler: launch every waiting job on the whole device.
FnPolicy greedy() {
  return FnPolicy([](ServingSim& sim) {
    for (const auto& job : sim.jobs()) {
      if (!job.in_flight) sim.launch(job.id, {});
    }
  });
}

/// A small synthetic LS model with one weight tensor, so batching has
/// both launch overhead and weight traffic to amortise.
models::ModelDesc tiny_ls_model() {
  models::ModelDesc m;
  m.name = "tiny-ls";
  m.letter = 'T';
  m.service = models::ServiceClass::kLatencySensitive;
  models::TensorDesc w;
  w.name = "w0";
  w.bytes = 60'000;
  w.kind = models::TensorKind::kWeight;
  w.consumed_by = {0};
  m.tensors.push_back(std::move(w));
  for (int i = 0; i < 2; ++i) {
    gpusim::KernelDesc k;
    k.name = "ls.k" + std::to_string(i);
    k.flops = 2'000'000;
    k.bytes = 100'000;
    k.blocks = 32;
    k.max_useful_tpcs = 4;
    k.min_tpcs = 2;
    m.kernels.push_back(std::move(k));
  }
  return m;
}

constexpr TimeNs kIso = 200 * kNsPerUs;

ServingSimBuilder batched_builder(BatchPolicy policy,
                                  TimeNs duration = 50 * kNsPerMs) {
  return ServingSimBuilder()
      .gpu(spec())
      .duration(duration)
      .default_ls_instances(2)
      .add_latency_sensitive(tiny_ls_model(), kIso)
      .batching(policy);
}

// ------------------------------------------------ batch latency model ----

TEST(BatchModel, SublinearScalingFromComputeMemoryFootprint) {
  const auto base = tiny_ls_model();
  const auto b4 = models::batched_variant(base, 4);
  ASSERT_EQ(b4.kernels.size(), base.kernels.size());
  // Compute scales linearly with the batch...
  EXPECT_EQ(b4.kernels[0].flops, 4 * base.kernels[0].flops);
  // ...but kernel 0's weight bytes are read once per batch, so its
  // traffic grows sublinearly; kernel 1 has no weights and scales x4.
  EXPECT_EQ(models::kernel_weight_bytes(base, 0), 60'000u);
  EXPECT_EQ(b4.kernels[0].bytes, 60'000u + 4 * (100'000u - 60'000u));
  EXPECT_EQ(b4.kernels[1].bytes, 4 * base.kernels[1].bytes);
  // The grid grows with the batch and the latency-optimal width ~sqrt(B).
  EXPECT_EQ(b4.kernels[0].blocks, 4 * base.kernels[0].blocks);
  EXPECT_DOUBLE_EQ(b4.kernels[0].max_useful_tpcs,
                   4.0 * base.kernels[0].max_useful_tpcs);
  EXPECT_EQ(b4.kernels[0].min_tpcs, 4u);  // ceil(2 * sqrt(4))
  // Activation tensors carry B samples; weights stay single-copy.
  EXPECT_EQ(b4.tensors[0].bytes, base.tensors[0].bytes);
  EXPECT_EQ(b4.batch, 4u);
}

TEST(BatchModel, BatchOfOneIsIdentity) {
  const auto base = tiny_ls_model();
  const auto b1 = models::batched_variant(base, 1);
  EXPECT_EQ(b1.kernels[0].flops, base.kernels[0].flops);
  EXPECT_EQ(b1.kernels[0].bytes, base.kernels[0].bytes);
  EXPECT_EQ(b1.kernels[0].min_tpcs, base.kernels[0].min_tpcs);
  EXPECT_EQ(b1.batch, base.batch);
}

// ------------------------------------------------------ assembly queue ----

TEST(Batching, AssemblyTimeoutFiresAPartialBatch) {
  const TimeNs timeout = 2 * kNsPerMs;
  FnPolicy policy = greedy();
  auto sim = batched_builder(batch_up_to(8, timeout)).build(policy);
  // Three requests land well inside one assembly window — far fewer than
  // max_batch — and must still launch, as ONE batch, once the oldest has
  // waited out the timeout.
  const auto m = sim->run({{1000, 0}, {2000, 0}, {3000, 0}});
  const auto& t = m.tenants[0];
  EXPECT_EQ(t.served, 3u);
  ASSERT_EQ(t.batch_sizes.count(), 1u);  // one partial batch, not three
  EXPECT_DOUBLE_EQ(t.batch_sizes.raw()[0], 3.0);
  // Every latency includes the assembly wait: the first request waited
  // the full timeout before its batch even launched.
  EXPECT_GE(t.latency.raw()[0], static_cast<double>(timeout));
}

TEST(Batching, BatchSizeCapIsRespected) {
  FnPolicy policy = greedy();
  auto sim = batched_builder(batch_up_to(4, 5 * kNsPerMs)).build(policy);
  // A dense burst: 19 near-simultaneous requests must cut into batches
  // of at most 4, full batches launching immediately (no timeout wait).
  std::vector<Request> burst;
  for (unsigned i = 0; i < 19; ++i) burst.push_back({1000 + i, 0});
  const auto m = sim->run(burst);
  const auto& t = m.tenants[0];
  EXPECT_EQ(t.served, 19u);
  ASSERT_GE(t.batch_sizes.count(), 5u);  // 4+4+4+4+3
  double largest = 0.0;
  for (const double s : t.batch_sizes.raw()) {
    EXPECT_LE(s, 4.0);
    largest = std::max(largest, s);
  }
  EXPECT_DOUBLE_EQ(largest, 4.0);  // the cap is reached, not undershot
}

TEST(Batching, ZeroTimeoutNeverWaits) {
  FnPolicy policy = greedy();
  auto sim = batched_builder(batch_up_to(8, 0)).build(policy);
  const auto m = sim->run({{1000, 0}, {500 * kNsPerUs, 0}});
  const auto& t = m.tenants[0];
  EXPECT_EQ(t.served, 2u);
  ASSERT_EQ(t.batch_sizes.count(), 2u);  // batches of one: no assembly wait
  EXPECT_DOUBLE_EQ(t.batch_sizes.raw()[0], 1.0);
}

TEST(Batching, ChurnedTenantsPendingBatchDrains) {
  const TimeNs timeout = 30 * kNsPerMs;  // would outlive the run if waited
  EventQueue queue;  // external-driver mode: the test owns the clock
  FnPolicy policy = greedy();
  auto sim = batched_builder(batch_up_to(8, timeout)).build(queue, policy);
  sim->begin();
  // Two requests enter the assembly queue; the timer is far away.
  sim->inject(0, 0);
  sim->inject(0, 0);
  EXPECT_EQ(sim->batch_queue_depth(0), 2u);
  // The tenant churns out: the half-assembled batch must launch NOW and
  // drain, not wait out a timer nothing will renew.
  sim->remove_tenant(0);
  EXPECT_EQ(sim->batch_queue_depth(0), 0u);  // assembly flushed to a job
  // A straggler routed before the removal (fleet dispatch hop) lands
  // after it: no companions are coming, so it must launch immediately as
  // a batch of one instead of waiting out the 30 ms assembly timer.
  sim->inject(0, 0);
  EXPECT_EQ(sim->batch_queue_depth(0), 0u);
  queue.run_all();
  EXPECT_EQ(sim->outstanding(0), 0u);  // fully drained
  const auto m = sim->finish();
  EXPECT_EQ(m.tenants[0].served, 3u);
  ASSERT_EQ(m.tenants[0].batch_sizes.count(), 2u);
  EXPECT_DOUBLE_EQ(m.tenants[0].batch_sizes.raw()[0], 2.0);
  EXPECT_DOUBLE_EQ(m.tenants[0].batch_sizes.raw()[1], 1.0);
}

TEST(Batching, OutstandingCountsRequestsNotInstanceSlots) {
  // With instances=2 and max_batch=4, 10 buffered requests must all be
  // visible to routers through outstanding(), wherever they sit
  // (assembly, closed-but-waiting batches, admitted jobs).
  FnPolicy idle([](ServingSim&) {});  // never launch: everything queues
  auto sim = batched_builder(batch_up_to(4, 10 * kNsPerMs)).build(idle);
  sim->begin();
  for (int i = 0; i < 10; ++i) sim->inject(0, 0);
  EXPECT_EQ(sim->outstanding(0), 10u);
  // 4+4 closed (2 admitted jobs hold the 2 instances), 2 assembling.
  EXPECT_EQ(sim->batch_queue_depth(0), 2u);
  EXPECT_TRUE(sim->batching_enabled(0));
  (void)sim->finish();
}

// ------------------------------------------- controller-facing signals ----

TEST(Batching, OccupancyIsVisibleToTheController) {
  double seen_occupancy = 0.0;
  size_t seen_depth = 0;
  FnPolicy policy([&](ServingSim& sim) {
    seen_occupancy = std::max(seen_occupancy, sim.batch_occupancy(0));
    seen_depth = std::max(seen_depth, sim.batch_queue_depth(0));
    for (const auto& job : sim.jobs()) {
      if (!job.in_flight) sim.launch(job.id, {});
    }
  });
  auto sim = batched_builder(batch_up_to(4, 1 * kNsPerMs)).build(policy);
  std::vector<Request> burst;
  for (unsigned i = 0; i < 12; ++i) burst.push_back({1000 + i * 100, 0});
  const auto m = sim->run(burst);
  EXPECT_EQ(m.tenants[0].served, 12u);
  EXPECT_GE(seen_occupancy, 2.0);  // real multi-request batches launched
  EXPECT_GE(seen_depth, 1u);
}

TEST(Batching, BatchAwareControllerWidensThenNarrowsTheReserve) {
  control::BatchAwareSgdrc controller(spec());
  EventQueue queue;  // external-driver mode: observe the floor mid-run
  auto sim = batched_builder(batch_up_to(8, 1 * kNsPerMs), 100 * kNsPerMs)
                 .build(queue, controller);
  sim->begin();
  EXPECT_EQ(controller.current_floor(), 0u);  // nothing batched yet
  // A dense burst: batches assemble and launch while more keep arriving.
  for (unsigned i = 0; i < 24; ++i) {
    queue.run_until(1000 + i * 200);
    sim->inject(0, queue.now());
  }
  // Mid-burst (batches admitted / queued, kernels in flight): observed
  // occupancy >= min_occupancy, so the reserve floor widened to roughly
  // base min_tpcs * sqrt(occupancy) (never the whole device).
  EXPECT_GT(controller.current_floor(), 0u);
  EXPECT_LT(controller.current_floor(), spec().num_tpcs);

  // Drain completely: with no queued or in-flight batch work left, the
  // wrapper narrows the floor back to 0 — plain SGDRC exactly.
  queue.run_all();
  EXPECT_EQ(sim->outstanding(0), 0u);
  EXPECT_EQ(controller.current_floor(), 0u);
  const auto m = sim->finish();
  EXPECT_EQ(m.tenants[0].served, 24u);
}

TEST(Batching, OccupancyWindowFollowsTheWorkload) {
  // The occupancy signal must track *recent* batches, not the lifetime
  // mean: a surge of full batches followed by singleton traffic decays
  // back toward 1, so the controller narrows instead of holding the
  // surge-era reservation forever.
  FnPolicy policy = greedy();
  auto sim =
      batched_builder(batch_up_to(4, 500 * kNsPerUs), 200 * kNsPerMs)
          .build(policy);
  std::vector<Request> trace;
  for (unsigned i = 0; i < 32; ++i) trace.push_back({1000 + i, 0});  // surge
  for (unsigned i = 0; i < 40; ++i) {  // then well-spaced singletons
    trace.push_back({20 * kNsPerMs + i * 3 * kNsPerMs, 0});
  }
  const auto m = sim->run(trace);
  EXPECT_EQ(m.tenants[0].served, 72u);
  // 40 singleton batches flushed the 16-entry window: the lifetime mean
  // is well above 1, the windowed signal is back at 1.
  EXPECT_DOUBLE_EQ(sim->batch_occupancy(0), 1.0);
  EXPECT_GT(m.tenants[0].batch_sizes.mean(), 1.2);
}

// ----------------------------------------------------------- determinism ----

TEST(Batching, RerunsAreBitIdenticalWithBatchingEnabled) {
  const auto run_once = [] {
    auto controller = baselines::make_system("SGDRC (Batch-aware)", spec());
    auto sim =
        batched_builder(batch_up_to(4, 1 * kNsPerMs), 40 * kNsPerMs)
            .seed(0xba7c)
            .build(*controller);
    std::vector<Request> trace;
    for (unsigned i = 0; i < 30; ++i) {
      trace.push_back({1000 + i * 777'777 % (30 * kNsPerMs), 0});
    }
    std::sort(trace.begin(), trace.end(),
              [](const Request& a, const Request& b) {
                return a.arrival < b.arrival;
              });
    return sim->run(trace);
  };
  const auto a = run_once();
  const auto b = run_once();
  ASSERT_EQ(a.tenants.size(), b.tenants.size());
  for (size_t t = 0; t < a.tenants.size(); ++t) {
    EXPECT_EQ(a.tenants[t].arrived, b.tenants[t].arrived);
    EXPECT_EQ(a.tenants[t].served, b.tenants[t].served);
    EXPECT_EQ(a.tenants[t].attained, b.tenants[t].attained);
    EXPECT_EQ(a.tenants[t].latency.raw(), b.tenants[t].latency.raw());
    EXPECT_EQ(a.tenants[t].batch_sizes.raw(), b.tenants[t].batch_sizes.raw());
  }
}

}  // namespace
}  // namespace sgdrc::core
