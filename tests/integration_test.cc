// Cross-module integration tests: the full SGDRC story on one small GPU —
// reverse-engineer the hash with timing probes, feed the *learned* lookup
// table (never the oracle) into the driver's colored pool, and verify that
// tenants end up channel-isolated through the real translate() path.
// Plus end-to-end serving determinism and workload-generator properties.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "baselines/baseline_policies.h"
#include "coloring/translate.h"
#include "core/harness.h"
#include "core/sgdrc_policy.h"
#include "driver/uvm_pool.h"
#include "gpusim/device.h"
#include "reveng/lut.h"
#include "reveng/pipeline.h"
#include "workload/trace.h"

namespace sgdrc {
namespace {

using gpusim::GpuDevice;
using gpusim::kPartitionBytes;

TEST(FullStack, LearnedLutDrivesChannelIsolation) {
  // 1. Crack the hash from timing probes only.
  GpuDevice dev(gpusim::test_gpu(), 0x1269);
  reveng::PipelineOptions popt;
  popt.samples = 5000;
  popt.hidden = {64, 32};
  popt.train.epochs = 50;
  reveng::HashCracker cracker(dev, popt);
  const auto report = cracker.run();
  ASSERT_GT(report.holdout_accuracy, 0.95);

  // 2. Build a LUT with the DNN and align its discovered ids to two
  //    disjoint color sets (the runtime only needs consistency).
  const uint64_t pool_bytes = 16ull << 20;
  // Frames come from anywhere in VRAM, so cover the whole space.
  const auto lut =
      cracker.build_lut(0, dev.spec().vram_bytes);

  // 3. Drive the UVM pool with the learned labeler.
  driver::UvmPoolOptions uopt;
  uopt.pool_bytes = pool_bytes;
  uopt.granularity_kib = 2;
  uopt.channel_of = [&lut](gpusim::PhysAddr pa) {
    return lut.channel_of(pa);
  };
  driver::UvmMemoryPool pool(dev, uopt);

  // 4. Two tenants on complementary discovered-channel sets.
  const gpusim::ChannelSet set_a = gpusim::channel_bit(0) |
                                   gpusim::channel_bit(1);
  const gpusim::ChannelSet set_b =
      gpusim::all_channels(dev.spec().num_channels) & ~set_a;
  auto buf_a = pool.allocate(1ull << 20, set_a);
  auto buf_b = pool.allocate(1ull << 20, set_b);

  // 5. Isolation through the *silicon* truth: the sets of true channels
  //    the two tenants touch must be disjoint (whatever the discovered
  //    numbering is).
  std::set<unsigned> true_a, true_b;
  for (uint64_t off = 0; off < 1ull << 20; off += kPartitionBytes) {
    true_a.insert(dev.oracle().channel_of(
        dev.pa_of(coloring::colored_va(buf_a, off))));
    true_b.insert(dev.oracle().channel_of(
        dev.pa_of(coloring::colored_va(buf_b, off))));
  }
  for (const unsigned c : true_a) {
    EXPECT_EQ(true_b.count(c), 0u) << "channel " << c << " shared";
  }
  pool.release(buf_a);
  pool.release(buf_b);
}

TEST(FullStack, ServingIsDeterministic) {
  auto run_once = [] {
    core::HarnessOptions o;
    o.spec = gpusim::test_gpu();
    o.ls_letters = "AB";
    o.be_letters = "I";
    o.utilization = 0.4;
    o.duration = 200 * kNsPerMs;
    o.seed = 77;
    core::ServingHarness h(o);
    core::SgdrcPolicy p(o.spec);
    return h.run(p, true);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.ls_goodput(), b.ls_goodput());
  EXPECT_EQ(a.be_throughput(), b.be_throughput());
  const auto ls_a = a.of_class(workload::QosClass::kLatencySensitive);
  const auto ls_b = b.of_class(workload::QosClass::kLatencySensitive);
  ASSERT_EQ(ls_a.size(), ls_b.size());
  for (size_t i = 0; i < ls_a.size(); ++i) {
    EXPECT_EQ(ls_a[i]->served, ls_b[i]->served);
    EXPECT_DOUBLE_EQ(ls_a[i]->p99_ms(), ls_b[i]->p99_ms());
  }
}

TEST(FullStack, SptModelsCarryTheOverheadIntoServing) {
  // The same policy over transformed vs plain models: transformed runs
  // pay the §9.1.2 overhead, so LS goodput can only go down (slightly).
  core::HarnessOptions o;
  o.spec = gpusim::test_gpu();
  o.ls_letters = "A";
  o.be_letters = "I";
  o.utilization = 0.3;
  o.duration = 200 * kNsPerMs;
  o.seed = 5;
  core::ServingHarness h(o);
  core::SgdrcStaticPolicy p1(o.spec), p2(o.spec);
  const auto plain = h.run(p1, false);
  const auto spt = h.run(p2, true);
  EXPECT_LE(spt.ls_goodput(), plain.ls_goodput() + 1.0);
}

// ------------------------------------------------------------- Trace ----

TEST(Trace, ScaleHalvesTheLoad) {
  workload::TraceOptions t;
  t.services = 4;
  t.duration = 4 * kNsPerSec;
  t.rate_per_service = 100.0;
  t.seed = 9;
  t.scale = 1.0;
  const auto heavy = workload::generate_apollo_like_trace(t);
  t.scale = 0.5;
  const auto light = workload::generate_apollo_like_trace(t);
  EXPECT_NEAR(static_cast<double>(light.size()),
              static_cast<double>(heavy.size()) / 2.0,
              static_cast<double>(heavy.size()) * 0.15);
}

TEST(Trace, MeanRateMatchesRequest) {
  workload::TraceOptions t;
  t.services = 2;
  t.duration = 10 * kNsPerSec;
  t.rate_per_service = 150.0;
  t.seed = 10;
  const auto trace = workload::generate_apollo_like_trace(t);
  EXPECT_NEAR(static_cast<double>(trace.size()), 2 * 150 * 10, 300);
}

TEST(Trace, SortedAndWithinWindow) {
  workload::TraceOptions t;
  t.services = 3;
  t.duration = 1 * kNsPerSec;
  t.seed = 11;
  const auto trace = workload::generate_apollo_like_trace(t);
  for (size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GE(trace[i].arrival, trace[i - 1].arrival);
  }
  for (const auto& r : trace) {
    EXPECT_LT(r.arrival, t.duration);
    EXPECT_LT(r.service, 3u);
  }
}

TEST(Trace, PerServiceRatesOverrideTheDefault) {
  workload::TraceOptions t;
  t.services = 2;
  t.duration = 10 * kNsPerSec;
  t.rate_per_service = 50.0;
  t.per_service_rates = {400.0};  // service 0 only
  t.seed = 12;
  const auto trace = workload::generate_apollo_like_trace(t);
  size_t s0 = 0, s1 = 0;
  for (const auto& r : trace) (r.service == 0 ? s0 : s1)++;
  EXPECT_GT(s0, 6 * s1);
}

TEST(Trace, BurstinessConcentratesArrivals) {
  // With high burstiness, many more requests land within 2ms of a frame
  // tick than with pure Poisson arrivals.
  auto frame_fraction = [](double burstiness) {
    workload::TraceOptions t;
    t.services = 1;
    t.duration = 10 * kNsPerSec;
    t.rate_per_service = 300.0;
    t.burstiness = burstiness;
    t.seed = 13;
    const auto trace = workload::generate_apollo_like_trace(t);
    // Phase-of-frame histogram (1 ms bins): bursty traces concentrate in
    // a few bins around the (per-service random) frame phase.
    std::vector<size_t> bins(t.frame_interval / kNsPerMs, 0);
    for (const auto& r : trace) {
      ++bins[(r.arrival % t.frame_interval) / kNsPerMs];
    }
    const size_t peak = *std::max_element(bins.begin(), bins.end());
    return static_cast<double>(peak) / static_cast<double>(trace.size());
  };
  EXPECT_GT(frame_fraction(0.9), frame_fraction(0.05) + 0.2);
}

// ----------------------------------------------------- Policy details ----

TEST(SgdrcPolicyDetail, ChannelPartitionsCoverAndDisjoint) {
  for (const auto& spec : {gpusim::tesla_p40(), gpusim::rtx_a2000(),
                           gpusim::test_gpu()}) {
    core::SgdrcPolicy p(spec);
    EXPECT_EQ(p.be_channels() & p.ls_channels(), 0u) << spec.name;
    EXPECT_EQ(p.be_channels() | p.ls_channels(),
              gpusim::all_channels(spec.num_channels))
        << spec.name;
    // Whole groups only (colorable at the group granularity, Tab. 4).
    EXPECT_EQ(gpusim::channel_count(p.be_channels()) %
                  spec.channel_group_size,
              0u)
        << spec.name;
  }
}

TEST(SgdrcPolicyDetail, MonopolisationWithoutLsLoad) {
  // With no LS requests at all, SGDRC's BE task must run the GPU flat out
  // — same throughput as plain multi-streaming within a small margin.
  core::HarnessOptions o;
  o.spec = gpusim::test_gpu();
  o.ls_letters = "A";
  o.be_letters = "I";
  o.utilization = 0.4;
  o.duration = 300 * kNsPerMs;
  o.seed = 21;
  core::ServingHarness h(o);

  // An "empty" trace: run() only replays requests from the harness trace;
  // we emulate zero LS load by scaling the utilisation to ~nothing.
  core::HarnessOptions o2 = o;
  o2.utilization = 0.001;
  core::ServingHarness quiet(o2);
  core::SgdrcPolicy sgdrc(o.spec);
  baselines::MultiStreamPolicy multi;
  const auto ms = quiet.run(sgdrc, true);
  const auto mm = quiet.run(multi, false);
  EXPECT_GT(ms.be_throughput(), 0.85 * mm.be_throughput());
}

}  // namespace
}  // namespace sgdrc
