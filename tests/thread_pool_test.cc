// Direct tests for common/thread_pool.h — the foundation the parallel
// fleet engine stands on. Covers the ordering contract (parallel_for
// maps index i to result slot i regardless of which worker ran it),
// completion (wait_idle really waits, including tasks submitted by
// tasks), exception propagation, and a many-task stress run that gives
// TSan real interleavings to chew on (the CI thread-sanitizer job runs
// this suite).
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/thread_pool.h"

namespace sgdrc {
namespace {

TEST(ThreadPool, ZeroRequestedThreadsStillRunsOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::atomic<int> ran{0};
  pool.submit([&] { ran = 1; });
  pool.wait_idle();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPool, ParallelForMapsIndexToResultSlot) {
  // The ordering guarantee: body(i) writes slot i, so results line up
  // with inputs no matter which worker claimed which index.
  ThreadPool pool(4);
  constexpr size_t kN = 257;  // not a multiple of the worker count
  std::vector<size_t> results(kN, 0);
  pool.parallel_for(kN, [&](size_t i) { results[i] = i * i; });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(results[i], i * i) << "slot " << i << " holds a foreign result";
  }
}

TEST(ThreadPool, WaitIdleCoversTasksSubmittedByTasks) {
  ThreadPool pool(3);
  std::atomic<int> completed{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&] {
      // A task fans out more work before finishing — the outstanding
      // count must cover the children, or wait_idle returns early.
      pool.submit([&] { ++completed; });
      ++completed;
    });
  }
  pool.wait_idle();
  EXPECT_EQ(completed.load(), 16);
}

TEST(ThreadPool, ParallelForRethrowsTheFirstException) {
  ThreadPool pool(4);
  std::atomic<int> survivors{0};
  EXPECT_THROW(
      pool.parallel_for(64,
                        [&](size_t i) {
                          if (i == 13) throw std::runtime_error("boom");
                          ++survivors;
                        }),
      std::runtime_error);
  // Every non-throwing body still ran: one failure doesn't cancel the
  // rest of the sweep.
  EXPECT_EQ(survivors.load(), 63);
}

TEST(ThreadPool, ExceptionLeavesThePoolUsable) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(4, [](size_t) { throw std::logic_error("x"); }),
      std::logic_error);
  std::vector<int> out(8, 0);
  pool.parallel_for(out.size(), [&](size_t i) { out[i] = 1; });
  EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), 8);
}

TEST(ThreadPool, StressManyTinyTasks) {
  // Thousands of tiny tasks over a wide pool: per-index slot writes
  // (each slot touched exactly once — any cross-task write is a race
  // TSan will flag) plus a shared accumulator exercising contended
  // atomics. This is the workload shape of the fleet engine's windowed
  // barrier, thousands of windows per run.
  ThreadPool pool(8);
  constexpr size_t kTasks = 4000;
  std::vector<uint32_t> slots(kTasks, 0);
  std::atomic<uint64_t> sum{0};
  for (size_t round = 0; round < 4; ++round) {
    pool.parallel_for(kTasks, [&](size_t i) {
      slots[i] += 1;
      sum.fetch_add(i, std::memory_order_relaxed);
    });
  }
  pool.wait_idle();
  for (size_t i = 0; i < kTasks; ++i) ASSERT_EQ(slots[i], 4u);
  EXPECT_EQ(sum.load(),
            4ull * (kTasks * (kTasks - 1) / 2));
}

}  // namespace
}  // namespace sgdrc
