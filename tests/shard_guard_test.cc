// The shard-ownership race detector (common/shard_guard.h): dormant by
// default, and — once armed — a deliberate cross-thread mutation inside
// a claimed window must abort the process, while the legitimate
// single-owner flows (serial driving, worker-per-window) stay
// violation-free. Arming is process-sticky, so every armed scenario
// runs inside a death-test/EXPECT_EXIT child process and the parent
// suite keeps exercising the dormant fast path. The full
// fleet_parallel_test matrix additionally runs with the guard armed via
// the `fleet_parallel_guarded` ctest (SGDRC_DEBUG_OWNERSHIP=1).
#include <gtest/gtest.h>

#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>

#include "common/shard_guard.h"
#include "core/profiler.h"
#include "core/serving.h"
#include "models/zoo.h"

namespace sgdrc::core {
namespace {

class LaunchAllPolicy : public Policy {
 public:
  std::string name() const override { return "launch-all"; }
  void schedule(ServingSim& sim) override {
    for (const auto& job : sim.waiting_jobs(QosClass::kLatencySensitive)) {
      sim.launch(job.id, {});
    }
    for (const auto& job : sim.waiting_jobs(QosClass::kBestEffort)) {
      sim.launch(job.id, {});
    }
  }
};

/// A minimal fleet-mode sim (external queue, one LS tenant) — the
/// configuration the shard guard exists to police.
struct GuardRig {
  gpusim::GpuSpec spec = gpusim::test_gpu();
  EventQueue queue;
  LaunchAllPolicy policy;
  std::unique_ptr<ServingSim> sim;

  GuardRig() {
    OfflineProfiler prof(spec);
    models::ModelDesc ls = models::make_model('A');
    prof.profile(ls);
    const TimeNs iso = prof.isolated_latency(ls);
    sim = ServingSimBuilder()
              .gpu(spec)
              .duration(50 * kNsPerMs)
              .add_latency_sensitive(ls, iso)
              .build(queue, policy);
  }
};

TEST(ShardGuard, DormantByDefault) {
  // Without SGDRC_DEBUG_OWNERSHIP in the build or environment the guard
  // must cost nothing and tolerate everything — including patterns that
  // would abort when armed. (The guarded ctest re-runs the fleet matrix
  // with checking on; this pins the dormant default.)
  if (ShardGuard::armed()) GTEST_SKIP() << "guard armed via environment";
  ShardGuard g;
  g.claim("window");
  std::thread other([&] { g.assert_mutable("cross-thread touch"); });
  other.join();
  g.release();
}

TEST(ShardGuard, ArmedSingleOwnerFlowsPass) {
  // Claim/release, same-thread re-entry (nested window drains), and the
  // unclaimed-main-thread mutation path are all legal when armed.
  EXPECT_EXIT(
      {
        ShardGuard::arm_process();
        ShardGuard g;
        g.assert_mutable("between windows");  // unclaimed: main thread
        {
          ShardGuard::WindowScope outer(g, "outer");
          g.assert_mutable("inside own window");
          ShardGuard::WindowScope inner(g, "nested");  // same-thread
        }
        g.assert_mutable("after release");
        std::exit(0);
      },
      ::testing::ExitedWithCode(0), "");
}

TEST(ShardGuard, ArmedServingFlowIsViolationFree) {
  // The whole legitimate shard lifecycle — begin, windowed driving,
  // injections between windows, finish — from one thread, guard armed.
  EXPECT_EXIT(
      {
        ShardGuard::arm_process();
        GuardRig rig;
        rig.sim->begin();
        rig.sim->run_shard_until(1 * kNsPerMs);
        rig.sim->inject(0, rig.sim->now());
        (void)rig.sim->next_shard_event();
        rig.sim->run_shard_until(40 * kNsPerMs);
        const auto m = rig.sim->finish();
        if (m.tenants.at(0).served != 1) std::abort();
        std::exit(0);
      },
      ::testing::ExitedWithCode(0), "");
}

TEST(ShardGuardDeath, CrossThreadMutationAborts) {
  // The bug class this detector exists for: a window is open (a worker
  // thread owns the shard) and some other thread mutates the sim — here
  // an inject(), i.e. a cross-shard dispatch that skipped the mailbox.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        ShardGuard::arm_process();
        GuardRig rig;
        rig.sim->begin();
        rig.sim->shard_guard().claim("simulated worker window");
        std::thread trespasser([&] { rig.sim->inject(0, rig.sim->now()); });
        trespasser.join();
      },
      "shard-ownership violation in inject");
}

TEST(ShardGuardDeath, SecondThreadEnteringOwnedWindowAborts) {
  // Two workers inside the same shard's window — the claim itself must
  // trip, before any state is touched.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        ShardGuard::arm_process();
        GuardRig rig;
        rig.sim->begin();
        rig.sim->shard_guard().claim("simulated worker window");
        std::thread second([&] { rig.sim->run_shard_until(1 * kNsPerMs); });
        second.join();
      },
      "shard-ownership violation in run_shard_until");
}

TEST(ShardGuardDeath, ControlActionDuringWindowAborts) {
  // Control-plane mutations (SLO changes, pauses) must obey the same
  // window discipline as data-path injections.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        ShardGuard::arm_process();
        GuardRig rig;
        rig.sim->begin();
        rig.sim->shard_guard().claim("simulated worker window");
        std::thread trespasser(
            [&] { rig.sim->set_slo(0, 5 * kNsPerMs); });
        trespasser.join();
      },
      "shard-ownership violation in set_slo");
}

}  // namespace
}  // namespace sgdrc::core
