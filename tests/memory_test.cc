// Tests for GPU memory virtualization: PageTable/UvmMemoryPool frame
// accounting (the reservation substrate), the MemoryManager residency
// state machine (cold starts, LRU-vs-FIFO eviction, quota protection,
// trespass counting, oversubscribed paging), the serving-layer wiring
// (cold-start gating, the vram_bytes == 0 unmodeled regression), and
// fleet-level determinism of memory-enabled scenario runs.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "core/profiler.h"
#include "core/sgdrc_policy.h"
#include "driver/uvm_pool.h"
#include "fleet/fleet.h"
#include "memory/memory.h"
#include "models/zoo.h"
#include "workload/scenario.h"

namespace sgdrc::memory {
namespace {

using gpusim::GpuDevice;
using gpusim::kPageBytes;
using gpusim::PageTable;

constexpr uint64_t kMiB = 1ull << 20;

MemoryOptions enabled_options() {
  MemoryOptions o;
  o.enabled = true;
  return o;
}

/// A busy probe over a mutable set-like vector, for tests that flip a
/// tenant between idle and mid-request.
MemoryManager::BusyFn busy_none() {
  return [](workload::TenantId) { return false; };
}

// ----------------------------------------------------- PageTable ----

TEST(PageTableMemory, FrameAccountingConservesAcrossAllocFreeCycles) {
  PageTable pt(64 * kPageBytes, /*seed=*/7);
  const uint64_t total = pt.total_frames();
  ASSERT_EQ(total, 64u);
  EXPECT_EQ(pt.free_frames(), total);
  for (int cycle = 0; cycle < 5; ++cycle) {
    const auto a = pt.alloc(10 * kPageBytes);
    const auto b = pt.alloc(3 * kPageBytes + 1);  // rounds up to 4 frames
    EXPECT_EQ(pt.free_frames(), total - 14);
    EXPECT_EQ(pt.mapped_pages(), 14u);
    pt.free(a, 10 * kPageBytes);
    pt.free(b, 3 * kPageBytes + 1);
    EXPECT_EQ(pt.free_frames(), total);
    EXPECT_EQ(pt.mapped_pages(), 0u);
  }
}

TEST(PageTableMemory, AllocFailsWholeWhenFramesRunOut) {
  PageTable pt(8 * kPageBytes, /*seed=*/11);
  const auto a = pt.alloc(6 * kPageBytes);
  // Needs 4 frames, only 2 left: the REQUIRE fires before any frame is
  // consumed, so the allocator never partially drains the free list.
  EXPECT_THROW(pt.alloc(4 * kPageBytes), ConfigError);
  EXPECT_EQ(pt.free_frames(), 2u);
  pt.free(a, 6 * kPageBytes);
  EXPECT_NO_THROW(pt.alloc(8 * kPageBytes));
}

TEST(PageTableMemory, TakeFreeFrameExhaustsThenThrows) {
  PageTable pt(4 * kPageBytes, /*seed=*/13);
  std::vector<uint64_t> taken;
  for (int i = 0; i < 4; ++i) taken.push_back(pt.take_free_frame());
  EXPECT_EQ(pt.free_frames(), 0u);
  EXPECT_THROW(pt.take_free_frame(), ConfigError);
  // Releasing restores the frame for both reservation and allocation.
  pt.release_frame(taken.back());
  EXPECT_EQ(pt.free_frames(), 1u);
  EXPECT_NO_THROW(pt.alloc(kPageBytes));
}

// ------------------------------------------------- UvmMemoryPool ----

driver::UvmPoolOptions oracle_pool_options(GpuDevice& dev, uint64_t bytes,
                                           unsigned gran_kib) {
  driver::UvmPoolOptions opt;
  opt.pool_bytes = bytes;
  opt.granularity_kib = gran_kib;
  opt.channel_of = [&dev](gpusim::PhysAddr pa) {
    return static_cast<int>(dev.oracle().channel_of(pa));
  };
  return opt;
}

TEST(UvmPoolMemory, ChunkAccountingConservesAcrossAllocReleaseCycles) {
  GpuDevice dev(gpusim::test_gpu(), /*seed=*/17);
  driver::UvmMemoryPool pool(dev, oracle_pool_options(dev, 8 * kMiB, 2));
  const auto any = gpusim::all_channels(gpusim::test_gpu().num_channels);
  const uint64_t free0 = pool.free_chunks(any);
  ASSERT_GT(free0, 0u);
  for (int cycle = 0; cycle < 4; ++cycle) {
    driver::ColoredBuffer a = pool.allocate(1 * kMiB, any);
    driver::ColoredBuffer b = pool.allocate(2 * kMiB, any);
    EXPECT_EQ(pool.free_chunks(any),
              free0 - (3 * kMiB) / pool.sector_bytes());
    pool.release(a);
    pool.release(b);
    EXPECT_EQ(pool.free_chunks(any), free0);
  }
}

TEST(UvmPoolMemory, ReturnsItsFramesToTheDeviceOnDestruction) {
  GpuDevice dev(gpusim::test_gpu(), /*seed=*/19);
  const uint64_t free0 = dev.page_table().free_frames();
  {
    driver::UvmMemoryPool pool(dev, oracle_pool_options(dev, 4 * kMiB, 2));
    EXPECT_EQ(dev.page_table().free_frames(),
              free0 - (4 * kMiB) / kPageBytes);
  }
  EXPECT_EQ(dev.page_table().free_frames(), free0);
}

TEST(UvmPoolMemory, ExhaustionThrowsAtomicallyAndReleaseRestores) {
  GpuDevice dev(gpusim::test_gpu(), /*seed=*/23);
  driver::UvmMemoryPool pool(dev, oracle_pool_options(dev, 2 * kMiB, 2));
  const auto any = gpusim::all_channels(gpusim::test_gpu().num_channels);
  const uint64_t free0 = pool.free_chunks(any);
  // A buffer's chunks must all share one sector id, and one sector id
  // only covers half the pool's chunks — a whole-pool request can never
  // be satisfied, and the failed allocation must not leak any chunks.
  EXPECT_THROW(pool.allocate(2 * kMiB, any), ConfigError);
  EXPECT_EQ(pool.free_chunks(any), free0);
  driver::ColoredBuffer a = pool.allocate(256 * 1024, any);
  EXPECT_EQ(pool.free_chunks(any), free0 - (256 * 1024) / pool.sector_bytes());
  pool.release(a);
  EXPECT_EQ(pool.free_chunks(any), free0);
}

// ------------------------------------------------- MemoryManager ----

TEST(MemoryManager, ColdStartLoadThenWarm) {
  MemoryManager mm(64 * kMiB, enabled_options(), /*seed=*/29);
  mm.add_replica(0, 16 * kMiB, 0, 0, busy_none());
  EXPECT_EQ(mm.residency(0), Residency::kCold);

  const auto t1 = mm.request(0, 100, busy_none());
  EXPECT_EQ(t1.kind, MemoryManager::Touch::Kind::kLoadStarted);
  EXPECT_EQ(t1.delay, mm.load_time(16 * kMiB));
  EXPECT_EQ(mm.residency(0), Residency::kLoading);
  // A second request mid-DMA keeps waiting on the same load.
  EXPECT_EQ(mm.request(0, 200, busy_none()).kind,
            MemoryManager::Touch::Kind::kLoading);

  mm.finish_load(0, 100 + t1.delay);
  EXPECT_EQ(mm.residency(0), Residency::kWarm);
  EXPECT_EQ(mm.request(0, 500, busy_none()).kind,
            MemoryManager::Touch::Kind::kReady);
  EXPECT_EQ(mm.loads(), 1u);
  EXPECT_EQ(mm.evictions(), 0u);
}

TEST(MemoryManager, UnregisteredTenantIsUnmodeled) {
  MemoryManager mm(64 * kMiB, enabled_options(), /*seed=*/31);
  EXPECT_EQ(mm.residency(42), Residency::kUnmodeled);
  mm.note_use(42, 100);  // must be a harmless no-op
}

TEST(MemoryManager, LruEvictsLeastRecentlyUsedIdleReplica) {
  // Capacity fits two 16 MiB replicas (44 MiB would hold 2, not 3).
  MemoryManager mm(36 * kMiB, enabled_options(), /*seed=*/37);
  mm.add_replica(0, 16 * kMiB, 0, 0, busy_none());
  mm.add_replica(1, 16 * kMiB, 0, 0, busy_none());
  for (workload::TenantId t : {0u, 1u}) {
    const auto touch = mm.request(t, 10 + t, busy_none());
    ASSERT_EQ(touch.kind, MemoryManager::Touch::Kind::kLoadStarted);
    mm.finish_load(t, 100 + t);
  }
  mm.note_use(0, 1000);  // tenant 1 is now the least recent
  mm.add_replica(2, 16 * kMiB, 0, 0, busy_none());
  const auto t2 = mm.request(2, 2000, busy_none());
  EXPECT_EQ(t2.kind, MemoryManager::Touch::Kind::kLoadStarted);
  EXPECT_EQ(mm.residency(1), Residency::kCold);  // evicted
  EXPECT_EQ(mm.residency(0), Residency::kWarm);  // survived (recent)
  EXPECT_GE(mm.evictions(), 1u);
}

TEST(MemoryManager, BusyAndQuotaProtectedReplicasAreNeverEvicted) {
  MemoryManager mm(36 * kMiB, enabled_options(), /*seed=*/41);
  // Tenant 0: within its declared quota. Tenant 1: busy.
  mm.add_replica(0, 16 * kMiB, 0, /*quota=*/16 * kMiB, busy_none());
  mm.add_replica(1, 16 * kMiB, 0, 0, busy_none());
  for (workload::TenantId t : {0u, 1u}) {
    mm.request(t, 10 + t, busy_none());
    mm.finish_load(t, 100 + t);
  }
  const auto busy1 = [](workload::TenantId t) { return t == 1; };
  mm.add_replica(2, 16 * kMiB, 0, 0, busy1);
  // Strict mode with no legal victim: the request waits — and crucially
  // nothing was evicted speculatively.
  const auto t2 = mm.request(2, 2000, busy1);
  EXPECT_EQ(t2.kind, MemoryManager::Touch::Kind::kWaiting);
  EXPECT_EQ(mm.evictions(), 0u);
  EXPECT_EQ(mm.residency(0), Residency::kWarm);
  EXPECT_EQ(mm.residency(1), Residency::kWarm);
  // Tenant 1 goes idle: the retry can now evict it and start the load.
  const auto t3 = mm.request(2, 3000, busy_none());
  EXPECT_EQ(t3.kind, MemoryManager::Touch::Kind::kLoadStarted);
  EXPECT_EQ(mm.residency(1), Residency::kCold);
  EXPECT_EQ(mm.residency(0), Residency::kWarm);  // quota still shields it
}

TEST(MemoryManager, FifoEvictsFirstLoadedEvenWhenBusyOrProtected) {
  MemoryOptions opt = enabled_options();
  opt.evict = EvictPolicy::kFifo;
  MemoryManager mm(36 * kMiB, opt, /*seed=*/43);
  mm.add_replica(0, 16 * kMiB, /*priority=*/5, /*quota=*/16 * kMiB,
                 busy_none());
  mm.add_replica(1, 16 * kMiB, 0, 0, busy_none());
  for (workload::TenantId t : {0u, 1u}) {
    mm.request(t, 10 + t, busy_none());
    mm.finish_load(t, 100 + t);
  }
  const auto busy0 = [](workload::TenantId t) { return t == 0; };
  mm.add_replica(2, 16 * kMiB, 0, 0, busy0);
  const auto t2 = mm.request(2, 2000, busy0);
  // FIFO is blind: tenant 0 loaded first, so it goes — busy, priority,
  // and quota notwithstanding. (This is the naive baseline's footgun.)
  EXPECT_EQ(t2.kind, MemoryManager::Touch::Kind::kLoadStarted);
  EXPECT_EQ(mm.residency(0), Residency::kCold);
  EXPECT_EQ(mm.residency(1), Residency::kWarm);
}

TEST(MemoryManager, LoadPastOwnQuotaCountsTrespass) {
  MemoryManager mm(64 * kMiB, enabled_options(), /*seed=*/47);
  workload::TenantId trespasser = 99;
  mm.on_trespass([&](workload::TenantId t) { trespasser = t; });
  mm.add_replica(0, 16 * kMiB, 0, /*quota=*/8 * kMiB, busy_none());
  mm.request(0, 10, busy_none());
  EXPECT_EQ(mm.trespasses(), 1u);
  EXPECT_EQ(trespasser, 0u);
  // Within-quota loads never trespass.
  mm.add_replica(1, 4 * kMiB, 0, /*quota=*/8 * kMiB, busy_none());
  mm.request(1, 20, busy_none());
  EXPECT_EQ(mm.trespasses(), 1u);
}

TEST(MemoryManager, StrictModeRejectsReplicaThatCanNeverFit) {
  MemoryManager mm(16 * kMiB, enabled_options(), /*seed=*/53);
  EXPECT_THROW(mm.add_replica(0, 64 * kMiB, 0, 0, busy_none()),
               ConfigError);
}

TEST(MemoryManager, OversubscribeDegradesToPagingAndPromotesLater) {
  MemoryOptions opt = enabled_options();
  opt.oversubscribe = true;
  MemoryManager mm(24 * kMiB, opt, /*seed=*/59);
  // The staging window is carved out of the same frame pool.
  EXPECT_LT(mm.page_table().free_frames(), mm.page_table().total_frames());

  mm.add_replica(0, 16 * kMiB, 0, 0, busy_none());
  mm.request(0, 10, busy_none());
  mm.finish_load(0, 100);
  const auto busy0 = [](workload::TenantId t) { return t == 0; };
  // No capacity and the only victim is busy: registration degrades the
  // replica to demand paging instead of waiting (the oversubscribed
  // contract), and requests keep paying the restream while stuck there.
  mm.add_replica(1, 16 * kMiB, 0, 0, busy0);
  EXPECT_EQ(mm.residency(1), Residency::kPaged);
  const auto t1 = mm.request(1, 200, busy0);
  EXPECT_EQ(t1.kind, MemoryManager::Touch::Kind::kPagedStill);
  // Paging restreams the weights per request, far slower than the
  // one-off DMA of the same bytes.
  EXPECT_GT(mm.page_penalty(1), 0);
  EXPECT_GT(mm.page_penalty(1), mm.load_time(16 * kMiB));
  // Pressure eases (tenant 0 idles): the next request promotes the
  // paged replica to a real resident load.
  const auto t2 = mm.request(1, 300, busy_none());
  EXPECT_EQ(t2.kind, MemoryManager::Touch::Kind::kLoadStarted);
  EXPECT_EQ(t2.delay, mm.load_time(16 * kMiB));
  mm.finish_load(1, 400);
  EXPECT_EQ(mm.residency(1), Residency::kWarm);
  EXPECT_EQ(mm.residency(0), Residency::kCold);  // evicted for the promote

  // And the flip side: an *evicted* (cold, unallocated) replica whose
  // request finds no legal victim degrades at request time, charging the
  // restream to the requests already in the system.
  const auto busy1 = [](workload::TenantId t) { return t == 1; };
  const auto t3 = mm.request(0, 500, busy1);
  EXPECT_EQ(t3.kind, MemoryManager::Touch::Kind::kPagedNow);
  EXPECT_EQ(t3.delay, mm.page_penalty(0));
  EXPECT_EQ(mm.residency(0), Residency::kPaged);
}

TEST(MemoryManager, ResidentBytesConserveAcrossRegisterRetireCycles) {
  MemoryManager mm(64 * kMiB, enabled_options(), /*seed=*/61);
  const uint64_t free0 = mm.page_table().free_frames();
  for (workload::TenantId t = 0; t < 3; ++t) {
    mm.add_replica(t, 8 * kMiB, 0, 0, busy_none());
    mm.request(t, 10 + t, busy_none());
    mm.finish_load(t, 100 + t);
  }
  EXPECT_EQ(mm.resident_bytes(), 24 * kMiB);
  for (workload::TenantId t = 0; t < 3; ++t) {
    mm.retire_replica(t, busy_none());
  }
  EXPECT_EQ(mm.resident_bytes(), 0u);
  EXPECT_EQ(mm.page_table().free_frames(), free0);
}

// -------------------------------------------- serving integration ----

struct ServingZoo {
  gpusim::GpuSpec spec = gpusim::test_gpu();
  models::ModelDesc ls_a = models::make_model('A');
  models::ModelDesc ls_b = models::make_model('B');
  TimeNs iso_a = 0, iso_b = 0;
  ServingZoo() {
    core::OfflineProfiler prof(spec);
    for (auto* m : {&ls_a, &ls_b}) prof.profile(*m);
    iso_a = prof.isolated_latency(ls_a);
    iso_b = prof.isolated_latency(ls_b);
  }
};

const ServingZoo& szoo() {
  static const ServingZoo z;
  return z;
}

std::vector<workload::Request> steady_trace(unsigned n, TimeNs spacing) {
  std::vector<workload::Request> t;
  for (unsigned i = 0; i < n; ++i) t.push_back({i * spacing, 0});
  return t;
}

TEST(ServingMemory, FirstRequestPaysTheColdStartLoad) {
  const auto& z = szoo();
  MemoryOptions mem = enabled_options();
  core::SgdrcPolicy policy(z.spec);
  auto sim = core::ServingSimBuilder()
                 .gpu(z.spec)
                 .duration(100 * kNsPerMs)
                 .slo_multiplier(50.0)
                 .memory(mem)
                 .add_latency_sensitive(z.ls_a, z.iso_a)
                 .build(policy);
  ASSERT_TRUE(sim->memory_modeled());
  const auto m = sim->run(steady_trace(20, 2 * kNsPerMs));
  const auto& t0 = m.tenants[0];
  EXPECT_EQ(t0.weight_loads, 1u);  // one cold start, then warm all run
  ASSERT_GE(t0.cold_latency.count(), 1u);
  EXPECT_EQ(t0.weight_evictions, 0u);
  EXPECT_EQ(t0.paged_requests, 0u);
  // The cold request really waited for the DMA.
  const double load_ns = static_cast<double>(
      MemoryManager(z.spec.vram_bytes, mem, 0).load_time(
          z.ls_a.weight_bytes()));
  EXPECT_GE(t0.cold_latency.max(), load_ns);
}

TEST(ServingMemory, ZeroVramMeansUnmodeledNotInstantOom) {
  // The latent footgun: memory modeling enabled on a device whose spec
  // leaves vram_bytes == 0 (common for hand-built GpuSpecs) must mean
  // "capacity unmodeled", not a zero-byte VRAM that rejects everyone.
  const auto& z = szoo();
  gpusim::GpuSpec no_vram = z.spec;
  no_vram.vram_bytes = 0;
  core::SgdrcPolicy policy(no_vram);
  auto sim = core::ServingSimBuilder()
                 .gpu(no_vram)
                 .duration(50 * kNsPerMs)
                 .slo_multiplier(50.0)
                 .memory(enabled_options())
                 .add_latency_sensitive(z.ls_a, z.iso_a)
                 .build(policy);
  EXPECT_FALSE(sim->memory_modeled());
  EXPECT_EQ(sim->residency_of(0), Residency::kUnmodeled);
  const auto m = sim->run(steady_trace(10, 2 * kNsPerMs));
  EXPECT_EQ(m.tenants[0].weight_loads, 0u);
  EXPECT_EQ(m.tenants[0].cold_latency.count(), 0u);
  EXPECT_GT(m.tenants[0].served, 0u);
}

TEST(ServingMemory, DisabledMemoryMatchesUnmodeledRunExactly) {
  // The memory subsystem must be invisible when off: identical metrics
  // with the flag off and with the flag on against an unmodeled device.
  const auto& z = szoo();
  const auto run_with = [&](const MemoryOptions& mem, uint64_t vram) {
    gpusim::GpuSpec spec = z.spec;
    spec.vram_bytes = vram;
    core::SgdrcPolicy policy(spec);
    auto sim = core::ServingSimBuilder()
                   .gpu(spec)
                   .duration(50 * kNsPerMs)
                   .slo_multiplier(50.0)
                   .memory(mem)
                   .add_latency_sensitive(z.ls_a, z.iso_a)
                   .add_latency_sensitive(z.ls_b, z.iso_b)
                   .build(policy);
    std::vector<workload::Request> trace;
    for (unsigned i = 0; i < 30; ++i) {
      trace.push_back({i * kNsPerMs, i % 2});
    }
    return sim->run(trace);
  };
  const auto off = run_with(MemoryOptions{}, z.spec.vram_bytes);
  const auto unmodeled = run_with(enabled_options(), 0);
  ASSERT_EQ(off.tenants.size(), unmodeled.tenants.size());
  for (size_t t = 0; t < off.tenants.size(); ++t) {
    EXPECT_EQ(off.tenants[t].served,
              unmodeled.tenants[t].served);
    ASSERT_EQ(off.tenants[t].latency.count(),
              unmodeled.tenants[t].latency.count());
    if (!off.tenants[t].latency.empty()) {
      EXPECT_EQ(off.tenants[t].latency.p99(),
                unmodeled.tenants[t].latency.p99());
    }
  }
}

TEST(ServingMemory, QuotaBudgetValidatorRejectsOvercommit) {
  const auto& z = szoo();
  core::SgdrcPolicy policy(z.spec);
  core::ServingSimBuilder b;
  b.gpu(z.spec)
      .duration(10 * kNsPerMs)
      .slo_multiplier(50.0)
      .memory(enabled_options());
  core::TenantSpec big = core::latency_sensitive_tenant(z.ls_a, z.iso_a);
  big.vgpu.memory_bytes = z.spec.vram_bytes;  // claims the whole device
  core::TenantSpec more = core::latency_sensitive_tenant(z.ls_b, z.iso_b);
  more.vgpu.memory_bytes = 1 * kMiB;  // pushes the sum over
  b.add_tenant(big).add_tenant(more);
  EXPECT_THROW(b.build(policy), ConfigError);
}

// --------------------------------------------- fleet determinism ----

TEST(FleetMemory, ModelZooScenarioIsBitIdenticalAcrossReruns) {
  const auto& z = szoo();
  workload::ScenarioCatalogOptions copt;
  copt.duration = 120 * kNsPerMs;
  copt.devices = 2;
  copt.initial_tenants = 2;
  copt.make_ls_arrival = [&](unsigned) {
    return workload::ScenarioTenant{
        core::latency_sensitive_tenant(z.ls_b, z.iso_b), 150.0, 2};
  };
  copt.model_zoo_memory.enabled = true;
  copt.model_zoo_memory.vram_bytes_override = 24 * kMiB;
  copt.model_zoo_memory.oversubscribe = true;
  const auto catalog = workload::scenario_catalog(copt);
  const workload::Scenario* sc = nullptr;
  for (const auto& s : catalog) {
    if (s.name() == "model-zoo") sc = &s;
  }
  ASSERT_NE(sc, nullptr);
  ASSERT_TRUE(sc->memory_options().enabled);

  const auto run_once = [&] {
    workload::ScenarioEngineConfig ecfg;
    ecfg.spec = z.spec;
    ecfg.slo_multiplier = 8.0;
    ecfg.seed = 0x5ce0;
    std::vector<workload::ScenarioTenant> initial{
        {core::latency_sensitive_tenant(z.ls_a, z.iso_a), 150.0, 2},
        {core::latency_sensitive_tenant(z.ls_b, z.iso_b), 150.0, 2}};
    fleet::SpreadPlacement placement;
    fleet::WarmWeightRouter router;
    return workload::run_scenario(
        *sc, initial, ecfg, placement, router,
        [](const gpusim::GpuSpec& spec)
            -> std::unique_ptr<control::Controller> {
          return std::make_unique<core::SgdrcPolicy>(spec);
        });
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_GT(a.metrics.weight_loads(), 0u);  // the zoo really churns
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.metrics.weight_loads(), b.metrics.weight_loads());
  EXPECT_EQ(a.metrics.weight_evictions(), b.metrics.weight_evictions());
  EXPECT_EQ(a.metrics.paged_requests(), b.metrics.paged_requests());
  EXPECT_EQ(a.metrics.cold_requests(), b.metrics.cold_requests());
  EXPECT_EQ(a.metrics.fleet_p99_ms(), b.metrics.fleet_p99_ms());
  if (a.metrics.cold_requests() > 0) {
    EXPECT_EQ(a.metrics.cold_start_p99_ms(), b.metrics.cold_start_p99_ms());
  }
}

TEST(FleetMemory, WarmRouterDegradesToLeastOutstandingWithoutMemory) {
  // On a memory-less fleet every replica reads kUnmodeled, so the warm
  // router must make exactly the least-outstanding choices: same routed
  // counts, same metrics.
  const auto& z = szoo();
  const auto run_with = [&](fleet::Router& router) {
    fleet::FleetConfig fcfg;
    fcfg.spec = z.spec;
    fcfg.devices = 2;
    fcfg.duration = 60 * kNsPerMs;
    fcfg.slo_multiplier = 8.0;
    fcfg.seed = 0xfee1;
    std::vector<fleet::FleetTenantSpec> tenants{
        fleet::replicated(core::latency_sensitive_tenant(z.ls_a, z.iso_a),
                          2),
        fleet::replicated(core::latency_sensitive_tenant(z.ls_b, z.iso_b),
                          2)};
    fleet::SpreadPlacement placement;
    fleet::FleetSim sim(fcfg, std::move(tenants), placement, router,
                        [](const gpusim::GpuSpec& spec)
                            -> std::unique_ptr<control::Controller> {
                          return std::make_unique<core::SgdrcPolicy>(spec);
                        });
    std::vector<workload::Request> trace;
    for (unsigned i = 0; i < 200; ++i) {
      trace.push_back({i * (kNsPerMs / 4), i % 2});
    }
    return sim.run(trace);
  };
  fleet::WarmWeightRouter warm;
  fleet::LeastOutstandingRouter lo;
  const auto a = run_with(warm);
  const auto b = run_with(lo);
  ASSERT_EQ(a.routed.size(), b.routed.size());
  for (size_t d = 0; d < a.routed.size(); ++d) {
    EXPECT_EQ(a.routed[d], b.routed[d]) << "device " << d;
  }
  EXPECT_EQ(a.fleet_p99_ms(), b.fleet_p99_ms());
  EXPECT_EQ(a.weight_loads(), 0u);
}

}  // namespace
}  // namespace sgdrc::memory
