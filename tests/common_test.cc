// Unit + property tests for the common utility layer.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <vector>

#include "common/bitops.h"
#include "common/event_queue.h"
#include "common/rng.h"
#include "common/sim_time.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/thread_pool.h"

namespace sgdrc {
namespace {

// ---------------------------------------------------------------- Rng ----

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformU64RespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.uniform_u64(13), 13u);
}

TEST(Rng, UniformU64IsRoughlyUniform) {
  Rng rng(11);
  CategoryHistogram h(10);
  for (int i = 0; i < 100000; ++i) h.add(rng.uniform_u64(10));
  EXPECT_LT(h.max_uniform_deviation(), 0.05);
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(5);
  Accumulator acc;
  for (int i = 0; i < 50000; ++i) acc.add(rng.exponential(2.0));
  EXPECT_NEAR(acc.mean(), 0.5, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng(9);
  Accumulator acc;
  for (int i = 0; i < 50000; ++i) acc.add(rng.normal(3.0, 2.0));
  EXPECT_NEAR(acc.mean(), 3.0, 0.1);
  EXPECT_NEAR(acc.stddev(), 2.0, 0.1);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(42);
  Rng child = a.fork();
  EXPECT_NE(a.next_u64(), child.next_u64());
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(13);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

// -------------------------------------------------------------- Stats ----

TEST(Accumulator, Moments) {
  Accumulator acc;
  for (double x : {1.0, 2.0, 3.0, 4.0}) acc.add(x);
  EXPECT_DOUBLE_EQ(acc.mean(), 2.5);
  EXPECT_DOUBLE_EQ(acc.min(), 1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 4.0);
  EXPECT_NEAR(acc.variance(), 5.0 / 3.0, 1e-12);
}

TEST(Samples, NearestRankPercentiles) {
  Samples s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.p50(), 50.0);
  EXPECT_DOUBLE_EQ(s.p99(), 99.0);
  EXPECT_DOUBLE_EQ(s.percentile(100.0), 100.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
}

TEST(Samples, PercentileSingleElement) {
  Samples s;
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.p50(), 7.0);
  EXPECT_DOUBLE_EQ(s.p99(), 7.0);
}

TEST(Samples, FractionAtMost) {
  Samples s;
  for (int i = 1; i <= 10; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.fraction_at_most(5.0).value(), 0.5);
  EXPECT_DOUBLE_EQ(s.fraction_at_most(0.5).value(), 0.0);
  EXPECT_DOUBLE_EQ(s.fraction_at_most(10.0).value(), 1.0);
}

// Regression: an empty sample set used to report fraction 1.0 — a tenant
// that served zero requests claimed 100% SLO attainment and vacuously
// passed the CI slo_ok gate. No data must be explicit.
TEST(Samples, FractionAtMostOfEmptyIsNoData) {
  Samples s;
  EXPECT_FALSE(s.fraction_at_most(5.0).has_value());
  s.add(1.0);
  EXPECT_TRUE(s.fraction_at_most(5.0).has_value());
}

TEST(Samples, CdfIsMonotone) {
  Samples s;
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) s.add(rng.uniform());
  auto cdf = s.cdf(50);
  for (size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_LE(cdf[i - 1].first, cdf[i].first);
    EXPECT_LT(cdf[i - 1].second, cdf[i].second);
  }
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
}

TEST(Samples, PercentileOfEmptyThrows) {
  Samples s;
  EXPECT_THROW(s.p99(), ConfigError);
}

TEST(CategoryHistogram, ChiSquaredDetectsSkew) {
  CategoryHistogram uniform(4), skewed(4);
  Rng rng(23);
  for (int i = 0; i < 40000; ++i) {
    uniform.add(rng.uniform_u64(4));
    skewed.add(rng.bernoulli(0.7) ? 0 : rng.uniform_u64(4));
  }
  EXPECT_LT(uniform.chi_squared_uniform(), 20.0);
  EXPECT_GT(skewed.chi_squared_uniform(), 1000.0);
}

// ------------------------------------------------------------- Bitops ----

TEST(Bitops, MaskedParity) {
  EXPECT_EQ(masked_parity(0b1011, 0b1111), 1u);
  EXPECT_EQ(masked_parity(0b1011, 0b0011), 0u);
  EXPECT_EQ(masked_parity(0, ~0ull), 0u);
}

TEST(Bitops, ExtractBits) {
  EXPECT_EQ(extract_bits(0xFF00, 8, 15), 0xFFull);
  EXPECT_EQ(extract_bits(0b101100, 2, 3), 0b11ull);
  EXPECT_EQ(extract_bits(~0ull, 0, 63), ~0ull);
}

TEST(Bitops, CeilLog2AndPow2) {
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(1024), 10u);
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(12));
  EXPECT_FALSE(is_pow2(0));
}

TEST(Bitops, CeilDiv) {
  EXPECT_EQ(ceil_div(10, 3), 4u);
  EXPECT_EQ(ceil_div(9, 3), 3u);
}

// ----------------------------------------------------------- SimTime ----

TEST(SimTime, Conversions) {
  EXPECT_EQ(from_ms(1.5), 1'500'000ull);
  EXPECT_DOUBLE_EQ(to_ms(2'500'000), 2.5);
  EXPECT_EQ(from_us(2.0), 2000ull);
  EXPECT_DOUBLE_EQ(to_sec(kNsPerSec), 1.0);
}

TEST(SimTime, Format) {
  EXPECT_EQ(format_time(500), "500ns");
  EXPECT_EQ(format_time(from_us(1.5)), "1.50us");
  EXPECT_EQ(format_time(from_ms(2.25)), "2.250ms");
}

// --------------------------------------------------------- EventQueue ----

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(30, [&] { order.push_back(3); });
  q.schedule_at(10, [&] { order.push_back(1); });
  q.schedule_at(20, [&] { order.push_back(2); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, FifoWithinSameTimestamp) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule_at(7, [&order, i] { order.push_back(i); });
  }
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  int fired = 0;
  const EventId id = q.schedule_at(5, [&] { ++fired; });
  q.schedule_at(6, [&] { ++fired; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));  // double cancel is a no-op
  q.run_all();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelAfterFireIsNoop) {
  EventQueue q;
  const EventId id = q.schedule_at(1, [] {});
  q.run_all();
  EXPECT_FALSE(q.cancel(id));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(10, [&] { order.push_back(1); });
  q.schedule_at(20, [&] { order.push_back(2); });
  q.schedule_at(30, [&] { order.push_back(3); });
  EXPECT_EQ(q.run_until(20), 2u);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(q.now(), 20u);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) q.schedule_after(10, chain);
  };
  q.schedule_at(0, chain);
  q.run_all();
  EXPECT_EQ(count, 5);
  EXPECT_EQ(q.now(), 40u);
}

TEST(EventQueue, SchedulingInPastThrows) {
  EventQueue q;
  q.schedule_at(100, [] {});
  q.run_all();
  EXPECT_THROW(q.schedule_at(50, [] {}), InvariantError);
}

// Regression: bookkeeping used to grow one tombstone slot per event ever
// scheduled, leaking memory linearly over a multi-hour run. Slots must be
// bounded by *peak concurrent pending*, not total throughput.
TEST(EventQueue, SlotMemoryBoundedAcrossMillionsOfEvents) {
  EventQueue q;
  constexpr size_t kBatch = 64;
  constexpr size_t kRounds = 40'000;  // 2.56M events total
  uint64_t fired = 0;
  for (size_t r = 0; r < kRounds; ++r) {
    std::vector<EventId> ids;
    ids.reserve(kBatch);
    for (size_t i = 0; i < kBatch; ++i) {
      ids.push_back(q.schedule_after(1 + i, [&] { ++fired; }));
    }
    q.cancel(ids[0]);  // mix cancellations into the churn
    q.run_all();
  }
  EXPECT_EQ(fired, kRounds * (kBatch - 1));
  EXPECT_TRUE(q.empty());
  // Peak pending is kBatch; a healthy pool stays within a small constant
  // of that. The pre-fix implementation would report 2'560'000 here.
  EXPECT_LE(q.slot_count(), 2 * kBatch);
}

TEST(EventQueue, StaleIdCannotCancelASlotReuse) {
  EventQueue q;
  int fired = 0;
  const EventId a = q.schedule_at(5, [&] { ++fired; });
  ASSERT_TRUE(q.cancel(a));
  // The slot is recycled by the next event; the stale id must not reach it.
  const EventId b = q.schedule_at(6, [&] { ++fired; });
  EXPECT_FALSE(q.cancel(a));
  q.run_all();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(q.cancel(b));  // already fired
}

// --------------------------------------------------------- ThreadPool ----

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(4);
  std::vector<int> out(64, 0);
  pool.parallel_for(64, [&](size_t i) { out[i] = static_cast<int>(i) + 1; });
  for (int i = 0; i < 64; ++i) EXPECT_EQ(out[i], i + 1);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(8,
                                 [&](size_t i) {
                                   if (i == 3) throw std::runtime_error("x");
                                 }),
               std::runtime_error);
}

// -------------------------------------------------------------- Table ----

TEST(TextTable, RejectsWrongWidth) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ConfigError);
}

TEST(TextTable, FormatsNumbers) {
  EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(TextTable::pct(0.995, 1), "99.5%");
}

}  // namespace
}  // namespace sgdrc
