// Tests for the dynamic-scenario engine: trace compilation (phase
// boundaries, arrival/departure windows), runtime tenant churn in
// ServingSim and FleetSim, bit-identical determinism of scripted runs,
// and autoscaler convergence on a flash crowd.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/profiler.h"
#include "core/sgdrc_policy.h"
#include "models/zoo.h"
#include "workload/scenario.h"

namespace sgdrc::workload {
namespace {

using core::best_effort_tenant;
using core::latency_sensitive_tenant;
using fleet::replicated;

// Shared profiled models (profiling dominates test time; do it once).
struct Zoo {
  gpusim::GpuSpec spec = gpusim::test_gpu();
  models::ModelDesc ls_a = models::make_model('A');
  models::ModelDesc ls_b = models::make_model('B');
  models::ModelDesc be_i = models::make_model('I');
  models::ModelDesc be_j = models::make_model('J');
  TimeNs iso_a = 0, iso_b = 0;

  Zoo() {
    core::OfflineProfiler prof(spec);
    for (auto* m : {&ls_a, &ls_b, &be_i, &be_j}) prof.profile(*m);
    iso_a = prof.isolated_latency(ls_a);
    iso_b = prof.isolated_latency(ls_b);
  }
};

const Zoo& zoo() {
  static const Zoo z;
  return z;
}

fleet::PolicyFactory sgdrc_factory() {
  return [](const gpusim::GpuSpec& spec) -> std::unique_ptr<control::Controller> {
    return std::make_unique<core::SgdrcPolicy>(spec);
  };
}

ScenarioEngineConfig engine_config() {
  ScenarioEngineConfig cfg;
  cfg.spec = zoo().spec;
  cfg.slo_multiplier = 4.0;
  cfg.seed = 0x5ce0;
  return cfg;
}

size_t count_in(const std::vector<Request>& t, unsigned service,
                TimeNs from, TimeNs to) {
  return static_cast<size_t>(std::count_if(
      t.begin(), t.end(), [&](const Request& r) {
        return r.service == service && r.arrival >= from && r.arrival < to;
      }));
}

// ------------------------------------------------- trace compilation ----

TEST(ScenarioTrace, PhaseBoundaryRateSwitching) {
  const auto& z = zoo();
  Scenario sc("step", "", 1 * kNsPerSec);
  sc.rate(0, 500 * kNsPerMs, 3.0);
  const std::vector<ScenarioTenant> initial{
      {latency_sensitive_tenant(z.ls_a, z.iso_a), 400.0, 1}};
  const auto t = build_scenario_trace(sc, initial, engine_config());
  const double before = static_cast<double>(
      count_in(t, 0, 0, 500 * kNsPerMs));
  const double after = static_cast<double>(
      count_in(t, 0, 500 * kNsPerMs, 1 * kNsPerSec));
  // Same window length, 3x the rate after the boundary.
  EXPECT_GT(after / before, 2.2);
  EXPECT_LT(after / before, 4.0);
}

TEST(ScenarioTrace, AllServicesMultiplierAppliesToEveryService) {
  const auto& z = zoo();
  Scenario sc("dip", "", 1 * kNsPerSec);
  sc.rate(Scenario::kAllServices, 500 * kNsPerMs, 0.0);  // traffic stops
  const std::vector<ScenarioTenant> initial{
      {latency_sensitive_tenant(z.ls_a, z.iso_a), 300.0, 1},
      {latency_sensitive_tenant(z.ls_b, z.iso_b), 300.0, 1}};
  const auto t = build_scenario_trace(sc, initial, engine_config());
  EXPECT_GT(count_in(t, 0, 0, 500 * kNsPerMs), 0u);
  EXPECT_GT(count_in(t, 1, 0, 500 * kNsPerMs), 0u);
  EXPECT_EQ(count_in(t, 0, 500 * kNsPerMs, 1 * kNsPerSec), 0u);
  EXPECT_EQ(count_in(t, 1, 500 * kNsPerMs, 1 * kNsPerSec), 0u);
}

TEST(ScenarioTrace, ArrivalAndDepartureBoundTheServiceWindow) {
  const auto& z = zoo();
  Scenario sc("churn", "", 1 * kNsPerSec);
  sc.arrive(300 * kNsPerMs,
            {latency_sensitive_tenant(z.ls_b, z.iso_b), 300.0, 1});
  sc.depart(700 * kNsPerMs, 2);  // the arrival (initial list has 2)
  sc.depart(600 * kNsPerMs, 0);  // initial LS service
  const std::vector<ScenarioTenant> initial{
      {latency_sensitive_tenant(z.ls_a, z.iso_a), 300.0, 1},
      {best_effort_tenant(z.be_i), 0.0, 1}};
  const auto t = build_scenario_trace(sc, initial, engine_config());
  // Service 0 (initial LS) stops at its departure.
  EXPECT_GT(count_in(t, 0, 0, 600 * kNsPerMs), 0u);
  EXPECT_EQ(count_in(t, 0, 600 * kNsPerMs, 1 * kNsPerSec), 0u);
  // Service 1 (the arrival) exists only inside [arrive, depart).
  EXPECT_EQ(count_in(t, 1, 0, 300 * kNsPerMs), 0u);
  EXPECT_GT(count_in(t, 1, 300 * kNsPerMs, 700 * kNsPerMs), 0u);
  EXPECT_EQ(count_in(t, 1, 700 * kNsPerMs, 1 * kNsPerSec), 0u);
}

TEST(ScenarioTrace, PerServiceOverlayComposesWithAllServicesBaseline) {
  const auto& z = zoo();
  Scenario sc("compose", "", 1 * kNsPerSec);
  sc.rate(Scenario::kAllServices, 0, 0.5)   // baseline dip for everyone
      .rate(0, 500 * kNsPerMs, 3.0);        // overlay crowd on service 0
  const std::vector<ScenarioTenant> initial{
      {latency_sensitive_tenant(z.ls_a, z.iso_a), 400.0, 1}};
  const auto t = build_scenario_trace(sc, initial, engine_config());
  const double before = static_cast<double>(
      count_in(t, 0, 0, 500 * kNsPerMs));
  const double after = static_cast<double>(
      count_in(t, 0, 500 * kNsPerMs, 1 * kNsPerSec));
  // The overlay multiplies the baseline (0.5 -> 1.5), it does not
  // replace it: the second half runs at 3x the first.
  EXPECT_GT(after / before, 2.2);
  EXPECT_LT(after / before, 4.0);
}

TEST(ScenarioTrace, SameSeedIsBitIdentical) {
  const auto& z = zoo();
  Scenario sc("det", "", 500 * kNsPerMs);
  sc.diurnal(0.5, 1.5, 4);
  const std::vector<ScenarioTenant> initial{
      {latency_sensitive_tenant(z.ls_a, z.iso_a), 400.0, 1}};
  const auto a = build_scenario_trace(sc, initial, engine_config());
  const auto b = build_scenario_trace(sc, initial, engine_config());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival, b[i].arrival);
    EXPECT_EQ(a[i].service, b[i].service);
  }
}

// ------------------------------------------ ServingSim runtime churn ----

core::ServingConfig sim_config(TimeNs duration) {
  core::ServingConfig cfg;
  cfg.spec = zoo().spec;
  cfg.duration = duration;
  cfg.slo_multiplier = 4.0;
  return cfg;
}

TEST(RuntimeChurn, AddedBeTenantStartsMakingProgress) {
  const auto& z = zoo();
  EventQueue q;
  core::SgdrcPolicy policy(z.spec);
  core::ServingSim sim(q, sim_config(200 * kNsPerMs),
                       {latency_sensitive_tenant(z.ls_a, z.iso_a)}, policy);
  sim.begin();
  q.run_until(50 * kNsPerMs);
  const auto t = sim.add_tenant(best_effort_tenant(z.be_i));
  EXPECT_EQ(t, 1u);
  EXPECT_TRUE(sim.tenant_active(t));
  q.run_until(200 * kNsPerMs);
  const auto m = sim.finish();
  ASSERT_EQ(m.tenants.size(), 2u);
  EXPECT_GT(m.tenants[t].kernels_done, 0u);
}

TEST(RuntimeChurn, RemovedBeTenantHaltsAndRotationContinues) {
  const auto& z = zoo();
  auto run = [&](bool remove) {
    EventQueue q;
    core::SgdrcPolicy policy(z.spec);
    core::ServingSim sim(q, sim_config(200 * kNsPerMs),
                         {best_effort_tenant(z.be_i),
                          best_effort_tenant(z.be_j)},
                         policy);
    sim.begin();
    q.run_until(50 * kNsPerMs);
    if (remove) sim.remove_tenant(0);
    q.run_until(200 * kNsPerMs);
    return sim.finish();
  };
  const auto kept = run(false);
  const auto removed = run(true);
  // The removed tenant stops early; its sibling inherits the whole GPU
  // and does strictly better than under rotation.
  EXPECT_GT(removed.tenants[0].kernels_done, 0u);
  EXPECT_LT(removed.tenants[0].kernels_done, kept.tenants[0].kernels_done);
  EXPECT_GT(removed.tenants[1].kernels_done, kept.tenants[1].kernels_done);
}

TEST(RuntimeChurn, RemovedLsTenantDrainsItsBacklog) {
  const auto& z = zoo();
  EventQueue q;
  core::SgdrcPolicy policy(z.spec);
  core::ServingSim sim(q, sim_config(400 * kNsPerMs),
                       {latency_sensitive_tenant(z.ls_a, z.iso_a, 1)},
                       policy);
  sim.begin();
  // 8 near-simultaneous requests against a 1-instance pool: most queue.
  q.schedule_at(kNsPerMs, [&] {
    for (int i = 0; i < 8; ++i) sim.inject(0, kNsPerMs);
  });
  q.schedule_at(2 * kNsPerMs, [&] { sim.remove_tenant(0); });
  q.run_until(400 * kNsPerMs);
  const auto m = sim.finish();
  EXPECT_FALSE(sim.tenant_active(0));
  // Every admitted request completed and was recorded (drain), even
  // though the tenant was removed while its backlog was deep.
  EXPECT_EQ(m.tenants[0].arrived, 8u);
  EXPECT_EQ(m.tenants[0].served, 8u);
}

TEST(RuntimeChurn, SloCanBeRetunedAtRuntime) {
  const auto& z = zoo();
  EventQueue q;
  core::SgdrcPolicy policy(z.spec);
  core::ServingSim sim(q, sim_config(100 * kNsPerMs),
                       {latency_sensitive_tenant(z.ls_a, z.iso_a)}, policy);
  const TimeNs before = sim.slo_of(0);
  EXPECT_EQ(before, static_cast<TimeNs>(4.0 * static_cast<double>(z.iso_a)));
  sim.set_slo(0, before / 2);
  EXPECT_EQ(sim.slo_of(0), before / 2);
}

// --------------------------------------------- scripted runs (fleet) ----

std::vector<ScenarioTenant> fleet_mix() {
  const auto& z = zoo();
  return {{latency_sensitive_tenant(z.ls_a, z.iso_a), 400.0, 2},
          {latency_sensitive_tenant(z.ls_b, z.iso_b), 300.0, 1},
          {best_effort_tenant(z.be_i), 0.0, 2}};
}

Scenario churn_scenario(TimeNs d) {
  const auto& z = zoo();
  Scenario sc("churn", "", d);
  sc.devices(2)
      .rate(0, d / 4, 2.0)
      .arrive(d / 3, {latency_sensitive_tenant(z.ls_b, z.iso_b), 250.0, 1})
      .depart(d / 2, 1)
      .slo_factor((3 * d) / 4, 0.7);
  return sc;
}

TEST(ScenarioRun, MidRunChurnIsDeterministic) {
  const Scenario sc = churn_scenario(300 * kNsPerMs);
  auto once = [&] {
    fleet::QosAwarePlacement placement;
    fleet::LeastOutstandingRouter router;
    return run_scenario(sc, fleet_mix(), engine_config(), placement,
                        router, sgdrc_factory());
  };
  const auto a = once();
  const auto b = once();
  EXPECT_GT(a.requests, 0u);
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.metrics.routed, b.metrics.routed);
  ASSERT_EQ(a.metrics.tenants.size(), b.metrics.tenants.size());
  for (size_t t = 0; t < a.metrics.tenants.size(); ++t) {
    EXPECT_EQ(a.metrics.tenants[t].arrived, b.metrics.tenants[t].arrived);
    EXPECT_EQ(a.metrics.tenants[t].served, b.metrics.tenants[t].served);
    EXPECT_EQ(a.metrics.tenants[t].attained,
              b.metrics.tenants[t].attained);
    EXPECT_EQ(a.metrics.tenants[t].kernels_done,
              b.metrics.tenants[t].kernels_done);
    EXPECT_EQ(a.metrics.tenants[t].latency.raw(),
              b.metrics.tenants[t].latency.raw());
  }
}

TEST(ScenarioRun, DepartedTenantStopsServingAndArrivalIsServed) {
  const TimeNs d = 300 * kNsPerMs;
  const Scenario sc = churn_scenario(d);
  fleet::QosAwarePlacement placement;
  fleet::LeastOutstandingRouter router;
  const auto out = run_scenario(sc, fleet_mix(), engine_config(),
                                placement, router, sgdrc_factory());
  // Tenant list: 3 initial + 1 arrival.
  ASSERT_EQ(out.metrics.tenants.size(), 4u);
  const auto& departed = out.metrics.tenants[1];
  const auto& arrived = out.metrics.tenants[3];
  EXPECT_GT(departed.served, 0u);
  EXPECT_EQ(departed.served, departed.arrived);  // the drain completed
  EXPECT_GT(arrived.served, 0u);
  // The scripted SLO tighten reached the devices: the merged SLO is the
  // tightened one for a tenant that survived to the end.
  const auto& survivor = out.metrics.tenants[0];
  EXPECT_EQ(survivor.slo,
            static_cast<TimeNs>(
                0.7 * static_cast<double>(4.0 *
                                          static_cast<double>(zoo().iso_a))));
}

TEST(ScenarioRun, AutoscalerConvergesOnFlashCrowd) {
  const auto& z = zoo();
  const TimeNs d = 400 * kNsPerMs;
  Scenario sc("flash", "", d);
  fleet::AutoscalerOptions aso;
  aso.interval = 5 * kNsPerMs;
  aso.scale_up_outstanding = 2.0;
  aso.scale_down_outstanding = 0.4;
  aso.cooldown_ticks = 1;
  sc.devices(2)
      .rate(0, d / 4, 8.0)   // the crowd arrives
      .rate(0, d / 2, 0.25)  // and leaves
      .autoscale(aso);
  // Light base load (the single replica idles below the up-watermark)
  // so the only thing that can trigger scaling is the scripted crowd.
  const std::vector<ScenarioTenant> initial{
      {latency_sensitive_tenant(z.ls_a, z.iso_a), 120.0, 1},
      {best_effort_tenant(z.be_i), 0.0, 1}};
  fleet::QosAwarePlacement placement;
  fleet::LeastOutstandingRouter router;
  const auto out = run_scenario(sc, initial, engine_config(), placement,
                                router, sgdrc_factory());
  ASSERT_FALSE(out.scaling.empty());
  // The spike forced a scale-up to a second replica...
  const auto up = std::find_if(
      out.scaling.begin(), out.scaling.end(),
      [](const auto& s) { return s.scale_up && s.tenant == 0; });
  ASSERT_NE(up, out.scaling.end());
  EXPECT_GE(up->at, d / 4);
  EXPECT_EQ(up->replicas_after, 2u);
  // ...and the loop converged back to one replica after the crowd left.
  const auto& last = out.scaling.back();
  EXPECT_FALSE(last.scale_up);
  EXPECT_EQ(last.replicas_after, 1u);
  EXPECT_GT(last.at, up->at);
}

TEST(ScenarioCatalog, ShipsTheTwelveStockScenarios) {
  const auto& z = zoo();
  ScenarioCatalogOptions opt;
  opt.duration = 500 * kNsPerMs;
  opt.devices = 2;
  opt.initial_tenants = 3;
  opt.make_ls_arrival = [&](unsigned) {
    return ScenarioTenant{latency_sensitive_tenant(z.ls_b, z.iso_b), 200.0,
                          1};
  };
  opt.make_be_arrival = [&](unsigned) {
    return ScenarioTenant{best_effort_tenant(z.be_i), 0.0, 1};
  };
  opt.hetero_specs = {z.spec, gpusim::a100_sxm4()};
  opt.front_door.enabled = true;
  opt.front_door.be_pause_depth = 8;
  opt.front_door.shed_depth = 16;
  opt.admission_door.enabled = true;
  opt.admission_door.admit_rate = 100.0;
  const auto catalog = scenario_catalog(opt);
  ASSERT_EQ(catalog.size(), kStockScenarioCount);
  ASSERT_EQ(catalog.size(), 12u);
  EXPECT_EQ(catalog[0].name(), "steady");
  EXPECT_EQ(catalog[1].name(), "diurnal");
  EXPECT_EQ(catalog[2].name(), "flash-crowd");
  EXPECT_TRUE(catalog[2].autoscaled());
  EXPECT_EQ(catalog[3].name(), "tenant-churn");
  EXPECT_EQ(catalog[3].arrivals().size(), 2u);
  EXPECT_EQ(catalog[3].departures().size(), 2u);
  EXPECT_EQ(catalog[4].name(), "be-backfill-surge");
  EXPECT_EQ(catalog[5].name(), "slo-tighten");
  EXPECT_EQ(catalog[5].slo_changes().size(), 1u);
  EXPECT_EQ(catalog[6].name(), "batching");
  EXPECT_TRUE(catalog[6].ls_batch_policy().enabled());
  EXPECT_EQ(catalog[6].ls_batch_policy().max_batch, 8u);
  EXPECT_EQ(catalog[7].name(), "model-zoo");
  EXPECT_EQ(catalog[7].arrivals().size(), 4u);
  EXPECT_EQ(catalog[7].departures().size(), 2u);
  // No model_zoo_memory in the options: the scenario ships without a
  // memory override (and run_scenario then uses the engine default).
  EXPECT_FALSE(catalog[7].memory_options().enabled);
  EXPECT_EQ(catalog[8].name(), "hetero-diurnal");
  EXPECT_EQ(catalog[8].device_specs().size(), 2u);
  EXPECT_EQ(catalog[8].device_count(), 2u);
  EXPECT_EQ(catalog[8].device_specs()[1].name, "A100-SXM4-40GB");
  EXPECT_EQ(catalog[9].name(), "flash-overload");
  EXPECT_EQ(catalog[9].device_specs().size(), 2u);
  EXPECT_TRUE(catalog[9].front_door_config().enabled);
  EXPECT_EQ(catalog[9].front_door_config().shed_depth, 16u);
  ASSERT_EQ(catalog[9].priorities().size(), 1u);
  EXPECT_EQ(catalog[9].priorities()[0].tenant, 0u);
  EXPECT_EQ(catalog[9].priorities()[0].priority, 2);
  EXPECT_EQ(catalog[10].name(), "retry-storm");
  EXPECT_TRUE(catalog[10].front_door_config().enabled);
  EXPECT_EQ(catalog[10].front_door_config().admit_rate, 100.0);
  EXPECT_EQ(catalog[11].name(), "device-failure");
  EXPECT_TRUE(catalog[11].autoscaled());
  EXPECT_EQ(catalog[11].device_count(), opt.devices + 1);
  ASSERT_EQ(catalog[11].device_failures().size(), 1u);
  EXPECT_EQ(catalog[11].device_failures()[0].device, 1u);
  for (const auto& sc : catalog) {
    EXPECT_EQ(sc.duration(), opt.duration);
    EXPECT_FALSE(sc.description().empty());
  }
}

TEST(ScenarioCatalog, OverloadScenariosDegradeGracefullyWithoutOptions) {
  // An empty options struct must still mint all 12 scenarios: the
  // hetero pair runs homogeneous and the overload pair runs with the
  // door disabled (degrading by queueing), not crash or disappear.
  ScenarioCatalogOptions opt;
  opt.duration = 200 * kNsPerMs;
  const auto catalog = scenario_catalog(opt);
  ASSERT_EQ(catalog.size(), kStockScenarioCount);
  EXPECT_TRUE(catalog[8].device_specs().empty());
  EXPECT_FALSE(catalog[9].front_door_config().enabled);
  EXPECT_FALSE(catalog[10].front_door_config().enabled);
  EXPECT_FALSE(catalog[11].front_door_config().enabled);
}

TEST(ScenarioRun, ScriptedQuotaChangeIsAppliedAndRespected) {
  // set_quota grants tenant 0 a hard 2-TPC reservation mid-run; the
  // fleet propagates it to every replica and the plan-emitting SGDRC
  // controller never violates the carved regions.
  const TimeNs d = 200 * kNsPerMs;
  Scenario sc("quota-grant", "tenant 0 gains a hard TPC quota mid-run", d);
  sc.devices(2).set_quota(d / 4, 0, {.guaranteed_tpcs = 2});
  ASSERT_EQ(sc.quota_changes().size(), 1u);
  EXPECT_EQ(sc.quota_changes()[0].tenant, 0u);
  fleet::QosAwarePlacement placement;
  fleet::LeastOutstandingRouter router;
  const auto out = run_scenario(sc, fleet_mix(), engine_config(), placement,
                                router, sgdrc_factory());
  EXPECT_GT(out.metrics.tenants[0].served, 0u);
  EXPECT_EQ(out.metrics.guarantee_violations(), 0u);
}

TEST(ScenarioRun, QuotaChangeForUnknownTenantIsRejectedUpFront) {
  const TimeNs d = 100 * kNsPerMs;
  Scenario sc("bad-quota", "", d);
  sc.devices(2).set_quota(d / 2, 99, {.guaranteed_tpcs = 1});
  fleet::QosAwarePlacement placement;
  fleet::LeastOutstandingRouter router;
  EXPECT_THROW(run_scenario(sc, fleet_mix(), engine_config(), placement,
                            router, sgdrc_factory()),
               ConfigError);
}

}  // namespace
}  // namespace sgdrc::workload
