// Tests for the fleet layer: placement (spread / pack / QoS-aware
// assignment shapes), routing (round-robin fairness, least-outstanding
// load avoidance), device-salted RNG seeding, metrics aggregation, and
// bit-for-bit determinism of whole fleet runs.
#include <gtest/gtest.h>

#include <memory>

#include "baselines/baseline_policies.h"
#include "core/profiler.h"
#include "core/sgdrc_policy.h"
#include "fleet/fleet.h"
#include "models/zoo.h"

namespace sgdrc::fleet {
namespace {

using core::best_effort_tenant;
using core::latency_sensitive_tenant;
using workload::Request;

// Shared profiled models (profiling dominates test time; do it once).
struct Zoo {
  gpusim::GpuSpec spec = gpusim::test_gpu();
  models::ModelDesc ls_a = models::make_model('A');
  models::ModelDesc ls_b = models::make_model('B');
  models::ModelDesc be_i = models::make_model('I');
  TimeNs iso_a = 0, iso_b = 0;

  Zoo() {
    core::OfflineProfiler prof(spec);
    for (auto* m : {&ls_a, &ls_b, &be_i}) prof.profile(*m);
    iso_a = prof.isolated_latency(ls_a);
    iso_b = prof.isolated_latency(ls_b);
  }
};

const Zoo& zoo() {
  static const Zoo z;
  return z;
}

PolicyFactory sgdrc_factory() {
  return [](const gpusim::GpuSpec& spec) -> std::unique_ptr<control::Controller> {
    return std::make_unique<core::SgdrcPolicy>(spec);
  };
}

FleetConfig small_fleet(unsigned devices, TimeNs duration) {
  FleetConfig cfg;
  cfg.spec = zoo().spec;
  cfg.devices = devices;
  cfg.duration = duration;
  cfg.slo_multiplier = 4.0;
  cfg.seed = 0xf1ee7;
  return cfg;
}

std::vector<unsigned> per_device_counts(const Assignment& a,
                                        unsigned devices) {
  std::vector<unsigned> count(devices, 0);
  for (const auto& reps : a) {
    for (const DeviceId d : reps) ++count[d];
  }
  return count;
}

// ---------------------------------------------------------- Placement ----

TEST(Placement, SpreadBalancesReplicaCounts) {
  const auto& z = zoo();
  std::vector<FleetTenantSpec> tenants{
      replicated(latency_sensitive_tenant(z.ls_a, z.iso_a), 2),
      replicated(latency_sensitive_tenant(z.ls_b, z.iso_b), 2),
      replicated(best_effort_tenant(z.be_i), 4),
  };
  SpreadPlacement spread;
  const auto a = spread.place(tenants, 4);
  validate_assignment(a, tenants, 4);
  EXPECT_EQ(per_device_counts(a, 4), (std::vector<unsigned>{2, 2, 2, 2}));
}

TEST(Placement, PackConsolidatesOntoFewestDevices) {
  const auto& z = zoo();
  std::vector<FleetTenantSpec> tenants{
      replicated(latency_sensitive_tenant(z.ls_a, z.iso_a), 2),
      replicated(latency_sensitive_tenant(z.ls_b, z.iso_b), 2),
  };
  PackPlacement pack(4);
  const auto packed = pack.place(tenants, 4);
  validate_assignment(packed, tenants, 4);
  // Pack leaves devices 2 and 3 idle; spread touches all four.
  EXPECT_EQ(per_device_counts(packed, 4),
            (std::vector<unsigned>{2, 2, 0, 0}));
  SpreadPlacement spread;
  EXPECT_EQ(per_device_counts(spread.place(tenants, 4), 4),
            (std::vector<unsigned>{1, 1, 1, 1}));
}

TEST(Placement, PackOverflowsAtCapacity) {
  const auto& z = zoo();
  std::vector<FleetTenantSpec> tenants{
      replicated(latency_sensitive_tenant(z.ls_a, z.iso_a), 1),
      replicated(latency_sensitive_tenant(z.ls_b, z.iso_b), 1),
      replicated(best_effort_tenant(z.be_i), 1),
  };
  PackPlacement pack(2);
  const auto a = pack.place(tenants, 3);
  validate_assignment(a, tenants, 3);
  EXPECT_EQ(per_device_counts(a, 3), (std::vector<unsigned>{2, 1, 0}));
}

TEST(Placement, QosAwareSendsBestEffortToLightDevice) {
  const auto& z = zoo();
  // Two LS tenants with explicit, very different weights, then one BE
  // tenant: the BE replica must land beside the light LS tenant.
  std::vector<FleetTenantSpec> tenants{
      replicated(latency_sensitive_tenant(z.ls_a, z.iso_a), 1, 100.0),
      replicated(latency_sensitive_tenant(z.ls_b, z.iso_b), 1, 1.0),
      replicated(best_effort_tenant(z.be_i), 1),
  };
  QosAwarePlacement qos;
  const auto a = qos.place(tenants, 2);
  validate_assignment(a, tenants, 2);
  EXPECT_NE(a[0][0], a[1][0]);       // LS tenants split across devices
  EXPECT_EQ(a[2][0], a[1][0]);       // BE lands with the light tenant
}

// ------------------------------------------------------------ Seeding ----

TEST(Fleet, DeviceSeedsAreDistinctAndSalted) {
  const uint64_t base = 0xabcdef;
  for (DeviceId d = 0; d < 8; ++d) {
    EXPECT_NE(device_seed(base, d), base);
    for (DeviceId e = d + 1; e < 8; ++e) {
      EXPECT_NE(device_seed(base, d), device_seed(base, e));
    }
  }
}

TEST(Fleet, EveryDeviceSimGetsItsOwnSeed) {
  const auto& z = zoo();
  std::vector<FleetTenantSpec> tenants{
      replicated(latency_sensitive_tenant(z.ls_a, z.iso_a), 2)};
  SpreadPlacement spread;
  RoundRobinRouter rr;
  FleetSim fleet(small_fleet(2, 50 * kNsPerMs), tenants, spread, rr,
                 sgdrc_factory());
  EXPECT_NE(fleet.device(0).config().seed, fleet.device(1).config().seed);
  EXPECT_EQ(fleet.device(0).config().seed,
            device_seed(fleet.config().seed, 0));
}

// ------------------------------------------------------------ Routing ----

TEST(Router, RoundRobinIsFairUnderEqualLoad) {
  const auto& z = zoo();
  std::vector<FleetTenantSpec> tenants{
      replicated(latency_sensitive_tenant(z.ls_a, z.iso_a), 2)};
  SpreadPlacement spread;
  RoundRobinRouter rr;
  FleetSim fleet(small_fleet(2, 500 * kNsPerMs), tenants, spread, rr,
                 sgdrc_factory());
  // 10 well-separated requests: rotation alone must split them 5/5.
  std::vector<Request> trace;
  for (unsigned i = 0; i < 10; ++i) {
    trace.push_back({i * 40 * kNsPerMs, 0});
  }
  const auto m = fleet.run(trace);
  EXPECT_EQ(m.routed, (std::vector<uint64_t>{5, 5}));
  EXPECT_DOUBLE_EQ(m.imbalance_cv(), 0.0);
  EXPECT_DOUBLE_EQ(m.imbalance_max_over_mean(), 1.0);
}

TEST(Router, LeastOutstandingPicksTheIdleReplica) {
  const auto& z = zoo();
  std::vector<FleetTenantSpec> tenants{
      replicated(latency_sensitive_tenant(z.ls_a, z.iso_a, 1), 2)};
  SpreadPlacement spread;
  LeastOutstandingRouter lo;
  FleetSim fleet(small_fleet(2, 500 * kNsPerMs), tenants, spread, lo,
                 sgdrc_factory());
  // Four near-simultaneous requests (gaps ≪ isolated latency): each
  // dispatch must see the earlier ones still in flight and alternate to
  // the idle replica.
  const TimeNs gap = std::max<TimeNs>(z.iso_a / 64, 1);
  std::vector<Request> trace;
  for (unsigned i = 0; i < 4; ++i) {
    trace.push_back({i * gap, 0});
  }
  const auto m = fleet.run(trace);
  EXPECT_EQ(m.routed, (std::vector<uint64_t>{2, 2}));
}

// Regression: equal loads used to break toward the lowest replica index,
// so an idle fleet (every startup; every lull) funnelled all traffic to
// device 0. Well-separated requests — each one completes before the next
// arrives, so every dispatch sees an all-idle tie — must now spread
// round-robin across the replicas, for both load-aware routers.
TEST(Router, LoadAwareTieBreakRotatesOnIdleFleet) {
  const auto& z = zoo();
  std::vector<Request> trace;
  for (unsigned i = 0; i < 12; ++i) {
    trace.push_back({i * 40 * kNsPerMs, 0});
  }
  {
    std::vector<FleetTenantSpec> tenants{
        replicated(latency_sensitive_tenant(z.ls_a, z.iso_a), 3)};
    SpreadPlacement spread;
    LeastOutstandingRouter lo;
    FleetSim fleet(small_fleet(3, 500 * kNsPerMs), tenants, spread, lo,
                   sgdrc_factory());
    const auto m = fleet.run(trace);
    EXPECT_EQ(m.routed, (std::vector<uint64_t>{4, 4, 4}))
        << "least-outstanding hot-spots a replica on an idle fleet";
  }
  {
    std::vector<FleetTenantSpec> tenants{
        replicated(latency_sensitive_tenant(z.ls_a, z.iso_a), 3)};
    SpreadPlacement spread;
    QosLoadAwareRouter qla;
    FleetSim fleet(small_fleet(3, 500 * kNsPerMs), tenants, spread, qla,
                   sgdrc_factory());
    const auto m = fleet.run(trace);
    EXPECT_EQ(m.routed, (std::vector<uint64_t>{4, 4, 4}))
        << "qos-load-aware hot-spots a replica on an idle fleet";
  }
}

TEST(Router, QosLoadAwareAvoidsTheLoadedDevice) {
  const auto& z = zoo();
  // Tenant 0 has replicas on both devices; tenant 1 lives only on
  // device 0 and is flooded first. The QoS-load-aware router must send
  // tenant 0's request to device 1; plain round-robin would not.
  std::vector<FleetTenantSpec> tenants{
      replicated(latency_sensitive_tenant(z.ls_a, z.iso_a, 1), 2),
      replicated(latency_sensitive_tenant(z.ls_b, z.iso_b, 1), 1),
  };
  SpreadPlacement spread;
  QosLoadAwareRouter qla;
  FleetSim fleet(small_fleet(2, 500 * kNsPerMs), tenants, spread, qla,
                 sgdrc_factory());
  ASSERT_EQ(fleet.replicas_of(0).size(), 2u);
  const DeviceId dev_of_b = fleet.replicas_of(1)[0].device;
  // Flood tenant 1 (service index 1), then send one tenant-0 request
  // while the flood is still queued.
  std::vector<Request> trace;
  for (unsigned i = 0; i < 6; ++i) {
    trace.push_back({i + 1, 1});
  }
  trace.push_back({100, 0});
  const auto m = fleet.run(trace);
  // The tenant-0 request went to the device NOT hosting the flood.
  EXPECT_EQ(m.routed[dev_of_b], 6u);
  EXPECT_EQ(m.routed[1 - dev_of_b], 1u);
}

// ------------------------------------------- Aggregation + determinism ----

FleetMetrics run_reference_fleet(core::BeMode be_mode) {
  const auto& z = zoo();
  std::vector<FleetTenantSpec> tenants{
      replicated(latency_sensitive_tenant(z.ls_a, z.iso_a), 2),
      replicated(latency_sensitive_tenant(z.ls_b, z.iso_b), 2),
      replicated(best_effort_tenant(z.be_i), 2),
  };
  FleetConfig cfg = small_fleet(2, 200 * kNsPerMs);
  cfg.be_mode = be_mode;
  cfg.dispatch_latency = 2 * kNsPerUs;
  cfg.dispatch_jitter = 5 * kNsPerUs;  // exercises the per-device RNG
  SpreadPlacement spread;
  LeastOutstandingRouter lo;
  FleetSim fleet(cfg, tenants, spread, lo, sgdrc_factory());
  workload::TraceOptions topt;
  topt.services = 2;
  topt.duration = cfg.duration;
  topt.per_service_rates = {200.0, 200.0};
  topt.seed = 0x7ace;
  return fleet.run(workload::generate_apollo_like_trace(topt));
}

TEST(Fleet, AggregationConservesRequestsAndMergesClasses) {
  const auto m = run_reference_fleet(core::BeMode::kRoundRobin);
  ASSERT_EQ(m.tenants.size(), 3u);
  ASSERT_EQ(m.devices.size(), 2u);
  // Every dispatched request is attributed to exactly one fleet tenant
  // and one device.
  uint64_t routed_total = 0;
  for (const uint64_t r : m.routed) routed_total += r;
  uint64_t arrived_total = 0;
  for (const auto& t : m.tenants) arrived_total += t.arrived;
  EXPECT_EQ(routed_total, arrived_total);
  // Fleet tenant counters equal the sum over their device replicas.
  for (unsigned t = 0; t < 2; ++t) {
    uint64_t dev_served = 0;
    for (const auto& dm : m.devices) {
      for (const auto& tm : dm.tenants) {
        if (tm.qos == workload::QosClass::kLatencySensitive &&
            tm.letter == m.tenants[t].letter) {
          dev_served += tm.served;
        }
      }
    }
    EXPECT_EQ(m.tenants[t].served, dev_served);
    EXPECT_EQ(m.tenants[t].latency.count(), m.tenants[t].served);
  }
  // The merged BE tenant made progress on both devices.
  EXPECT_GT(m.tenants[2].kernels_done, 0u);
  EXPECT_GT(m.be_throughput(), 0.0);
  EXPECT_GT(m.ls_goodput(), 0.0);
}

TEST(Fleet, IdenticalRunsProduceIdenticalMetrics) {
  for (const auto mode :
       {core::BeMode::kRoundRobin, core::BeMode::kConcurrent}) {
    const auto a = run_reference_fleet(mode);
    const auto b = run_reference_fleet(mode);
    EXPECT_EQ(a.routed, b.routed);
    ASSERT_EQ(a.tenants.size(), b.tenants.size());
    for (size_t t = 0; t < a.tenants.size(); ++t) {
      EXPECT_EQ(a.tenants[t].arrived, b.tenants[t].arrived);
      EXPECT_EQ(a.tenants[t].served, b.tenants[t].served);
      EXPECT_EQ(a.tenants[t].attained, b.tenants[t].attained);
      EXPECT_EQ(a.tenants[t].kernels_done, b.tenants[t].kernels_done);
      EXPECT_EQ(a.tenants[t].latency.raw(), b.tenants[t].latency.raw());
    }
  }
}

TEST(Fleet, SingleDeviceFleetMatchesStandaloneServingSim) {
  const auto& z = zoo();
  // A 1-device fleet with a zero-cost dispatch hop is exactly a
  // ServingSim: the layers must agree bit-for-bit.
  workload::TraceOptions topt;
  topt.services = 1;
  topt.duration = 200 * kNsPerMs;
  topt.per_service_rates = {300.0};
  topt.seed = 0x1de7;
  const auto trace = workload::generate_apollo_like_trace(topt);

  std::vector<FleetTenantSpec> tenants{
      replicated(latency_sensitive_tenant(z.ls_a, z.iso_a), 1),
      replicated(best_effort_tenant(z.be_i), 1),
  };
  FleetConfig cfg = small_fleet(1, topt.duration);
  SpreadPlacement spread;
  RoundRobinRouter rr;
  FleetSim fleet(cfg, tenants, spread, rr, sgdrc_factory());
  const auto fm = fleet.run(trace);

  core::SgdrcPolicy policy(z.spec);
  const auto sim = core::ServingSimBuilder()
                       .gpu(z.spec)
                       .duration(topt.duration)
                       .slo_multiplier(cfg.slo_multiplier)
                       .add_latency_sensitive(z.ls_a, z.iso_a)
                       .add_best_effort(z.be_i)
                       .build(policy);
  const auto sm = sim->run(trace);

  ASSERT_EQ(fm.tenants.size(), sm.tenants.size());
  for (size_t t = 0; t < fm.tenants.size(); ++t) {
    EXPECT_EQ(fm.tenants[t].served, sm.tenants[t].served);
    EXPECT_EQ(fm.tenants[t].attained, sm.tenants[t].attained);
    EXPECT_EQ(fm.tenants[t].kernels_done, sm.tenants[t].kernels_done);
    EXPECT_EQ(fm.tenants[t].latency.raw(), sm.tenants[t].latency.raw());
  }
}

// --------------------------------------------- runtime rescale / churn ----

TEST(Fleet, RuntimeReplicaRescaleConservesRequests) {
  const auto& z = zoo();
  std::vector<FleetTenantSpec> tenants{
      replicated(latency_sensitive_tenant(z.ls_a, z.iso_a, 1), 1)};
  FleetConfig cfg = small_fleet(2, 200 * kNsPerMs);
  SpreadPlacement spread;
  LeastOutstandingRouter lo;
  FleetSim fleet(cfg, tenants, spread, lo, sgdrc_factory());
  fleet.begin();
  for (unsigned i = 0; i < 50; ++i) {
    const TimeNs at = (i + 1) * 2 * kNsPerMs;
    fleet.at(at, [&fleet, at] { fleet.inject(0, at); });
  }
  // Scale out to device 1 mid-run, then retire the original replica
  // while traffic still flows: the tail must route to device 1 only.
  fleet.at(50 * kNsPerMs, [&fleet] { fleet.add_replica(0, 1); });
  fleet.at(60 * kNsPerMs, [&fleet] { fleet.remove_replica(0, 0); });
  fleet.run_until(cfg.duration);
  const auto m = fleet.finish();
  // Both devices served traffic; nothing was lost across the rescale —
  // the retired replica drained and its history still counts.
  EXPECT_GT(m.routed[0], 0u);
  EXPECT_GT(m.routed[1], 0u);
  EXPECT_EQ(m.routed[0] + m.routed[1], 50u);
  EXPECT_EQ(m.tenants[0].arrived, 50u);
  EXPECT_EQ(m.tenants[0].served, 50u);
}

TEST(Fleet, RuntimeAddBringsUpPackIdledDevice) {
  const auto& z = zoo();
  std::vector<FleetTenantSpec> tenants{
      replicated(latency_sensitive_tenant(z.ls_a, z.iso_a), 1),
      replicated(best_effort_tenant(z.be_i), 1)};
  FleetConfig cfg = small_fleet(2, 100 * kNsPerMs);
  PackPlacement pack(8);  // everything lands on device 0
  RoundRobinRouter rr;
  FleetSim fleet(cfg, tenants, pack, rr, sgdrc_factory());
  EXPECT_FALSE(fleet.device_in_use(1));
  fleet.begin();
  fleet.at(20 * kNsPerMs, [&fleet] { fleet.add_replica(0, 1); });
  for (unsigned i = 0; i < 20; ++i) {
    const TimeNs at = 30 * kNsPerMs + i * 3 * kNsPerMs;
    fleet.at(at, [&fleet, at] { fleet.inject(0, at); });
  }
  fleet.run_until(cfg.duration);
  const auto m = fleet.finish();
  // The idle device was created lazily and served its share.
  EXPECT_TRUE(fleet.device_in_use(1));
  EXPECT_GT(m.routed[1], 0u);
  EXPECT_EQ(m.tenants[0].served, 20u);
}

TEST(Fleet, AddFleetTenantReusesThePlacementPolicy) {
  const auto& z = zoo();
  std::vector<FleetTenantSpec> tenants{
      replicated(latency_sensitive_tenant(z.ls_a, z.iso_a), 2)};
  FleetConfig cfg = small_fleet(2, 100 * kNsPerMs);
  SpreadPlacement spread;
  RoundRobinRouter rr;
  FleetSim fleet(cfg, tenants, spread, rr, sgdrc_factory());
  fleet.begin();
  unsigned added = ~0u;
  fleet.at(10 * kNsPerMs, [&] {
    added = fleet.add_fleet_tenant(
        replicated(latency_sensitive_tenant(z.ls_b, z.iso_b), 2), spread);
  });
  fleet.run_until(20 * kNsPerMs);
  ASSERT_EQ(added, 1u);
  EXPECT_EQ(fleet.tenant_count(), 2u);
  EXPECT_EQ(fleet.ls_service_count(), 2u);
  EXPECT_EQ(fleet.replicas_of(1).size(), 2u);
  // The new service routes like any other.
  fleet.at(30 * kNsPerMs, [&fleet] { fleet.inject(1, 30 * kNsPerMs); });
  fleet.run_until(cfg.duration);
  const auto m = fleet.finish();
  EXPECT_EQ(m.tenants[1].arrived, 1u);
  EXPECT_EQ(m.tenants[1].served, 1u);
}

// -------------------------------------------------- vGPU quota layer ----

TEST(Placement, QuotaAwareBinPacksGuaranteedTpcs) {
  const auto& z = zoo();  // 4-TPC test GPU
  using core::latency_sensitive_tenant;
  std::vector<FleetTenantSpec> tenants{
      replicated(latency_sensitive_tenant(z.ls_a, z.iso_a, 0,
                                          {.guaranteed_tpcs = 3}),
                 1),
      replicated(latency_sensitive_tenant(z.ls_b, z.iso_b, 0,
                                          {.guaranteed_tpcs = 2}),
                 1),
      replicated(core::with_vgpu(best_effort_tenant(z.be_i),
                                 {.guaranteed_tpcs = 2}),
                 1),
      replicated(best_effort_tenant(z.be_i), 2),
  };
  QuotaAwarePlacement quota(z.spec.num_tpcs);
  const auto a = quota.place(tenants, 2);
  validate_assignment(a, tenants, 2);
  // FFD over {3, 2, 2} into 4-TPC bins: the 3 sits alone, the two 2s
  // pack together — no bin's reservations overcommit its SMs.
  EXPECT_NE(a[0][0], a[1][0]);
  EXPECT_EQ(a[1][0], a[2][0]);
  // Every replica set is constructible: the device sims accept the
  // resulting per-device guarantee budgets.
  FleetConfig cfg = small_fleet(2, 5 * kNsPerMs);
  RoundRobinRouter rr;
  FleetSim fleet(cfg, tenants, quota, rr, sgdrc_factory());
  fleet.begin();
  fleet.run_until(cfg.duration);
  EXPECT_EQ(fleet.finish().guarantee_violations(), 0u);
}

TEST(FleetVgpu, SetFleetVgpuReachesEveryReplicaAndFutureOnes) {
  const auto& z = zoo();
  FleetConfig cfg = small_fleet(2, 50 * kNsPerMs);
  std::vector<FleetTenantSpec> tenants{
      replicated(latency_sensitive_tenant(z.ls_a, z.iso_a), 2),
      replicated(best_effort_tenant(z.be_i), 2),
  };
  SpreadPlacement spread;
  RoundRobinRouter rr;
  FleetSim fleet(cfg, tenants, spread, rr, sgdrc_factory());
  fleet.begin();
  fleet.at(10 * kNsPerMs,
           [&] { fleet.set_fleet_vgpu(0, {.guaranteed_tpcs = 2}); });
  fleet.run_until(20 * kNsPerMs);
  for (const Replica& r : fleet.replicas_of(0)) {
    EXPECT_EQ(gpusim::tpc_count(
                  fleet.device(r.device).guaranteed_mask(r.local_tenant)),
              2u);
  }
  EXPECT_EQ(fleet.fleet_tenant(0).spec.vgpu.guaranteed_tpcs, 2u);
  fleet.run_until(cfg.duration);
  // SGDRC's plan-emitting controller honours the regions everywhere.
  EXPECT_EQ(fleet.finish().guarantee_violations(), 0u);
}

}  // namespace
}  // namespace sgdrc::fleet
