// Heterogeneous fleets and the overload front door: per-device GpuSpecs
// (device_spec/device_perf), perf-normalized placement and routing,
// token-bucket admission, QoS-ordered shedding (BE pause before
// priority-scaled LS shed), the client retry model (whose backoff must
// land in latency samples — shedding is never free), device failure as
// cordon-and-drain with last-replica recovery, and the door's
// conservation identities. docs/overload.md is the operator-facing
// companion of this file.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/profiler.h"
#include "core/sgdrc_policy.h"
#include "fleet/fleet.h"
#include "models/zoo.h"
#include "workload/trace.h"

namespace sgdrc::fleet {
namespace {

using core::best_effort_tenant;
using core::latency_sensitive_tenant;

struct Zoo {
  gpusim::GpuSpec spec = gpusim::test_gpu();
  models::ModelDesc ls_a = models::make_model('A');
  models::ModelDesc ls_b = models::make_model('B');
  models::ModelDesc be_i = models::make_model('I');
  TimeNs iso_a = 0, iso_b = 0;

  Zoo() {
    core::OfflineProfiler prof(spec);
    for (auto* m : {&ls_a, &ls_b, &be_i}) prof.profile(*m);
    iso_a = prof.isolated_latency(ls_a);
    iso_b = prof.isolated_latency(ls_b);
  }
};

const Zoo& zoo() {
  static const Zoo z;
  return z;
}

PolicyFactory sgdrc_factory() {
  return [](const gpusim::GpuSpec& spec)
             -> std::unique_ptr<control::Controller> {
    return std::make_unique<core::SgdrcPolicy>(spec);
  };
}

FleetConfig base_config(unsigned devices, TimeNs duration) {
  FleetConfig cfg;
  cfg.spec = zoo().spec;
  cfg.devices = devices;
  cfg.duration = duration;
  cfg.slo_multiplier = 3.0;
  cfg.seed = 0xd002;
  cfg.dispatch_latency = 2 * kNsPerUs;
  cfg.dispatch_jitter = 3 * kNsPerUs;
  return cfg;
}

std::vector<FleetTenantSpec> mixed_tenants(unsigned reps) {
  const auto& z = zoo();
  return {
      replicated(latency_sensitive_tenant(z.ls_a, z.iso_a), reps),
      replicated(latency_sensitive_tenant(z.ls_b, z.iso_b), reps),
      replicated(best_effort_tenant(z.be_i), reps),
  };
}

std::vector<workload::Request> heavy_trace(TimeNs duration) {
  workload::TraceOptions topt;
  topt.services = 2;
  topt.duration = duration;
  topt.per_service_rates = {700.0, 500.0};
  topt.seed = 0x57a3;
  return workload::generate_apollo_like_trace(topt);
}

/// Tenant-level fingerprint (excludes engine event counts, which
/// legitimately differ between the coalescing and barriered dispatch
/// paths even when every request outcome is identical).
std::string tenant_digest(const FleetMetrics& m) {
  std::ostringstream os;
  os << "routed=";
  for (const uint64_t r : m.routed) os << r << ',';
  for (const auto& t : m.tenants) {
    os << "\ntenant " << t.id << ": arrived=" << t.arrived
       << " served=" << t.served << " attained=" << t.attained << " lat=";
    for (const auto s : t.latency.raw()) os << s << ' ';
  }
  return os.str();
}

// ------------------------------------------------ per-device specs ----

TEST(HeteroFleet, A100SpecAndRelativePerf) {
  const auto a100 = gpusim::a100_sxm4();
  EXPECT_EQ(a100.name, "A100-SXM4-40GB");
  EXPECT_EQ(a100.vram_bytes, 40ull << 30);
  // ChannelSet is 32 bits wide — the HBM stacks must fold within it.
  EXPECT_LE(a100.num_channels, 32u);
  EXPECT_LE(a100.num_tpcs, 64u);  // TpcMask is 64 bits wide

  const auto a2000 = gpusim::rtx_a2000();
  EXPECT_GT(relative_perf(a100, a2000), 1.0);
  EXPECT_LT(relative_perf(a2000, a100), 1.0);
  // Self-relative perf is EXACTLY 1.0 — the homogeneous bit-identity
  // contract (dividing by 1.0 preserves every comparison bit-for-bit).
  EXPECT_EQ(relative_perf(a2000, a2000), 1.0);
  EXPECT_EQ(relative_perf(a100, a100), 1.0);

  const auto factors = device_perf_factors({a2000, a100}, a2000);
  ASSERT_EQ(factors.size(), 2u);
  EXPECT_EQ(factors[0], 1.0);
  EXPECT_GT(factors[1], 1.0);
}

TEST(HeteroFleet, FleetExposesPerDeviceSpecsAndPerf) {
  FleetConfig cfg = base_config(2, 10 * kNsPerMs);
  cfg.device_specs = {zoo().spec, gpusim::a100_sxm4()};
  SpreadPlacement spread;
  RoundRobinRouter rr;
  FleetSim fleet(cfg, mixed_tenants(2), spread, rr, sgdrc_factory());
  EXPECT_EQ(fleet.device_spec(0).name, zoo().spec.name);
  EXPECT_EQ(fleet.device_spec(1).name, "A100-SXM4-40GB");
  EXPECT_EQ(fleet.device_perf(0), 1.0);
  EXPECT_GT(fleet.device_perf(1), 1.0);
}

TEST(HeteroFleet, HomogeneousPerfIsExactlyOne) {
  FleetConfig cfg = base_config(3, 10 * kNsPerMs);
  SpreadPlacement spread;
  RoundRobinRouter rr;
  FleetSim fleet(cfg, mixed_tenants(3), spread, rr, sgdrc_factory());
  for (DeviceId d = 0; d < 3; ++d) {
    EXPECT_EQ(fleet.device_perf(d), 1.0);
    EXPECT_EQ(fleet.device_spec(d).name, zoo().spec.name);
  }
}

TEST(HeteroFleet, MismatchedDeviceSpecCountIsRejected) {
  FleetConfig cfg = base_config(3, 10 * kNsPerMs);
  cfg.device_specs = {zoo().spec, gpusim::a100_sxm4()};  // 2 specs, 3 devs
  SpreadPlacement spread;
  RoundRobinRouter rr;
  EXPECT_THROW(
      FleetSim(cfg, mixed_tenants(2), spread, rr, sgdrc_factory()),
      std::runtime_error);
}

// --------------------------------------- perf-aware placement bins ----

TEST(HeteroFleet, QosPlacementLeansOntoTheFastDevice) {
  const auto& z = zoo();
  std::vector<FleetTenantSpec> three_ls{
      replicated(latency_sensitive_tenant(z.ls_a, z.iso_a), 1),
      replicated(latency_sensitive_tenant(z.ls_a, z.iso_a), 1),
      replicated(latency_sensitive_tenant(z.ls_a, z.iso_a), 1),
  };
  // Homogeneous: 3 equal tenants over 2 devices land 2 + 1.
  const auto flat = QosAwarePlacement{}.place(three_ls, 2);
  // A 3x device 1: it should absorb 2 of the 3 (its normalized load
  // stays below device 0's after one placement).
  const auto hetero =
      QosAwarePlacement{{1.0, 3.0}}.place(three_ls, 2);
  unsigned flat_on_1 = 0, hetero_on_1 = 0;
  for (const auto& reps : flat) flat_on_1 += (reps[0] == 1);
  for (const auto& reps : hetero) hetero_on_1 += (reps[0] == 1);
  EXPECT_EQ(flat_on_1, 1u);
  EXPECT_EQ(hetero_on_1, 2u);
}

TEST(HeteroFleet, QuotaPlacementRespectsPerDeviceBins) {
  const auto& z = zoo();
  FleetTenantSpec big = replicated(
      latency_sensitive_tenant(z.ls_a, z.iso_a), 1);
  big.spec.vgpu.guaranteed_tpcs = 8;
  // Device 0 has a 4-TPC bin, device 1 a 16-TPC bin: only the big bin
  // can hold an 8-TPC reservation.
  const auto placed =
      QuotaAwarePlacement{std::vector<DeviceShape>{{4, 0}, {16, 0}}}
          .place({big}, 2);
  ASSERT_EQ(placed.size(), 1u);
  ASSERT_EQ(placed[0].size(), 1u);
  EXPECT_EQ(placed[0][0], 1u);
}

// ------------------------------------------------- the front door ----

FleetConfig overload_config(TimeNs duration) {
  FleetConfig cfg = base_config(2, duration);
  cfg.front_door.enabled = true;
  cfg.front_door.admit_rate = 300.0;
  cfg.front_door.admit_burst = 4.0;
  cfg.front_door.be_pause_depth = 4;
  cfg.front_door.shed_depth = 8;
  cfg.front_door.max_retries = 2;
  return cfg;
}

TEST(FrontDoor, DisabledDoorKeepsEveryCounterZero) {
  FleetConfig cfg = base_config(2, 40 * kNsPerMs);
  SpreadPlacement spread;
  RoundRobinRouter rr;
  FleetSim fleet(cfg, mixed_tenants(2), spread, rr, sgdrc_factory());
  EXPECT_EQ(fleet.front_door(), nullptr);
  const auto m = fleet.run(heavy_trace(40 * kNsPerMs));
  EXPECT_EQ(m.front_door.arrived, 0u);
  EXPECT_EQ(m.front_door.admitted, 0u);
}

TEST(FrontDoor, NoOpDoorMatchesDisabledDoorOutcomeForOutcome) {
  // A door with every lever off (no bucket, no depths, no retries)
  // observes but never intervenes: request outcomes must be identical
  // to the door-less fleet, though the engine takes the barriered
  // (non-coalescing) dispatch path underneath.
  const TimeNs duration = 40 * kNsPerMs;
  const auto trace = heavy_trace(duration);
  SpreadPlacement spread;

  RoundRobinRouter rr1;
  FleetSim off(base_config(2, duration), mixed_tenants(2), spread, rr1,
               sgdrc_factory());
  const auto m_off = off.run(trace);

  FleetConfig cfg = base_config(2, duration);
  cfg.front_door.enabled = true;  // all levers at their zero defaults
  RoundRobinRouter rr2;
  FleetSim on(cfg, mixed_tenants(2), spread, rr2, sgdrc_factory());
  ASSERT_NE(on.front_door(), nullptr);
  const auto m_on = on.run(trace);

  EXPECT_EQ(tenant_digest(m_off), tenant_digest(m_on));
  // The observing door still keeps books.
  EXPECT_GT(m_on.front_door.arrived, 0u);
  EXPECT_EQ(m_on.front_door.arrived, m_on.front_door.admitted);
  EXPECT_EQ(m_on.front_door.rejected, 0u);
  EXPECT_EQ(m_on.front_door.shed, 0u);
}

TEST(FrontDoor, TokenBucketRejectsAndRetriesConserveRequests) {
  const TimeNs duration = 60 * kNsPerMs;
  FleetConfig cfg = overload_config(duration);
  cfg.front_door.admit_rate = 150.0;  // well under the offered ~1200/s
  SpreadPlacement spread;
  QosLoadAwareRouter router;
  FleetSim fleet(cfg, mixed_tenants(2), spread, router, sgdrc_factory());
  const auto m = fleet.run(heavy_trace(duration));
  const auto& fd = m.front_door;
  EXPECT_GT(fd.arrived, 0u);
  EXPECT_GT(fd.rejected, 0u);
  EXPECT_GT(fd.retries, 0u);
  EXPECT_GT(fd.dropped, 0u);
  // Door-level conservation: every first-attempt arrival terminates as
  // admitted or dropped, or sits in a scheduled retry at the horizon.
  EXPECT_EQ(fd.arrived, fd.admitted + fd.dropped + fd.pending_retries);
  // Device-level: every admitted request reached a device unless its
  // dispatch hop crossed the horizon.
  uint64_t device_arrivals = 0;
  for (const auto& t : m.tenants) {
    if (t.qos == QosClass::kLatencySensitive) device_arrivals += t.arrived;
  }
  EXPECT_EQ(fd.admitted, device_arrivals + fd.expired);
}

TEST(FrontDoor, RetryBackoffLandsInLatencySamples) {
  // A request rejected at the door and admitted on retry waited out its
  // backoff; that wait belongs to the client-visible latency. With a
  // ~1 ms isolated model and a 5 ms backoff floor, retried requests are
  // unmistakable in the tail.
  const TimeNs duration = 60 * kNsPerMs;
  FleetConfig cfg = overload_config(duration);
  cfg.front_door.admit_rate = 150.0;
  SpreadPlacement spread;
  QosLoadAwareRouter router;
  FleetSim fleet(cfg, mixed_tenants(2), spread, router, sgdrc_factory());
  const auto m = fleet.run(heavy_trace(duration));
  ASSERT_GT(m.front_door.retries, 0u);
  TimeNs max_lat = 0;
  for (const auto& t : m.tenants) {
    for (const auto s : t.latency.raw()) {
      max_lat = std::max(max_lat, static_cast<TimeNs>(s));
    }
  }
  EXPECT_GT(max_lat, cfg.front_door.retry_backoff);
}

TEST(FrontDoor, OverloadEngagesTheBePauseLever) {
  // Under a sustained overload the door's first lever — pausing BE —
  // must fire (depth 4) before the LS shed depth (8) would even be a
  // question, and the pause bookkeeping must stay inside the run.
  const TimeNs duration = 60 * kNsPerMs;
  SpreadPlacement spread;
  QosLoadAwareRouter router;
  FleetSim doored(overload_config(duration), mixed_tenants(2), spread,
                  router, sgdrc_factory());
  const auto m = doored.run(heavy_trace(duration));
  const auto& fd = m.front_door;
  EXPECT_GT(fd.be_pause_events, 0u);
  EXPECT_GT(fd.be_paused_ns, 0u);
  EXPECT_LE(fd.be_paused_ns, duration);
  // With a disarmed lever (depth 0) the door never pauses.
  QosLoadAwareRouter rr2;
  FleetConfig no_pause = overload_config(duration);
  no_pause.front_door.be_pause_depth = 0;
  FleetSim free_fleet(no_pause, mixed_tenants(2), spread, rr2,
                      sgdrc_factory());
  EXPECT_EQ(free_fleet.run(heavy_trace(duration)).front_door.be_pause_events,
            0u);
}

TEST(FrontDoor, BePauseStopsBestEffortSampling) {
  // The lever itself, isolated from door dynamics: a BE-only fleet with
  // a scripted pause over the middle half of the run must sample
  // measurably less than its never-paused twin (no LS traffic, so
  // nothing else competes for the devices).
  const TimeNs duration = 80 * kNsPerMs;
  const auto& z = zoo();
  const auto run_be = [&](bool pause) {
    FleetConfig cfg = base_config(2, duration);
    std::vector<FleetTenantSpec> tenants{
        replicated(best_effort_tenant(z.be_i), 2)};
    SpreadPlacement spread;
    RoundRobinRouter rr;
    FleetSim fleet(cfg, tenants, spread, rr, sgdrc_factory());
    fleet.begin();
    if (pause) {
      fleet.at(duration / 4, [&fleet] { fleet.set_be_paused(true); });
      fleet.at((3 * duration) / 4, [&fleet] { fleet.set_be_paused(false); });
    }
    fleet.run_until(duration);
    return fleet.finish().be_throughput();
  };
  EXPECT_LT(run_be(true), run_be(false));
}

TEST(FrontDoor, PriorityTenantShedsLast) {
  const TimeNs duration = 60 * kNsPerMs;
  FleetConfig cfg = overload_config(duration);
  cfg.front_door.admit_rate = 0.0;  // shed only, no bucket
  cfg.front_door.shed_depth = 6;
  auto tenants = mixed_tenants(2);
  tenants[0].spec.vgpu.priority = 2;  // service 0 is the premium tier
  SpreadPlacement spread;
  QosLoadAwareRouter router;
  FleetSim fleet(cfg, tenants, spread, router, sgdrc_factory());
  const auto m = fleet.run(heavy_trace(duration));
  const auto& fd = m.front_door;
  ASSERT_GE(fd.shed_by_service.size(), 2u);
  EXPECT_GT(fd.shed_by_service[1], 0u);
  const auto frac = [&](size_t s) {
    return static_cast<double>(fd.shed_by_service[s]) /
           static_cast<double>(fd.arrived_by_service[s]);
  };
  EXPECT_LT(frac(0), frac(1));
}

TEST(FrontDoor, RerunsAreBitIdentical) {
  const TimeNs duration = 60 * kNsPerMs;
  const auto run_once = [&] {
    SpreadPlacement spread;
    QosLoadAwareRouter router;
    FleetSim fleet(overload_config(duration), mixed_tenants(2), spread,
                   router, sgdrc_factory());
    const auto m = fleet.run(heavy_trace(duration));
    std::ostringstream os;
    os << tenant_digest(m) << "\ndoor " << m.front_door.admitted << ' '
       << m.front_door.rejected << ' ' << m.front_door.shed << ' '
       << m.front_door.retries << ' ' << m.front_door.dropped;
    return os.str();
  };
  EXPECT_EQ(run_once(), run_once());
}

// ------------------------------------------------- device failure ----

TEST(DeviceFailure, CordonsDrainsAndRecoversStrandedTenants) {
  const TimeNs duration = 60 * kNsPerMs;
  const auto& z = zoo();
  FleetConfig cfg = base_config(2, duration);
  std::vector<FleetTenantSpec> tenants{
      replicated(latency_sensitive_tenant(z.ls_a, z.iso_a), 1),
      replicated(best_effort_tenant(z.be_i), 2),
  };
  SpreadPlacement spread;
  LeastOutstandingRouter router;
  FleetSim fleet(cfg, tenants, spread, router, sgdrc_factory());
  ASSERT_EQ(fleet.replicas_of(0).size(), 1u);
  const DeviceId home = fleet.replicas_of(0)[0].device;

  fleet.begin();
  for (const auto& r : heavy_trace(duration)) {
    if (r.service != 0 || r.arrival >= duration) continue;
    fleet.at(r.arrival, [&fleet, r] { fleet.inject(0, r.arrival); });
  }
  fleet.at(duration / 3, [&fleet, home] { fleet.fail_device(home); });
  fleet.run_until(duration);
  const auto m = fleet.finish();

  EXPECT_TRUE(fleet.device_failed(home));
  // The stranded LS tenant was rescheduled onto the survivor, so its
  // traffic stayed routable through the failure.
  ASSERT_EQ(fleet.replicas_of(0).size(), 1u);
  EXPECT_NE(fleet.replicas_of(0)[0].device, home);
  EXPECT_GT(m.tenants[0].served, 0u);
  // Conservation across the cordon: everything arrived was served or is
  // still queued on the replacement replica.
  uint64_t outstanding = 0;
  for (const auto& rep : fleet.replicas_of(0)) {
    outstanding += fleet.outstanding(rep);
  }
  EXPECT_EQ(m.tenants[0].arrived, m.tenants[0].served + outstanding);
}

TEST(DeviceFailure, FailedDeviceRejectsNewReplicas) {
  FleetConfig cfg = base_config(2, 20 * kNsPerMs);
  SpreadPlacement spread;
  RoundRobinRouter rr;
  FleetSim fleet(cfg, mixed_tenants(1), spread, rr, sgdrc_factory());
  fleet.fail_device(1);
  EXPECT_TRUE(fleet.device_failed(1));
  EXPECT_FALSE(fleet.device_failed(0));
  EXPECT_THROW(fleet.add_replica(0, 1), std::runtime_error);
  fleet.fail_device(1);  // idempotent
  EXPECT_TRUE(fleet.device_failed(1));
}

}  // namespace
}  // namespace sgdrc::fleet
