// Tests for the reverse-engineering pipeline: probes (Algos 1–3), channel
// marking, permutation census, the DNN hash learner, and FGPU's baseline.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "gpusim/device.h"
#include "gpusim/gpu_spec.h"
#include "reveng/conflict.h"
#include "reveng/fgpu_xor.h"
#include "reveng/lut.h"
#include "reveng/marker.h"
#include "reveng/mlp.h"
#include "reveng/permutation.h"
#include "reveng/pipeline.h"
#include "reveng/probe_arena.h"

namespace sgdrc::reveng {
namespace {

using gpusim::GpuDevice;
using gpusim::GpuSpec;
using gpusim::kPartitionBytes;
using gpusim::PhysAddr;

GpuSpec noisy_test_gpu(double noise = 0.05) {
  GpuSpec s = gpusim::test_gpu();
  s.cache_noise_rate = noise;
  return s;
}

// --------------------------------------------------------- ProbeArena ----

TEST(ProbeArena, CoversRequestedFraction) {
  GpuDevice dev(gpusim::test_gpu(), 7);
  ProbeArena arena(dev, 0.5);
  EXPECT_NEAR(static_cast<double>(arena.bytes()) /
                  static_cast<double>(dev.spec().vram_bytes),
              0.5, 0.01);
}

TEST(ProbeArena, PaVaRoundTrip) {
  GpuDevice dev(gpusim::test_gpu(), 7);
  ProbeArena arena(dev, 0.25);
  for (uint64_t off = 0; off < arena.bytes(); off += 37 * kPartitionBytes) {
    const PhysAddr pa = dev.pa_of(arena.base() + off);
    ASSERT_TRUE(arena.owns_pa(pa));
    ASSERT_EQ(dev.pa_of(arena.va_of(pa)), pa);
  }
}

TEST(ProbeArena, RejectsForeignPa) {
  GpuDevice dev(gpusim::test_gpu(), 7);
  ProbeArena arena(dev, 0.25);
  // Find an unowned physical partition (75% of VRAM is outside).
  for (uint64_t p = 0;; ++p) {
    const PhysAddr pa = p * kPartitionBytes;
    if (!arena.owns_pa(pa)) {
      EXPECT_THROW(arena.va_of(pa), ConfigError);
      break;
    }
  }
}

// ----------------------------------------------------- ConflictProber ----

class ProberTest : public ::testing::Test {
 protected:
  ProberTest() : dev_(gpusim::test_gpu(), 11), arena_(dev_, 0.9),
                 prober_(arena_) {
    cal_ = prober_.calibrate(2048, 5);
  }
  GpuDevice dev_;
  ProbeArena arena_;
  ConflictProber prober_;
  CalibrationResult cal_;
};

TEST_F(ProberTest, CalibrationSeparatesHitAndMiss) {
  EXPECT_GT(cal_.l2_miss_ns, cal_.l2_hit_ns);
  EXPECT_GT(cal_.l2_miss_threshold, cal_.l2_hit_ns);
  EXPECT_LT(cal_.l2_miss_threshold, cal_.l2_miss_ns);
  EXPECT_GT(cal_.bank_conflict_threshold, cal_.pair_baseline_ns);
}

TEST_F(ProberTest, BankConflictProbeMatchesOracle) {
  const auto& oracle = dev_.oracle();
  // Evaluate precision/recall of Algorithm 1 on candidate pairs.
  int tp = 0, fp = 0, fn = 0, tn = 0;
  const PhysAddr base = dev_.pa_of(arena_.base());
  arena_.for_each_partition(0, [&](PhysAddr pa) {
    if (pa == base) return true;
    if (tp + fp + fn + tn >= 3000) return false;
    const bool truth = oracle.channel_of(pa) == oracle.channel_of(base) &&
                       oracle.bank_of(pa) == oracle.bank_of(base) &&
                       oracle.row_of(pa) != oracle.row_of(base);
    const bool measured = prober_.is_dram_bank_conflicted(base, pa);
    tp += truth && measured;
    fp += !truth && measured;
    fn += truth && !measured;
    tn += !truth && !measured;
    return true;
  });
  EXPECT_EQ(fp, 0);
  EXPECT_EQ(fn, 0);
  EXPECT_GT(tp, 5);  // conflicts exist in a 3000-partition scan
}

TEST_F(ProberTest, DramConflictAddrsShareChannel) {
  const PhysAddr base = dev_.pa_of(arena_.base());
  const auto conflicts = prober_.find_dram_conflict_addrs(base, 16);
  ASSERT_GE(conflicts.size(), 8u);
  const auto& oracle = dev_.oracle();
  for (const PhysAddr pa : conflicts) {
    EXPECT_EQ(oracle.channel_of(pa), oracle.channel_of(base));
  }
}

TEST_F(ProberTest, FillEvictsOwnChannelOnly) {
  // Build a fill set for base's channel from DRAM conflicts, then verify
  // Algorithm 3's core claim: it evicts same-channel addresses and leaves
  // other channels' lines alone (Fig. 11 right).
  const PhysAddr base = dev_.pa_of(arena_.base());
  const auto partitions = prober_.find_dram_conflict_addrs(base, 200);
  std::vector<PhysAddr> fill;
  for (const PhysAddr p : partitions) {
    for (uint64_t off = 0; off < kPartitionBytes; off += 128) {
      fill.push_back(p + off);
    }
  }
  const auto& oracle = dev_.oracle();
  int same_evicted = 0, same_total = 0, other_evicted = 0, other_total = 0;
  arena_.for_each_partition(1, [&](PhysAddr pa) {
    if (same_total >= 20 && other_total >= 20) return false;
    const bool same = oracle.channel_of(pa) == oracle.channel_of(base);
    if (same && same_total < 20) {
      ++same_total;
      same_evicted += prober_.fill_evicts(pa, fill);
    } else if (!same && other_total < 20) {
      ++other_total;
      other_evicted += prober_.fill_evicts(pa, fill);
    }
    return true;
  });
  EXPECT_EQ(same_evicted, same_total);
  EXPECT_EQ(other_evicted, 0);
}

TEST_F(ProberTest, CacheConflictAddrsShareChannelAndSet) {
  const PhysAddr base = dev_.pa_of(arena_.base());
  const auto conflicts = prober_.find_cache_conflict_addrs(base, 4);
  ASSERT_GE(conflicts.size(), 1u);
  const auto& oracle = dev_.oracle();
  for (const PhysAddr pa : conflicts) {
    EXPECT_EQ(oracle.channel_of(pa), oracle.channel_of(base));
    EXPECT_EQ(oracle.l2_set_of(pa), oracle.l2_set_of(base));
  }
}

TEST_F(ProberTest, PchaseRefreshEquivalentToFlush) {
  // The simulator's O(1) flush must be observably identical to the
  // hardware-realistic pointer-chase refresh: in both cases a previously
  // resident line misses afterwards.
  const PhysAddr pa = dev_.pa_of(arena_.base() + 123 * kPartitionBytes);

  arena_.read_pa(pa);
  prober_.refresh_l2();
  const auto after_flush = arena_.read_pa(pa);
  EXPECT_FALSE(after_flush.l2_hit);

  arena_.read_pa(pa);
  prober_.refresh_l2_via_pchase();
  const auto after_pchase = arena_.read_pa(pa);
  EXPECT_FALSE(after_pchase.l2_hit);
}

// ------------------------------------------------------ ChannelMarker ----

TEST(ChannelMarker, LabelsAgreeWithOracle) {
  GpuDevice dev(gpusim::test_gpu(), 13);
  ProbeArena arena(dev, 0.9);
  ConflictProber prober(arena);
  prober.calibrate(2048, 3);
  ChannelMarker marker(arena, prober);
  marker.build(dev.spec().num_channels);

  Rng rng(21);
  const uint64_t parts = arena.bytes() >> gpusim::kPartitionBits;
  std::vector<int> discovered, truth;
  for (int i = 0; i < 300; ++i) {
    const PhysAddr pa =
        dev.pa_of(arena.base() + rng.uniform_u64(parts) * kPartitionBytes);
    const auto label = marker.label(pa);
    ASSERT_TRUE(label.has_value());
    discovered.push_back(static_cast<int>(*label));
    truth.push_back(static_cast<int>(dev.oracle().channel_of(pa)));
  }
  const auto map = align_labels(discovered, truth, dev.spec().num_channels);
  int ok = 0;
  for (size_t i = 0; i < discovered.size(); ++i) {
    ok += map[discovered[i]] == truth[i];
  }
  EXPECT_EQ(ok, 300);  // noise-free part: marking is exact
}

TEST(ChannelMarker, MajorityDenoisesNoisyGpu) {
  GpuDevice dev(noisy_test_gpu(0.05), 17);
  ProbeArena arena(dev, 0.9);
  ConflictProber prober(arena);
  prober.calibrate(2048, 3);
  ChannelMarker marker(arena, prober);
  marker.build(dev.spec().num_channels);

  Rng rng(23);
  const uint64_t parts = arena.bytes() >> gpusim::kPartitionBits;
  std::vector<int> majority3, truth;
  int single_wrong = 0, n = 200;
  for (int i = 0; i < n; ++i) {
    const PhysAddr pa =
        dev.pa_of(arena.base() + rng.uniform_u64(parts) * kPartitionBytes);
    const int t = static_cast<int>(dev.oracle().channel_of(pa));
    truth.push_back(t);
    const auto maj = marker.label(pa, 5);
    majority3.push_back(maj ? static_cast<int>(*maj) : -1);
    const auto single = marker.label_single_trial(pa);
    single_wrong += !single.has_value();  // unlabeled counts as wrong here
  }
  const auto map = align_labels(majority3, truth, dev.spec().num_channels);
  int maj_ok = 0;
  for (int i = 0; i < n; ++i) {
    maj_ok += majority3[i] >= 0 && map[majority3[i]] == truth[i];
  }
  // ≥97% with majority voting — the §5.3 noise-tolerance claim.
  EXPECT_GE(maj_ok, n * 97 / 100);
}

// ------------------------------------------------------------- Census ----

TEST(PermutationCensus, RecoversPairStructure) {
  // Oracle labels over a contiguous window on an Ampere-like part.
  const GpuSpec spec = gpusim::rtx_a2000();
  const gpusim::AddressMapping oracle(spec);
  std::vector<int> labels;
  for (uint64_t p = 0; p < 16384; ++p) {
    labels.push_back(static_cast<int>(oracle.channel_of(p * kPartitionBytes)));
  }
  const auto census = analyze_channel_labels(labels, spec.num_channels);
  EXPECT_EQ(census.region_size, 2u);  // Tab. 4: A2000 pairs
  ASSERT_EQ(census.groups.size(), 3u);
  std::set<unsigned> seen;
  for (const auto& g : census.groups) {
    EXPECT_EQ(g.size(), 2u);
    for (unsigned c : g) seen.insert(c);
  }
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_GE(census.pattern_counts.size(), 2u);
  EXPECT_LT(census.pattern_uniform_deviation, 0.25);
}

TEST(PermutationCensus, RecoversQuadStructure) {
  const GpuSpec spec = gpusim::tesla_p40();
  const gpusim::AddressMapping oracle(spec);
  std::vector<int> labels;
  for (uint64_t p = 0; p < 32768; ++p) {
    labels.push_back(static_cast<int>(oracle.channel_of(p * kPartitionBytes)));
  }
  const auto census = analyze_channel_labels(labels, spec.num_channels);
  EXPECT_EQ(census.region_size, 4u);  // Tab. 4: P40 quads
  EXPECT_EQ(census.groups.size(), 3u);
  EXPECT_GE(census.pattern_counts.size(), 4u);
}

TEST(PermutationCensus, ToleratesLabelNoise) {
  const GpuSpec spec = gpusim::rtx_a2000();
  const gpusim::AddressMapping oracle(spec);
  Rng rng(31);
  std::vector<int> labels;
  for (uint64_t p = 0; p < 16384; ++p) {
    int l = static_cast<int>(oracle.channel_of(p * kPartitionBytes));
    if (rng.bernoulli(0.03)) {
      l = static_cast<int>(rng.uniform_u64(spec.num_channels));
    }
    labels.push_back(l);
  }
  const auto census = analyze_channel_labels(labels, spec.num_channels);
  EXPECT_EQ(census.region_size, 2u);
  EXPECT_EQ(census.groups.size(), 3u);
  EXPECT_GT(census.inconsistent_fraction, 0.0);
  EXPECT_LT(census.inconsistent_fraction, 0.15);
}

// ---------------------------------------------------------------- MLP ----

TEST(Mlp, LearnsXor) {
  // Sanity: a 2-layer net must solve XOR (FGPU's linear model cannot).
  Mlp net({2, 8, 2}, 5);
  std::vector<float> x{-1, -1, -1, 1, 1, -1, 1, 1};
  std::vector<int> y{0, 1, 1, 0};
  Mlp::TrainOptions opt;
  opt.epochs = 500;
  opt.batch = 4;
  opt.lr = 0.1;
  const double acc = net.train(x, y, opt);
  EXPECT_DOUBLE_EQ(acc, 1.0);
}

TEST(Mlp, DeterministicGivenSeed) {
  std::vector<float> x;
  std::vector<int> y;
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const uint64_t v = rng.next_u64() & 0xF;
    for (int b = 0; b < 4; ++b) x.push_back((v >> b) & 1 ? 1.f : -1.f);
    y.push_back(static_cast<int>(v % 3));
  }
  Mlp a({4, 16, 3}, 9), b({4, 16, 3}, 9);
  Mlp::TrainOptions opt;
  opt.epochs = 30;
  a.train(x, y, opt);
  b.train(x, y, opt);
  for (int i = 0; i < 200; ++i) {
    ASSERT_EQ(a.predict(&x[i * 4]), b.predict(&x[i * 4]));
  }
}

TEST(Mlp, LearnsChannelHashFromOracleSamples) {
  // The §5.3 claim in miniature: bits 10..34 → channel is learnable.
  const GpuSpec spec = gpusim::test_gpu();
  const gpusim::AddressMapping oracle(spec);
  Rng rng(41);
  const uint64_t parts = spec.partitions();
  const size_t n_train = 9000, n_test = 2000;
  std::vector<float> xtr(n_train * Mlp::kAddressFeatures);
  std::vector<int> ytr(n_train);
  std::vector<float> xte(n_test * Mlp::kAddressFeatures);
  std::vector<int> yte(n_test);
  for (size_t i = 0; i < n_train + n_test; ++i) {
    const PhysAddr pa = rng.uniform_u64(parts) * kPartitionBytes;
    const int label = static_cast<int>(oracle.channel_of(pa));
    if (i < n_train) {
      Mlp::encode_pa(pa, &xtr[i * Mlp::kAddressFeatures]);
      ytr[i] = label;
    } else {
      Mlp::encode_pa(pa, &xte[(i - n_train) * Mlp::kAddressFeatures]);
      yte[i - n_train] = label;
    }
  }
  Mlp net({Mlp::kAddressFeatures, 96, 48, spec.num_channels}, 77);
  Mlp::TrainOptions opt;
  opt.epochs = 40;
  opt.batch = 32;
  opt.lr = 0.02;
  net.train(xtr, ytr, opt);
  EXPECT_GT(net.accuracy(xte, yte), 0.99);
}

TEST(Mlp, RejectsBadShapes) {
  Mlp net({4, 8, 2}, 1);
  std::vector<float> x(7);  // not a multiple of 4
  EXPECT_THROW(net.predict_batch(x), ConfigError);
  std::vector<int> y{0, 5};  // label out of range
  std::vector<float> x2(8);
  EXPECT_THROW(net.train(x2, y, {}), ConfigError);
}

// ---------------------------------------------------------------- LUT ----

TEST(ChannelLut, FromOracleFunctionRoundTrip) {
  const GpuSpec spec = gpusim::test_gpu();
  const gpusim::AddressMapping oracle(spec);
  const auto lut = ChannelLut::from_function(
      [&](PhysAddr pa) { return static_cast<int>(oracle.channel_of(pa)); },
      0, 8ull << 20, spec.num_channels);
  EXPECT_DOUBLE_EQ(lut_oracle_accuracy(lut, oracle, 4000, 1), 1.0);
}

TEST(ChannelLut, AlignmentFixesPermutedLabels) {
  const GpuSpec spec = gpusim::test_gpu();
  const gpusim::AddressMapping oracle(spec);
  // Labels permuted by a fixed rotation: alignment must undo it.
  const auto lut = ChannelLut::from_function(
      [&](PhysAddr pa) {
        return static_cast<int>((oracle.channel_of(pa) + 1) %
                                spec.num_channels);
      },
      0, 8ull << 20, spec.num_channels);
  EXPECT_DOUBLE_EQ(lut_oracle_accuracy(lut, oracle, 4000, 1), 1.0);
}

TEST(ChannelLut, OutOfRangeThrows) {
  ChannelLut lut(0, 1ull << 20, 4);
  EXPECT_THROW(lut.channel_of(2ull << 20), ConfigError);
  EXPECT_THROW(lut.set(0, 9), ConfigError);
}

// ----------------------------------------------------------- FgpuXor ----

std::vector<std::pair<PhysAddr, unsigned>> oracle_samples(
    const GpuSpec& spec, size_t n, uint64_t seed) {
  const gpusim::AddressMapping oracle(spec);
  Rng rng(seed);
  std::vector<std::pair<PhysAddr, unsigned>> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const PhysAddr pa = rng.uniform_u64(spec.partitions()) * kPartitionBytes;
    out.emplace_back(pa, oracle.channel_of(pa));
  }
  return out;
}

TEST(FgpuXor, CracksLinearGtx1080) {
  const GpuSpec spec = gpusim::gtx1080();
  const auto samples = oracle_samples(spec, 500, 3);
  const auto model = fgpu_solve(samples, spec.num_channels);
  ASSERT_TRUE(model.success) << model.failure;
  // Perfect generalisation on fresh addresses.
  const auto fresh = oracle_samples(spec, 2000, 4);
  EXPECT_DOUBLE_EQ(fgpu_accuracy(model, fresh), 1.0);
}

TEST(FgpuXor, FailsOnNonLinearParts) {
  // §3.2: "We attempted to reverse engineer other GPUs using FGPU's
  // approach, but all failed."
  for (const GpuSpec& spec : {gpusim::tesla_p40(), gpusim::rtx_a2000()}) {
    const auto samples = oracle_samples(spec, 800, 5);
    const auto model = fgpu_solve(samples, spec.num_channels);
    EXPECT_FALSE(model.success) << spec.name;
  }
}

TEST(FgpuXor, OneNoisySamplePollutesTheSystem) {
  // §3.2: "Even one false positive sample can pollute the equation system."
  const GpuSpec spec = gpusim::gtx1080();
  auto samples = oracle_samples(spec, 500, 7);
  samples[123].second = (samples[123].second + 1) % spec.num_channels;
  const auto model = fgpu_solve(samples, spec.num_channels);
  EXPECT_FALSE(model.success);
}

TEST(FgpuXor, RejectsNonPowerOfTwoChannels) {
  const auto samples = oracle_samples(gpusim::tesla_p40(), 100, 9);
  const auto model = fgpu_solve(samples, 12);
  EXPECT_FALSE(model.success);
  EXPECT_NE(model.failure.find("power of two"), std::string::npos);
}

// ------------------------------------------------------- HashCracker ----

TEST(HashCracker, EndToEndOnCleanPart) {
  GpuDevice dev(gpusim::test_gpu(), 51);
  PipelineOptions opt;
  opt.samples = 6000;
  opt.hidden = {64, 32};
  opt.train.epochs = 60;
  HashCracker cracker(dev, opt);
  const auto report = cracker.run();
  EXPECT_EQ(report.channels, dev.spec().num_channels);
  EXPECT_EQ(report.samples_collected, 6000u);
  EXPECT_GT(report.holdout_accuracy, 0.97);

  const auto lut = cracker.build_lut(0, 64ull << 20);
  EXPECT_GT(lut_oracle_accuracy(lut, dev.oracle(), 5000, 1), 0.97);
}

TEST(HashCracker, SurvivesAmpereNoise) {
  GpuDevice dev(noisy_test_gpu(0.05), 53);
  PipelineOptions opt;
  opt.samples = 6000;
  opt.hidden = {64, 32};
  opt.train.epochs = 60;
  HashCracker cracker(dev, opt);
  const auto report = cracker.run();
  EXPECT_GT(report.single_trial_noise, 0.0);  // raw probes are noisy
  const auto lut = cracker.build_lut(0, 64ull << 20);
  // Majority marking + DNN smoothing still beat the raw noise level.
  EXPECT_GT(lut_oracle_accuracy(lut, dev.oracle(), 5000, 1), 0.95);
}

}  // namespace
}  // namespace sgdrc::reveng
