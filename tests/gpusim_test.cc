// Tests for the simulated GPU substrate: spec presets (Tab. 1), the hidden
// address mapping (§5.2 structure), L2/DRAM behaviour, and the MMU.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "common/stats.h"
#include "gpusim/device.h"
#include "gpusim/dram.h"
#include "gpusim/gpu_spec.h"
#include "gpusim/hash_mapping.h"
#include "gpusim/l2cache.h"
#include "gpusim/mem_system.h"
#include "gpusim/page_table.h"
#include "gpusim/resources.h"

namespace sgdrc::gpusim {
namespace {

// ------------------------------------------------------------ GpuSpec ----

TEST(GpuSpec, Table1Values) {
  const GpuSpec g1080 = gtx1080();
  EXPECT_EQ(g1080.vram_bytes, 8ull << 30);
  EXPECT_EQ(g1080.vram_bus_width_bits, 256u);
  EXPECT_EQ(g1080.num_channels, 8u);

  const GpuSpec p40 = tesla_p40();
  EXPECT_EQ(p40.vram_bytes, 24ull << 30);
  EXPECT_EQ(p40.vram_bus_width_bits, 384u);
  EXPECT_EQ(p40.num_channels, 12u);

  const GpuSpec a2000 = rtx_a2000();
  EXPECT_EQ(a2000.vram_bytes, 12ull << 30);
  EXPECT_EQ(a2000.vram_bus_width_bits, 192u);
  EXPECT_EQ(a2000.num_channels, 6u);
}

TEST(GpuSpec, ChannelCountMatchesBusWidthRule) {
  // Tab. 1 cross-validation: #channels = bus width / width per GDDR unit.
  for (const GpuSpec& s : {gtx1080(), tesla_p40(), rtx_a2000()}) {
    EXPECT_EQ(s.num_channels,
              s.vram_bus_width_bits / s.bus_width_per_gddr_bits)
        << s.name;
  }
}

TEST(GpuSpec, ColoringGranularityRules) {
  // Tab. 4: max granularity = # contiguous channels (group size).
  EXPECT_EQ(gtx1080().max_coloring_granularity_kib(), 4u);
  EXPECT_EQ(tesla_p40().max_coloring_granularity_kib(), 4u);
  EXPECT_EQ(rtx_a2000().max_coloring_granularity_kib(), 2u);
  EXPECT_EQ(rtx_a2000().min_coloring_granularity_kib(), 1u);
}

TEST(GpuSpec, NoiseRatesPerArchitecture) {
  EXPECT_NEAR(tesla_p40().cache_noise_rate, 0.01, 1e-9);   // Pascal ~1%
  EXPECT_NEAR(rtx_a2000().cache_noise_rate, 0.05, 1e-9);   // Ampere ~5%
}

// ----------------------------------------------------- AddressMapping ----

class MappingTest : public ::testing::TestWithParam<GpuSpec> {};

INSTANTIATE_TEST_SUITE_P(AllGpus, MappingTest,
                         ::testing::Values(gtx1080(), tesla_p40(),
                                           rtx_a2000(), test_gpu()),
                         [](const auto& inf) {
                           std::string n = inf.param.name;
                           for (char& c : n)
                             if (!isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           return n;
                         });

TEST_P(MappingTest, PartitionIsChannelAtom) {
  // §5.2: each contiguous 1 KiB belongs to exactly one channel.
  const AddressMapping m(GetParam());
  for (uint64_t part = 0; part < 512; ++part) {
    const PhysAddr base = part * kPartitionBytes;
    const unsigned ch = m.channel_of(base);
    for (uint64_t off = 0; off < kPartitionBytes; off += 64) {
      ASSERT_EQ(m.channel_of(base + off), ch);
    }
  }
}

TEST_P(MappingTest, ChannelsAreUniformlyDistributed) {
  // §5.2: occurrence frequency of each channel ID is equal across VRAM.
  const GpuSpec spec = GetParam();
  const AddressMapping m(spec);
  CategoryHistogram h(spec.num_channels);
  const uint64_t parts = std::min<uint64_t>(spec.partitions(), 200000);
  for (uint64_t p = 0; p < parts; ++p) {
    h.add(m.channel_of(p * kPartitionBytes));
  }
  EXPECT_LT(h.max_uniform_deviation(), 0.08) << spec.name;
}

TEST_P(MappingTest, GroupRegionsAreAligned) {
  // A group-size run of partitions starting at an aligned boundary maps
  // to the channels of exactly one group (Tab. 4's "contiguous channels").
  const GpuSpec spec = GetParam();
  if (spec.linear_hash) GTEST_SKIP() << "layout rule is for the perm family";
  const AddressMapping m(spec);
  const unsigned S = spec.channel_group_size;
  for (uint64_t region = 0; region < 4096; ++region) {
    std::set<unsigned> chans;
    for (unsigned k = 0; k < S; ++k) {
      chans.insert(m.channel_of((region * S + k) * kPartitionBytes));
    }
    ASSERT_EQ(chans.size(), S) << "region " << region;
    // All channels of one group: same group id.
    std::set<unsigned> groups;
    for (unsigned c : chans) groups.insert(m.group_of_channel(c));
    ASSERT_EQ(groups.size(), 1u) << "region " << region;
  }
}

TEST_P(MappingTest, HashDependsOnlyOnBits10To34) {
  // Fig. 10: bits below 10 / above 34 do not affect the channel.
  const AddressMapping m(GetParam());
  for (uint64_t p = 0; p < 2000; ++p) {
    const PhysAddr base = p * kPartitionBytes;
    EXPECT_EQ(m.channel_of(base), m.channel_of(base + 512));
    EXPECT_EQ(m.channel_of(base), m.channel_of(base + 1));
  }
}

TEST_P(MappingTest, DeterministicAcrossInstances) {
  const GpuSpec spec = GetParam();
  const AddressMapping a(spec), b(spec);
  for (uint64_t p = 0; p < 10000; ++p) {
    ASSERT_EQ(a.channel_of(p * kPartitionBytes),
              b.channel_of(p * kPartitionBytes));
  }
}

TEST(AddressMapping, LinearFamilyIsXorLinear) {
  // f(a ^ b) == f(a) ^ f(b) for partition-aligned inputs — the property
  // FGPU's equation system needs (§3.2).
  const AddressMapping m(gtx1080());
  Rng rng(77);
  for (int i = 0; i < 2000; ++i) {
    const uint64_t a = rng.uniform_u64(1ull << 23) << kPartitionBits;
    const uint64_t b = rng.uniform_u64(1ull << 23) << kPartitionBits;
    EXPECT_EQ(m.channel_of(a ^ b), m.channel_of(a) ^ m.channel_of(b));
  }
}

TEST(AddressMapping, PermutationFamilyIsNotXorLinear) {
  // The non-linear family must violate the XOR identity somewhere —
  // this is the precise property that breaks FGPU on P40/A2000.
  for (const GpuSpec& spec : {tesla_p40(), rtx_a2000()}) {
    const AddressMapping m(spec);
    Rng rng(78);
    int violations = 0;
    for (int i = 0; i < 2000; ++i) {
      const uint64_t a = rng.uniform_u64(1ull << 23) << kPartitionBits;
      const uint64_t b = rng.uniform_u64(1ull << 23) << kPartitionBits;
      const unsigned lhs = m.channel_of(a ^ b);
      const unsigned rhs = m.channel_of(a) ^ m.channel_of(b);
      violations += lhs != rhs;
    }
    EXPECT_GT(violations, 100) << spec.name;
  }
}

TEST(AddressMapping, DifferentKeysGiveDifferentLayouts) {
  GpuSpec a = rtx_a2000();
  GpuSpec b = rtx_a2000();
  b.hash_key = a.hash_key + 1;
  const AddressMapping ma(a), mb(b);
  int diff = 0;
  for (uint64_t p = 0; p < 10000; ++p) {
    diff += ma.channel_of(p * kPartitionBytes) !=
            mb.channel_of(p * kPartitionBytes);
  }
  EXPECT_GT(diff, 1000);
}

TEST_P(MappingTest, BankWithinRange) {
  const GpuSpec spec = GetParam();
  const AddressMapping m(spec);
  for (uint64_t p = 0; p < 10000; ++p) {
    ASSERT_LT(m.bank_of(p * kPartitionBytes), spec.dram_banks_per_channel);
  }
}

TEST_P(MappingTest, L2SetGeometry) {
  const GpuSpec spec = GetParam();
  const AddressMapping m(spec);
  EXPECT_EQ(static_cast<uint64_t>(m.l2_sets()) * m.l2_ways() *
                spec.l2_line_bytes * spec.num_channels,
            spec.l2_bytes);
  for (uint64_t i = 0; i < 10000; ++i) {
    ASSERT_LT(m.l2_set_of(i * 128), m.l2_sets());
  }
}

// ------------------------------------------------------------ L2Cache ----

TEST(L2Cache, HitAfterFill) {
  const GpuSpec spec = test_gpu();
  const AddressMapping m(spec);
  L2Cache l2(m, 0.0, 1);
  EXPECT_FALSE(l2.read(0x1000));
  EXPECT_TRUE(l2.read(0x1000));
  EXPECT_TRUE(l2.probe(0x1000));
}

TEST(L2Cache, LruEvictsOldest) {
  const GpuSpec spec = test_gpu();
  const AddressMapping m(spec);
  L2Cache l2(m, 0.0, 1);
  // Find ways+1 addresses in the same (channel, set).
  const unsigned target_ch = m.channel_of(0);
  const unsigned target_set = m.l2_set_of(0);
  std::vector<PhysAddr> same_set{0};
  for (PhysAddr pa = 128; same_set.size() < m.l2_ways() + 1; pa += 128) {
    if (m.channel_of(pa) == target_ch && m.l2_set_of(pa) == target_set) {
      same_set.push_back(pa);
    }
  }
  for (PhysAddr pa : same_set) l2.read(pa);  // fills ways+1 lines
  EXPECT_FALSE(l2.probe(same_set[0]));       // first line evicted (LRU)
  EXPECT_TRUE(l2.probe(same_set.back()));
}

TEST(L2Cache, FlushEmptiesCache) {
  const GpuSpec spec = test_gpu();
  const AddressMapping m(spec);
  L2Cache l2(m, 0.0, 1);
  l2.read(0x2000);
  l2.flush();
  EXPECT_FALSE(l2.probe(0x2000));
}

TEST(L2Cache, NoiseBypassesSomeFills) {
  const GpuSpec spec = test_gpu();
  const AddressMapping m(spec);
  L2Cache noisy(m, 0.10, 42);
  int bypassed = 0;
  for (uint64_t i = 0; i < 5000; ++i) {
    const PhysAddr pa = i * 128;
    noisy.read(pa);
    bypassed += !noisy.probe(pa);
  }
  // ~10% of fills skipped (minus later-eviction noise, which this
  // working set is too small to trigger).
  EXPECT_NEAR(bypassed, 500, 120);
}

// --------------------------------------------------------------- Dram ----

TEST(Dram, RowBufferHitTracking) {
  const GpuSpec spec = test_gpu();
  const AddressMapping m(spec);
  Dram dram(m);
  const PhysAddr a = 0;
  EXPECT_FALSE(dram.access(a));  // cold: row miss
  EXPECT_TRUE(dram.access(a));   // open row
  EXPECT_TRUE(dram.access(a + 64));
  dram.reset();
  EXPECT_FALSE(dram.access(a));
}

// ---------------------------------------------------------- MemSystem ----

TEST(MemSystem, HitIsFasterThanMiss) {
  MemSystem ms(test_gpu());
  const auto miss = ms.read(0x4000);
  const auto hit = ms.read(0x4000);
  EXPECT_FALSE(miss.l2_hit);
  EXPECT_TRUE(hit.l2_hit);
  EXPECT_GT(miss.latency, hit.latency);
}

TEST(MemSystem, PairReadSeparatesBankConflicts) {
  // The latency gap Algorithm 1 relies on: same channel + same bank +
  // different row must be measurably slower than everything else.
  const GpuSpec spec = test_gpu();
  MemSystem ms(spec);
  const auto& oracle = ms.oracle();

  // Find a (same ch, same bank, diff row) pair and a (diff ch) pair.
  PhysAddr base = 0;
  PhysAddr conflict = 0, unrelated = 0;
  for (PhysAddr pa = kPartitionBytes; pa < (64ull << 20); pa += kPartitionBytes) {
    const bool same_ch = oracle.channel_of(pa) == oracle.channel_of(base);
    if (!conflict && same_ch &&
        oracle.bank_of(pa) == oracle.bank_of(base) &&
        oracle.row_of(pa) != oracle.row_of(base)) {
      conflict = pa;
    }
    if (!unrelated && !same_ch) unrelated = pa;
    if (conflict && unrelated) break;
  }
  ASSERT_NE(conflict, 0u);
  ASSERT_NE(unrelated, 0u);

  ms.flush_l2();
  ms.reset_dram();
  const TimeNs t_conflict = ms.timed_pair_read(base, conflict);
  ms.flush_l2();
  ms.reset_dram();
  const TimeNs t_clean = ms.timed_pair_read(base, unrelated);
  EXPECT_GT(t_conflict, t_clean + spec.bank_conflict_ns / 2);
}

// ---------------------------------------------------------- PageTable ----

TEST(PageTable, TranslateRoundTrip) {
  PageTable pt(64ull << 20, 1);
  const VirtAddr va = pt.alloc(3 * kPageBytes + 100);
  for (uint64_t off = 0; off < 4 * kPageBytes; off += 777) {
    const PhysAddr pa = pt.translate(va + off);
    EXPECT_EQ(page_offset(pa), page_offset(va + off));
  }
}

TEST(PageTable, UnmappedFaults) {
  PageTable pt(64ull << 20, 1);
  EXPECT_THROW(pt.translate(0xdead000), ConfigError);
}

TEST(PageTable, RandomPlacement) {
  // Different seeds => different physical layout (process restart).
  PageTable a(64ull << 20, 1), b(64ull << 20, 2);
  const VirtAddr va_a = a.alloc(32 * kPageBytes);
  const VirtAddr vb = b.alloc(32 * kPageBytes);
  int same = 0;
  for (int p = 0; p < 32; ++p) {
    same += a.translate(va_a + p * kPageBytes) ==
            b.translate(vb + p * kPageBytes);
  }
  EXPECT_LT(same, 4);
}

TEST(PageTable, FreeReturnsFrames) {
  PageTable pt(16ull << 20, 3);
  const uint64_t before = pt.free_frames();
  const VirtAddr va = pt.alloc(8 * kPageBytes);
  EXPECT_EQ(pt.free_frames(), before - 8);
  pt.free(va, 8 * kPageBytes);
  EXPECT_EQ(pt.free_frames(), before);
}

TEST(PageTable, ExternalFramesSurviveUnmap) {
  PageTable pt(16ull << 20, 4);
  const uint64_t pfn = pt.take_free_frame();
  const uint64_t free_after_take = pt.free_frames();
  const VirtAddr va = pt.alloc_va(kPageBytes);
  pt.map_page(va, pfn);
  EXPECT_EQ(pt.translate(va), pfn << kPageBits);
  pt.unmap_page(va);
  // The externally owned frame is NOT put back on the free list.
  EXPECT_EQ(pt.free_frames(), free_after_take);
}

TEST(PageTable, ExhaustionThrows) {
  PageTable pt(4 * kPageBytes, 5);
  pt.alloc(4 * kPageBytes);
  EXPECT_THROW(pt.alloc(kPageBytes), ConfigError);
}

// ------------------------------------------------------------- Device ----

TEST(GpuDevice, RestartChangesVaToChannelMapping) {
  // §5.1: the virtual→channel mapping changes each time the program
  // restarts, which is why reverse engineering works on physical addresses.
  GpuDevice d1(test_gpu(), /*process_seed=*/111);
  GpuDevice d2(test_gpu(), /*process_seed=*/222);
  const VirtAddr va1 = d1.malloc(256 * kPageBytes);
  const VirtAddr va2 = d2.malloc(256 * kPageBytes);
  int same = 0, total = 0;
  for (uint64_t off = 0; off < 256 * kPageBytes; off += kPartitionBytes) {
    same += d1.oracle().channel_of(d1.pa_of(va1 + off)) ==
            d2.oracle().channel_of(d2.pa_of(va2 + off));
    ++total;
  }
  // Channels agree only at chance level (~1/num_channels), not ~100%.
  EXPECT_LT(same, total / 2);
}

TEST(GpuDevice, OracleStableWithinProcess) {
  GpuDevice d(test_gpu(), 9);
  const VirtAddr va = d.malloc(kPageBytes);
  const PhysAddr pa = d.pa_of(va);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(d.pa_of(va), pa);
  }
}

TEST(Resources, FullWidthMasksAreAllOnes) {
  // 32-channel / 64-TPC parts must not trip the 1<<width UB; the helpers
  // return the all-ones mask instead.
  EXPECT_EQ(all_channels(32), ~ChannelSet{0});
  EXPECT_EQ(channel_count(all_channels(32)), 32u);
  EXPECT_EQ(full_tpc_mask(64), ~TpcMask{0});
  EXPECT_EQ(tpc_count(full_tpc_mask(64)), 64u);
  EXPECT_EQ(tpc_range(0, 64), ~TpcMask{0});
  // Smaller widths keep their exact semantics.
  EXPECT_EQ(all_channels(6), 0x3Fu);
  EXPECT_EQ(full_tpc_mask(30), (TpcMask{1} << 30) - 1);
  EXPECT_EQ(tpc_range(4, 2), TpcMask{0x30});
  EXPECT_EQ(tpc_range(10, 0), TpcMask{0});
  // Out-of-range widths are still rejected.
  EXPECT_THROW(all_channels(0), ConfigError);
  EXPECT_THROW(all_channels(33), ConfigError);
  EXPECT_THROW(full_tpc_mask(65), ConfigError);
  EXPECT_THROW(tpc_range(60, 5), ConfigError);
}

}  // namespace
}  // namespace sgdrc::gpusim
