// Tests for the driver layer (UVM colored pool, SPT writes, smctrl masks)
// and the coloring layer (translate arithmetic, granularity rules, kernel
// transformer). The end-to-end property here is the paper's §6 claim:
// a colored buffer's every access lands on its assigned channels.
#include <gtest/gtest.h>

#include <set>

#include "coloring/rules.h"
#include "coloring/transformer.h"
#include "coloring/translate.h"
#include "driver/smctrl.h"
#include "driver/uvm_pool.h"
#include "gpusim/device.h"
#include "gpusim/gpu_spec.h"

namespace sgdrc {
namespace {

using driver::ColoredBuffer;
using driver::UvmMemoryPool;
using driver::UvmPoolOptions;
using gpusim::all_channels;
using gpusim::channel_bit;
using gpusim::ChannelSet;
using gpusim::GpuDevice;
using gpusim::GpuSpec;
using gpusim::kPageBytes;
using gpusim::kPartitionBytes;

UvmPoolOptions oracle_pool_options(GpuDevice& dev, uint64_t bytes,
                                   unsigned gran_kib) {
  UvmPoolOptions opt;
  opt.pool_bytes = bytes;
  opt.granularity_kib = gran_kib;
  opt.channel_of = [&dev](gpusim::PhysAddr pa) {
    return static_cast<int>(dev.oracle().channel_of(pa));
  };
  return opt;
}

// ------------------------------------------------------------ UvmPool ----

TEST(UvmPool, ClassifiesAllSectors) {
  GpuDevice dev(gpusim::test_gpu(), 3);
  UvmMemoryPool pool(dev, oracle_pool_options(dev, 8ull << 20, 2));
  EXPECT_EQ(pool.total_chunks(), (8ull << 20) / 2048);
  EXPECT_EQ(pool.quarantined_sectors(), 0u);
  // test_gpu pairs channels (group size 2): every color has 2 channels.
  for (const ChannelSet color : pool.colors()) {
    EXPECT_EQ(gpusim::channel_count(color), 2u);
  }
}

TEST(UvmPool, ColoredBufferStaysOnItsChannels) {
  // The core §6 property, via the real translate() path.
  GpuDevice dev(gpusim::test_gpu(), 5);
  UvmMemoryPool pool(dev, oracle_pool_options(dev, 16ull << 20, 2));
  // Give the buffer one channel group (2 of 4 channels).
  const ChannelSet allowed = channel_bit(0) | channel_bit(1);
  ColoredBuffer buf = pool.allocate(1ull << 20, allowed);
  EXPECT_EQ(buf.logical_bytes, 1ull << 20);
  EXPECT_EQ(buf.va_bytes, 2ull << 20);  // 2KiB of every 4KiB page

  for (uint64_t off = 0; off < buf.logical_bytes; off += 512) {
    const gpusim::VirtAddr va = coloring::colored_va(buf, off);
    const unsigned ch = dev.oracle().channel_of(dev.pa_of(va));
    ASSERT_TRUE(allowed & channel_bit(ch))
        << "offset " << off << " escaped to channel " << ch;
  }
  pool.release(buf);
}

TEST(UvmPool, TwoTenantsAreChannelDisjoint) {
  GpuDevice dev(gpusim::test_gpu(), 7);
  UvmMemoryPool pool(dev, oracle_pool_options(dev, 16ull << 20, 2));
  const ChannelSet ls = channel_bit(0) | channel_bit(1);
  const ChannelSet be = channel_bit(2) | channel_bit(3);
  ColoredBuffer a = pool.allocate(2ull << 20, ls);
  ColoredBuffer b = pool.allocate(2ull << 20, be);
  std::set<unsigned> ch_a, ch_b;
  for (uint64_t off = 0; off < 2ull << 20; off += kPartitionBytes) {
    ch_a.insert(dev.oracle().channel_of(dev.pa_of(coloring::colored_va(a, off))));
    ch_b.insert(dev.oracle().channel_of(dev.pa_of(coloring::colored_va(b, off))));
  }
  for (unsigned c : ch_a) EXPECT_TRUE(ls & channel_bit(c));
  for (unsigned c : ch_b) EXPECT_TRUE(be & channel_bit(c));
}

TEST(UvmPool, ReleaseReturnsCapacity) {
  GpuDevice dev(gpusim::test_gpu(), 9);
  UvmMemoryPool pool(dev, oracle_pool_options(dev, 8ull << 20, 2));
  const ChannelSet allowed = all_channels(4);
  const uint64_t before = pool.free_chunks(allowed);
  ColoredBuffer buf = pool.allocate(1ull << 20, allowed);
  EXPECT_EQ(pool.free_chunks(allowed), before - 512);
  pool.release(buf);
  EXPECT_EQ(pool.free_chunks(allowed), before);
}

TEST(UvmPool, ExhaustionThrowsWithColorContext) {
  GpuDevice dev(gpusim::test_gpu(), 11);
  UvmMemoryPool pool(dev, oracle_pool_options(dev, 4ull << 20, 2));
  const ChannelSet one_pair = channel_bit(0) | channel_bit(1);
  try {
    pool.allocate(64ull << 20, one_pair);
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_NE(std::string(e.what()).find("{A,B}"), std::string::npos);
  }
}

TEST(UvmPool, SharesFramesAcrossSectors) {
  // A frame whose sector 0 serves color X can serve color Y via sector 1
  // — the chunk lists of Fig. 12a key on (color, sector id).
  GpuDevice dev(gpusim::test_gpu(), 13);
  UvmMemoryPool pool(dev, oracle_pool_options(dev, 8ull << 20, 2));
  ColoredBuffer a = pool.allocate(2ull << 20, all_channels(4));
  ColoredBuffer b = pool.allocate(2ull << 20, all_channels(4));
  std::set<uint64_t> frames_a(a.pfns.begin(), a.pfns.end());
  size_t shared = 0;
  for (uint64_t pfn : b.pfns) shared += frames_a.count(pfn);
  if (a.sector != b.sector) {
    EXPECT_GT(shared, 0u);
  }
}

TEST(UvmPool, QuarantinesUnknownLabels) {
  GpuDevice dev(gpusim::test_gpu(), 15);
  UvmPoolOptions opt = oracle_pool_options(dev, 4ull << 20, 2);
  // A labeler that refuses every 7th partition.
  opt.channel_of = [&dev](gpusim::PhysAddr pa) -> int {
    if (gpusim::partition_of(pa) % 7 == 0) return -1;
    return static_cast<int>(dev.oracle().channel_of(pa));
  };
  UvmMemoryPool pool(dev, opt);
  EXPECT_GT(pool.quarantined_sectors(), 0u);
  EXPECT_EQ(pool.total_chunks() + pool.quarantined_sectors(),
            (4ull << 20) / 2048);
}

TEST(UvmPool, RejectsGranularityAboveGroupRun) {
  GpuDevice dev(gpusim::rtx_a2000(), 17);
  // A2000: pairs → max granularity 2 KiB (Tab. 4); 4 KiB must be rejected.
  EXPECT_THROW(UvmMemoryPool(dev, oracle_pool_options(dev, 4ull << 20, 4)),
               ConfigError);
}

// ---------------------------------------------------------- Translate ----

TEST(Translate, MatchesPaperMacroAt2KiB) {
  // Fig. 12c: translate(offset) = offset + (offset & ~(2048-1)).
  for (uint64_t off : {0ull, 1ull, 2047ull, 2048ull, 5000ull, 65536ull}) {
    EXPECT_EQ(coloring::translate_offset(off, 2048), off + (off & ~2047ull));
  }
}

TEST(Translate, CoversDisjointSectorsPerOffsetRange) {
  // 1KiB granularity: logical [0,1K) → page sector 0, [1K,2K) → next page.
  EXPECT_EQ(coloring::translate_offset(0, 1024), 0u);
  EXPECT_EQ(coloring::translate_offset(1024, 1024), 4096u);
  EXPECT_EQ(coloring::translate_offset(1023, 1024), 1023u);
  EXPECT_EQ(coloring::translate_offset(2048, 1024), 8192u);
}

// -------------------------------------------------------------- Rules ----

TEST(Rules, Table4Granularities) {
  EXPECT_EQ(coloring::max_granularity_kib(gpusim::gtx1080()), 4u);
  EXPECT_EQ(coloring::max_granularity_kib(gpusim::tesla_p40()), 4u);
  EXPECT_EQ(coloring::max_granularity_kib(gpusim::rtx_a2000()), 2u);
}

TEST(Rules, PowerOfTwoAllocationRule) {
  const GpuSpec p40 = gpusim::tesla_p40();
  EXPECT_EQ(coloring::granularity_for(p40, 4), 4u);   // min(2^2, 4)
  EXPECT_EQ(coloring::granularity_for(p40, 2), 2u);
  EXPECT_EQ(coloring::granularity_for(p40, 8), 4u);   // capped at max
  EXPECT_EQ(coloring::granularity_for(p40, 3), 1u);   // non-pow2 → 1 KiB
  const GpuSpec a2000 = gpusim::rtx_a2000();
  EXPECT_EQ(coloring::granularity_for(a2000, 2), 2u);
  EXPECT_EQ(coloring::granularity_for(a2000, 4), 2u);  // capped
}

// -------------------------------------------------------------- SmCtrl ----

TEST(SmCtrl, MaskHelpers) {
  driver::SmCtrl ctl(gpusim::rtx_a2000());  // 13 TPCs
  EXPECT_EQ(gpusim::tpc_count(ctl.full()), 13u);
  EXPECT_EQ(gpusim::tpc_count(ctl.top(4)), 4u);
  EXPECT_EQ(gpusim::tpc_count(ctl.bottom(9)), 9u);
  EXPECT_EQ(ctl.top(4) & ctl.bottom(9), 0u);  // tidal ends are disjoint
  EXPECT_EQ((ctl.top(4) | ctl.bottom(9)), ctl.full());
}

TEST(SmCtrl, RejectsBadMasks) {
  driver::SmCtrl ctl(gpusim::test_gpu());  // 4 TPCs
  EXPECT_THROW(ctl.validate(0), ConfigError);
  EXPECT_THROW(ctl.validate(1ull << 10), ConfigError);
  EXPECT_THROW(ctl.top(5), ConfigError);
}

TEST(SmCtrl, GlobalMaskFallback) {
  driver::SmCtrl ctl(gpusim::test_gpu());
  ctl.set_global_mask(gpusim::tpc_range(0, 2));
  EXPECT_EQ(ctl.effective(0), gpusim::tpc_range(0, 2));
  EXPECT_EQ(ctl.effective(gpusim::tpc_bit(3)), gpusim::tpc_bit(3));
}

// -------------------------------------------------------- Transformer ----

gpusim::KernelDesc make_kernel(const std::string& name,
                               std::vector<gpusim::KernelAccess> accesses) {
  gpusim::KernelDesc k;
  k.name = name;
  k.accesses = std::move(accesses);
  k.base_registers = 40;
  return k;
}

TEST(Transformer, SingleUseExpressionsFold) {
  // Three accesses with three distinct index expressions → all fold.
  const auto k = make_kernel("conv", {{0, 0, false}, {1, 1, false},
                                      {2, 2, true}});
  const auto res = coloring::transform_kernel(k, from_ms(1.0));
  EXPECT_EQ(res.extra_registers, 0u);
  EXPECT_EQ(res.rewritten_accesses, 3u);
  EXPECT_TRUE(res.kernel.spt_transformed);
}

TEST(Transformer, SharedExpressionMaterialisesOneTemp) {
  // Fig. 12c's vectorAdd: A[i], B[i], C[i] share index i → +1 register.
  const auto k = make_kernel("vadd", {{0, 0, false}, {1, 0, false},
                                      {2, 0, true}});
  const auto res = coloring::transform_kernel(k, from_ms(1.0));
  EXPECT_EQ(res.extra_registers, 1u);
  EXPECT_EQ(res.kernel.base_registers, 41u);
}

TEST(Transformer, TinyKernelsGetCompilerOutliers) {
  const auto k = make_kernel("bias_add_tiny", {{0, 0, false}, {1, 1, true}});
  const auto res = coloring::transform_kernel(k, from_ms(0.005));
  EXPECT_GE(res.extra_registers, 8u);   // §9.1.2's >10-register outliers
  EXPECT_LE(res.extra_registers, 16u);
  // Deterministic across calls.
  const auto res2 = coloring::transform_kernel(k, from_ms(0.005));
  EXPECT_EQ(res.extra_registers, res2.extra_registers);
}

}  // namespace
}  // namespace sgdrc
