// Tests for the Apollo-like trace generator (workload/trace.cc):
// determinism, per-service rate overrides, the §9.2 load scale, and the
// burst/background split.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "workload/trace.h"

namespace sgdrc::workload {
namespace {

size_t count_service(const std::vector<Request>& trace, unsigned s) {
  return static_cast<size_t>(
      std::count_if(trace.begin(), trace.end(),
                    [s](const Request& r) { return r.service == s; }));
}

TEST(Trace, SameSeedIsBitIdentical) {
  TraceOptions opt;
  opt.services = 3;
  opt.duration = 500 * kNsPerMs;
  opt.seed = 0xabc;
  const auto a = generate_apollo_like_trace(opt);
  const auto b = generate_apollo_like_trace(opt);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival, b[i].arrival);
    EXPECT_EQ(a[i].service, b[i].service);
  }
}

TEST(Trace, DifferentSeedDiffers) {
  TraceOptions opt;
  opt.services = 3;
  opt.duration = 500 * kNsPerMs;
  opt.seed = 0xabc;
  const auto a = generate_apollo_like_trace(opt);
  opt.seed = 0xdef;
  const auto b = generate_apollo_like_trace(opt);
  bool differs = a.size() != b.size();
  for (size_t i = 0; !differs && i < a.size(); ++i) {
    differs = a[i].arrival != b[i].arrival || a[i].service != b[i].service;
  }
  EXPECT_TRUE(differs);
}

TEST(Trace, SortedByArrival) {
  TraceOptions opt;
  opt.services = 4;
  opt.duration = 300 * kNsPerMs;
  const auto t = generate_apollo_like_trace(opt);
  ASSERT_FALSE(t.empty());
  for (size_t i = 1; i < t.size(); ++i) {
    EXPECT_LE(t[i - 1].arrival, t[i].arrival);
    EXPECT_LT(t[i].arrival, opt.duration);
  }
}

TEST(Trace, PerServiceRatesOverrideTheDefault) {
  TraceOptions opt;
  opt.services = 3;
  opt.duration = 2 * kNsPerSec;
  opt.rate_per_service = 100.0;          // services not covered below
  opt.per_service_rates = {400.0, 100.0};  // service 2 uses the default
  const auto t = generate_apollo_like_trace(opt);
  const double c0 = static_cast<double>(count_service(t, 0));
  const double c1 = static_cast<double>(count_service(t, 1));
  const double c2 = static_cast<double>(count_service(t, 2));
  // Service 0 runs at 4x the rate of services 1 and 2.
  EXPECT_GT(c0 / c1, 2.5);
  EXPECT_LT(c0 / c1, 6.0);
  EXPECT_GT(c1 / c2, 0.6);
  EXPECT_LT(c1 / c2, 1.6);
  // The mean rate is respected: ~600 req/s over 2 s.
  EXPECT_NEAR(c0 + c1 + c2, 1200.0, 360.0);
}

TEST(Trace, ScaleHalvesTheLoad) {
  TraceOptions heavy;
  heavy.services = 4;
  heavy.duration = 2 * kNsPerSec;
  heavy.rate_per_service = 300.0;
  TraceOptions light = heavy;
  light.scale = 0.5;  // §9.2: light = half of heavy
  const double h = static_cast<double>(
      generate_apollo_like_trace(heavy).size());
  const double l = static_cast<double>(
      generate_apollo_like_trace(light).size());
  EXPECT_NEAR(l / h, 0.5, 0.12);
}

TEST(Trace, BurstinessConcentratesArrivalsAtFrameTicks) {
  // With everything in the burst component, arrivals cluster just after
  // frame ticks; with everything in the Poisson background they spread
  // uniformly. Compare the variance of per-frame-bin counts.
  auto binned_variance = [](double burstiness) {
    TraceOptions opt;
    opt.services = 1;
    opt.duration = 2 * kNsPerSec;
    opt.rate_per_service = 400.0;
    opt.burstiness = burstiness;
    opt.seed = 0xb57;
    const auto t = generate_apollo_like_trace(opt);
    const TimeNs bin = 2 * kNsPerMs;  // 5 bins per 10 ms frame
    std::vector<double> counts(opt.duration / bin, 0.0);
    for (const auto& r : t) counts[r.arrival / bin] += 1.0;
    double mean = 0.0;
    for (const double c : counts) mean += c;
    mean /= static_cast<double>(counts.size());
    double var = 0.0;
    for (const double c : counts) var += (c - mean) * (c - mean);
    return var / static_cast<double>(counts.size());
  };
  // The bursty trace is far spikier than the uniform one.
  EXPECT_GT(binned_variance(1.0), 2.0 * binned_variance(0.0));
}

TEST(Trace, BurstinessPreservesTheMeanRate) {
  TraceOptions opt;
  opt.services = 2;
  opt.duration = 2 * kNsPerSec;
  opt.rate_per_service = 300.0;
  opt.seed = 0x591;
  opt.burstiness = 0.0;
  const double uniform = static_cast<double>(
      generate_apollo_like_trace(opt).size());
  opt.burstiness = 1.0;
  const double bursty = static_cast<double>(
      generate_apollo_like_trace(opt).size());
  EXPECT_NEAR(bursty / uniform, 1.0, 0.25);
}

}  // namespace
}  // namespace sgdrc::workload
