// Policy/controller conformance: every system in the shared registry
// (src/baselines/registry.h) runs over the same mini scenario and must
// uphold the substrate invariants, whatever its scheduling strategy:
//
//  * only best-effort kernels are ever evicted (LS requests are
//    inviolable — eviction flags exist only on preemptible kernels);
//  * no launch of in-flight jobs / no phantom jobs (the sim throws, so
//    completing the run is the assertion);
//  * request-count conservation: every arrived request is either served
//    or still in the system when the run ends;
//  * bit-identical reruns at a fixed seed (fresh controller, fresh sim).
#include <gtest/gtest.h>

#include "baselines/registry.h"
#include "core/harness.h"
#include "fleet/fleet.h"
#include "fleet/placement.h"
#include "fleet/router.h"
#include "models/zoo.h"

namespace sgdrc::core {
namespace {

HarnessOptions mini_options() {
  HarnessOptions o;
  o.spec = gpusim::test_gpu();
  o.ls_letters = "AB";
  o.be_letters = "IJ";
  o.utilization = 0.6;
  o.burstiness = 0.35;
  o.duration = 80 * kNsPerMs;
  o.seed = 0xc0f;
  return o;
}

const ServingHarness& mini_harness() {
  static const ServingHarness h(mini_options());
  return h;
}

/// Build the same sim the harness would, but keep it so post-run state
/// (outstanding requests) stays queryable.
std::unique_ptr<ServingSim> build_mini_sim(const ServingHarness& h,
                                           control::Controller& controller,
                                           bool spt) {
  ServingSimBuilder b;
  b.gpu(h.options().spec)
      .duration(h.options().duration)
      .slo_multiplier(static_cast<double>(h.ls_count() + 1));
  for (size_t i = 0; i < h.ls_count(); ++i) {
    b.add_latency_sensitive(spt ? h.ls_model_spt(i) : h.ls_model(i),
                            h.isolated_latency(i));
  }
  for (size_t i = 0; i < h.be_count(); ++i) {
    b.add_best_effort(spt ? h.be_model_spt(i) : h.be_model(i));
  }
  return b.build(controller);
}

void expect_identical(const workload::ServingMetrics& a,
                      const workload::ServingMetrics& b,
                      const std::string& system) {
  ASSERT_EQ(a.tenants.size(), b.tenants.size()) << system;
  for (size_t t = 0; t < a.tenants.size(); ++t) {
    const auto& x = a.tenants[t];
    const auto& y = b.tenants[t];
    EXPECT_EQ(x.arrived, y.arrived) << system << " tenant " << t;
    EXPECT_EQ(x.served, y.served) << system << " tenant " << t;
    EXPECT_EQ(x.attained, y.attained) << system << " tenant " << t;
    EXPECT_EQ(x.evictions, y.evictions) << system << " tenant " << t;
    EXPECT_EQ(x.kernels_done, y.kernels_done) << system << " tenant " << t;
    ASSERT_EQ(x.latency.count(), y.latency.count())
        << system << " tenant " << t;
    if (!x.latency.empty()) {
      EXPECT_EQ(x.latency.p99(), y.latency.p99())
          << system << " tenant " << t;
    }
    // Memory-residency counters (all zero on memory-less runs).
    EXPECT_EQ(x.weight_loads, y.weight_loads) << system << " tenant " << t;
    EXPECT_EQ(x.weight_evictions, y.weight_evictions)
        << system << " tenant " << t;
    EXPECT_EQ(x.paged_requests, y.paged_requests)
        << system << " tenant " << t;
    ASSERT_EQ(x.cold_latency.count(), y.cold_latency.count())
        << system << " tenant " << t;
  }
}

class ConformanceTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ConformanceTest, SharedInvariantsHold) {
  const auto& sys = baselines::system_registry()[GetParam()];
  const ServingHarness& h = mini_harness();

  const auto controller = sys.make(h.options().spec);
  auto sim = build_mini_sim(h, *controller, sys.uses_spt);
  const auto m = sim->run(h.trace());

  uint64_t total_served = 0;
  for (workload::TenantId t = 0; t < m.tenants.size(); ++t) {
    const auto& tm = m.tenants[t];
    if (tm.qos == workload::QosClass::kLatencySensitive) {
      // Only BE kernels are ever evicted.
      EXPECT_EQ(tm.evictions, 0u) << sys.name;
      // Conservation: arrived = served + still-in-system at the cut.
      EXPECT_EQ(tm.arrived, tm.served + sim->outstanding(t)) << sys.name;
      total_served += tm.served;
      EXPECT_GE(tm.served, tm.attained) << sys.name;
      EXPECT_EQ(tm.served, tm.latency.count()) << sys.name;
    } else {
      EXPECT_GE(tm.kernels_done,
                tm.batches_completed * tm.kernels_per_batch)
          << sys.name;
    }
  }
  // The mini scenario is busy enough that a conforming scheduler serves
  // work on every system.
  EXPECT_GT(total_served, 0u) << sys.name;

  // Bit-identical rerun: fresh controller, fresh sim, same seed.
  const auto controller2 = sys.make(h.options().spec);
  auto sim2 = build_mini_sim(h, *controller2, sys.uses_spt);
  expect_identical(m, sim2->run(h.trace()), sys.name);
}

TEST_P(ConformanceTest, InvariantsHoldUnderResidencyChurn) {
  // The same mini scenario with GPU memory modeled and the VRAM squeezed
  // so the registered footprint (LS A+B plus the big BE models I+J) does
  // not fit at once: weights load, evict, and page while every system
  // schedules. The substrate invariants — conservation, LS inviolability,
  // bit-identical reruns — must survive the churn on every controller.
  const auto& sys = baselines::system_registry()[GetParam()];
  const ServingHarness& h = mini_harness();

  memory::MemoryOptions mem;
  mem.enabled = true;
  mem.vram_bytes_override = 256ull << 20;
  mem.oversubscribe = true;

  const auto build = [&](control::Controller& controller) {
    ServingSimBuilder b;
    b.gpu(h.options().spec)
        .duration(h.options().duration)
        .slo_multiplier(static_cast<double>(h.ls_count() + 1))
        .memory(mem);
    for (size_t i = 0; i < h.ls_count(); ++i) {
      b.add_latency_sensitive(sys.uses_spt ? h.ls_model_spt(i)
                                           : h.ls_model(i),
                              h.isolated_latency(i));
    }
    for (size_t i = 0; i < h.be_count(); ++i) {
      b.add_best_effort(sys.uses_spt ? h.be_model_spt(i) : h.be_model(i));
    }
    return b.build(controller);
  };

  const auto controller = sys.make(h.options().spec);
  auto sim = build(*controller);
  ASSERT_TRUE(sim->memory_modeled()) << sys.name;
  const auto m = sim->run(h.trace());

  uint64_t total_served = 0, total_loads = 0;
  for (workload::TenantId t = 0; t < m.tenants.size(); ++t) {
    const auto& tm = m.tenants[t];
    total_loads += tm.weight_loads;
    if (tm.qos != workload::QosClass::kLatencySensitive) continue;
    EXPECT_EQ(tm.evictions, 0u) << sys.name;
    EXPECT_EQ(tm.arrived, tm.served + sim->outstanding(t)) << sys.name;
    EXPECT_EQ(tm.served, tm.latency.count()) << sys.name;
    // Cold-start-gated requests are a subset of all served requests.
    EXPECT_LE(tm.cold_latency.count(), tm.latency.count()) << sys.name;
    total_served += tm.served;
  }
  EXPECT_GT(total_served, 0u) << sys.name;
  // The squeeze is real: somebody had to load weights.
  EXPECT_GT(total_loads, 0u) << sys.name;

  const auto controller2 = sys.make(h.options().spec);
  auto sim2 = build(*controller2);
  expect_identical(m, sim2->run(h.trace()), sys.name);
}

TEST_P(ConformanceTest, FrontDoorConservesRequestsUnderOverload) {
  // A 2-device fleet driven through an armed front door with a bucket
  // tight enough to reject, depths low enough to shed, and a retry
  // budget that produces drops — on every registered system. Whatever
  // the controller does on-device, the door's books must balance:
  //
  //   * door level: every first-attempt arrival terminates as admitted
  //     or dropped, or sits in a scheduled retry at the horizon
  //     (arrived == admitted + dropped + pending_retries);
  //   * device level: every admitted request reaches a device unless
  //     its dispatch hop crossed the horizon (admitted == Σ LS device
  //     arrivals + expired);
  //   * tenant level: arrived == served + still-outstanding at the cut,
  //     exactly as in the single-device conformance above.
  const auto& sys = baselines::system_registry()[GetParam()];
  const ServingHarness& h = mini_harness();

  fleet::FleetConfig cfg;
  cfg.spec = h.options().spec;
  cfg.devices = 2;
  cfg.duration = h.options().duration;
  cfg.slo_multiplier = static_cast<double>(h.ls_count() + 1);
  cfg.seed = 0xd00f;
  cfg.dispatch_latency = 2 * kNsPerUs;
  cfg.dispatch_jitter = 3 * kNsPerUs;
  cfg.front_door.enabled = true;
  cfg.front_door.admit_rate = 150.0;
  cfg.front_door.admit_burst = 4.0;
  cfg.front_door.be_pause_depth = 4;
  cfg.front_door.shed_depth = 8;
  cfg.front_door.max_retries = 2;

  std::vector<fleet::FleetTenantSpec> tenants;
  for (size_t i = 0; i < h.ls_count(); ++i) {
    tenants.push_back(fleet::replicated(
        latency_sensitive_tenant(
            sys.uses_spt ? h.ls_model_spt(i) : h.ls_model(i),
            h.isolated_latency(i)),
        2));
  }
  for (size_t i = 0; i < h.be_count(); ++i) {
    tenants.push_back(fleet::replicated(
        best_effort_tenant(sys.uses_spt ? h.be_model_spt(i)
                                        : h.be_model(i)),
        2));
  }
  fleet::SpreadPlacement spread;
  fleet::QosLoadAwareRouter router;
  fleet::FleetSim fleet(cfg, tenants, spread, router, sys.make);
  const auto m = fleet.run(h.trace());
  const auto& fd = m.front_door;

  // The door must actually have worked for the books to mean anything.
  EXPECT_GT(fd.arrived, 0u) << sys.name;
  EXPECT_GT(fd.rejected, 0u) << sys.name;
  EXPECT_EQ(fd.arrived, fd.admitted + fd.dropped + fd.pending_retries)
      << sys.name;

  uint64_t device_arrivals = 0;
  for (size_t t = 0; t < m.tenants.size(); ++t) {
    const auto& tm = m.tenants[t];
    if (tm.qos != workload::QosClass::kLatencySensitive) continue;
    device_arrivals += tm.arrived;
    uint64_t outstanding = 0;
    for (const auto& rep : fleet.replicas_of(static_cast<unsigned>(t))) {
      outstanding += fleet.outstanding(rep);
    }
    EXPECT_EQ(tm.arrived, tm.served + outstanding) << sys.name;
  }
  EXPECT_EQ(fd.admitted, device_arrivals + fd.expired) << sys.name;
}

// ------------------------------------------------ DAG-model scenario ----

/// Shared DAG fixture: the inception recipes profiled on the test GPU,
/// their SPT variants, and a single-service trace sized off the DAG
/// model's serialized isolated latency.
struct DagSetup {
  models::ModelDesc ls, be, ls_spt, be_spt;
  TimeNs iso = 0;
  std::vector<workload::Request> trace;

  DagSetup() {
    const OfflineProfiler prof(mini_options().spec);
    ls = models::inception_ls(true);
    be = models::inception_be(true);
    prof.profile(ls);
    prof.profile(be);
    ls_spt = ServingHarness::transform_for_spt(ls, prof);
    be_spt = ServingHarness::transform_for_spt(be, prof);
    iso = prof.isolated_latency(ls);
    workload::TraceOptions topt;
    topt.services = 1;
    topt.duration = mini_options().duration;
    topt.burstiness = 0.35;
    topt.seed = 0xda6c;
    topt.per_service_rates = {0.5 / to_sec(iso)};
    trace = workload::generate_apollo_like_trace(topt);
  }
};

const DagSetup& dag_setup() {
  static const DagSetup s;
  return s;
}

TEST_P(ConformanceTest, SharedInvariantsHoldOnDagModels) {
  // The same substrate invariants over a DAG model: every system sees
  // multi-entry waiting views and multi-launch jobs (the inception
  // frontier) and must still conserve requests, never evict LS work,
  // and replay bit-identically.
  const auto& sys = baselines::system_registry()[GetParam()];
  const auto& d = dag_setup();
  const gpusim::GpuSpec spec = mini_options().spec;

  const auto build = [&](control::Controller& controller) {
    return ServingSimBuilder()
        .gpu(spec)
        .duration(mini_options().duration)
        .slo_multiplier(4.0)
        .best_effort_mode(BeMode::kConcurrent)
        .add_latency_sensitive(sys.uses_spt ? d.ls_spt : d.ls, d.iso)
        .add_best_effort(sys.uses_spt ? d.be_spt : d.be)
        .build(controller);
  };

  const auto controller = sys.make(spec);
  auto sim = build(*controller);
  const auto m = sim->run(d.trace);

  uint64_t total_served = 0;
  for (workload::TenantId t = 0; t < m.tenants.size(); ++t) {
    const auto& tm = m.tenants[t];
    if (tm.qos == workload::QosClass::kLatencySensitive) {
      EXPECT_EQ(tm.evictions, 0u) << sys.name;
      EXPECT_EQ(tm.arrived, tm.served + sim->outstanding(t)) << sys.name;
      EXPECT_EQ(tm.served, tm.latency.count()) << sys.name;
      total_served += tm.served;
    } else {
      EXPECT_GE(tm.kernels_done,
                tm.batches_completed * tm.kernels_per_batch)
          << sys.name;
    }
  }
  EXPECT_GT(total_served, 0u) << sys.name;

  const auto controller2 = sys.make(spec);
  auto sim2 = build(*controller2);
  expect_identical(m, sim2->run(d.trace), sys.name);
}

INSTANTIATE_TEST_SUITE_P(
    AllSystems, ConformanceTest,
    ::testing::Range<size_t>(0, baselines::system_registry().size()),
    // Not `info`: the INSTANTIATE_TEST_SUITE_P expansion has its own
    // `info` parameter, and the shadow trips -Wshadow builds.
    [](const ::testing::TestParamInfo<size_t>& param_info) {
      std::string name = baselines::system_registry()[param_info.param].name;
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace sgdrc::core
