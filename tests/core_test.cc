// Tests for the SGDRC core: offline profiler, serving engine mechanics,
// the SGDRC policy (tidal masking + bimodal channels), and qualitative
// end-to-end comparisons against the baselines on a small configuration.
#include <gtest/gtest.h>

#include "baselines/baseline_policies.h"
#include "core/harness.h"
#include "core/profiler.h"
#include "core/serving.h"
#include "core/sgdrc_policy.h"
#include "models/zoo.h"

namespace sgdrc::core {
namespace {

using gpusim::GpuSpec;

GpuSpec small_spec() { return gpusim::test_gpu(); }

// ----------------------------------------------------------- Profiler ----

TEST(Profiler, MinTpcsWithinRange) {
  OfflineProfiler prof(small_spec());
  auto m = models::mobilenet_v3();
  prof.profile(m);
  for (const auto& k : m.kernels) {
    EXPECT_GE(k.min_tpcs, 1u) << k.name;
    EXPECT_LE(k.min_tpcs, small_spec().num_tpcs) << k.name;
  }
}

TEST(Profiler, MemoryBoundClassification) {
  OfflineProfiler prof(small_spec());
  // A pure-compute kernel must not be memory-bound; a streaming kernel is.
  gpusim::KernelDesc comp;
  comp.name = "gemm";
  comp.flops = 4'000'000'000ull;
  comp.bytes = 1024;
  comp.blocks = 1u << 16;
  comp.max_useful_tpcs = 64;
  EXPECT_FALSE(prof.is_memory_bound(comp));

  gpusim::KernelDesc mem;
  mem.name = "copy";
  mem.flops = 1000;
  mem.bytes = 400'000'000ull;
  mem.blocks = 1u << 16;
  mem.max_useful_tpcs = 64;
  EXPECT_TRUE(prof.is_memory_bound(mem));
}

TEST(Profiler, TensorsInheritMemoryBoundness) {
  OfflineProfiler prof(small_spec());
  auto m = models::densenet161();
  prof.profile(m);
  bool any_mb_kernel = false, any_mb_tensor = false;
  for (const auto& k : m.kernels) any_mb_kernel |= k.memory_bound;
  for (const auto& t : m.tensors) any_mb_tensor |= t.memory_bound;
  EXPECT_TRUE(any_mb_kernel);
  EXPECT_TRUE(any_mb_tensor);
  // Every access of a memory-bound kernel touches a memory-bound tensor.
  for (const auto& k : m.kernels) {
    if (!k.memory_bound) continue;
    for (const auto& a : k.accesses) {
      EXPECT_TRUE(m.tensors[a.tensor].memory_bound);
    }
  }
}

TEST(Profiler, MinTpcsSmallForMemoryBoundKernels) {
  OfflineProfiler prof(small_spec());
  gpusim::KernelDesc mem;
  mem.name = "stream";
  mem.flops = 50'000'000ull;     // light compute
  mem.bytes = 200'000'000ull;    // heavy traffic
  mem.blocks = 1u << 16;
  mem.max_useful_tpcs = 64;
  const unsigned n = prof.min_tpcs_for(mem);
  EXPECT_LT(n, small_spec().num_tpcs);  // saturates before the full GPU
}

// --------------------------------------------------- Channel partition ----

TEST(SgdrcPolicy, BeChannelPartitionRespectsGroups) {
  const GpuSpec a2000 = gpusim::rtx_a2000();  // 6 channels, pairs
  const auto be = be_channel_partition(a2000, 1.0 / 3.0);
  EXPECT_EQ(gpusim::channel_count(be), 2u);  // one pair
  const GpuSpec p40 = gpusim::tesla_p40();   // 12 channels, quads
  const auto be40 = be_channel_partition(p40, 1.0 / 3.0);
  EXPECT_EQ(gpusim::channel_count(be40), 4u);  // one quad
  // LS and BE partitions are disjoint and cover all channels.
  EXPECT_EQ(be & ~gpusim::all_channels(6), 0u);
}

// -------------------------------------------------- Serving mechanics ----

class ServingTest : public ::testing::Test {
 protected:
  HarnessOptions small_options(double util, double scale) {
    HarnessOptions o;
    o.spec = small_spec();
    o.ls_letters = "AB";
    o.be_letters = "I";
    o.utilization = util;
    o.load_scale = scale;
    o.duration = 300 * kNsPerMs;
    o.seed = 99;
    return o;
  }
};

TEST_F(ServingTest, TemporalServesEverythingEventually) {
  ServingHarness h(small_options(0.3, 1.0));
  baselines::TemporalPolicy policy;
  const auto m = h.run(policy, false);
  ASSERT_EQ(m.ls.size(), 2u);
  for (const auto& s : m.ls) {
    EXPECT_GT(s.served, 0u) << s.name;
    EXPECT_GE(s.attainment(), 0.9) << s.name;  // temporal protects LS
  }
}

TEST_F(ServingTest, MultiStreamKeepsBeAlwaysResident) {
  // Spatial multiplexing co-executes BE continuously (Fig. 1b) — the BE
  // task is in flight essentially the whole run.
  ServingHarness h(small_options(0.3, 1.0));
  baselines::MultiStreamPolicy multi;
  const auto mm = h.run(multi, false);
  EXPECT_GT(static_cast<double>(mm.be_busy_ns) /
                static_cast<double>(mm.duration),
            0.9);
}

TEST_F(ServingTest, TemporalStarvesBeUnderLoad) {
  // Fig. 4a: as LS load rises, temporal multiplexing's BE throughput
  // collapses while LS attainment stays high.
  ServingHarness light(small_options(0.15, 1.0));
  ServingHarness heavy(small_options(0.6, 1.0));
  baselines::TemporalPolicy p1, p2;
  const auto ml = light.run(p1, false);
  const auto mh = heavy.run(p2, false);
  EXPECT_LT(mh.be_throughput(), ml.be_throughput());
  EXPECT_GT(mh.mean_attainment(), 0.85);
}

TEST_F(ServingTest, SgdrcMeetsSloAndBeatsStaticBe) {
  ServingHarness h(small_options(0.35, 1.0));
  SgdrcPolicy sgdrc(h.options().spec);
  SgdrcStaticPolicy static_(h.options().spec);
  const auto ms = h.run(sgdrc, true);
  const auto mst = h.run(static_, true);
  EXPECT_GE(ms.mean_attainment(), 0.90);
  EXPECT_GT(ms.be_throughput(), mst.be_throughput());
  EXPECT_GT(ms.mean_attainment(), mst.mean_attainment());
}

TEST_F(ServingTest, SgdrcBeatsMultiStreamOnAttainment) {
  ServingHarness h(small_options(0.45, 1.0));
  SgdrcPolicy sgdrc(h.options().spec);
  baselines::MultiStreamPolicy multi;
  const auto ms = h.run(sgdrc, true);
  const auto mm = h.run(multi, false);
  EXPECT_GT(ms.mean_attainment(), mm.mean_attainment());
}

TEST_F(ServingTest, SgdrcEvictsBeUnderLoad) {
  ServingHarness h(small_options(0.45, 1.0));
  SgdrcPolicy sgdrc(h.options().spec);
  const auto m = h.run(sgdrc, true);
  uint64_t evictions = 0;
  for (const auto& b : m.be) evictions += b.evictions;
  EXPECT_GT(evictions, 0u);  // the tide came in at least once
}

TEST_F(ServingTest, DynamicSgdrcBeatsStaticOnBeThroughputAtLightLoad) {
  // §9.3: "Compared with SGDRC (Static), SGDRC achieves higher BE job
  // throughput, which is more evident in the light workload scenario" —
  // the dynamic policy lets BE monopolise the GPU between bursts.
  ServingHarness h(small_options(0.35, 0.5));
  SgdrcPolicy dynamic(h.options().spec);
  SgdrcStaticPolicy static_(h.options().spec);
  const auto md = h.run(dynamic, true);
  const auto ms = h.run(static_, true);
  EXPECT_GT(md.be_throughput(), ms.be_throughput());
}

TEST_F(ServingTest, OrionConstraintCountersPopulate) {
  ServingHarness h(small_options(0.45, 1.0));
  baselines::OrionPolicy orion;
  const auto m = h.run(orion, false);
  EXPECT_GT(orion.admitted(), 0u);
  EXPECT_GT(orion.rejected_sm() + orion.rejected_runtime() +
                orion.rejected_resource(),
            0u);
  EXPECT_GT(m.be_throughput(), 0.0);
}

TEST_F(ServingTest, OrionBeThroughputDeclinesWithLsLoad) {
  // Fig. 5a's shape: BE throughput collapses as LS load rises. (On this
  // 4-TPC toy GPU the SLO is very tight, so no attainment floor here —
  // the P40/A2000 bench covers the attainment side.)
  ServingHarness light(small_options(0.15, 1.0));
  ServingHarness heavy(small_options(0.6, 1.0));
  baselines::OrionPolicy p1, p2;
  const auto ml = light.run(p1, false);
  const auto mh = heavy.run(p2, false);
  EXPECT_LT(mh.be_throughput(), ml.be_throughput() / 2);
}

TEST_F(ServingTest, MetricsAccounting) {
  ServingHarness h(small_options(0.3, 1.0));
  baselines::MultiStreamPolicy policy;
  const auto m = h.run(policy, false);
  for (const auto& s : m.ls) {
    EXPECT_LE(s.attained, s.served);
    EXPECT_LE(s.served, s.arrived);
    EXPECT_GT(s.slo, s.isolated_p99);
  }
  EXPECT_GT(m.overall_throughput(), 0.0);
  EXPECT_EQ(m.duration, 300 * kNsPerMs);
}

TEST_F(ServingTest, TgsPaysContextSwitches) {
  ServingHarness h(small_options(0.35, 1.0));
  baselines::TgsPolicy tgs;
  baselines::TemporalPolicy temporal;
  const auto mt = h.run(tgs, false);
  const auto mtemp = h.run(temporal, false);
  // TGS's dwell + switch cost inflate LS latency beyond plain temporal.
  double tgs_p99 = 0, temp_p99 = 0;
  for (const auto& s : mt.ls) tgs_p99 += s.p99_ms();
  for (const auto& s : mtemp.ls) temp_p99 += s.p99_ms();
  EXPECT_GT(tgs_p99, temp_p99);
}

}  // namespace
}  // namespace sgdrc::core
