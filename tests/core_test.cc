// Tests for the SGDRC core: offline profiler, serving engine mechanics,
// the SGDRC policy (tidal masking + bimodal channels), and qualitative
// end-to-end comparisons against the baselines on a small configuration.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <sstream>
#include <string>

#include "baselines/baseline_policies.h"
#include "core/harness.h"
#include "core/profiler.h"
#include "core/serving.h"
#include "core/sgdrc_policy.h"
#include "models/zoo.h"

namespace sgdrc::core {
namespace {

using gpusim::GpuSpec;

GpuSpec small_spec() { return gpusim::test_gpu(); }

// ----------------------------------------------------------- Profiler ----

TEST(Profiler, MinTpcsWithinRange) {
  OfflineProfiler prof(small_spec());
  auto m = models::mobilenet_v3();
  prof.profile(m);
  for (const auto& k : m.kernels) {
    EXPECT_GE(k.min_tpcs, 1u) << k.name;
    EXPECT_LE(k.min_tpcs, small_spec().num_tpcs) << k.name;
  }
}

TEST(Profiler, MemoryBoundClassification) {
  OfflineProfiler prof(small_spec());
  // A pure-compute kernel must not be memory-bound; a streaming kernel is.
  gpusim::KernelDesc comp;
  comp.name = "gemm";
  comp.flops = 4'000'000'000ull;
  comp.bytes = 1024;
  comp.blocks = 1u << 16;
  comp.max_useful_tpcs = 64;
  EXPECT_FALSE(prof.is_memory_bound(comp));

  gpusim::KernelDesc mem;
  mem.name = "copy";
  mem.flops = 1000;
  mem.bytes = 400'000'000ull;
  mem.blocks = 1u << 16;
  mem.max_useful_tpcs = 64;
  EXPECT_TRUE(prof.is_memory_bound(mem));
}

TEST(Profiler, TensorsInheritMemoryBoundness) {
  OfflineProfiler prof(small_spec());
  auto m = models::densenet161();
  prof.profile(m);
  bool any_mb_kernel = false, any_mb_tensor = false;
  for (const auto& k : m.kernels) any_mb_kernel |= k.memory_bound;
  for (const auto& t : m.tensors) any_mb_tensor |= t.memory_bound;
  EXPECT_TRUE(any_mb_kernel);
  EXPECT_TRUE(any_mb_tensor);
  // Every access of a memory-bound kernel touches a memory-bound tensor.
  for (const auto& k : m.kernels) {
    if (!k.memory_bound) continue;
    for (const auto& a : k.accesses) {
      EXPECT_TRUE(m.tensors[a.tensor].memory_bound);
    }
  }
}

TEST(Profiler, MinTpcsSmallForMemoryBoundKernels) {
  OfflineProfiler prof(small_spec());
  gpusim::KernelDesc mem;
  mem.name = "stream";
  mem.flops = 50'000'000ull;     // light compute
  mem.bytes = 200'000'000ull;    // heavy traffic
  mem.blocks = 1u << 16;
  mem.max_useful_tpcs = 64;
  const unsigned n = prof.min_tpcs_for(mem);
  EXPECT_LT(n, small_spec().num_tpcs);  // saturates before the full GPU
}

// --------------------------------------------------- Channel partition ----

TEST(SgdrcPolicy, BeChannelPartitionRespectsGroups) {
  const GpuSpec a2000 = gpusim::rtx_a2000();  // 6 channels, pairs
  const auto be = be_channel_partition(a2000, 1.0 / 3.0);
  EXPECT_EQ(gpusim::channel_count(be), 2u);  // one pair
  const GpuSpec p40 = gpusim::tesla_p40();   // 12 channels, quads
  const auto be40 = be_channel_partition(p40, 1.0 / 3.0);
  EXPECT_EQ(gpusim::channel_count(be40), 4u);  // one quad
  // LS and BE partitions are disjoint and cover all channels.
  EXPECT_EQ(be & ~gpusim::all_channels(6), 0u);
}

// -------------------------------------------------- Serving mechanics ----

class ServingTest : public ::testing::Test {
 protected:
  HarnessOptions small_options(double util, double scale) {
    HarnessOptions o;
    o.spec = small_spec();
    o.ls_letters = "AB";
    o.be_letters = "I";
    o.utilization = util;
    o.load_scale = scale;
    o.duration = 300 * kNsPerMs;
    o.seed = 99;
    return o;
  }
};

TEST_F(ServingTest, TemporalServesEverythingEventually) {
  ServingHarness h(small_options(0.3, 1.0));
  baselines::TemporalPolicy policy;
  const auto m = h.run(policy, false);
  const auto ls = m.of_class(QosClass::kLatencySensitive);
  ASSERT_EQ(ls.size(), 2u);
  for (const auto* s : ls) {
    EXPECT_GT(s->served, 0u) << s->name;
    EXPECT_GE(s->attainment(), 0.9) << s->name;  // temporal protects LS
  }
}

TEST_F(ServingTest, MultiStreamKeepsBeAlwaysResident) {
  // Spatial multiplexing co-executes BE continuously (Fig. 1b) — the BE
  // task is in flight essentially the whole run.
  ServingHarness h(small_options(0.3, 1.0));
  baselines::MultiStreamPolicy multi;
  const auto mm = h.run(multi, false);
  EXPECT_GT(static_cast<double>(mm.be_busy_ns) /
                static_cast<double>(mm.duration),
            0.9);
}

TEST_F(ServingTest, TemporalStarvesBeUnderLoad) {
  // Fig. 4a: as LS load rises, temporal multiplexing's BE throughput
  // collapses while LS attainment stays high.
  ServingHarness light(small_options(0.15, 1.0));
  ServingHarness heavy(small_options(0.6, 1.0));
  baselines::TemporalPolicy p1, p2;
  const auto ml = light.run(p1, false);
  const auto mh = heavy.run(p2, false);
  EXPECT_LT(mh.be_throughput(), ml.be_throughput());
  EXPECT_GT(mh.mean_attainment(), 0.85);
}

TEST_F(ServingTest, SgdrcMeetsSloAndBeatsStaticBe) {
  ServingHarness h(small_options(0.35, 1.0));
  SgdrcPolicy sgdrc(h.options().spec);
  SgdrcStaticPolicy static_(h.options().spec);
  const auto ms = h.run(sgdrc, true);
  const auto mst = h.run(static_, true);
  EXPECT_GE(ms.mean_attainment(), 0.90);
  EXPECT_GT(ms.be_throughput(), mst.be_throughput());
  EXPECT_GT(ms.mean_attainment(), mst.mean_attainment());
}

TEST_F(ServingTest, SgdrcBeatsMultiStreamOnAttainment) {
  ServingHarness h(small_options(0.45, 1.0));
  SgdrcPolicy sgdrc(h.options().spec);
  baselines::MultiStreamPolicy multi;
  const auto ms = h.run(sgdrc, true);
  const auto mm = h.run(multi, false);
  EXPECT_GT(ms.mean_attainment(), mm.mean_attainment());
}

TEST_F(ServingTest, SgdrcEvictsBeUnderLoad) {
  ServingHarness h(small_options(0.45, 1.0));
  SgdrcPolicy sgdrc(h.options().spec);
  const auto m = h.run(sgdrc, true);
  uint64_t evictions = 0;
  for (const auto* b : m.of_class(QosClass::kBestEffort)) {
    evictions += b->evictions;
  }
  EXPECT_GT(evictions, 0u);  // the tide came in at least once
}

TEST_F(ServingTest, DynamicSgdrcBeatsStaticOnBeThroughputAtLightLoad) {
  // §9.3: "Compared with SGDRC (Static), SGDRC achieves higher BE job
  // throughput, which is more evident in the light workload scenario" —
  // the dynamic policy lets BE monopolise the GPU between bursts.
  ServingHarness h(small_options(0.35, 0.5));
  SgdrcPolicy dynamic(h.options().spec);
  SgdrcStaticPolicy static_(h.options().spec);
  const auto md = h.run(dynamic, true);
  const auto ms = h.run(static_, true);
  EXPECT_GT(md.be_throughput(), ms.be_throughput());
}

TEST_F(ServingTest, OrionConstraintCountersPopulate) {
  ServingHarness h(small_options(0.45, 1.0));
  baselines::OrionPolicy orion;
  const auto m = h.run(orion, false);
  EXPECT_GT(orion.admitted(), 0u);
  EXPECT_GT(orion.rejected_sm() + orion.rejected_runtime() +
                orion.rejected_resource(),
            0u);
  EXPECT_GT(m.be_throughput(), 0.0);
}

TEST_F(ServingTest, OrionBeThroughputDeclinesWithLsLoad) {
  // Fig. 5a's shape: BE throughput collapses as LS load rises. (On this
  // 4-TPC toy GPU the SLO is very tight, so no attainment floor here —
  // the P40/A2000 bench covers the attainment side.)
  ServingHarness light(small_options(0.15, 1.0));
  ServingHarness heavy(small_options(0.6, 1.0));
  baselines::OrionPolicy p1, p2;
  const auto ml = light.run(p1, false);
  const auto mh = heavy.run(p2, false);
  EXPECT_LT(mh.be_throughput(), ml.be_throughput() / 2);
}

TEST_F(ServingTest, MetricsAccounting) {
  ServingHarness h(small_options(0.3, 1.0));
  baselines::MultiStreamPolicy policy;
  const auto m = h.run(policy, false);
  for (const auto* s : m.of_class(QosClass::kLatencySensitive)) {
    EXPECT_LE(s->attained, s->served);
    EXPECT_LE(s->served, s->arrived);
    EXPECT_GT(s->slo, s->isolated_p99);
  }
  EXPECT_GT(m.overall_throughput(), 0.0);
  EXPECT_EQ(m.duration, 300 * kNsPerMs);
}

TEST_F(ServingTest, TgsPaysContextSwitches) {
  ServingHarness h(small_options(0.35, 1.0));
  baselines::TgsPolicy tgs;
  baselines::TemporalPolicy temporal;
  const auto mt = h.run(tgs, false);
  const auto mtemp = h.run(temporal, false);
  // TGS's dwell + switch cost inflate LS latency beyond plain temporal.
  double tgs_p99 = 0, temp_p99 = 0;
  for (const auto* s : mt.of_class(QosClass::kLatencySensitive)) {
    tgs_p99 += s->p99_ms();
  }
  for (const auto* s : mtemp.of_class(QosClass::kLatencySensitive)) {
    temp_p99 += s->p99_ms();
  }
  EXPECT_GT(tgs_p99, temp_p99);
}

// ----------------------------------------------------- Tenant API ----

/// Policy driven by a std::function — scripts the new API from tests.
class FnPolicy : public Policy {
 public:
  explicit FnPolicy(std::function<void(ServingSim&)> fn)
      : fn_(std::move(fn)) {}
  std::string name() const override { return "test-fn"; }
  void schedule(ServingSim& sim) override { fn_(sim); }

 private:
  std::function<void(ServingSim&)> fn_;
};

/// A small synthetic BE model whose batches finish in tens of
/// microseconds on the 4-TPC test GPU, so round-robin rotation cycles
/// many times within a short simulated run.
models::ModelDesc tiny_be_model(const std::string& name, char letter) {
  models::ModelDesc m;
  m.name = name;
  m.letter = letter;
  m.service = models::ServiceClass::kBestEffort;
  m.batch = 4;
  for (int i = 0; i < 3; ++i) {
    gpusim::KernelDesc k;
    k.name = name + ".k" + std::to_string(i);
    k.flops = 4'000'000;
    k.bytes = 200'000;
    k.blocks = 64;
    k.max_useful_tpcs = 4;
    k.preemptible = true;
    k.memory_bound = i == 1;  // one memory-bound kernel per batch
    k.min_tpcs = 1;
    m.kernels.push_back(std::move(k));
  }
  return m;
}

ServingSimBuilder two_be_builder() {
  return ServingSimBuilder()
      .gpu(small_spec())
      .duration(20 * kNsPerMs)
      .add_best_effort(tiny_be_model("tiny-x", 'X'))
      .add_best_effort(tiny_be_model("tiny-y", 'Y'));
}

TEST(TenantApi, ScheduleIsIdempotentAndLaunchedJobsLeaveTheWaitingSet) {
  // schedule() fires after every state change; a correct substrate must
  // (a) not re-offer a job that was just launched and (b) reject a
  // second launch of an in-flight job.
  size_t launches = 0;
  FnPolicy policy([&](ServingSim& sim) {
    for (const auto& job : sim.waiting_jobs(QosClass::kBestEffort)) {
      sim.launch(job.id, {});
      ++launches;
      // The launched job must vanish from the waiting view immediately.
      for (const auto& w : sim.waiting_jobs(QosClass::kBestEffort)) {
        EXPECT_NE(w.id, job.id);
      }
      EXPECT_THROW(sim.launch(job.id, {}), ConfigError);
    }
  });
  auto sim = two_be_builder().build(policy);
  const auto m = sim->run({});
  EXPECT_GT(launches, 0u);
  uint64_t done = 0;
  for (const auto* b : m.of_class(QosClass::kBestEffort)) {
    done += b->kernels_done;
  }
  EXPECT_GT(done, 0u);
}

TEST(TenantApi, EvictRestartsTheSameKernelFromScratch) {
  // §7.1 reset semantics: an evicted kernel loses all progress and the
  // job's cursor stays put — the next launch() runs the same kernel.
  const gpusim::KernelDesc* launched = nullptr;
  bool evicted_once = false;
  FnPolicy policy([&](ServingSim& sim) {
    const auto waiting = sim.waiting_jobs(QosClass::kBestEffort);
    if (!waiting.empty()) {
      const auto& job = waiting.front();
      if (evicted_once && launched != nullptr) {
        // After the eviction landed, the job offers the SAME kernel.
        EXPECT_EQ(job.next_kernel, launched);
        launched = nullptr;  // checked; stop pinning
      } else if (!evicted_once) {
        launched = job.next_kernel;
      }
      sim.launch(job.id, {});
      if (!evicted_once) {
        // Preempt the very kernel we just launched.
        const auto view = sim.find_job(job.id);
        ASSERT_TRUE(view.has_value());
        EXPECT_TRUE(view->in_flight);
        sim.evict(job.id);
        evicted_once = true;
      }
    }
  });
  auto sim = ServingSimBuilder()
                 .gpu(small_spec())
                 .duration(20 * kNsPerMs)
                 .add_best_effort(tiny_be_model("tiny-e", 'E'))
                 .build(policy);
  const auto m = sim->run({});
  const auto bes = m.of_class(QosClass::kBestEffort);
  ASSERT_EQ(bes.size(), 1u);
  EXPECT_EQ(bes[0]->evictions, 1u);
  // The evicted kernel contributed no progress (restart, not resume).
  EXPECT_GT(bes[0]->kernels_done, 0u);
}

TEST(TenantApi, ViewsAreConsistentAcrossAccessors) {
  FnPolicy policy([&](ServingSim& sim) {
    const auto all = sim.jobs();
    const auto ls = sim.jobs(QosClass::kLatencySensitive);
    const auto be = sim.jobs(QosClass::kBestEffort);
    EXPECT_EQ(all.size(), ls.size() + be.size());
    size_t inflight_ls = 0, inflight_be = 0;
    for (const auto& v : all) {
      // find_job agrees field-for-field with the enumeration view.
      const auto f = sim.find_job(v.id);
      ASSERT_TRUE(f.has_value());
      EXPECT_EQ(f->tenant, v.tenant);
      EXPECT_EQ(f->qos, v.qos);
      EXPECT_EQ(f->in_flight, v.in_flight);
      EXPECT_EQ(f->next_kernel, v.next_kernel);
      // in-flight ⇔ no next kernel.
      EXPECT_EQ(v.next_kernel == nullptr, v.in_flight);
      (v.qos == QosClass::kLatencySensitive ? inflight_ls : inflight_be) +=
          v.in_flight;
      // The view's tenant really is of the view's class.
      EXPECT_EQ(sim.tenant(v.tenant).qos, v.qos);
    }
    EXPECT_EQ(sim.inflight(QosClass::kLatencySensitive), inflight_ls);
    EXPECT_EQ(sim.inflight(QosClass::kBestEffort), inflight_be);
    // Waiting views are exactly the not-in-flight visible jobs.
    for (const auto qos :
         {QosClass::kLatencySensitive, QosClass::kBestEffort}) {
      size_t waiting_expected = 0;
      for (const auto& v : sim.jobs(qos)) waiting_expected += !v.in_flight;
      EXPECT_EQ(sim.waiting_jobs(qos).size(), waiting_expected);
    }
    // Keep the sim busy so views change between invocations.
    for (const auto& job : sim.waiting_jobs(QosClass::kLatencySensitive)) {
      sim.launch(job.id, {});
    }
    for (const auto& job : sim.waiting_jobs(QosClass::kBestEffort)) {
      sim.launch(job.id, {});
    }
  });
  HarnessOptions o;
  o.spec = small_spec();
  o.ls_letters = "AB";
  o.be_letters = "IJ";
  o.utilization = 0.3;
  o.duration = 100 * kNsPerMs;
  o.seed = 7;
  ServingHarness h(o);
  const auto m = h.run(policy, false);
  EXPECT_GT(m.overall_throughput(), 0.0);
}

TEST(TenantApi, RoundRobinExposesOneBeJobConcurrentExposesAll) {
  bool saw_two_concurrent = false;
  FnPolicy rr_policy([&](ServingSim& sim) {
    EXPECT_LE(sim.jobs(QosClass::kBestEffort).size(), 1u);
    for (const auto& job : sim.waiting_jobs(QosClass::kBestEffort)) {
      sim.launch(job.id, {});
    }
  });
  auto rr = two_be_builder().build(rr_policy);
  const auto m_rr = rr->run({});

  FnPolicy conc_policy([&](ServingSim& sim) {
    if (sim.jobs(QosClass::kBestEffort).size() == 2) {
      saw_two_concurrent = true;
    }
    for (const auto& job : sim.waiting_jobs(QosClass::kBestEffort)) {
      sim.launch(job.id, {});
    }
  });
  auto conc = two_be_builder()
                  .best_effort_mode(BeMode::kConcurrent)
                  .build(conc_policy);
  const auto m_conc = conc->run({});

  EXPECT_TRUE(saw_two_concurrent);
  // Concurrent mode: both tenants progress simultaneously; two kernels
  // can be in flight, so BE busy time accrues for both.
  const auto bes = m_conc.of_class(QosClass::kBestEffort);
  ASSERT_EQ(bes.size(), 2u);
  for (const auto* b : bes) {
    EXPECT_GT(b->kernels_done, 0u) << b->name;
    EXPECT_GT(b->batches_completed, 0u) << b->name;
  }
  // Round-robin also serves both tenants over time (the rotation), just
  // never at once.
  const auto bes_rr = m_rr.of_class(QosClass::kBestEffort);
  ASSERT_EQ(bes_rr.size(), 2u);
  for (const auto* b : bes_rr) {
    EXPECT_GT(b->batches_completed, 0u) << b->name;
  }
}

TEST(TenantApi, LaunchOnNonResidentBeJobIsRejected) {
  // In round-robin mode only the resident BE tenant is schedulable; a
  // stale JobId from the other tenant must be refused, not silently run.
  bool probed = false;
  FnPolicy policy([&](ServingSim& sim) {
    const auto be = sim.jobs(QosClass::kBestEffort);
    ASSERT_EQ(be.size(), 1u);  // rotation exposes exactly one
    if (!probed) {
      probed = true;
      // The two BE batch loops get the first two JobIds at construction;
      // exactly one of them is resident right now — the other must be
      // rejected.
      const JobId resident = be.front().id;
      const JobId hidden = resident == 1 ? 2 : 1;
      EXPECT_THROW(sim.launch(hidden, {}), ConfigError);
    }
    for (const auto& job : sim.waiting_jobs(QosClass::kBestEffort)) {
      sim.launch(job.id, {});
    }
  });
  auto sim = two_be_builder().build(policy);
  const auto m = sim->run({});
  EXPECT_TRUE(probed);
  // Both tenants took turns through the rotation.
  for (const auto* b : m.of_class(QosClass::kBestEffort)) {
    EXPECT_GT(b->kernels_done, 0u) << b->name;
  }
}

TEST(TenantApi, PerTenantInstanceOverrides) {
  // A tenant-specific instance pool caps that tenant's concurrent jobs
  // independently of the config default.
  OfflineProfiler prof(small_spec());
  auto ls = models::make_model('A');
  prof.profile(ls);
  const TimeNs iso = prof.isolated_latency(ls);

  size_t max_jobs = 0;
  FnPolicy policy([&](ServingSim& sim) {
    max_jobs = std::max(max_jobs,
                        sim.jobs(QosClass::kLatencySensitive).size());
    for (const auto& job : sim.waiting_jobs(QosClass::kLatencySensitive)) {
      sim.launch(job.id, {});
    }
  });
  auto sim = ServingSimBuilder()
                 .gpu(small_spec())
                 .duration(50 * kNsPerMs)
                 .default_ls_instances(4)
                 .add_latency_sensitive(ls, iso, /*instances=*/1)
                 .build(policy);
  // A burst of simultaneous arrivals; with instances=1 they serialize.
  std::vector<workload::Request> burst;
  for (int i = 0; i < 6; ++i) burst.push_back({1000, 0});
  const auto m = sim->run(burst);
  EXPECT_EQ(max_jobs, 1u);  // never more than one admitted job
  const auto lsm = m.of_class(QosClass::kLatencySensitive);
  ASSERT_EQ(lsm.size(), 1u);
  EXPECT_EQ(lsm[0]->arrived, 6u);
  EXPECT_EQ(lsm[0]->served, 6u);
}

// Regression: a tenant that served zero requests used to report 100%
// attainment (and pulled class means toward a vacuous 1.0).
TEST(Metrics, ZeroServedTenantReportsNoDataNotPerfectAttainment) {
  workload::TenantMetrics idle;
  idle.qos = QosClass::kLatencySensitive;
  EXPECT_TRUE(std::isnan(idle.attainment()));
  EXPECT_FALSE(idle.has_latency_data());

  workload::TenantMetrics busy;
  busy.qos = QosClass::kLatencySensitive;
  busy.served = 4;
  busy.attained = 3;
  EXPECT_DOUBLE_EQ(busy.attainment(), 0.75);

  // The idle tenant must not drag the class mean toward 1.0 (the old
  // behaviour averaged {1.0, 0.75} = 0.875 here).
  EXPECT_DOUBLE_EQ(workload::mean_attainment({idle, busy}), 0.75);
  // No data anywhere is NaN, not a vacuous pass.
  EXPECT_TRUE(std::isnan(workload::mean_attainment({idle})));
}


// ------------------------------------------------------- DAG frontier ----

/// A wide synthetic DAG: a stem fans out to three independent branches
/// that join — the frontier holds three co-schedulable kernels after the
/// stem retires.
models::ModelDesc wide_dag_model(const std::string& name, char letter,
                                 models::ServiceClass service) {
  models::ModelDesc m;
  m.name = name;
  m.letter = letter;
  m.service = service;
  m.batch = service == models::ServiceClass::kBestEffort ? 4 : 1;
  for (int i = 0; i < 5; ++i) {
    gpusim::KernelDesc k;
    k.name = name + ".k" + std::to_string(i);
    k.flops = 4'000'000;
    k.bytes = 200'000;
    k.blocks = 64;
    k.max_useful_tpcs = 4;
    k.preemptible = service == models::ServiceClass::kBestEffort;
    k.memory_bound = i == 2;  // one memory-bound branch
    k.min_tpcs = 1;
    m.kernels.push_back(std::move(k));
  }
  m.kernel_deps = {{}, {0}, {0}, {0}, {1, 2, 3}};
  return m;
}

TEST(DagFrontier, CoSchedulesIndependentKernels) {
  // "Launch every waiting entry" must put all three branches in flight
  // at once — one request finally uses more than one kernel's worth of
  // the GPU.
  size_t max_inflight = 0;
  FnPolicy policy([&](ServingSim& sim) {
    for (const auto& job : sim.waiting_jobs(QosClass::kBestEffort)) {
      sim.launch(job.id, {});
    }
    // A drained frontier rejects further launches (nothing ready).
    for (const auto& job : sim.jobs(QosClass::kBestEffort)) {
      if (job.in_flight) {
        EXPECT_THROW(sim.launch(job.id, {}), ConfigError);
      }
    }
    max_inflight =
        std::max(max_inflight, sim.inflight(QosClass::kBestEffort));
  });
  auto sim = ServingSimBuilder()
                 .gpu(small_spec())
                 .duration(20 * kNsPerMs)
                 .add_best_effort(wide_dag_model(
                     "wide", 'W', models::ServiceClass::kBestEffort))
                 .build(policy);
  const auto m = sim->run({});
  EXPECT_GE(max_inflight, 3u);
  EXPECT_GT(m.of_class(QosClass::kBestEffort)[0]->batches_completed, 0u);
}

TEST(DagFrontier, EvictReturnsEvictedKernelsToReady) {
  // §7.1 restart-from-scratch over a frontier: evicting the job pulls
  // every in-flight branch back, and each lands in the ready set again.
  bool evict_issued = false;
  size_t max_ready_after = 0;
  FnPolicy policy([&](ServingSim& sim) {
    const auto jobs = sim.jobs(QosClass::kBestEffort);
    if (jobs.empty()) return;
    if (!evict_issued) {
      for (const auto& w : sim.waiting_jobs(QosClass::kBestEffort)) {
        sim.launch(w.id, {});
      }
      if (sim.inflight(QosClass::kBestEffort) >= 3) {
        sim.evict(jobs.front().id);
        evict_issued = true;
      }
    } else {
      // Stop launching; watch the evictions land back in the ready set.
      max_ready_after = std::max(
          max_ready_after, sim.waiting_jobs(QosClass::kBestEffort).size());
    }
  });
  auto sim = ServingSimBuilder()
                 .gpu(small_spec())
                 .duration(5 * kNsPerMs)
                 .add_best_effort(wide_dag_model(
                     "wide", 'W', models::ServiceClass::kBestEffort))
                 .build(policy);
  sim->run({});
  EXPECT_TRUE(evict_issued);
  EXPECT_GE(max_ready_after, 3u);
}

/// Exact textual fingerprint of a serving run (precision 17: doubles
/// round-trip), down to every raw latency sample.
std::string serving_digest(const workload::ServingMetrics& m) {
  std::ostringstream os;
  os.precision(17);
  for (const auto& t : m.tenants) {
    os << t.id << ": arrived=" << t.arrived << " served=" << t.served
       << " attained=" << t.attained << " kernels=" << t.kernels_done
       << " batches=" << t.batches_completed << " evictions=" << t.evictions
       << " lat=";
    for (const auto s : t.latency.raw()) os << s << ' ';
    os << '\n';
  }
  return os.str();
}

std::string run_wide_model_once() {
  workload::TraceOptions topt;
  topt.services = 1;
  topt.duration = 50 * kNsPerMs;
  topt.per_service_rates = {1500.0};
  topt.burstiness = 0.35;
  topt.seed = 0xd16;
  const auto trace = workload::generate_apollo_like_trace(topt);
  SgdrcPolicy controller(small_spec());
  auto sim = ServingSimBuilder()
                 .gpu(small_spec())
                 .duration(topt.duration)
                 .slo_multiplier(4.0)
                 .add_latency_sensitive(
                     wide_dag_model("wide-ls", 'V',
                                    models::ServiceClass::kLatencySensitive),
                     50 * kNsPerUs)
                 .add_best_effort(wide_dag_model(
                     "wide-be", 'W', models::ServiceClass::kBestEffort))
                 .build(controller);
  const auto m = sim->run(trace);
  EXPECT_GT(m.tenants[0].served, 0u);
  return serving_digest(m);
}

TEST(DagFrontier, RerunsAreBitIdentical) {
  // The ready order is kernel-index ascending by construction, never
  // completion-order dependent — two fresh runs must agree down to the
  // last latency sample.
  EXPECT_EQ(run_wide_model_once(), run_wide_model_once());
}

}  // namespace
}  // namespace sgdrc::core
