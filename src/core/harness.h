// ServingHarness: one-stop setup for §9's end-to-end scenario. Builds the
// Tab. 3 zoo, runs offline profiling, derives per-service request rates
// that put the LS side at a target utilisation, generates the Apollo-like
// trace, prepares SPT-transformed model variants for SGDRC, and runs any
// Policy over the identical workload — so every system in Fig. 17 is
// compared apples-to-apples.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/profiler.h"
#include "core/serving.h"
#include "workload/trace.h"

namespace sgdrc::core {

struct HarnessOptions {
  gpusim::GpuSpec spec;
  gpusim::ExecutorParams exec_params;
  std::string ls_letters = "ABCDEFGH";  // Tab. 3 LS set
  std::string be_letters = "IJK";       // Tab. 3 BE set
  /// Target LS utilisation (fraction of serialized capacity) at scale 1.
  double utilization = 0.40;
  /// §9.2: heavy = 1.0, light = 0.5.
  double load_scale = 1.0;
  /// Fraction of requests arriving in frame-aligned bursts.
  double burstiness = 0.5;
  TimeNs duration = 2 * kNsPerSec;
  unsigned ls_instances = 4;
  /// How the BE tenants share the GPU: §9.2's round-robin rotation, or
  /// all tenants co-resident (opens N-way colocation scenarios).
  BeMode be_mode = BeMode::kRoundRobin;
  uint64_t seed = 0x5eed;
};

class ServingHarness {
 public:
  explicit ServingHarness(HarnessOptions opt);

  /// Run one system. `spt` selects the SPT-transformed model variants
  /// (SGDRC and SGDRC-Static run transformed memory-bound kernels and pay
  /// the §9.1.2 overhead; baselines run the original kernels).
  workload::ServingMetrics run(control::Controller& controller,
                               bool spt) const;
  /// Legacy imperative flavour (wrapped in a LegacyPolicyAdapter).
  workload::ServingMetrics run(Policy& policy, bool spt) const;

  const HarnessOptions& options() const { return opt_; }
  size_t ls_count() const { return ls_plain_.size(); }
  TimeNs isolated_latency(size_t service) const { return iso_.at(service); }
  double rate_for(size_t service) const { return rates_.at(service); }
  const models::ModelDesc& ls_model(size_t i) const { return ls_plain_[i]; }
  const models::ModelDesc& ls_model_spt(size_t i) const { return ls_spt_[i]; }
  const models::ModelDesc& be_model(size_t i) const { return be_plain_[i]; }
  const models::ModelDesc& be_model_spt(size_t i) const { return be_spt_[i]; }
  size_t be_count() const { return be_plain_.size(); }
  const std::vector<workload::Request>& trace() const { return trace_; }
  const OfflineProfiler& profiler() const { return *profiler_; }

  /// SPT-transform a profiled model: rewrite its memory-bound kernels
  /// (they carry the 2.9% overhead and the extra registers of Fig. 15b).
  static models::ModelDesc transform_for_spt(const models::ModelDesc& m,
                                             const OfflineProfiler& prof);

 private:
  HarnessOptions opt_;
  std::unique_ptr<OfflineProfiler> profiler_;
  std::vector<models::ModelDesc> ls_plain_, be_plain_;
  std::vector<models::ModelDesc> ls_spt_, be_spt_;
  std::vector<TimeNs> iso_;
  std::vector<double> rates_;
  std::vector<workload::Request> trace_;
};

}  // namespace sgdrc::core
