// Offline profiling (§4's offline phase):
//
//  * min_tpcs per kernel — binary search for the smallest TPC count whose
//    runtime is within tolerance of the full-GPU runtime (the SM_LS the
//    tidal scheduler reserves, §7.1);
//  * memory-boundedness per kernel — co-run the kernel against an L2/VRAM
//    thrasher on disjoint TPCs; a kernel is memory-bound when its runtime
//    degrades (§7.2's definition);
//  * memory-bound flags on tensors — a tensor is memory-bound when some
//    memory-bound kernel accesses it;
//  * the model's isolated latency (the SLO base, §9.2).
#pragma once

#include "common/event_queue.h"
#include "gpusim/executor.h"
#include "gpusim/gpu_spec.h"
#include "models/model.h"

namespace sgdrc::core {

struct ProfilerOptions {
  /// "Optimal latency" tolerance for the min-TPC binary search.
  double latency_tolerance = 0.02;
  /// Degradation under the thrasher that marks a kernel memory-bound.
  double memory_bound_threshold = 0.10;
};

class OfflineProfiler {
 public:
  OfflineProfiler(const gpusim::GpuSpec& spec,
                  gpusim::ExecutorParams exec_params = {},
                  ProfilerOptions opt = {});

  /// Fill kernel.min_tpcs / kernel.memory_bound and tensor.memory_bound.
  void profile(models::ModelDesc& m) const;

  /// Minimum TPCs for optimal latency of one kernel (binary search).
  unsigned min_tpcs_for(const gpusim::KernelDesc& k) const;

  /// §7.2's measurement: does an L2-thrashing co-runner on disjoint TPCs
  /// degrade this kernel?
  bool is_memory_bound(const gpusim::KernelDesc& k) const;

  /// Isolated end-to-end latency: kernels run back-to-back on the whole
  /// GPU (the p99-isolated base of the SLO; the simulator is
  /// deterministic, so p99 = the value itself).
  TimeNs isolated_latency(const models::ModelDesc& m) const;

  const gpusim::GpuSpec& spec() const { return spec_; }
  const gpusim::ExecutorParams& exec_params() const { return params_; }

 private:
  gpusim::GpuSpec spec_;
  gpusim::ExecutorParams params_;
  ProfilerOptions opt_;
};

}  // namespace sgdrc::core
