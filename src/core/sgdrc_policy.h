// SGDRC's online scheduler (§4 online phase, §7), rewritten as a
// plan-emitting control::Controller:
//
//  * spatial-temporal multiplexing: at most one LS *job* and one BE
//    *job* co-execute; LS/BE queues are served in order. A DAG job's
//    dependency-independent operators co-schedule inside its one slot
//    (capped by SgdrcOptions::intra_tenant_width) — internal fan-out is
//    not a co-runner;
//  * tidal SM masking (§7.1): the LS partition grows to the maximum
//    min-TPC requirement over a sliding window of queued LS kernels and
//    shrinks to zero when LS goes idle; the BE partition is the tide pool
//    left behind. LS preempts BE via the eviction flag when the BE kernel
//    holds TPCs the LS kernel needs;
//  * bimodal tensors (§7.2): when colocated, memory-bound LS kernels run
//    on (1−ChBE) of the channels and memory-bound BE kernels on ChBE;
//    when either side is alone it gets every channel (monopolisation);
//  * vGPU guarantees (control::VgpuSpec on TenantSpec): a tenant's hard
//    TPC region is packed first for its own kernels and never handed to
//    anyone else — the tide flows only through unguaranteed TPCs.
//    Channel shares re-derive the LS/BE channel split; priorities order
//    the LS launch queue; BE weights split the tide pool when unequal.
//
// With no guarantees declared (all-default VgpuSpec), plan() emits
// exactly the directive sequence the historic imperative schedule()
// produced, so metrics are bit-for-bit identical — enforced by
// tests/control_test.cc against a verbatim copy of the legacy code.
//
// SgdrcStaticPolicy is §9.2's "SGDRC (Static)" ablation: the same
// partitions, frozen at an even split, with no tide and no preemption.
#pragma once

#include "control/controller.h"
#include "core/serving.h"
#include "gpusim/resources.h"

namespace sgdrc::core {

struct SgdrcOptions {
  double ch_be = 1.0 / 3.0;    // §6's default BE channel share
  size_t sliding_window = 8;   // §7.1 sliding-window length
  /// How long the LS reservation outlives the last LS activity. The
  /// sliding window reserves SMs for kernels "waiting in the kernel
  /// launch queue" (§7.1); holding the reservation across momentary idle
  /// gaps prevents monopolise→preempt thrash that would waste BE work.
  TimeNs reservation_window = 300 * kNsPerUs;
  /// The SM reservation decays one TPC per this interval when LS demand
  /// falls, so the BE mask follows the tide without flapping per event.
  TimeNs reserve_decay_interval = 100 * kNsPerUs;
  /// Intra-tenant width cap: at most this many kernels of one *job* may
  /// co-execute. Only DAG models (explicit kernel_deps) ever present
  /// more than one launchable kernel per job, so any value >= 1 leaves
  /// chain workloads bit-identical. The §4 spatial-temporal rule counts
  /// co-running *jobs* — a tenant's own operator branches ride inside
  /// its single slot — and this cap keeps that internal fan-out from
  /// fragmenting the SM mask. 0 = unlimited.
  unsigned intra_tenant_width = 4;
};

class SgdrcPolicy : public control::Controller {
 public:
  explicit SgdrcPolicy(const gpusim::GpuSpec& spec, SgdrcOptions opt = {});

  std::string name() const override { return "SGDRC"; }
  control::ResourcePlan plan(const control::SimView& sim) override;

  gpusim::ChannelSet be_channels() const { return be_channels_; }
  gpusim::ChannelSet ls_channels() const { return ls_channels_; }

  /// Lower bound on the sliding-window SM reservation, set per plan by an
  /// outer controller (the batch-aware wrapper widens it when batch
  /// occupancy says wide kernels are coming, narrows it back to 0 when
  /// they are not). 0 — the default — reproduces the historic tide
  /// bit-for-bit; values are clamped to the device.
  void set_reserve_floor(unsigned tpcs) { reserve_floor_ = tpcs; }
  unsigned reserve_floor() const { return reserve_floor_; }

 private:
  /// The LS/BE channel split for this plan: the ctor default, or one
  /// re-derived from the active tenants' guaranteed channel shares.
  void channel_split(const control::SimView& sim, gpusim::ChannelSet& ls,
                     gpusim::ChannelSet& be) const;

  SgdrcOptions opt_;
  unsigned num_tpcs_;
  gpusim::ChannelSet be_channels_;  // ChBE  of the channels
  gpusim::ChannelSet ls_channels_;  // 1−ChBE
  TimeNs last_ls_activity_ = 0;     // tide clock
  unsigned ls_reserve_ = 1;         // sliding-window SM reservation
  unsigned reserve_floor_ = 0;      // external floor (batch-aware wrapper)
  TimeNs last_decay_ = 0;           // reserve decay clock
};

class SgdrcStaticPolicy : public control::Controller {
 public:
  explicit SgdrcStaticPolicy(const gpusim::GpuSpec& spec);

  std::string name() const override { return "SGDRC (Static)"; }
  control::ResourcePlan plan(const control::SimView& sim) override;

 private:
  gpusim::TpcMask ls_mask_, be_mask_;
  gpusim::ChannelSet ls_channels_, be_channels_;
};

/// Round channel count to whole channel groups so the partition stays
/// colorable at the group granularity (Tab. 4).
gpusim::ChannelSet be_channel_partition(const gpusim::GpuSpec& spec,
                                        double ch_be);

}  // namespace sgdrc::core
