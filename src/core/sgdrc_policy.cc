#include "core/sgdrc_policy.h"

#include <algorithm>
#include <limits>
#include <map>

namespace sgdrc::core {

using control::Allocation;
using control::ResourcePlan;
using control::SimView;
using gpusim::ChannelSet;
using gpusim::TpcMask;

ChannelSet be_channel_partition(const gpusim::GpuSpec& spec, double ch_be) {
  SGDRC_REQUIRE(ch_be > 0.0 && ch_be < 1.0, "ChBE must be in (0,1)");
  const unsigned group = spec.channel_group_size;
  unsigned want = static_cast<unsigned>(
      static_cast<double>(spec.num_channels) * ch_be + 0.5);
  // Round to whole groups, at least one group, leaving at least one for LS.
  want = std::max(group, (want / group) * group);
  want = std::min(want, spec.num_channels - group);
  // BE gets the highest-numbered channels.
  ChannelSet s = 0;
  for (unsigned c = spec.num_channels - want; c < spec.num_channels; ++c) {
    s |= gpusim::channel_bit(c);
  }
  return s;
}

SgdrcPolicy::SgdrcPolicy(const gpusim::GpuSpec& spec, SgdrcOptions opt)
    : opt_(opt), num_tpcs_(spec.num_tpcs) {
  be_channels_ = be_channel_partition(spec, opt_.ch_be);
  ls_channels_ = gpusim::all_channels(spec.num_channels) & ~be_channels_;
}

void SgdrcPolicy::channel_split(const SimView& sim, ChannelSet& ls,
                                ChannelSet& be) const {
  double ls_share = 0.0, be_share = 0.0;
  bool any = false;
  for (TenantId t = 0; t < sim.tenant_count(); ++t) {
    if (!sim.tenant_active(t)) continue;
    const double s = sim.vgpu(t).channel_share;
    if (s <= 0.0) continue;
    any = true;
    (sim.tenant(t).qos == QosClass::kLatencySensitive ? ls_share
                                                      : be_share) += s;
  }
  if (!any) {
    // No declared shares: the ctor split (bit-for-bit legacy path).
    ls = ls_channels_;
    be = be_channels_;
    return;
  }
  // Declared shares re-derive ChBE: BE gets its guaranteed share, but
  // never so much that LS guarantees are squeezed below theirs.
  double ch_be = be_share > 0.0 ? be_share : opt_.ch_be;
  if (ls_share > 0.0) ch_be = std::min(ch_be, 1.0 - ls_share);
  ch_be = std::clamp(ch_be, 0.01, 0.99);  // partition rounds to groups
  be = be_channel_partition(sim.spec(), ch_be);
  ls = gpusim::all_channels(sim.spec().num_channels) & ~be;
}

ResourcePlan SgdrcPolicy::plan(const SimView& sim) {
  ResourcePlan plan;
  const TpcMask full = gpusim::full_tpc_mask(num_tpcs_);
  auto waiting = sim.waiting_jobs(QosClass::kLatencySensitive);
  const auto waiting_be = sim.waiting_jobs(QosClass::kBestEffort);
  const bool ls_active =
      !waiting.empty() || sim.inflight(QosClass::kLatencySensitive) > 0;

  if (ls_active) last_ls_activity_ = sim.now();

  // vGPU geometry: the enforcer carves one concrete TPC region per
  // guaranteed tenant; the tide must flow around every region that is
  // not the launching tenant's own. All-default specs give empty masks
  // and the legacy behaviour below, directive for directive.
  const TpcMask ls_guar = sim.guaranteed_union(QosClass::kLatencySensitive);
  const TpcMask be_guar = sim.guaranteed_union(QosClass::kBestEffort);
  const TpcMask any_guar = ls_guar | be_guar;
  ChannelSet eff_ls_channels, eff_be_channels;
  channel_split(sim, eff_ls_channels, eff_be_channels);
  const ChannelSet all_ch =
      gpusim::all_channels(sim.spec().num_channels);

  // Snapshot current occupancy; classify running kernels by the QoS class
  // of the job behind each launch tag. One BeRun per *job*: a DAG job
  // running several of its operators concurrently is still one co-runner
  // for §4's counting, so its kernels fold into a single entry (union of
  // masks). Chain jobs hold at most one kernel, so grouping is the
  // identity there.
  struct BeRun {
    JobId job;
    TpcMask mask;
    TpcMask widest;  // the widest mask this job may hold (guarantees)
    bool monopolising;
    bool evicting;
  };
  TpcMask ls_used = 0;
  TpcMask be_mask_running = 0;
  bool be_memory_bound_in_flight = false;
  std::vector<BeRun> be_runs;
  // Kernels in flight per job (every class) — the intra-tenant width
  // accounting for DAG frontiers. std::map: iteration must stay
  // deterministic for the bit-identical-rerun contract.
  std::map<JobId, unsigned> inflight_width;
  for (const auto& info : sim.running_infos()) {
    const auto job = sim.find_job(info.tag);
    if (job) ++inflight_width[job->id];
    if (job && job->qos == QosClass::kBestEffort) {
      const TpcMask mask = info.tpc_mask ? info.tpc_mask : full;
      be_mask_running |= mask;
      be_memory_bound_in_flight |= info.kernel->memory_bound;
      // Only memory-bound BE kernels have a channel mode to fix; others
      // always run with default mapping and need no channel eviction.
      const bool monopolising =
          info.channels == 0 && info.kernel->memory_bound;
      const auto it =
          std::find_if(be_runs.begin(), be_runs.end(),
                       [&](const BeRun& r) { return r.job == job->id; });
      if (it != be_runs.end()) {
        it->mask |= mask;
        it->monopolising |= monopolising;
        continue;
      }
      // Under guarantees, "the whole GPU" for this job stops at foreign
      // regions — promotion must not chase an unreachable full mask.
      const TpcMask own = sim.guaranteed_mask(job->tenant);
      const TpcMask widest = full & ~(any_guar & ~own);
      be_runs.push_back({job->id, mask, widest, monopolising,
                         job->evicting});
    } else {
      ls_used |= info.tpc_mask;
    }
  }

  // ---- LS side: pack co-executing LS kernels into disjoint SM_LS
  // slices (Fig. 13b) — each tenant's own guaranteed region first, then
  // idle TPCs; TPCs a BE kernel occupies are claimed only under
  // pressure — that is the preemption case (eviction flag, Fig. 13a).
  // Higher-priority tenants launch first (equal priorities keep the
  // arrival order, so the default is the legacy order exactly).
  TpcMask claimed_from_be = 0;
  // One entry per kernel launched this plan (window bookkeeping): a DAG
  // job launching several frontier kernels appears once per launch.
  std::vector<JobId> planned_ls;
  // Kernels launched per job this plan, both classes (width accounting).
  std::map<JobId, unsigned> planned_width;
  const auto width_capped = [&](JobId id) {
    if (opt_.intra_tenant_width == 0) return false;
    return inflight_width[id] + planned_width[id] >= opt_.intra_tenant_width;
  };
  if (!waiting.empty()) {
    std::stable_sort(waiting.begin(), waiting.end(),
                     [&](const auto& a, const auto& b) {
                       return sim.vgpu(a.tenant).priority >
                              sim.vgpu(b.tenant).priority;
                     });
    // Bimodal tensors (Fig. 14): LS memory-bound kernels shift to the
    // (1−ChBE) channel partition only while a memory-bound BE kernel
    // shares the GPU; compute-bound BE kernels pose no channel conflict.
    const bool colocated = be_memory_bound_in_flight;
    size_t launched = 0;
    for (const auto& job : waiting) {
      if (launched >= opt_.sliding_window) break;
      if (ls_used == full) break;
      // A DAG job's extra frontier entries wait once the job hits the
      // intra-tenant width cap (never binds for chains: one kernel in
      // flight means no waiting entry at all).
      if (width_capped(job.id)) continue;
      const unsigned need = std::max(1u, job.next_kernel->min_tpcs);
      const TpcMask own = sim.guaranteed_mask(job.tenant);
      const TpcMask foreign = any_guar & ~own;
      TpcMask mask = 0;
      unsigned got = 0;
      // Pass 0: the tenant's own guaranteed region — idle TPCs first,
      // then BE-held ones (a stale BE kernel inside a fresh guarantee is
      // claimed, which evicts it below). Empty without guarantees.
      for (int t = static_cast<int>(num_tpcs_) - 1; t >= 0 && got < need;
           --t) {
        const TpcMask bit = gpusim::tpc_bit(static_cast<unsigned>(t));
        if (!(own & bit) || ((ls_used | be_mask_running) & bit)) continue;
        mask |= bit;
        ++got;
      }
      for (int t = static_cast<int>(num_tpcs_) - 1; t >= 0 && got < need;
           --t) {
        const TpcMask bit = gpusim::tpc_bit(static_cast<unsigned>(t));
        if (!(own & bit) || (ls_used & bit) || !(be_mask_running & bit)) {
          continue;
        }
        mask |= bit;
        ++got;
        claimed_from_be |= bit;
      }
      // Pass 1: idle TPCs (not LS, not BE, not someone else's
      // guarantee), top-down.
      for (int t = static_cast<int>(num_tpcs_) - 1; t >= 0 && got < need;
           --t) {
        const TpcMask bit = gpusim::tpc_bit(static_cast<unsigned>(t));
        if ((ls_used | be_mask_running | foreign) & bit) continue;
        mask |= bit;
        ++got;
      }
      // Pass 2: under pressure, take BE-held TPCs (preempting BE) —
      // never out of a foreign guaranteed region.
      for (int t = static_cast<int>(num_tpcs_) - 1; t >= 0 && got < need;
           --t) {
        const TpcMask bit = gpusim::tpc_bit(static_cast<unsigned>(t));
        if ((ls_used & bit) || !(be_mask_running & bit) || (foreign & bit)) {
          continue;
        }
        mask |= bit;
        ++got;
        claimed_from_be |= bit;
      }
      if (got == 0) break;  // everything is held by other LS kernels
      ls_used |= mask;
      plan.launch(job.id,
                  {mask, colocated ? eff_ls_channels : all_ch});
      planned_ls.push_back(job.id);
      ++planned_width[job.id];
      ++launched;
    }
  }

  // Evict BE kernels that (a) monopolise the channels while LS runs, or
  // (b) hold TPCs an LS kernel just claimed (Fig. 13a's preemption).
  // Under guarantees, (c) also enforce §4's spatial-temporal rule on the
  // running set: at most one BE kernel co-executes with active LS — a
  // flood that launched during an LS idle gap is trimmed back when LS
  // returns, or its channel contention would defeat the SM region.
  // be_runs is grouped per job, so be_kept counts co-running *jobs* —
  // a DAG job's internal operator fan-out is one co-runner, not several.
  const bool quota_mode = any_guar != 0;
  size_t be_kept = 0;
  std::vector<JobId> be_kept_jobs;     // survivors: may widen their own
                                       // frontier without a new §4 slot
  std::vector<JobId> be_evicted_jobs;  // mid-eviction: no relaunch below
  for (const auto& run : be_runs) {
    if (run.evicting) {
      be_evicted_jobs.push_back(run.job);
      continue;
    }
    bool evict_it =
        (ls_active && run.monopolising) || (run.mask & claimed_from_be);
    if (!evict_it && quota_mode && ls_active && be_kept >= 1) {
      evict_it = true;
    }
    if (evict_it) {
      plan.evict(run.job);
      be_evicted_jobs.push_back(run.job);
    } else {
      ++be_kept;
      be_kept_jobs.push_back(run.job);
    }
  }

  // Promotion: when LS has drained but a BE kernel is still running in
  // colocation mode (narrow mask / ChBE channels), restart it with the
  // full GPU — the monopolisation transition of Fig. 14c→d. A short
  // grace period avoids thrashing on sub-200us LS gaps.
  if (!ls_active && claimed_from_be == 0) {
    for (const auto& run : be_runs) {
      if (run.evicting) continue;
      const bool colocated_mode = run.mask != run.widest;
      if (!colocated_mode) continue;
      if (sim.now() >= last_ls_activity_ + 200 * kNsPerUs) {
        plan.evict(run.job);
      } else {
        plan.wake_at(last_ls_activity_ + 200 * kNsPerUs);
      }
    }
  }

  // ---- Sliding-window SM reservation (§7.1): the BE mask keeps clear of
  // the TPCs the next LS kernels will need ("LS kernels waiting in the
  // launch queue may consume more SMs than the currently allocated
  // ones"), so preemptions stay rare. The reserve tracks the peak of
  // recent concurrent LS usage: it rises instantly and decays one TPC
  // per decay interval. (The legacy imperative path read
  // upcoming_kernels() after its launches took effect; the plan path
  // reproduces that view by skipping the jobs this plan just launched.)
  unsigned window_need = 1;
  {
    size_t seen = 0;
    // planned_ls holds one entry per *kernel* launched: consume one skip
    // per match so a DAG job's still-waiting frontier entries (beyond
    // the ones this plan launched) keep counting toward the window.
    // Chains have unique ids, so this is the historic skip exactly.
    std::vector<JobId> skip = planned_ls;
    for (const auto& job : sim.waiting_jobs(QosClass::kLatencySensitive)) {
      if (seen >= opt_.sliding_window) break;
      const auto it = std::find(skip.begin(), skip.end(), job.id);
      if (it != skip.end()) {
        skip.erase(it);
        continue;
      }
      window_need =
          std::max(window_need, std::max(1u, job.next_kernel->min_tpcs));
      ++seen;
    }
  }
  window_need = std::max(window_need, gpusim::tpc_count(ls_used));
  if (window_need >= ls_reserve_) {
    ls_reserve_ = std::min(num_tpcs_, window_need);
    last_decay_ = sim.now();
  } else if (sim.now() >= last_decay_ + opt_.reserve_decay_interval) {
    const unsigned steps = static_cast<unsigned>(
        (sim.now() - last_decay_) / opt_.reserve_decay_interval);
    ls_reserve_ = std::max(window_need,
                           ls_reserve_ > steps ? ls_reserve_ - steps : 1u);
    last_decay_ = sim.now();
  }

  // ---- BE side: fill the tide pool. All waiting BE jobs (one under
  // round-robin rotation, every tenant in concurrent mode) share it —
  // or split it by weight when tenants declare unequal weights. A BE
  // tenant's own guaranteed region is always usable; foreign guaranteed
  // regions never are.
  bool unequal_weights = false;
  double total_weight = 0.0;
  // Distinct waiting BE jobs in queue order: a DAG job's extra frontier
  // entries are the same tenant asking for more of its own slot, so the
  // weight sums (and the weighted split below) count each job once.
  std::vector<JobId> be_order;
  for (const auto& job : waiting_be) {
    if (std::find(be_order.begin(), be_order.end(), job.id) !=
        be_order.end()) {
      continue;
    }
    be_order.push_back(job.id);
    total_weight += sim.vgpu(job.tenant).weight;
    if (sim.vgpu(job.tenant).weight != sim.vgpu(waiting_be[0].tenant).weight) {
      unequal_weights = true;
    }
  }
  // An external floor (batch-aware wrapper) widens the reservation the
  // tide keeps clear for upcoming LS work; 0 = the historic tide exactly.
  const unsigned eff_reserve =
      std::max(ls_reserve_, std::min(reserve_floor_, num_tpcs_));
  const TpcMask reserved =
      gpusim::tpc_range(num_tpcs_ - eff_reserve, eff_reserve) | ls_guar;
  TpcMask weighted_pool_left = 0;  // partition cursor (unequal weights)
  unsigned weighted_pool_bits = 0;  // original pool size — shares are
                                    // fractions of the whole pool, not of
                                    // whatever earlier slices left behind
  if (unequal_weights) {
    weighted_pool_left = full & ~ls_used & ~reserved & ~any_guar;
    weighted_pool_bits = gpusim::tpc_count(weighted_pool_left);
  }
  // §4's spatial-temporal rule, armed by guarantees: while LS is active,
  // at most one BE kernel co-executes — a concurrent BE flood otherwise
  // drags the LS tail through inter-channel contention (every uncolored
  // compute-bound BE kernel keeps the default all-channel mapping) no
  // matter how hard the SM region holds. Guarantee-free setups keep the
  // historic free-for-all tide bit-for-bit.
  size_t be_budget = std::numeric_limits<size_t>::max();
  if (quota_mode && ls_active) {
    be_budget = be_kept < 1 ? 1 - be_kept : 0;
  }
  std::map<JobId, TpcMask> job_slice;  // weighted slice, carved per job
  std::vector<JobId> be_planned;       // distinct jobs launched this plan
  for (const auto& job : waiting_be) {
    // §4 counts co-running jobs: only a job not already kept-running and
    // not already launched this plan consumes a budget slot — a DAG
    // job's further frontier entries ride inside the slot its first
    // launch (or its surviving kernels) already hold, up to the
    // intra-tenant width cap. A job this plan just evicted must not be
    // relaunched out of its still-ready frontier in the same breath.
    if (std::find(be_evicted_jobs.begin(), be_evicted_jobs.end(), job.id) !=
        be_evicted_jobs.end()) {
      continue;
    }
    if (width_capped(job.id)) continue;
    const bool counts_new =
        std::find(be_planned.begin(), be_planned.end(), job.id) ==
            be_planned.end() &&
        std::find(be_kept_jobs.begin(), be_kept_jobs.end(), job.id) ==
            be_kept_jobs.end();
    if (counts_new && be_budget == 0) continue;
    const TpcMask own = sim.guaranteed_mask(job.tenant);
    const TpcMask foreign = any_guar & ~own;
    if (!ls_active && foreign == 0) {
      // Monopolisation state (§7.2a): the LS kernel queue is empty, so
      // the BE kernel takes the whole GPU and — through its all-channel
      // bimodal tensor copies — the full VRAM bandwidth (Fig. 14a/d).
      // When LS returns it preempts via the eviction flag (Fig. 13a).
      plan.launch(job.id, Allocation::all());
      ++planned_width[job.id];
      if (counts_new) be_planned.push_back(job.id);
    } else if (!ls_active) {
      // LS is idle but holds hard reservations: BE soaks everything
      // except foreign guaranteed regions, with all channels.
      plan.launch(job.id, {full & ~foreign, all_ch});
      ++planned_width[job.id];
      if (counts_new) be_planned.push_back(job.id);
    } else {
      // The tenant's own guaranteed region is usable even when the
      // tidal reserve covers it (own == 0 reproduces the legacy mask).
      TpcMask free =
          (full & ~ls_used & ~reserved & ~foreign) | (own & ~ls_used);
      if (unequal_weights) {
        // Split the common pool by weight (own regions ride on top):
        // each slice is this tenant's fraction of the *original* pool,
        // carved from what is left, so slices stay proportional and the
        // last tenant picks up the rounding dust. Carved once per job —
        // a DAG job's frontier entries co-execute on the job's slice.
        auto sit = job_slice.find(job.id);
        if (sit == job_slice.end()) {
          const TpcMask pool = weighted_pool_left;
          const unsigned share = static_cast<unsigned>(
              static_cast<double>(weighted_pool_bits) *
              sim.vgpu(job.tenant).weight / total_weight);
          const bool last = job.id == be_order.back();
          TpcMask slice = 0;
          unsigned got = 0;
          for (unsigned t = 0; t < num_tpcs_; ++t) {
            if (!last && got >= std::max(1u, share)) break;
            const TpcMask bit = gpusim::tpc_bit(t);
            if (!(pool & bit)) continue;
            slice |= bit;
            ++got;
          }
          weighted_pool_left &= ~slice;
          sit = job_slice.emplace(job.id, slice).first;
        }
        free = sit->second | (own & ~ls_used);
      }
      if (free) {
        plan.launch(job.id, {free, eff_be_channels});
        ++planned_width[job.id];
        if (counts_new) {
          be_planned.push_back(job.id);
          --be_budget;
        }
      }
      // else: LS holds every TPC; the next completion re-schedules us.
    }
  }
  return plan;
}

SgdrcStaticPolicy::SgdrcStaticPolicy(const gpusim::GpuSpec& spec) {
  const unsigned half = spec.num_tpcs / 2;
  ls_mask_ = gpusim::tpc_range(half, spec.num_tpcs - half);
  be_mask_ = gpusim::tpc_range(0, half);
  be_channels_ = be_channel_partition(spec, 0.5);
  ls_channels_ = gpusim::all_channels(spec.num_channels) & ~be_channels_;
}

control::ResourcePlan SgdrcStaticPolicy::plan(const SimView& sim) {
  // Static even split (§9.2's ablation): LS kernels co-execute inside the
  // fixed LS half, BE keeps its half; no tide, no preemption. Declared
  // guarantees only reshape the frozen halves (a guaranteed region moves
  // wholesale into its owner class's partition); there is still no tide.
  ResourcePlan plan;
  const TpcMask ls_guar = sim.guaranteed_union(QosClass::kLatencySensitive);
  const TpcMask be_guar = sim.guaranteed_union(QosClass::kBestEffort);
  const TpcMask ls_mask = (ls_mask_ | ls_guar) & ~be_guar;
  const TpcMask be_mask = (be_mask_ | be_guar) & ~ls_guar;
  TpcMask ls_used = 0;
  for (const auto& info : sim.running_infos()) {
    const auto job = sim.find_job(info.tag);
    if (!job || job->qos != QosClass::kBestEffort) ls_used |= info.tpc_mask;
  }
  for (const auto& job : sim.waiting_jobs(QosClass::kLatencySensitive)) {
    const TpcMask free = ls_mask & ~ls_used;
    if (!free) break;
    const unsigned need = std::max(1u, job.next_kernel->min_tpcs);
    TpcMask mask = 0;
    unsigned got = 0;
    for (int t = 63; t >= 0 && got < need; --t) {
      const TpcMask bit = TpcMask{1} << t;
      if (!(free & bit)) continue;
      mask |= bit;
      ++got;
    }
    ls_used |= mask;
    plan.launch(job.id, {mask, ls_channels_});
  }
  for (const auto& job : sim.waiting_jobs(QosClass::kBestEffort)) {
    if (!be_mask) break;
    plan.launch(job.id, {be_mask, be_channels_});
  }
  return plan;
}

}  // namespace sgdrc::core
