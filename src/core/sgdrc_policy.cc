#include "core/sgdrc_policy.h"

#include <algorithm>

namespace sgdrc::core {

using gpusim::ChannelSet;
using gpusim::TpcMask;

ChannelSet be_channel_partition(const gpusim::GpuSpec& spec, double ch_be) {
  SGDRC_REQUIRE(ch_be > 0.0 && ch_be < 1.0, "ChBE must be in (0,1)");
  const unsigned group = spec.channel_group_size;
  unsigned want = static_cast<unsigned>(
      static_cast<double>(spec.num_channels) * ch_be + 0.5);
  // Round to whole groups, at least one group, leaving at least one for LS.
  want = std::max(group, (want / group) * group);
  want = std::min(want, spec.num_channels - group);
  // BE gets the highest-numbered channels.
  ChannelSet s = 0;
  for (unsigned c = spec.num_channels - want; c < spec.num_channels; ++c) {
    s |= gpusim::channel_bit(c);
  }
  return s;
}

SgdrcPolicy::SgdrcPolicy(const gpusim::GpuSpec& spec, SgdrcOptions opt)
    : opt_(opt), num_tpcs_(spec.num_tpcs) {
  be_channels_ = be_channel_partition(spec, opt_.ch_be);
  ls_channels_ = gpusim::all_channels(spec.num_channels) & ~be_channels_;
}

void SgdrcPolicy::schedule(ServingSim& sim) {
  const auto waiting = sim.waiting_jobs(QosClass::kLatencySensitive);
  const bool ls_active =
      !waiting.empty() || sim.inflight(QosClass::kLatencySensitive) > 0;

  if (ls_active) last_ls_activity_ = sim.now();

  // Snapshot current occupancy; classify running kernels by the QoS class
  // of the job behind each launch tag.
  struct BeRun {
    JobId job;
    TpcMask mask;
    bool monopolising;
    bool evicting;
  };
  TpcMask ls_used = 0;
  TpcMask be_mask_running = 0;
  bool be_memory_bound_in_flight = false;
  std::vector<BeRun> be_runs;
  for (const auto& info : sim.exec().running_infos()) {
    const auto job = sim.find_job(info.tag);
    if (job && job->qos == QosClass::kBestEffort) {
      const TpcMask mask =
          info.tpc_mask ? info.tpc_mask : gpusim::full_tpc_mask(num_tpcs_);
      be_mask_running |= mask;
      be_memory_bound_in_flight |= info.kernel->memory_bound;
      // Only memory-bound BE kernels have a channel mode to fix; others
      // always run with default mapping and need no channel eviction.
      const bool monopolising =
          info.channels == 0 && info.kernel->memory_bound;
      be_runs.push_back({job->id, mask, monopolising, job->evicting});
    } else {
      ls_used |= info.tpc_mask;
    }
  }

  // ---- LS side: pack co-executing LS kernels into disjoint SM_LS
  // slices (Fig. 13b), preferring idle TPCs; TPCs a BE kernel occupies
  // are claimed only under pressure — that is the preemption case
  // (eviction flag, Fig. 13a).
  TpcMask claimed_from_be = 0;
  if (!waiting.empty()) {
    // Bimodal tensors (Fig. 14): LS memory-bound kernels shift to the
    // (1−ChBE) channel partition only while a memory-bound BE kernel
    // shares the GPU; compute-bound BE kernels pose no channel conflict.
    const bool colocated = be_memory_bound_in_flight;
    size_t launched = 0;
    for (const auto& job : waiting) {
      if (launched >= opt_.sliding_window) break;
      if (ls_used == gpusim::full_tpc_mask(num_tpcs_)) break;
      const unsigned need = std::max(1u, job.next_kernel->min_tpcs);
      TpcMask mask = 0;
      unsigned got = 0;
      // Pass 1: idle TPCs (not LS, not BE), top-down.
      for (int t = static_cast<int>(num_tpcs_) - 1; t >= 0 && got < need;
           --t) {
        const TpcMask bit = gpusim::tpc_bit(static_cast<unsigned>(t));
        if ((ls_used | be_mask_running) & bit) continue;
        mask |= bit;
        ++got;
      }
      // Pass 2: under pressure, take BE-held TPCs (preempting BE).
      for (int t = static_cast<int>(num_tpcs_) - 1; t >= 0 && got < need;
           --t) {
        const TpcMask bit = gpusim::tpc_bit(static_cast<unsigned>(t));
        if ((ls_used & bit) || !(be_mask_running & bit)) continue;
        mask |= bit;
        ++got;
        claimed_from_be |= bit;
      }
      if (got == 0) break;  // everything is held by other LS kernels
      ls_used |= mask;
      sim.launch(job.id, {mask, colocated ? ls_channels_ : 0});
      ++launched;
    }
  }

  // Evict BE kernels that (a) monopolise the channels while LS runs, or
  // (b) hold TPCs an LS kernel just claimed (Fig. 13a's preemption).
  for (const auto& run : be_runs) {
    if (run.evicting) continue;
    if ((ls_active && run.monopolising) || (run.mask & claimed_from_be)) {
      sim.evict(run.job);
    }
  }

  // Promotion: when LS has drained but a BE kernel is still running in
  // colocation mode (narrow mask / ChBE channels), restart it with the
  // full GPU — the monopolisation transition of Fig. 14c→d. A short
  // grace period avoids thrashing on sub-200us LS gaps.
  if (!ls_active && claimed_from_be == 0) {
    for (const auto& run : be_runs) {
      if (run.evicting) continue;
      const bool colocated_mode =
          run.mask != gpusim::full_tpc_mask(num_tpcs_);
      if (!colocated_mode) continue;
      if (sim.now() >= last_ls_activity_ + 200 * kNsPerUs) {
        sim.evict(run.job);
      } else {
        sim.poke_at(last_ls_activity_ + 200 * kNsPerUs);
      }
    }
  }

  // ---- Sliding-window SM reservation (§7.1): the BE mask keeps clear of
  // the TPCs the next LS kernels will need ("LS kernels waiting in the
  // launch queue may consume more SMs than the currently allocated
  // ones"), so preemptions stay rare. The reserve tracks the peak of
  // recent concurrent LS usage: it rises instantly and decays one TPC
  // per decay interval.
  unsigned window_need = 1;
  for (const auto* k : sim.upcoming_kernels(QosClass::kLatencySensitive,
                                            opt_.sliding_window)) {
    window_need = std::max(window_need, std::max(1u, k->min_tpcs));
  }
  window_need = std::max(window_need, gpusim::tpc_count(ls_used));
  if (window_need >= ls_reserve_) {
    ls_reserve_ = std::min(num_tpcs_, window_need);
    last_decay_ = sim.now();
  } else if (sim.now() >= last_decay_ + opt_.reserve_decay_interval) {
    const unsigned steps = static_cast<unsigned>(
        (sim.now() - last_decay_) / opt_.reserve_decay_interval);
    ls_reserve_ = std::max(window_need,
                           ls_reserve_ > steps ? ls_reserve_ - steps : 1u);
    last_decay_ = sim.now();
  }

  // ---- BE side: fill the tide pool. All waiting BE jobs (one under
  // round-robin rotation, every tenant in concurrent mode) share it.
  for (const auto& job : sim.waiting_jobs(QosClass::kBestEffort)) {
    if (!ls_active) {
      // Monopolisation state (§7.2a): the LS kernel queue is empty, so
      // the BE kernel takes the whole GPU and — through its all-channel
      // bimodal tensor copies — the full VRAM bandwidth (Fig. 14a/d).
      // When LS returns it preempts via the eviction flag (Fig. 13a).
      sim.launch(job.id, {0, 0});
    } else {
      const TpcMask reserved =
          gpusim::tpc_range(num_tpcs_ - ls_reserve_, ls_reserve_);
      const TpcMask free =
          gpusim::full_tpc_mask(num_tpcs_) & ~ls_used & ~reserved;
      if (free) {
        sim.launch(job.id, {free, be_channels_});
      }
      // else: LS holds every TPC; the next completion re-schedules us.
    }
  }
}

SgdrcStaticPolicy::SgdrcStaticPolicy(const gpusim::GpuSpec& spec) {
  const unsigned half = spec.num_tpcs / 2;
  ls_mask_ = gpusim::tpc_range(half, spec.num_tpcs - half);
  be_mask_ = gpusim::tpc_range(0, half);
  be_channels_ = be_channel_partition(spec, 0.5);
  ls_channels_ = gpusim::all_channels(spec.num_channels) & ~be_channels_;
}

void SgdrcStaticPolicy::schedule(ServingSim& sim) {
  // Static even split (§9.2's ablation): LS kernels co-execute inside the
  // fixed LS half, BE keeps its half; no tide, no preemption.
  TpcMask ls_used = 0;
  for (const auto& info : sim.exec().running_infos()) {
    const auto job = sim.find_job(info.tag);
    if (!job || job->qos != QosClass::kBestEffort) ls_used |= info.tpc_mask;
  }
  for (const auto& job : sim.waiting_jobs(QosClass::kLatencySensitive)) {
    const TpcMask free = ls_mask_ & ~ls_used;
    if (!free) break;
    const unsigned need = std::max(1u, job.next_kernel->min_tpcs);
    TpcMask mask = 0;
    unsigned got = 0;
    for (int t = 63; t >= 0 && got < need; --t) {
      const TpcMask bit = TpcMask{1} << t;
      if (!(free & bit)) continue;
      mask |= bit;
      ++got;
    }
    ls_used |= mask;
    sim.launch(job.id, {mask, ls_channels_});
  }
  for (const auto& job : sim.waiting_jobs(QosClass::kBestEffort)) {
    sim.launch(job.id, {be_mask_, be_channels_});
  }
}

}  // namespace sgdrc::core
