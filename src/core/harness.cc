#include "core/harness.h"

#include "coloring/transformer.h"
#include "control/controller.h"
#include "models/zoo.h"

namespace sgdrc::core {

models::ModelDesc ServingHarness::transform_for_spt(
    const models::ModelDesc& m, const OfflineProfiler& prof) {
  models::ModelDesc out = m;
  EventQueue q;
  gpusim::GpuExecutor exec(prof.spec(), q, prof.exec_params());
  for (auto& k : out.kernels) {
    if (!k.memory_bound) continue;
    const TimeNs iso = exec.solo_runtime(k, prof.spec().num_tpcs,
                                         prof.spec().num_channels, false);
    k = coloring::transform_kernel(k, iso).kernel;
  }
  return out;
}

ServingHarness::ServingHarness(HarnessOptions opt) : opt_(std::move(opt)) {
  SGDRC_REQUIRE(!opt_.ls_letters.empty(), "need at least one LS model");
  profiler_ =
      std::make_unique<OfflineProfiler>(opt_.spec, opt_.exec_params);

  for (const char c : opt_.ls_letters) {
    models::ModelDesc m = models::make_model(c);
    profiler_->profile(m);
    iso_.push_back(profiler_->isolated_latency(m));
    ls_spt_.push_back(transform_for_spt(m, *profiler_));
    ls_plain_.push_back(std::move(m));
  }
  for (const char c : opt_.be_letters) {
    models::ModelDesc m = models::make_model(c);
    profiler_->profile(m);
    be_spt_.push_back(transform_for_spt(m, *profiler_));
    be_plain_.push_back(std::move(m));
  }

  // Per-service rates: each service contributes utilization/n of the
  // serialized LS capacity, so cheap models get proportionally more
  // requests (the paper's trace drives all services simultaneously).
  const double n = static_cast<double>(ls_plain_.size());
  workload::TraceOptions topt;
  topt.services = static_cast<unsigned>(ls_plain_.size());
  topt.duration = opt_.duration;
  topt.scale = opt_.load_scale;
  topt.burstiness = opt_.burstiness;
  topt.seed = opt_.seed;
  for (size_t i = 0; i < ls_plain_.size(); ++i) {
    rates_.push_back(opt_.utilization /
                     (n * to_sec(iso_[i])));
    topt.per_service_rates.push_back(rates_.back());
  }
  trace_ = workload::generate_apollo_like_trace(topt);
}

workload::ServingMetrics ServingHarness::run(Policy& policy,
                                             bool spt) const {
  control::LegacyPolicyAdapter adapter(policy);
  return run(adapter, spt);
}

workload::ServingMetrics ServingHarness::run(control::Controller& controller,
                                             bool spt) const {
  ServingSimBuilder builder;
  builder.gpu(opt_.spec)
      .executor_params(opt_.exec_params)
      .default_ls_instances(opt_.ls_instances)
      .duration(opt_.duration)
      .best_effort_mode(opt_.be_mode)
      // §9.2: n = services concurrently on the GPU = LS models + 1 BE
      // task (the rotation keeps one resident; concurrent mode keeps all).
      .slo_multiplier(static_cast<double>(
          ls_plain_.size() + (opt_.be_mode == BeMode::kRoundRobin
                                  ? 1
                                  : be_plain_.size())));

  const auto& ls_src = spt ? ls_spt_ : ls_plain_;
  for (size_t i = 0; i < ls_src.size(); ++i) {
    builder.add_latency_sensitive(ls_src[i], iso_[i]);
  }
  for (const auto& m : (spt ? be_spt_ : be_plain_)) {
    builder.add_best_effort(m);
  }
  return builder.build(controller)->run(trace_);
}

}  // namespace sgdrc::core
