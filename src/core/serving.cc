#include "core/serving.h"

#include <algorithm>

namespace sgdrc::core {

using gpusim::ChannelSet;
using gpusim::GpuExecutor;
using gpusim::TpcMask;
using workload::Request;

ServingSim::ServingSim(ServingConfig cfg, std::vector<LsServiceSpec> ls,
                       std::vector<BeTaskSpec> be, Policy& policy)
    : cfg_(std::move(cfg)), ls_(std::move(ls)), be_(std::move(be)),
      policy_(policy) {
  SGDRC_REQUIRE(!ls_.empty(), "serving needs at least one LS service");
  SGDRC_REQUIRE(cfg_.ls_instances >= 1, "need at least one instance");
  exec_ = std::make_unique<GpuExecutor>(cfg_.spec, queue_, cfg_.exec_params);

  const double n = cfg_.slo_multiplier > 0.0
                       ? cfg_.slo_multiplier
                       : static_cast<double>(ls_.size() + be_.size());
  for (const auto& s : ls_) {
    workload::LsServiceMetrics m;
    m.name = s.model.name;
    m.letter = s.model.letter;
    m.isolated_p99 = s.isolated_latency;
    m.slo = static_cast<TimeNs>(n * static_cast<double>(s.isolated_latency));
    metrics_.ls.push_back(std::move(m));
  }
  for (const auto& b : be_) {
    workload::BeTaskMetrics m;
    m.name = b.model.name;
    m.letter = b.model.letter;
    m.batch = b.model.batch;
    m.kernels_per_batch = b.model.kernels.size();
    metrics_.be.push_back(std::move(m));
  }
  free_instances_.assign(ls_.size(), cfg_.ls_instances);
  backlog_.resize(ls_.size());
}

workload::ServingMetrics ServingSim::run(
    const std::vector<Request>& trace) {
  metrics_.duration = cfg_.duration;
  for (const Request& r : trace) {
    if (r.arrival >= cfg_.duration) break;
    queue_.schedule_at(r.arrival, [this, r] { arrive(r); });
  }
  poke();  // let the policy start the BE closed loop immediately
  queue_.run_until(cfg_.duration);
  stopped_ = true;
  return metrics_;
}

void ServingSim::arrive(const Request& r) {
  SGDRC_REQUIRE(r.service < ls_.size(), "request for unknown service");
  ++metrics_.ls[r.service].arrived;
  if (free_instances_[r.service] > 0) {
    --free_instances_[r.service];
    admit(r.service, r.arrival);
  } else {
    backlog_[r.service].push_back(r.arrival);
  }
  poke();
}

void ServingSim::admit(unsigned service, TimeNs arrival) {
  LsJob job;
  job.id = next_job_++;
  job.service = service;
  job.arrival = arrival;
  jobs_.push_back(job);
}

std::vector<ServingSim::LsJobView> ServingSim::ls_jobs() const {
  std::vector<LsJobView> out;
  out.reserve(jobs_.size());
  for (const auto& j : jobs_) {
    const auto& kernels = ls_[j.service].model.kernels;
    out.push_back({j.id, j.service, j.arrival,
                   j.in_flight ? nullptr : &kernels[j.cursor],
                   j.in_flight});
  }
  return out;
}

std::vector<ServingSim::LsJobView> ServingSim::waiting_ls_jobs() const {
  auto all = ls_jobs();
  std::vector<LsJobView> out;
  for (const auto& v : all) {
    if (!v.in_flight) out.push_back(v);
  }
  return out;
}

std::vector<const gpusim::KernelDesc*> ServingSim::upcoming_ls_kernels(
    size_t window) const {
  std::vector<const gpusim::KernelDesc*> out;
  for (const auto& j : jobs_) {
    if (out.size() >= window) break;
    if (!j.in_flight) {
      out.push_back(&ls_[j.service].model.kernels[j.cursor]);
    }
  }
  return out;
}

ServingSim::BeView ServingSim::be_state() const {
  SGDRC_REQUIRE(!be_.empty(), "no BE task configured");
  const auto& model = be_[be_current_].model;
  const gpusim::KernelDesc* next =
      be_in_flight_ ? nullptr : &model.kernels[be_cursor_];
  return {be_current_, next, be_in_flight_, be_evicting_};
}

void ServingSim::launch_ls(JobId id, TpcMask mask, ChannelSet channels) {
  auto it = std::find_if(jobs_.begin(), jobs_.end(),
                         [&](const LsJob& j) { return j.id == id; });
  SGDRC_REQUIRE(it != jobs_.end(), "unknown LS job");
  SGDRC_REQUIRE(!it->in_flight, "LS job already has a kernel in flight");
  const auto& model = ls_[it->service].model;
  const gpusim::KernelDesc& k = model.kernels[it->cursor];
  // Only memory-bound kernels are channel-colored (§7.2); others keep the
  // default all-channel mapping.
  const ChannelSet ch = k.memory_bound ? channels : 0;
  it->in_flight = true;
  if (ls_inflight_ == 0) ls_busy_since_ = now();
  ++ls_inflight_;
  exec_->launch({&k, mask, ch, id},
                [this, id](GpuExecutor::LaunchId, TimeNs) {
                  finish_ls_kernel(id);
                });
}

void ServingSim::finish_ls_kernel(JobId id) {
  auto it = std::find_if(jobs_.begin(), jobs_.end(),
                         [&](const LsJob& j) { return j.id == id; });
  SGDRC_CHECK(it != jobs_.end(), "completion for unknown LS job");
  it->in_flight = false;
  --ls_inflight_;
  if (ls_inflight_ == 0) metrics_.ls_busy_ns += now() - ls_busy_since_;
  ++it->cursor;
  const unsigned service = it->service;
  if (it->cursor >= ls_[service].model.kernels.size()) {
    if (!stopped_) metrics_.record_ls(service, it->arrival, now());
    jobs_.erase(it);
    // Hand the instance to the next queued request.
    if (!backlog_[service].empty()) {
      const TimeNs arrival = backlog_[service].front();
      backlog_[service].pop_front();
      admit(service, arrival);
    } else {
      ++free_instances_[service];
    }
  }
  poke();
}

void ServingSim::launch_be(TpcMask mask, ChannelSet channels) {
  SGDRC_REQUIRE(!be_.empty(), "no BE task configured");
  SGDRC_REQUIRE(!be_in_flight_, "BE kernel already in flight");
  const auto& model = be_[be_current_].model;
  const gpusim::KernelDesc& k = model.kernels[be_cursor_];
  const ChannelSet ch = k.memory_bound ? channels : 0;
  be_in_flight_ = true;
  be_evicting_ = false;
  be_started_ = now();
  be_launch_ = exec_->launch(
      {&k, mask, ch, ~uint64_t{0}},
      [this](GpuExecutor::LaunchId, TimeNs) { finish_be_kernel(); });
}

void ServingSim::finish_be_kernel() {
  be_in_flight_ = false;
  be_evicting_ = false;
  ++be_cursor_;
  metrics_.be_busy_ns += now() - be_started_;
  if (!stopped_) ++metrics_.be[be_current_].kernels_done;
  if (be_cursor_ >= be_[be_current_].model.kernels.size()) {
    if (!stopped_) ++metrics_.be[be_current_].batches_completed;
    be_cursor_ = 0;
    be_current_ = (be_current_ + 1) % be_.size();  // round-robin rotation
  }
  poke();
}

void ServingSim::evict_be() {
  SGDRC_REQUIRE(be_in_flight_, "no BE kernel to evict");
  if (be_evicting_) return;
  be_evicting_ = true;
  ++metrics_.be[be_current_].evictions;
  exec_->evict(be_launch_, [this](GpuExecutor::LaunchId, TimeNs) {
    // Progress lost; the cursor stays on the same kernel (§7.1 restart).
    be_in_flight_ = false;
    be_evicting_ = false;
    metrics_.be_busy_ns += now() - be_started_;
    poke();
  });
}

void ServingSim::poke_at(TimeNs t) {
  queue_.schedule_at(std::max(t, now()), [this] { poke(); });
}

void ServingSim::poke() {
  if (stopped_) return;
  if (in_schedule_) {
    repoke_ = true;
    return;
  }
  in_schedule_ = true;
  do {
    repoke_ = false;
    policy_.schedule(*this);
  } while (repoke_);
  in_schedule_ = false;
}

}  // namespace sgdrc::core
