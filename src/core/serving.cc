#include "core/serving.h"

#include <algorithm>
#include <utility>

#include "control/controller.h"
#include "models/batching.h"

namespace sgdrc::core {

using gpusim::GpuExecutor;
using gpusim::TpcMask;
using workload::Request;

namespace {
constexpr size_t qos_index(QosClass q) {
  return q == QosClass::kLatencySensitive ? 0 : 1;
}
}  // namespace

// ------------------------------------------------------ DAG frontier ----

void ServingSim::Frontier::reset(const models::ModelDesc& m) {
  const size_t n = m.kernels.size();
  SGDRC_CHECK(m.kernel_deps.size() == n,
              "kernel_deps does not cover every kernel");
  pending.assign(n, 0);
  done.assign(n, 0);
  done_count = 0;
  ready.clear();
  running.clear();
  for (size_t i = 0; i < n; ++i) {
    pending[i] = static_cast<int>(m.kernel_deps[i].size());
    if (pending[i] == 0) ready.push_back(static_cast<int>(i));
  }
  SGDRC_CHECK(!ready.empty(), "DAG model has no source kernel");
}

void ServingSim::Frontier::make_ready(int kernel) {
  ready.insert(std::lower_bound(ready.begin(), ready.end(), kernel), kernel);
}

void ServingSim::init_frontier(Job& job) const {
  const auto& m = model_of(job);
  if (m.is_chain()) return;  // chains take the exact pre-DAG path
  job.frontier = std::make_unique<Frontier>(m);
}

bool ServingSim::job_evictable(const Job& j) const {
  if (!j.frontier) return j.in_flight && !j.evicting;
  for (const auto& r : j.frontier->running) {
    if (!r.evicting) return true;
  }
  return false;
}

ServingSim::ServingSim(ServingConfig cfg, std::vector<TenantSpec> tenants,
                       control::Controller& controller)
    : cfg_(std::move(cfg)),
      tenants_(std::move(tenants)),
      controller_(&controller),
      owned_queue_(std::make_unique<EventQueue>()),
      queue_(*owned_queue_),
      rng_(cfg_.seed) {
  init();
}

ServingSim::ServingSim(ServingConfig cfg, std::vector<TenantSpec> tenants,
                       Policy& policy)
    : cfg_(std::move(cfg)),
      tenants_(std::move(tenants)),
      owned_adapter_(std::make_unique<control::LegacyPolicyAdapter>(policy)),
      owned_queue_(std::make_unique<EventQueue>()),
      queue_(*owned_queue_),
      rng_(cfg_.seed) {
  controller_ = owned_adapter_.get();
  init();
}

ServingSim::ServingSim(EventQueue& queue, ServingConfig cfg,
                       std::vector<TenantSpec> tenants,
                       control::Controller& controller)
    : cfg_(std::move(cfg)),
      tenants_(std::move(tenants)),
      controller_(&controller),
      queue_(queue),
      rng_(cfg_.seed) {
  init();
}

ServingSim::ServingSim(EventQueue& queue, ServingConfig cfg,
                       std::vector<TenantSpec> tenants, Policy& policy)
    : cfg_(std::move(cfg)),
      tenants_(std::move(tenants)),
      owned_adapter_(std::make_unique<control::LegacyPolicyAdapter>(policy)),
      queue_(queue),
      rng_(cfg_.seed) {
  controller_ = owned_adapter_.get();
  init();
}

ServingSim::~ServingSim() = default;

uint64_t ServingSim::effective_vram() const {
  return cfg_.memory.vram_bytes_override ? cfg_.memory.vram_bytes_override
                                         : cfg_.spec.vram_bytes;
}

void ServingSim::init() {
  // An empty tenant list is legal: fleets create device sims lazily when
  // an autoscaler or a scenario places the first replica mid-run.
  exec_ = std::make_unique<GpuExecutor>(cfg_.spec, queue_, cfg_.exec_params);

  // Memory virtualization: only when enabled AND the device's capacity
  // is modeled. vram_bytes == 0 (default-constructed GpuSpec) means
  // "unmodeled/unlimited" — charging is skipped entirely, never an
  // instant OOM on a spec that simply didn't declare its VRAM.
  if (cfg_.memory.enabled && effective_vram() > 0) {
    mem_ = std::make_unique<memory::MemoryManager>(
        effective_vram(), cfg_.memory, cfg_.seed ^ 0x9e3779b97f4a7c15ull);
    mem_->on_evict([this](TenantId t) {
      if (!stopped_) ++metrics_.tenants[t].weight_evictions;
    });
    mem_->on_trespass([this](TenantId) {
      if (!stopped_) ++metrics_.memory_trespasses;
    });
  }

  // SLO multiplier n = services concurrently on the GPU (§9.2): all LS
  // tenants plus the resident BE jobs (one rotating slot, or every BE
  // tenant when concurrent). Frozen at init so tenants arriving later
  // get SLOs consistent with the initial co-residency.
  size_t ls = 0, be = 0;
  for (const auto& spec : tenants_) {
    (spec.qos == QosClass::kLatencySensitive ? ls : be) += 1;
  }
  const size_t be_slots =
      cfg_.be_mode == BeMode::kRoundRobin ? (be ? 1 : 0) : be;
  slo_n_ = cfg_.slo_multiplier > 0.0
               ? cfg_.slo_multiplier
               : std::max<double>(1.0, static_cast<double>(ls + be_slots));

  for (TenantId t = 0; t < tenants_.size(); ++t) register_tenant(t);
}

void ServingSim::register_tenant(TenantId t) {
  const auto& spec = tenants_[t];
  instances_.push_back(0);
  free_instances_.push_back(0);
  backlog_.emplace_back();
  if (spec.batching.enabled()) {
    SGDRC_REQUIRE(spec.qos == QosClass::kLatencySensitive,
                  "BatchPolicy applies to LS tenants (BE tasks already "
                  "batch through ModelDesc::batch)");
    SGDRC_REQUIRE(spec.batching.max_batch <= 64,
                  "max_batch above 64 is outside the latency model's range");
    auto bs = std::make_unique<BatchState>();
    bs->variants.reserve(spec.batching.max_batch);
    for (unsigned b = 1; b <= spec.batching.max_batch; ++b) {
      bs->variants.push_back(models::batched_variant(spec.model, b));
    }
    batch_.push_back(std::move(bs));
  } else {
    batch_.push_back(nullptr);
  }
  active_.push_back(1);
  guaranteed_mask_.push_back(0);
  assign_guarantee_region(t);
  validate_vgpu_budget();
  if (mem_) {
    // Registration allocates the replica's weights (evicting idle
    // victims under pressure); the first request pays the cold-start
    // load. Weight bytes come from the model's kWeight tensors.
    mem_->add_replica(t, spec.model.weight_bytes(), spec.vgpu.priority,
                      spec.vgpu.memory_bytes, busy_probe());
  }
  workload::TenantMetrics m;
  m.id = t;
  m.qos = spec.qos;
  m.name = spec.model.name;
  m.letter = spec.model.letter;
  if (spec.qos == QosClass::kLatencySensitive) {
    ls_tenants_.push_back(t);
    const unsigned instances =
        spec.instances ? spec.instances : cfg_.ls_instances;
    SGDRC_REQUIRE(instances >= 1, "need at least one instance");
    instances_[t] = instances;
    free_instances_[t] = instances;
    m.isolated_p99 = spec.isolated_latency;
    m.slo = static_cast<TimeNs>(slo_n_ *
                                static_cast<double>(spec.isolated_latency));
  } else {
    SGDRC_REQUIRE(!spec.model.kernels.empty(), "BE tenant with no kernels");
    be_tenants_.push_back(t);
    m.batch = spec.model.batch;
    m.kernels_per_batch = spec.model.kernels.size();
    // The BE batch loop is a closed-loop job that lives until removal.
    Job job;
    job.id = next_job_++;
    job.tenant = t;
    init_frontier(job);
    jobs_.push_back(std::move(job));
  }
  metrics_.tenants.push_back(std::move(m));
  if (mem_ && spec.qos == QosClass::kBestEffort &&
      mem_->residency(t) == memory::Residency::kPaged) {
    // A BE loop that registered straight into the paged degraded mode
    // restreams its weights before the first batch; rotate_be charges
    // the per-batch restream from then on.
    hold_job_for_paging(jobs_.back().id, mem_->page_penalty(t));
  }
}

void ServingSim::assign_guarantee_region(TenantId t) {
  const auto& vgpu = tenants_[t].vgpu;
  if (vgpu.guaranteed_tpcs == 0) return;
  const unsigned n = cfg_.spec.num_tpcs;
  SGDRC_REQUIRE(vgpu.guaranteed_tpcs <= n,
                "tenant guarantees more TPCs than the device has");
  const TpcMask free = gpusim::full_tpc_mask(n) & ~guaranteed_used_;
  SGDRC_REQUIRE(gpusim::tpc_count(free) >= vgpu.guaranteed_tpcs,
                "guaranteed TPCs overcommitted across tenants");
  // LS regions grow down from the top of the mask (SGDRC keeps LS at the
  // high TPCs), BE regions up from the bottom — so the tidal top block
  // and hard LS reservations coincide and BE guarantees stay clear.
  TpcMask region = 0;
  unsigned got = 0;
  const bool ls = tenants_[t].qos == QosClass::kLatencySensitive;
  for (unsigned i = 0; i < n && got < vgpu.guaranteed_tpcs; ++i) {
    const unsigned tpc = ls ? n - 1 - i : i;
    const TpcMask bit = gpusim::tpc_bit(tpc);
    if (!(free & bit)) continue;
    region |= bit;
    ++got;
  }
  guaranteed_used_ |= region;
  guaranteed_mask_[t] = region;
}

void ServingSim::release_guarantee_region(TenantId t) {
  guaranteed_used_ &= ~guaranteed_mask_[t];
  guaranteed_mask_[t] = 0;
}

void ServingSim::validate_vgpu_budget() const {
  double channel_share = 0.0;
  // Bounded by active_: during init() the spec list is already full
  // while the per-tenant state vectors grow one register_tenant at a
  // time — validate what is registered so far.
  for (TenantId t = 0; t < active_.size(); ++t) {
    if (!active_[t]) continue;
    const auto& v = tenants_[t].vgpu;
    SGDRC_REQUIRE(v.channel_share >= 0.0 && v.channel_share < 1.0,
                  "channel_share must be in [0,1)");
    SGDRC_REQUIRE(v.weight > 0.0, "vGPU weight must be positive");
    channel_share += v.channel_share;
  }
  SGDRC_REQUIRE(channel_share <= 1.0 + 1e-9,
                "guaranteed channel shares overcommitted across tenants");
  // Guaranteed memory quotas work like TPC budgets: the sum across
  // active tenants must fit the device. Only on modeled devices —
  // vram_bytes == 0 means capacity is unmodeled and quotas are inert.
  const uint64_t vram = effective_vram();
  if (vram > 0) {
    uint64_t memory_quota = 0;
    for (TenantId t = 0; t < active_.size(); ++t) {
      if (active_[t]) memory_quota += tenants_[t].vgpu.memory_bytes;
    }
    SGDRC_REQUIRE(memory_quota <= vram,
                  "guaranteed memory quotas overcommit device VRAM");
  }
}

gpusim::TpcMask ServingSim::guaranteed_union(QosClass qos) const {
  TpcMask m = 0;
  for (TenantId t = 0; t < guaranteed_mask_.size(); ++t) {
    if (active_[t] && tenants_[t].qos == qos) m |= guaranteed_mask_[t];
  }
  return m;
}

void ServingSim::set_vgpu(TenantId t, const control::VgpuSpec& vgpu) {
  shard_guard_.assert_mutable("set_vgpu");
  SGDRC_REQUIRE(t < tenants_.size(), "unknown tenant");
  SGDRC_REQUIRE(active_[t], "cannot re-plan a removed tenant");
  // Validate the prospective state before touching anything, so a
  // rejected re-plan leaves the tenant's current guarantee intact
  // (strong exception safety — callers treat a throw as "change
  // rejected, old quota still holds").
  SGDRC_REQUIRE(vgpu.guaranteed_tpcs <= cfg_.spec.num_tpcs,
                "tenant guarantees more TPCs than the device has");
  SGDRC_REQUIRE(vgpu.channel_share >= 0.0 && vgpu.channel_share < 1.0,
                "channel_share must be in [0,1)");
  SGDRC_REQUIRE(vgpu.weight > 0.0, "vGPU weight must be positive");
  const TpcMask free_without_us = gpusim::full_tpc_mask(cfg_.spec.num_tpcs) &
                                  ~(guaranteed_used_ & ~guaranteed_mask_[t]);
  SGDRC_REQUIRE(gpusim::tpc_count(free_without_us) >= vgpu.guaranteed_tpcs,
                "guaranteed TPCs overcommitted across tenants");
  double channel_share = vgpu.channel_share;
  for (TenantId o = 0; o < active_.size(); ++o) {
    if (o != t && active_[o]) channel_share += tenants_[o].vgpu.channel_share;
  }
  SGDRC_REQUIRE(channel_share <= 1.0 + 1e-9,
                "guaranteed channel shares overcommitted across tenants");
  const uint64_t vram = effective_vram();
  if (vram > 0) {
    uint64_t memory_quota = vgpu.memory_bytes;
    for (TenantId o = 0; o < active_.size(); ++o) {
      if (o != t && active_[o]) memory_quota += tenants_[o].vgpu.memory_bytes;
    }
    SGDRC_REQUIRE(memory_quota <= vram,
                  "guaranteed memory quotas overcommit device VRAM");
  }
  // Commit: none of the steps below can fail.
  release_guarantee_region(t);
  tenants_[t].vgpu = vgpu;
  assign_guarantee_region(t);
  if (mem_) mem_->set_quota(t, vgpu.memory_bytes, vgpu.priority);
  poke();  // the controller re-plans under the new guarantees
}

TenantId ServingSim::add_tenant(const TenantSpec& spec) {
  shard_guard_.assert_mutable("add_tenant");
  tenants_.push_back(spec);
  const TenantId t = static_cast<TenantId>(tenants_.size() - 1);
  register_tenant(t);
  poke();  // a new BE loop starts now; a new LS tenant awaits injects
  return t;
}

void ServingSim::remove_tenant(TenantId t) {
  shard_guard_.assert_mutable("remove_tenant");
  SGDRC_REQUIRE(t < tenants_.size(), "unknown tenant");
  SGDRC_REQUIRE(active_[t], "tenant already removed");
  active_[t] = 0;
  release_guarantee_region(t);  // the reservation dies with the tenant
  if (tenants_[t].qos == QosClass::kBestEffort) {
    // Halt: leave the rotation so round-robin never waits on us...
    auto it = std::find(be_tenants_.begin(), be_tenants_.end(), t);
    SGDRC_CHECK(it != be_tenants_.end(), "BE tenant missing from rotation");
    const size_t idx = static_cast<size_t>(it - be_tenants_.begin());
    be_tenants_.erase(it);
    if (be_resident_ > idx) --be_resident_;
    be_resident_ = be_tenants_.empty() ? 0 : be_resident_ % be_tenants_.size();
    // ...and stop the in-flight kernel(s); the invisible loop job is
    // never launched again.
    for (auto& job : jobs_) {
      if (job.tenant == t && job_evictable(job)) evict(job.id);
    }
  }
  // LS tenants drain: the *router* above us must stop sending new work
  // (see the header contract — inject() itself still admits stragglers
  // that were routed before the removal), and jobs stay visible until
  // the backlog empties.
  if (batch_[t]) {
    // A half-assembled batch must not wait out a timer that may never
    // matter again: launch it now (partial) so the drain completes.
    close_batch(t);
  }
  if (mem_) {
    // The weights stay resident while the drain needs them (the busy
    // probe shields them), but the replica drops to the bottom of the
    // eviction order and is freed outright when already idle.
    mem_->retire_replica(t, busy_probe());
  }
  poke();
}

void ServingSim::set_be_paused(bool paused) {
  shard_guard_.assert_mutable("set_be_paused");
  if (be_paused_ == paused) return;
  be_paused_ = paused;
  if (paused) {
    // Mirror remove_tenant's BE halt: stop in-flight BE kernels so the
    // freed TPCs serve the LS backlog now, not after the batch drains.
    for (auto& job : jobs_) {
      if (qos_of(job) == QosClass::kBestEffort && job_evictable(job)) {
        evict(job.id);
      }
    }
  }
  poke();  // paused: re-plan without BE; resumed: restart the loops
}

void ServingSim::set_slo(TenantId t, TimeNs slo) {
  shard_guard_.assert_mutable("set_slo");
  SGDRC_REQUIRE(t < tenants_.size() &&
                    tenants_[t].qos == QosClass::kLatencySensitive,
                "SLOs apply to LS tenants");
  metrics_.tenants[t].slo = slo;
}

TimeNs ServingSim::slo_of(TenantId t) const {
  return metrics_.tenants.at(t).slo;
}

workload::ServingMetrics ServingSim::run(
    const std::vector<Request>& trace) {
  begin();
  for (const Request& r : trace) {
    if (r.arrival >= cfg_.duration) break;
    queue_.schedule_at(r.arrival, [this, r] { arrive(r); });
  }
  queue_.run_until(cfg_.duration);
  return finish();
}

void ServingSim::begin() {
  shard_guard_.assert_mutable("begin");
  metrics_.duration = cfg_.duration;
  poke();  // let the policy start the BE closed loops immediately
}

workload::ServingMetrics ServingSim::finish() {
  shard_guard_.assert_mutable("finish");
  stopped_ = true;
  return metrics_;
}

// ------------------------------------------- shard-local driver API ----
// Thin forwards onto the (fleet-mode: shard) event queue, so the fleet
// engine drives devices through the sim API instead of reaching into
// their queues. Everything a fired event touches — executor, controller,
// memory manager, RNG, metrics — is owned by this sim, so running one
// shard never observes another's state.

size_t ServingSim::run_shard_until_before(TimeNs t) {
  ShardGuard::WindowScope window(shard_guard_, "run_shard_until_before");
  return queue_.run_until_before(t);
}

size_t ServingSim::run_shard_until(TimeNs t) {
  ShardGuard::WindowScope window(shard_guard_, "run_shard_until");
  return queue_.run_until(t);
}

std::optional<TimeNs> ServingSim::next_shard_event() {
  // Mutating despite the name: surfacing tombstones pops the heap.
  ShardGuard::WindowScope window(shard_guard_, "next_shard_event");
  return queue_.peek_next_time();
}

void ServingSim::arrive(const Request& r) {
  SGDRC_REQUIRE(r.service < ls_tenants_.size(),
                "request for unknown service");
  inject(ls_tenants_[r.service], r.arrival);
}

void ServingSim::inject(TenantId t, TimeNs arrival) {
  shard_guard_.assert_mutable("inject");
  SGDRC_REQUIRE(t < tenants_.size() &&
                    tenants_[t].qos == QosClass::kLatencySensitive,
                "inject targets an LS tenant");
  // Removed tenants still accept stragglers: a fleet request routed
  // before the removal may land after it (dispatch hop) and is part of
  // the drain.
  SGDRC_REQUIRE(arrival <= now(), "injected request arrives in the future");
  ++metrics_.tenants[t].arrived;
  if (batch_[t]) {
    enqueue_for_batch(t, arrival);
  } else {
    admit_or_backlog(t, arrival);
  }
  poke();
}

// --------------------------------------------------- dynamic batching ----

void ServingSim::enqueue_for_batch(TenantId t, TimeNs arrival) {
  auto& bs = *batch_[t];
  const auto& policy = tenants_[t].batching;
  bs.assembly.push_back(arrival);
  if (!active_[t]) {
    // A straggler routed before the tenant's removal (fleet dispatch
    // hop): no companions are coming, so launching alone beats waiting
    // out the assembly timer and stretching the drain.
    close_batch(t);
    return;
  }
  if (bs.assembly.size() >= policy.max_batch ||
      policy.assembly_timeout == 0) {
    // Full (or a zero-timeout policy that never waits): launch now.
    close_batch(t);
  } else if (!bs.timer_armed) {
    // First request of a fresh assembly: give it `assembly_timeout` to
    // attract companions, then launch whatever gathered.
    bs.timer = queue_.schedule_after(policy.assembly_timeout, [this, t] {
      batch_[t]->timer_armed = false;
      close_batch(t);
      poke();
    });
    bs.timer_armed = true;
  }
}

void ServingSim::close_batch(TenantId t) {
  auto& bs = *batch_[t];
  if (bs.timer_armed) {
    queue_.cancel(bs.timer);
    bs.timer_armed = false;
  }
  if (bs.assembly.empty()) return;
  std::vector<TimeNs> arrivals = std::move(bs.assembly);
  bs.assembly.clear();
  if (free_instances_[t] > 0) {
    --free_instances_[t];
    admit_batch(t, std::move(arrivals));
  } else {
    bs.ready_requests += arrivals.size();
    bs.ready.push_back(std::move(arrivals));
  }
}

void ServingSim::admit_batch(TenantId t, std::vector<TimeNs> arrivals) {
  auto& bs = *batch_[t];
  const size_t size = arrivals.size();
  SGDRC_CHECK(size >= 1 && size <= bs.variants.size(),
              "batch size outside the tenant's variant range");
  Job job;
  job.id = next_job_++;
  job.tenant = t;
  job.arrival = arrivals.front();
  job.model = &bs.variants[size - 1];
  job.batch = std::move(arrivals);
  init_frontier(job);  // after job.model: the variant carries the deps
  bs.admitted_requests += size;
  ++bs.launched_batches;
  bs.launched_requests += size;
  bs.recent.push_back(static_cast<unsigned>(size));
  if (bs.recent.size() > kOccupancyWindow) bs.recent.pop_front();
  if (!stopped_) {
    metrics_.tenants[t].batch_sizes.add(static_cast<double>(size));
  }
  apply_memory_gates(job);
  jobs_.push_back(std::move(job));
}

void ServingSim::complete_ls_batch(TenantId t,
                                   const std::vector<TimeNs>& arrivals,
                                   bool cold) {
  auto& bs = *batch_[t];
  // Every request in the batch gets its own latency sample — completion
  // minus its OWN arrival, so assembly/queueing wait counts against the
  // SLO request by request.
  for (const TimeNs arrival : arrivals) {
    if (!stopped_) {
      metrics_.record_latency(t, arrival, now());
      if (cold) {
        metrics_.tenants[t].cold_latency.add(
            static_cast<double>(now() - arrival));
      }
    }
  }
  SGDRC_CHECK(bs.admitted_requests >= arrivals.size(),
              "batch completion underflows admitted-request count");
  bs.admitted_requests -= arrivals.size();
  // Hand the instance to the next closed batch (never re-cut: batches
  // are sized at close time, by the policy, not by instance pressure).
  if (!bs.ready.empty()) {
    std::vector<TimeNs> next = std::move(bs.ready.front());
    bs.ready.pop_front();
    bs.ready_requests -= next.size();
    admit_batch(t, std::move(next));
  } else {
    ++free_instances_[t];
  }
}

void ServingSim::admit_or_backlog(TenantId t, TimeNs arrival) {
  if (free_instances_[t] > 0) {
    --free_instances_[t];
    admit(t, arrival);
  } else {
    backlog_[t].push_back(arrival);
  }
}

void ServingSim::admit(TenantId tenant, TimeNs arrival) {
  Job job;
  job.id = next_job_++;
  job.tenant = tenant;
  job.arrival = arrival;
  init_frontier(job);
  apply_memory_gates(job);
  jobs_.push_back(std::move(job));
}

// ------------------------------------------------ memory virtualization ----

bool ServingSim::tenant_busy(TenantId t) const {
  if (t >= tenants_.size()) return false;
  if (tenants_[t].qos == QosClass::kLatencySensitive && outstanding(t) > 0) {
    return true;
  }
  for (const auto& j : jobs_) {
    if (j.tenant == t && job_inflight_any(j)) return true;
  }
  return false;
}

memory::MemoryManager::BusyFn ServingSim::busy_probe() {
  return [this](TenantId t) { return tenant_busy(t); };
}

void ServingSim::apply_memory_gates(Job& job) {
  if (!mem_) return;
  switch (mem_->residency(job.tenant)) {
    case memory::Residency::kWarm:
    case memory::Residency::kUnmodeled:
      return;
    case memory::Residency::kCold:
    case memory::Residency::kLoading:
      // Gated tenant-wide until the cold-start DMA lands (the load is
      // started by ensure_residency on the next poke).
      job.cold = true;
      return;
    case memory::Residency::kPaged: {
      // Degraded mode: this request restreams the weights through the
      // UVM staging window before it may launch.
      job.cold = true;
      if (!stopped_) {
        metrics_.tenants[job.tenant].paged_requests +=
            job.batch.empty() ? 1 : job.batch.size();
      }
      hold_job_for_paging(job.id, mem_->page_penalty(job.tenant));
      return;
    }
  }
}

void ServingSim::hold_job_for_paging(JobId id, TimeNs penalty) {
  held_jobs_.insert(id);
  queue_.schedule_after(penalty, [this, id] {
    held_jobs_.erase(id);
    poke();
  });
}

void ServingSim::ensure_residency() {
  if (!mem_) return;
  // Demand is what the scheduler could see modulo memory: start one
  // cold-start DMA per demanded cold tenant, and retry promoting paged
  // tenants to resident. kWaiting (strict mode, no capacity) is retried
  // here on every poke — pokes fire on every completion, so the waiter
  // makes progress as soon as memory frees.
  for (const auto& j : jobs_) {
    if (!job_can_launch(j)) continue;
    const auto r = mem_->residency(j.tenant);
    if (r != memory::Residency::kCold && r != memory::Residency::kPaged) {
      continue;
    }
    if (!visible_rotation(j)) continue;
    request_weights(j.tenant);
  }
}

void ServingSim::request_weights(TenantId t) {
  const auto touch = mem_->request(t, now(), busy_probe());
  switch (touch.kind) {
    case memory::MemoryManager::Touch::Kind::kLoadStarted:
      if (!stopped_) ++metrics_.tenants[t].weight_loads;
      queue_.schedule_after(touch.delay, [this, t] {
        mem_->finish_load(t, now());
        poke();
      });
      break;
    case memory::MemoryManager::Touch::Kind::kPagedNow:
      // The replica just degraded cold → paged: every job it already has
      // in the system pays the per-request restream before launching.
      for (auto& j : jobs_) {
        if (j.tenant != t || job_inflight_any(j) || held_jobs_.count(j.id)) {
          continue;
        }
        j.cold = true;
        if (!stopped_) {
          metrics_.tenants[t].paged_requests +=
              j.batch.empty() ? 1 : j.batch.size();
        }
        hold_job_for_paging(j.id, touch.delay);
      }
      break;
    case memory::MemoryManager::Touch::Kind::kReady:
    case memory::MemoryManager::Touch::Kind::kLoading:
    case memory::MemoryManager::Touch::Kind::kPagedStill:
    case memory::MemoryManager::Touch::Kind::kWaiting:
      break;
  }
}

bool ServingSim::memory_ready(const Job& j) const {
  if (!mem_) return true;
  switch (mem_->residency(j.tenant)) {
    case memory::Residency::kCold:
    case memory::Residency::kLoading:
      return false;
    default:
      break;
  }
  return held_jobs_.empty() || held_jobs_.count(j.id) == 0;
}

bool ServingSim::visible(const Job& j) const {
  return visible_rotation(j) && memory_ready(j);
}

bool ServingSim::visible_rotation(const Job& j) const {
  // Removed-LS jobs stay visible so admitted work drains; removed-BE
  // loops vanish so the policy never relaunches them.
  if (qos_of(j) == QosClass::kLatencySensitive) return true;
  if (be_paused_) return false;  // fleet overload: BE sheds before LS
  if (!active_[j.tenant] || be_tenants_.empty()) return false;
  return cfg_.be_mode == BeMode::kConcurrent ||
         be_tenants_[be_resident_] == j.tenant;
}

ServingSim::JobView ServingSim::view_of(const Job& j) const {
  const auto& kernels = model_of(j).kernels;
  if (j.frontier) {
    // Aggregate frontier view: next_kernel is the lowest-index ready
    // kernel; "in flight" means nothing is launchable right now.
    const auto& f = *j.frontier;
    const bool blocked = f.ready.empty();
    bool evicting = false;
    for (const auto& r : f.running) evicting |= r.evicting;
    return {j.id,
            j.tenant,
            qos_of(j),
            j.arrival,
            blocked ? nullptr : &kernels[f.ready.front()],
            blocked,
            evicting};
  }
  return {j.id,
          j.tenant,
          qos_of(j),
          j.arrival,
          j.in_flight ? nullptr : &kernels[j.cursor],
          j.in_flight,
          j.evicting};
}

std::vector<ServingSim::JobView> ServingSim::jobs(QosClass qos) const {
  std::vector<JobView> out;
  for (const auto& j : jobs_) {
    if (qos_of(j) == qos && visible(j)) out.push_back(view_of(j));
  }
  return out;
}

std::vector<ServingSim::JobView> ServingSim::jobs() const {
  auto out = jobs(QosClass::kLatencySensitive);
  const auto be = jobs(QosClass::kBestEffort);
  out.insert(out.end(), be.begin(), be.end());
  return out;
}

std::vector<ServingSim::JobView> ServingSim::waiting_jobs(
    QosClass qos) const {
  std::vector<JobView> out;
  for (const auto& j : jobs_) {
    if (qos_of(j) != qos || !visible(j)) continue;
    if (j.frontier) {
      // One entry per ready kernel, index ascending — the deterministic
      // ready order. launch(id, ...) consumes the same order, so the
      // i-th entry is exactly what the i-th launch of this job runs.
      const auto& kernels = model_of(j).kernels;
      for (const int k : j.frontier->ready) {
        out.push_back({j.id, j.tenant, qos, j.arrival, &kernels[k],
                       /*in_flight=*/false, /*evicting=*/false});
      }
    } else if (!j.in_flight) {
      out.push_back(view_of(j));
    }
  }
  return out;
}

std::optional<ServingSim::JobView> ServingSim::find_job(JobId id) const {
  const Job* j = job_ptr(id);
  if (!j) return std::nullopt;
  return view_of(*j);
}

size_t ServingSim::inflight(QosClass qos) const {
  return inflight_[qos_index(qos)];
}

std::vector<const gpusim::KernelDesc*> ServingSim::upcoming_kernels(
    QosClass qos, size_t window) const {
  std::vector<const gpusim::KernelDesc*> out;
  for (const auto& j : jobs_) {
    if (out.size() >= window) break;
    if (qos_of(j) != qos || !visible(j)) continue;
    if (j.frontier) {
      for (const int k : j.frontier->ready) {
        if (out.size() >= window) break;
        out.push_back(&model_of(j).kernels[k]);
      }
    } else if (!j.in_flight) {
      out.push_back(&model_of(j).kernels[j.cursor]);
    }
  }
  return out;
}

size_t ServingSim::tenant_count(QosClass qos) const {
  // Active only, for both classes: policies sizing per-class shares
  // must not reserve capacity for drained tenants. (The all-time slot
  // count is the no-argument tenant_count().)
  size_t n = 0;
  for (TenantId t = 0; t < tenants_.size(); ++t) {
    if (tenants_[t].qos == qos && active_[t]) ++n;
  }
  return n;
}

ServingSim::Job* ServingSim::job_ptr(JobId id) {
  auto it = std::find_if(jobs_.begin(), jobs_.end(),
                         [&](const Job& j) { return j.id == id; });
  return it == jobs_.end() ? nullptr : &*it;
}

const ServingSim::Job* ServingSim::job_ptr(JobId id) const {
  auto it = std::find_if(jobs_.begin(), jobs_.end(),
                         [&](const Job& j) { return j.id == id; });
  return it == jobs_.end() ? nullptr : &*it;
}

void ServingSim::note_inflight(QosClass qos, int delta) {
  const size_t i = qos_index(qos);
  if (delta > 0) {
    if (inflight_[i] == 0) busy_since_[i] = now();
    ++inflight_[i];
  } else {
    SGDRC_CHECK(inflight_[i] > 0, "in-flight underflow");
    --inflight_[i];
    if (inflight_[i] == 0) {
      auto& busy = qos == QosClass::kLatencySensitive ? metrics_.ls_busy_ns
                                                      : metrics_.be_busy_ns;
      busy += now() - busy_since_[i];
    }
  }
}

bool ServingSim::trespasses(TenantId owner, TpcMask eff_tpcs) const {
  const TpcMask foreign = guaranteed_used_ & ~guaranteed_mask_[owner];
  return (eff_tpcs & foreign) != 0;
}

LaunchSpec ServingSim::compile_allocation(
    const control::Allocation& a) const {
  SGDRC_REQUIRE(!a.empty(),
                "plan carries an empty Allocation — a zero mask no longer "
                "means \"all\"; use control::Allocation::all()");
  const TpcMask full = gpusim::full_tpc_mask(cfg_.spec.num_tpcs);
  const gpusim::ChannelSet allc =
      gpusim::all_channels(cfg_.spec.num_channels);
  const TpcMask tpcs = a.tpcs & full;
  const gpusim::ChannelSet chans = a.channels & allc;
  SGDRC_REQUIRE(tpcs != 0, "allocation names no TPC this device has");
  SGDRC_REQUIRE(chans != 0, "allocation names no channel this device has");
  // Out-of-range bits are only legal as part of the all() sentinel —
  // a partial in-range mask with stray high bits is a controller bug.
  SGDRC_REQUIRE((a.tpcs & ~full) == 0 || tpcs == full,
                "allocation TPC mask exceeds the device");
  SGDRC_REQUIRE((a.channels & ~allc) == 0 || chans == allc,
                "allocation channel set exceeds the device");
  // Canonical encodings. Channels: a device-covering set compiles to the
  // executor's legacy 0 = "all" (physically identical, and the SGDRC
  // monopolisation check keys on it). TPCs: only the all() *sentinel*
  // compiles to 0 — an explicit device-covering mask stays explicit,
  // because controllers read RunningInfo::tpc_mask back and the historic
  // encoding distinguishes "packed onto every TPC" (explicit, counts as
  // LS occupancy) from "monopolising BE" (0).
  return {a.tpcs == ~TpcMask{0} ? TpcMask{0} : tpcs,
          chans == allc ? gpusim::ChannelSet{0} : chans};
}

void ServingSim::apply(const control::ResourcePlan& plan) {
  shard_guard_.assert_mutable("apply");
  // A plan traced off a legacy imperative policy already acted on the
  // sim; re-applying would double-launch. It is a log, not a request.
  if (plan.pre_applied) return;
  for (const auto& d : plan.directives) {
    switch (d.kind) {
      case control::Directive::Kind::kLaunch: {
        const LaunchSpec spec = compile_allocation(d.alloc);
        const Job* job = job_ptr(d.job);
        SGDRC_REQUIRE(job != nullptr, "plan launches an unknown job");
        const TpcMask eff =
            spec.tpc_mask ? spec.tpc_mask
                          : gpusim::full_tpc_mask(cfg_.spec.num_tpcs);
        SGDRC_REQUIRE(!trespasses(job->tenant, eff),
                      "plan puts a kernel inside another tenant's "
                      "guaranteed TPC region");
        launch(d.job, spec);
        break;
      }
      case control::Directive::Kind::kEvict:
        evict(d.job);
        break;
      case control::Directive::Kind::kWakeAt:
        poke_at(d.at);
        break;
    }
  }
}

control::ResourcePlan ServingSim::trace_policy(Policy& policy) {
  control::ResourcePlan plan;
  plan.pre_applied = true;
  SGDRC_CHECK(trace_ == nullptr, "nested policy trace");
  trace_ = &plan;
  try {
    policy.schedule(*this);
  } catch (...) {
    trace_ = nullptr;
    throw;
  }
  trace_ = nullptr;
  return plan;
}

void ServingSim::launch(JobId id, LaunchSpec spec) {
  Job* job = job_ptr(id);
  SGDRC_REQUIRE(job != nullptr, "unknown job");
  SGDRC_REQUIRE(visible(*job),
                "job is not resident (BE rotation or weights not loaded)");
  if (job->frontier) {
    SGDRC_REQUIRE(!job->frontier->ready.empty(),
                  "job has no ready kernel (frontier blocked or fully "
                  "in flight)");
  } else {
    SGDRC_REQUIRE(!job->in_flight, "job already has a kernel in flight");
  }
  if (mem_) mem_->note_use(job->tenant, now());
  const auto& model = model_of(*job);
  // Chain: the cursor kernel. DAG: consume the lowest-index ready
  // kernel — the same order waiting_jobs() exposed.
  const int kidx = job->frontier
                       ? job->frontier->ready.front()
                       : static_cast<int>(job->cursor);
  const gpusim::KernelDesc& k = model.kernels[kidx];
  // Guarantee bookkeeping: kernels landing inside a *different* tenant's
  // reserved region are violations. Plan-enforced launches were already
  // rejected in apply(); this counts what legacy imperative policies
  // (which cannot see guarantees) do to them.
  const TpcMask eff = spec.tpc_mask
                          ? spec.tpc_mask
                          : gpusim::full_tpc_mask(cfg_.spec.num_tpcs);
  if (trespasses(job->tenant, eff)) ++metrics_.guarantee_violations;
  if (trace_ != nullptr) {
    trace_->launch(id, control::Allocation{
                           spec.tpc_mask ? spec.tpc_mask : ~TpcMask{0},
                           spec.channels ? spec.channels
                                         : ~gpusim::ChannelSet{0}});
  }
  // Only memory-bound kernels are channel-colored (§7.2); others keep the
  // default all-channel mapping.
  const gpusim::ChannelSet ch = k.memory_bound ? spec.channels : 0;
  note_inflight(qos_of(*job), +1);
  if (job->frontier) {
    auto& f = *job->frontier;
    f.ready.erase(f.ready.begin());
    f.running.push_back({kidx, 0, false});
    // Completion events fire through the queue, never synchronously, so
    // writing the launch id after launch() matches the chain path.
    f.running.back().launch_id =
        exec_->launch({&k, spec.tpc_mask, ch, id},
                      [this, id, kidx](GpuExecutor::LaunchId, TimeNs) {
                        finish_kernel_dag(id, kidx);
                      });
    return;
  }
  job->in_flight = true;
  job->evicting = false;
  job->launch_id = exec_->launch({&k, spec.tpc_mask, ch, id},
                                 [this, id](GpuExecutor::LaunchId, TimeNs) {
                                   finish_kernel(id);
                                 });
}

void ServingSim::finish_kernel(JobId id) {
  auto it = std::find_if(jobs_.begin(), jobs_.end(),
                         [&](const Job& j) { return j.id == id; });
  SGDRC_CHECK(it != jobs_.end(), "completion for unknown job");
  Job& job = *it;
  const QosClass qos = qos_of(job);
  job.in_flight = false;
  job.evicting = false;
  note_inflight(qos, -1);
  ++job.cursor;

  if (qos == QosClass::kBestEffort) {
    auto& m = metrics_.tenants[job.tenant];
    if (!stopped_) ++m.kernels_done;
    if (job.cursor >= model_of(job).kernels.size()) {
      if (!stopped_) ++m.batches_completed;
      rotate_be(job);
    }
  } else if (job.cursor >= model_of(job).kernels.size()) {
    complete_ls(it);
  }
  poke();
}

void ServingSim::complete_ls(std::deque<Job>::iterator it) {
  Job& job = *it;
  const TenantId tenant = job.tenant;
  // Erase before re-admitting: admit() push_backs into the deque,
  // which would invalidate `it`.
  const bool cold = job.cold;
  if (!job.batch.empty()) {
    const std::vector<TimeNs> arrivals = std::move(job.batch);
    jobs_.erase(it);
    complete_ls_batch(tenant, arrivals, cold);
  } else {
    const TimeNs arrival = job.arrival;
    jobs_.erase(it);
    complete_ls_job(tenant, arrival, cold);
  }
}

void ServingSim::finish_kernel_dag(JobId id, int kernel) {
  auto it = std::find_if(jobs_.begin(), jobs_.end(),
                         [&](const Job& j) { return j.id == id; });
  SGDRC_CHECK(it != jobs_.end(), "completion for unknown job");
  Job& job = *it;
  SGDRC_CHECK(job.frontier != nullptr, "DAG completion on a chain job");
  Frontier& f = *job.frontier;
  const QosClass qos = qos_of(job);
  auto rit = std::find_if(
      f.running.begin(), f.running.end(),
      [&](const Frontier::Running& r) { return r.kernel == kernel; });
  SGDRC_CHECK(rit != f.running.end(), "completion for a kernel not in flight");
  f.running.erase(rit);
  note_inflight(qos, -1);
  f.done[kernel] = 1;
  ++f.done_count;

  // Unlock dependents: kernels are topologically ordered, so only
  // higher indices can wait on `kernel`.
  const auto& deps = model_of(job).kernel_deps;
  for (size_t d = static_cast<size_t>(kernel) + 1; d < deps.size(); ++d) {
    if (!std::binary_search(deps[d].begin(), deps[d].end(), kernel)) {
      continue;
    }
    SGDRC_CHECK(f.pending[d] > 0, "dependency count underflow");
    if (--f.pending[d] == 0) f.make_ready(static_cast<int>(d));
  }

  const size_t total = model_of(job).kernels.size();
  if (qos == QosClass::kBestEffort) {
    auto& m = metrics_.tenants[job.tenant];
    if (!stopped_) ++m.kernels_done;
    if (f.done_count >= total) {
      if (!stopped_) ++m.batches_completed;
      rotate_be(job);
    }
  } else if (f.done_count >= total) {
    complete_ls(it);
  }
  poke();
}

void ServingSim::complete_ls_job(TenantId tenant, TimeNs arrival, bool cold) {
  if (!stopped_) {
    metrics_.record_latency(tenant, arrival, now());
    if (cold) {
      metrics_.tenants[tenant].cold_latency.add(
          static_cast<double>(now() - arrival));
    }
  }
  // Hand the instance to the next queued request.
  if (!backlog_[tenant].empty()) {
    const TimeNs queued = backlog_[tenant].front();
    backlog_[tenant].pop_front();
    admit(tenant, queued);
  } else {
    ++free_instances_[tenant];
  }
}

void ServingSim::rotate_be(Job& job) {
  job.cursor = 0;  // the batch loop restarts
  if (job.frontier) job.frontier->reset(model_of(job));
  // A removed tenant's final batch must not advance the rotation: its
  // removal already re-aimed be_resident_ at the next live tenant.
  if (cfg_.be_mode == BeMode::kRoundRobin && active_[job.tenant] &&
      !be_tenants_.empty()) {
    be_resident_ = (be_resident_ + 1) % be_tenants_.size();
  }
  if (mem_ && mem_->residency(job.tenant) == memory::Residency::kPaged) {
    // Paged BE tenant: every batch restreams the weights through the
    // UVM window before its next launch.
    if (!stopped_) ++metrics_.tenants[job.tenant].paged_requests;
    hold_job_for_paging(job.id, mem_->page_penalty(job.tenant));
  }
}

void ServingSim::evict(JobId id) {
  Job* job = job_ptr(id);
  SGDRC_REQUIRE(job != nullptr, "unknown job");
  if (job->frontier) {
    SGDRC_REQUIRE(!job->frontier->running.empty(),
                  "no in-flight kernel to evict");
    if (!job_evictable(*job)) return;  // everything already evicting
    if (trace_ != nullptr) trace_->evict(id);
    const QosClass qos = qos_of(*job);
    for (auto& r : job->frontier->running) {
      if (r.evicting) continue;
      r.evicting = true;
      ++metrics_.tenants[job->tenant].evictions;
      exec_->evict(r.launch_id, [this, id, qos, kernel = r.kernel](
                                    GpuExecutor::LaunchId, TimeNs) {
        // Progress lost; the kernel returns to the ready set (§7.1
        // restart) at its sorted position.
        Job* j = job_ptr(id);
        SGDRC_CHECK(j != nullptr && j->frontier != nullptr,
                    "eviction for unknown job");
        auto& f = *j->frontier;
        auto rit2 = std::find_if(
            f.running.begin(), f.running.end(),
            [&](const Frontier::Running& r2) { return r2.kernel == kernel; });
        SGDRC_CHECK(rit2 != f.running.end(),
                    "evicted kernel not in flight");
        f.running.erase(rit2);
        f.make_ready(kernel);
        note_inflight(qos, -1);
        poke();
      });
    }
    return;
  }
  SGDRC_REQUIRE(job->in_flight, "no in-flight kernel to evict");
  if (job->evicting) return;
  if (trace_ != nullptr) trace_->evict(id);
  job->evicting = true;
  ++metrics_.tenants[job->tenant].evictions;
  const QosClass qos = qos_of(*job);
  exec_->evict(job->launch_id,
               [this, id, qos](GpuExecutor::LaunchId, TimeNs) {
                 // Progress lost; the cursor stays on the same kernel
                 // (§7.1 restart).
                 Job* j = job_ptr(id);
                 SGDRC_CHECK(j != nullptr, "eviction for unknown job");
                 j->in_flight = false;
                 j->evicting = false;
                 note_inflight(qos, -1);
                 poke();
               });
}

void ServingSim::poke_at(TimeNs t) {
  if (trace_ != nullptr) trace_->wake_at(t);
  queue_.schedule_at(std::max(t, now()), [this] { poke(); });
}

void ServingSim::poke() {
  if (stopped_) return;
  if (in_schedule_) {
    repoke_ = true;
    return;
  }
  in_schedule_ = true;
  do {
    repoke_ = false;
    // Cold-start loads begin before the controller plans: a gated job
    // never reaches the plan, and the DMA-completion event re-pokes.
    ensure_residency();
    control::ResourcePlan plan = controller_->plan(control::SimView(*this));
    apply(plan);
  } while (repoke_);
  in_schedule_ = false;
}

}  // namespace sgdrc::core
