// The serving simulation: LS clients replaying a trace against per-model
// instance pools, one closed-loop BE task rotating round-robin over the
// BE models (§9.2's testing scenario), all over the kernel-level executor.
//
// Scheduling decisions are delegated to a Policy — SGDRC and every
// baseline of Fig. 17 implement this interface, so all systems run on
// exactly the same substrate and workload.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/event_queue.h"
#include "gpusim/executor.h"
#include "gpusim/gpu_spec.h"
#include "models/model.h"
#include "workload/metrics.h"
#include "workload/trace.h"

namespace sgdrc::core {

class ServingSim;

/// Scheduler strategy. schedule() is invoked after every state change
/// (request arrival, kernel completion, eviction, BE batch switch); it
/// must be idempotent — inspect the sim, launch what should run now.
class Policy {
 public:
  virtual ~Policy() = default;
  virtual std::string name() const = 0;
  virtual void schedule(ServingSim& sim) = 0;
};

struct LsServiceSpec {
  models::ModelDesc model;     // possibly SPT-transformed
  TimeNs isolated_latency = 0; // untransformed isolated p99 (SLO base)
};

struct BeTaskSpec {
  models::ModelDesc model;
};

struct ServingConfig {
  gpusim::GpuSpec spec;
  gpusim::ExecutorParams exec_params;
  unsigned ls_instances = 4;   // §9.2: 4 instances per LS model
  TimeNs duration = 2 * kNsPerSec;
  /// SLO = slo_multiplier × isolated p99; 0 ⇒ #LS + #BE services (§9.2).
  double slo_multiplier = 0.0;
};

class ServingSim {
 public:
  using JobId = uint64_t;

  ServingSim(ServingConfig cfg, std::vector<LsServiceSpec> ls,
             std::vector<BeTaskSpec> be, Policy& policy);

  /// Replay the trace; returns the metrics after `duration`.
  workload::ServingMetrics run(const std::vector<workload::Request>& trace);

  // ------------------------------------------------- policy read API ----
  const gpusim::GpuSpec& spec() const { return cfg_.spec; }
  gpusim::GpuExecutor& exec() { return *exec_; }
  TimeNs now() const { return queue_.now(); }

  struct LsJobView {
    JobId id;
    unsigned service;
    TimeNs arrival;
    const gpusim::KernelDesc* next_kernel;  // null when in flight
    bool in_flight;
  };
  /// Admitted LS jobs in arrival order (both waiting and in-flight).
  std::vector<LsJobView> ls_jobs() const;
  /// Waiting LS jobs only (next kernel launchable now), arrival order.
  std::vector<LsJobView> waiting_ls_jobs() const;
  size_t ls_inflight() const { return ls_inflight_; }
  /// The next `window` kernels of waiting LS jobs — the tidal scheduler's
  /// sliding window (§7.1).
  std::vector<const gpusim::KernelDesc*> upcoming_ls_kernels(
      size_t window) const;

  struct BeView {
    unsigned task;          // index into the BE rotation
    const gpusim::KernelDesc* next_kernel;  // null when in flight
    bool in_flight;
    bool evicting;
  };
  BeView be_state() const;
  bool has_be() const { return !be_.empty(); }

  size_t ls_services() const { return ls_.size(); }
  const models::ModelDesc& ls_model(unsigned service) const {
    return ls_[service].model;
  }
  const models::ModelDesc& be_model(unsigned task) const {
    return be_[task].model;
  }

  // ------------------------------------------------ policy write API ----
  /// Launch the next kernel of a waiting LS job. channels==0 ⇒ all.
  /// For non-memory-bound kernels the channel restriction is ignored
  /// (only memory-bound tensors are colored, §7.2).
  void launch_ls(JobId id, gpusim::TpcMask mask, gpusim::ChannelSet channels);

  /// Launch the BE task's next kernel.
  void launch_be(gpusim::TpcMask mask, gpusim::ChannelSet channels);

  /// Preempt the in-flight BE kernel via the eviction flag (§7.1). The
  /// kernel restarts from scratch at the next launch_be().
  void evict_be();

  /// Schedule a future policy wake-up (policies with timed behaviour,
  /// e.g. TGS's container switching).
  void poke_at(TimeNs t);

 private:
  struct LsJob {
    JobId id;
    unsigned service;
    TimeNs arrival;
    size_t cursor = 0;
    bool in_flight = false;
  };

  void arrive(const workload::Request& r);
  void admit(unsigned service, TimeNs arrival);
  void finish_ls_kernel(JobId id);
  void finish_be_kernel();
  void poke();

  ServingConfig cfg_;
  std::vector<LsServiceSpec> ls_;
  std::vector<BeTaskSpec> be_;
  Policy& policy_;

  EventQueue queue_;
  std::unique_ptr<gpusim::GpuExecutor> exec_;
  workload::ServingMetrics metrics_;

  std::deque<LsJob> jobs_;                     // admitted LS jobs
  std::vector<unsigned> free_instances_;       // per service
  std::vector<std::deque<TimeNs>> backlog_;    // queued arrivals per service
  size_t ls_inflight_ = 0;
  JobId next_job_ = 1;

  unsigned be_current_ = 0;   // rotation position
  size_t be_cursor_ = 0;      // kernel index within the current BE batch
  TimeNs be_started_ = 0;     // busy-time accounting
  TimeNs ls_busy_since_ = 0;
  bool be_in_flight_ = false;
  bool be_evicting_ = false;
  gpusim::GpuExecutor::LaunchId be_launch_ = 0;

  bool in_schedule_ = false;
  bool repoke_ = false;
  bool stopped_ = false;
};

}  // namespace sgdrc::core
