// The serving simulation: a set of tenants — open-loop latency-sensitive
// services replaying a trace against per-tenant instance pools, and
// closed-loop best-effort batch tasks — multiplexed over the
// kernel-level executor. Best-effort tenants either rotate round-robin
// (§9.2's testing scenario: one BE task resident at a time) or run
// concurrently (N-way colocation).
//
// Scheduling decisions are delegated to a Policy — SGDRC and every
// baseline of Fig. 17 implement this interface, so all systems run on
// exactly the same substrate and workload. Policies see one unified
// JobView API regardless of QoS class and act through
// launch(JobId, LaunchSpec) / evict(JobId).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/event_queue.h"
#include "common/rng.h"
#include "gpusim/executor.h"
#include "gpusim/gpu_spec.h"
#include "models/model.h"
#include "workload/metrics.h"
#include "workload/tenant.h"
#include "workload/trace.h"

namespace sgdrc::core {

using workload::JobId;
using workload::QosClass;
using workload::TenantId;

class ServingSim;

/// Scheduler strategy. schedule() is invoked after every state change
/// (request arrival, kernel completion, eviction, BE batch switch); it
/// must be idempotent — inspect the sim, launch what should run now.
class Policy {
 public:
  virtual ~Policy() = default;
  virtual std::string name() const = 0;
  virtual void schedule(ServingSim& sim) = 0;
};

/// One workload sharing the GPU: an LS service or a BE batch task.
struct TenantSpec {
  QosClass qos = QosClass::kBestEffort;
  models::ModelDesc model;     // possibly SPT-transformed
  /// LS only: untransformed isolated p99 (SLO base).
  TimeNs isolated_latency = 0;
  /// LS only: instance-pool size; 0 ⇒ ServingConfig::ls_instances.
  unsigned instances = 0;
};

inline TenantSpec latency_sensitive_tenant(models::ModelDesc model,
                                           TimeNs isolated_latency,
                                           unsigned instances = 0) {
  return {QosClass::kLatencySensitive, std::move(model), isolated_latency,
          instances};
}
inline TenantSpec best_effort_tenant(models::ModelDesc model) {
  return {QosClass::kBestEffort, std::move(model), 0, 0};
}

/// How best-effort tenants share the GPU among themselves.
enum class BeMode {
  /// §9.2: one BE tenant resident at a time, rotating at batch
  /// boundaries — policies see at most one BE job.
  kRoundRobin,
  /// Every BE tenant has its own always-on job; policies arbitrate.
  kConcurrent,
};

struct ServingConfig {
  gpusim::GpuSpec spec;
  gpusim::ExecutorParams exec_params;
  unsigned ls_instances = 4;   // §9.2: 4 instances per LS model
  TimeNs duration = 2 * kNsPerSec;
  /// SLO = slo_multiplier × isolated p99; 0 ⇒ #tenants concurrently on
  /// the GPU (#LS + 1 rotating BE slot, or #LS + #BE when concurrent).
  double slo_multiplier = 0.0;
  BeMode be_mode = BeMode::kRoundRobin;
  /// Seed of this sim's private RNG stream. Fleets salt it per device
  /// (fleet::device_seed) so replicas never share a jitter stream.
  uint64_t seed = 0x5eed;
};

/// Resource allocation for one kernel launch. Zero means "all" for both
/// fields (monopolisation).
struct LaunchSpec {
  gpusim::TpcMask tpc_mask = 0;
  gpusim::ChannelSet channels = 0;
};

class ServingSim {
 public:
  /// Standalone sim: owns its event queue.
  ServingSim(ServingConfig cfg, std::vector<TenantSpec> tenants,
             Policy& policy);
  /// Fleet mode: shares `queue` with sibling devices so an outer
  /// simulation (fleet::FleetSim) can interleave N GPUs on one clock and
  /// route requests by live per-device state. The caller drives the
  /// queue and uses begin()/inject()/finish() instead of run().
  ServingSim(EventQueue& queue, ServingConfig cfg,
             std::vector<TenantSpec> tenants, Policy& policy);

  /// Replay the trace; returns the metrics after `duration`.
  workload::ServingMetrics run(const std::vector<workload::Request>& trace);

  // -------------------------------------------- external-driver API ----
  // run() is begin() + per-request inject() + queue drain + finish();
  // fleets call the pieces directly.
  /// Start metrics collection and let the policy boot the BE loops.
  void begin();
  /// Admit a routed LS request for `tenant`. `arrival` is the upstream
  /// (fleet) arrival time — it may predate now() so queueing at the
  /// router counts against the SLO; it must not be in the future.
  void inject(TenantId tenant, TimeNs arrival);
  /// Stop recording (late completions no longer count) and take the
  /// metrics.
  workload::ServingMetrics finish();

  // ------------------------------------------ runtime tenant churn ----
  // Dynamic scenarios (workload::Scenario) and fleet autoscaling add and
  // remove tenants while the simulation runs.
  /// Register a new tenant mid-run. LS tenants get an instance pool and
  /// an SLO derived from the same multiplier the initial set used; BE
  /// tenants get a batch loop that the policy starts on the next poke.
  /// Returns the new dense TenantId (existing ids never shift).
  TenantId add_tenant(const TenantSpec& spec);
  /// Retire a tenant. LS tenants drain: routers must stop sending new
  /// work (stragglers already in a dispatch hop are still admitted), and
  /// admitted + backlogged requests complete and are recorded. BE
  /// tenants halt: the batch loop leaves the rotation and its in-flight
  /// kernel (if any) is evicted. The metrics slot survives removal.
  void remove_tenant(TenantId t);
  /// False once remove_tenant(t) has been called.
  bool tenant_active(TenantId t) const { return active_.at(t) != 0; }
  /// Runtime SLO changes (scenario scripting, e.g. an SLO tighten).
  void set_slo(TenantId t, TimeNs slo);
  TimeNs slo_of(TenantId t) const;

  // ------------------------------------------------- policy read API ----
  const gpusim::GpuSpec& spec() const { return cfg_.spec; }
  const ServingConfig& config() const { return cfg_; }
  gpusim::GpuExecutor& exec() { return *exec_; }
  TimeNs now() const { return queue_.now(); }

  struct JobView {
    JobId id;
    TenantId tenant;
    QosClass qos;
    TimeNs arrival;
    const gpusim::KernelDesc* next_kernel;  // null when in flight
    bool in_flight;
    bool evicting;
  };
  /// Every visible job, LS before BE, each class in arrival order. In
  /// round-robin mode only the resident BE tenant's job is visible.
  std::vector<JobView> jobs() const;
  /// Visible jobs of one class, arrival order.
  std::vector<JobView> jobs(QosClass qos) const;
  /// Waiting jobs of one class (next kernel launchable now).
  std::vector<JobView> waiting_jobs(QosClass qos) const;
  /// Look a job up by id — e.g. classify a RunningInfo by its tag.
  std::optional<JobView> find_job(JobId id) const;
  /// In-flight kernels of one class.
  size_t inflight(QosClass qos) const;
  /// The next `window` kernels of waiting jobs of `qos` — the tidal
  /// scheduler's sliding window (§7.1).
  std::vector<const gpusim::KernelDesc*> upcoming_kernels(
      QosClass qos, size_t window) const;

  /// All tenant slots ever registered (metrics/TenantId space; removal
  /// never shrinks it).
  size_t tenant_count() const { return tenants_.size(); }
  /// Active tenants of one class (drained/halted tenants excluded).
  size_t tenant_count(QosClass qos) const;
  bool has_class(QosClass qos) const { return tenant_count(qos) > 0; }
  const TenantSpec& tenant(TenantId t) const { return tenants_.at(t); }
  const models::ModelDesc& tenant_model(TenantId t) const {
    return tenants_.at(t).model;
  }
  /// Instance-pool size of an LS tenant (0 for BE tenants).
  unsigned instances_of(TenantId t) const { return instances_.at(t); }
  /// Requests in the system for an LS tenant: admitted (holding an
  /// instance) plus backlogged. Routers balance replicas on this.
  size_t outstanding(TenantId t) const {
    return (instances_.at(t) - free_instances_.at(t)) + backlog_.at(t).size();
  }
  /// This sim's private deterministic RNG stream (device-salted in
  /// fleets); policies and outer simulations draw jitter from it.
  Rng& rng() { return rng_; }

  // ------------------------------------------------ policy write API ----
  /// Launch the next kernel of a waiting job. For non-memory-bound
  /// kernels the channel restriction is ignored (only memory-bound
  /// tensors are colored, §7.2).
  void launch(JobId id, LaunchSpec spec);

  /// Preempt the job's in-flight kernel via the eviction flag (§7.1).
  /// Restart-from-scratch semantics: progress is lost and the job's
  /// cursor stays on the same kernel until the next launch(). Only
  /// preemptible (best-effort) kernels accept this.
  void evict(JobId id);

  /// Schedule a future policy wake-up (policies with timed behaviour,
  /// e.g. TGS's container switching).
  void poke_at(TimeNs t);

 private:
  struct Job {
    JobId id = 0;
    TenantId tenant = 0;
    TimeNs arrival = 0;
    size_t cursor = 0;
    bool in_flight = false;
    bool evicting = false;
    gpusim::GpuExecutor::LaunchId launch_id = 0;
  };

  QosClass qos_of(const Job& j) const { return tenants_[j.tenant].qos; }
  bool visible(const Job& j) const;
  JobView view_of(const Job& j) const;
  Job* job_ptr(JobId id);
  const Job* job_ptr(JobId id) const;

  void init();
  void register_tenant(TenantId t);
  void arrive(const workload::Request& r);
  void admit(TenantId tenant, TimeNs arrival);
  void admit_or_backlog(TenantId tenant, TimeNs arrival);
  void finish_kernel(JobId id);
  void complete_ls_job(TenantId tenant, TimeNs arrival);
  void rotate_be(Job& job);
  void note_inflight(QosClass qos, int delta);
  void poke();

  ServingConfig cfg_;
  std::vector<TenantSpec> tenants_;
  Policy& policy_;

  std::unique_ptr<EventQueue> owned_queue_;  // null in fleet mode
  EventQueue& queue_;
  Rng rng_;
  std::unique_ptr<gpusim::GpuExecutor> exec_;
  workload::ServingMetrics metrics_;

  std::deque<Job> jobs_;                 // BE loops first, then LS jobs
  std::vector<TenantId> ls_tenants_;     // trace service index → tenant
  std::vector<TenantId> be_tenants_;     // rotation order (active only)
  size_t be_resident_ = 0;               // round-robin position
  std::vector<unsigned> instances_;      // per tenant pool size (LS only)
  std::vector<unsigned> free_instances_; // per tenant (LS slots only)
  std::vector<std::deque<TimeNs>> backlog_;  // queued arrivals per tenant
  std::vector<char> active_;             // per tenant; 0 after removal
  double slo_n_ = 1.0;                   // SLO multiplier used at init
  size_t inflight_[2] = {0, 0};          // per QosClass
  TimeNs busy_since_[2] = {0, 0};
  JobId next_job_ = 1;

  bool in_schedule_ = false;
  bool repoke_ = false;
  bool stopped_ = false;
};

/// Fluent setup for a serving simulation, so drivers stop hand-assembling
/// ServingConfig + TenantSpec vectors:
///
///   auto sim = ServingSimBuilder()
///                  .gpu(gpusim::rtx_a2000())
///                  .duration(1 * kNsPerSec)
///                  .add_latency_sensitive(model_a, iso_a)
///                  .add_best_effort(model_i)
///                  .add_best_effort(model_j)
///                  .best_effort_mode(BeMode::kConcurrent)
///                  .build(policy);
class ServingSimBuilder {
 public:
  ServingSimBuilder& gpu(const gpusim::GpuSpec& spec) {
    cfg_.spec = spec;
    return *this;
  }
  ServingSimBuilder& executor_params(const gpusim::ExecutorParams& p) {
    cfg_.exec_params = p;
    return *this;
  }
  ServingSimBuilder& duration(TimeNs d) {
    cfg_.duration = d;
    return *this;
  }
  ServingSimBuilder& default_ls_instances(unsigned n) {
    cfg_.ls_instances = n;
    return *this;
  }
  ServingSimBuilder& slo_multiplier(double n) {
    cfg_.slo_multiplier = n;
    return *this;
  }
  ServingSimBuilder& best_effort_mode(BeMode mode) {
    cfg_.be_mode = mode;
    return *this;
  }
  ServingSimBuilder& seed(uint64_t s) {
    cfg_.seed = s;
    return *this;
  }
  ServingSimBuilder& add_tenant(TenantSpec spec) {
    tenants_.push_back(std::move(spec));
    return *this;
  }
  ServingSimBuilder& add_latency_sensitive(models::ModelDesc model,
                                           TimeNs isolated_latency,
                                           unsigned instances = 0) {
    return add_tenant(latency_sensitive_tenant(std::move(model),
                                               isolated_latency, instances));
  }
  ServingSimBuilder& add_best_effort(models::ModelDesc model) {
    return add_tenant(best_effort_tenant(std::move(model)));
  }

  /// The sim keeps a reference to `policy`; both must outlive run().
  /// (unique_ptr because the sim's executor holds a reference into the
  /// sim-owned event queue — the sim must not move.)
  std::unique_ptr<ServingSim> build(Policy& policy) const {
    return std::make_unique<ServingSim>(cfg_, tenants_, policy);
  }

 private:
  ServingConfig cfg_;
  std::vector<TenantSpec> tenants_;
};

}  // namespace sgdrc::core
