// The serving simulation: a set of tenants — open-loop latency-sensitive
// services replaying a trace against per-tenant instance pools, and
// closed-loop best-effort batch tasks — multiplexed over the
// kernel-level executor. Best-effort tenants either rotate round-robin
// (§9.2's testing scenario: one BE task resident at a time) or run
// concurrently (N-way colocation).
//
// Scheduling decisions are delegated to a Policy — SGDRC and every
// baseline of Fig. 17 implement this interface, so all systems run on
// exactly the same substrate and workload. Policies see one unified
// JobView API regardless of QoS class and act through
// launch(JobId, LaunchSpec) / evict(JobId).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/event_queue.h"
#include "common/rng.h"
#include "common/shard_guard.h"
#include "control/vgpu.h"
#include "gpusim/executor.h"
#include "gpusim/gpu_spec.h"
#include "memory/memory.h"
#include "models/model.h"
#include "workload/metrics.h"
#include "workload/tenant.h"
#include "workload/trace.h"

namespace sgdrc::control {
class Controller;
class SimView;
struct ResourcePlan;
struct Allocation;
}  // namespace sgdrc::control

namespace sgdrc::core {

using workload::JobId;
using workload::QosClass;
using workload::TenantId;

class ServingSim;

/// Legacy imperative scheduler interface. schedule() is invoked after
/// every state change (request arrival, kernel completion, eviction, BE
/// batch switch); it must be idempotent — inspect the sim, launch what
/// should run now. New schedulers should implement control::Controller
/// instead (declarative ResourcePlans, validated guarantees); Policies
/// keep running unchanged through control::LegacyPolicyAdapter, which
/// the sim instantiates internally for the Policy& constructors.
class Policy {
 public:
  virtual ~Policy() = default;
  virtual std::string name() const = 0;
  virtual void schedule(ServingSim& sim) = 0;
};

/// One workload sharing the GPU: an LS service or a BE batch task.
struct TenantSpec {
  QosClass qos = QosClass::kBestEffort;
  models::ModelDesc model;     // possibly SPT-transformed
  /// LS only: untransformed isolated p99 (SLO base).
  TimeNs isolated_latency = 0;
  /// LS only: instance-pool size; 0 ⇒ ServingConfig::ls_instances.
  unsigned instances = 0;
  /// vGPU guarantees (§4): hard TPC reservation, channel share, weight,
  /// priority. Default: no guarantees (pure tidal sharing).
  control::VgpuSpec vgpu;
  /// LS only: dynamic request batching (assembly queue + batched jobs).
  /// Default OFF — each request is its own job, bit-for-bit the historic
  /// behaviour.
  workload::BatchPolicy batching;
};

inline TenantSpec latency_sensitive_tenant(models::ModelDesc model,
                                           TimeNs isolated_latency,
                                           unsigned instances = 0,
                                           control::VgpuSpec vgpu = {}) {
  return {QosClass::kLatencySensitive, std::move(model), isolated_latency,
          instances, vgpu, {}};
}
inline TenantSpec best_effort_tenant(models::ModelDesc model,
                                     control::VgpuSpec vgpu = {}) {
  return {QosClass::kBestEffort, std::move(model), 0, 0, vgpu, {}};
}
/// Attach a vGPU guarantee to an existing tenant declaration.
inline TenantSpec with_vgpu(TenantSpec spec, control::VgpuSpec vgpu) {
  spec.vgpu = vgpu;
  return spec;
}
/// Attach a request-batching policy to an existing tenant declaration.
inline TenantSpec with_batching(TenantSpec spec,
                                workload::BatchPolicy batching) {
  spec.batching = batching;
  return spec;
}

/// How best-effort tenants share the GPU among themselves.
enum class BeMode {
  /// §9.2: one BE tenant resident at a time, rotating at batch
  /// boundaries — policies see at most one BE job.
  kRoundRobin,
  /// Every BE tenant has its own always-on job; policies arbitrate.
  kConcurrent,
};

struct ServingConfig {
  gpusim::GpuSpec spec;
  gpusim::ExecutorParams exec_params;
  unsigned ls_instances = 4;   // §9.2: 4 instances per LS model
  TimeNs duration = 2 * kNsPerSec;
  /// SLO = slo_multiplier × isolated p99; 0 ⇒ #tenants concurrently on
  /// the GPU (#LS + 1 rotating BE slot, or #LS + #BE when concurrent).
  double slo_multiplier = 0.0;
  BeMode be_mode = BeMode::kRoundRobin;
  /// Seed of this sim's private RNG stream. Fleets salt it per device
  /// (fleet::device_seed) so replicas never share a jitter stream.
  uint64_t seed = 0x5eed;
  /// GPU memory virtualization (weight residency, cold starts,
  /// eviction; src/memory). OFF by default — and even when enabled, a
  /// device whose GpuSpec::vram_bytes is 0 (default-constructed specs)
  /// stays *unmodeled*: memory charging is silently skipped, never an
  /// instant OOM.
  memory::MemoryOptions memory;
};

/// Resource allocation for one kernel launch. Zero means "all" for both
/// fields (monopolisation).
struct LaunchSpec {
  gpusim::TpcMask tpc_mask = 0;
  gpusim::ChannelSet channels = 0;
};

class ServingSim {
 public:
  /// Standalone sim driven by a declarative controller: owns its event
  /// queue; the enforcer compiles each plan into launches/evictions.
  ServingSim(ServingConfig cfg, std::vector<TenantSpec> tenants,
             control::Controller& controller);
  /// Standalone sim driven by a legacy imperative Policy (wrapped in an
  /// internal LegacyPolicyAdapter; behaviour is identical to the
  /// pre-control-plane path).
  ServingSim(ServingConfig cfg, std::vector<TenantSpec> tenants,
             Policy& policy);
  /// Fleet mode: shares `queue` with sibling devices so an outer
  /// simulation (fleet::FleetSim) can interleave N GPUs on one clock and
  /// route requests by live per-device state. The caller drives the
  /// queue and uses begin()/inject()/finish() instead of run().
  ServingSim(EventQueue& queue, ServingConfig cfg,
             std::vector<TenantSpec> tenants,
             control::Controller& controller);
  ServingSim(EventQueue& queue, ServingConfig cfg,
             std::vector<TenantSpec> tenants, Policy& policy);
  ~ServingSim();

  /// Replay the trace; returns the metrics after `duration`.
  workload::ServingMetrics run(const std::vector<workload::Request>& trace);

  // -------------------------------------------- external-driver API ----
  // run() is begin() + per-request inject() + queue drain + finish();
  // fleets call the pieces directly.
  /// Start metrics collection and let the policy boot the BE loops.
  void begin();
  /// Admit a routed LS request for `tenant`. `arrival` is the upstream
  /// (fleet) arrival time — it may predate now() so queueing at the
  /// router counts against the SLO; it must not be in the future.
  void inject(TenantId tenant, TimeNs arrival);
  /// Stop recording (late completions no longer count) and take the
  /// metrics.
  workload::ServingMetrics finish();

  // ------------------------------------------ shard-local driver API ----
  // In the sharded fleet engine each device sim's `queue` (the fleet-mode
  // constructor argument) is private to the device — one shard of the
  // fleet's conservative time-window loop. The fleet barrier drives the
  // shard with these; exactly one thread may run a given sim at a time
  // (the pool's submit/wait_idle pair provides the happens-before).
  // That exclusivity is asserted by shard_guard() when armed
  // (common/shard_guard.h): the three methods below claim the shard for
  // the call, and every mutating entry point checks the claim.
  /// Fire this shard's events strictly before `t`, then advance its
  /// clock to `t` — the barrier's exclusive edge, so same-timestamp
  /// events wait for the canonical fleet-before-device turn.
  size_t run_shard_until_before(TimeNs t);
  /// Fire this shard's events up to and including `t` (the inclusive
  /// drain that closes a window).
  size_t run_shard_until(TimeNs t);
  /// Earliest pending event on this shard (nullopt when idle).
  std::optional<TimeNs> next_shard_event();

  // ------------------------------------------ runtime tenant churn ----
  // Dynamic scenarios (workload::Scenario) and fleet autoscaling add and
  // remove tenants while the simulation runs.
  /// Register a new tenant mid-run. LS tenants get an instance pool and
  /// an SLO derived from the same multiplier the initial set used; BE
  /// tenants get a batch loop that the policy starts on the next poke.
  /// Returns the new dense TenantId (existing ids never shift).
  TenantId add_tenant(const TenantSpec& spec);
  /// Retire a tenant. LS tenants drain: routers must stop sending new
  /// work (stragglers already in a dispatch hop are still admitted), and
  /// admitted + backlogged requests complete and are recorded. BE
  /// tenants halt: the batch loop leaves the rotation and its in-flight
  /// kernel (if any) is evicted. The metrics slot survives removal.
  void remove_tenant(TenantId t);
  /// False once remove_tenant(t) has been called.
  bool tenant_active(TenantId t) const { return active_.at(t) != 0; }
  /// Runtime SLO changes (scenario scripting, e.g. an SLO tighten).
  void set_slo(TenantId t, TimeNs slo);
  TimeNs slo_of(TenantId t) const;
  /// Runtime vGPU re-plan (scenario set_quota): swap a tenant's
  /// guarantees. The old TPC region is released, a new one is carved
  /// (validated against overcommit), and the controller re-plans.
  void set_vgpu(TenantId t, const control::VgpuSpec& vgpu);
  /// Fleet overload lever (the front door's BE-before-LS degradation
  /// order): while paused, every BE loop is invisible to the controller
  /// — nothing launches — and in-flight BE kernels are evicted so their
  /// TPCs free immediately. Resuming pokes the controller; loops restart
  /// where their rotation left off. Idempotent.
  void set_be_paused(bool paused);
  bool be_paused() const { return be_paused_; }

  // ------------------------------------------------- policy read API ----
  const gpusim::GpuSpec& spec() const { return cfg_.spec; }
  const ServingConfig& config() const { return cfg_; }
  gpusim::GpuExecutor& exec() { return *exec_; }
  TimeNs now() const { return queue_.now(); }

  struct JobView {
    JobId id;
    TenantId tenant;
    QosClass qos;
    TimeNs arrival;
    const gpusim::KernelDesc* next_kernel;  // null when in flight
    bool in_flight;
    bool evicting;
  };
  /// Every visible job, LS before BE, each class in arrival order — one
  /// view per job. In round-robin mode only the resident BE tenant's
  /// job is visible. For a DAG job the view aggregates its frontier:
  /// next_kernel is the lowest-index ready kernel (null, with in_flight
  /// set, when every runnable kernel is already launched).
  std::vector<JobView> jobs() const;
  /// Visible jobs of one class, arrival order.
  std::vector<JobView> jobs(QosClass qos) const;
  /// Waiting work of one class: one view per launchable kernel. Chain
  /// jobs contribute at most one entry (the cursor kernel when idle) —
  /// exactly the historic list. A DAG job contributes one entry per
  /// ready kernel, kernel index ascending, each with next_kernel
  /// pointing at that kernel; launch(id, ...) consumes them in the same
  /// order, so "launch every waiting entry" co-schedules the frontier.
  std::vector<JobView> waiting_jobs(QosClass qos) const;
  /// Look a job up by id — e.g. classify a RunningInfo by its tag.
  std::optional<JobView> find_job(JobId id) const;
  /// In-flight kernels of one class.
  size_t inflight(QosClass qos) const;
  /// The next `window` kernels of waiting jobs of `qos` — the tidal
  /// scheduler's sliding window (§7.1). DAG jobs contribute every ready
  /// kernel (ascending), mirroring waiting_jobs.
  std::vector<const gpusim::KernelDesc*> upcoming_kernels(
      QosClass qos, size_t window) const;

  /// All tenant slots ever registered (metrics/TenantId space; removal
  /// never shrinks it).
  size_t tenant_count() const { return tenants_.size(); }
  /// Active tenants of one class (drained/halted tenants excluded).
  size_t tenant_count(QosClass qos) const;
  bool has_class(QosClass qos) const { return tenant_count(qos) > 0; }
  const TenantSpec& tenant(TenantId t) const { return tenants_.at(t); }
  const models::ModelDesc& tenant_model(TenantId t) const {
    return tenants_.at(t).model;
  }
  /// Instance-pool size of an LS tenant (0 for BE tenants).
  unsigned instances_of(TenantId t) const { return instances_.at(t); }
  /// Requests in the system for an LS tenant: admitted (holding an
  /// instance) plus backlogged — counted in *requests*, so a batching
  /// tenant's assembly queue and closed-but-waiting batches are visible
  /// to routers, not hidden behind a single instance slot.
  size_t outstanding(TenantId t) const {
    if (batch_.at(t)) {
      const auto& bs = *batch_[t];
      return bs.admitted_requests + bs.ready_requests + bs.assembly.size();
    }
    return (instances_.at(t) - free_instances_.at(t)) + backlog_.at(t).size();
  }

  // ------------------------------------------------ batching read API ----
  /// True when the tenant runs under a BatchPolicy with max_batch > 1.
  bool batching_enabled(TenantId t) const { return batch_.at(t) != nullptr; }
  /// Requests queued ahead of the GPU: the assembly queue plus closed
  /// batches waiting for a free instance (0 for non-batching tenants).
  /// Routers and the batch-aware controller read this.
  size_t batch_queue_depth(TenantId t) const {
    if (!batch_.at(t)) return 0;
    return batch_[t]->assembly.size() + batch_[t]->ready_requests;
  }
  /// Observed batch occupancy: mean requests per batch over the most
  /// recently launched batches (a sliding window, so the signal follows
  /// the workload — a surge of full batches raises it, a return to
  /// singleton traffic decays it; 0 before the first batch launches).
  /// The batch-aware controller widens and narrows the tenant's
  /// allocation from this.
  double batch_occupancy(TenantId t) const {
    if (!batch_.at(t) || batch_[t]->recent.empty()) return 0.0;
    size_t sum = 0;
    for (const unsigned s : batch_[t]->recent) sum += s;
    return static_cast<double>(sum) /
           static_cast<double>(batch_[t]->recent.size());
  }
  /// This sim's private deterministic RNG stream (device-salted in
  /// fleets); policies and outer simulations draw jitter from it.
  Rng& rng() { return rng_; }
  /// The shard-ownership race detector (dormant unless armed — see
  /// common/shard_guard.h). Tests claim it to fake a mid-window worker.
  ShardGuard& shard_guard() { return shard_guard_; }

  // ------------------------------------------------ memory read API ----
  /// True when this device models VRAM capacity (memory virtualization
  /// enabled AND the spec declares a non-zero vram_bytes).
  bool memory_modeled() const { return mem_ != nullptr; }
  /// Where tenant t's weights live (kUnmodeled on unmodeled devices).
  /// Routers use this to prefer warm replicas.
  memory::Residency residency_of(TenantId t) const {
    return mem_ ? mem_->residency(t) : memory::Residency::kUnmodeled;
  }
  /// Null on unmodeled devices.
  const memory::MemoryManager* memory_manager() const { return mem_.get(); }

  // ----------------------------------------- vGPU guarantee geometry ----
  /// The concrete TPC region backing tenant t's guarantee (0 when the
  /// tenant has none or was removed). LS regions are carved from the top
  /// of the mask, BE regions from the bottom, so SGDRC's LS-at-the-top
  /// tidal convention and hard reservations compose.
  gpusim::TpcMask guaranteed_mask(TenantId t) const {
    return guaranteed_mask_.at(t);
  }
  /// Union of active guaranteed regions of one class.
  gpusim::TpcMask guaranteed_union(QosClass qos) const;

  // ------------------------------------------------ policy write API ----
  /// Enforce a declarative plan: validate each directive (explicit
  /// allocations — no zero-means-all; launches must not trespass on
  /// another tenant's guaranteed region) and compile it into
  /// launch/evict/poke_at calls, strictly in emission order. Plans
  /// traced off a legacy policy (pre_applied) already acted and are
  /// skipped. This is the only path from plan to mechanism.
  void apply(const control::ResourcePlan& plan);

  /// Legacy mechanism API: launch the next kernel of a waiting job —
  /// for a DAG job, the lowest-index ready kernel of its frontier
  /// (repeated launches in one poke walk the ready set in order).
  /// Zero means "all" for both LaunchSpec fields (pre-control-plane
  /// convention, kept for imperative Policies; plans use the explicit
  /// control::Allocation instead). For non-memory-bound kernels the
  /// channel restriction is ignored (only memory-bound tensors are
  /// colored, §7.2). Launches that put a kernel inside another tenant's
  /// guaranteed region are counted in ServingMetrics::
  /// guarantee_violations (and rejected outright on the plan path).
  void launch(JobId id, LaunchSpec spec);

  /// Preempt the job's in-flight kernel(s) via the eviction flag (§7.1).
  /// Restart-from-scratch semantics: progress is lost and the job's
  /// cursor stays on the same kernel until the next launch() (a DAG
  /// job's evicted kernels return to its ready set). Evicts every
  /// in-flight kernel of a DAG job. Only preemptible (best-effort)
  /// kernels accept this.
  void evict(JobId id);

  /// Schedule a future policy wake-up (policies with timed behaviour,
  /// e.g. TGS's container switching).
  void poke_at(TimeNs t);

  /// Adapter plumbing (control::SimView::trace_legacy): run an
  /// imperative Policy against the live sim while tracing its
  /// launch/evict/poke_at calls into a pre_applied ResourcePlan.
  control::ResourcePlan trace_policy(Policy& policy);

 private:
  /// DAG execution state for one job, allocated only when the job's
  /// model carries explicit kernel_deps. Ready order is deterministic:
  /// kernel index ascending (docs/models.md), so reruns are
  /// bit-identical whatever completion order the executor produces.
  struct Frontier {
    explicit Frontier(const models::ModelDesc& m) { reset(m); }
    /// (Re)derive the initial frontier from the model's kernel_deps —
    /// also how a BE batch loop restarts at rotation.
    void reset(const models::ModelDesc& m);
    /// Return an evicted/unblocked kernel to the ready set, keeping the
    /// ascending order.
    void make_ready(int kernel);

    std::vector<int> pending;  // unmet dep count (0 = ready/running/done)
    std::vector<char> done;    // completed kernels
    size_t done_count = 0;
    std::vector<int> ready;    // launchable kernel indices, ascending
    struct Running {
      int kernel = -1;
      gpusim::GpuExecutor::LaunchId launch_id = 0;
      bool evicting = false;
    };
    std::vector<Running> running;  // in-flight kernels, launch order
  };

  /// One admitted unit of work. A chain job (frontier == nullptr — every
  /// model without explicit kernel_deps) advances the historic way: the
  /// single `cursor` walks `kernels` in order with at most one kernel in
  /// flight, tracked by in_flight/evicting/launch_id — exactly the
  /// pre-DAG code path, bit for bit. A DAG job instead tracks a
  /// *frontier*: a ready set of dependency-satisfied kernels, any number
  /// of which may be in flight at once (multi-launch into the executor's
  /// concurrent-kernel support); cursor/in_flight/launch_id are unused.
  struct Job {
    JobId id = 0;
    TenantId tenant = 0;
    TimeNs arrival = 0;  // batched jobs: the oldest request's arrival
    size_t cursor = 0;
    bool in_flight = false;
    bool evicting = false;
    gpusim::GpuExecutor::LaunchId launch_id = 0;
    /// Non-null iff the model has explicit kernel_deps.
    std::unique_ptr<Frontier> frontier;
    /// Batched jobs run a batch-size-scaled kernel sequence (owned by the
    /// tenant's BatchState; stable storage). Null = the tenant spec model.
    const models::ModelDesc* model = nullptr;
    /// Arrival time of every request in the batch (empty for ordinary
    /// single-request jobs); each gets its own latency sample.
    std::vector<TimeNs> batch;
    /// The job found cold/paged weights when it entered the system: its
    /// request latencies are also recorded into TenantMetrics::
    /// cold_latency (the cold-start tail).
    bool cold = false;
  };

  /// Per-tenant dynamic-batching state (only LS tenants with an enabled
  /// BatchPolicy carry one).
  struct BatchState {
    /// variants[b-1] = the batch-size-b model; built once at tenant
    /// registration so kernel-descriptor pointers stay stable.
    std::vector<models::ModelDesc> variants;
    std::vector<TimeNs> assembly;           // arrivals being assembled
    std::deque<std::vector<TimeNs>> ready;  // closed, awaiting an instance
    size_t ready_requests = 0;              // Σ sizes over `ready`
    size_t admitted_requests = 0;           // requests inside live jobs
    EventId timer = 0;                      // assembly-timeout event
    bool timer_armed = false;
    uint64_t launched_batches = 0;
    uint64_t launched_requests = 0;
    /// Sizes of the most recent launches (sliding occupancy window).
    std::deque<unsigned> recent;
  };
  /// Occupancy window length: long enough to smooth burst-to-burst
  /// noise, short enough that a surge's full batches age out within a
  /// few frames of singleton traffic.
  static constexpr size_t kOccupancyWindow = 16;

  QosClass qos_of(const Job& j) const { return tenants_[j.tenant].qos; }
  const models::ModelDesc& model_of(const Job& j) const {
    return j.model ? *j.model : tenants_[j.tenant].model;
  }
  /// Allocate the job's frontier when its model is a DAG (no-op for
  /// chains). Must run after job.model is final (batch variants).
  void init_frontier(Job& job) const;
  /// Any kernel of the job in flight (chain: the single cursor kernel).
  bool job_inflight_any(const Job& j) const {
    return j.frontier ? !j.frontier->running.empty() : j.in_flight;
  }
  /// The job can accept a launch right now (chain: not in flight; DAG:
  /// the ready set is non-empty).
  bool job_can_launch(const Job& j) const {
    return j.frontier ? !j.frontier->ready.empty() : !j.in_flight;
  }
  /// The job has at least one in-flight kernel not already evicting.
  bool job_evictable(const Job& j) const;
  bool visible(const Job& j) const;
  /// The pre-memory visibility rule (LS always; BE per rotation/churn).
  bool visible_rotation(const Job& j) const;
  /// Memory gate: false while the tenant's weights are cold/loading, or
  /// while this specific job serves out a demand-paging penalty.
  bool memory_ready(const Job& j) const;
  JobView view_of(const Job& j) const;
  Job* job_ptr(JobId id);
  const Job* job_ptr(JobId id) const;

  void init();
  void register_tenant(TenantId t);
  /// Carve (or release + re-carve) the TPC region backing a guarantee.
  void assign_guarantee_region(TenantId t);
  void release_guarantee_region(TenantId t);
  void validate_vgpu_budget() const;
  /// True when `eff_tpcs` trespasses on another active tenant's region.
  bool trespasses(TenantId owner, gpusim::TpcMask eff_tpcs) const;
  /// Compile an explicit Allocation into the canonical LaunchSpec
  /// (device-covering masks → the legacy 0 = "all" encoding, so explicit
  /// Allocation::all() and historic {0,0} behave identically).
  LaunchSpec compile_allocation(const control::Allocation& a) const;
  void arrive(const workload::Request& r);
  void admit(TenantId tenant, TimeNs arrival);
  void admit_or_backlog(TenantId tenant, TimeNs arrival);
  void finish_kernel(JobId id);
  /// DAG completion path: retire `kernel` from the frontier, unlock its
  /// dependents, and finish the job when the whole DAG has run.
  void finish_kernel_dag(JobId id, int kernel);
  /// Shared LS completion tail (erase + record + instance hand-off).
  void complete_ls(std::deque<Job>::iterator it);
  void complete_ls_job(TenantId tenant, TimeNs arrival, bool cold);
  // ---- dynamic batching ----
  void enqueue_for_batch(TenantId t, TimeNs arrival);
  /// Move the assembly queue into a batch job (or the ready queue when no
  /// instance is free); cancels the assembly timer. No-op when empty.
  void close_batch(TenantId t);
  void admit_batch(TenantId t, std::vector<TimeNs> arrivals);
  void complete_ls_batch(TenantId t, const std::vector<TimeNs>& arrivals,
                         bool cold);
  void rotate_be(Job& job);
  void note_inflight(QosClass qos, int delta);
  void poke();
  // ---- memory virtualization ----
  /// GpuSpec::vram_bytes unless the MemoryOptions override is set.
  uint64_t effective_vram() const;
  /// True when tenant t has work in the system (jobs or admitted
  /// requests) — the evictor must not yank weights out from under it.
  bool tenant_busy(TenantId t) const;
  memory::MemoryManager::BusyFn busy_probe();
  /// Start cold-start loads for every tenant whose gated jobs demand
  /// weights; called at the top of each poke so strict-mode waiters are
  /// retried whenever anything completes.
  void ensure_residency();
  void request_weights(TenantId t);
  /// Tag a freshly created job cold/paged and, for paged replicas,
  /// schedule its per-request demand-paging penalty.
  void apply_memory_gates(Job& job);
  void hold_job_for_paging(JobId id, TimeNs penalty);

  ServingConfig cfg_;
  std::vector<TenantSpec> tenants_;
  /// The scheduling brain. Policy& constructors wrap the policy in an
  /// owned LegacyPolicyAdapter so there is exactly one scheduling path.
  control::Controller* controller_ = nullptr;
  std::unique_ptr<control::Controller> owned_adapter_;
  /// Non-null while a legacy policy runs under trace_policy(): launch /
  /// evict / poke_at append their directive here (and still act).
  control::ResourcePlan* trace_ = nullptr;

  std::unique_ptr<EventQueue> owned_queue_;  // null in fleet mode
  EventQueue& queue_;
  /// Asserts the engine's one-thread-per-shard-per-window contract on
  /// every mutating entry point (no-op until armed).
  ShardGuard shard_guard_;
  Rng rng_;
  std::unique_ptr<gpusim::GpuExecutor> exec_;
  /// Null unless memory virtualization is on AND the device's VRAM is
  /// modeled (effective_vram() > 0).
  std::unique_ptr<memory::MemoryManager> mem_;
  /// Jobs serving out a demand-paging penalty (invisible until their
  /// hold event fires).
  std::set<JobId> held_jobs_;
  workload::ServingMetrics metrics_;

  std::deque<Job> jobs_;                 // BE loops first, then LS jobs
  std::vector<TenantId> ls_tenants_;     // trace service index → tenant
  std::vector<TenantId> be_tenants_;     // rotation order (active only)
  size_t be_resident_ = 0;               // round-robin position
  std::vector<unsigned> instances_;      // per tenant pool size (LS only)
  std::vector<unsigned> free_instances_; // per tenant (LS slots only)
  std::vector<std::deque<TimeNs>> backlog_;  // queued arrivals per tenant
  std::vector<std::unique_ptr<BatchState>> batch_;  // null unless batching
  std::vector<char> active_;             // per tenant; 0 after removal
  std::vector<gpusim::TpcMask> guaranteed_mask_;  // per tenant; 0 = none
  gpusim::TpcMask guaranteed_used_ = 0;  // union of carved regions
  double slo_n_ = 1.0;                   // SLO multiplier used at init
  size_t inflight_[2] = {0, 0};          // per QosClass
  TimeNs busy_since_[2] = {0, 0};
  JobId next_job_ = 1;

  bool in_schedule_ = false;
  bool repoke_ = false;
  bool stopped_ = false;
  bool be_paused_ = false;  // front-door overload lever (set_be_paused)
};

/// Fluent setup for a serving simulation, so drivers stop hand-assembling
/// ServingConfig + TenantSpec vectors:
///
///   auto sim = ServingSimBuilder()
///                  .gpu(gpusim::rtx_a2000())
///                  .duration(1 * kNsPerSec)
///                  .add_latency_sensitive(model_a, iso_a)
///                  .add_best_effort(model_i)
///                  .add_best_effort(model_j)
///                  .best_effort_mode(BeMode::kConcurrent)
///                  .build(policy);
class ServingSimBuilder {
 public:
  /// Seed the whole ServingConfig at once (fleet drivers deriving a
  /// per-device config); individual setters still apply on top.
  ServingSimBuilder& config(const ServingConfig& cfg) {
    cfg_ = cfg;
    return *this;
  }
  /// Replace the tenant list wholesale (fleet drivers with a placement-
  /// derived per-device list).
  ServingSimBuilder& tenants(std::vector<TenantSpec> specs) {
    tenants_ = std::move(specs);
    return *this;
  }
  ServingSimBuilder& gpu(const gpusim::GpuSpec& spec) {
    cfg_.spec = spec;
    return *this;
  }
  ServingSimBuilder& executor_params(const gpusim::ExecutorParams& p) {
    cfg_.exec_params = p;
    return *this;
  }
  ServingSimBuilder& duration(TimeNs d) {
    cfg_.duration = d;
    return *this;
  }
  ServingSimBuilder& default_ls_instances(unsigned n) {
    cfg_.ls_instances = n;
    return *this;
  }
  ServingSimBuilder& slo_multiplier(double n) {
    cfg_.slo_multiplier = n;
    return *this;
  }
  ServingSimBuilder& best_effort_mode(BeMode mode) {
    cfg_.be_mode = mode;
    return *this;
  }
  ServingSimBuilder& seed(uint64_t s) {
    cfg_.seed = s;
    return *this;
  }
  /// Turn on GPU memory virtualization (weight residency + cold starts).
  ServingSimBuilder& memory(const memory::MemoryOptions& opt) {
    cfg_.memory = opt;
    return *this;
  }
  ServingSimBuilder& add_tenant(TenantSpec spec) {
    tenants_.push_back(std::move(spec));
    return *this;
  }
  ServingSimBuilder& add_latency_sensitive(models::ModelDesc model,
                                           TimeNs isolated_latency,
                                           unsigned instances = 0) {
    return add_tenant(latency_sensitive_tenant(std::move(model),
                                               isolated_latency, instances));
  }
  ServingSimBuilder& add_best_effort(models::ModelDesc model) {
    return add_tenant(best_effort_tenant(std::move(model)));
  }
  /// Attach a vGPU guarantee to the most recently added tenant:
  ///   builder.add_latency_sensitive(m, iso).quota({.guaranteed_tpcs = 6})
  ServingSimBuilder& quota(control::VgpuSpec vgpu) {
    SGDRC_REQUIRE(!tenants_.empty(), "quota() needs a tenant to attach to");
    tenants_.back().vgpu = vgpu;
    return *this;
  }
  /// Attach a request-batching policy to the most recently added tenant:
  ///   builder.add_latency_sensitive(m, iso)
  ///          .batching(workload::batch_up_to(8, 2 * kNsPerMs))
  ServingSimBuilder& batching(workload::BatchPolicy policy) {
    SGDRC_REQUIRE(!tenants_.empty(),
                  "batching() needs a tenant to attach to");
    tenants_.back().batching = policy;
    return *this;
  }

  /// The sim keeps a reference to the scheduler; both must outlive
  /// run(). (unique_ptr because the sim's executor holds a reference
  /// into the sim-owned event queue — the sim must not move.)
  std::unique_ptr<ServingSim> build(Policy& policy) const {
    return std::make_unique<ServingSim>(cfg_, tenants_, policy);
  }
  std::unique_ptr<ServingSim> build(control::Controller& controller) const {
    return std::make_unique<ServingSim>(cfg_, tenants_, controller);
  }
  /// Fleet mode: the device sim shares `queue` with its siblings and is
  /// driven through begin()/inject()/finish() by the fleet layer.
  std::unique_ptr<ServingSim> build(EventQueue& queue, Policy& policy) const {
    return std::make_unique<ServingSim>(queue, cfg_, tenants_, policy);
  }
  std::unique_ptr<ServingSim> build(EventQueue& queue,
                                    control::Controller& controller) const {
    return std::make_unique<ServingSim>(queue, cfg_, tenants_, controller);
  }

 private:
  ServingConfig cfg_;
  std::vector<TenantSpec> tenants_;
};

}  // namespace sgdrc::core
