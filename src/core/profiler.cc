#include "core/profiler.h"

namespace sgdrc::core {

using gpusim::GpuExecutor;
using gpusim::KernelDesc;

OfflineProfiler::OfflineProfiler(const gpusim::GpuSpec& spec,
                                 gpusim::ExecutorParams exec_params,
                                 ProfilerOptions opt)
    : spec_(spec), params_(exec_params), opt_(opt) {}

unsigned OfflineProfiler::min_tpcs_for(const KernelDesc& k) const {
  EventQueue q;
  GpuExecutor exec(spec_, q, params_);
  const TimeNs best =
      exec.solo_runtime(k, spec_.num_tpcs, spec_.num_channels, false);
  const double limit =
      static_cast<double>(best) * (1.0 + opt_.latency_tolerance);
  unsigned lo = 1, hi = spec_.num_tpcs;
  while (lo < hi) {
    const unsigned mid = (lo + hi) / 2;
    const TimeNs t = exec.solo_runtime(k, mid, spec_.num_channels, false);
    if (static_cast<double>(t) <= limit) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

bool OfflineProfiler::is_memory_bound(const KernelDesc& k) const {
  // Thrasher: a long-running kernel that hammers VRAM from other TPCs —
  // the "repeatedly populate L2 / stream VRAM" interference task of §2.2.
  KernelDesc thrasher;
  thrasher.name = "profiler.thrasher";
  thrasher.flops = 1;
  thrasher.bytes = static_cast<uint64_t>(spec_.vram_gbps * 1e6 * 100);
  thrasher.max_useful_tpcs = static_cast<double>(spec_.num_tpcs);

  const unsigned half = std::max(1u, spec_.num_tpcs / 2);

  EventQueue q;
  GpuExecutor exec(spec_, q, params_);
  const TimeNs solo = exec.solo_runtime(k, half, spec_.num_channels, false);

  TimeNs shared = 0;
  exec.launch({&thrasher, gpusim::tpc_range(half, spec_.num_tpcs - half), 0},
              nullptr);
  exec.launch({&k, gpusim::tpc_range(0, half), 0},
              [&](GpuExecutor::LaunchId, TimeNs t) { shared = t; });
  q.run_until(q.now() + 60 * kNsPerSec);
  SGDRC_CHECK(shared != 0, "victim kernel did not finish under thrasher");

  const double degradation = static_cast<double>(shared - solo) /
                             static_cast<double>(solo);
  return degradation > opt_.memory_bound_threshold;
}

void OfflineProfiler::profile(models::ModelDesc& m) const {
  for (auto& k : m.kernels) {
    k.min_tpcs = min_tpcs_for(k);
    k.memory_bound = is_memory_bound(k);
  }
  // §7.2: memory-bound tensors are those accessed by memory-bound kernels.
  for (auto& t : m.tensors) t.memory_bound = false;
  for (size_t ki = 0; ki < m.kernels.size(); ++ki) {
    if (!m.kernels[ki].memory_bound) continue;
    for (const auto& a : m.kernels[ki].accesses) {
      m.tensors[a.tensor].memory_bound = true;
    }
  }
}

TimeNs OfflineProfiler::isolated_latency(const models::ModelDesc& m) const {
  EventQueue q;
  GpuExecutor exec(spec_, q, params_);
  TimeNs total = 0;
  for (const auto& k : m.kernels) {
    total += exec.solo_runtime(k, spec_.num_tpcs, spec_.num_channels,
                               k.spt_transformed);
  }
  return total;
}

}  // namespace sgdrc::core
