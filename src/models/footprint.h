// VRAM footprint analysis for bimodal tensors (§7.2 / Fig. 16).
//
// Bimodal tensors keep TWO copies of every memory-bound tensor — one
// mapped to all VRAM channels, one to the task's restricted channel set —
// so bandwidth allocation can switch by passing a different pointer.
// Without countermeasures this nearly doubles a model's footprint; SGDRC
// recovers most of it by fully reusing intermediate-result buffers, whose
// requirement is the *peak live* set rather than the sum.
#pragma once

#include <cstdint>

#include "models/model.h"

namespace sgdrc::models {

struct Footprint {
  uint64_t weight_bytes = 0;        // all weights, single copy
  uint64_t mb_weight_bytes = 0;     // memory-bound weights (duplicated)
  uint64_t inter_sum_bytes = 0;     // Σ intermediate tensors
  uint64_t mb_inter_sum_bytes = 0;  // memory-bound intermediates
  uint64_t inter_peak_bytes = 0;    // peak live intermediates (reuse)

  /// Footprint with plain (single-copy) tensors.
  uint64_t original(bool reuse_intermediates) const {
    return weight_bytes +
           (reuse_intermediates ? inter_peak_bytes : inter_sum_bytes);
  }
  /// Footprint with bimodal tensors: memory-bound tensors are duplicated;
  /// with reuse, both copies of the intermediate pool track the peak.
  uint64_t bimodal(bool reuse_intermediates) const {
    const uint64_t inter =
        reuse_intermediates ? 2 * inter_peak_bytes
                            : inter_sum_bytes + mb_inter_sum_bytes;
    return weight_bytes + mb_weight_bytes + inter;
  }
};

/// Live-range analysis over the kernel sequence. Reads each tensor's
/// memory_bound flag (set by the offline profiler, or by hand in tests).
Footprint analyze_footprint(const ModelDesc& m);

}  // namespace sgdrc::models
