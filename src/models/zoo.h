// The Tab. 3 model zoo:
//   LS: MobileNetV3 (A), SqueezeNet (B), ShuffleNet (C), EfficientNet (D),
//       ResNet34 (E), MobileBert (F), MobileViT (G), EfficientFormer (H)
//   BE: ResNet152 (I), DenseNet161 (J), Bert (K)
//
// Each model is synthesised from its published architecture (block
// structure, channel widths, spatial sizes), so FLOP totals, DRAM traffic,
// kernel counts and the compute/memory-bound kernel mix land where the
// real networks do. BE batch sizes follow §9.2: the smallest batch that
// reaches maximum throughput (16 / 8 / 16).
#pragma once

#include <vector>

#include "models/model.h"

namespace sgdrc::models {

ModelDesc mobilenet_v3();     // A
ModelDesc squeezenet();       // B
ModelDesc shufflenet();       // C
ModelDesc efficientnet();     // D
ModelDesc resnet34();         // E
ModelDesc mobilebert();       // F
ModelDesc mobilevit();        // G
ModelDesc efficientformer();  // H
ModelDesc resnet152();        // I (BE)
ModelDesc densenet161();      // J (BE)
ModelDesc bert();             // K (BE)

/// All 11 models, A through K.
std::vector<ModelDesc> standard_zoo();

/// Lookup by Tab. 3 letter; throws on unknown ids.
ModelDesc make_model(char letter);

/// Inception-style wide recipes (not part of Tab. 3): every block fans
/// the same input out to four convolution branches that join in a
/// concat, so dependency-independent kernels exist inside one request.
/// `dag = true` attaches explicit kernel_deps (ModelBuilder::build_dag)
/// and the serving layer co-schedules the branches, Opara-style;
/// `dag = false` returns the identical recipe as a serialized chain —
/// the comparison form bench/dag_parallelism.cc sweeps against.
ModelDesc inception_ls(bool dag);  // latency-sensitive, batch 1
ModelDesc inception_be(bool dag);  // best-effort, batch 8

}  // namespace sgdrc::models
