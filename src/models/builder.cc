#include "models/builder.h"

#include <algorithm>

#include "common/bitops.h"

namespace sgdrc::models {

namespace {
constexpr uint64_t kElem = 4;  // fp32
}

ModelBuilder::ModelBuilder(std::string name, char letter,
                           ServiceClass service, unsigned batch) {
  m_.name = std::move(name);
  m_.letter = letter;
  m_.service = service;
  m_.batch = batch;
}

unsigned ModelBuilder::grid_for(uint64_t out_elems) {
  return static_cast<unsigned>(
      std::max<uint64_t>(1, ceil_div(out_elems, 256 * 4)));
}

int ModelBuilder::add_tensor(std::string name, uint64_t bytes,
                             TensorKind kind, int produced_by) {
  TensorDesc t;
  t.name = std::move(name);
  t.bytes = bytes;
  t.kind = kind;
  t.produced_by = produced_by;
  m_.tensors.push_back(std::move(t));
  return static_cast<int>(m_.tensors.size()) - 1;
}

int ModelBuilder::add_kernel(gpusim::KernelDesc k,
                             const std::vector<int>& reads, int writes) {
  const int kidx = static_cast<int>(m_.kernels.size());
  for (const int t : reads) {
    SGDRC_REQUIRE(t >= 0 && static_cast<size_t>(t) < m_.tensors.size(),
                  "kernel reads unknown tensor");
    m_.tensors[t].consumed_by.push_back(kidx);
  }
  if (writes >= 0) m_.tensors[writes].produced_by = kidx;
  k.preemptible = m_.service == ServiceClass::kBestEffort;
  k.max_useful_tpcs = std::max(1.0, static_cast<double>(k.blocks) / 8.0);
  m_.kernels.push_back(std::move(k));
  return kidx;
}

int ModelBuilder::add_input(uint64_t bytes) {
  return add_tensor("input", bytes * m_.batch, TensorKind::kInput, -1);
}

int ModelBuilder::conv(const std::string& name, int input, unsigned cin,
                       unsigned cout, unsigned kernel, unsigned h,
                       unsigned w, unsigned groups) {
  SGDRC_REQUIRE(cin % groups == 0 && cout % groups == 0,
                "channels must divide groups");
  const uint64_t out_elems =
      static_cast<uint64_t>(m_.batch) * cout * h * w;
  const uint64_t weight_elems = static_cast<uint64_t>(cout) *
                                (cin / groups) * kernel * kernel;
  const uint64_t in_elems = static_cast<uint64_t>(m_.batch) * cin * h * w;
  const int wt = add_tensor(name + ".w", weight_elems * kElem,
                            TensorKind::kWeight, -1);
  const int out = add_tensor(name + ".out", out_elems * kElem,
                             TensorKind::kIntermediate, -1);
  gpusim::KernelDesc k;
  k.name = m_.name + "/" + name;
  k.flops = 2 * out_elems * (cin / groups) * kernel * kernel;
  k.bytes = (in_elems + weight_elems + out_elems) * kElem;
  k.blocks = grid_for(out_elems);
  k.threads_per_block = 256;
  k.base_registers = 64;
  // conv reads input and weight through distinct affine indices; output
  // through a third — all single-use, so they fold (0 extra registers).
  k.accesses = {{input, next_expr_++, false},
                {wt, next_expr_++, false},
                {out, next_expr_++, true}};
  add_kernel(std::move(k), {input, wt}, out);
  return out;
}

int ModelBuilder::matmul(const std::string& name, int input, unsigned m,
                         unsigned k_dim, unsigned n) {
  const uint64_t out_elems = static_cast<uint64_t>(m_.batch) * m * n;
  const uint64_t weight_elems = static_cast<uint64_t>(k_dim) * n;
  const uint64_t in_elems = static_cast<uint64_t>(m_.batch) * m * k_dim;
  const int wt = add_tensor(name + ".w", weight_elems * kElem,
                            TensorKind::kWeight, -1);
  const int out = add_tensor(name + ".out", out_elems * kElem,
                             TensorKind::kIntermediate, -1);
  gpusim::KernelDesc k;
  k.name = m_.name + "/" + name;
  k.flops = 2ull * m_.batch * m * k_dim * n;
  k.bytes = (in_elems + weight_elems + out_elems) * kElem;
  k.blocks = grid_for(out_elems);
  k.threads_per_block = 256;
  k.base_registers = 96;
  k.accesses = {{input, next_expr_++, false},
                {wt, next_expr_++, false},
                {out, next_expr_++, true}};
  add_kernel(std::move(k), {input, wt}, out);
  return out;
}

int ModelBuilder::elementwise(const std::string& name, int a, int b) {
  const uint64_t bytes = std::max(m_.tensors[a].bytes, m_.tensors[b].bytes);
  const int out =
      add_tensor(name + ".out", bytes, TensorKind::kIntermediate, -1);
  gpusim::KernelDesc k;
  k.name = m_.name + "/" + name;
  const uint64_t elems = bytes / kElem;
  k.flops = elems;
  k.bytes = 3 * bytes;  // stream two inputs + one output
  k.blocks = grid_for(elems);
  k.threads_per_block = 256;
  k.base_registers = 24;
  // A[i] + B[i] → C[i]: one SHARED index expression (Fig. 12c) — the
  // transformer materialises one temp for it.
  const int shared = next_expr_++;
  k.accesses = {{a, shared, false}, {b, shared, false}, {out, shared, true}};
  add_kernel(std::move(k), {a, b}, out);
  return out;
}

int ModelBuilder::activation(const std::string& name, int input) {
  const uint64_t bytes = m_.tensors[input].bytes;
  const int out =
      add_tensor(name + ".out", bytes, TensorKind::kIntermediate, -1);
  gpusim::KernelDesc k;
  k.name = m_.name + "/" + name;
  const uint64_t elems = bytes / kElem;
  k.flops = 4 * elems;  // a few ops per element (h-swish/gelu class)
  k.bytes = 2 * bytes;
  k.blocks = grid_for(elems);
  k.threads_per_block = 256;
  k.base_registers = 20;
  const int shared = next_expr_++;  // in[i] → out[i]
  k.accesses = {{input, shared, false}, {out, shared, true}};
  add_kernel(std::move(k), {input}, out);
  return out;
}

int ModelBuilder::pool(const std::string& name, int input, unsigned factor) {
  const uint64_t in_bytes = m_.tensors[input].bytes;
  const uint64_t out_bytes = std::max<uint64_t>(kElem, in_bytes / (factor * factor));
  const int out =
      add_tensor(name + ".out", out_bytes, TensorKind::kIntermediate, -1);
  gpusim::KernelDesc k;
  k.name = m_.name + "/" + name;
  k.flops = in_bytes / kElem;
  k.bytes = in_bytes + out_bytes;
  k.blocks = grid_for(out_bytes / kElem);
  k.threads_per_block = 256;
  k.base_registers = 28;
  k.accesses = {{input, next_expr_++, false}, {out, next_expr_++, true}};
  add_kernel(std::move(k), {input}, out);
  return out;
}

int ModelBuilder::shuffle(const std::string& name, std::vector<int> inputs) {
  SGDRC_REQUIRE(!inputs.empty(), "shuffle needs inputs");
  uint64_t bytes = 0;
  for (const int t : inputs) bytes += m_.tensors[t].bytes;
  const int out =
      add_tensor(name + ".out", bytes, TensorKind::kIntermediate, -1);
  gpusim::KernelDesc k;
  k.name = m_.name + "/" + name;
  k.flops = bytes / kElem;  // index math only
  k.bytes = 2 * bytes;      // pure memory movement: read all + write all
  k.blocks = grid_for(bytes / kElem);
  k.threads_per_block = 256;
  k.base_registers = 32;
  for (const int t : inputs) k.accesses.push_back({t, next_expr_++, false});
  k.accesses.push_back({out, next_expr_++, true});
  add_kernel(std::move(k), inputs, out);
  return out;
}

int ModelBuilder::tiny_op(const std::string& name, int input,
                          uint64_t bytes) {
  const int out =
      add_tensor(name + ".out", bytes, TensorKind::kIntermediate, -1);
  gpusim::KernelDesc k;
  k.name = m_.name + "/" + name;
  k.flops = bytes;  // negligible
  k.bytes = m_.tensors[input].bytes / 64 + 2 * bytes;
  k.blocks = 1;
  k.threads_per_block = 128;
  k.base_registers = 16;
  k.accesses = {{input, next_expr_++, false}, {out, next_expr_++, true}};
  add_kernel(std::move(k), {input}, out);
  return out;
}

ModelDesc ModelBuilder::build() {
  SGDRC_REQUIRE(!m_.kernels.empty(), "model has no kernels");
  // The last produced tensor is the model output.
  for (auto it = m_.tensors.rbegin(); it != m_.tensors.rend(); ++it) {
    if (it->kind == TensorKind::kIntermediate && it->produced_by >= 0) {
      it->kind = TensorKind::kOutput;
      break;
    }
  }
  validate_tensor_graph(m_);
  return std::move(m_);
}

ModelDesc ModelBuilder::build_dag() {
  ModelDesc m = build();
  derive_kernel_deps(m);
  return m;
}

void validate_tensor_graph(const ModelDesc& m) {
  const int n = static_cast<int>(m.kernels.size());
  for (const auto& t : m.tensors) {
    SGDRC_REQUIRE(t.produced_by >= -1 && t.produced_by < n,
                  "tensor '" + t.name + "' produced_by kernel index " +
                      std::to_string(t.produced_by) + " out of range");
    for (const int c : t.consumed_by) {
      SGDRC_REQUIRE(c >= 0 && c < n,
                    "tensor '" + t.name + "' consumed_by kernel index " +
                        std::to_string(c) + " out of range");
    }
  }
}

void derive_kernel_deps(ModelDesc& m) {
  validate_tensor_graph(m);
  std::vector<std::vector<int>> deps(m.kernels.size());
  for (const auto& t : m.tensors) {
    if (t.produced_by < 0) continue;  // external tensor: no producer edge
    for (const int c : t.consumed_by) {
      // Kernels are stored in execution order, so a producer that does
      // not strictly precede its consumer is a cycle (or a self-loop) in
      // the dataflow — the graph cannot be topologically ordered.
      SGDRC_REQUIRE(t.produced_by < c,
                    "cyclic tensor graph: tensor '" + t.name +
                        "' produced by kernel " +
                        std::to_string(t.produced_by) +
                        " is consumed by kernel " + std::to_string(c));
      deps[c].push_back(t.produced_by);
    }
  }
  for (auto& d : deps) {
    std::sort(d.begin(), d.end());
    d.erase(std::unique(d.begin(), d.end()), d.end());
  }
  m.kernel_deps = std::move(deps);
}

}  // namespace sgdrc::models
