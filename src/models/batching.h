// Batch-size scaling of a model's kernel sequence — the latency model
// behind dynamic request batching. Serving B requests as one batch does
// NOT cost B× the GPU time of one request; the sublinearity is derived
// per kernel from the model's own compute/memory footprint:
//
//  * compute work (FLOPs) scales ×B, but the grid grows ×B with it, so
//    the kernel exposes B× the parallelism (max_useful_tpcs) and its
//    latency-optimal TPC width (min_tpcs) widens ~√B — wider masks soak
//    the extra work instead of serialising it;
//  * memory traffic splits by the tensor graph: weight bytes are read
//    once per batch regardless of B (the amortisation that makes
//    batching worthwhile), activation bytes scale ×B;
//  * per-kernel launch overhead is paid once per batch instead of once
//    per request — a large fixed win for the many-small-kernel models of
//    Tab. 3.
//
// batched_variant(m, B) bakes all of that into an ordinary ModelDesc, so
// the executor, the SPT transformer, and every scheduler see a batched
// inference as just another kernel sequence — no special cases anywhere
// downstream.
#pragma once

#include "models/model.h"

namespace sgdrc::models {

/// The batch-B variant of a (possibly SPT-transformed, possibly
/// profiled) model. B = 1 returns an unmodified copy. Profiled kernel
/// metadata (memory_bound, min_tpcs) is scaled, not re-profiled:
/// min_tpcs grows ~√B (capped by the grown grid), memory-boundedness is
/// preserved.
ModelDesc batched_variant(const ModelDesc& m, unsigned batch);

/// Bytes of weight tensors kernel `kernel_idx` reads (the per-batch
/// amortisable part of its traffic), from the model's tensor graph.
uint64_t kernel_weight_bytes(const ModelDesc& m, int kernel_idx);

}  // namespace sgdrc::models
