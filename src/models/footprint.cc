#include "models/footprint.h"

#include <algorithm>
#include <vector>

namespace sgdrc::models {

Footprint analyze_footprint(const ModelDesc& m) {
  Footprint fp;
  const int n_kernels = static_cast<int>(m.kernels.size());

  // Per-kernel-step delta of live intermediate bytes.
  std::vector<int64_t> delta(n_kernels + 1, 0);

  for (const auto& t : m.tensors) {
    switch (t.kind) {
      case TensorKind::kWeight:
        fp.weight_bytes += t.bytes;
        if (t.memory_bound) fp.mb_weight_bytes += t.bytes;
        break;
      case TensorKind::kIntermediate:
      case TensorKind::kOutput: {
        fp.inter_sum_bytes += t.bytes;
        if (t.memory_bound) fp.mb_inter_sum_bytes += t.bytes;
        // Live from production until the last consumer (or production if
        // never consumed — e.g. the final output).
        const int born = std::max(t.produced_by, 0);
        int last = born;
        for (const int k : t.consumed_by) last = std::max(last, k);
        delta[born] += static_cast<int64_t>(t.bytes);
        delta[last + 1] -= static_cast<int64_t>(t.bytes);
        break;
      }
      case TensorKind::kInput:
        break;  // model inputs live outside the arena
    }
  }

  int64_t live = 0;
  for (int k = 0; k <= n_kernels; ++k) {
    live += delta[k];
    fp.inter_peak_bytes = std::max(fp.inter_peak_bytes,
                                   static_cast<uint64_t>(std::max<int64_t>(live, 0)));
  }
  return fp;
}

}  // namespace sgdrc::models
