// ModelBuilder: layer-level recipe helpers that synthesise kernel
// descriptors with realistic FLOP counts, DRAM traffic, grid shapes,
// register pressure and access expressions — the stand-in for the paper's
// TVM/Ansor kernel generation.
//
// Conventions:
//  * fp32 tensors (4 bytes/element);
//  * a kernel's DRAM traffic = tensors it streams (weights + activations),
//    ignoring cache reuse of the in-tile working set (roofline style);
//  * grid = output elements / (256 threads × 4 items), capped parallelism
//    max_useful_tpcs = blocks / 8.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "models/model.h"

namespace sgdrc::models {

class ModelBuilder {
 public:
  ModelBuilder(std::string name, char letter, ServiceClass service,
               unsigned batch);

  /// External input tensor (activations enter here). Returns tensor id.
  int add_input(uint64_t bytes);

  /// Convolution: consumes `input` tensor, creates weight + output.
  /// Returns output tensor id. groups>1 models grouped/depthwise convs.
  int conv(const std::string& name, int input, unsigned cin, unsigned cout,
           unsigned kernel, unsigned h, unsigned w, unsigned groups = 1);

  /// GEMM (attention / FFN): [m×k] · [k×n]; weight resident.
  int matmul(const std::string& name, int input, unsigned m, unsigned k,
             unsigned n);

  /// Elementwise binary op (residual add etc.): A[i] ⊕ B[i] → C[i].
  /// The shared index expression is what costs the transformer a register
  /// (Fig. 12c's vectorAdd shape).
  int elementwise(const std::string& name, int a, int b);

  /// Elementwise unary op (activation / batchnorm folded).
  int activation(const std::string& name, int input);

  /// Reduction / pooling: shrinks spatial size by `factor`.
  int pool(const std::string& name, int input, unsigned factor);

  /// Channel shuffle / concat: gather with distinct index expressions,
  /// pure memory movement.
  int shuffle(const std::string& name, std::vector<int> inputs);

  /// Tiny squeeze-excite style op: negligible runtime, exercises the
  /// §9.1.2 small-kernel register outliers.
  int tiny_op(const std::string& name, int input, uint64_t bytes);

  /// Mark the most recent tensor as the model output and finalise.
  /// Leaves kernel_deps empty: the model executes as a strict chain,
  /// bit-identical to the pre-DAG simulator (the existing zoo recipes
  /// all build this way).
  ModelDesc build();

  /// Finalise like build(), then derive explicit per-kernel dependency
  /// edges from the tensor graph (kernel i depends on the producers of
  /// every tensor it reads), validated acyclic and topologically
  /// ordered. The result schedules dependency-independent kernels
  /// concurrently (Opara-style intra-request parallelism); a recipe
  /// with no branches still yields a DAG equivalent to its chain.
  ModelDesc build_dag();

  const ModelDesc& peek() const { return m_; }

 private:
  int add_tensor(std::string name, uint64_t bytes, TensorKind kind,
                 int produced_by);
  int add_kernel(gpusim::KernelDesc k, const std::vector<int>& reads,
                 int writes);
  static unsigned grid_for(uint64_t out_elems);

  ModelDesc m_;
  int next_expr_ = 0;
};

/// Build-time validation of the tensor graph: every
/// TensorDesc::produced_by / consumed_by kernel index must be in range.
/// (Before this existed, an out-of-range index only surfaced at
/// ModelDesc::tensor() access deep inside a run.) Throws ConfigError.
void validate_tensor_graph(const ModelDesc& m);

/// Derive ModelDesc::kernel_deps from the tensor graph: kernel i
/// depends on the producer of every tensor it consumes. Validates the
/// graph first, dedups and sorts each dependency list ascending, and
/// rejects cyclic tensor graphs (an edge whose producer does not
/// strictly precede its consumer in kernel order) with a ConfigError
/// naming the offending tensor. Chains stay chains: a branch-free
/// recipe yields deps {i-1} for every kernel i.
void derive_kernel_deps(ModelDesc& m);

}  // namespace sgdrc::models
