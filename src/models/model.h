// Model descriptors: a DNN is an ordered kernel sequence plus the tensors
// those kernels read and write — the same view SGDRC gets from its TVM
// pipeline (§4's offline phase). Tab. 3's 11 models are built from
// per-architecture recipes in zoo.h.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.h"
#include "gpusim/kernel.h"

namespace sgdrc::models {

enum class ServiceClass { kLatencySensitive, kBestEffort };

enum class TensorKind { kInput, kWeight, kIntermediate, kOutput };

struct TensorDesc {
  std::string name;
  uint64_t bytes = 0;
  TensorKind kind = TensorKind::kIntermediate;
  int produced_by = -1;         // kernel index that writes it (-1: external)
  std::vector<int> consumed_by; // kernel indices that read it
  /// Set by offline profiling (§7.2): accessed by a memory-bound kernel,
  /// therefore subject to channel coloring and bimodal duplication.
  bool memory_bound = false;
};

struct ModelDesc {
  std::string name;
  char letter = '?';  // Tab. 3 id: A..H LS, I..K BE
  ServiceClass service = ServiceClass::kLatencySensitive;
  unsigned batch = 1;
  std::vector<gpusim::KernelDesc> kernels;  // execution order
  std::vector<TensorDesc> tensors;

  bool is_ls() const { return service == ServiceClass::kLatencySensitive; }

  uint64_t total_flops() const {
    uint64_t f = 0;
    for (const auto& k : kernels) f += k.flops;
    return f;
  }
  uint64_t total_bytes() const {
    uint64_t b = 0;
    for (const auto& k : kernels) b += k.bytes;
    return b;
  }
  uint64_t weight_bytes() const {
    uint64_t b = 0;
    for (const auto& t : tensors) {
      if (t.kind == TensorKind::kWeight) b += t.bytes;
    }
    return b;
  }
  uint64_t intermediate_bytes() const {
    uint64_t b = 0;
    for (const auto& t : tensors) {
      if (t.kind == TensorKind::kIntermediate) b += t.bytes;
    }
    return b;
  }

  const TensorDesc& tensor(int idx) const {
    SGDRC_REQUIRE(idx >= 0 && static_cast<size_t>(idx) < tensors.size(),
                  "tensor index out of range");
    return tensors[idx];
  }
};

}  // namespace sgdrc::models
