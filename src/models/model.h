// Model descriptors: a DNN is a kernel DAG — kernels in topological
// order plus the tensors they read and write, with optional explicit
// per-kernel dependency edges (kernel_deps) derived from the tensor
// graph — the same view SGDRC gets from its TVM pipeline (§4's offline
// phase). When kernel_deps is empty the model is a pure chain and
// every consumer executes it exactly as the historical ordered kernel
// sequence; ModelBuilder::build_dag() opts a recipe into operator-level
// parallelism (docs/models.md). Tab. 3's 11 models are built from
// per-architecture recipes in zoo.h.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.h"
#include "gpusim/kernel.h"

namespace sgdrc::models {

enum class ServiceClass { kLatencySensitive, kBestEffort };

enum class TensorKind { kInput, kWeight, kIntermediate, kOutput };

struct TensorDesc {
  std::string name;
  uint64_t bytes = 0;
  TensorKind kind = TensorKind::kIntermediate;
  int produced_by = -1;         // kernel index that writes it (-1: external)
  std::vector<int> consumed_by; // kernel indices that read it
  /// Set by offline profiling (§7.2): accessed by a memory-bound kernel,
  /// therefore subject to channel coloring and bimodal duplication.
  bool memory_bound = false;
};

struct ModelDesc {
  std::string name;
  char letter = '?';  // Tab. 3 id: A..H LS, I..K BE
  ServiceClass service = ServiceClass::kLatencySensitive;
  unsigned batch = 1;
  std::vector<gpusim::KernelDesc> kernels;  // topological order
  std::vector<TensorDesc> tensors;
  /// Explicit dependency edges: kernel_deps[i] lists the kernel indices
  /// kernel i waits on, each strictly less than i (topological order is
  /// the validated invariant, see ModelBuilder::build_dag()). Empty ⇒
  /// pure chain: kernel i implicitly depends on kernel i-1 and the
  /// serving layer takes the exact single-cursor path it always has.
  std::vector<std::vector<int>> kernel_deps;

  bool is_ls() const { return service == ServiceClass::kLatencySensitive; }

  /// True when the model executes as a strict sequential chain (no
  /// explicit DAG edges); such models are scheduled bit-identically to
  /// the pre-DAG simulator.
  bool is_chain() const { return kernel_deps.empty(); }

  uint64_t total_flops() const {
    uint64_t f = 0;
    for (const auto& k : kernels) f += k.flops;
    return f;
  }
  uint64_t total_bytes() const {
    uint64_t b = 0;
    for (const auto& k : kernels) b += k.bytes;
    return b;
  }
  uint64_t weight_bytes() const {
    uint64_t b = 0;
    for (const auto& t : tensors) {
      if (t.kind == TensorKind::kWeight) b += t.bytes;
    }
    return b;
  }
  uint64_t intermediate_bytes() const {
    uint64_t b = 0;
    for (const auto& t : tensors) {
      if (t.kind == TensorKind::kIntermediate) b += t.bytes;
    }
    return b;
  }

  const TensorDesc& tensor(int idx) const {
    SGDRC_REQUIRE(idx >= 0 && static_cast<size_t>(idx) < tensors.size(),
                  "tensor index out of range");
    return tensors[idx];
  }
};

}  // namespace sgdrc::models
