#include "models/zoo.h"

#include "common/error.h"
#include "models/builder.h"

namespace sgdrc::models {

namespace {

constexpr uint64_t kImage224 = 224ull * 224 * 3 * 4;

/// Inverted-residual (MBConv) block shared by MobileNet/EfficientNet.
/// Returns the block's output tensor.
int mbconv(ModelBuilder& b, const std::string& tag, int x, unsigned cin,
           unsigned cexp, unsigned cout, unsigned k, unsigned h, unsigned w,
           bool stride2, bool se) {
  const int in = x;
  if (cexp != cin) {
    x = b.conv(tag + ".expand", x, cin, cexp, 1, h, w);
    x = b.activation(tag + ".act0", x);
  }
  const unsigned oh = stride2 ? h / 2 : h;
  const unsigned ow = stride2 ? w / 2 : w;
  x = b.conv(tag + ".dw", x, cexp, cexp, k, oh, ow, /*groups=*/cexp);
  x = b.activation(tag + ".act1", x);
  if (se) {
    const int s = b.tiny_op(tag + ".se", x, cexp * 4);
    x = b.elementwise(tag + ".scale", x, s);
  }
  x = b.conv(tag + ".project", x, cexp, cout, 1, oh, ow);
  if (!stride2 && cin == cout) {
    x = b.elementwise(tag + ".residual", x, in);
  }
  return x;
}

/// Transformer encoder layer (hidden d, FFN f, sequence s).
int encoder_layer(ModelBuilder& b, const std::string& tag, int x,
                  unsigned s, unsigned d, unsigned f) {
  const int in = x;
  int q = b.matmul(tag + ".qkv", x, s, d, 3 * d);
  q = b.matmul(tag + ".attn", q, s, d, s);  // scores + weighted sum proxy
  q = b.matmul(tag + ".proj", q, s, d, d);
  int y = b.elementwise(tag + ".add0", q, in);
  const int mid = b.matmul(tag + ".ffn0", y, s, d, f);
  int z = b.activation(tag + ".gelu", mid);
  z = b.matmul(tag + ".ffn1", z, s, f, d);
  return b.elementwise(tag + ".add1", z, y);
}

}  // namespace

ModelDesc mobilenet_v3() {
  ModelBuilder b("MobileNetV3", 'A', ServiceClass::kLatencySensitive, 1);
  int x = b.add_input(kImage224);
  x = b.conv("stem", x, 3, 16, 3, 112, 112);
  x = b.activation("stem.act", x);
  struct Cfg { unsigned cin, cexp, cout, k, h; bool s2, se; };
  // MobileNetV3-Large block table (input spatial size before the block).
  const Cfg cfg[] = {
      {16, 16, 16, 3, 112, false, false}, {16, 64, 24, 3, 112, true, false},
      {24, 72, 24, 3, 56, false, false},  {24, 72, 40, 5, 56, true, true},
      {40, 120, 40, 5, 28, false, true},  {40, 120, 40, 5, 28, false, true},
      {40, 240, 80, 3, 28, true, false},  {80, 200, 80, 3, 14, false, false},
      {80, 184, 80, 3, 14, false, false}, {80, 184, 80, 3, 14, false, false},
      {80, 480, 112, 3, 14, false, true}, {112, 672, 112, 3, 14, false, true},
      {112, 672, 160, 5, 14, true, true}, {160, 960, 160, 5, 7, false, true},
      {160, 960, 160, 5, 7, false, true},
  };
  int i = 0;
  for (const auto& c : cfg) {
    x = mbconv(b, "b" + std::to_string(i++), x, c.cin, c.cexp, c.cout, c.k,
               c.h, c.h, c.s2, c.se);
  }
  x = b.conv("head", x, 160, 960, 1, 7, 7);
  x = b.pool("gap", x, 7);
  x = b.matmul("fc", x, 1, 960, 1000);
  return b.build();
}

ModelDesc squeezenet() {
  ModelBuilder b("SqueezeNet", 'B', ServiceClass::kLatencySensitive, 1);
  int x = b.add_input(kImage224);
  x = b.conv("stem", x, 3, 96, 7, 111, 111);
  x = b.pool("pool0", x, 2);
  struct Fire { unsigned cin, sq, ex, h; };
  const Fire fires[] = {{96, 16, 64, 55},  {128, 16, 64, 55},
                        {128, 32, 128, 55}, {256, 32, 128, 27},
                        {256, 48, 192, 27}, {384, 48, 192, 27},
                        {384, 64, 256, 27}, {512, 64, 256, 13}};
  int i = 0;
  for (const auto& f : fires) {
    const std::string tag = "fire" + std::to_string(i++);
    const int s = b.conv(tag + ".squeeze", x, f.cin, f.sq, 1, f.h, f.h);
    const int e1 = b.conv(tag + ".e1", s, f.sq, f.ex, 1, f.h, f.h);
    const int e3 = b.conv(tag + ".e3", s, f.sq, f.ex, 3, f.h, f.h);
    x = b.shuffle(tag + ".concat", {e1, e3});
    if (i == 3 || i == 7) x = b.pool(tag + ".pool", x, 2);
  }
  x = b.conv("conv10", x, 512, 1000, 1, 13, 13);
  x = b.pool("gap", x, 13);
  return b.build();
}

ModelDesc shufflenet() {
  ModelBuilder b("ShuffleNet", 'C', ServiceClass::kLatencySensitive, 1);
  int x = b.add_input(kImage224);
  x = b.conv("stem", x, 3, 24, 3, 112, 112);
  x = b.pool("pool0", x, 2);
  struct Stage { unsigned cin, cout, repeat, h; };
  const Stage stages[] = {{24, 116, 4, 28}, {116, 232, 8, 14},
                          {232, 464, 4, 7}};
  int si = 0;
  for (const auto& s : stages) {
    for (unsigned r = 0; r < s.repeat; ++r) {
      const std::string tag =
          "s" + std::to_string(si) + ".b" + std::to_string(r);
      const unsigned c = r == 0 ? s.cin : s.cout;
      const unsigned half = s.cout / 2;
      int y = b.conv(tag + ".pw0", x, c, half, 1, s.h, s.h);
      y = b.conv(tag + ".dw", y, half, half, 3, s.h, s.h, half);
      y = b.conv(tag + ".pw1", y, half, half, 1, s.h, s.h);
      x = b.shuffle(tag + ".shuffle", {y, x});
    }
    ++si;
  }
  x = b.conv("head", x, 464, 1024, 1, 7, 7);
  x = b.pool("gap", x, 7);
  x = b.matmul("fc", x, 1, 1024, 1000);
  return b.build();
}

ModelDesc efficientnet() {
  ModelBuilder b("EfficientNet", 'D', ServiceClass::kLatencySensitive, 1);
  int x = b.add_input(kImage224);
  x = b.conv("stem", x, 3, 32, 3, 112, 112);
  x = b.activation("stem.act", x);
  struct Cfg { unsigned cin, cout, k, h, repeat, expand; bool s2; };
  // EfficientNet-B0 stages.
  const Cfg cfg[] = {{32, 16, 3, 112, 1, 1, false},
                     {16, 24, 3, 112, 2, 6, true},
                     {24, 40, 5, 56, 2, 6, true},
                     {40, 80, 3, 28, 3, 6, true},
                     {80, 112, 5, 14, 3, 6, false},
                     {112, 192, 5, 14, 4, 6, true},
                     {192, 320, 3, 7, 1, 6, false}};
  int i = 0;
  for (const auto& c : cfg) {
    for (unsigned r = 0; r < c.repeat; ++r) {
      const unsigned cin = r == 0 ? c.cin : c.cout;
      const bool s2 = c.s2 && r == 0;
      const unsigned h = s2 || r > 0 ? (c.s2 ? c.h / 2 : c.h) : c.h;
      x = mbconv(b, "mb" + std::to_string(i++), x, cin, cin * c.expand,
                 c.cout, c.k, s2 ? c.h : h, s2 ? c.h : h, s2, true);
    }
  }
  x = b.conv("head", x, 320, 1280, 1, 7, 7);
  x = b.pool("gap", x, 7);
  x = b.matmul("fc", x, 1, 1280, 1000);
  return b.build();
}

ModelDesc resnet34() {
  ModelBuilder b("ResNet34", 'E', ServiceClass::kLatencySensitive, 1);
  int x = b.add_input(kImage224);
  x = b.conv("stem", x, 3, 64, 7, 112, 112);
  x = b.pool("pool0", x, 2);
  struct Stage { unsigned ch, blocks, h; };
  const Stage stages[] = {{64, 3, 56}, {128, 4, 28}, {256, 6, 14},
                          {512, 3, 7}};
  unsigned cin = 64;
  int si = 0;
  for (const auto& s : stages) {
    for (unsigned r = 0; r < s.blocks; ++r) {
      const std::string tag =
          "s" + std::to_string(si) + ".b" + std::to_string(r);
      const int in = x;
      x = b.conv(tag + ".conv0", x, r == 0 ? cin : s.ch, s.ch, 3, s.h, s.h);
      x = b.activation(tag + ".act0", x);
      x = b.conv(tag + ".conv1", x, s.ch, s.ch, 3, s.h, s.h);
      if (r > 0) x = b.elementwise(tag + ".add", x, in);
      x = b.activation(tag + ".act1", x);
    }
    cin = s.ch;
    ++si;
  }
  x = b.pool("gap", x, 7);
  x = b.matmul("fc", x, 1, 512, 1000);
  return b.build();
}

ModelDesc mobilebert() {
  ModelBuilder b("MobileBert", 'F', ServiceClass::kLatencySensitive, 1);
  int x = b.add_input(128ull * 128 * 4);  // seq 128, bottleneck 128
  for (int l = 0; l < 24; ++l) {
    x = encoder_layer(b, "l" + std::to_string(l), x, 128, 128, 512);
  }
  x = b.matmul("pooler", x, 1, 128, 128);
  return b.build();
}

ModelDesc mobilevit() {
  ModelBuilder b("MobileViT", 'G', ServiceClass::kLatencySensitive, 1);
  int x = b.add_input(kImage224);
  x = b.conv("stem", x, 3, 16, 3, 112, 112);
  x = mbconv(b, "mv0", x, 16, 64, 32, 3, 112, 112, true, false);
  x = mbconv(b, "mv1", x, 32, 128, 64, 3, 56, 56, true, false);
  for (int l = 0; l < 2; ++l) {
    x = encoder_layer(b, "t0." + std::to_string(l), x, 784, 144, 288);
  }
  x = mbconv(b, "mv2", x, 64, 256, 96, 3, 28, 28, true, false);
  for (int l = 0; l < 4; ++l) {
    x = encoder_layer(b, "t1." + std::to_string(l), x, 196, 192, 384);
  }
  x = mbconv(b, "mv3", x, 96, 384, 128, 3, 14, 14, true, false);
  for (int l = 0; l < 3; ++l) {
    x = encoder_layer(b, "t2." + std::to_string(l), x, 49, 240, 480);
  }
  x = b.conv("head", x, 128, 640, 1, 7, 7);
  x = b.pool("gap", x, 7);
  x = b.matmul("fc", x, 1, 640, 1000);
  return b.build();
}

ModelDesc efficientformer() {
  ModelBuilder b("EfficientFormer", 'H', ServiceClass::kLatencySensitive, 1);
  int x = b.add_input(kImage224);
  x = b.conv("stem0", x, 3, 24, 3, 112, 112);
  x = b.conv("stem1", x, 24, 48, 3, 56, 56);
  struct Stage { unsigned ch, blocks, h; };
  const Stage stages[] = {{48, 3, 56}, {96, 2, 28}, {224, 6, 14}};
  unsigned cin = 48;
  int si = 0;
  for (const auto& s : stages) {
    if (si > 0) x = b.conv("down" + std::to_string(si), x, cin, s.ch, 3,
                           s.h, s.h);
    for (unsigned r = 0; r < s.blocks; ++r) {
      const std::string tag =
          "s" + std::to_string(si) + ".b" + std::to_string(r);
      const int in = x;
      x = b.pool(tag + ".mix", x, 1);  // token mixing (pooling former)
      x = b.elementwise(tag + ".add0", x, in);
      x = b.conv(tag + ".mlp0", x, s.ch, s.ch * 4, 1, s.h, s.h);
      x = b.activation(tag + ".act", x);
      x = b.conv(tag + ".mlp1", x, s.ch * 4, s.ch, 1, s.h, s.h);
      x = b.elementwise(tag + ".add1", x, in);
    }
    cin = s.ch;
    ++si;
  }
  for (int l = 0; l < 4; ++l) {
    x = encoder_layer(b, "attn." + std::to_string(l), x, 49, 448, 896);
  }
  x = b.pool("gap", x, 7);
  x = b.matmul("fc", x, 1, 448, 1000);
  return b.build();
}

ModelDesc resnet152() {
  ModelBuilder b("ResNet152", 'I', ServiceClass::kBestEffort, 16);
  int x = b.add_input(kImage224);
  x = b.conv("stem", x, 3, 64, 7, 112, 112);
  x = b.pool("pool0", x, 2);
  struct Stage { unsigned ch, blocks, h; };
  const Stage stages[] = {{64, 3, 56}, {128, 8, 28}, {256, 36, 14},
                          {512, 3, 7}};
  unsigned cin = 64;
  int si = 0;
  for (const auto& s : stages) {
    for (unsigned r = 0; r < s.blocks; ++r) {
      const std::string tag =
          "s" + std::to_string(si) + ".b" + std::to_string(r);
      const int in = x;
      x = b.conv(tag + ".c0", x, r == 0 ? cin * (si ? 4 : 1) : s.ch * 4,
                 s.ch, 1, s.h, s.h);
      x = b.conv(tag + ".c1", x, s.ch, s.ch, 3, s.h, s.h);
      x = b.conv(tag + ".c2", x, s.ch, s.ch * 4, 1, s.h, s.h);
      if (r > 0) x = b.elementwise(tag + ".add", x, in);
      x = b.activation(tag + ".act", x);
    }
    cin = s.ch;
    ++si;
  }
  x = b.pool("gap", x, 7);
  x = b.matmul("fc", x, 1, 2048, 1000);
  return b.build();
}

ModelDesc densenet161() {
  ModelBuilder b("DenseNet161", 'J', ServiceClass::kBestEffort, 8);
  int x = b.add_input(kImage224);
  x = b.conv("stem", x, 3, 96, 7, 112, 112);
  x = b.pool("pool0", x, 2);
  const unsigned growth = 48;
  const unsigned layers[] = {6, 12, 36, 24};
  unsigned ch = 96, h = 56;
  for (int stage = 0; stage < 4; ++stage) {
    for (unsigned l = 0; l < layers[stage]; ++l) {
      const std::string tag =
          "d" + std::to_string(stage) + ".l" + std::to_string(l);
      // Bottleneck: 1×1 to 4×growth, 3×3 to growth, dense concat — the
      // concats are what make DenseNet memory-hungry.
      int y = b.conv(tag + ".c0", x, ch, 4 * growth, 1, h, h);
      y = b.conv(tag + ".c1", y, 4 * growth, growth, 3, h, h);
      x = b.shuffle(tag + ".concat", {x, y});
      ch += growth;
    }
    if (stage < 3) {
      x = b.conv("t" + std::to_string(stage), x, ch, ch / 2, 1, h, h);
      x = b.pool("tp" + std::to_string(stage), x, 2);
      ch /= 2;
      h /= 2;
    }
  }
  x = b.pool("gap", x, 7);
  x = b.matmul("fc", x, 1, 2208, 1000);
  return b.build();
}

ModelDesc bert() {
  ModelBuilder b("Bert", 'K', ServiceClass::kBestEffort, 16);
  int x = b.add_input(128ull * 768 * 4);  // seq 128, hidden 768
  for (int l = 0; l < 12; ++l) {
    x = encoder_layer(b, "l" + std::to_string(l), x, 128, 768, 3072);
  }
  x = b.matmul("pooler", x, 1, 768, 768);
  return b.build();
}

std::vector<ModelDesc> standard_zoo() {
  return {mobilenet_v3(), squeezenet(),     shufflenet(), efficientnet(),
          resnet34(),     mobilebert(),     mobilevit(),  efficientformer(),
          resnet152(),    densenet161(),    bert()};
}

namespace {

/// GoogLeNet-style inception block: four branches off the same input —
/// 1×1, 1×1→3×3, 1×1→5×5, pool→1×1 — joined by a concat. The branches
/// share no tensors, so under build_dag() they are dependency-free and
/// co-schedulable; under build() they serialize in emission order.
int inception_block(ModelBuilder& b, const std::string& tag, int x,
                    unsigned cin, unsigned c1, unsigned c3r, unsigned c3,
                    unsigned c5r, unsigned c5, unsigned cp, unsigned h) {
  const int b1 = b.conv(tag + ".b1", x, cin, c1, 1, h, h);
  int b3 = b.conv(tag + ".b3r", x, cin, c3r, 1, h, h);
  b3 = b.conv(tag + ".b3", b3, c3r, c3, 3, h, h);
  int b5 = b.conv(tag + ".b5r", x, cin, c5r, 1, h, h);
  b5 = b.conv(tag + ".b5", b5, c5r, c5, 5, h, h);
  int bp = b.pool(tag + ".bp.pool", x, 1);
  bp = b.conv(tag + ".bp", bp, cin, cp, 1, h, h);
  return b.shuffle(tag + ".concat", {b1, b3, b5, bp});
}

ModelDesc inception(const std::string& name, char letter,
                    ServiceClass service, unsigned batch, bool dag) {
  ModelBuilder b(name, letter, service, batch);
  int x = b.add_input(kImage224);
  x = b.conv("stem", x, 3, 64, 7, 56, 56);
  x = b.pool("pool0", x, 2);
  // Two stages of two blocks (GoogLeNet's 3a/3b and 4a/4b shapes).
  x = inception_block(b, "3a", x, 64, 32, 48, 64, 8, 16, 16, 28);
  x = inception_block(b, "3b", x, 128, 64, 64, 96, 16, 48, 32, 28);
  x = b.pool("pool1", x, 2);
  x = inception_block(b, "4a", x, 240, 96, 48, 104, 8, 24, 32, 14);
  x = inception_block(b, "4b", x, 256, 80, 56, 112, 12, 32, 32, 14);
  x = b.pool("gap", x, 14);
  x = b.matmul("fc", x, 1, 256, 1000);
  return dag ? b.build_dag() : b.build();
}

}  // namespace

ModelDesc inception_ls(bool dag) {
  return inception("InceptionLS", 'W', ServiceClass::kLatencySensitive, 1,
                   dag);
}

ModelDesc inception_be(bool dag) {
  return inception("InceptionBE", 'X', ServiceClass::kBestEffort, 8, dag);
}

ModelDesc make_model(char letter) {
  switch (letter) {
    case 'A': return mobilenet_v3();
    case 'B': return squeezenet();
    case 'C': return shufflenet();
    case 'D': return efficientnet();
    case 'E': return resnet34();
    case 'F': return mobilebert();
    case 'G': return mobilevit();
    case 'H': return efficientformer();
    case 'I': return resnet152();
    case 'J': return densenet161();
    case 'K': return bert();
    default:
      throw ConfigError("unknown Tab. 3 model id: " + std::string(1, letter));
  }
}

}  // namespace sgdrc::models
