#include "models/batching.h"

#include <algorithm>
#include <cmath>

namespace sgdrc::models {

uint64_t kernel_weight_bytes(const ModelDesc& m, int kernel_idx) {
  uint64_t bytes = 0;
  for (const auto& t : m.tensors) {
    if (t.kind != TensorKind::kWeight) continue;
    for (const int k : t.consumed_by) {
      if (k == kernel_idx) {
        bytes += t.bytes;
        break;
      }
    }
  }
  return bytes;
}

ModelDesc batched_variant(const ModelDesc& m, unsigned batch) {
  SGDRC_REQUIRE(batch >= 1, "batch size must be at least 1");
  // Whole-struct copy: kernel_deps comes along verbatim, so a DAG model's
  // batch variants keep the operator graph (batching scales each kernel's
  // work; it never reorders or merges kernels, so the edges stay valid).
  ModelDesc out = m;
  if (batch == 1) return out;
  const auto b = static_cast<uint64_t>(batch);
  const double width_scale = std::sqrt(static_cast<double>(batch));

  for (size_t i = 0; i < out.kernels.size(); ++i) {
    auto& k = out.kernels[i];
    // Weight traffic is read once per batch; everything else is
    // activation-shaped and scales with B. (Clamp: synthesized kernel
    // byte counts and the tensor graph are built independently.)
    const uint64_t weights =
        std::min(kernel_weight_bytes(out, static_cast<int>(i)), k.bytes);
    k.flops *= b;
    k.bytes = weights + (k.bytes - weights) * b;
    k.blocks = static_cast<unsigned>(
        std::min<uint64_t>(k.blocks * b, 1u << 24));
    k.max_useful_tpcs =
        std::min(k.max_useful_tpcs * static_cast<double>(batch), 1e9);
    if (k.min_tpcs > 0) {
      // The latency-optimal width grows ~√B: compute work is ×B but a
      // √B-wider mask keeps per-request time falling ~1/√B. Capped by
      // the grid (a kernel cannot use more TPCs than it has blocks for).
      const double widened =
          std::ceil(static_cast<double>(k.min_tpcs) * width_scale);
      k.min_tpcs = static_cast<unsigned>(
          std::min({widened, k.max_useful_tpcs, 64.0}));
    }
  }
  // Activation tensors carry B samples; weights stay single-copy. Keeps
  // footprint analysis (bimodal duplication, §7.2) honest for batches.
  for (auto& t : out.tensors) {
    if (t.kind != TensorKind::kWeight) t.bytes *= b;
  }
  out.batch = m.batch * batch;
  return out;
}

}  // namespace sgdrc::models
