// libsmctrl-style compute partitioning (§7.1): SGDRC "leverages NVIDIA's
// little-known official interface" — the Task Meta Data (TMD) word that
// restricts which TPCs a launched kernel's blocks may be scheduled onto.
//
// The executor honours the mask attached to each launch; this wrapper is
// the driver-facing surface that validates and composes masks, and keeps
// the global-default / per-launch precedence that libsmctrl exposes.
#pragma once

#include "common/error.h"
#include "gpusim/gpu_spec.h"
#include "gpusim/resources.h"

namespace sgdrc::driver {

using gpusim::full_tpc_mask;
using gpusim::tpc_bit;
using gpusim::tpc_count;
using gpusim::tpc_range;
using gpusim::TpcMask;

class SmCtrl {
 public:
  explicit SmCtrl(const gpusim::GpuSpec& spec)
      : num_tpcs_(spec.num_tpcs), global_(full_tpc_mask(spec.num_tpcs)) {}

  unsigned num_tpcs() const { return num_tpcs_; }
  TpcMask full() const { return full_tpc_mask(num_tpcs_); }

  /// Validate a mask against this GPU (non-empty, within range).
  TpcMask validate(TpcMask mask) const {
    SGDRC_REQUIRE(mask != 0, "empty TPC mask would starve the kernel");
    SGDRC_REQUIRE((mask & ~full()) == 0, "mask references missing TPCs");
    return mask;
  }

  /// libsmctrl's global default mask (applies when a launch passes 0).
  void set_global_mask(TpcMask mask) { global_ = validate(mask); }
  TpcMask global_mask() const { return global_; }

  /// Effective mask for a launch: per-launch overrides global.
  TpcMask effective(TpcMask per_launch) const {
    return per_launch == 0 ? global_ : validate(per_launch);
  }

  /// Convenience: the `count` TPCs with the highest indices — SGDRC grows
  /// the LS partition from one end and the BE partition from the other
  /// (tidal masking, Fig. 13).
  TpcMask top(unsigned count) const {
    SGDRC_REQUIRE(count <= num_tpcs_, "more TPCs than the GPU has");
    return tpc_range(num_tpcs_ - count, count);
  }
  TpcMask bottom(unsigned count) const {
    SGDRC_REQUIRE(count <= num_tpcs_, "more TPCs than the GPU has");
    return tpc_range(0, count);
  }

 private:
  unsigned num_tpcs_;
  TpcMask global_;
};

}  // namespace sgdrc::driver
