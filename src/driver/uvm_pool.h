// The nvidia-uvm slice SGDRC patches (§6, Fig. 12a): a reserved physical
// memory pool whose 4 KiB frames are cut into n-KiB *sectors*, each sector
// classified by *color* — the set of VRAM channels its partitions map to,
// as given by the reverse-engineered lookup table. Free sectors hang off
// per-(color, sector-id) chunk lists; colored allocations bind VA pages to
// frames through the shadow page table so a transformed kernel touching
// only sector `s` of every page stays inside its colors.
//
// Layout recap for a 2 KiB granularity: every 4 KiB frame holds sectors
// {0, 1}; a colored buffer of L logical bytes consumes L/n chunks, all with
// the same sector id, and 2× L of virtual address space (the transformed
// index stride — Fig. 12b/c).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/error.h"
#include "gpusim/device.h"
#include "gpusim/resources.h"

namespace sgdrc::driver {

// The sector "color" is the set of VRAM channels its 1 KiB partitions map
// to; channel-set types live with the other low-level resource types.
using gpusim::all_channels;
using gpusim::channel_bit;
using gpusim::channel_count;
using gpusim::channel_set_to_string;
using gpusim::ChannelSet;
using gpusim::subset_of;

/// A colored allocation handed back to the runtime.
struct ColoredBuffer {
  gpusim::VirtAddr va = 0;     // base VA (page-aligned)
  uint64_t logical_bytes = 0;  // payload size
  uint64_t va_bytes = 0;       // VA span (= logical × 4KiB/granularity)
  unsigned sector = 0;         // sector id shared by every chunk
  unsigned granularity_kib = 0;
  ChannelSet colors = 0;       // union of channel sets actually used
  std::vector<uint64_t> pfns;  // one frame per chunk (SPT entries)
};

struct UvmPoolOptions {
  uint64_t pool_bytes = 64ull << 20;
  unsigned granularity_kib = 2;  // paper default (§6)
  /// Labeler for 1 KiB partitions — the reverse-engineered LUT in
  /// production, the oracle in unit tests. Returning a negative value
  /// marks the partition unknown; sectors containing unknown partitions
  /// are quarantined (never handed out).
  std::function<int(gpusim::PhysAddr)> channel_of;
};

class UvmMemoryPool {
 public:
  UvmMemoryPool(gpusim::GpuDevice& dev, UvmPoolOptions opt);
  ~UvmMemoryPool();

  UvmMemoryPool(const UvmMemoryPool&) = delete;
  UvmMemoryPool& operator=(const UvmMemoryPool&) = delete;

  /// Allocate `bytes` constrained to channels within `allowed`. All chunks
  /// share one sector id; throws ConfigError when the pool cannot satisfy
  /// the request.
  ColoredBuffer allocate(uint64_t bytes, ChannelSet allowed);

  /// Return a colored buffer's chunks to the pool and unmap its VA.
  void release(ColoredBuffer& buf);

  // ---- Introspection ----
  unsigned granularity_kib() const { return opt_.granularity_kib; }
  uint64_t sector_bytes() const { return opt_.granularity_kib * 1024ull; }
  unsigned sectors_per_page() const {
    return static_cast<unsigned>(gpusim::kPageBytes / sector_bytes());
  }
  /// Distinct colors discovered while classifying the pool.
  std::vector<ChannelSet> colors() const;
  /// Free chunks currently available for a color set (any sector).
  uint64_t free_chunks(ChannelSet allowed) const;
  uint64_t total_chunks() const { return total_chunks_; }
  uint64_t quarantined_sectors() const { return quarantined_; }
  /// Free bytes obtainable for a color set right now.
  uint64_t free_bytes(ChannelSet allowed) const {
    return free_chunks(allowed) * sector_bytes();
  }

 private:
  struct ChunkKey {
    ChannelSet color;
    unsigned sector;
    bool operator<(const ChunkKey& o) const {
      return color != o.color ? color < o.color : sector < o.sector;
    }
  };

  gpusim::GpuDevice& dev_;
  UvmPoolOptions opt_;
  std::vector<uint64_t> frames_;                    // reserved PFNs
  std::map<ChunkKey, std::vector<uint64_t>> free_;  // chunk lists (Fig.12a)
  uint64_t total_chunks_ = 0;
  uint64_t quarantined_ = 0;
};

}  // namespace sgdrc::driver
