#include "driver/uvm_pool.h"

#include <algorithm>
#include <set>

#include "common/bitops.h"

namespace sgdrc::driver {

using gpusim::kPageBytes;
using gpusim::kPartitionBytes;
using gpusim::PhysAddr;

UvmMemoryPool::UvmMemoryPool(gpusim::GpuDevice& dev, UvmPoolOptions opt)
    : dev_(dev), opt_(std::move(opt)) {
  SGDRC_REQUIRE(opt_.channel_of != nullptr, "pool needs a channel labeler");
  SGDRC_REQUIRE(opt_.granularity_kib >= 1 &&
                    is_pow2(opt_.granularity_kib) &&
                    opt_.granularity_kib * 1024 <= kPageBytes,
                "granularity must be a power-of-two KiB within a page");
  const unsigned max_gran = dev.spec().max_coloring_granularity_kib();
  SGDRC_REQUIRE(opt_.granularity_kib <= max_gran,
                "granularity exceeds the GPU's contiguous channel run "
                "(Tab. 4 rule)");

  const uint64_t pages = opt_.pool_bytes >> gpusim::kPageBits;
  SGDRC_REQUIRE(pages > 0, "pool too small");
  const uint64_t sector = sector_bytes();
  const unsigned parts_per_sector =
      static_cast<unsigned>(sector / kPartitionBytes);

  frames_.reserve(pages);
  for (uint64_t i = 0; i < pages; ++i) {
    const uint64_t pfn = dev_.page_table().take_free_frame();
    frames_.push_back(pfn);
    const PhysAddr base = pfn << gpusim::kPageBits;
    for (unsigned s = 0; s < sectors_per_page(); ++s) {
      // Color = set of channels covered by the sector's partitions.
      ChannelSet color = 0;
      bool unknown = false;
      for (unsigned p = 0; p < parts_per_sector; ++p) {
        const int ch =
            opt_.channel_of(base + s * sector + p * kPartitionBytes);
        if (ch < 0) {
          unknown = true;
          break;
        }
        color |= channel_bit(static_cast<unsigned>(ch));
      }
      if (unknown) {
        ++quarantined_;
        continue;
      }
      free_[ChunkKey{color, s}].push_back(pfn);
      ++total_chunks_;
    }
  }
}

UvmMemoryPool::~UvmMemoryPool() {
  for (const uint64_t pfn : frames_) {
    dev_.page_table().release_frame(pfn);
  }
}

std::vector<ChannelSet> UvmMemoryPool::colors() const {
  std::set<ChannelSet> seen;
  for (const auto& [key, list] : free_) seen.insert(key.color);
  return {seen.begin(), seen.end()};
}

uint64_t UvmMemoryPool::free_chunks(ChannelSet allowed) const {
  uint64_t n = 0;
  for (const auto& [key, list] : free_) {
    if (subset_of(key.color, allowed)) n += list.size();
  }
  return n;
}

ColoredBuffer UvmMemoryPool::allocate(uint64_t bytes, ChannelSet allowed) {
  SGDRC_REQUIRE(bytes > 0, "zero-byte colored allocation");
  const uint64_t sector = sector_bytes();
  const uint64_t chunks = ceil_div(bytes, sector);

  // All chunks must share one sector id (the transformed kernel shifts its
  // base by sector × sector_size once). Pick the sector id with the most
  // free capacity among allowed colors.
  unsigned best_sector = 0;
  uint64_t best_free = 0;
  for (unsigned s = 0; s < sectors_per_page(); ++s) {
    uint64_t avail = 0;
    for (const auto& [key, list] : free_) {
      if (key.sector == s && subset_of(key.color, allowed)) {
        avail += list.size();
      }
    }
    if (avail > best_free) {
      best_free = avail;
      best_sector = s;
    }
  }
  SGDRC_REQUIRE(best_free >= chunks,
                "pool exhausted for color set " +
                    channel_set_to_string(allowed));

  ColoredBuffer buf;
  buf.logical_bytes = bytes;
  buf.sector = best_sector;
  buf.granularity_kib = opt_.granularity_kib;
  buf.va_bytes = chunks * kPageBytes;  // stride-expanded VA footprint
  buf.va = dev_.page_table().alloc_va(buf.va_bytes);
  buf.pfns.reserve(chunks);

  uint64_t taken = 0;
  for (auto& [key, list] : free_) {
    if (key.sector != best_sector || !subset_of(key.color, allowed)) {
      continue;
    }
    while (!list.empty() && taken < chunks) {
      const uint64_t pfn = list.back();
      list.pop_back();
      // Shadow page table write (Fig. 12a step 3): VA page ↦ pool frame.
      dev_.page_table().map_page(buf.va + taken * kPageBytes, pfn);
      buf.pfns.push_back(pfn);
      buf.colors |= key.color;
      ++taken;
    }
    if (taken == chunks) break;
  }
  SGDRC_CHECK(taken == chunks, "chunk accounting mismatch");
  return buf;
}

void UvmMemoryPool::release(ColoredBuffer& buf) {
  SGDRC_REQUIRE(buf.va != 0, "releasing an empty buffer");
  const uint64_t sector = sector_bytes();
  const unsigned parts_per_sector =
      static_cast<unsigned>(sector / kPartitionBytes);
  for (size_t i = 0; i < buf.pfns.size(); ++i) {
    const uint64_t pfn = buf.pfns[i];
    dev_.page_table().unmap_page(buf.va + i * kPageBytes);
    // Re-derive the chunk's color for its free list.
    const PhysAddr base =
        (pfn << gpusim::kPageBits) + buf.sector * sector;
    ChannelSet color = 0;
    for (unsigned p = 0; p < parts_per_sector; ++p) {
      const int ch = opt_.channel_of(base + p * kPartitionBytes);
      SGDRC_CHECK(ch >= 0, "released chunk lost its label");
      color |= channel_bit(static_cast<unsigned>(ch));
    }
    free_[ChunkKey{color, buf.sector}].push_back(pfn);
  }
  buf.pfns.clear();
  buf.va = 0;
}

}  // namespace sgdrc::driver
