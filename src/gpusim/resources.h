// Low-level resource-set types shared by the driver, the executor and the
// schedulers: VRAM channel sets (cache coloring) and TPC masks (TMD-style
// SM masking).
#pragma once

#include <bit>
#include <cstdint>
#include <string>

#include "common/error.h"

namespace sgdrc::gpusim {

// ---------------------------------------------------------------------
// Channel sets: bit i set = VRAM channel i.
// ---------------------------------------------------------------------
using ChannelSet = uint32_t;

constexpr ChannelSet channel_bit(unsigned ch) { return 1u << ch; }
constexpr bool subset_of(ChannelSet a, ChannelSet b) { return (a & ~b) == 0; }
constexpr unsigned channel_count(ChannelSet s) {
  return static_cast<unsigned>(std::popcount(s));
}
inline ChannelSet all_channels(unsigned num_channels) {
  SGDRC_REQUIRE(num_channels > 0 && num_channels <= 32,
                "channel count out of range");
  // A full-width shift is UB; the 32-channel mask is all ones.
  if (num_channels >= 32) return ~ChannelSet{0};
  return (ChannelSet{1} << num_channels) - 1;
}
inline std::string channel_set_to_string(ChannelSet s) {
  std::string out = "{";
  bool first = true;
  for (unsigned c = 0; c < 32; ++c) {
    if (s & channel_bit(c)) {
      if (!first) out += ",";
      out += static_cast<char>('A' + c);
      first = false;
    }
  }
  return out + "}";
}

// ---------------------------------------------------------------------
// TPC masks: bit i set = kernel may be scheduled on TPC i.
// ---------------------------------------------------------------------
using TpcMask = uint64_t;

constexpr TpcMask tpc_bit(unsigned tpc) { return TpcMask{1} << tpc; }
constexpr unsigned tpc_count(TpcMask m) {
  return static_cast<unsigned>(std::popcount(m));
}
inline TpcMask full_tpc_mask(unsigned num_tpcs) {
  SGDRC_REQUIRE(num_tpcs > 0 && num_tpcs <= 64, "TPC count out of range");
  // A full-width shift is UB; the 64-TPC mask is all ones.
  if (num_tpcs >= 64) return ~TpcMask{0};
  return (TpcMask{1} << num_tpcs) - 1;
}
/// Mask of `count` TPCs starting at `first`.
inline TpcMask tpc_range(unsigned first, unsigned count) {
  SGDRC_REQUIRE(first + count <= 64, "TPC range out of bounds");
  if (count == 0) return 0;
  const TpcMask ones =
      count >= 64 ? ~TpcMask{0} : (TpcMask{1} << count) - 1;
  return ones << first;
}

}  // namespace sgdrc::gpusim
