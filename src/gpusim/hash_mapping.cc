#include "gpusim/hash_mapping.h"

#include <algorithm>
#include <numeric>

#include "common/bitops.h"
#include "common/error.h"
#include "common/rng.h"

namespace sgdrc::gpusim {

namespace {

// All permutations of {0..n-1} for n <= 4, in lexicographic order.
std::vector<std::vector<uint8_t>> all_permutations(unsigned n) {
  std::vector<uint8_t> base(n);
  std::iota(base.begin(), base.end(), uint8_t{0});
  std::vector<std::vector<uint8_t>> out;
  do {
    out.push_back(base);
  } while (std::next_permutation(base.begin(), base.end()));
  return out;
}

// Hash-input window per Fig. 10: bits 10..34.
constexpr uint64_t hash_input(PhysAddr pa) {
  return extract_bits(pa, kPartitionBits, kHashInputHighBit);
}

}  // namespace

AddressMapping::AddressMapping(const GpuSpec& spec)
    : num_channels_(spec.num_channels),
      group_size_(spec.channel_group_size),
      num_groups_(spec.num_channels / spec.channel_group_size),
      linear_(spec.linear_hash),
      dram_banks_(spec.dram_banks_per_channel),
      l2_ways_(spec.l2_ways) {
  SGDRC_REQUIRE(spec.num_channels % spec.channel_group_size == 0,
                "channel count must be a multiple of the group size");
  SGDRC_REQUIRE(is_pow2(group_size_), "channel group size must be 2 or 4");

  Rng rng(spec.hash_key);

  if (linear_) {
    SGDRC_REQUIRE(is_pow2(num_channels_),
                  "linear hash requires a power-of-two channel count");
    const unsigned bits = ceil_log2(num_channels_);
    // Keyed random masks over the 25-bit hash input window. Random masks
    // of this width are linearly independent with overwhelming probability;
    // verify anyway so the linear family is always exactly solvable.
    const uint64_t window = (uint64_t{1} << 25) - 1;
    for (;;) {
      linear_masks_.clear();
      for (unsigned b = 0; b < bits; ++b) {
        linear_masks_.push_back((rng.next_u64() & window) | 1);
      }
      // Gaussian elimination rank check over GF(2).
      std::vector<uint64_t> rows = linear_masks_;
      unsigned rank = 0;
      for (int bit = 24; bit >= 0 && rank < rows.size(); --bit) {
        const uint64_t pivot_mask = uint64_t{1} << bit;
        for (size_t r = rank; r < rows.size(); ++r) {
          if (rows[r] & pivot_mask) {
            std::swap(rows[rank], rows[r]);
            for (size_t r2 = 0; r2 < rows.size(); ++r2) {
              if (r2 != rank && (rows[r2] & pivot_mask)) {
                rows[r2] ^= rows[rank];
              }
            }
            ++rank;
            break;
          }
        }
      }
      if (rank == rows.size()) break;
    }
  } else {
    // Permutation family. Superblock = 4 regions of `group_size` slots.
    intra_bits_ = ceil_log2(group_size_);
    slot_bits_ = intra_bits_ + 2;  // 4 regions per superblock
    // The pattern selector reads a positional window of the superblock
    // index through a keyed S-box. Table lookups are not expressible as
    // XOR folds, so FGPU's GF(2) solver turns inconsistent — yet the
    // circuit stays as shallow as the layouts the paper observed, which
    // is exactly why their DNN reached 99.9% from 15 K samples (§5.3).
    sb_parity_masks_ = {0, 0, 0};
    // S-boxes indexed by (effective << 2) | region. Entries are drawn
    // uniformly so groups and intra-group orders are exactly uniform
    // (Fig. 9's "patterns uniformly distributed").
    perms_ = all_permutations(group_size_);
    const size_t table = size_t{1} << (6 + 2);
    // Balanced fill: each group / permutation index appears equally often
    // in the S-box, then the table is shuffled by the key. This keeps the
    // mapping non-linear and secret while making channel frequencies
    // population-uniform (Fig. 9).
    sbox_group_.resize(table);
    sbox_perm_.resize(table);
    for (size_t i = 0; i < table; ++i) {
      sbox_group_[i] = static_cast<uint8_t>(i % num_groups_);
      sbox_perm_[i] = static_cast<uint8_t>(i % perms_.size());
    }
    rng.shuffle(sbox_group_);
    rng.shuffle(sbox_perm_);
  }

  for (auto& b : bank_sbox_) {
    b = static_cast<uint8_t>(rng.uniform_u64(dram_banks_));
  }

  const uint64_t slice = spec.l2_slice_bytes();
  l2_sets_ = static_cast<unsigned>(
      slice / (spec.l2_line_bytes * static_cast<uint64_t>(l2_ways_)));
  SGDRC_REQUIRE(l2_sets_ > 0 && is_pow2(l2_sets_),
                "L2 slice must hold a power-of-two number of sets");
  l2_set_key_ = rng.next_u64();
}

unsigned AddressMapping::linear_channel(PhysAddr pa) const {
  const uint64_t x = hash_input(pa);
  unsigned ch = 0;
  for (size_t b = 0; b < linear_masks_.size(); ++b) {
    ch |= masked_parity(x, linear_masks_[b]) << b;
  }
  return ch;
}

unsigned AddressMapping::permutation_channel(PhysAddr pa) const {
  const uint64_t p = hash_input(pa);  // partition index, 25 bits
  const uint64_t sb = p >> slot_bits_;
  const unsigned region = static_cast<unsigned>((p >> intra_bits_) & 3);
  const unsigned k = static_cast<unsigned>(p & (group_size_ - 1));
  // Effective superblock signature: a 6-bit positional window.
  const uint64_t eff = sb & 0x3F;
  const size_t idx = static_cast<size_t>((eff << 2) | region);
  const unsigned group = sbox_group_[idx];
  const auto& sigma = perms_[sbox_perm_[idx]];
  return group * group_size_ + sigma[k];
}

unsigned AddressMapping::channel_of(PhysAddr pa) const {
  return linear_ ? linear_channel(pa) : permutation_channel(pa);
}

unsigned AddressMapping::bank_of(PhysAddr pa) const {
  const uint64_t p = partition_of(pa);
  // Keyed byte-wide S-box over low partition bits mixed with a shifted copy:
  // same-bank addresses recur at ~1/banks density, and nearby same-bank
  // addresses usually live in different rows (row_of below), matching how
  // Algo. 1's forward scan finds conflicts quickly on real parts.
  return bank_sbox_[(p ^ ((p >> 4) * 0x9Eu)) & 0xFF];
}

uint64_t AddressMapping::row_of(PhysAddr pa) const {
  return partition_of(pa) >> 4;  // one row spans 16 partitions' worth
}

unsigned AddressMapping::l2_set_of(PhysAddr pa) const {
  const uint64_t line = line_of(pa);
  return static_cast<unsigned>(splitmix64(line ^ l2_set_key_) &
                               (l2_sets_ - 1));
}

}  // namespace sgdrc::gpusim
