// The simulated GPU's hidden address-mapping "gate circuits".
//
// This models what the paper reverse engineers (§5): every physical address
// maps to a VRAM channel, an L2 set within that channel's slice, and a DRAM
// (bank, row) within that channel — through keyed functions that the rest of
// SGDRC must treat as a black box.
//
// Two channel-hash families are provided, matching §3.2:
//  * linear:  channel = XOR parities of keyed bit masks (GTX 1080 class).
//             FGPU's GF(2) equation solving can crack this one.
//  * permutation: the general non-linear layout the paper discovered —
//             1 KiB channel partitions, channel groups (quads/pairs) whose
//             members occupy consecutive partitions in keyed permutation
//             patterns, patterns uniformly distributed across VRAM
//             (Fig. 8–10). Built from keyed S-boxes + parities, so it is
//             not expressible as XOR folds (FGPU fails) but is learnable
//             from samples (the paper's DNN approach, §5.3).
//
// IMPORTANT: reverse-engineering and SGDRC runtime code never call
// channel_of() directly; they only observe timings through MemSystem.
// Benches use it as the ground-truth oracle when scoring accuracy.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "gpusim/address.h"
#include "gpusim/gpu_spec.h"

namespace sgdrc::gpusim {

class AddressMapping {
 public:
  explicit AddressMapping(const GpuSpec& spec);

  unsigned num_channels() const { return num_channels_; }

  /// VRAM channel of a physical address (ground truth).
  unsigned channel_of(PhysAddr pa) const;

  /// DRAM bank within the address's channel.
  unsigned bank_of(PhysAddr pa) const;

  /// DRAM row identifier (unique per bank history; two addresses in the
  /// same bank conflict iff their rows differ).
  uint64_t row_of(PhysAddr pa) const;

  /// L2 set within the address's channel slice.
  unsigned l2_set_of(PhysAddr pa) const;

  /// L2 tag (cacheline identity).
  uint64_t l2_tag_of(PhysAddr pa) const { return line_of(pa); }

  unsigned l2_sets() const { return l2_sets_; }
  unsigned l2_ways() const { return l2_ways_; }
  unsigned dram_banks() const { return dram_banks_; }
  bool is_linear() const { return linear_; }

  /// The XOR masks of the linear family (test-only introspection; the
  /// FGPU bench uses this to verify its recovered masks).
  const std::vector<uint64_t>& linear_masks() const { return linear_masks_; }

  /// Channel-group membership helpers (Tab. 4 structure).
  unsigned group_of_channel(unsigned channel) const {
    return channel / group_size_;
  }
  unsigned group_size() const { return group_size_; }

 private:
  unsigned permutation_channel(PhysAddr pa) const;
  unsigned linear_channel(PhysAddr pa) const;

  unsigned num_channels_;
  unsigned group_size_;
  unsigned num_groups_;
  bool linear_;

  // Linear family: one mask per channel-index bit.
  std::vector<uint64_t> linear_masks_;

  // Permutation family.
  unsigned slot_bits_;           // log2(slots per superblock)
  unsigned intra_bits_;          // log2(group_size)
  std::array<uint64_t, 3> sb_parity_masks_{};  // over superblock index bits
  std::vector<uint8_t> sbox_group_;            // [eff<<2|region] -> group
  std::vector<uint8_t> sbox_perm_;             // [eff<<2|region] -> perm idx
  std::vector<std::vector<uint8_t>> perms_;    // S_{group_size} table

  // DRAM mapping.
  unsigned dram_banks_;
  std::array<uint8_t, 256> bank_sbox_{};

  // L2 slice geometry + keyed set fold.
  unsigned l2_sets_;
  unsigned l2_ways_;
  uint64_t l2_set_key_;
};

}  // namespace sgdrc::gpusim
