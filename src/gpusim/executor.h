// Kernel-level discrete-event executor: the substrate on which every
// scheduler in the evaluation (SGDRC and all baselines) runs.
//
// Model: processor-sharing roofline. A running kernel's instantaneous
// runtime is
//
//   t = overhead + max(t_compute, t_memory) × (1 + spt_overhead?)
//
//   t_compute: FLOPs over the throughput of its TPC-mask share. TPCs
//     time-share among kernels whose masks overlap, with an intra-SM
//     interference penalty γ per co-runner (L1/FPU/shared-memory
//     contention — Fig. 3a). Parallelism is capped by the kernel's grid
//     (max_useful_tpcs) — why a minimum-TPC count exists (§7.1).
//   t_memory: bytes over the bandwidth of its channel-set share. Channels
//     are shared demand-proportionally among kernels whose channel sets
//     overlap, with an inter-SM penalty β per co-runner (L2/MSHR/bank
//     contention — Fig. 3b; this is what cache coloring removes). A
//     shrunken channel set also shrinks usable L2 (λ factor) — FGPU's
//     static-partitioning downside (§3.2).
//
// Rates are recomputed at every launch / completion / eviction, so
// progress between events is linear (fluid processor sharing).
//
// Preemption (§7.1): BE kernels poll an eviction flag; evict() kills the
// kernel after the microsecond-scale flag-check latency and all progress
// is lost — the scheduler must relaunch to restart, exactly the paper's
// (and Reef's) reset semantics.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "common/event_queue.h"
#include "common/sim_time.h"
#include "gpusim/gpu_spec.h"
#include "gpusim/kernel.h"
#include "gpusim/resources.h"

namespace sgdrc::gpusim {

struct ExecutorParams {
  double intra_sm_gamma = 0.25;       // per-co-runner intra-SM penalty
  double inter_channel_beta = 0.45;   // per-co-runner channel penalty
  // Contention penalties saturate (L1/MSHR/bank queues fill up): caps on
  // the multiplicative factors, matching the few-× degradations of
  // Fig. 3 rather than unbounded growth.
  double max_intra_penalty = 3.0;
  double max_inter_penalty = 3.0;
  double l2_shrink_lambda = 0.18;     // memory slowdown per lost L2 slice
  TimeNs launch_overhead = 3 * kNsPerUs;
  TimeNs evict_latency = 4 * kNsPerUs;  // flag check → reset (Reef-scale)
  double spt_overhead = 0.029;          // §9.1.2 measured SPT cost
};

struct KernelLaunch {
  const KernelDesc* kernel = nullptr;
  TpcMask tpc_mask = 0;      // 0 ⇒ all TPCs
  ChannelSet channels = 0;   // 0 ⇒ all channels
  uint64_t tag = 0;          // scheduler cookie (task id, queue id, ...)
};

class GpuExecutor {
 public:
  using LaunchId = uint64_t;
  /// Completion: launch id, completion time.
  using CompletionFn = std::function<void(LaunchId, TimeNs)>;
  /// Eviction: launch id, time the kernel actually stopped.
  using EvictionFn = std::function<void(LaunchId, TimeNs)>;

  GpuExecutor(const GpuSpec& spec, EventQueue& queue,
              ExecutorParams params = {});

  /// Start a kernel. The completion callback fires from the event queue.
  LaunchId launch(const KernelLaunch& l, CompletionFn on_complete);

  /// Preempt a running kernel via the eviction flag. Only preemptible
  /// kernels accept this. No-op (returns false) if already finished.
  bool evict(LaunchId id, EvictionFn on_evicted);

  bool running(LaunchId id) const { return running_.count(id) != 0; }
  size_t running_count() const { return running_.size(); }
  TimeNs now() const { return queue_.now(); }
  const GpuSpec& spec() const { return spec_; }
  const ExecutorParams& params() const { return params_; }

  /// Closed-form runtime of a kernel running alone with the given
  /// allocation — the offline profiler's measurement primitive.
  TimeNs solo_runtime(const KernelDesc& k, unsigned tpcs, unsigned channels,
                      bool spt_transformed) const;

  /// Resource views for schedulers.
  struct RunningInfo {
    const KernelDesc* kernel;
    TpcMask tpc_mask;
    ChannelSet channels;
    uint64_t tag;
    TimeNs started;
  };
  std::optional<RunningInfo> info(LaunchId id) const;
  /// Snapshot of every running kernel (scheduler admission checks).
  std::vector<RunningInfo> running_infos() const;
  /// Union of TPC masks (channel sets) of running kernels.
  TpcMask busy_tpcs() const;
  ChannelSet busy_channels() const;

  uint64_t launches() const { return stats_launches_; }
  uint64_t completions() const { return stats_completions_; }
  uint64_t evictions() const { return stats_evictions_; }

 private:
  struct Running {
    KernelLaunch launch;
    CompletionFn on_complete;
    double remaining = 1.0;        // fraction of work left
    double rate = 0.0;             // fraction per ns under current alloc
    double demand_gbps = 0.0;      // natural bandwidth demand (bytes/ns)
    TimeNs last_update = 0;
    TimeNs started = 0;
    EventId completion_event = 0;
    bool has_completion_event = false;
    bool eviction_pending = false;
  };

  void settle_progress();      // apply rates up to now
  void recompute_rates();      // re-derive rates + completion events
  double runtime_ns(const Running& r) const;  // t under current sharing
  double parallelism_cap(const KernelDesc& k) const;
  void finish(LaunchId id);
  void kill(LaunchId id, EvictionFn on_evicted);

  double per_tpc_flops_per_ns() const;
  double per_channel_bytes_per_ns() const;

  GpuSpec spec_;
  EventQueue& queue_;
  ExecutorParams params_;
  std::map<LaunchId, Running> running_;
  LaunchId next_id_ = 1;
  uint64_t stats_launches_ = 0;
  uint64_t stats_completions_ = 0;
  uint64_t stats_evictions_ = 0;
};

}  // namespace sgdrc::gpusim
