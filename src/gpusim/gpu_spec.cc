#include "gpusim/gpu_spec.h"

namespace sgdrc::gpusim {

GpuSpec gtx1080() {
  GpuSpec s;
  s.name = "GTX 1080";
  s.architecture = "Pascal";
  s.vram_bytes = 8ull << 30;
  s.vram_bus_width_bits = 256;
  s.num_channels = 8;
  s.channel_group_size = 4;
  s.linear_hash = true;
  s.hash_key = 0x1080c0ffee;
  s.num_tpcs = 20;
  s.sms_per_tpc = 1;
  s.peak_tflops = 8.9;
  s.l2_bytes = 2ull << 20;
  s.vram_gbps = 320.0;
  s.cache_noise_rate = 0.01;
  return s;
}

GpuSpec tesla_p40() {
  GpuSpec s;
  s.name = "Tesla P40";
  s.architecture = "Pascal";
  s.vram_bytes = 24ull << 30;
  s.vram_bus_width_bits = 384;
  s.num_channels = 12;
  s.channel_group_size = 4;
  s.linear_hash = false;
  s.hash_key = 0x9400f40dull;
  s.num_tpcs = 15;
  s.sms_per_tpc = 2;
  s.peak_tflops = 11.8;
  s.l2_bytes = 3ull << 20;
  s.vram_gbps = 347.0;
  s.cache_noise_rate = 0.01;
  return s;
}

GpuSpec rtx_a2000() {
  GpuSpec s;
  s.name = "RTX A2000";
  s.architecture = "Ampere";
  s.vram_bytes = 12ull << 30;
  s.vram_bus_width_bits = 192;
  s.num_channels = 6;
  s.channel_group_size = 2;
  s.linear_hash = false;
  s.hash_key = 0xa2000a2000ull;
  s.num_tpcs = 13;
  s.sms_per_tpc = 2;
  s.peak_tflops = 8.0;
  s.l2_bytes = 3ull << 20;
  s.vram_gbps = 288.0;
  s.cache_noise_rate = 0.05;
  return s;
}

GpuSpec a100_sxm4() {
  GpuSpec s;
  s.name = "A100-SXM4-40GB";
  s.architecture = "Ampere";
  s.vram_bytes = 40ull << 30;
  // 5120-bit HBM2e folded to 32 pseudo-channels of 32 bits each; the
  // bandwidth envelope below is the real part's, so per_channel_gbps()
  // comes out ~6x an A2000 channel — the fold trades channel-count
  // fidelity for keeping ChannelSet a machine word.
  s.vram_bus_width_bits = 1024;
  s.num_channels = 32;
  s.channel_group_size = 2;
  s.linear_hash = false;
  s.hash_key = 0xa100a100a1ull;
  s.num_tpcs = 54;
  s.sms_per_tpc = 2;
  s.peak_tflops = 19.5;
  s.l2_bytes = 40ull << 20;
  s.vram_gbps = 1555.0;
  s.cache_noise_rate = 0.05;
  return s;
}

GpuSpec test_gpu() {
  GpuSpec s;
  s.name = "TestGPU";
  s.architecture = "Ampere";
  s.vram_bytes = 512ull << 20;
  s.vram_bus_width_bits = 128;
  s.num_channels = 4;
  s.channel_group_size = 2;
  s.linear_hash = false;
  s.hash_key = 0x7e57;
  s.num_tpcs = 4;
  s.sms_per_tpc = 2;
  s.peak_tflops = 2.0;
  s.l2_bytes = 256ull << 10;  // small slices keep unit-test probing fast
  s.vram_gbps = 100.0;
  s.cache_noise_rate = 0.0;
  return s;
}

}  // namespace sgdrc::gpusim
