// Set-associative L2 cache sliced per VRAM channel, with the "black-box
// cache policy" noise the paper measured (§3.2): a small fraction of fills
// is silently bypassed, which later reads observe as unexplained misses.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "gpusim/address.h"
#include "gpusim/hash_mapping.h"

namespace sgdrc::gpusim {

class L2Cache {
 public:
  L2Cache(const AddressMapping& mapping, double noise_rate,
          uint64_t noise_seed)
      : mapping_(mapping), noise_rate_(noise_rate), noise_rng_(noise_seed) {
    const size_t entries = static_cast<size_t>(mapping.num_channels()) *
                           mapping.l2_sets() * mapping.l2_ways();
    tags_.assign(entries, kInvalid);
    stamps_.assign(entries, 0);
    epochs_.assign(entries, 0);
  }

  /// Look up (and on miss, fill) the line holding `pa`.
  /// Returns true on hit. Fill may be skipped by the noise process.
  bool read(PhysAddr pa) {
    const unsigned ch = mapping_.channel_of(pa);
    const unsigned set = mapping_.l2_set_of(pa);
    const uint64_t tag = mapping_.l2_tag_of(pa);
    const size_t base = (static_cast<size_t>(ch) * mapping_.l2_sets() + set) *
                        mapping_.l2_ways();
    ++tick_;
    size_t victim = base;
    uint64_t oldest = ~uint64_t{0};
    for (size_t w = 0; w < mapping_.l2_ways(); ++w) {
      const size_t i = base + w;
      const bool valid = epochs_[i] == epoch_;
      if (valid && tags_[i] == tag) {
        stamps_[i] = tick_;
        ++hits_;
        return true;
      }
      const uint64_t age = valid ? stamps_[i] : 0;  // invalid ways first
      if (age < oldest) {
        oldest = age;
        victim = i;
      }
    }
    ++misses_;
    if (noise_rate_ > 0.0 && noise_rng_.bernoulli(noise_rate_)) {
      ++bypasses_;  // black-box policy decided not to allocate
      return false;
    }
    tags_[victim] = tag;
    stamps_[victim] = tick_;
    epochs_[victim] = epoch_;
    return false;
  }

  /// True if the line holding `pa` is currently resident (no state change).
  bool probe(PhysAddr pa) const {
    const unsigned ch = mapping_.channel_of(pa);
    const unsigned set = mapping_.l2_set_of(pa);
    const uint64_t tag = mapping_.l2_tag_of(pa);
    const size_t base = (static_cast<size_t>(ch) * mapping_.l2_sets() + set) *
                        mapping_.l2_ways();
    for (size_t w = 0; w < mapping_.l2_ways(); ++w) {
      if (epochs_[base + w] == epoch_ && tags_[base + w] == tag) return true;
    }
    return false;
  }

  /// O(1) full invalidation via epoch bump (reverse engineering issues
  /// millions of these; see reveng::ConflictProber for the equivalence
  /// argument with p-chase refresh on real hardware).
  void flush() { ++epoch_; }

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t bypasses() const { return bypasses_; }

 private:
  static constexpr uint64_t kInvalid = ~uint64_t{0};

  const AddressMapping& mapping_;
  double noise_rate_;
  Rng noise_rng_;
  std::vector<uint64_t> tags_;
  std::vector<uint64_t> stamps_;
  std::vector<uint32_t> epochs_;
  uint32_t epoch_ = 1;
  uint64_t tick_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t bypasses_ = 0;
};

}  // namespace sgdrc::gpusim
