// GPU MMU model: 4 KiB pages (the minimum the paper cites for NVIDIA's
// MMU), virtual→physical mappings, and a physical frame allocator that
// places pages randomly — which is why the VA→channel mapping changes on
// every process restart and reverse engineering must start from physical
// addresses (§5.1).
//
// The table is a dense vector indexed by VPN: the reverse-engineering
// arena maps most of VRAM (millions of pages), which a node-based map
// would make needlessly slow and heavy.
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "gpusim/address.h"

namespace sgdrc::gpusim {

class PageTable {
 public:
  PageTable(uint64_t vram_bytes, uint64_t seed)
      : rng_(seed), total_frames_(vram_bytes >> kPageBits) {
    free_list_.resize(total_frames_);
    for (uint64_t i = 0; i < total_frames_; ++i) {
      free_list_[i] = i;
    }
    rng_.shuffle(free_list_);
  }

  /// Allocate VA space and back every page with a random free frame.
  /// Returns the base virtual address (page-aligned).
  VirtAddr alloc(uint64_t bytes) {
    const uint64_t pages = pages_for(bytes);
    SGDRC_REQUIRE(pages <= free_list_.size(), "out of VRAM frames");
    const VirtAddr base = alloc_va(bytes);
    for (uint64_t p = 0; p < pages; ++p) {
      bind(vpn_of(base) + p, take_free_frame(), /*owns_frame=*/true);
    }
    return base;
  }

  /// Allocate VA space only; pages start unmapped (for SPT-managed
  /// buffers whose frames come from the driver's colored pool).
  VirtAddr alloc_va(uint64_t bytes) {
    const uint64_t pages = pages_for(bytes);
    const VirtAddr base = next_va_;
    next_va_ += pages << kPageBits;
    return base;
  }

  /// Point one VA page at an externally owned frame (shadow page table
  /// write, Fig. 12a step 3). The frame is not released on unmap.
  void map_page(VirtAddr va, uint64_t pfn) {
    SGDRC_REQUIRE(pfn < total_frames_, "PFN out of range");
    bind(vpn_of(va), pfn, /*owns_frame=*/false);
  }

  void unmap_page(VirtAddr va) {
    const uint64_t vpn = vpn_of(va);
    SGDRC_REQUIRE(vpn < pfn_.size() && pfn_[vpn] != kUnmapped,
                  "unmapping an unmapped page");
    if (owns_[vpn]) release_frame(pfn_[vpn]);
    pfn_[vpn] = kUnmapped;
    --mapped_pages_;
  }

  /// Unmap a full allocation made by alloc()/alloc_va().
  void free(VirtAddr base, uint64_t bytes) {
    const uint64_t pages = pages_for(bytes);
    for (uint64_t p = 0; p < pages; ++p) {
      const uint64_t vpn = vpn_of(base) + p;
      if (vpn >= pfn_.size() || pfn_[vpn] == kUnmapped) {
        continue;  // alloc_va pages may be unmapped
      }
      if (owns_[vpn]) release_frame(pfn_[vpn]);
      pfn_[vpn] = kUnmapped;
      --mapped_pages_;
    }
  }

  bool is_mapped(VirtAddr va) const {
    const uint64_t vpn = vpn_of(va);
    return vpn < pfn_.size() && pfn_[vpn] != kUnmapped;
  }

  /// Page walk — the equivalent of parsing the PTEs stored in VRAM
  /// (the practice of Zhang et al. [60] the paper follows).
  PhysAddr translate(VirtAddr va) const {
    const uint64_t vpn = vpn_of(va);
    SGDRC_REQUIRE(vpn < pfn_.size() && pfn_[vpn] != kUnmapped,
                  "page fault: unmapped VA");
    return (pfn_[vpn] << kPageBits) | page_offset(va);
  }

  /// Grab a random free frame (driver memory-pool reservation path).
  uint64_t take_free_frame() {
    SGDRC_REQUIRE(!free_list_.empty(), "out of VRAM frames");
    const uint64_t pfn = free_list_.back();
    free_list_.pop_back();
    return pfn;
  }

  void release_frame(uint64_t pfn) {
    SGDRC_REQUIRE(pfn < total_frames_, "PFN out of range");
    free_list_.push_back(pfn);
  }

  uint64_t free_frames() const { return free_list_.size(); }
  uint64_t total_frames() const { return total_frames_; }
  uint64_t mapped_pages() const { return mapped_pages_; }

 private:
  static constexpr uint64_t kUnmapped = ~uint64_t{0};

  static uint64_t pages_for(uint64_t bytes) {
    SGDRC_REQUIRE(bytes > 0, "zero-byte allocation");
    return (bytes + kPageBytes - 1) >> kPageBits;
  }

  void bind(uint64_t vpn, uint64_t pfn, bool owns_frame) {
    if (vpn >= pfn_.size()) {
      pfn_.resize(vpn + 1, kUnmapped);
      owns_.resize(vpn + 1, false);
    }
    SGDRC_CHECK(pfn_[vpn] == kUnmapped, "double-mapping a VA page");
    pfn_[vpn] = pfn;
    owns_[vpn] = owns_frame;
    ++mapped_pages_;
  }

  Rng rng_;
  uint64_t total_frames_;
  std::vector<uint64_t> free_list_;
  std::vector<uint64_t> pfn_;
  std::vector<bool> owns_;
  uint64_t mapped_pages_ = 0;
  VirtAddr next_va_ = kPageBytes;  // keep VA 0 unmapped (null)
};

}  // namespace sgdrc::gpusim
