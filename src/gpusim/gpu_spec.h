// Parameterised description of a simulated NVIDIA GPU.
//
// The three presets mirror Tab. 1 of the paper (VRAM size, bus width,
// channel count) plus the microarchitectural parameters the experiments
// depend on (channel grouping from Tab. 4, cache-noise rates from §3.2,
// TPC counts, bandwidth/compute envelopes for the kernel-level model).
#pragma once

#include <cstdint>
#include <string>

#include "common/sim_time.h"

namespace sgdrc::gpusim {

struct GpuSpec {
  std::string name;
  std::string architecture;  // "Pascal" or "Ampere"

  // ---- Tab. 1 ----
  uint64_t vram_bytes = 0;
  unsigned vram_bus_width_bits = 0;
  unsigned bus_width_per_gddr_bits = 32;
  unsigned num_channels = 0;  // = vram_bus_width / bus_width_per_gddr

  // ---- VRAM channel layout (§5.2, Tab. 4) ----
  // Channels come in contiguous groups: quads on Pascal-class parts,
  // pairs on Ampere-class parts. One group's channels occupy
  // channel_group_size consecutive 1 KiB partitions; this bounds the
  // maximum cache-coloring granularity.
  unsigned channel_group_size = 4;
  // True on parts whose channel hash is a pure XOR fold of address bits
  // (the GTX 1080 case FGPU relies on); false for the non-linear family.
  bool linear_hash = false;
  // Seed of the hidden "gate circuit". Reverse-engineering code must never
  // read this; it only sees timings.
  uint64_t hash_key = 0x5adface;

  // ---- Compute ----
  unsigned num_tpcs = 0;
  unsigned sms_per_tpc = 2;
  double peak_tflops = 0.0;  // aggregate FP32
  unsigned max_resident_blocks_per_sm = 16;

  // ---- Memory hierarchy ----
  uint64_t l2_bytes = 0;  // total; sliced evenly across channels
  unsigned l2_ways = 16;
  unsigned l2_line_bytes = 128;
  unsigned mshrs_per_channel = 48;
  unsigned dram_banks_per_channel = 16;
  double vram_gbps = 0.0;  // full-GPU VRAM bandwidth
  // Probability that an L2 fill is silently bypassed by the black-box
  // cache policy (≈1 % Pascal, ≈5 % Ampere per §3.2 / §5.3).
  double cache_noise_rate = 0.0;

  // ---- Memory-level timing (simulated ns) ----
  TimeNs l2_hit_ns = 160;
  TimeNs dram_row_hit_ns = 220;    // added on an L2 miss, open row
  TimeNs dram_row_miss_ns = 330;   // added on an L2 miss, row activate
  TimeNs bank_conflict_ns = 260;   // extra serialisation, same bank+new row
  TimeNs channel_serial_ns = 40;   // extra when two requests share a channel

  // Derived quantities -----------------------------------------------------
  unsigned num_sms() const { return num_tpcs * sms_per_tpc; }
  unsigned num_groups() const { return num_channels / channel_group_size; }
  uint64_t l2_slice_bytes() const { return l2_bytes / num_channels; }
  uint64_t partitions() const { return vram_bytes >> 10; }
  /// Fig. 10: maximum coloring granularity in KiB equals the number of
  /// contiguous channels in a group (Tab. 4 rule 2).
  unsigned max_coloring_granularity_kib() const { return channel_group_size; }
  unsigned min_coloring_granularity_kib() const { return 1; }
  double per_channel_gbps() const {
    return vram_gbps / static_cast<double>(num_channels);
  }
  double per_tpc_tflops() const {
    return peak_tflops / static_cast<double>(num_tpcs);
  }
};

/// NVIDIA GTX 1080 (Pascal, 8 GiB, 256-bit, 8 channels, linear XOR hash —
/// the one GPU family FGPU's reverse engineering supports).
GpuSpec gtx1080();

/// NVIDIA Tesla P40 (Pascal, 24 GiB, 384-bit, 12 channels, quad channel
/// groups, non-linear hash, ~1 % cache noise).
GpuSpec tesla_p40();

/// NVIDIA RTX A2000 (Ampere, 12 GiB, 192-bit, 6 channels, paired channel
/// groups, non-linear hash, ~5 % cache noise).
GpuSpec rtx_a2000();

/// NVIDIA A100-SXM4-40GB (Ampere, 40 GiB HBM2e). The HBM stacks are
/// modelled at pseudo-channel granularity, folded to the simulator's
/// 32-channel ceiling (ChannelSet is 32 bits wide); per-channel bandwidth
/// is scaled so the full-GPU envelope (~1555 GB/s) is preserved. The
/// datacenter counterpart to rtx_a2000() for heterogeneous fleets: ~4x
/// the TPCs, ~5x the VRAM bandwidth of the workstation part.
GpuSpec a100_sxm4();

/// Small synthetic part for fast unit tests (512 MiB, 4 channels).
GpuSpec test_gpu();

}  // namespace sgdrc::gpusim
