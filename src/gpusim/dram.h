// Per-channel GDDR bank state: each bank keeps one open row; accessing a
// different row forces precharge + activate. A bank serves one request per
// cycle, so two in-flight requests to the same bank with different rows
// serialise — the conflict signal Algorithm 1 measures.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "gpusim/hash_mapping.h"

namespace sgdrc::gpusim {

class Dram {
 public:
  explicit Dram(const AddressMapping& mapping)
      : mapping_(mapping),
        open_row_(static_cast<size_t>(mapping.num_channels()) *
                      mapping.dram_banks(),
                  kNoRow) {}

  /// Access the bank/row for `pa`; returns true on a row-buffer hit.
  /// Updates the open row.
  bool access(PhysAddr pa) {
    const size_t idx = bank_index(pa);
    const uint64_t row = mapping_.row_of(pa);
    const bool hit = open_row_[idx] == row;
    open_row_[idx] = row;
    if (hit) {
      ++row_hits_;
    } else {
      ++row_misses_;
    }
    return hit;
  }

  /// Would `pa` hit its bank's open row right now? (no state change)
  bool would_row_hit(PhysAddr pa) const {
    return open_row_[bank_index(pa)] == mapping_.row_of(pa);
  }

  void reset() { std::fill(open_row_.begin(), open_row_.end(), kNoRow); }

  uint64_t row_hits() const { return row_hits_; }
  uint64_t row_misses() const { return row_misses_; }

 private:
  static constexpr uint64_t kNoRow = ~uint64_t{0};

  size_t bank_index(PhysAddr pa) const {
    return static_cast<size_t>(mapping_.channel_of(pa)) *
               mapping_.dram_banks() +
           mapping_.bank_of(pa);
  }

  const AddressMapping& mapping_;
  std::vector<uint64_t> open_row_;
  uint64_t row_hits_ = 0;
  uint64_t row_misses_ = 0;
};

}  // namespace sgdrc::gpusim
