// GpuDevice: the facade a "process" sees — cuMalloc-style allocation, timed
// loads through the memory system, and the page-walk needed to learn
// physical addresses. This is the surface the reverse-engineering pipeline
// and the driver layer build on.
#pragma once

#include <cstdint>
#include <memory>

#include "common/sim_time.h"
#include "gpusim/gpu_spec.h"
#include "gpusim/mem_system.h"
#include "gpusim/page_table.h"

namespace sgdrc::gpusim {

class GpuDevice {
 public:
  /// `process_seed` controls the (random) VA→PA placement: a new seed is
  /// what a process restart looks like (§5.1).
  explicit GpuDevice(const GpuSpec& spec, uint64_t process_seed = 0x90ce55)
      : spec_(spec),
        mem_(spec, /*noise_seed=*/process_seed ^ 0xce11),
        pt_(spec.vram_bytes, process_seed) {}

  const GpuSpec& spec() const { return spec_; }
  MemSystem& mem() { return mem_; }
  const MemSystem& mem() const { return mem_; }
  PageTable& page_table() { return pt_; }
  const PageTable& page_table() const { return pt_; }

  /// cuMemAlloc equivalent: VA backed by random physical frames.
  VirtAddr malloc(uint64_t bytes) { return pt_.alloc(bytes); }
  void free(VirtAddr va, uint64_t bytes) { pt_.free(va, bytes); }

  /// Timed load through L2/DRAM (what CUDA's clock() microbenchmarks see).
  ReadResult read(VirtAddr va) { return mem_.read(pt_.translate(va)); }

  /// Two loads issued back-to-back from one warp (Algorithm 1's probe).
  TimeNs timed_pair_read(VirtAddr a, VirtAddr b) {
    return mem_.timed_pair_read(pt_.translate(a), pt_.translate(b));
  }

  /// Physical address of a VA — models parsing the page-table entries in
  /// VRAM (the paper follows [60] to do this on real hardware).
  PhysAddr pa_of(VirtAddr va) const { return pt_.translate(va); }

  /// Ground-truth oracle for scoring; not part of the black-box surface.
  const AddressMapping& oracle() const { return mem_.oracle(); }

 private:
  GpuSpec spec_;
  MemSystem mem_;
  PageTable pt_;
};

}  // namespace sgdrc::gpusim
