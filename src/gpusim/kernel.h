// Kernel descriptor — the executor's unit of work and the kernel
// transformer's input. The paper's toolchain gets kernels from TVM/Ansor;
// here the model zoo synthesises descriptors with the same observable
// properties: FLOP count, DRAM traffic, grid shape, register pressure and
// the array-access expressions the SPT transformer rewrites (Fig. 12b/c).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/sim_time.h"

namespace sgdrc::gpusim {

/// One global-memory access site in the kernel body.
struct KernelAccess {
  int tensor = -1;      // index into the owning model's tensor list
  int index_expr = 0;   // id of the index expression (shared ids = reuse)
  bool writes = false;
};

struct KernelDesc {
  std::string name;

  // ---- Static properties (from compilation) ----
  uint64_t flops = 0;             // floating-point work
  uint64_t bytes = 0;             // DRAM traffic, read + write
  unsigned blocks = 1;            // grid size
  unsigned threads_per_block = 256;
  unsigned base_registers = 32;   // per-thread registers, untransformed
  std::vector<KernelAccess> accesses;

  /// BE kernels are compiled with the eviction-flag poll (ld.cv) and can
  /// be preempted mid-run (§7.1); LS kernels are not.
  bool preemptible = false;

  /// Set by the SPT kernel transformer (§6): array indices are rewritten
  /// through translate(), costing ~2 int ops per access (§9.1.2).
  bool spt_transformed = false;

  // ---- Parallelism ----
  /// TPCs beyond this do not reduce runtime (grid too small); the offline
  /// profiler's binary search discovers this as SM_LS (§7.1).
  double max_useful_tpcs = 1e9;

  // ---- Filled by offline profiling (§4) ----
  bool memory_bound = false;  // runtime degrades under L2 thrashing
  unsigned min_tpcs = 0;      // minimum TPCs for optimal latency
};

}  // namespace sgdrc::gpusim
