// Physical / virtual address types and the address-bit structure the paper
// reverse-engineered (Fig. 10):
//
//   bits  0..6   cacheline offset (128 B lines)
//   bits  0..9   offset inside a 1 KiB VRAM channel partition
//   bits 10..34  input of the VRAM channel hash mapping
//   bits 12..    page number (4 KiB minimum MMU page)
#pragma once

#include <cstdint>

namespace sgdrc::gpusim {

using PhysAddr = uint64_t;
using VirtAddr = uint64_t;

constexpr unsigned kCachelineBits = 7;    // 128 B
constexpr unsigned kPartitionBits = 10;   // 1 KiB channel partition
constexpr unsigned kPageBits = 12;        // 4 KiB GPU MMU page
constexpr unsigned kHashInputHighBit = 34;

constexpr uint64_t kCachelineBytes = 1ull << kCachelineBits;
constexpr uint64_t kPartitionBytes = 1ull << kPartitionBits;
constexpr uint64_t kPageBytes = 1ull << kPageBits;

/// 1 KiB channel-partition index of a physical address.
constexpr uint64_t partition_of(PhysAddr pa) { return pa >> kPartitionBits; }

/// 128 B cacheline index of a physical address.
constexpr uint64_t line_of(PhysAddr pa) { return pa >> kCachelineBits; }

/// 4 KiB page frame number of a physical address.
constexpr uint64_t frame_of(PhysAddr pa) { return pa >> kPageBits; }

/// Virtual page number.
constexpr uint64_t vpn_of(VirtAddr va) { return va >> kPageBits; }

constexpr uint64_t page_offset(uint64_t addr) {
  return addr & (kPageBytes - 1);
}

}  // namespace sgdrc::gpusim
