#include "gpusim/executor.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace sgdrc::gpusim {

GpuExecutor::GpuExecutor(const GpuSpec& spec, EventQueue& queue,
                         ExecutorParams params)
    : spec_(spec), queue_(queue), params_(params) {
  SGDRC_REQUIRE(spec.num_tpcs >= 1 && spec.num_tpcs < 64,
                "TPC count out of range");
  SGDRC_REQUIRE(spec.peak_tflops > 0 && spec.vram_gbps > 0,
                "compute/memory envelopes must be positive");
}

double GpuExecutor::per_tpc_flops_per_ns() const {
  // peak_tflops × 1e12 flops/s ÷ tpcs ÷ 1e9 ns/s.
  return spec_.peak_tflops * 1e3 / static_cast<double>(spec_.num_tpcs);
}

double GpuExecutor::per_channel_bytes_per_ns() const {
  // 1 GB/s == 1 byte/ns, so vram_gbps is bytes/ns for the whole device.
  return spec_.vram_gbps / static_cast<double>(spec_.num_channels);
}

double GpuExecutor::parallelism_cap(const KernelDesc& k) const {
  // A grid of B blocks can occupy at most B / (resident blocks per TPC)
  // TPCs — small grids saturate early, which is why LS kernels have small
  // min-TPC requirements (§7.1).
  const double per_tpc = static_cast<double>(spec_.sms_per_tpc) *
                         spec_.max_resident_blocks_per_sm;
  return std::min(k.max_useful_tpcs,
                  std::max(1.0, static_cast<double>(k.blocks) / per_tpc));
}

TimeNs GpuExecutor::solo_runtime(const KernelDesc& k, unsigned tpcs,
                                 unsigned channels,
                                 bool spt_transformed) const {
  SGDRC_REQUIRE(tpcs >= 1 && tpcs <= spec_.num_tpcs, "TPC count invalid");
  SGDRC_REQUIRE(channels >= 1 && channels <= spec_.num_channels,
                "channel count invalid");
  const double eff_tpcs =
      std::min(static_cast<double>(tpcs), parallelism_cap(k));
  const double t_comp =
      static_cast<double>(k.flops) / (eff_tpcs * per_tpc_flops_per_ns());
  double t_mem = 0.0;
  if (k.bytes > 0) {
    const double frac = static_cast<double>(channels) /
                        static_cast<double>(spec_.num_channels);
    const double l2_factor = 1.0 + params_.l2_shrink_lambda * (1.0 - frac);
    const double bw = static_cast<double>(channels) * per_channel_bytes_per_ns();
    t_mem = static_cast<double>(k.bytes) * l2_factor / bw;
  }
  double t = std::max(t_comp, t_mem);
  if (spt_transformed) t *= 1.0 + params_.spt_overhead;
  // Same rounding as the event path (rate → ceil of remaining × t) so a
  // solo start-to-finish run matches this closed form exactly.
  return static_cast<TimeNs>(
      std::ceil(t + static_cast<double>(params_.launch_overhead)));
}

double GpuExecutor::runtime_ns(const Running& r) const {
  const KernelDesc& k = *r.launch.kernel;
  const TpcMask full_mask = full_tpc_mask(spec_.num_tpcs);
  const ChannelSet full_ch = all_channels(spec_.num_channels);
  const TpcMask my_mask =
      r.launch.tpc_mask ? r.launch.tpc_mask : full_mask;
  const ChannelSet my_ch =
      r.launch.channels ? r.launch.channels : full_ch;

  // ---- Compute: time-shared TPCs with intra-SM penalty (Fig. 3a). ----
  double eff_tpcs = 0.0;
  for (unsigned t = 0; t < spec_.num_tpcs; ++t) {
    if (!(my_mask & tpc_bit(t))) continue;
    unsigned users = 0;
    for (const auto& [id, other] : running_) {
      const TpcMask om =
          other.launch.tpc_mask ? other.launch.tpc_mask : full_mask;
      users += (om & tpc_bit(t)) != 0;
    }
    SGDRC_CHECK(users >= 1, "mask accounting lost the kernel itself");
    const double intra =
        std::min(1.0 + params_.intra_sm_gamma *
                           static_cast<double>(users - 1),
                 params_.max_intra_penalty);
    eff_tpcs += 1.0 / (static_cast<double>(users) * intra);
  }
  eff_tpcs = std::min(eff_tpcs, parallelism_cap(k));
  const double t_comp =
      static_cast<double>(k.flops) / (eff_tpcs * per_tpc_flops_per_ns());

  // ---- Memory: demand-shared channels with inter-SM penalty (Fig. 3b).
  double t_mem = 0.0;
  if (k.bytes > 0) {
    const double my_demand = r.demand_gbps;
    double bw = 0.0;
    for (unsigned c = 0; c < spec_.num_channels; ++c) {
      if (!(my_ch & channel_bit(c))) continue;
      double total_demand = 0.0;
      unsigned users = 0;
      for (const auto& [id, other] : running_) {
        if (other.launch.kernel->bytes == 0) continue;
        const ChannelSet oc =
            other.launch.channels ? other.launch.channels : full_ch;
        if (oc & channel_bit(c)) {
          total_demand += other.demand_gbps;
          ++users;
        }
      }
      SGDRC_CHECK(users >= 1 && total_demand > 0.0,
                  "channel accounting lost the kernel itself");
      // Demand-proportional sharing with an equal-split floor: the memory
      // controller arbitrates per requester, so a flow asking for less
      // than 1/users of the channel is not throttled below that slice.
      const double share = std::max(my_demand / total_demand,
                                    1.0 / static_cast<double>(users));
      const double contention =
          std::min(1.0 + params_.inter_channel_beta *
                             static_cast<double>(users - 1),
                   params_.max_inter_penalty);
      bw += per_channel_bytes_per_ns() * share / contention;
    }
    const double frac = static_cast<double>(channel_count(my_ch)) /
                        static_cast<double>(spec_.num_channels);
    const double l2_factor = 1.0 + params_.l2_shrink_lambda * (1.0 - frac);
    t_mem = static_cast<double>(k.bytes) * l2_factor / bw;
  }

  double t = std::max(t_comp, t_mem);
  if (k.spt_transformed) t *= 1.0 + params_.spt_overhead;
  return std::max<double>(t + static_cast<double>(params_.launch_overhead),
                          1.0);
}

void GpuExecutor::settle_progress() {
  const TimeNs now = queue_.now();
  for (auto& [id, r] : running_) {
    if (now > r.last_update && r.rate > 0.0) {
      r.remaining -= r.rate * static_cast<double>(now - r.last_update);
      r.remaining = std::max(r.remaining, 0.0);
    }
    r.last_update = now;
  }
}

void GpuExecutor::recompute_rates() {
  const TimeNs now = queue_.now();
  for (auto& [id, r] : running_) {
    const double t = runtime_ns(r);
    r.rate = 1.0 / t;
    if (r.has_completion_event) queue_.cancel(r.completion_event);
    const TimeNs delay =
        static_cast<TimeNs>(std::ceil(r.remaining * t));
    const LaunchId lid = id;
    r.completion_event =
        queue_.schedule_at(now + delay, [this, lid] { finish(lid); });
    r.has_completion_event = true;
  }
}

GpuExecutor::LaunchId GpuExecutor::launch(const KernelLaunch& l,
                                          CompletionFn on_complete) {
  SGDRC_REQUIRE(l.kernel != nullptr, "launch without a kernel");
  SGDRC_REQUIRE((l.tpc_mask & ~full_tpc_mask(spec_.num_tpcs)) == 0,
                "TPC mask references missing TPCs");
  SGDRC_REQUIRE((l.channels & ~all_channels(spec_.num_channels)) == 0,
                "channel set references missing channels");
  settle_progress();
  const LaunchId id = next_id_++;
  Running r;
  r.launch = l;
  r.on_complete = std::move(on_complete);
  r.remaining = 1.0;
  r.last_update = queue_.now();
  r.started = queue_.now();
  // Natural bandwidth demand: traffic over the kernel's solo runtime on
  // the full GPU (memory-bound kernels demand ~full bandwidth).
  const TimeNs solo =
      solo_runtime(*l.kernel, spec_.num_tpcs, spec_.num_channels,
                   l.kernel->spt_transformed);
  r.demand_gbps = l.kernel->bytes > 0
                      ? static_cast<double>(l.kernel->bytes) /
                            static_cast<double>(solo)
                      : 0.0;
  running_.emplace(id, std::move(r));
  ++stats_launches_;
  recompute_rates();
  return id;
}

void GpuExecutor::finish(LaunchId id) {
  auto it = running_.find(id);
  if (it == running_.end()) return;
  settle_progress();
  SGDRC_CHECK(it->second.remaining < 1e-6,
              "completion fired with work outstanding");
  CompletionFn cb = std::move(it->second.on_complete);
  running_.erase(it);
  ++stats_completions_;
  recompute_rates();
  if (cb) cb(id, queue_.now());
}

bool GpuExecutor::evict(LaunchId id, EvictionFn on_evicted) {
  auto it = running_.find(id);
  if (it == running_.end()) return false;
  SGDRC_REQUIRE(it->second.launch.kernel->preemptible,
                "evicting a kernel compiled without the eviction flag");
  if (it->second.eviction_pending) return true;
  it->second.eviction_pending = true;
  queue_.schedule_after(
      params_.evict_latency,
      [this, id, fn = std::move(on_evicted)] { kill(id, fn); });
  return true;
}

void GpuExecutor::kill(LaunchId id, EvictionFn on_evicted) {
  auto it = running_.find(id);
  if (it == running_.end()) return;  // completed during the flag check
  settle_progress();
  if (it->second.has_completion_event) {
    queue_.cancel(it->second.completion_event);
  }
  running_.erase(it);
  ++stats_evictions_;
  recompute_rates();
  if (on_evicted) on_evicted(id, queue_.now());
}

std::optional<GpuExecutor::RunningInfo> GpuExecutor::info(
    LaunchId id) const {
  auto it = running_.find(id);
  if (it == running_.end()) return std::nullopt;
  const Running& r = it->second;
  return RunningInfo{r.launch.kernel, r.launch.tpc_mask, r.launch.channels,
                     r.launch.tag, r.started};
}

std::vector<GpuExecutor::RunningInfo> GpuExecutor::running_infos() const {
  std::vector<RunningInfo> out;
  out.reserve(running_.size());
  for (const auto& [id, r] : running_) {
    out.push_back({r.launch.kernel, r.launch.tpc_mask, r.launch.channels,
                   r.launch.tag, r.started});
  }
  return out;
}

TpcMask GpuExecutor::busy_tpcs() const {
  TpcMask m = 0;
  for (const auto& [id, r] : running_) {
    m |= r.launch.tpc_mask ? r.launch.tpc_mask
                           : full_tpc_mask(spec_.num_tpcs);
  }
  return m;
}

ChannelSet GpuExecutor::busy_channels() const {
  ChannelSet s = 0;
  for (const auto& [id, r] : running_) {
    s |= r.launch.channels ? r.launch.channels
                           : all_channels(spec_.num_channels);
  }
  return s;
}

}  // namespace sgdrc::gpusim
