// The simulated GPU memory system: UMA crossbar in front of per-channel
// L2 slices and GDDR banks. This is the *only* interface the
// reverse-engineering code is allowed to observe — it returns latencies,
// never channel IDs.
#pragma once

#include <algorithm>
#include <cstdint>

#include "common/sim_time.h"
#include "gpusim/dram.h"
#include "gpusim/gpu_spec.h"
#include "gpusim/hash_mapping.h"
#include "gpusim/l2cache.h"

namespace sgdrc::gpusim {

struct ReadResult {
  TimeNs latency = 0;
  bool l2_hit = false;
};

class MemSystem {
 public:
  explicit MemSystem(const GpuSpec& spec, uint64_t noise_seed = 0xce11)
      : spec_(spec),
        mapping_(spec),
        l2_(mapping_, spec.cache_noise_rate, noise_seed),
        dram_(mapping_) {}

  /// Read one word at `pa`. UMA: latency is independent of which SM issues
  /// the read (the crossbar gives every SM the same path to every slice).
  ReadResult read(PhysAddr pa) {
    ++reads_;
    if (l2_.read(pa)) {
      return {spec_.l2_hit_ns, true};
    }
    const bool row_hit = dram_.access(pa);
    return {spec_.l2_hit_ns +
                (row_hit ? spec_.dram_row_hit_ns : spec_.dram_row_miss_ns),
            false};
  }

  /// Issue two reads back-to-back as a warp would (Algorithm 1's probe).
  /// Requests to different channels proceed in parallel; requests to the
  /// same channel serialise at the memory controller, and same-bank
  /// requests targeting different rows additionally pay precharge+activate.
  /// Both reads update cache/DRAM state.
  TimeNs timed_pair_read(PhysAddr a, PhysAddr b) {
    const unsigned ch_a = mapping_.channel_of(a);
    const unsigned ch_b = mapping_.channel_of(b);
    const bool same_bank = ch_a == ch_b &&
                           mapping_.bank_of(a) == mapping_.bank_of(b);
    const bool diff_row = mapping_.row_of(a) != mapping_.row_of(b);
    const ReadResult ra = read(a);
    const ReadResult rb = read(b);
    if (ch_a != ch_b) {
      return std::max(ra.latency, rb.latency);
    }
    TimeNs lat = std::max(ra.latency, rb.latency) + spec_.channel_serial_ns;
    if (same_bank && diff_row && !ra.l2_hit && !rb.l2_hit) {
      lat += spec_.bank_conflict_ns;
    }
    return lat;
  }

  void flush_l2() { l2_.flush(); }
  void reset_dram() { dram_.reset(); }

  const GpuSpec& spec() const { return spec_; }

  /// Ground-truth oracle. Reverse-engineering code must not call this;
  /// tests and benches use it to score accuracy.
  const AddressMapping& oracle() const { return mapping_; }

  const L2Cache& l2() const { return l2_; }
  const Dram& dram() const { return dram_; }
  uint64_t total_reads() const { return reads_; }

 private:
  GpuSpec spec_;
  AddressMapping mapping_;
  L2Cache l2_;
  Dram dram_;
  uint64_t reads_ = 0;
};

}  // namespace sgdrc::gpusim
