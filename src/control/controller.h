// The policy half of the software-defined control plane. A Controller
// looks at the world through a SimView and answers with a declarative
// ResourcePlan; the enforcer inside core::ServingSim compiles the plan
// into executor launches / eviction flags and validates guarantees. The
// split is deliberate (Gilman & Walls: separate mechanism from policy):
// controllers never touch the executor, so guarantees can be checked in
// one place, plans can be logged/tested as data, and the same controller
// runs under the standalone sim, the fleet layer, and the scenario
// engine unchanged.
//
// Legacy imperative policies (core::Policy — every Fig. 17 baseline)
// keep working through LegacyPolicyAdapter: the adapter runs the policy
// against the live sim in trace mode and returns the traced plan marked
// pre_applied, so behaviour is bit-for-bit what it was before the
// redesign while still flowing through the Controller interface.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "control/plan.h"
#include "core/serving.h"

namespace sgdrc::control {

/// Read-only window onto one device's serving state — everything a
/// controller may base a plan on. It deliberately re-exports the
/// ServingSim read API rather than copying state: plans are recomputed
/// after every event, so a snapshot would be stale by construction.
class SimView {
 public:
  explicit SimView(core::ServingSim& sim) : sim_(&sim) {}

  TimeNs now() const { return sim_->now(); }
  const gpusim::GpuSpec& spec() const { return sim_->spec(); }
  const core::ServingConfig& config() const { return sim_->config(); }

  std::vector<core::ServingSim::JobView> jobs() const { return sim_->jobs(); }
  std::vector<core::ServingSim::JobView> jobs(workload::QosClass q) const {
    return sim_->jobs(q);
  }
  std::vector<core::ServingSim::JobView> waiting_jobs(
      workload::QosClass q) const {
    return sim_->waiting_jobs(q);
  }
  std::optional<core::ServingSim::JobView> find_job(workload::JobId id) const {
    return sim_->find_job(id);
  }
  size_t inflight(workload::QosClass q) const { return sim_->inflight(q); }
  std::vector<gpusim::GpuExecutor::RunningInfo> running_infos() const {
    return sim_->exec().running_infos();
  }

  size_t tenant_count() const { return sim_->tenant_count(); }
  size_t tenant_count(workload::QosClass q) const {
    return sim_->tenant_count(q);
  }
  bool has_class(workload::QosClass q) const { return sim_->has_class(q); }
  bool tenant_active(workload::TenantId t) const {
    return sim_->tenant_active(t);
  }
  const core::TenantSpec& tenant(workload::TenantId t) const {
    return sim_->tenant(t);
  }
  const VgpuSpec& vgpu(workload::TenantId t) const {
    return sim_->tenant(t).vgpu;
  }
  /// The concrete TPC region backing a tenant's guarantee (empty mask
  /// when unguaranteed). Regions are carved by the enforcer, not the
  /// controller, so every controller sees the same geometry.
  gpusim::TpcMask guaranteed_mask(workload::TenantId t) const {
    return sim_->guaranteed_mask(t);
  }
  /// Union of all active guaranteed regions of one class.
  gpusim::TpcMask guaranteed_union(workload::QosClass q) const {
    return sim_->guaranteed_union(q);
  }

  // ---- dynamic request batching (core/serving.h batching read API) ----
  bool batching_enabled(workload::TenantId t) const {
    return sim_->batching_enabled(t);
  }
  /// Requests waiting ahead of the GPU (assembly + closed batches).
  size_t batch_queue_depth(workload::TenantId t) const {
    return sim_->batch_queue_depth(t);
  }
  /// Mean requests per launched batch so far (0 before the first).
  double batch_occupancy(workload::TenantId t) const {
    return sim_->batch_occupancy(t);
  }

  /// Escape hatch for LegacyPolicyAdapter only: run an imperative
  /// core::Policy against the live sim, tracing its launch/evict/poke
  /// calls into a pre-applied ResourcePlan. Native controllers must not
  /// call this.
  ResourcePlan trace_legacy(core::Policy& policy) const {
    return sim_->trace_policy(policy);
  }

 private:
  core::ServingSim* sim_;
};

/// The scheduling brain. plan() is invoked after every state change
/// (request arrival, kernel completion, eviction landing, BE rotation,
/// wake_at firing); like the old Policy::schedule it must be idempotent —
/// look at the view, say what should run now.
class Controller {
 public:
  virtual ~Controller() = default;
  virtual std::string name() const = 0;
  virtual ResourcePlan plan(const SimView& view) = 0;
};

/// Runs a legacy imperative core::Policy under the Controller interface.
/// The policy acts on the sim directly (identical behaviour to the
/// pre-redesign Policy path); the traced plan is returned pre_applied so
/// the enforcer treats it as a log. Owning and non-owning flavours.
class LegacyPolicyAdapter : public Controller {
 public:
  explicit LegacyPolicyAdapter(core::Policy& policy) : policy_(&policy) {}
  explicit LegacyPolicyAdapter(std::unique_ptr<core::Policy> policy)
      : owned_(std::move(policy)), policy_(owned_.get()) {
    SGDRC_REQUIRE(policy_ != nullptr, "adapter needs a policy");
  }

  std::string name() const override { return policy_->name(); }
  ResourcePlan plan(const SimView& view) override {
    return view.trace_legacy(*policy_);
  }

  core::Policy& policy() { return *policy_; }

 private:
  std::unique_ptr<core::Policy> owned_;  // null when non-owning
  core::Policy* policy_;
};

/// Builds one controller per device — fleets hand every GPU its own
/// instance because controllers are stateful (tidal clocks, cursors).
using ControllerFactory =
    std::function<std::unique_ptr<Controller>(const gpusim::GpuSpec&)>;

/// Wrap a legacy policy into an owning adapter (factory helper).
inline std::unique_ptr<Controller> adapt(
    std::unique_ptr<core::Policy> policy) {
  return std::make_unique<LegacyPolicyAdapter>(std::move(policy));
}

}  // namespace sgdrc::control
