// The software-defined vGPU (§4): what a tenant is *guaranteed*, as
// opposed to what a scheduler happens to give it. A VgpuSpec travels on
// core::TenantSpec, so guarantees are declared where tenants are
// declared — per tenant, scriptable by scenarios (set_quota), and
// visible to fleet placement (bin-packing by guaranteed TPCs).
//
// Semantics:
//  * guaranteed_tpcs — a hard SM (TPC) reservation. The serving engine
//    carves a concrete TPC region per guaranteed tenant (LS regions from
//    the top of the mask, BE regions from the bottom) and the plan
//    enforcer rejects launches that put another tenant's kernel inside
//    it. 0 means "no reservation": the tenant lives off the tidal
//    residual.
//  * channel_share — guaranteed fraction of the VRAM channels (bimodal
//    tensor coloring, §7.2). Shares steer the LS/BE channel split inside
//    plan-emitting controllers; 0 falls back to the controller default
//    (ChBE). Rounded to whole channel groups at enforcement.
//  * weight — relative share of the *unguaranteed* residual among
//    same-class tenants (equal weights reproduce the legacy full-overlap
//    sharing bit-for-bit).
//  * priority — launch-ordering tie-break within a QoS class (higher
//    first; equal priorities keep arrival order).
//
// This header is a dependency leaf: core/serving.h embeds VgpuSpec in
// TenantSpec, and the rest of the control plane (plan.h, controller.h)
// sits above core.
#pragma once

#include <cstdint>

namespace sgdrc::control {

struct VgpuSpec {
  /// Hard SM reservation (TPC count); 0 = no guarantee (tidal only).
  unsigned guaranteed_tpcs = 0;
  /// Guaranteed fraction of VRAM channels in (0,1); 0 = controller
  /// default split.
  double channel_share = 0.0;
  /// Relative share of the unguaranteed residual (same-class tenants).
  double weight = 1.0;
  /// Launch-ordering tie-break within a class; higher runs first.
  int priority = 0;
  /// Guaranteed VRAM bytes for the tenant's weights (memory
  /// virtualization, src/memory). Validated like TPC budgets
  /// (Σ quotas ≤ device VRAM on modeled devices); a replica within its
  /// quota is shielded from pressure eviction, and loads beyond one's
  /// own quota are counted as memory trespasses. 0 = no guarantee.
  uint64_t memory_bytes = 0;

  bool guaranteed() const { return guaranteed_tpcs > 0; }
};

/// Fluent helpers so tenant declarations read as one line.
inline VgpuSpec guaranteed_vgpu(unsigned tpcs, double channel_share = 0.0,
                                double weight = 1.0, int priority = 0) {
  return {tpcs, channel_share, weight, priority};
}
/// Attach a guaranteed-memory quota to a vGPU declaration.
inline VgpuSpec with_memory_quota(VgpuSpec vgpu, uint64_t memory_bytes) {
  vgpu.memory_bytes = memory_bytes;
  return vgpu;
}

}  // namespace sgdrc::control
