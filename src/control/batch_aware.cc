#include "control/batch_aware.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace sgdrc::control {

using workload::QosClass;
using workload::TenantId;

BatchAwareSgdrc::BatchAwareSgdrc(const gpusim::GpuSpec& spec,
                                 BatchAwareOptions opt)
    : opt_(opt), inner_(spec, opt.sgdrc), num_tpcs_(spec.num_tpcs) {}

ResourcePlan BatchAwareSgdrc::plan(const SimView& view) {
  // Which tenants have live LS work right now (queued or in flight) —
  // the floor must vanish the moment a batching tenant goes quiet, or
  // best-effort would keep paying for batches that stopped coming.
  std::vector<char> has_job(view.tenant_count(), 0);
  for (const auto& job : view.jobs(QosClass::kLatencySensitive)) {
    has_job[job.tenant] = 1;
  }

  unsigned floor = 0;
  for (TenantId t = 0; t < view.tenant_count(); ++t) {
    if (!view.tenant_active(t) || !view.batching_enabled(t)) continue;
    const double depth =
        static_cast<double>(view.batch_queue_depth(t));
    if (depth == 0.0 && !has_job[t]) continue;  // quiet: narrow now
    const auto& spec = view.tenant(t);
    const double occupancy = view.batch_occupancy(t);
    // The batch size this tenant is about to run: what it has been
    // launching (occupancy), or — early on, before the first batch — what
    // is already queued. Clamped to the policy's cap.
    const double expected =
        std::min<double>(spec.batching.max_batch, std::max(occupancy, depth));
    if (expected < opt_.min_occupancy) continue;  // not really batching
    // Widest latency-optimal footprint among the tenant's base kernels,
    // scaled the same ~√B way models::batched_variant widens min_tpcs.
    // Cached per tenant: the model is frozen at registration.
    if (t >= base_need_.size()) base_need_.resize(t + 1, 0);
    if (base_need_[t] == 0) {
      unsigned need = 1;
      for (const auto& k : spec.model.kernels) {
        need = std::max(need, std::max(1u, k.min_tpcs));
      }
      base_need_[t] = need;
    }
    const unsigned widened = static_cast<unsigned>(std::ceil(
        static_cast<double>(base_need_[t]) * std::sqrt(expected)));
    floor = std::max(floor, widened);
  }
  // Never reserve the whole device: the tide must always leave BE at
  // least one TPC to soak, or batching would starve the other class.
  inner_.set_reserve_floor(std::min(floor, num_tpcs_ - 1));
  return inner_.plan(view);
}

}  // namespace sgdrc::control
