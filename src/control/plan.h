// The declarative half of the control plane: a ResourcePlan is what a
// Controller *wants* — an ordered list of launch / evict / wake-at
// directives — and the enforcer inside core::ServingSim is the only
// code that turns it into mechanism (executor launches, eviction flags,
// queue wakeups). Directive order is preserved exactly at enforcement:
// two directives landing events on the same simulated nanosecond keep
// their relative order, which is what makes a plan-emitting rewrite of
// an imperative policy reproducible bit-for-bit.
//
// Allocation replaces the old LaunchSpec convention where 0 meant "all"
// for both fields (the classic footgun: a forgotten mask silently
// monopolised the GPU). Here an empty allocation is an error; "the
// whole device" must be spelled Allocation::all().
#pragma once

#include <optional>
#include <vector>

#include "common/sim_time.h"
#include "gpusim/resources.h"
#include "workload/tenant.h"

namespace sgdrc::control {

/// Explicit resource grant for one kernel launch. Both fields must be
/// non-empty; the sentinel all-ones masks (Allocation::all()) mean "every
/// TPC / channel the device has" without the caller knowing the device
/// size. The enforcer canonicalises device-covering masks, so all() and
/// an explicit full mask behave identically.
struct Allocation {
  gpusim::TpcMask tpcs = 0;        // 0 is invalid — use all()
  gpusim::ChannelSet channels = 0; // 0 is invalid — use all()

  /// The whole device (monopolisation), device-size agnostic.
  static constexpr Allocation all() {
    return {~gpusim::TpcMask{0}, ~gpusim::ChannelSet{0}};
  }
  /// A TPC slice with every channel (compute-bound colocation).
  static constexpr Allocation on_tpcs(gpusim::TpcMask m) {
    return {m, ~gpusim::ChannelSet{0}};
  }
  static constexpr Allocation on(gpusim::TpcMask m, gpusim::ChannelSet c) {
    return {m, c};
  }
  constexpr bool empty() const { return tpcs == 0 || channels == 0; }
};

/// One step of a plan. kLaunch grants `alloc` to job `job`'s next
/// kernel; kEvict raises the eviction flag on `job`'s in-flight kernel;
/// kWakeAt schedules a re-plan at absolute time `at`.
struct Directive {
  enum class Kind : uint8_t { kLaunch, kEvict, kWakeAt };
  Kind kind = Kind::kLaunch;
  workload::JobId job = 0;
  Allocation alloc;
  TimeNs at = 0;  // kWakeAt only
};

/// What a Controller wants done *now*. Directives are applied strictly
/// in emission order by the enforcer (core::ServingSim::apply).
struct ResourcePlan {
  std::vector<Directive> directives;
  /// Set when the plan was traced off a legacy imperative policy that
  /// already acted on the sim (LegacyPolicyAdapter): the enforcer must
  /// not apply it a second time; it is a log, not a request.
  bool pre_applied = false;

  ResourcePlan& launch(workload::JobId job, Allocation alloc) {
    directives.push_back({Directive::Kind::kLaunch, job, alloc, 0});
    return *this;
  }
  ResourcePlan& evict(workload::JobId job) {
    directives.push_back({Directive::Kind::kEvict, job, {}, 0});
    return *this;
  }
  ResourcePlan& wake_at(TimeNs t) {
    directives.push_back({Directive::Kind::kWakeAt, 0, {}, t});
    return *this;
  }

  bool empty() const { return directives.empty(); }
  size_t size() const { return directives.size(); }

  size_t count(Directive::Kind k) const {
    size_t n = 0;
    for (const auto& d : directives) n += d.kind == k;
    return n;
  }
  /// Earliest requested wakeup, if any (observability / tests).
  std::optional<TimeNs> next_wakeup() const {
    std::optional<TimeNs> t;
    for (const auto& d : directives) {
      if (d.kind != Directive::Kind::kWakeAt) continue;
      if (!t || d.at < *t) t = d.at;
    }
    return t;
  }
};

}  // namespace sgdrc::control
