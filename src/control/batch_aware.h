// Batch-aware SGDRC: the plan-emitting SGDRC controller wrapped with a
// feedback loop on observed batch occupancy. Batched LS jobs run
// batch-size-scaled kernels (~√B wider latency-optimal masks, see
// models/batching.h); the stock tide only reserves SMs for kernels
// *already queued*, so every freshly assembled wide batch would start by
// preempting best-effort work — paying the eviction latency once per
// batch. This controller watches each batching tenant's occupancy and
// queue depth and holds the sliding-window SM reservation wide enough
// for the batch size the tenant is actually running — and narrows it
// back (floor 0 = the plain tide, bit-for-bit) when occupancy falls, so
// best-effort gets the SMs back the moment batching stops earning them.
#pragma once

#include <vector>

#include "control/controller.h"
#include "core/sgdrc_policy.h"

namespace sgdrc::control {

struct BatchAwareOptions {
  /// Options forwarded to the inner SGDRC controller.
  core::SgdrcOptions sgdrc;
  /// Occupancy below this never widens the reserve (a tenant batching in
  /// ones is not batching).
  double min_occupancy = 1.5;
};

class BatchAwareSgdrc : public Controller {
 public:
  explicit BatchAwareSgdrc(const gpusim::GpuSpec& spec,
                           BatchAwareOptions opt = {});

  std::string name() const override { return "SGDRC (Batch-aware)"; }
  ResourcePlan plan(const SimView& view) override;

  /// The SM-reservation floor derived from the latest view (test /
  /// observability hook; recomputed every plan()).
  unsigned current_floor() const { return inner_.reserve_floor(); }

 private:
  BatchAwareOptions opt_;
  core::SgdrcPolicy inner_;
  unsigned num_tpcs_;
  /// Per-tenant widest base-kernel footprint (max min_tpcs), cached on
  /// first sight — the model is fixed at tenant registration, and plan()
  /// runs on every sim event. 0 = not yet computed.
  std::vector<unsigned> base_need_;
};

}  // namespace sgdrc::control
