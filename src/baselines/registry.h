// Name-keyed registry of every system under evaluation — SGDRC, its
// static ablation, and the Fig. 17 baselines — as ControllerFactories,
// so benches, examples, the conformance suite, and fleet drivers stop
// hand-rolling the same construction lambdas. One entry carries the
// evaluation metadata that used to be duplicated per bench: whether the
// system runs SPT-transformed models (SGDRC variants pay the §9.1.2
// overhead) and whether it counts as a "static partitioning" baseline
// in the scenario sweep's headline comparison.
#pragma once

#include <string>
#include <vector>

#include "control/controller.h"

namespace sgdrc::baselines {

struct SystemSpec {
  /// Registry key; equals the controller's name() (and the name printed
  /// in every bench table / BENCH_*.json record).
  std::string name;
  /// Run SPT-transformed model variants (SGDRC and SGDRC (Static)).
  bool uses_spt = false;
  /// Static-partitioning baseline class (scenario_sweep's headline
  /// compares dynamic SGDRC against the best of these).
  bool static_partitioning = false;
  /// Builds a fresh controller (stateful — one per device / run).
  control::ControllerFactory make;
};

/// Every registered system, in Fig. 17 column order: Multi-streaming,
/// TGS, MPS, Orion, SGDRC (Static), SGDRC — plus Temporal (the Fig. 4a
/// exclusivity reference, not part of the Fig. 17 six).
const std::vector<SystemSpec>& system_registry();

/// Look a system up by name; throws ConfigError for unknown names.
const SystemSpec& system(const std::string& name);

/// Convenience: a fresh controller for `name` on `spec`.
std::unique_ptr<control::Controller> make_system(
    const std::string& name, const gpusim::GpuSpec& spec);

}  // namespace sgdrc::baselines
