#include "baselines/baseline_policies.h"

#include <algorithm>

namespace sgdrc::baselines {

using core::ServingSim;
using gpusim::TpcMask;

// ----------------------------------------------------------- Temporal ----

void TemporalPolicy::schedule(ServingSim& sim) {
  const auto waiting = sim.waiting_ls_jobs();
  const bool be_present = sim.has_be();
  const auto be = be_present ? sim.be_state()
                             : ServingSim::BeView{0, nullptr, false, false};

  if (!waiting.empty()) {
    // LS work exists: claim the GPU. Preempt a running BE kernel first.
    if (be.in_flight) {
      if (!be.evicting) sim.evict_be();
      return;  // wait for the eviction to land
    }
    if (sim.ls_inflight() == 0) {
      sim.launch_ls(waiting.front().id, 0, 0);  // whole GPU
    }
    return;
  }
  // No LS waiting: BE may use the GPU exclusively.
  if (be_present && !be.in_flight && sim.ls_inflight() == 0) {
    sim.launch_be(0, 0);
  }
}

// -------------------------------------------------------- MultiStream ----

void MultiStreamPolicy::schedule(ServingSim& sim) {
  // Everything launches immediately; the hardware scheduler (our
  // processor-sharing executor) arbitrates. LS "priority" only orders the
  // launch queue — it cannot prevent intra-SM or channel contention.
  for (const auto& job : sim.waiting_ls_jobs()) {
    sim.launch_ls(job.id, 0, 0);
  }
  if (sim.has_be() && !sim.be_state().in_flight) {
    sim.launch_be(0, 0);
  }
}

// ---------------------------------------------------------------- MPS ----

MpsPolicy::MpsPolicy(const gpusim::GpuSpec& spec) {
  // CUDA_MPS_ACTIVE_THREAD_PERCENTAGE = 50 on two instances: an even,
  // static thread-level split. No channel isolation whatsoever.
  const unsigned half = std::max(1u, spec.num_tpcs / 2);
  ls_mask_ = gpusim::tpc_range(spec.num_tpcs - half, half);
  be_mask_ = gpusim::tpc_range(0, spec.num_tpcs - half);
}

void MpsPolicy::schedule(ServingSim& sim) {
  // All LS jobs share the LS instance's thread slice concurrently
  // (intra-SM conflicts among LS kernels, §9.3's MPS analysis).
  for (const auto& job : sim.waiting_ls_jobs()) {
    sim.launch_ls(job.id, ls_mask_, 0);
  }
  if (sim.has_be() && !sim.be_state().in_flight) {
    sim.launch_be(be_mask_, 0);
  }
}

// ---------------------------------------------------------------- TGS ----

void TgsPolicy::schedule(ServingSim& sim) {
  const TimeNs now = sim.now();
  if (now < frozen_until_) {
    sim.poke_at(frozen_until_);
    return;  // paying the container context switch
  }
  const auto waiting = sim.waiting_ls_jobs();
  const bool ls_wants = !waiting.empty() || sim.ls_inflight() > 0;
  const bool be_present = sim.has_be();

  // Feedback-style switching: only reconsider the active container after
  // `dwell`, then pay the switch cost.
  const bool may_switch = now - last_switch_ >= opt_.dwell;
  if (active_ == Container::kBe && ls_wants && may_switch) {
    active_ = Container::kLs;
    last_switch_ = now;
    frozen_until_ = now + opt_.switch_cost;
    sim.poke_at(frozen_until_);
    return;
  }
  if (active_ == Container::kLs && !ls_wants && be_present && may_switch) {
    active_ = Container::kBe;
    last_switch_ = now;
    frozen_until_ = now + opt_.switch_cost;
    sim.poke_at(frozen_until_);
    return;
  }
  if (!may_switch) {
    sim.poke_at(last_switch_ + opt_.dwell);
  }

  if (active_ == Container::kLs) {
    if (sim.ls_inflight() == 0 && !waiting.empty()) {
      sim.launch_ls(waiting.front().id, 0, 0);
    }
  } else if (be_present && !sim.be_state().in_flight) {
    sim.launch_be(0, 0);
  }
}

// -------------------------------------------------------------- Orion ----

void OrionPolicy::schedule(ServingSim& sim) {
  // LS stream: unrestricted, launch everything immediately.
  for (const auto& job : sim.waiting_ls_jobs()) {
    sim.launch_ls(job.id, 0, 0);
  }
  if (!sim.has_be() || sim.be_state().in_flight) return;

  const gpusim::KernelDesc* be_kernel = sim.be_state().next_kernel;
  SGDRC_CHECK(be_kernel != nullptr, "BE idle but no next kernel");

  // Interference-aware admission (§3.1's constraint classes):
  const auto running = sim.exec().running_infos();

  // 1) LS pressure: too many LS kernels executing or queued ⇒ the
  //    scheduler cannot find a safe co-execution slot.
  const size_t ls_pressure = sim.ls_inflight() + sim.waiting_ls_jobs().size();
  if (ls_pressure > opt_.ls_pressure_limit) {
    ++rej_sm_;
    return;
  }

  // 2) Runtime constraint: the BE kernel must not outlive the running LS
  //    kernels (it would block the next LS kernel's resources).
  const unsigned tpcs = sim.spec().num_tpcs;
  const unsigned chans = sim.spec().num_channels;
  const TimeNs be_rt = sim.exec().solo_runtime(*be_kernel, tpcs, chans,
                                               be_kernel->spt_transformed);
  for (const auto& info : running) {
    if (info.tag == ~uint64_t{0}) continue;  // ignore other BE kernels
    const TimeNs ls_rt = sim.exec().solo_runtime(
        *info.kernel, tpcs, chans, info.kernel->spt_transformed);
    if (static_cast<double>(be_rt) >
        opt_.runtime_ratio * static_cast<double>(ls_rt)) {
      ++rej_runtime_;
      return;
    }
  }

  // 3) Resource (memory) constraint: never co-run a memory-bound BE
  //    kernel while a memory-bound LS kernel executes.
  if (be_kernel->memory_bound) {
    for (const auto& info : running) {
      if (info.tag != ~uint64_t{0} && info.kernel->memory_bound) {
        ++rej_resource_;
        return;
      }
    }
  }

  ++admitted_;
  sim.launch_be(0, 0);
}

}  // namespace sgdrc::baselines
