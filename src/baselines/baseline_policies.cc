#include "baselines/baseline_policies.h"

#include <algorithm>

namespace sgdrc::baselines {

using core::QosClass;
using core::ServingSim;
using gpusim::TpcMask;

// ----------------------------------------------------------- Temporal ----

void TemporalPolicy::schedule(ServingSim& sim) {
  const auto waiting = sim.waiting_jobs(QosClass::kLatencySensitive);

  if (!waiting.empty()) {
    // LS work exists: claim the GPU. Preempt running BE kernels first.
    if (sim.inflight(QosClass::kBestEffort) > 0) {
      for (const auto& job : sim.jobs(QosClass::kBestEffort)) {
        if (job.in_flight && !job.evicting) sim.evict(job.id);
      }
      return;  // wait for the evictions to land
    }
    if (sim.inflight(QosClass::kLatencySensitive) == 0) {
      sim.launch(waiting.front().id, {});  // whole GPU
    }
    return;
  }
  // No LS waiting: BE may use the GPU exclusively, one kernel at a time.
  if (sim.inflight(QosClass::kLatencySensitive) == 0 &&
      sim.inflight(QosClass::kBestEffort) == 0) {
    const auto be = sim.waiting_jobs(QosClass::kBestEffort);
    if (!be.empty()) sim.launch(be.front().id, {});
  }
}

// -------------------------------------------------------- MultiStream ----

void MultiStreamPolicy::schedule(ServingSim& sim) {
  // Everything launches immediately; the hardware scheduler (our
  // processor-sharing executor) arbitrates. LS "priority" only orders the
  // launch queue — it cannot prevent intra-SM or channel contention.
  for (const auto& job : sim.waiting_jobs(QosClass::kLatencySensitive)) {
    sim.launch(job.id, {});
  }
  for (const auto& job : sim.waiting_jobs(QosClass::kBestEffort)) {
    sim.launch(job.id, {});
  }
}

// ---------------------------------------------------------------- MPS ----

MpsPolicy::MpsPolicy(const gpusim::GpuSpec& spec) {
  // CUDA_MPS_ACTIVE_THREAD_PERCENTAGE = 50 on two instances: an even,
  // static thread-level split. No channel isolation whatsoever.
  const unsigned half = std::max(1u, spec.num_tpcs / 2);
  ls_mask_ = gpusim::tpc_range(spec.num_tpcs - half, half);
  be_mask_ = gpusim::tpc_range(0, spec.num_tpcs - half);
}

void MpsPolicy::schedule(ServingSim& sim) {
  // All LS jobs share the LS instance's thread slice concurrently
  // (intra-SM conflicts among LS kernels, §9.3's MPS analysis); BE
  // tenants share the BE instance's slice the same way.
  for (const auto& job : sim.waiting_jobs(QosClass::kLatencySensitive)) {
    sim.launch(job.id, {ls_mask_, 0});
  }
  for (const auto& job : sim.waiting_jobs(QosClass::kBestEffort)) {
    sim.launch(job.id, {be_mask_, 0});
  }
}

// ---------------------------------------------------------------- TGS ----

void TgsPolicy::schedule(ServingSim& sim) {
  const TimeNs now = sim.now();
  if (now < frozen_until_) {
    sim.poke_at(frozen_until_);
    return;  // paying the container context switch
  }
  const auto waiting = sim.waiting_jobs(QosClass::kLatencySensitive);
  const bool ls_wants =
      !waiting.empty() || sim.inflight(QosClass::kLatencySensitive) > 0;
  const bool be_present = sim.has_class(QosClass::kBestEffort);

  // Feedback-style switching: only reconsider the active container after
  // `dwell`, then pay the switch cost.
  const bool may_switch = now - last_switch_ >= opt_.dwell;
  if (active_ == Container::kLs && !ls_wants && be_present && may_switch) {
    active_ = Container::kBe;
    last_switch_ = now;
    frozen_until_ = now + opt_.switch_cost;
    sim.poke_at(frozen_until_);
    return;
  }
  if (active_ == Container::kBe && ls_wants && may_switch) {
    active_ = Container::kLs;
    last_switch_ = now;
    frozen_until_ = now + opt_.switch_cost;
    sim.poke_at(frozen_until_);
    return;
  }
  if (!may_switch) {
    sim.poke_at(last_switch_ + opt_.dwell);
  }

  if (active_ == Container::kLs) {
    if (sim.inflight(QosClass::kLatencySensitive) == 0 && !waiting.empty()) {
      sim.launch(waiting.front().id, {});
    }
  } else {
    for (const auto& job : sim.waiting_jobs(QosClass::kBestEffort)) {
      sim.launch(job.id, {});
    }
  }
}

// -------------------------------------------------------------- Orion ----

void OrionPolicy::schedule(ServingSim& sim) {
  // LS stream: unrestricted, launch everything immediately.
  for (const auto& job : sim.waiting_jobs(QosClass::kLatencySensitive)) {
    sim.launch(job.id, {});
  }

  const auto running = sim.exec().running_infos();
  const unsigned tpcs = sim.spec().num_tpcs;
  const unsigned chans = sim.spec().num_channels;
  // LS pressure is invariant across the BE admission loop: launching BE
  // kernels changes neither LS in-flight nor waiting counts.
  const size_t ls_pressure =
      sim.inflight(QosClass::kLatencySensitive) +
      sim.waiting_jobs(QosClass::kLatencySensitive).size();

  // Interference-aware admission (§3.1's constraint classes), per waiting
  // BE kernel.
  for (const auto& be_job : sim.waiting_jobs(QosClass::kBestEffort)) {
    const gpusim::KernelDesc* be_kernel = be_job.next_kernel;
    SGDRC_CHECK(be_kernel != nullptr, "BE idle but no next kernel");

    // 1) LS pressure: too many LS kernels executing or queued ⇒ the
    //    scheduler cannot find a safe co-execution slot.
    if (ls_pressure > opt_.ls_pressure_limit) {
      ++rej_sm_;
      continue;
    }

    // 2) Runtime constraint: the BE kernel must not outlive the running
    //    LS kernels (it would block the next LS kernel's resources).
    const TimeNs be_rt = sim.exec().solo_runtime(*be_kernel, tpcs, chans,
                                                 be_kernel->spt_transformed);
    bool rejected = false;
    for (const auto& info : running) {
      const auto owner = sim.find_job(info.tag);
      if (owner && owner->qos == QosClass::kBestEffort) {
        continue;  // ignore other BE kernels
      }
      const TimeNs ls_rt = sim.exec().solo_runtime(
          *info.kernel, tpcs, chans, info.kernel->spt_transformed);
      if (static_cast<double>(be_rt) >
          opt_.runtime_ratio * static_cast<double>(ls_rt)) {
        ++rej_runtime_;
        rejected = true;
        break;
      }
    }
    if (rejected) continue;

    // 3) Resource (memory) constraint: never co-run a memory-bound BE
    //    kernel while a memory-bound LS kernel executes.
    if (be_kernel->memory_bound) {
      for (const auto& info : running) {
        const auto owner = sim.find_job(info.tag);
        const bool is_be = owner && owner->qos == QosClass::kBestEffort;
        if (!is_be && info.kernel->memory_bound) {
          ++rej_resource_;
          rejected = true;
          break;
        }
      }
    }
    if (rejected) continue;

    ++admitted_;
    sim.launch(be_job.id, {});
  }
}

}  // namespace sgdrc::baselines
