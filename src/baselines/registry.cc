#include "baselines/registry.h"

#include "baselines/baseline_policies.h"
#include "control/batch_aware.h"
#include "core/sgdrc_policy.h"

namespace sgdrc::baselines {

namespace {

/// Legacy imperative policies enter the control plane through an owning
/// LegacyPolicyAdapter (control::adapt); the SGDRC variants are native
/// plan-emitting controllers.
template <typename P, typename... Args>
control::ControllerFactory adapted(Args... args) {
  return [=](const gpusim::GpuSpec&) {
    return control::adapt(std::make_unique<P>(args...));
  };
}

std::vector<SystemSpec> build_registry() {
  std::vector<SystemSpec> r;
  r.push_back({"Multi-streaming", false, false, adapted<MultiStreamPolicy>()});
  r.push_back({"TGS", false, false, adapted<TgsPolicy>()});
  r.push_back({"MPS", false, true,
               [](const gpusim::GpuSpec& gs) {
                 return control::adapt(std::make_unique<MpsPolicy>(gs));
               }});
  r.push_back({"Orion", false, false, adapted<OrionPolicy>()});
  r.push_back({"SGDRC (Static)", true, true,
               [](const gpusim::GpuSpec& gs)
                   -> std::unique_ptr<control::Controller> {
                 return std::make_unique<core::SgdrcStaticPolicy>(gs);
               }});
  r.push_back({"SGDRC", true, false,
               [](const gpusim::GpuSpec& gs)
                   -> std::unique_ptr<control::Controller> {
                 return std::make_unique<core::SgdrcPolicy>(gs);
               }});
  r.push_back({"Temporal (TGS-like)", false, false,
               adapted<TemporalPolicy>()});
  // SGDRC wrapped with the batch-occupancy feedback loop; identical to
  // plain SGDRC when no tenant batches (floor stays 0).
  r.push_back({"SGDRC (Batch-aware)", true, false,
               [](const gpusim::GpuSpec& gs)
                   -> std::unique_ptr<control::Controller> {
                 return std::make_unique<control::BatchAwareSgdrc>(gs);
               }});
  return r;
}

}  // namespace

const std::vector<SystemSpec>& system_registry() {
  static const std::vector<SystemSpec> registry = build_registry();
  return registry;
}

const SystemSpec& system(const std::string& name) {
  for (const auto& s : system_registry()) {
    if (s.name == name) return s;
  }
  SGDRC_REQUIRE(false, "unknown system: " + name);
  return system_registry().front();  // unreachable
}

std::unique_ptr<control::Controller> make_system(
    const std::string& name, const gpusim::GpuSpec& spec) {
  return system(name).make(spec);
}

}  // namespace sgdrc::baselines
