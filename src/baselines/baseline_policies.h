// The Fig. 17 baselines, each as a Policy over the same serving engine:
//
//  * Temporal   — one kernel owns the GPU at a time; LS preempts BE
//                 (TGS/Clockwork-style exclusivity, Fig. 1a / Fig. 4a).
//  * MultiStream— two priority streams, everything launches immediately
//                 and shares the whole GPU (§9.2 baseline 1, Fig. 4b).
//  * MPS        — static 50/50 active-thread split between an LS and a BE
//                 instance; no VRAM isolation (§9.2 baseline 3).
//  * TGS        — container-level time sharing with switch overhead and
//                 feedback-style dwell (§9.2 baseline 2).
//  * Orion      — interference-aware admission of BE kernels next to an
//                 unrestricted LS stream (§9.2 baseline 4; the paper, like
//                 us, reimplements Orion's policy on its own substrate).
#pragma once

#include <cstdint>

#include "core/serving.h"
#include "gpusim/resources.h"

namespace sgdrc::baselines {

class TemporalPolicy : public core::Policy {
 public:
  std::string name() const override { return "Temporal (TGS-like)"; }
  void schedule(core::ServingSim& sim) override;
};

class MultiStreamPolicy : public core::Policy {
 public:
  std::string name() const override { return "Multi-streaming"; }
  void schedule(core::ServingSim& sim) override;
};

class MpsPolicy : public core::Policy {
 public:
  explicit MpsPolicy(const gpusim::GpuSpec& spec);
  std::string name() const override { return "MPS"; }
  void schedule(core::ServingSim& sim) override;

 private:
  gpusim::TpcMask ls_mask_, be_mask_;
};

class TgsPolicy : public core::Policy {
 public:
  struct Options {
    TimeNs dwell = 2 * kNsPerMs;          // feedback-control reaction time
    TimeNs switch_cost = 300 * kNsPerUs;  // CUDA context switch (§9.3)
  };
  TgsPolicy() = default;
  explicit TgsPolicy(Options opt) : opt_(opt) {}
  std::string name() const override { return "TGS"; }
  void schedule(core::ServingSim& sim) override;

 private:
  enum class Container { kLs, kBe };
  Options opt_;
  Container active_ = Container::kLs;
  TimeNs last_switch_ = 0;
  TimeNs frozen_until_ = 0;
};

class OrionPolicy : public core::Policy {
 public:
  struct Options {
    /// Max queued+running LS kernels for BE co-execution to be allowed.
    size_t ls_pressure_limit = 1;
    /// BE kernel runtime must not exceed this multiple of the shortest
    /// running LS kernel's runtime. Orion's duration-based co-execution
    /// vetting admits kernels a few times longer than the LS kernel —
    /// throughput-oriented, at some cost to the LS tail under load.
    double runtime_ratio = 3.0;
  };
  OrionPolicy() = default;
  explicit OrionPolicy(Options opt) : opt_(opt) {}
  std::string name() const override { return "Orion"; }
  void schedule(core::ServingSim& sim) override;

  /// Constraint rejection counters (Fig. 5b's Res / SM / Runtime bars).
  uint64_t rejected_resource() const { return rej_resource_; }
  uint64_t rejected_sm() const { return rej_sm_; }
  uint64_t rejected_runtime() const { return rej_runtime_; }
  uint64_t admitted() const { return admitted_; }

 private:
  Options opt_;
  uint64_t rej_resource_ = 0;
  uint64_t rej_sm_ = 0;
  uint64_t rej_runtime_ = 0;
  uint64_t admitted_ = 0;
};

}  // namespace sgdrc::baselines
