#include "fleet/placement.h"

#include <algorithm>
#include <limits>

namespace sgdrc::fleet {

namespace {

unsigned clamped_replicas(const FleetTenantSpec& t, unsigned devices) {
  SGDRC_REQUIRE(t.replicas >= 1, "tenant needs at least one replica");
  return std::min(t.replicas, devices);
}

double derived_weight(const FleetTenantSpec& t) {
  if (t.weight > 0.0) return t.weight;
  return t.spec.qos == QosClass::kLatencySensitive
             ? static_cast<double>(t.spec.isolated_latency)
             : 1.0;
}

}  // namespace

double relative_perf(const gpusim::GpuSpec& s, const gpusim::GpuSpec& base) {
  const double tpc = base.num_tpcs > 0
                         ? static_cast<double>(s.num_tpcs) /
                               static_cast<double>(base.num_tpcs)
                         : 1.0;
  const double bw = base.vram_gbps > 0.0 ? s.vram_gbps / base.vram_gbps : 1.0;
  return 0.5 * (tpc + bw);
}

std::vector<double> device_perf_factors(
    const std::vector<gpusim::GpuSpec>& specs, const gpusim::GpuSpec& base) {
  std::vector<double> out;
  out.reserve(specs.size());
  for (const auto& s : specs) out.push_back(relative_perf(s, base));
  return out;
}

std::vector<DeviceShape> device_shapes(
    const std::vector<gpusim::GpuSpec>& specs, bool include_vram) {
  std::vector<DeviceShape> out;
  out.reserve(specs.size());
  for (const auto& s : specs) {
    out.push_back({s.num_tpcs, include_vram ? s.vram_bytes : 0});
  }
  return out;
}

Assignment SpreadPlacement::place(const std::vector<FleetTenantSpec>& tenants,
                                  unsigned devices) const {
  std::vector<unsigned> count(devices, 0);
  Assignment out(tenants.size());
  for (size_t t = 0; t < tenants.size(); ++t) {
    std::vector<bool> used(devices, false);
    for (unsigned r = 0; r < clamped_replicas(tenants[t], devices); ++r) {
      DeviceId best = 0;
      unsigned best_count = std::numeric_limits<unsigned>::max();
      for (DeviceId d = 0; d < devices; ++d) {
        if (!used[d] && count[d] < best_count) {
          best = d;
          best_count = count[d];
        }
      }
      used[best] = true;
      ++count[best];
      out[t].push_back(best);
    }
  }
  return out;
}

Assignment PackPlacement::place(const std::vector<FleetTenantSpec>& tenants,
                                unsigned devices) const {
  SGDRC_REQUIRE(per_device_ >= 1, "pack capacity must be positive");
  std::vector<unsigned> count(devices, 0);
  Assignment out(tenants.size());
  for (size_t t = 0; t < tenants.size(); ++t) {
    std::vector<bool> used(devices, false);
    for (unsigned r = 0; r < clamped_replicas(tenants[t], devices); ++r) {
      // First device with room; when every device is at capacity, fall
      // back to the least-loaded one (capacity is a preference, not an
      // admission limit — the fleet never rejects work).
      DeviceId best = 0;
      bool found = false;
      for (DeviceId d = 0; d < devices && !found; ++d) {
        if (!used[d] && count[d] < per_device_) {
          best = d;
          found = true;
        }
      }
      if (!found) {
        unsigned best_count = std::numeric_limits<unsigned>::max();
        for (DeviceId d = 0; d < devices; ++d) {
          if (!used[d] && count[d] < best_count) {
            best = d;
            best_count = count[d];
          }
        }
      }
      used[best] = true;
      ++count[best];
      out[t].push_back(best);
    }
  }
  return out;
}

Assignment QosAwarePlacement::place(
    const std::vector<FleetTenantSpec>& tenants, unsigned devices) const {
  SGDRC_REQUIRE(perf_.empty() || perf_.size() == devices,
                "perf factors must be empty (homogeneous) or list one "
                "per device");
  std::vector<double> ls_load(devices, 0.0);
  std::vector<unsigned> be_count(devices, 0);
  // Heterogeneity: compare perf-normalized load, so a 2x device looks
  // half as crowded at equal raw load. Homogeneous (empty perf_) values
  // pass through untouched — integer BE counts compare exactly as
  // doubles, so the legacy decisions are reproduced bit-for-bit.
  const auto nls = [&](DeviceId d) {
    return perf_.empty() ? ls_load[d] : ls_load[d] / perf_[d];
  };
  const auto nbe = [&](DeviceId d) {
    const double c = static_cast<double>(be_count[d]);
    return perf_.empty() ? c : c / perf_[d];
  };
  Assignment out(tenants.size());
  // LS first so BE sees the final LS landscape regardless of spec order.
  for (const QosClass qos :
       {QosClass::kLatencySensitive, QosClass::kBestEffort}) {
    for (size_t t = 0; t < tenants.size(); ++t) {
      if (tenants[t].spec.qos != qos) continue;
      const double w = derived_weight(tenants[t]);
      std::vector<bool> used(devices, false);
      for (unsigned r = 0; r < clamped_replicas(tenants[t], devices); ++r) {
        DeviceId best = 0;
        bool have = false;
        for (DeviceId d = 0; d < devices; ++d) {
          if (used[d]) continue;
          if (!have) {
            best = d;
            have = true;
            continue;
          }
          const bool better =
              qos == QosClass::kLatencySensitive
                  ? nls(d) < nls(best) ||
                        (nls(d) == nls(best) && nbe(d) < nbe(best))
                  : nbe(d) < nbe(best) ||
                        (nbe(d) == nbe(best) && nls(d) < nls(best));
          if (better) best = d;
        }
        used[best] = true;
        if (qos == QosClass::kLatencySensitive) {
          ls_load[best] += w;
        } else {
          ++be_count[best];
        }
        out[t].push_back(best);
      }
    }
  }
  return out;
}

Assignment QuotaAwarePlacement::place(
    const std::vector<FleetTenantSpec>& tenants, unsigned devices) const {
  // Per-device bin capacities: uniform from the scalar constructor, or
  // the heterogeneous shapes. The scalar path builds the same vectors,
  // so both run one algorithm and the uniform case is unchanged.
  std::vector<unsigned> cap(devices, capacity_);
  std::vector<uint64_t> capb(devices, capacity_bytes_);
  if (!shapes_.empty()) {
    SGDRC_REQUIRE(shapes_.size() == devices,
                  "device shapes must list one capacity per device");
    for (DeviceId d = 0; d < devices; ++d) {
      cap[d] = shapes_[d].tpcs;
      capb[d] = shapes_[d].vram_bytes;
    }
  }
  unsigned cap_max = 0;
  uint64_t cb = 0;  // max byte bin; 0 = byte dimension disabled
  for (DeviceId d = 0; d < devices; ++d) {
    cap_max = std::max(cap_max, cap[d]);
    cb = std::max(cb, capb[d]);
  }
  SGDRC_REQUIRE(cap_max >= 1, "quota bin capacity must be positive");
  // A replica's expected VRAM footprint: its declared memory quota when
  // it has one, else its model's weight bytes (weights occupy VRAM when
  // resident whether or not the tenant reserved them).
  const auto demand_bytes = [&](size_t t) -> uint64_t {
    if (cb == 0) return 0;
    const auto& spec = tenants[t].spec;
    return spec.vgpu.memory_bytes ? spec.vgpu.memory_bytes
                                  : spec.model.weight_bytes();
  };
  // First-fit-decreasing over (guaranteed TPCs, VRAM bytes) — decreasing
  // in the dominant normalized dimension (against the biggest bin), the
  // classic vector-bin-packing reduction: place the biggest reservations
  // while every bin is still roomy, then balance the unguaranteed
  // tenants onto whatever headroom is left. With cb == 0 the key
  // degenerates to guaranteed TPCs and the order (ties included)
  // matches the TPC-only policy exactly.
  const auto sort_key = [&](size_t t) {
    const double g =
        static_cast<double>(tenants[t].spec.vgpu.guaranteed_tpcs) / cap_max;
    const double m =
        cb ? static_cast<double>(demand_bytes(t)) / static_cast<double>(cb)
           : 0.0;
    return std::max(g, m);
  };
  std::vector<size_t> order(tenants.size());
  for (size_t t = 0; t < order.size(); ++t) order[t] = t;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return sort_key(a) > sort_key(b);
  });

  std::vector<unsigned> reserved(devices, 0);  // guaranteed TPCs per bin
  std::vector<uint64_t> bytes(devices, 0);     // placed VRAM demand per bin
  std::vector<unsigned> count(devices, 0);     // replicas per bin
  Assignment out(tenants.size());
  for (const size_t t : order) {
    const unsigned g = tenants[t].spec.vgpu.guaranteed_tpcs;
    const uint64_t mb = cb ? tenants[t].spec.vgpu.memory_bytes : 0;
    const uint64_t db = demand_bytes(t);
    std::vector<bool> used(devices, false);
    for (unsigned r = 0; r < clamped_replicas(tenants[t], devices); ++r) {
      const auto headroom = [&](DeviceId x) {
        return cap[x] > reserved[x] ? cap[x] - reserved[x] : 0u;
      };
      const auto byte_headroom = [&](DeviceId x) {
        return capb[x] > bytes[x] ? capb[x] - bytes[x] : uint64_t{0};
      };
      DeviceId best = 0;
      bool have = false;
      if (g > 0 || mb > 0) {
        // First fit with room for the reservation in both dimensions.
        for (DeviceId d = 0; d < devices && !have; ++d) {
          if (!used[d] && reserved[d] + g <= cap[d] &&
              (cb == 0 || bytes[d] + db <= capb[d])) {
            best = d;
            have = true;
          }
        }
      }
      if (!have) {
        // Unguaranteed replicas — and guaranteed ones no bin can hold
        // (the device sim rejects truly overcommitted reservations at
        // add time, loudly) — go to the most unreserved TPC headroom,
        // breaking ties toward the most byte headroom, then the fewest
        // replicas, then the lowest id.
        for (DeviceId d = 0; d < devices; ++d) {
          if (used[d]) continue;
          if (!have || headroom(d) > headroom(best) ||
              (headroom(d) == headroom(best) &&
               (byte_headroom(d) > byte_headroom(best) ||
                (byte_headroom(d) == byte_headroom(best) &&
                 count[d] < count[best])))) {
            best = d;
            have = true;
          }
        }
      }
      SGDRC_CHECK(have, "quota placement found no device");
      used[best] = true;
      reserved[best] += g;
      bytes[best] += db;
      ++count[best];
      out[t].push_back(best);
    }
  }
  return out;
}

void validate_assignment(const Assignment& assignment,
                         const std::vector<FleetTenantSpec>& tenants,
                         unsigned devices) {
  SGDRC_REQUIRE(assignment.size() == tenants.size(),
                "assignment must cover every tenant");
  for (size_t t = 0; t < tenants.size(); ++t) {
    const auto& reps = assignment[t];
    SGDRC_REQUIRE(reps.size() ==
                      std::min<size_t>(tenants[t].replicas, devices),
                  "wrong replica count for tenant");
    std::vector<bool> seen(devices, false);
    for (const DeviceId d : reps) {
      SGDRC_REQUIRE(d < devices, "replica on an out-of-range device");
      SGDRC_REQUIRE(!seen[d], "two replicas of one tenant share a device");
      seen[d] = true;
    }
  }
}

}  // namespace sgdrc::fleet
