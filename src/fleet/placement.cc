#include "fleet/placement.h"

#include <algorithm>
#include <limits>

namespace sgdrc::fleet {

namespace {

unsigned clamped_replicas(const FleetTenantSpec& t, unsigned devices) {
  SGDRC_REQUIRE(t.replicas >= 1, "tenant needs at least one replica");
  return std::min(t.replicas, devices);
}

double derived_weight(const FleetTenantSpec& t) {
  if (t.weight > 0.0) return t.weight;
  return t.spec.qos == QosClass::kLatencySensitive
             ? static_cast<double>(t.spec.isolated_latency)
             : 1.0;
}

}  // namespace

Assignment SpreadPlacement::place(const std::vector<FleetTenantSpec>& tenants,
                                  unsigned devices) const {
  std::vector<unsigned> count(devices, 0);
  Assignment out(tenants.size());
  for (size_t t = 0; t < tenants.size(); ++t) {
    std::vector<bool> used(devices, false);
    for (unsigned r = 0; r < clamped_replicas(tenants[t], devices); ++r) {
      DeviceId best = 0;
      unsigned best_count = std::numeric_limits<unsigned>::max();
      for (DeviceId d = 0; d < devices; ++d) {
        if (!used[d] && count[d] < best_count) {
          best = d;
          best_count = count[d];
        }
      }
      used[best] = true;
      ++count[best];
      out[t].push_back(best);
    }
  }
  return out;
}

Assignment PackPlacement::place(const std::vector<FleetTenantSpec>& tenants,
                                unsigned devices) const {
  SGDRC_REQUIRE(per_device_ >= 1, "pack capacity must be positive");
  std::vector<unsigned> count(devices, 0);
  Assignment out(tenants.size());
  for (size_t t = 0; t < tenants.size(); ++t) {
    std::vector<bool> used(devices, false);
    for (unsigned r = 0; r < clamped_replicas(tenants[t], devices); ++r) {
      // First device with room; when every device is at capacity, fall
      // back to the least-loaded one (capacity is a preference, not an
      // admission limit — the fleet never rejects work).
      DeviceId best = 0;
      bool found = false;
      for (DeviceId d = 0; d < devices && !found; ++d) {
        if (!used[d] && count[d] < per_device_) {
          best = d;
          found = true;
        }
      }
      if (!found) {
        unsigned best_count = std::numeric_limits<unsigned>::max();
        for (DeviceId d = 0; d < devices; ++d) {
          if (!used[d] && count[d] < best_count) {
            best = d;
            best_count = count[d];
          }
        }
      }
      used[best] = true;
      ++count[best];
      out[t].push_back(best);
    }
  }
  return out;
}

Assignment QosAwarePlacement::place(
    const std::vector<FleetTenantSpec>& tenants, unsigned devices) const {
  std::vector<double> ls_load(devices, 0.0);
  std::vector<unsigned> be_count(devices, 0);
  Assignment out(tenants.size());
  // LS first so BE sees the final LS landscape regardless of spec order.
  for (const QosClass qos :
       {QosClass::kLatencySensitive, QosClass::kBestEffort}) {
    for (size_t t = 0; t < tenants.size(); ++t) {
      if (tenants[t].spec.qos != qos) continue;
      const double w = derived_weight(tenants[t]);
      std::vector<bool> used(devices, false);
      for (unsigned r = 0; r < clamped_replicas(tenants[t], devices); ++r) {
        DeviceId best = 0;
        bool have = false;
        for (DeviceId d = 0; d < devices; ++d) {
          if (used[d]) continue;
          if (!have) {
            best = d;
            have = true;
            continue;
          }
          const bool better =
              qos == QosClass::kLatencySensitive
                  ? ls_load[d] < ls_load[best] ||
                        (ls_load[d] == ls_load[best] &&
                         be_count[d] < be_count[best])
                  : be_count[d] < be_count[best] ||
                        (be_count[d] == be_count[best] &&
                         ls_load[d] < ls_load[best]);
          if (better) best = d;
        }
        used[best] = true;
        if (qos == QosClass::kLatencySensitive) {
          ls_load[best] += w;
        } else {
          ++be_count[best];
        }
        out[t].push_back(best);
      }
    }
  }
  return out;
}

Assignment QuotaAwarePlacement::place(
    const std::vector<FleetTenantSpec>& tenants, unsigned devices) const {
  SGDRC_REQUIRE(capacity_ >= 1, "quota bin capacity must be positive");
  const uint64_t cb = capacity_bytes_;  // 0 = byte dimension disabled
  // A replica's expected VRAM footprint: its declared memory quota when
  // it has one, else its model's weight bytes (weights occupy VRAM when
  // resident whether or not the tenant reserved them).
  const auto demand_bytes = [&](size_t t) -> uint64_t {
    if (cb == 0) return 0;
    const auto& spec = tenants[t].spec;
    return spec.vgpu.memory_bytes ? spec.vgpu.memory_bytes
                                  : spec.model.weight_bytes();
  };
  // First-fit-decreasing over (guaranteed TPCs, VRAM bytes) — decreasing
  // in the dominant normalized dimension, the classic vector-bin-packing
  // reduction: place the biggest reservations while every bin is still
  // roomy, then balance the unguaranteed tenants onto whatever headroom
  // is left. With cb == 0 the key degenerates to guaranteed TPCs and the
  // order (ties included) matches the TPC-only policy exactly.
  const auto sort_key = [&](size_t t) {
    const double g =
        static_cast<double>(tenants[t].spec.vgpu.guaranteed_tpcs) / capacity_;
    const double m =
        cb ? static_cast<double>(demand_bytes(t)) / static_cast<double>(cb)
           : 0.0;
    return std::max(g, m);
  };
  std::vector<size_t> order(tenants.size());
  for (size_t t = 0; t < order.size(); ++t) order[t] = t;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return sort_key(a) > sort_key(b);
  });

  std::vector<unsigned> reserved(devices, 0);  // guaranteed TPCs per bin
  std::vector<uint64_t> bytes(devices, 0);     // placed VRAM demand per bin
  std::vector<unsigned> count(devices, 0);     // replicas per bin
  Assignment out(tenants.size());
  for (const size_t t : order) {
    const unsigned g = tenants[t].spec.vgpu.guaranteed_tpcs;
    const uint64_t mb = cb ? tenants[t].spec.vgpu.memory_bytes : 0;
    const uint64_t db = demand_bytes(t);
    std::vector<bool> used(devices, false);
    for (unsigned r = 0; r < clamped_replicas(tenants[t], devices); ++r) {
      const auto headroom = [&](DeviceId x) {
        return capacity_ > reserved[x] ? capacity_ - reserved[x] : 0u;
      };
      const auto byte_headroom = [&](DeviceId x) {
        return cb > bytes[x] ? cb - bytes[x] : uint64_t{0};
      };
      DeviceId best = 0;
      bool have = false;
      if (g > 0 || mb > 0) {
        // First fit with room for the reservation in both dimensions.
        for (DeviceId d = 0; d < devices && !have; ++d) {
          if (!used[d] && reserved[d] + g <= capacity_ &&
              (cb == 0 || bytes[d] + db <= cb)) {
            best = d;
            have = true;
          }
        }
      }
      if (!have) {
        // Unguaranteed replicas — and guaranteed ones no bin can hold
        // (the device sim rejects truly overcommitted reservations at
        // add time, loudly) — go to the most unreserved TPC headroom,
        // breaking ties toward the most byte headroom, then the fewest
        // replicas, then the lowest id.
        for (DeviceId d = 0; d < devices; ++d) {
          if (used[d]) continue;
          if (!have || headroom(d) > headroom(best) ||
              (headroom(d) == headroom(best) &&
               (byte_headroom(d) > byte_headroom(best) ||
                (byte_headroom(d) == byte_headroom(best) &&
                 count[d] < count[best])))) {
            best = d;
            have = true;
          }
        }
      }
      SGDRC_CHECK(have, "quota placement found no device");
      used[best] = true;
      reserved[best] += g;
      bytes[best] += db;
      ++count[best];
      out[t].push_back(best);
    }
  }
  return out;
}

void validate_assignment(const Assignment& assignment,
                         const std::vector<FleetTenantSpec>& tenants,
                         unsigned devices) {
  SGDRC_REQUIRE(assignment.size() == tenants.size(),
                "assignment must cover every tenant");
  for (size_t t = 0; t < tenants.size(); ++t) {
    const auto& reps = assignment[t];
    SGDRC_REQUIRE(reps.size() ==
                      std::min<size_t>(tenants[t].replicas, devices),
                  "wrong replica count for tenant");
    std::vector<bool> seen(devices, false);
    for (const DeviceId d : reps) {
      SGDRC_REQUIRE(d < devices, "replica on an out-of-range device");
      SGDRC_REQUIRE(!seen[d], "two replicas of one tenant share a device");
      seen[d] = true;
    }
  }
}

}  // namespace sgdrc::fleet
