#include "fleet/router.h"

#include "fleet/fleet.h"

namespace sgdrc::fleet {

size_t RoundRobinRouter::route(const FleetSim& fleet, unsigned tenant,
                               const std::vector<Replica>& replicas) {
  (void)fleet;
  if (tenant >= next_.size()) next_.resize(tenant + 1, 0);  // churned in
  const size_t pick = next_[tenant] % replicas.size();
  next_[tenant] = pick + 1;
  return pick;
}

size_t LeastOutstandingRouter::route(const FleetSim& fleet, unsigned tenant,
                                     const std::vector<Replica>& replicas) {
  (void)tenant;
  size_t best = 0;
  size_t best_load = fleet.outstanding(replicas[0]);
  for (size_t i = 1; i < replicas.size(); ++i) {
    const size_t load = fleet.outstanding(replicas[i]);
    if (load < best_load) {
      best = i;
      best_load = load;
    }
  }
  return best;
}

size_t QosLoadAwareRouter::route(const FleetSim& fleet, unsigned tenant,
                                 const std::vector<Replica>& replicas) {
  (void)tenant;
  size_t best = 0;
  double best_load = fleet.device_ls_load(replicas[0].device);
  for (size_t i = 1; i < replicas.size(); ++i) {
    const double load = fleet.device_ls_load(replicas[i].device);
    if (load < best_load) {
      best = i;
      best_load = load;
    }
  }
  return best;
}

}  // namespace sgdrc::fleet
