#include "fleet/router.h"

#include "fleet/fleet.h"

namespace sgdrc::fleet {

size_t RoundRobinRouter::route(const FleetSim& fleet, unsigned tenant,
                               const std::vector<Replica>& replicas) {
  (void)fleet;
  if (tenant >= next_.size()) next_.resize(tenant + 1, 0);  // churned in
  const size_t pick = next_[tenant] % replicas.size();
  next_[tenant] = pick + 1;
  return pick;
}

namespace {

/// Scan replicas starting at a rotated offset and keep the first strict
/// minimum. Unequal loads pick the same replica regardless of offset;
/// ties resolve to a different replica each call instead of hot-spotting
/// the lowest index (device 0 under pack placement, every startup).
template <typename LoadFn>
size_t rotated_min(std::vector<size_t>& cursor, unsigned tenant,
                   size_t replicas, LoadFn load) {
  if (tenant >= cursor.size()) cursor.resize(tenant + 1, 0);  // churned in
  const size_t start = cursor[tenant]++ % replicas;
  size_t best = start;
  auto best_load = load(start);
  for (size_t i = 1; i < replicas; ++i) {
    const size_t idx = (start + i) % replicas;
    const auto l = load(idx);
    if (l < best_load) {
      best = idx;
      best_load = l;
    }
  }
  return best;
}

}  // namespace

// Heterogeneity: every load-aware router divides its load signal by
// FleetSim::device_perf, so a device with 2x the capacity looks
// half-loaded at equal queue depth and earns proportionally more work.
// device_perf is exactly 1.0 on homogeneous fleets — dividing integer
// loads (exactly representable as doubles) by 1.0 is exact, so the
// comparisons, ties, and tie-break rotation reproduce the homogeneous
// decisions bit-for-bit.

size_t LeastOutstandingRouter::route(const FleetSim& fleet, unsigned tenant,
                                     const std::vector<Replica>& replicas) {
  return rotated_min(cursor_, tenant, replicas.size(), [&](size_t i) {
    return static_cast<double>(fleet.outstanding(replicas[i])) /
           fleet.device_perf(replicas[i].device);
  });
}

size_t QosLoadAwareRouter::route(const FleetSim& fleet, unsigned tenant,
                                 const std::vector<Replica>& replicas) {
  return rotated_min(cursor_, tenant, replicas.size(), [&](size_t i) {
    return fleet.device_ls_load(replicas[i].device) /
           fleet.device_perf(replicas[i].device);
  });
}

size_t WarmWeightRouter::route(const FleetSim& fleet, unsigned tenant,
                               const std::vector<Replica>& replicas) {
  return rotated_min(cursor_, tenant, replicas.size(), [&](size_t i) {
    size_t penalty = 0;
    switch (fleet.replica_residency(replicas[i])) {
      case memory::Residency::kWarm:
      case memory::Residency::kUnmodeled:
        break;
      case memory::Residency::kLoading:
        penalty = cold_penalty_ / 2;  // weights land shortly
        break;
      case memory::Residency::kCold:
      case memory::Residency::kPaged:
        penalty = cold_penalty_;
        break;
    }
    return static_cast<double>(fleet.outstanding(replicas[i]) + penalty) /
           fleet.device_perf(replicas[i].device);
  });
}

}  // namespace sgdrc::fleet
