// The fleet's overload front door: the admission layer between "a
// request arrived" and "the router picked a replica". Three levers,
// applied in QoS order so the fleet degrades by class instead of by
// unbounded queueing when offered load exceeds capacity:
//
//   1. Admission control — a per-service token bucket (admit_rate
//      tokens/s, admit_burst deep). Requests that find an empty bucket
//      are REJECTED at the door, before they cost the fleet anything.
//   2. Load shedding — when the fleet-wide LS queue exceeds
//      be_pause_depth, every device pauses its best-effort loops (BE
//      sheds first); when it exceeds shed_depth, LS requests are SHED
//      lowest vgpu-priority first: a service at priority p only sheds
//      once the queue passes shed_depth x (p + 1), so premium
//      attainment degrades last.
//   3. Retry storms — rejected and shed requests are not silently
//      dropped: clients re-arrive with exponential backoff
//      (retry_backoff doubling per attempt, plus jitter) up to
//      max_retries times, then give up (DROPPED). This models the
//      thundering herd a real overload produces.
//
// Determinism: the door's only randomness is retry jitter, drawn from a
// dedicated stream seeded off the fleet seed (splitmix64 salt — see
// docs/determinism.md). Every queue-depth read happens inside a
// dispatch or control event, where the engine has already barriered the
// device shards, so serial and parallel runs read identical state and
// stay bit-identical. With the door disabled (the default) the dispatch
// path is byte-for-byte the pre-front-door one.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/sim_time.h"

namespace sgdrc::fleet {

class FleetSim;

struct FrontDoorConfig {
  /// Master switch. Off (the default) = requests go straight to the
  /// router and every counter stays zero.
  bool enabled = false;
  /// Token-bucket admission per LS service: sustained tokens/s and
  /// bucket depth. 0 rate = unlimited (no admission control).
  double admit_rate = 0.0;
  double admit_burst = 16.0;
  /// Fleet-wide LS queue depth (Σ outstanding over every active LS
  /// replica) that pauses best-effort work on every device; BE resumes
  /// (with hysteresis) once the queue drains to half this. 0 = never.
  size_t be_pause_depth = 0;
  /// Queue depth at which LS requests shed, scaled by vgpu priority: a
  /// service at priority p sheds when the queue reaches
  /// shed_depth x (p + 1). 0 = never shed.
  size_t shed_depth = 0;
  /// Client retry model for rejected/shed requests: up to max_retries
  /// re-arrivals, backoff doubling from retry_backoff per attempt plus
  /// an exponential jitter tail (mean retry_jitter). 0 retries =
  /// clients give up immediately.
  unsigned max_retries = 0;
  TimeNs retry_backoff = 5 * kNsPerMs;
  TimeNs retry_jitter = kNsPerMs;
  /// Cadence of the control-tier overload tick that re-evaluates BE
  /// pause/resume even when no requests arrive (so a drained queue
  /// always resumes BE). 0 = only re-evaluate on arrivals.
  TimeNs tick_interval = kNsPerMs;
};

/// Door accounting. Conservation (conformance-tested): every
/// first-attempt arrival terminates as admitted or dropped, or sits in
/// a scheduled retry at the horizon:
///     arrived == admitted + dropped + pending_retries
/// and every admitted request reaches a device unless its dispatch hop
/// landed past the horizon:
///     admitted == Σ device arrivals + expired.
/// rejected/shed are per-attempt event counts (one request may be
/// rejected several times before admission), not terminal outcomes.
struct FrontDoorMetrics {
  uint64_t arrived = 0;
  uint64_t admitted = 0;
  uint64_t rejected = 0;
  uint64_t shed = 0;
  uint64_t retries = 0;
  uint64_t dropped = 0;
  uint64_t expired = 0;
  uint64_t pending_retries = 0;
  uint64_t be_pause_events = 0;
  TimeNs be_paused_ns = 0;
  // Per LS service (trace service order), for the QoS-ordered
  // degradation gate: shed fractions must fall as priority rises.
  std::vector<uint64_t> arrived_by_service;
  std::vector<uint64_t> admitted_by_service;
  std::vector<uint64_t> rejected_by_service;
  std::vector<uint64_t> shed_by_service;
  std::vector<uint64_t> dropped_by_service;
};

/// Owned by FleetSim; every method runs inside a fleet dispatch or
/// control event (never concurrently — device shards cannot reach it).
class FrontDoor {
 public:
  FrontDoor(const FrontDoorConfig& cfg, uint64_t fleet_seed);

  enum class Decision { kAdmit, kReject, kShed };

  const FrontDoorConfig& config() const { return cfg_; }
  const FrontDoorMetrics& metrics() const { return m_; }

  /// Count a first-attempt arrival for `service`.
  void note_arrival(unsigned service);
  /// Run the levers for one request attempt: refill + charge the token
  /// bucket, evaluate BE pause/resume, apply the priority-scaled shed
  /// rule. `now` is the attempt's arrival instant.
  Decision admit(FleetSim& fleet, unsigned service, TimeNs now);
  /// A routable-replica check failed (device failure / departure):
  /// count the attempt as shed.
  void note_unroutable(unsigned service);
  /// An admitted request's dispatch hop landed past the horizon.
  void note_expired() { ++m_.expired; }
  /// Bookkeeping for the retry lifecycle.
  void note_retry_scheduled() { ++m_.retries; ++m_.pending_retries; }
  void note_retry_fired() { --m_.pending_retries; }
  void note_dropped(unsigned service);
  /// Backoff before retry number `attempt` (0-based): base << attempt
  /// plus jitter from the door's dedicated RNG stream.
  TimeNs retry_delay(unsigned attempt);
  /// Control-tier tick: re-evaluate BE pause/resume from live queue
  /// depth (arrivals also re-evaluate; the tick guarantees resume when
  /// arrivals stop).
  void tick(FleetSim& fleet, TimeNs now);
  /// Close the books at end of run (accrue a still-open BE pause).
  void finalize(TimeNs duration);

 private:
  struct Bucket {
    double tokens;
    TimeNs last = 0;
  };
  void ensure_service(unsigned service);
  void maybe_pause(FleetSim& fleet, size_t depth, TimeNs now);

  FrontDoorConfig cfg_;
  Rng rng_;
  FrontDoorMetrics m_;
  std::vector<Bucket> buckets_;  // per LS service
  bool paused_ = false;
  TimeNs paused_since_ = 0;
};

}  // namespace sgdrc::fleet
