#include "fleet/fleet.h"

#include <algorithm>
#include <cmath>

namespace sgdrc::fleet {

using workload::Request;
using workload::TenantMetrics;

FleetSim::FleetSim(FleetConfig cfg, std::vector<FleetTenantSpec> tenants,
                   const PlacementPolicy& placement, Router& router,
                   const PolicyFactory& make_policy)
    : cfg_(std::move(cfg)), tenants_(std::move(tenants)), router_(router) {
  SGDRC_REQUIRE(cfg_.devices >= 1, "fleet needs at least one device");
  SGDRC_REQUIRE(!tenants_.empty(), "fleet needs at least one tenant");
  SGDRC_REQUIRE(make_policy != nullptr, "fleet needs a policy factory");

  assignment_ = placement.place(tenants_, cfg_.devices);
  validate_assignment(assignment_, tenants_, cfg_.devices);

  std::vector<std::vector<core::TenantSpec>> per_device(cfg_.devices);
  replicas_.resize(tenants_.size());
  for (unsigned t = 0; t < tenants_.size(); ++t) {
    if (tenants_[t].spec.qos == QosClass::kLatencySensitive) {
      ls_fleet_tenants_.push_back(t);
    }
    for (const DeviceId d : assignment_[t]) {
      replicas_[t].push_back(
          {d, static_cast<workload::TenantId>(per_device[d].size())});
      per_device[d].push_back(tenants_[t].spec);
    }
  }

  policies_.resize(cfg_.devices);
  devices_.resize(cfg_.devices);
  for (DeviceId d = 0; d < cfg_.devices; ++d) {
    if (per_device[d].empty()) continue;  // idled by pack placement
    core::ServingConfig scfg;
    scfg.spec = cfg_.spec;
    scfg.exec_params = cfg_.exec_params;
    scfg.ls_instances = cfg_.ls_instances;
    scfg.duration = cfg_.duration;
    scfg.slo_multiplier = cfg_.slo_multiplier;
    scfg.be_mode = cfg_.be_mode;
    scfg.seed = device_seed(cfg_.seed, d);
    policies_[d] = make_policy(cfg_.spec);
    devices_[d] = std::make_unique<core::ServingSim>(
        queue_, std::move(scfg), per_device[d], *policies_[d]);
  }
}

const core::ServingSim& FleetSim::device(DeviceId d) const {
  SGDRC_REQUIRE(d < devices_.size() && devices_[d] != nullptr,
                "no sim on this device (idle under pack placement)");
  return *devices_[d];
}

double FleetSim::device_ls_load(DeviceId d) const {
  const core::ServingSim& sim = device(d);
  double load = 0.0;
  for (workload::TenantId t = 0; t < sim.tenant_count(); ++t) {
    const core::TenantSpec& spec = sim.tenant(t);
    if (spec.qos != QosClass::kLatencySensitive) continue;
    load += static_cast<double>(sim.outstanding(t)) *
            static_cast<double>(spec.isolated_latency);
  }
  return load;
}

FleetMetrics FleetSim::run(const std::vector<Request>& trace) {
  router_.reset(tenants_.size());
  routed_.assign(cfg_.devices, 0);
  for (auto& dev : devices_) {
    if (dev) dev->begin();
  }
  for (const Request& r : trace) {
    SGDRC_REQUIRE(r.service < ls_fleet_tenants_.size(),
                  "request for unknown fleet service");
    if (r.arrival >= cfg_.duration) continue;
    queue_.schedule_at(r.arrival, [this, r] { dispatch(r); });
  }
  queue_.run_until(cfg_.duration);

  FleetMetrics out;
  out.duration = cfg_.duration;
  out.routed = routed_;
  for (auto& dev : devices_) {
    if (dev) {
      out.devices.push_back(dev->finish());
    } else {
      // Idle device (pack placement): no tenants, but a real duration so
      // its rate accessors stay finite.
      workload::ServingMetrics idle;
      idle.duration = cfg_.duration;
      out.devices.push_back(std::move(idle));
    }
  }
  for (unsigned t = 0; t < tenants_.size(); ++t) {
    const auto& reps = replicas_[t];
    const TenantMetrics& first =
        out.devices[reps.front().device].tenants[reps.front().local_tenant];
    TenantMetrics m;
    m.id = t;
    m.qos = first.qos;
    m.name = first.name;
    m.letter = first.letter;
    m.isolated_p99 = first.isolated_p99;
    m.slo = first.slo;
    m.batch = first.batch;
    m.kernels_per_batch = first.kernels_per_batch;
    for (const Replica& r : reps) {
      m.absorb(out.devices[r.device].tenants[r.local_tenant]);
    }
    out.tenants.push_back(std::move(m));
  }
  return out;
}

void FleetSim::dispatch(const Request& r) {
  const unsigned ft = ls_fleet_tenants_[r.service];
  const auto& reps = replicas_[ft];
  const size_t pick = router_.route(*this, ft, reps);
  SGDRC_CHECK(pick < reps.size(), "router picked an invalid replica");
  const Replica rep = reps[pick];
  core::ServingSim& sim = *devices_[rep.device];
  TimeNs delay = cfg_.dispatch_latency;
  if (cfg_.dispatch_jitter > 0) {
    delay += static_cast<TimeNs>(sim.rng().exponential(
        1.0 / static_cast<double>(cfg_.dispatch_jitter)));
  }
  // A hop that lands past the measurement window never reaches a device;
  // dropping it here keeps routed == Σ arrived exact.
  if (r.arrival + delay >= cfg_.duration) return;
  ++routed_[rep.device];
  if (delay == 0) {
    sim.inject(rep.local_tenant, r.arrival);
  } else {
    // Latency still counts from the fleet arrival: the dispatch hop is
    // part of what the user waits for.
    queue_.schedule_at(r.arrival + delay, [this, rep, r] {
      devices_[rep.device]->inject(rep.local_tenant, r.arrival);
    });
  }
}

// ---------------------------------------------------------- metrics ----

double FleetMetrics::ls_goodput() const {
  return workload::ls_goodput(tenants, duration);
}

double FleetMetrics::be_throughput() const {
  return workload::be_throughput(tenants, duration);
}

double FleetMetrics::mean_attainment() const {
  return workload::mean_attainment(tenants);
}

double FleetMetrics::fleet_p99_ms() const {
  Samples all;
  for (const auto& m : tenants) {
    if (m.qos == QosClass::kLatencySensitive) all.add_all(m.latency);
  }
  return all.empty() ? 0.0 : to_ms(static_cast<TimeNs>(all.p99()));
}

double FleetMetrics::routed_mean() const {
  if (routed.empty()) return 0.0;
  uint64_t total = 0;
  for (const uint64_t r : routed) total += r;
  return static_cast<double>(total) / static_cast<double>(routed.size());
}

double FleetMetrics::imbalance_cv() const {
  const double mean = routed_mean();
  if (mean <= 0.0) return 0.0;
  double var = 0.0;
  for (const uint64_t r : routed) {
    const double d = static_cast<double>(r) - mean;
    var += d * d;
  }
  var /= static_cast<double>(routed.size());
  return std::sqrt(var) / mean;
}

double FleetMetrics::imbalance_max_over_mean() const {
  const double mean = routed_mean();
  if (mean <= 0.0) return 1.0;
  const uint64_t hottest = *std::max_element(routed.begin(), routed.end());
  return static_cast<double>(hottest) / mean;
}

}  // namespace sgdrc::fleet
