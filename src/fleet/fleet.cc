#include "fleet/fleet.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <thread>

namespace sgdrc::fleet {

using workload::Request;
using workload::TenantMetrics;

FleetSim::FleetSim(FleetConfig cfg, std::vector<FleetTenantSpec> tenants,
                   const PlacementPolicy& placement, Router& router,
                   const ControllerFactory& make_policy)
    : cfg_(std::move(cfg)),
      tenants_(std::move(tenants)),
      router_(router),
      make_policy_(make_policy) {
  SGDRC_REQUIRE(cfg_.devices >= 1, "fleet needs at least one device");
  SGDRC_REQUIRE(!tenants_.empty(), "fleet needs at least one tenant");
  SGDRC_REQUIRE(make_policy != nullptr, "fleet needs a policy factory");
  SGDRC_REQUIRE(cfg_.device_specs.empty() ||
                    cfg_.device_specs.size() == cfg_.devices,
                "device_specs must be empty (homogeneous) or list one "
                "spec per device");
  failed_.assign(cfg_.devices, 0);
  if (cfg_.front_door.enabled) {
    front_door_ = std::make_unique<FrontDoor>(cfg_.front_door, cfg_.seed);
  }

  assignment_ = placement.place(tenants_, cfg_.devices);
  validate_assignment(assignment_, tenants_, cfg_.devices);

  std::vector<std::vector<core::TenantSpec>> per_device(cfg_.devices);
  replicas_.resize(tenants_.size());
  retired_.resize(tenants_.size());
  for (unsigned t = 0; t < tenants_.size(); ++t) {
    if (tenants_[t].spec.qos == QosClass::kLatencySensitive) {
      ls_fleet_tenants_.push_back(t);
    }
    for (const DeviceId d : assignment_[t]) {
      replicas_[t].push_back(
          {d, static_cast<workload::TenantId>(per_device[d].size())});
      per_device[d].push_back(tenants_[t].spec);
    }
  }

  shards_.reserve(cfg_.devices);
  for (DeviceId d = 0; d < cfg_.devices; ++d) {
    shards_.push_back(std::make_unique<EventQueue>());
  }
  policies_.resize(cfg_.devices);
  devices_.resize(cfg_.devices);
  for (DeviceId d = 0; d < cfg_.devices; ++d) {
    if (per_device[d].empty()) continue;  // idled by pack placement
    policies_[d] = make_policy_(device_spec(d));
    devices_[d] = core::ServingSimBuilder()
                      .config(device_config(d))
                      .tenants(per_device[d])
                      .build(*shards_[d], *policies_[d]);
  }

  if (cfg_.engine.parallel && cfg_.devices > 1) {
    size_t threads = cfg_.engine.threads
                         ? cfg_.engine.threads
                         : std::max(1u, std::thread::hardware_concurrency());
    pool_ = std::make_unique<ThreadPool>(
        std::min<size_t>(threads, cfg_.devices));
  }
}

const gpusim::GpuSpec& FleetSim::device_spec(DeviceId d) const {
  SGDRC_REQUIRE(d < cfg_.devices, "device out of range");
  return cfg_.device_specs.empty() ? cfg_.spec : cfg_.device_specs[d];
}

double FleetSim::device_perf(DeviceId d) const {
  if (cfg_.device_specs.empty()) return 1.0;  // exact: homogeneous
  return relative_perf(device_spec(d), cfg_.spec);
}

core::ServingConfig FleetSim::device_config(DeviceId d) const {
  core::ServingConfig scfg;
  scfg.spec = device_spec(d);
  scfg.exec_params = cfg_.exec_params;
  scfg.ls_instances = cfg_.ls_instances;
  scfg.duration = cfg_.duration;
  scfg.slo_multiplier = cfg_.slo_multiplier;
  scfg.be_mode = cfg_.be_mode;
  scfg.seed = device_seed(cfg_.seed, d);
  scfg.memory = cfg_.memory;
  return scfg;
}

core::ServingSim& FleetSim::ensure_device(DeviceId d) {
  SGDRC_REQUIRE(d < devices_.size(), "device out of range");
  SGDRC_REQUIRE(!failed_[d], "cannot place replicas on a failed device");
  if (!devices_[d]) {
    // A zero-tenant sim cannot derive the SLO multiplier from its
    // co-residency (there is none yet); without an explicit n its
    // replicas would get far tighter SLOs than their siblings.
    SGDRC_REQUIRE(cfg_.slo_multiplier > 0.0,
                  "placing replicas on an idle device needs an explicit "
                  "FleetConfig::slo_multiplier");
    // Brought up mid-run (pack placement idled it at construction). Its
    // shard already exists and sits on the fleet frontier — barriers
    // advance every shard's clock, sims or not — so the new sim's first
    // events land at >= now() like any sibling's.
    policies_[d] = make_policy_(device_spec(d));
    devices_[d] = core::ServingSimBuilder()
                      .config(device_config(d))
                      .build(*shards_[d], *policies_[d]);
    if (begun_) devices_[d]->begin();
    // A device brought up during an overload inherits the current BE
    // pause state, like its long-lived siblings.
    if (front_door_ && device_be_paused_) devices_[d]->set_be_paused(true);
  }
  return *devices_[d];
}

const core::ServingSim& FleetSim::device(DeviceId d) const {
  SGDRC_REQUIRE(d < devices_.size() && devices_[d] != nullptr,
                "no sim on this device (idle under pack placement)");
  return *devices_[d];
}

size_t FleetSim::fleet_ls_queue_depth() const {
  size_t depth = 0;
  for (const unsigned ft : ls_fleet_tenants_) {
    for (const Replica& r : replicas_[ft]) depth += outstanding(r);
  }
  return depth;
}

void FleetSim::set_be_paused(bool paused) {
  if (device_be_paused_ == paused) return;
  device_be_paused_ = paused;
  for (auto& dev : devices_) {
    if (dev) dev->set_be_paused(paused);
  }
}

void FleetSim::fail_device(DeviceId device) {
  SGDRC_REQUIRE(device < cfg_.devices, "device out of range");
  if (failed_[device]) return;
  failed_[device] = 1;
  // Cordon-and-drain: each replica retires through the normal removal
  // path, so admitted work completes and its history survives. Nothing
  // new routes here — replicas_of() no longer lists this device.
  std::vector<unsigned> stranded;  // lost their ONLY replica here
  for (unsigned t = 0; t < tenants_.size(); ++t) {
    const auto& reps = replicas_[t];
    if (std::any_of(reps.begin(), reps.end(),
                    [&](const Replica& r) { return r.device == device; })) {
      remove_replica(t, device);
      if (reps.empty()) stranded.push_back(t);
    }
  }
  // Recovery: a tenant whose only replica was here gets rescheduled
  // onto the least-loaded eligible survivor (what an orchestrator does
  // when a node dies), so its traffic stays routable. Eligibility
  // mirrors the autoscaler: never a failed device, and never a sim-less
  // one unless the fleet carries an explicit SLO multiplier. When no
  // device qualifies the tenant stays unroutable — the front door sheds
  // its requests, or dispatch fails loudly without one.
  for (const unsigned t : stranded) {
    bool have = false;
    DeviceId best = 0;
    double best_load = 0.0;
    for (DeviceId d = 0; d < cfg_.devices; ++d) {
      if (failed_[d]) continue;
      if (!devices_[d] && cfg_.slo_multiplier <= 0.0) continue;
      const double load = device_ls_load(d) / device_perf(d);
      if (!have || load < best_load) {
        have = true;
        best = d;
        best_load = load;
      }
    }
    if (have) add_replica(t, best);
  }
}

double FleetSim::device_ls_load(DeviceId d) const {
  SGDRC_REQUIRE(d < devices_.size(), "device out of range");
  if (!devices_[d]) return 0.0;
  const core::ServingSim& sim = *devices_[d];
  double load = 0.0;
  for (workload::TenantId t = 0; t < sim.tenant_count(); ++t) {
    const core::TenantSpec& spec = sim.tenant(t);
    if (spec.qos != QosClass::kLatencySensitive) continue;
    load += static_cast<double>(sim.outstanding(t)) *
            static_cast<double>(spec.isolated_latency);
  }
  return load;
}

FleetMetrics FleetSim::run(const std::vector<Request>& trace) {
  begin();
  for (const Request& r : trace) {
    SGDRC_REQUIRE(r.service < ls_fleet_tenants_.size(),
                  "request for unknown fleet service");
    if (r.arrival >= cfg_.duration) continue;
    dispatch_.schedule_at(r.arrival, [this, r] { dispatch(r); });
  }
  run_until(cfg_.duration);
  return finish();
}

void FleetSim::begin() {
  SGDRC_REQUIRE(!begun_, "fleet already began");
  begun_ = true;
  router_.reset(tenants_.size());
  routed_.assign(cfg_.devices, 0);
  for (auto& dev : devices_) {
    if (dev) dev->begin();
  }
  // The overload tick re-evaluates BE pause/resume on the control tier
  // even when arrivals stop, so a drained queue always resumes BE.
  if (front_door_ && cfg_.front_door.tick_interval > 0 &&
      cfg_.front_door.be_pause_depth > 0) {
    front_door_tick(cfg_.front_door.tick_interval);
  }
}

void FleetSim::front_door_tick(TimeNs t) {
  if (t >= cfg_.duration) return;
  at(t, [this, t] {
    front_door_->tick(*this, t);
    front_door_tick(t + cfg_.front_door.tick_interval);
  });
}

void FleetSim::inject(unsigned service, TimeNs arrival) {
  SGDRC_REQUIRE(service < ls_fleet_tenants_.size(),
                "inject for unknown fleet service");
  dispatch({arrival, service});
}

void FleetSim::at(TimeNs t, std::function<void()> fn) {
  control_.schedule_at(t, std::move(fn));
}

// The conservative windowed engine. Canonical order at equal
// timestamps: control actions, then dispatches, then device-shard
// events (docs/determinism.md) — ties across *device* shards never
// matter because shards share no state. Each iteration picks the next
// fleet event at or before `t`, barriers every shard up to it
// (exclusive, so same-time device events take their turn after the
// fleet tier), fires it, and repeats; with a blind router and a
// positive dispatch hop, runs of dispatches coalesce into one window —
// the lookahead that makes the parallel barrier coarse enough to pay.
size_t FleetSim::run_until(TimeNs t) {
  size_t fired = 0;
  // The front door reads live queue depths at every dispatch, so its
  // presence forces the state-reading barrier path just like a
  // state-reading router would.
  const bool coalesce = !router_.reads_device_state() &&
                        cfg_.dispatch_latency > 0 && !front_door_;
  // "No event at or before t" sentinel; real timestamps never reach it.
  static constexpr TimeNs kNone = std::numeric_limits<TimeNs>::max();
  const auto next_in = [](EventQueue& q) {
    return q.peek_next_time().value_or(kNone);
  };
  for (;;) {
    TimeNs tc = next_in(control_);
    TimeNs td = next_in(dispatch_);
    if (tc > t) tc = kNone;
    if (td > t) td = kNone;
    if (tc != kNone && tc <= td) {
      fired += advance_shards(tc, /*inclusive=*/false);
      // Drain every control action at this instant, cascades included
      // (an autoscaler tick scheduling a same-time follow-up).
      while (next_in(control_) <= tc) {
        control_.run_next();
        ++fired;
      }
      continue;
    }
    if (td == kNone) break;
    if (coalesce) {
      // Blind-router window: route() reads no device state and every
      // injection lands at least one dispatch hop in the future, so a
      // whole run of dispatches (up to the next control action) fires
      // with the shards still behind — they catch up at the next
      // barrier and replay the injections in timestamp order.
      for (;;) {
        const TimeNs next = next_in(dispatch_);
        if (next > t || next >= tc) break;
        dispatch_.run_next();
        ++fired;
      }
    } else {
      // The router inspects live device state: barrier the shards up
      // to this dispatch instant so it reads a consistent fleet.
      fired += advance_shards(td, /*inclusive=*/false);
      while (next_in(dispatch_) <= td) {
        dispatch_.run_next();
        ++fired;
      }
    }
  }
  // No fleet event remains at or before t: close the window — shards
  // run to t inclusive and every clock lands on t.
  fired += advance_shards(t, /*inclusive=*/true);
  if (control_.now() < t) control_.advance_to(t);
  if (dispatch_.now() < t) dispatch_.advance_to(t);
  events_ += fired;
  return fired;
}

size_t FleetSim::advance_shards(TimeNs t, bool inclusive) {
  // Even an idle or sim-less shard advances its clock, so control
  // actions and inline injections behind the barrier see a consistent
  // device now().
  if (!pool_) {
    size_t fired = 0;
    for (DeviceId d = 0; d < shards_.size(); ++d) {
      if (devices_[d]) {
        fired += inclusive ? devices_[d]->run_shard_until(t)
                           : devices_[d]->run_shard_until_before(t);
      } else if (shards_[d]->now() < t) {
        shards_[d]->advance_to(t);
      }
    }
    return fired;
  }
  // Parallel window: workers wake once (the pool's condition variable —
  // readiness events, not polling) and claim shard indices from a
  // shared cursor until none remain. Shards are mutually independent,
  // so any interleaving yields the same result as the serial loop; the
  // pool's submit/wait_idle pair is the happens-before on either side
  // of the window. Each run_shard_until* call claims the sim's
  // ShardGuard, so with SGDRC_DEBUG_OWNERSHIP=1 any second thread
  // touching a claimed shard mid-window aborts with both thread ids.
  std::atomic<size_t> next{0};
  std::atomic<size_t> fired{0};
  pool_->parallel_for(std::min(pool_->size(), shards_.size()),
                      [&](size_t) {
                        size_t local = 0;
                        for (;;) {
                          const size_t d =
                              next.fetch_add(1, std::memory_order_relaxed);
                          if (d >= shards_.size()) break;
                          if (devices_[d]) {
                            local += inclusive
                                         ? devices_[d]->run_shard_until(t)
                                         : devices_[d]->run_shard_until_before(
                                               t);
                          } else if (shards_[d]->now() < t) {
                            shards_[d]->advance_to(t);
                          }
                        }
                        fired.fetch_add(local, std::memory_order_relaxed);
                      });
  return fired.load();
}

FleetMetrics FleetSim::finish() {
  FleetMetrics out;
  out.duration = cfg_.duration;
  out.events = events_;
  out.routed = routed_;
  if (front_door_) {
    front_door_->finalize(cfg_.duration);
    out.front_door = front_door_->metrics();
  }
  for (auto& dev : devices_) {
    if (dev) {
      out.devices.push_back(dev->finish());
    } else {
      // Idle device (pack placement): no tenants, but a real duration so
      // its rate accessors stay finite.
      workload::ServingMetrics idle;
      idle.duration = cfg_.duration;
      out.devices.push_back(std::move(idle));
    }
  }
  for (unsigned t = 0; t < tenants_.size(); ++t) {
    // Active replicas first, then retired ones: a churned tenant keeps
    // every request it ever served in its merged history.
    std::vector<Replica> reps = replicas_[t];
    reps.insert(reps.end(), retired_[t].begin(), retired_[t].end());
    SGDRC_CHECK(!reps.empty(), "fleet tenant never had a replica");
    const TenantMetrics& first =
        out.devices[reps.front().device].tenants[reps.front().local_tenant];
    TenantMetrics m;
    m.id = t;
    m.qos = first.qos;
    m.name = first.name;
    m.letter = first.letter;
    m.isolated_p99 = first.isolated_p99;
    m.slo = first.slo;
    m.batch = first.batch;
    m.kernels_per_batch = first.kernels_per_batch;
    for (const Replica& r : reps) {
      m.absorb(out.devices[r.device].tenants[r.local_tenant]);
    }
    out.tenants.push_back(std::move(m));
  }
  return out;
}

// ------------------------------------------- runtime rescale / churn ----

unsigned FleetSim::add_fleet_tenant(FleetTenantSpec spec,
                                    const PlacementPolicy& placement) {
  tenants_.push_back(std::move(spec));
  replicas_.emplace_back();
  retired_.emplace_back();
  const unsigned t = static_cast<unsigned>(tenants_.size() - 1);
  // Re-place the full list; only the newcomer's row takes effect —
  // existing replicas never migrate.
  const Assignment a = placement.place(tenants_, cfg_.devices);
  SGDRC_CHECK(a.size() == tenants_.size(), "placement skipped a tenant");
  for (const DeviceId d : a[t]) add_replica(t, d);
  SGDRC_REQUIRE(!replicas_[t].empty(), "new tenant placed no replicas");
  assignment_.push_back(a[t]);  // keep assignment() covering every tenant
  if (tenants_[t].spec.qos == QosClass::kLatencySensitive) {
    ls_fleet_tenants_.push_back(t);
  }
  return t;
}

void FleetSim::add_replica(unsigned tenant, DeviceId device) {
  SGDRC_REQUIRE(tenant < tenants_.size(), "unknown fleet tenant");
  for (const Replica& r : replicas_[tenant]) {
    SGDRC_REQUIRE(r.device != device,
                  "tenant already has an active replica on this device");
  }
  core::ServingSim& sim = ensure_device(device);
  const workload::TenantId local = sim.add_tenant(tenants_[tenant].spec);
  if (tenants_[tenant].spec.qos == QosClass::kLatencySensitive &&
      slo_factor_ != 1.0) {
    sim.set_slo(local, static_cast<TimeNs>(
                           slo_factor_ *
                           static_cast<double>(sim.slo_of(local))));
  }
  replicas_[tenant].push_back({device, local});
}

void FleetSim::remove_replica(unsigned tenant, DeviceId device) {
  SGDRC_REQUIRE(tenant < tenants_.size(), "unknown fleet tenant");
  auto& reps = replicas_[tenant];
  const auto it =
      std::find_if(reps.begin(), reps.end(),
                   [&](const Replica& r) { return r.device == device; });
  SGDRC_REQUIRE(it != reps.end(), "no active replica on this device");
  devices_[device]->remove_tenant(it->local_tenant);
  retired_[tenant].push_back(*it);
  reps.erase(it);
}

void FleetSim::remove_fleet_tenant(unsigned tenant) {
  SGDRC_REQUIRE(tenant < tenants_.size(), "unknown fleet tenant");
  while (!replicas_[tenant].empty()) {
    remove_replica(tenant, replicas_[tenant].back().device);
  }
}

void FleetSim::set_slo_factor(double factor) {
  SGDRC_REQUIRE(factor > 0.0, "SLO factor must be positive");
  slo_factor_ *= factor;
  for (auto& dev : devices_) {
    if (!dev) continue;
    for (workload::TenantId t = 0; t < dev->tenant_count(); ++t) {
      if (dev->tenant(t).qos != QosClass::kLatencySensitive) continue;
      dev->set_slo(t, static_cast<TimeNs>(
                          factor * static_cast<double>(dev->slo_of(t))));
    }
  }
}

void FleetSim::set_fleet_vgpu(unsigned tenant, const control::VgpuSpec& vgpu) {
  SGDRC_REQUIRE(tenant < tenants_.size(), "unknown fleet tenant");
  tenants_[tenant].spec.vgpu = vgpu;  // future replicas inherit
  for (const Replica& r : replicas_[tenant]) {
    devices_[r.device]->set_vgpu(r.local_tenant, vgpu);
  }
}

void FleetSim::dispatch(const Request& r) {
  dispatch_attempt(r, 0, r.arrival);
}

void FleetSim::dispatch_attempt(const Request& r, unsigned attempt,
                                TimeNs first_arrival) {
  const unsigned ft = ls_fleet_tenants_[r.service];
  const auto& reps = replicas_[ft];
  if (front_door_) {
    if (attempt == 0) front_door_->note_arrival(r.service);
    if (reps.empty()) {
      // Unroutable (device failure / departure raced the request):
      // shed at the door instead of crashing the fleet.
      front_door_->note_unroutable(r.service);
      schedule_retry(r, attempt, first_arrival);
      return;
    }
    const FrontDoor::Decision decision =
        front_door_->admit(*this, r.service, r.arrival);
    if (decision != FrontDoor::Decision::kAdmit) {
      schedule_retry(r, attempt, first_arrival);
      return;
    }
  }
  SGDRC_REQUIRE(!reps.empty(), "request for a tenant with no active replica");
  const size_t pick = router_.route(*this, ft, reps);
  SGDRC_CHECK(pick < reps.size(), "router picked an invalid replica");
  const Replica rep = reps[pick];
  core::ServingSim& sim = *devices_[rep.device];
  TimeNs delay = cfg_.dispatch_latency;
  if (cfg_.dispatch_jitter > 0) {
    delay += static_cast<TimeNs>(sim.rng().exponential(
        1.0 / static_cast<double>(cfg_.dispatch_jitter)));
  }
  // A hop that lands past the measurement window never reaches a device;
  // dropping it here keeps routed == Σ arrived exact.
  if (r.arrival + delay >= cfg_.duration) {
    if (front_door_) front_door_->note_expired();
    return;
  }
  ++routed_[rep.device];
  if (delay == 0) {
    // Zero hop ⇒ the engine barriered this device to the dispatch
    // instant (coalescing requires dispatch_latency > 0), so the
    // request is admitted inline like a standalone sim's arrival.
    sim.inject(rep.local_tenant, first_arrival);
  } else {
    // The cross-shard mailbox: the injection is a timestamped message
    // scheduled onto the *destination* device's shard, replayed in
    // (time, shard-local seq) order whenever its next window opens.
    // Latency still counts from the *first* fleet arrival: dispatch
    // hops and retry backoffs are part of what the client waits for —
    // a request admitted on its second attempt carries its full
    // backoff in its latency sample, so shedding is never free.
    shards_[rep.device]->schedule_at(
        r.arrival + delay, [this, rep, first_arrival] {
          devices_[rep.device]->inject(rep.local_tenant, first_arrival);
        });
  }
}

void FleetSim::schedule_retry(const Request& r, unsigned attempt,
                              TimeNs first_arrival) {
  if (attempt >= cfg_.front_door.max_retries) {
    front_door_->note_dropped(r.service);
    return;
  }
  const TimeNs t = r.arrival + front_door_->retry_delay(attempt);
  if (t >= cfg_.duration) {
    // The re-arrival would land past the horizon — the client gives up
    // as far as this run can observe.
    front_door_->note_dropped(r.service);
    return;
  }
  front_door_->note_retry_scheduled();
  dispatch_.schedule_at(
      t, [this, service = r.service, t, attempt, first_arrival] {
        front_door_->note_retry_fired();
        dispatch_attempt({t, service}, attempt + 1, first_arrival);
      });
}

// ---------------------------------------------------------- metrics ----

double FleetMetrics::ls_goodput() const {
  return workload::ls_goodput(tenants, duration);
}

double FleetMetrics::be_throughput() const {
  return workload::be_throughput(tenants, duration);
}

uint64_t FleetMetrics::guarantee_violations() const {
  uint64_t n = 0;
  for (const auto& d : devices) n += d.guarantee_violations;
  return n;
}

double FleetMetrics::mean_attainment() const {
  return workload::mean_attainment(tenants);
}

double FleetMetrics::fleet_p99_ms() const {
  Samples all;
  for (const auto& m : tenants) {
    if (m.qos == QosClass::kLatencySensitive) all.add_all(m.latency);
  }
  return all.empty() ? 0.0 : to_ms(static_cast<TimeNs>(all.p99()));
}

uint64_t FleetMetrics::weight_loads() const {
  uint64_t n = 0;
  for (const auto& m : tenants) n += m.weight_loads;
  return n;
}

uint64_t FleetMetrics::weight_evictions() const {
  uint64_t n = 0;
  for (const auto& m : tenants) n += m.weight_evictions;
  return n;
}

uint64_t FleetMetrics::paged_requests() const {
  uint64_t n = 0;
  for (const auto& m : tenants) n += m.paged_requests;
  return n;
}

uint64_t FleetMetrics::memory_trespasses() const {
  uint64_t n = 0;
  for (const auto& d : devices) n += d.memory_trespasses;
  return n;
}

uint64_t FleetMetrics::cold_requests() const {
  uint64_t n = 0;
  for (const auto& m : tenants) n += m.cold_latency.count();
  return n;
}

double FleetMetrics::cold_start_p99_ms() const {
  Samples all;
  for (const auto& m : tenants) all.add_all(m.cold_latency);
  return all.empty() ? std::numeric_limits<double>::quiet_NaN()
                     : to_ms(static_cast<TimeNs>(all.p99()));
}

double FleetMetrics::routed_mean() const {
  if (routed.empty()) return 0.0;
  uint64_t total = 0;
  for (const uint64_t r : routed) total += r;
  return static_cast<double>(total) / static_cast<double>(routed.size());
}

double FleetMetrics::imbalance_cv() const {
  const double mean = routed_mean();
  if (mean <= 0.0) return 0.0;
  double var = 0.0;
  for (const uint64_t r : routed) {
    const double d = static_cast<double>(r) - mean;
    var += d * d;
  }
  var /= static_cast<double>(routed.size());
  return std::sqrt(var) / mean;
}

double FleetMetrics::imbalance_max_over_mean() const {
  const double mean = routed_mean();
  if (mean <= 0.0) return 1.0;
  const uint64_t hottest = *std::max_element(routed.begin(), routed.end());
  return static_cast<double>(hottest) / mean;
}

}  // namespace sgdrc::fleet
