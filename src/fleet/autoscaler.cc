#include "fleet/autoscaler.h"

#include <algorithm>

namespace sgdrc::fleet {

void Autoscaler::attach(FleetSim& fleet) {
  SGDRC_REQUIRE(opt_.interval > 0, "autoscaler needs a positive interval");
  const TimeNs first = fleet.now() + opt_.interval;
  if (first >= fleet.config().duration) return;  // run too short to react
  fleet.at(first, [this, &fleet] { tick_and_reschedule(fleet); });
}

void Autoscaler::tick_and_reschedule(FleetSim& fleet) {
  tick(fleet);
  const TimeNs next = fleet.now() + opt_.interval;
  if (next < fleet.config().duration) {
    fleet.at(next, [this, &fleet] { tick_and_reschedule(fleet); });
  }
}

void Autoscaler::tick(FleetSim& fleet) {
  if (cooldown_.size() < fleet.tenant_count()) {
    cooldown_.resize(fleet.tenant_count(), 0);
  }
  const unsigned max_replicas =
      std::min(opt_.max_replicas, fleet.device_count());
  for (unsigned t = 0; t < fleet.tenant_count(); ++t) {
    if (fleet.fleet_tenant(t).spec.qos != QosClass::kLatencySensitive) {
      continue;  // BE loops are elastic already; only LS queues page us
    }
    const auto& reps = fleet.replicas_of(t);
    if (reps.empty()) continue;  // departed tenant
    if (cooldown_[t] > 0) {
      --cooldown_[t];
      continue;
    }
    size_t outstanding = 0;
    for (const Replica& r : reps) outstanding += fleet.outstanding(r);
    const double mean = static_cast<double>(outstanding) /
                        static_cast<double>(reps.size());

    if (mean > opt_.scale_up_outstanding && reps.size() < max_replicas) {
      // Scale up onto the least-LS-loaded device not already hosting
      // us. Load is perf-normalized (FleetSim::device_perf), so on a
      // heterogeneous fleet a big device with some queue still beats a
      // small idle-ish one once the ratio favors it; on homogeneous
      // fleets the divisor is exactly 1.0 and nothing changes.
      bool have = false;
      DeviceId best = 0;
      double best_load = 0.0;
      for (DeviceId d = 0; d < fleet.device_count(); ++d) {
        if (fleet.device_failed(d)) continue;  // cordoned — never target
        const bool hosted = std::any_of(
            reps.begin(), reps.end(),
            [&](const Replica& r) { return r.device == d; });
        if (hosted) continue;
        // A sim-less (pack-idled) device can only be brought up lazily
        // when the fleet carries an explicit SLO multiplier; without
        // one, placing there would throw mid-run — skip it.
        if (!fleet.device_in_use(d) &&
            fleet.config().slo_multiplier <= 0.0) {
          continue;
        }
        const double load = fleet.device_ls_load(d) / fleet.device_perf(d);
        if (!have || load < best_load) {
          have = true;
          best = d;
          best_load = load;
        }
      }
      if (!have) continue;  // every device already hosts a replica
      fleet.add_replica(t, best);
      decisions_.push_back(
          {fleet.now(), t, /*scale_up=*/true, best, reps.size()});
      cooldown_[t] = opt_.cooldown_ticks;
    } else if (mean < opt_.scale_down_outstanding &&
               reps.size() > std::max(1u, opt_.min_replicas)) {
      // Scale down off the most-loaded device (perf-normalized) — that
      // headroom is worth the most to its co-tenants.
      size_t victim = 0;
      double victim_load = fleet.device_ls_load(reps[0].device) /
                           fleet.device_perf(reps[0].device);
      for (size_t i = 1; i < reps.size(); ++i) {
        const double load = fleet.device_ls_load(reps[i].device) /
                            fleet.device_perf(reps[i].device);
        if (load > victim_load) {
          victim = i;
          victim_load = load;
        }
      }
      const DeviceId device = reps[victim].device;
      fleet.remove_replica(t, device);
      decisions_.push_back(
          {fleet.now(), t, /*scale_up=*/false, device, reps.size()});
      cooldown_[t] = opt_.cooldown_ticks;
    }
  }
}

}  // namespace sgdrc::fleet
