// The fleet layer: N per-device ServingSims (each with its own gpusim
// device and its own Policy instance), a PlacementPolicy that decides
// where each tenant's replicas live, and a Router that dispatches every
// arriving LS request to a replica by live per-device state. Per-GPU
// resource control (SGDRC or a baseline) stays a device-local concern;
// the fleet adds the cluster placement + routing layer on top, and
// aggregates metrics fleet-wide.
//
// Execution is a sharded conservative discrete-event engine (see
// docs/fleet-engine.md): each device owns a private EventQueue (its
// shard), the fleet keeps two queues of its own (control actions and
// trace dispatches), and a windowed loop interleaves them — barrier the
// shards up to the next fleet event, fire it, repeat. Device shards
// never read each other, so within a window they may run on a thread
// pool (FleetOptions::parallel); serial and parallel execute the *same*
// loop and are bit-identical by construction (docs/determinism.md).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "control/controller.h"
#include "core/serving.h"
#include "fleet/front_door.h"
#include "fleet/placement.h"
#include "fleet/router.h"

namespace sgdrc::fleet {

/// Derive device d's RNG seed from the fleet seed. Distinct per device
/// (golden-ratio stride through splitmix64), so replicas never share an
/// arrival-jitter stream, while the whole fleet stays reproducible from
/// one base seed.
inline uint64_t device_seed(uint64_t base, DeviceId device) {
  return splitmix64(base + kGoldenSeedStride *
                               (static_cast<uint64_t>(device) + 1));
}

/// Execution-engine knobs for the sharded fleet engine.
struct FleetOptions {
  /// Run device shards on a thread pool inside each conservative time
  /// window. OFF by default: the serial path executes the *same*
  /// windowed loop single-threaded, so flipping this changes wall-clock
  /// only — results are bit-identical either way (ctest-enforced by
  /// tests/fleet_parallel_test.cc) and serial stays the baseline of
  /// record.
  bool parallel = false;
  /// Worker threads when parallel (0 = hardware concurrency). Capped at
  /// the device count — extra workers would only contend on the claim
  /// index.
  unsigned threads = 0;
};

struct FleetConfig {
  /// Baseline device spec: every device runs it when `device_specs` is
  /// empty, and perf normalization (FleetSim::device_perf) measures
  /// heterogeneous devices against it.
  gpusim::GpuSpec spec;
  /// Per-device specs for heterogeneous fleets (e.g. a mixed
  /// A2000/A100 rack). Empty = homogeneous (`spec` everywhere);
  /// otherwise size must equal `devices`. Placement, routing, and
  /// autoscaling normalize load by FleetSim::device_perf so a big
  /// device earns proportionally more work.
  std::vector<gpusim::GpuSpec> device_specs;
  gpusim::ExecutorParams exec_params;
  unsigned devices = 1;
  unsigned ls_instances = 4;
  TimeNs duration = 2 * kNsPerSec;
  /// Forwarded to every device sim. Leave 0 only when every device hosts
  /// the same tenant mix: the per-device default (n = co-resident
  /// tenants) would otherwise give the same tenant different SLOs under
  /// different placements.
  double slo_multiplier = 0.0;
  core::BeMode be_mode = core::BeMode::kRoundRobin;
  uint64_t seed = 0x5eed;
  /// Router→device dispatch cost: a fixed hop latency plus an
  /// exponential jitter tail (mean). Jitter draws from the destination
  /// device's salted RNG stream, so replicas see independent jitter.
  TimeNs dispatch_latency = 0;
  TimeNs dispatch_jitter = 0;
  /// GPU memory virtualization, forwarded to every device sim (weight
  /// residency, cold-start loads, eviction; src/memory). OFF by default.
  memory::MemoryOptions memory;
  /// Overload front door (admission control, QoS-ordered shedding,
  /// retry storms; src/fleet/front_door.h). OFF by default: the
  /// dispatch path is then byte-for-byte the pre-front-door one.
  FrontDoorConfig front_door;
  /// Sharded-engine execution knobs (parallelism). Results never depend
  /// on these.
  FleetOptions engine;
};

struct FleetMetrics {
  TimeNs duration = 0;
  /// Discrete events the engine fired to produce this run (device-shard
  /// events + fleet control/dispatch events) — the numerator of the
  /// bench events/sec throughput metric.
  uint64_t events = 0;
  /// Per-device metrics (devices idled by pack placement report empty
  /// ServingMetrics with no tenants).
  std::vector<workload::ServingMetrics> devices;
  /// Per fleet tenant, merged across its replicas: counters add and
  /// latency samples union, so p99/attainment reflect every request the
  /// tenant served anywhere in the fleet.
  std::vector<workload::TenantMetrics> tenants;
  /// LS requests dispatched to each device (router decisions).
  std::vector<uint64_t> routed;
  /// Front-door accounting (all zeros when the door is disabled).
  FrontDoorMetrics front_door;

  double ls_goodput() const;       // attained requests / s, fleet-wide
  double be_throughput() const;    // samples / s, fleet-wide
  /// Launches that trespassed on a guaranteed vGPU region, fleet-wide.
  uint64_t guarantee_violations() const;
  double overall_throughput() const {
    return ls_goodput() + be_throughput();
  }
  double mean_attainment() const;  // over LS fleet tenants
  /// p99 latency (ms) over the union of all LS requests fleet-wide.
  double fleet_p99_ms() const;

  // ---- memory-residency stats (all zero when memory modeling is off) ----
  uint64_t weight_loads() const;
  uint64_t weight_evictions() const;
  uint64_t paged_requests() const;
  /// Loads past a tenant's own declared memory quota, fleet-wide.
  uint64_t memory_trespasses() const;
  /// Requests that hit a cold or paged replica, fleet-wide.
  uint64_t cold_requests() const;
  /// p99 latency (ms) over the union of cold-start-gated requests; NaN
  /// when none (every request found warm weights — the best outcome).
  double cold_start_p99_ms() const;

  // ---- load-imbalance stats, over per-device routed counts ----
  double routed_mean() const;
  /// Coefficient of variation (population stddev / mean); 0 = balanced.
  double imbalance_cv() const;
  /// Hottest device / mean; 1 = balanced.
  double imbalance_max_over_mean() const;
};

/// Each device runs its own controller instance (controllers are
/// stateful — tidal clocks, cursors); the factory builds one per device.
/// Legacy imperative policies slot in through control::adapt().
using ControllerFactory = control::ControllerFactory;
/// Historic name, kept so older drivers read naturally.
using PolicyFactory = ControllerFactory;

class FleetSim {
 public:
  /// `placement` is consulted once, in the constructor; `router` and
  /// `make_policy`'s products must outlive run(). `make_policy` is also
  /// kept (by copy) for devices brought up lazily mid-run.
  FleetSim(FleetConfig cfg, std::vector<FleetTenantSpec> tenants,
           const PlacementPolicy& placement, Router& router,
           const ControllerFactory& make_policy);

  /// Replay `trace` fleet-wide; Request::service indexes the LS fleet
  /// tenants in spec order. Single-shot: one run per FleetSim.
  FleetMetrics run(const std::vector<workload::Request>& trace);

  // -------------------------------------------- external-driver API ----
  // run() is begin() + scheduled inject()s + run_until() + finish();
  // dynamic scenarios (workload::Scenario) call the pieces directly and
  // interleave control actions via at().
  void begin();
  /// Route one LS request for `service` (index into the LS fleet tenants)
  /// arriving at `arrival` (≤ now()).
  void inject(unsigned service, TimeNs arrival);
  /// Schedule a control action (tenant churn, SLO change, autoscaler
  /// tick) on the fleet clock. Control actions fire before
  /// same-timestamp dispatches and device events (the canonical tier
  /// order — docs/determinism.md).
  void at(TimeNs t, std::function<void()> fn);
  /// Drive the whole engine to `t` (events at exactly `t` still fire):
  /// the conservative windowed loop — barrier every device shard up to
  /// the next fleet event, fire it, repeat; then drain the shards to
  /// `t` inclusive. Returns the number of events fired.
  size_t run_until(TimeNs t);
  /// Stop recording and aggregate — active and retired replicas both
  /// count, so churned tenants keep their history.
  FleetMetrics finish();

  // --------------------------------- runtime rescale / re-placement ----
  /// Admit a new fleet tenant mid-run: the placement policy re-places the
  /// full tenant list and the new tenant's replicas land on its row
  /// (existing replicas never move). Returns the fleet tenant index; LS
  /// tenants also get the next service index.
  unsigned add_fleet_tenant(FleetTenantSpec spec,
                            const PlacementPolicy& placement);
  /// Grow a tenant by one replica on `device` (autoscaler scale-up).
  /// The device sim is created lazily if pack placement left it idle.
  void add_replica(unsigned tenant, DeviceId device);
  /// Retire the replica on `device`: routing stops immediately, admitted
  /// work drains, metrics survive (autoscaler scale-down).
  void remove_replica(unsigned tenant, DeviceId device);
  /// Retire every replica (tenant departure).
  void remove_fleet_tenant(unsigned tenant);
  /// Scale every LS SLO fleet-wide (factor < 1 tightens). Replicas added
  /// later inherit the accumulated factor.
  void set_slo_factor(double factor);
  /// Re-plan a fleet tenant's vGPU guarantees (scenario set_quota): the
  /// spec is updated so future replicas inherit it, and every active
  /// replica's device re-carves its region and re-plans.
  void set_fleet_vgpu(unsigned tenant, const control::VgpuSpec& vgpu);
  /// Cordon `device` (mid-run failure): every replica on it retires —
  /// routing stops immediately, admitted work drains, metrics survive —
  /// and the autoscaler / lazy bring-up will never target it again. A
  /// tenant whose last replica lived there becomes unroutable: with the
  /// front door enabled its requests shed (and may retry); without, the
  /// next dispatch for it throws. Idempotent.
  void fail_device(DeviceId device);
  bool device_failed(DeviceId d) const { return failed_.at(d) != 0; }
  /// Pause/resume best-effort work on every live device (the front
  /// door's first shedding lever; also callable from scenario scripts).
  void set_be_paused(bool paused);

  // ------------------------------------------- router / test read API ----
  unsigned device_count() const { return cfg_.devices; }
  const FleetConfig& config() const { return cfg_; }
  bool device_in_use(DeviceId d) const { return devices_.at(d) != nullptr; }
  const core::ServingSim& device(DeviceId d) const;
  /// Device d's GPU spec: `config().spec` for homogeneous fleets, the
  /// per-device entry otherwise.
  const gpusim::GpuSpec& device_spec(DeviceId d) const;
  /// Relative serving capacity of device d against the baseline spec:
  /// the mean of its TPC-count and VRAM-bandwidth ratios. Exactly 1.0
  /// for every device of a homogeneous fleet, so perf-normalized
  /// routing/scaling (which divide by this) reproduce the homogeneous
  /// decisions bit-for-bit.
  double device_perf(DeviceId d) const;
  /// Where each tenant's replicas were first placed: the construction
  /// placement plus one appended row per runtime arrival. Replica
  /// rescale does not rewrite it — replicas_of() is the live view.
  const Assignment& assignment() const { return assignment_; }
  size_t tenant_count() const { return tenants_.size(); }
  const FleetTenantSpec& fleet_tenant(unsigned t) const {
    return tenants_.at(t);
  }
  /// Active (routable) replicas of a tenant; shrinks on removal.
  const std::vector<Replica>& replicas_of(unsigned tenant) const {
    return replicas_.at(tenant);
  }
  size_t ls_service_count() const { return ls_fleet_tenants_.size(); }
  /// Fleet tenant index behind an LS service index.
  unsigned ls_fleet_tenant(unsigned service) const {
    return ls_fleet_tenants_.at(service);
  }
  /// Fleet-wide LS queue depth: Σ outstanding over every active LS
  /// replica. The front door's overload signal.
  size_t fleet_ls_queue_depth() const;
  /// The live front door, or null when disabled.
  const FrontDoor* front_door() const { return front_door_.get(); }
  /// The engine frontier: how far the fleet-level queues have advanced.
  /// Device shards lag this inside a coalesced window and land on it at
  /// every barrier.
  TimeNs now() const { return std::max(control_.now(), dispatch_.now()); }
  /// Events fired so far (shards + fleet queues) — bench observability.
  uint64_t events_processed() const { return events_; }
  /// True when device shards execute on the thread pool.
  bool parallel() const { return pool_ != nullptr; }
  /// Requests a replica currently holds (admitted + backlogged).
  size_t outstanding(const Replica& r) const {
    return device(r.device).outstanding(r.local_tenant);
  }
  /// Where the replica's weights live (kUnmodeled when its device does
  /// not model memory). The warm-weight router keys on this.
  memory::Residency replica_residency(const Replica& r) const {
    return device(r.device).residency_of(r.local_tenant);
  }
  /// Expected queued LS work on a device: Σ over its LS tenants of
  /// outstanding × isolated latency (ns of serialized work). Idle
  /// (sim-less) devices report zero.
  double device_ls_load(DeviceId d) const;

 private:
  void dispatch(const workload::Request& r);
  /// One routing attempt through the front door; `attempt` counts the
  /// retries already spent (0 = first arrival). `first_arrival` is the
  /// request's original fleet arrival — the latency clock — which
  /// survives retries, so backoff waits land in the latency samples.
  void dispatch_attempt(const workload::Request& r, unsigned attempt,
                        TimeNs first_arrival);
  /// Re-arrive a rejected/shed request after backoff, or drop it when
  /// the retry budget or the measurement window is exhausted.
  void schedule_retry(const workload::Request& r, unsigned attempt,
                      TimeNs first_arrival);
  void front_door_tick(TimeNs t);
  core::ServingConfig device_config(DeviceId d) const;
  core::ServingSim& ensure_device(DeviceId d);
  /// The conservative barrier: every device shard fires its events
  /// before `t` (exclusive) or up to `t` (inclusive) and lands its
  /// clock on `t`. Serial or thread-pool execution per FleetOptions;
  /// shards are independent, so the result is the same either way.
  size_t advance_shards(TimeNs t, bool inclusive);

  FleetConfig cfg_;
  std::vector<FleetTenantSpec> tenants_;
  Router& router_;
  ControllerFactory make_policy_;
  Assignment assignment_;
  /// Fleet-tier queues: control actions (at(); churn, SLO changes,
  /// autoscaler ticks) and trace dispatches (run()'s arrival → route
  /// hops). Separate so the engine can order control before dispatch at
  /// equal timestamps and coalesce blind-router dispatch windows.
  EventQueue control_;
  EventQueue dispatch_;
  /// One event-queue shard per device (created eagerly, even for
  /// devices idled by pack placement, so mid-run bring-up finds a shard
  /// already sitting on the fleet frontier). Device d's sim schedules
  /// exclusively on shards_[d]; cross-shard injections arrive as
  /// timestamped messages scheduled by the main thread between windows.
  /// That exclusivity is checked, not assumed: each sim's ShardGuard
  /// asserts it when armed (SGDRC_DEBUG_OWNERSHIP=1, or the CMake
  /// option of the same name — common/shard_guard.h).
  std::vector<std::unique_ptr<EventQueue>> shards_;
  /// Workers for advance_shards (null ⇒ serial). Woken per window via
  /// the pool's condition variable — readiness events, not polling.
  std::unique_ptr<ThreadPool> pool_;
  uint64_t events_ = 0;
  std::vector<std::unique_ptr<control::Controller>> policies_;  // per device
  std::vector<std::unique_ptr<core::ServingSim>> devices_;  // null if idle
  std::vector<std::vector<Replica>> replicas_;  // active, per fleet tenant
  std::vector<std::vector<Replica>> retired_;   // removed, kept for metrics
  std::vector<unsigned> ls_fleet_tenants_;      // service index → tenant
  std::vector<uint64_t> routed_;
  std::vector<char> failed_;  // per device; 1 after fail_device
  bool device_be_paused_ = false;  // current fleet-wide BE pause state
  /// Null unless cfg_.front_door.enabled. The door reads live queue
  /// depths, so its presence disables dispatch coalescing — the engine
  /// barriers the shards before every dispatch, exactly like a
  /// state-reading router (docs/fleet-engine.md).
  std::unique_ptr<FrontDoor> front_door_;
  double slo_factor_ = 1.0;  // accumulated set_slo_factor product
  bool begun_ = false;
};

}  // namespace sgdrc::fleet
