// Reactive fleet autoscaling: a periodic control loop that watches each
// LS fleet tenant's mean outstanding requests per replica and adds or
// drops replicas through FleetSim's runtime rescale API. Scale-up lands
// on the device with the least live LS load (the same signal the
// QoS-load-aware router uses); scale-down retires the replica on the
// most-loaded device, handing its headroom back. A per-tenant cooldown
// provides hysteresis so a single bursty frame doesn't flap the fleet.
//
// This is deliberately the simplest closed loop that demonstrates
// SGDRC-style dynamic control at the cluster layer (ParvaGPU's arriving/
// departing-service framing); model-predictive policies can replace it
// behind the same tick() interface.
#pragma once

#include <vector>

#include "fleet/fleet.h"

namespace sgdrc::fleet {

struct AutoscalerOptions {
  /// Control-loop period on the fleet clock.
  TimeNs interval = 20 * kNsPerMs;
  /// Scale up when mean outstanding per replica exceeds this.
  double scale_up_outstanding = 3.0;
  /// Scale down when mean outstanding per replica falls below this.
  double scale_down_outstanding = 0.5;
  unsigned min_replicas = 1;
  unsigned max_replicas = 8;  // additionally clamped to the device count
  /// Ticks a tenant sits out after any scaling action (hysteresis).
  unsigned cooldown_ticks = 2;
};

class Autoscaler {
 public:
  explicit Autoscaler(AutoscalerOptions opt = {}) : opt_(opt) {}

  struct Decision {
    TimeNs at = 0;
    unsigned tenant = 0;
    bool scale_up = false;
    DeviceId device = 0;
    size_t replicas_after = 0;
  };

  /// Start the periodic control loop on the fleet clock. Call between
  /// fleet.begin() and the drive; the autoscaler must outlive the run.
  void attach(FleetSim& fleet);

  /// One reactive pass over every LS fleet tenant (attach() calls this
  /// every interval; tests may call it directly).
  void tick(FleetSim& fleet);

  const AutoscalerOptions& options() const { return opt_; }
  const std::vector<Decision>& decisions() const { return decisions_; }

 private:
  void tick_and_reschedule(FleetSim& fleet);

  AutoscalerOptions opt_;
  std::vector<Decision> decisions_;
  std::vector<unsigned> cooldown_;  // per fleet tenant, ticks remaining
};

}  // namespace sgdrc::fleet
