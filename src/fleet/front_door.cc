#include "fleet/front_door.h"

#include <algorithm>

#include "fleet/fleet.h"

namespace sgdrc::fleet {

// Salt for the door's dedicated jitter stream: distinct from the
// device-seed derivation (golden-ratio stride) and the trace/segment
// seeds, so arming the door never perturbs any existing stream.
static constexpr uint64_t kFrontDoorSalt = 0xf407d007ull;

FrontDoor::FrontDoor(const FrontDoorConfig& cfg, uint64_t fleet_seed)
    : cfg_(cfg), rng_(splitmix64(fleet_seed ^ kFrontDoorSalt)) {
  SGDRC_REQUIRE(cfg_.admit_rate >= 0.0 && cfg_.admit_burst >= 1.0,
                "front door needs a non-negative rate and a bucket that "
                "holds at least one token");
}

void FrontDoor::ensure_service(unsigned service) {
  if (service >= buckets_.size()) {
    // New services (mid-run tenant arrivals) start with a full bucket,
    // like the initial set at t=0.
    buckets_.resize(service + 1, Bucket{cfg_.admit_burst, 0});
    m_.arrived_by_service.resize(service + 1, 0);
    m_.admitted_by_service.resize(service + 1, 0);
    m_.rejected_by_service.resize(service + 1, 0);
    m_.shed_by_service.resize(service + 1, 0);
    m_.dropped_by_service.resize(service + 1, 0);
  }
}

void FrontDoor::note_arrival(unsigned service) {
  ensure_service(service);
  ++m_.arrived;
  ++m_.arrived_by_service[service];
}

void FrontDoor::note_unroutable(unsigned service) {
  ensure_service(service);
  ++m_.shed;
  ++m_.shed_by_service[service];
}

void FrontDoor::note_dropped(unsigned service) {
  ensure_service(service);
  ++m_.dropped;
  ++m_.dropped_by_service[service];
}

FrontDoor::Decision FrontDoor::admit(FleetSim& fleet, unsigned service,
                                     TimeNs now) {
  ensure_service(service);
  // Lever 1: the token bucket. Refill lazily on each attempt; charge
  // only on admission, so rejected and shed attempts cost no token.
  Bucket& b = buckets_[service];
  if (cfg_.admit_rate > 0.0) {
    b.tokens = std::min(
        cfg_.admit_burst,
        b.tokens + static_cast<double>(now - b.last) * cfg_.admit_rate /
                       static_cast<double>(kNsPerSec));
    b.last = now;
    if (b.tokens < 1.0) {
      ++m_.rejected;
      ++m_.rejected_by_service[service];
      return Decision::kReject;
    }
  }
  // Lever 2: queue-depth overload. One consistent depth read feeds both
  // the BE pause and the LS shed rule — BE always sheds first because
  // be_pause_depth is configured below shed_depth.
  if (cfg_.be_pause_depth > 0 || cfg_.shed_depth > 0) {
    const size_t depth = fleet.fleet_ls_queue_depth();
    maybe_pause(fleet, depth, now);
    if (cfg_.shed_depth > 0) {
      const int prio = std::max(
          0, fleet.fleet_tenant(fleet.ls_fleet_tenant(service))
                 .spec.vgpu.priority);
      if (depth >= cfg_.shed_depth * (static_cast<size_t>(prio) + 1)) {
        ++m_.shed;
        ++m_.shed_by_service[service];
        return Decision::kShed;
      }
    }
  }
  if (cfg_.admit_rate > 0.0) b.tokens -= 1.0;
  ++m_.admitted;
  ++m_.admitted_by_service[service];
  return Decision::kAdmit;
}

void FrontDoor::maybe_pause(FleetSim& fleet, size_t depth, TimeNs now) {
  if (cfg_.be_pause_depth == 0) return;
  if (!paused_ && depth >= cfg_.be_pause_depth) {
    paused_ = true;
    paused_since_ = now;
    ++m_.be_pause_events;
    fleet.set_be_paused(true);
  } else if (paused_ && depth <= cfg_.be_pause_depth / 2) {
    // Hysteresis: resume at half the pause depth so a queue hovering at
    // the bound does not flap BE on and off every request.
    paused_ = false;
    m_.be_paused_ns += now - paused_since_;
    fleet.set_be_paused(false);
  }
}

TimeNs FrontDoor::retry_delay(unsigned attempt) {
  // Cap the shift: past ~16 doublings the delay is off the end of any
  // run; shifting further would be UB, not realism.
  const unsigned shift = std::min(attempt, 16u);
  TimeNs d = cfg_.retry_backoff << shift;
  if (cfg_.retry_jitter > 0) {
    d += static_cast<TimeNs>(
        rng_.exponential(1.0 / static_cast<double>(cfg_.retry_jitter)));
  }
  return d;
}

void FrontDoor::tick(FleetSim& fleet, TimeNs now) {
  maybe_pause(fleet, fleet.fleet_ls_queue_depth(), now);
}

void FrontDoor::finalize(TimeNs duration) {
  if (paused_) {
    m_.be_paused_ns += duration - paused_since_;
    paused_since_ = duration;  // idempotent under a second finalize
  }
}

}  // namespace sgdrc::fleet
