// Cluster-level request routing: every arriving LS request is dispatched
// to one replica of its fleet tenant by a pluggable strategy. Routers see
// live per-device state through the FleetSim introspection API (the
// runtime-aware scheduling of Yu et al., arXiv:2111.14255 — route by
// observed load, not static assignment). Routing must be deterministic:
// fleet runs are reproducible bit-for-bit given the same trace and seed.
#pragma once

#include <string>
#include <vector>

#include "fleet/placement.h"

namespace sgdrc::fleet {

class FleetSim;

/// Where one replica of a fleet tenant lives: a device and the TenantId
/// it was assigned within that device's ServingSim.
struct Replica {
  DeviceId device = 0;
  workload::TenantId local_tenant = 0;
};

class Router {
 public:
  virtual ~Router() = default;
  virtual std::string name() const = 0;
  /// Called once per FleetSim::run before any dispatch; stateful routers
  /// (round-robin cursors) reset here so back-to-back runs are identical.
  virtual void reset(size_t fleet_tenants) { (void)fleet_tenants; }
  /// Pick the replica (an index into `replicas`, never empty) that
  /// serves a request for `tenant` arriving at fleet.now().
  virtual size_t route(const FleetSim& fleet, unsigned tenant,
                       const std::vector<Replica>& replicas) = 0;
  /// True when route() inspects live device state (outstanding counts,
  /// residency, queue depths). The sharded fleet engine must then
  /// barrier every device shard up to each dispatch timestamp before
  /// routing; a blind router (round-robin) lets the engine coalesce a
  /// whole window of dispatches without synchronizing, since the only
  /// cross-shard effect is the timestamped injection one dispatch hop
  /// in the future. Default true: correctness over speed for routers
  /// that don't declare themselves.
  virtual bool reads_device_state() const { return true; }
};

/// Per-tenant rotation, blind to load — fair under equal replicas, and
/// the baseline the load-aware strategies must beat under skew. Tenants
/// admitted mid-run (scenario churn) grow the cursor table on demand.
class RoundRobinRouter : public Router {
 public:
  std::string name() const override { return "round-robin"; }
  void reset(size_t fleet_tenants) override {
    next_.assign(fleet_tenants, 0);
  }
  size_t route(const FleetSim& fleet, unsigned tenant,
               const std::vector<Replica>& replicas) override;
  /// Pure cursor rotation — never looks at a device, so the sharded
  /// engine may run it with device shards lagging behind the dispatch
  /// frontier (the lookahead window).
  bool reads_device_state() const override { return false; }

 private:
  std::vector<size_t> next_;
};

/// Send to the replica with the fewest requests in its system (admitted
/// + backlogged, including batch-assembly queues), perf-normalized by
/// FleetSim::device_perf so bigger devices earn proportional work on
/// heterogeneous fleets. Ties rotate through a per-tenant cursor: equal
/// loads are common (an idle fleet, every startup), and the old
/// lowest-index tie-break hot-spotted device 0 under pack placement.
/// Deterministic — no RNG in the dispatch path.
class LeastOutstandingRouter : public Router {
 public:
  std::string name() const override { return "least-outstanding"; }
  void reset(size_t fleet_tenants) override {
    cursor_.assign(fleet_tenants, 0);
  }
  size_t route(const FleetSim& fleet, unsigned tenant,
               const std::vector<Replica>& replicas) override;

 private:
  std::vector<size_t> cursor_;
};

/// Send to the replica whose *device* carries the least expected LS work
/// (Σ outstanding × isolated latency over every LS tenant on the device,
/// perf-normalized) — cross-tenant aware, so a replica that is itself
/// idle on a device hammered by a co-located tenant is avoided.
/// Equal-load ties rotate like LeastOutstandingRouter's (cursor-based,
/// deterministic).
class QosLoadAwareRouter : public Router {
 public:
  std::string name() const override { return "qos-load-aware"; }
  void reset(size_t fleet_tenants) override {
    cursor_.assign(fleet_tenants, 0);
  }
  size_t route(const FleetSim& fleet, unsigned tenant,
               const std::vector<Replica>& replicas) override;

 private:
  std::vector<size_t> cursor_;
};

/// Residency-aware routing for memory-virtualized fleets: prefer the
/// replica whose weights are warm. Score = outstanding requests plus a
/// cold penalty (half for a replica mid-load — it will be warm shortly,
/// full for cold/paged), so a warm replica absorbs up to `cold_penalty`
/// extra queued requests before the router warms a second one — the
/// knob trades queueing delay against cold-start DMAs. Keep it near
/// load_time / service_time: much higher and a hot service pins to one
/// replica, queueing right up to the spill threshold without ever
/// warming its second copy. On devices without memory modeling every
/// replica reads kUnmodeled (= warm) and this degrades to exactly
/// LeastOutstandingRouter. Ties rotate.
class WarmWeightRouter : public Router {
 public:
  explicit WarmWeightRouter(size_t cold_penalty = 3)
      : cold_penalty_(cold_penalty) {}
  std::string name() const override { return "warm-weight"; }
  void reset(size_t fleet_tenants) override {
    cursor_.assign(fleet_tenants, 0);
  }
  size_t route(const FleetSim& fleet, unsigned tenant,
               const std::vector<Replica>& replicas) override;

 private:
  size_t cold_penalty_;
  std::vector<size_t> cursor_;
};

}  // namespace sgdrc::fleet
