// Cluster-level placement (the ParvaGPU layering: per-GPU spatial
// sharing below, device assignment above): a PlacementPolicy decides
// which devices each fleet tenant's replicas land on before the fleet
// simulation starts. Replicas of one tenant always land on distinct
// devices; a tenant asking for more replicas than the fleet has devices
// is clamped to one replica per device.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/serving.h"

namespace sgdrc::fleet {

using workload::QosClass;

/// Index of a GPU within one fleet simulation.
using DeviceId = uint32_t;

/// Relative serving capacity of `s` against a baseline spec: the mean
/// of the TPC-count and VRAM-bandwidth ratios. The one formula behind
/// FleetSim::device_perf, perf-aware placement, and the perf-normalized
/// routers — exactly 1.0 when s == base, so homogeneous fleets divide
/// by 1.0 everywhere and keep their decisions bit-identical.
double relative_perf(const gpusim::GpuSpec& s, const gpusim::GpuSpec& base);

/// relative_perf over a whole fleet — feed QosAwarePlacement's
/// perf-aware constructor from FleetConfig::device_specs.
std::vector<double> device_perf_factors(
    const std::vector<gpusim::GpuSpec>& specs, const gpusim::GpuSpec& base);

/// Per-device bin capacities for QuotaAwarePlacement on heterogeneous
/// fleets.
struct DeviceShape {
  unsigned tpcs = 0;
  uint64_t vram_bytes = 0;  // 0 = don't bin-pack memory on this device
};

/// DeviceShapes of `specs` (TPC counts, and VRAM sizes when
/// `include_vram`).
std::vector<DeviceShape> device_shapes(
    const std::vector<gpusim::GpuSpec>& specs, bool include_vram = false);

/// One workload replicated across the fleet: the per-device TenantSpec
/// plus how many devices should host an instance of it.
struct FleetTenantSpec {
  core::TenantSpec spec;
  unsigned replicas = 1;
  /// Expected load share for QoS-aware placement; 0 ⇒ derived (LS
  /// tenants weigh their isolated latency — costlier models spread
  /// first; BE tenants weigh equally).
  double weight = 0.0;
};

inline FleetTenantSpec replicated(core::TenantSpec spec,
                                  unsigned replicas = 1,
                                  double weight = 0.0) {
  return {std::move(spec), replicas, weight};
}

/// assignment[t][r] = device hosting replica r of fleet tenant t.
using Assignment = std::vector<std::vector<DeviceId>>;

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;
  virtual std::string name() const = 0;
  virtual Assignment place(const std::vector<FleetTenantSpec>& tenants,
                           unsigned devices) const = 0;
};

/// Balance replica counts: each replica goes to the device currently
/// hosting the fewest replicas (ties → lowest device id).
class SpreadPlacement : public PlacementPolicy {
 public:
  std::string name() const override { return "spread"; }
  Assignment place(const std::vector<FleetTenantSpec>& tenants,
                   unsigned devices) const override;
};

/// First-fit consolidation: fill device 0 up to `per_device` replicas,
/// then device 1, … — uses the fewest devices, concentrating contention
/// (the baseline SGDRC-per-device has to beat).
class PackPlacement : public PlacementPolicy {
 public:
  explicit PackPlacement(unsigned per_device = 8) : per_device_(per_device) {}
  std::string name() const override { return "pack"; }
  Assignment place(const std::vector<FleetTenantSpec>& tenants,
                   unsigned devices) const override;

 private:
  unsigned per_device_;
};

/// QoS-aware: LS replicas balance weighted LS load (weight = expected
/// load share, default isolated latency) across devices; BE replicas
/// then fill the least-BE-crowded devices, preferring ones with the
/// least LS load — batch work lands where it steals the least.
class QosAwarePlacement : public PlacementPolicy {
 public:
  QosAwarePlacement() = default;
  /// Perf-aware variant for heterogeneous fleets: every device's
  /// accumulated LS load and BE count are divided by its relative
  /// capacity (device_perf_factors) before comparison, so a 2x device
  /// hosts ~2x the weighted load. An empty vector is the homogeneous
  /// policy, decision-for-decision.
  explicit QosAwarePlacement(std::vector<double> device_perf)
      : perf_(std::move(device_perf)) {}
  std::string name() const override { return "qos-aware"; }
  Assignment place(const std::vector<FleetTenantSpec>& tenants,
                   unsigned devices) const override;

 private:
  std::vector<double> perf_;
};

/// Bin-pack by guaranteed vGPU quotas (the ParvaGPU-style spatial-quota
/// unit), now two-dimensional — (TPCs, VRAM bytes): guaranteed replicas
/// go first-fit-decreasing (decreasing in their dominant normalized
/// dimension) against each device's TPC and byte budgets, so no
/// device's hard reservations overcommit its SMs or its VRAM (a
/// ServingSim would reject such a replica set outright); unguaranteed
/// replicas then balance the residual headroom — TPCs first, VRAM bytes
/// on ties. A replica's byte demand is its VgpuSpec::memory_bytes quota
/// when declared, else its model's weight footprint. Ties break toward
/// the fewest replicas, then the lowest device id, keeping placements
/// deterministic. With `vram_bytes == 0` (the default) the byte
/// dimension vanishes and placements match the TPC-only policy exactly.
class QuotaAwarePlacement : public PlacementPolicy {
 public:
  /// Uniform bins: `tpcs_per_device` is every device's TPC capacity
  /// (GpuSpec::num_tpcs); `vram_bytes` its byte capacity (0 = don't
  /// bin-pack memory).
  explicit QuotaAwarePlacement(unsigned tpcs_per_device,
                               uint64_t vram_bytes = 0)
      : capacity_(tpcs_per_device), capacity_bytes_(vram_bytes) {}
  /// Heterogeneous bins: one (TPC, byte) capacity per device
  /// (device_shapes of FleetConfig::device_specs). Big devices
  /// naturally absorb the big reservations — the FFD pass sees their
  /// larger headroom. Size must equal the device count at place().
  explicit QuotaAwarePlacement(std::vector<DeviceShape> shapes)
      : shapes_(std::move(shapes)) {}
  std::string name() const override { return "quota-aware"; }
  Assignment place(const std::vector<FleetTenantSpec>& tenants,
                   unsigned devices) const override;

 private:
  unsigned capacity_ = 0;       // uniform TPC bins (unused with shapes_)
  uint64_t capacity_bytes_ = 0;
  std::vector<DeviceShape> shapes_;  // per-device bins; empty = uniform
};

/// Check an assignment is well-formed: one entry per tenant,
/// min(replicas, devices) distinct in-range devices each. Fails loudly —
/// a bad placement would otherwise surface as confusing routing state.
void validate_assignment(const Assignment& assignment,
                         const std::vector<FleetTenantSpec>& tenants,
                         unsigned devices);

}  // namespace sgdrc::fleet
