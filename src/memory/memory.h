// GPU memory virtualization: per-device weight residency on top of the
// MMU model (gpusim/page_table.h). SGDRC virtualizes SMs (tidal TPC
// masks) and VRAM *bandwidth* (channel coloring); this layer virtualizes
// VRAM *capacity* — the third axis real spatial-sharing deployments are
// capped by. A MemoryManager tracks every replica's weight bytes against
// GpuSpec::vram_bytes: registering a replica allocates its weights,
// a replica's first request (or any request after eviction) pays a
// cold-start load (weight bytes / PCIe-class bandwidth, modeled as an
// event on the shared clock, never a stall of the whole sim), and an
// LRU-by-tenant-priority evictor frees cold replicas under pressure.
//
// Two degraded modes when weights do not fit:
//   * strict (default): the load WAITS for capacity — the serving layer
//     retries on every poke, so the request is gated until an eviction
//     frees frames (or forever, if the fleet overcommitted hard);
//   * oversubscribed: the replica degrades to UVM-style demand paging —
//     a staging window of frames is reserved through the same
//     take_free_frame() primitive driver::UvmMemoryPool uses, and every
//     request restreams the weights through it at paging bandwidth.
//
// Everything is deterministic: decisions depend only on simulated time,
// registration order, and the seeded PageTable frame shuffle, so fleet
// runs stay bit-identical across reruns. The subsystem is OFF by
// default (MemoryOptions::enabled = false) and a device whose spec has
// vram_bytes == 0 is *unmodeled* — memory charging silently disabled,
// never an instant OOM on a default-constructed GpuSpec.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/error.h"
#include "common/sim_time.h"
#include "gpusim/page_table.h"
#include "workload/tenant.h"

namespace sgdrc::memory {

/// Where one replica's weights live right now.
enum class Residency : uint8_t {
  /// No memory modeling on this device (subsystem disabled, or
  /// GpuSpec::vram_bytes == 0 ⇒ capacity unmodeled/unlimited).
  kUnmodeled,
  /// Registered but weights not on the device (never loaded, evicted,
  /// or waiting for capacity in strict mode).
  kCold,
  /// Cold-start DMA in flight; requests are gated until finish_load().
  kLoading,
  /// Weights resident; requests run at full speed.
  kWarm,
  /// Oversubscribed degraded mode: weights stream through the UVM
  /// staging window on every request (demand paging).
  kPaged,
};

constexpr const char* residency_name(Residency r) {
  switch (r) {
    case Residency::kUnmodeled: return "unmodeled";
    case Residency::kCold:      return "cold";
    case Residency::kLoading:   return "loading";
    case Residency::kWarm:      return "warm";
    case Residency::kPaged:     return "paged";
  }
  return "?";
}

/// How the evictor picks victims under pressure.
enum class EvictPolicy : uint8_t {
  /// SGDRC: evict idle replicas in (tenant priority asc, last use asc)
  /// order; replicas with work in flight and replicas within their own
  /// declared memory quota are never evicted.
  kLruPriority,
  /// Naive baseline: first-loaded is first-evicted, blind to priority,
  /// quota, and whether the replica is mid-request.
  kFifo,
};

struct MemoryOptions {
  /// Master switch; false ⇒ no MemoryManager is created and every
  /// replica reports Residency::kUnmodeled (bit-identical to the
  /// pre-memory simulator).
  bool enabled = false;
  /// Overrides GpuSpec::vram_bytes when non-zero — the sim-level knob
  /// benchmarks use to sweep memory pressure without minting GpuSpecs.
  uint64_t vram_bytes_override = 0;
  /// Cold-start weight-load bandwidth (PCIe-class host→device DMA).
  double load_gbps = 16.0;
  /// Demand-paging bandwidth in oversubscribed mode (UVM migration is
  /// far below a pipelined bulk DMA).
  double page_gbps = 4.0;
  /// Degrade to demand paging instead of waiting when weights can't fit.
  bool oversubscribe = false;
  /// Fraction of VRAM reserved as the UVM staging window when
  /// oversubscribing (frames taken via PageTable::take_free_frame, the
  /// same reservation primitive driver::UvmMemoryPool uses).
  double paging_window = 0.05;
  EvictPolicy evict = EvictPolicy::kLruPriority;
};

/// Per-device VRAM residency tracker. One instance per ServingSim,
/// created only when modeling is enabled and the device has a modeled
/// capacity. TenantIds are the owning sim's dense ids.
class MemoryManager {
 public:
  using TenantId = workload::TenantId;
  /// "Does tenant t have work in the system right now?" — supplied by
  /// the serving layer at each call that may evict, so draining and
  /// mid-request replicas are never yanked out from under their jobs
  /// (kLruPriority only; the naive kFifo baseline ignores it).
  using BusyFn = std::function<bool(TenantId)>;

  MemoryManager(uint64_t vram_bytes, const MemoryOptions& opt, uint64_t seed);

  /// Invoked once per pressure eviction / quota trespass, with the
  /// affected tenant — the serving layer wires these into its metrics.
  void on_evict(std::function<void(TenantId)> fn) { evict_hook_ = std::move(fn); }
  void on_trespass(std::function<void(TenantId)> fn) {
    trespass_hook_ = std::move(fn);
  }

  /// Register a replica and allocate its weights (evicting idle victims
  /// under pressure). When the weights cannot fit: oversubscribed mode
  /// degrades the replica to kPaged; strict mode leaves it kCold and the
  /// first request waits for capacity. `quota_bytes` is the tenant's
  /// declared VgpuSpec::memory_bytes (0 = none); `priority` orders the
  /// evictor (higher = kept longer).
  void add_replica(TenantId t, uint64_t weight_bytes, int priority,
                   uint64_t quota_bytes, const BusyFn& busy);

  /// The tenant is being removed. Its weights stay resident while the
  /// drain needs them (the busy probe protects them), but the replica
  /// drops to the bottom of the eviction order and is freed outright
  /// when already idle.
  void retire_replica(TenantId t, const BusyFn& busy);

  /// Runtime re-plan (set_vgpu): swap the tenant's quota and priority.
  void set_quota(TenantId t, uint64_t quota_bytes, int priority);

  struct Touch {
    enum class Kind : uint8_t {
      kReady,        ///< warm — run now
      kLoadStarted,  ///< cold-start DMA begins; warm after `delay`
      kLoading,      ///< a DMA is already in flight — keep waiting
      kPagedNow,     ///< just degraded to paging; charge `delay` to the
                     ///< requests already in the system
      kPagedStill,   ///< remains paged (promotion failed); per-request
                     ///< penalties are charged at admission instead
      kWaiting,      ///< strict mode, no capacity — retry on next poke
    };
    Kind kind = Kind::kReady;
    TimeNs delay = 0;
  };

  /// Demand touches tenant t's weights at `now`. Drives the residency
  /// state machine: starts the cold-start DMA for cold replicas (the
  /// caller schedules finish_load(t) after `delay`), retries promoting
  /// paged replicas to resident when pressure has eased, and degrades
  /// cold replicas to paging when oversubscribed and out of capacity.
  Touch request(TenantId t, TimeNs now, const BusyFn& busy);

  /// Cold-start DMA completed: kLoading → kWarm.
  void finish_load(TenantId t, TimeNs now);

  /// LRU touch without a state change (each kernel launch of t).
  void note_use(TenantId t, TimeNs now);

  /// Per-request restream cost of a paged replica.
  TimeNs page_penalty(TenantId t) const;
  /// Cold-start DMA duration for `bytes` at load bandwidth.
  TimeNs load_time(uint64_t bytes) const;

  Residency residency(TenantId t) const;
  uint64_t weight_bytes(TenantId t) const;
  uint64_t capacity_bytes() const { return capacity_bytes_; }
  /// Bytes currently allocated to resident (warm/loading/cold-allocated)
  /// weights.
  uint64_t resident_bytes() const { return resident_bytes_; }
  uint64_t loads() const { return loads_; }
  uint64_t evictions() const { return evictions_; }
  uint64_t trespasses() const { return trespasses_; }
  const gpusim::PageTable& page_table() const { return pt_; }
  const MemoryOptions& options() const { return opt_; }

 private:
  struct Replica {
    uint64_t weight_bytes = 0;
    uint64_t quota_bytes = 0;
    int priority = 0;
    Residency state = Residency::kCold;
    bool allocated = false;       // frames held in pt_
    bool registered = false;
    bool retired = false;
    gpusim::VirtAddr va = 0;
    TimeNs last_use = 0;
    uint64_t load_order = 0;      // FIFO stamp (allocation order)
  };

  Replica& rep(TenantId t);
  const Replica& rep(TenantId t) const;
  /// Evict victims until `bytes` fit, then allocate. False when the
  /// eviction order ran out of legal victims first.
  bool try_allocate(TenantId t, const BusyFn& busy);
  void free_replica(TenantId t);
  /// Within its own declared quota ⇒ shielded from pressure eviction.
  bool quota_protected(const Replica& r) const {
    return !r.retired && r.quota_bytes > 0 && r.weight_bytes <= r.quota_bytes;
  }
  void begin_load(TenantId t);

  MemoryOptions opt_;
  gpusim::PageTable pt_;
  uint64_t capacity_bytes_ = 0;
  uint64_t usable_bytes_ = 0;    // capacity minus the UVM staging window
  uint64_t resident_bytes_ = 0;
  uint64_t loads_ = 0;
  uint64_t evictions_ = 0;
  uint64_t trespasses_ = 0;
  uint64_t next_load_order_ = 1;
  std::vector<Replica> replicas_;  // dense by TenantId
  std::vector<uint64_t> staging_;  // reserved UVM window frames (PFNs)
  std::function<void(TenantId)> evict_hook_;
  std::function<void(TenantId)> trespass_hook_;
};

}  // namespace sgdrc::memory
