#include "memory/memory.h"

#include <algorithm>
#include <limits>
#include <tuple>

namespace sgdrc::memory {

namespace {
/// Bytes / (GB/s) → integer nanoseconds (1 GB/s = 1 byte/ns).
TimeNs transfer_ns(uint64_t bytes, double gbps) {
  SGDRC_REQUIRE(gbps > 0.0, "transfer bandwidth must be positive");
  return static_cast<TimeNs>(static_cast<double>(bytes) / gbps + 0.5);
}

/// MMU frames needed for `bytes` (page-granular, like PageTable::alloc).
uint64_t frames_for(uint64_t bytes) {
  return (bytes + gpusim::kPageBytes - 1) >> gpusim::kPageBits;
}
}  // namespace

MemoryManager::MemoryManager(uint64_t vram_bytes, const MemoryOptions& opt,
                             uint64_t seed)
    : opt_(opt), pt_(vram_bytes, seed), capacity_bytes_(vram_bytes) {
  SGDRC_REQUIRE(vram_bytes >= gpusim::kPageBytes,
                "modeled VRAM smaller than one page (vram_bytes == 0 means "
                "unmodeled — do not construct a MemoryManager for it)");
  usable_bytes_ = capacity_bytes_;
  if (opt_.oversubscribe) {
    // The UVM staging window: a slice of frames reserved through the
    // same take_free_frame() primitive driver::UvmMemoryPool builds its
    // colored pool from. Paged replicas stream through these frames, so
    // they are never available to resident weights.
    SGDRC_REQUIRE(opt_.paging_window > 0.0 && opt_.paging_window < 1.0,
                  "paging_window must be a fraction in (0,1)");
    const uint64_t want = std::max<uint64_t>(
        1, static_cast<uint64_t>(static_cast<double>(pt_.total_frames()) *
                                 opt_.paging_window));
    staging_.reserve(want);
    for (uint64_t i = 0; i < want; ++i) {
      staging_.push_back(pt_.take_free_frame());
    }
    usable_bytes_ = capacity_bytes_ - want * gpusim::kPageBytes;
  }
}

MemoryManager::Replica& MemoryManager::rep(TenantId t) {
  SGDRC_REQUIRE(t < replicas_.size() && replicas_[t].registered,
                "unknown replica");
  return replicas_[t];
}

const MemoryManager::Replica& MemoryManager::rep(TenantId t) const {
  SGDRC_REQUIRE(t < replicas_.size() && replicas_[t].registered,
                "unknown replica");
  return replicas_[t];
}

void MemoryManager::add_replica(TenantId t, uint64_t weight_bytes,
                                int priority, uint64_t quota_bytes,
                                const BusyFn& busy) {
  if (t >= replicas_.size()) replicas_.resize(t + 1);
  SGDRC_REQUIRE(!replicas_[t].registered, "replica already registered");
  SGDRC_REQUIRE(
      opt_.oversubscribe ||
          frames_for(weight_bytes) * gpusim::kPageBytes <= usable_bytes_,
      "replica weights exceed device VRAM and oversubscription "
      "is off — the replica could never become resident");
  Replica& r = replicas_[t];
  r.registered = true;
  r.weight_bytes = weight_bytes;
  r.quota_bytes = quota_bytes;
  r.priority = priority;
  r.state = Residency::kCold;
  if (weight_bytes == 0) return;
  // Registration allocates the weights (best effort): the fleet warms a
  // replica up before traffic reaches it when capacity allows, matching
  // real serving stacks that load at deploy time. Under pressure the
  // allocation may fail — the replica stays cold (strict) or degrades
  // to demand paging (oversubscribed); the first request sorts it out.
  if (!try_allocate(t, busy) && opt_.oversubscribe) {
    r.state = Residency::kPaged;
  }
}

void MemoryManager::retire_replica(TenantId t, const BusyFn& busy) {
  Replica& r = rep(t);
  r.retired = true;
  r.priority = std::numeric_limits<int>::min();
  // Never free under an in-flight DMA (finish_load still needs the
  // frames); a retired kLoading replica is reaped by pressure eviction
  // once the load lands.
  if (r.allocated && r.state != Residency::kLoading && !(busy && busy(t))) {
    free_replica(t);
  }
}

void MemoryManager::set_quota(TenantId t, uint64_t quota_bytes,
                              int priority) {
  Replica& r = rep(t);
  r.quota_bytes = quota_bytes;
  r.priority = priority;
}

MemoryManager::Touch MemoryManager::request(TenantId t, TimeNs now,
                                            const BusyFn& busy) {
  Replica& r = rep(t);
  switch (r.state) {
    case Residency::kWarm:
      r.last_use = now;
      return {Touch::Kind::kReady, 0};
    case Residency::kLoading:
      return {Touch::Kind::kLoading, 0};
    case Residency::kPaged:
      // A paged replica keeps trying to become resident: pressure may
      // have eased since it degraded.
      if (try_allocate(t, busy)) {
        begin_load(t);
        return {Touch::Kind::kLoadStarted, load_time(r.weight_bytes)};
      }
      r.last_use = now;
      return {Touch::Kind::kPagedStill, 0};
    case Residency::kCold: {
      if (r.weight_bytes == 0) {
        r.state = Residency::kWarm;
        r.last_use = now;
        return {Touch::Kind::kReady, 0};
      }
      if (!r.allocated && !try_allocate(t, busy)) {
        if (opt_.oversubscribe) {
          r.state = Residency::kPaged;
          r.last_use = now;
          return {Touch::Kind::kPagedNow, page_penalty(t)};
        }
        return {Touch::Kind::kWaiting, 0};
      }
      begin_load(t);
      return {Touch::Kind::kLoadStarted, load_time(r.weight_bytes)};
    }
    case Residency::kUnmodeled:
      break;
  }
  SGDRC_CHECK(false, "replica in impossible residency state");
  return {Touch::Kind::kReady, 0};
}

void MemoryManager::begin_load(TenantId t) {
  Replica& r = rep(t);
  SGDRC_CHECK(r.allocated, "load without an allocation");
  r.state = Residency::kLoading;
  ++loads_;
  if (r.quota_bytes > 0 && r.weight_bytes > r.quota_bytes) {
    // Loading beyond the tenant's own declared memory quota: allowed
    // (quotas are guarantees, not caps) but counted, exactly like TPC
    // guarantee trespasses.
    ++trespasses_;
    if (trespass_hook_) trespass_hook_(t);
  }
}

void MemoryManager::finish_load(TenantId t, TimeNs now) {
  Replica& r = rep(t);
  SGDRC_CHECK(r.state == Residency::kLoading, "finish_load without a load");
  r.state = Residency::kWarm;
  r.last_use = now;
}

void MemoryManager::note_use(TenantId t, TimeNs now) {
  if (t >= replicas_.size() || !replicas_[t].registered) return;
  replicas_[t].last_use = now;
}

TimeNs MemoryManager::page_penalty(TenantId t) const {
  // Worst-case demand-paging model: the working set is the whole weight
  // tensor set and the staging window is far smaller, so every request
  // restreams the weights at UVM migration bandwidth.
  return transfer_ns(rep(t).weight_bytes, opt_.page_gbps);
}

TimeNs MemoryManager::load_time(uint64_t bytes) const {
  return transfer_ns(bytes, opt_.load_gbps);
}

Residency MemoryManager::residency(TenantId t) const {
  if (t >= replicas_.size() || !replicas_[t].registered) {
    return Residency::kUnmodeled;
  }
  return replicas_[t].state;
}

uint64_t MemoryManager::weight_bytes(TenantId t) const {
  return rep(t).weight_bytes;
}

bool MemoryManager::try_allocate(TenantId t, const BusyFn& busy) {
  Replica& r = rep(t);
  SGDRC_CHECK(!r.allocated, "replica already allocated");
  const uint64_t frames = frames_for(r.weight_bytes);
  if (frames * gpusim::kPageBytes > usable_bytes_) return false;
  // Gather the legal victims first and prove the fit is achievable
  // BEFORE evicting anyone — a strict-mode waiter retried on every poke
  // must not strip the device of everyone else's weights for nothing.
  // kLruPriority: idle, unprotected replicas in (priority asc, last_use
  // asc, id asc) order — retired replicas sort first via their INT_MIN
  // priority. kFifo (the naive baseline): strictly first-loaded-first-
  // evicted, blind to priority, quota, and in-flight work.
  std::vector<TenantId> victims;
  uint64_t attainable = pt_.free_frames();
  for (TenantId v = 0; v < replicas_.size(); ++v) {
    const Replica& c = replicas_[v];
    if (!c.registered || !c.allocated || v == t) continue;
    if (c.state == Residency::kLoading) continue;  // the DMA owns them
    if (opt_.evict == EvictPolicy::kLruPriority) {
      if (quota_protected(c)) continue;
      if (busy && busy(v)) continue;
    }
    victims.push_back(v);
    attainable += frames_for(c.weight_bytes);
  }
  if (attainable < frames) return false;
  std::sort(victims.begin(), victims.end(), [&](TenantId a, TenantId b) {
    const Replica& ra = replicas_[a];
    const Replica& rb = replicas_[b];
    if (opt_.evict == EvictPolicy::kFifo) return ra.load_order < rb.load_order;
    return std::tuple(ra.priority, ra.last_use, a) <
           std::tuple(rb.priority, rb.last_use, b);
  });
  for (size_t i = 0; pt_.free_frames() < frames; ++i) {
    SGDRC_CHECK(i < victims.size(), "eviction order exhausted mid-fit");
    ++evictions_;
    if (evict_hook_) evict_hook_(victims[i]);
    free_replica(victims[i]);
  }
  r.va = pt_.alloc(r.weight_bytes);
  r.allocated = true;
  r.load_order = next_load_order_++;
  resident_bytes_ += r.weight_bytes;
  return true;
}

void MemoryManager::free_replica(TenantId t) {
  Replica& r = rep(t);
  SGDRC_CHECK(r.allocated, "freeing an unallocated replica");
  pt_.free(r.va, r.weight_bytes);
  r.va = 0;
  r.allocated = false;
  r.state = Residency::kCold;
  SGDRC_CHECK(resident_bytes_ >= r.weight_bytes, "resident-bytes underflow");
  resident_bytes_ -= r.weight_bytes;
}

}  // namespace sgdrc::memory
