// Discrete-event scheduling primitives for the kernel-level executor and
// the serving simulations.
//
// Events at the same timestamp fire in insertion order (a stable tiebreak
// keeps simulations deterministic across library/compiler versions).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/error.h"
#include "common/sim_time.h"

namespace sgdrc {

/// Handle that identifies a scheduled event so it can be cancelled.
using EventId = uint64_t;

class EventQueue {
 public:
  /// Schedule `fn` to fire at absolute simulated time `when`.
  /// `when` must not be in the past relative to now().
  EventId schedule_at(TimeNs when, std::function<void()> fn) {
    SGDRC_CHECK(when >= now_, "scheduling an event in the past");
    const EventId id = next_id_++;
    state_.push_back(State::kPending);
    heap_.push(Entry{when, id, std::move(fn)});
    ++live_;
    return id;
  }

  /// Schedule `fn` to fire `delay` after the current time.
  EventId schedule_after(TimeNs delay, std::function<void()> fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Cancel a pending event. Cancelling an already-fired, already-cancelled
  /// or unknown id is a no-op (returns false). O(1) via tombstones.
  bool cancel(EventId id) {
    if (id >= state_.size() || state_[id] != State::kPending) return false;
    state_[id] = State::kCancelled;
    --live_;
    return true;
  }

  /// True when no live (non-cancelled) events remain.
  bool empty() const { return live_ == 0; }

  /// Number of live pending events.
  size_t pending() const { return live_; }

  TimeNs now() const { return now_; }

  /// Manually advance the clock with no events (e.g. idle gaps driven by an
  /// outer simulation). Must not go backwards.
  void advance_to(TimeNs t) {
    SGDRC_CHECK(t >= now_, "clock cannot go backwards");
    now_ = t;
  }

  /// Pop and run the earliest live event; advances now(). Returns false
  /// when the queue is empty.
  bool run_next() {
    while (!heap_.empty()) {
      if (state_[heap_.top().id] == State::kCancelled) {
        heap_.pop();
        continue;
      }
      Entry e = std::move(const_cast<Entry&>(heap_.top()));
      heap_.pop();
      now_ = e.when;
      state_[e.id] = State::kFired;
      --live_;
      e.fn();
      return true;
    }
    return false;
  }

  /// Run events until the queue drains or `until` is reached (events at
  /// exactly `until` still fire). Returns the number of events fired.
  size_t run_until(TimeNs until) {
    size_t fired = 0;
    while (!heap_.empty()) {
      if (state_[heap_.top().id] == State::kCancelled) {
        heap_.pop();
        continue;
      }
      if (heap_.top().when > until) break;
      Entry e = std::move(const_cast<Entry&>(heap_.top()));
      heap_.pop();
      now_ = e.when;
      state_[e.id] = State::kFired;
      --live_;
      e.fn();
      ++fired;
    }
    now_ = std::max(now_, until);
    return fired;
  }

  /// Drain the whole queue.
  size_t run_all() {
    size_t fired = 0;
    while (run_next()) ++fired;
    return fired;
  }

 private:
  enum class State : uint8_t { kPending, kFired, kCancelled };

  struct Entry {
    TimeNs when;
    EventId id;
    std::function<void()> fn;
    bool operator>(const Entry& o) const {
      if (when != o.when) return when > o.when;
      return id > o.id;  // stable FIFO within a timestamp
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::vector<State> state_;
  TimeNs now_ = 0;
  EventId next_id_ = 0;
  size_t live_ = 0;
};

}  // namespace sgdrc
