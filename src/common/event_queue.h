// Discrete-event scheduling primitives for the kernel-level executor and
// the serving simulations.
//
// Events at the same timestamp fire in insertion order (a stable tiebreak
// keeps simulations deterministic across library/compiler versions).
//
// Bookkeeping is a fixed pool of generation-tagged slots: an EventId is
// (generation << 32 | slot), a slot returns to the free list the moment
// its event fires or is cancelled, and a stale id simply fails the
// generation check. Memory is therefore bounded by the *peak* number of
// concurrently pending events, not by the total ever scheduled — a
// multi-hour run schedules hundreds of millions of events and must not
// grow a tombstone per event. cancel() stays O(1): the heap entry is
// left in place and skipped as a tombstone when it surfaces.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <queue>
#include <vector>

#include "common/error.h"
#include "common/sim_time.h"

namespace sgdrc {

/// Handle that identifies a scheduled event so it can be cancelled.
/// Layout: generation in the high 32 bits, slot index in the low 32 —
/// ids are unique for the queue's lifetime but NOT monotone (slots are
/// reused); ordering guarantees come from an internal sequence number.
using EventId = uint64_t;

class EventQueue {
 public:
  /// Schedule `fn` to fire at absolute simulated time `when`.
  /// `when` must not be in the past relative to now().
  EventId schedule_at(TimeNs when, std::function<void()> fn) {
    SGDRC_CHECK(when >= now_, "scheduling an event in the past");
    uint32_t slot;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
    } else {
      slot = static_cast<uint32_t>(slots_.size());
      slots_.push_back({0, false});
    }
    slots_[slot].pending = true;
    const EventId id =
        (static_cast<uint64_t>(slots_[slot].generation) << 32) | slot;
    heap_.push(Entry{when, seq_++, id, std::move(fn)});
    ++live_;
    return id;
  }

  /// Schedule `fn` to fire `delay` after the current time.
  EventId schedule_after(TimeNs delay, std::function<void()> fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Cancel a pending event. Cancelling an already-fired, already-cancelled
  /// or unknown id is a no-op (returns false). O(1) via tombstones: the
  /// slot is recycled now; the heap entry fails the generation check when
  /// it surfaces and is dropped.
  bool cancel(EventId id) {
    if (!is_pending(id)) return false;
    retire(static_cast<uint32_t>(id));
    --live_;
    return true;
  }

  /// True when no live (non-cancelled) events remain.
  bool empty() const { return live_ == 0; }

  /// Number of live pending events.
  size_t pending() const { return live_; }

  /// Bookkeeping slots allocated (peak concurrent pending events over the
  /// queue's lifetime) — observability for the memory-boundedness tests.
  size_t slot_count() const { return slots_.size(); }

  TimeNs now() const { return now_; }

  /// Manually advance the clock with no events (e.g. idle gaps driven by an
  /// outer simulation). Must not go backwards.
  void advance_to(TimeNs t) {
    SGDRC_CHECK(t >= now_, "clock cannot go backwards");
    now_ = t;
  }

  /// Pop and run the earliest live event; advances now(). Returns false
  /// when the queue is empty.
  bool run_next() {
    while (!heap_.empty()) {
      if (!is_pending(heap_.top().id)) {  // cancelled tombstone
        heap_.pop();
        continue;
      }
      Entry e = std::move(const_cast<Entry&>(heap_.top()));
      heap_.pop();
      now_ = e.when;
      retire(static_cast<uint32_t>(e.id));
      --live_;
      e.fn();
      return true;
    }
    return false;
  }

  /// Run events until the queue drains or `until` is reached (events at
  /// exactly `until` still fire). Returns the number of events fired.
  size_t run_until(TimeNs until) {
    size_t fired = 0;
    while (!heap_.empty()) {
      if (!is_pending(heap_.top().id)) {  // cancelled tombstone
        heap_.pop();
        continue;
      }
      if (heap_.top().when > until) break;
      Entry e = std::move(const_cast<Entry&>(heap_.top()));
      heap_.pop();
      now_ = e.when;
      retire(static_cast<uint32_t>(e.id));
      --live_;
      e.fn();
      ++fired;
    }
    now_ = std::max(now_, until);
    return fired;
  }

  /// Timestamp of the earliest live event, or nullopt when none remain.
  /// Non-const: cancelled tombstones surfacing at the top are dropped so
  /// the answer reflects a *live* event. The sharded fleet engine peeks
  /// every shard to compute the next conservative time window.
  std::optional<TimeNs> peek_next_time() {
    while (!heap_.empty()) {
      if (is_pending(heap_.top().id)) return heap_.top().when;
      heap_.pop();  // cancelled tombstone
    }
    return std::nullopt;
  }

  /// Run events strictly before `until` (events at exactly `until` stay
  /// pending), then advance the clock to `until`. This is the shard-side
  /// half of a conservative time-window barrier: a shard may safely run
  /// everything *before* the next cross-shard event, while same-timestamp
  /// events wait for the canonical fleet-before-device turn. Returns the
  /// number of events fired.
  size_t run_until_before(TimeNs until) {
    size_t fired = 0;
    while (!heap_.empty()) {
      if (!is_pending(heap_.top().id)) {  // cancelled tombstone
        heap_.pop();
        continue;
      }
      if (heap_.top().when >= until) break;
      Entry e = std::move(const_cast<Entry&>(heap_.top()));
      heap_.pop();
      now_ = e.when;
      retire(static_cast<uint32_t>(e.id));
      --live_;
      e.fn();
      ++fired;
    }
    now_ = std::max(now_, until);
    return fired;
  }

  /// Drain the whole queue.
  size_t run_all() {
    size_t fired = 0;
    while (run_next()) ++fired;
    return fired;
  }

 private:
  struct Slot {
    uint32_t generation = 0;
    bool pending = false;
  };

  struct Entry {
    TimeNs when;
    uint64_t seq;  // monotone issue order: stable FIFO within a timestamp
    EventId id;
    std::function<void()> fn;
    bool operator>(const Entry& o) const {
      if (when != o.when) return when > o.when;
      return seq > o.seq;
    }
  };

  bool is_pending(EventId id) const {
    const uint32_t slot = static_cast<uint32_t>(id);
    return slot < slots_.size() && slots_[slot].pending &&
           slots_[slot].generation == static_cast<uint32_t>(id >> 32);
  }

  /// Free a slot for reuse; the bumped generation invalidates stale ids.
  void retire(uint32_t slot) {
    slots_[slot].pending = false;
    ++slots_[slot].generation;
    free_.push_back(slot);
  }

  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  std::vector<Slot> slots_;
  std::vector<uint32_t> free_;
  TimeNs now_ = 0;
  uint64_t seq_ = 0;
  size_t live_ = 0;
};

}  // namespace sgdrc
