// Minimal fixed-width text-table printer. Every bench binary renders its
// paper table/figure through this so outputs are uniform and diffable.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common/error.h"

namespace sgdrc {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void add_row(std::vector<std::string> row) {
    SGDRC_REQUIRE(row.size() == header_.size(),
                  "row width does not match header");
    rows_.push_back(std::move(row));
  }

  /// Format a double with the given precision.
  static std::string num(double v, int precision = 2) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
  }

  static std::string pct(double fraction, int precision = 1) {
    return num(fraction * 100.0, precision) + "%";
  }

  void print(std::ostream& os = std::cout) const {
    std::vector<size_t> width(header_.size());
    for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
    for (const auto& row : rows_) {
      for (size_t c = 0; c < row.size(); ++c) {
        width[c] = std::max(width[c], row[c].size());
      }
    }
    auto print_sep = [&] {
      os << '+';
      for (size_t c = 0; c < width.size(); ++c) {
        os << std::string(width[c] + 2, '-') << '+';
      }
      os << '\n';
    };
    auto print_row = [&](const std::vector<std::string>& row) {
      os << '|';
      for (size_t c = 0; c < row.size(); ++c) {
        os << ' ' << row[c] << std::string(width[c] - row[c].size() + 1, ' ')
           << '|';
      }
      os << '\n';
    };
    print_sep();
    print_row(header_);
    print_sep();
    for (const auto& row : rows_) print_row(row);
    print_sep();
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sgdrc
