// Simulated time. All simulator components measure time in integer
// nanoseconds; doubles appear only at reporting boundaries.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

namespace sgdrc {

/// Simulated nanoseconds since simulation start.
using TimeNs = uint64_t;

/// Signed duration in nanoseconds (for deltas that may be negative).
using DurationNs = int64_t;

constexpr TimeNs kNsPerUs = 1000ull;
constexpr TimeNs kNsPerMs = 1000ull * kNsPerUs;
constexpr TimeNs kNsPerSec = 1000ull * kNsPerMs;

constexpr double to_us(TimeNs t) { return static_cast<double>(t) / 1e3; }
constexpr double to_ms(TimeNs t) { return static_cast<double>(t) / 1e6; }
constexpr double to_sec(TimeNs t) { return static_cast<double>(t) / 1e9; }

constexpr TimeNs from_us(double us) {
  return static_cast<TimeNs>(us * 1e3 + 0.5);
}
constexpr TimeNs from_ms(double ms) {
  return static_cast<TimeNs>(ms * 1e6 + 0.5);
}
constexpr TimeNs from_sec(double s) {
  return static_cast<TimeNs>(s * 1e9 + 0.5);
}

/// Human-readable rendering for logs: picks ns/us/ms/s automatically.
inline std::string format_time(TimeNs t) {
  char buf[64];
  if (t < kNsPerUs) {
    std::snprintf(buf, sizeof(buf), "%lluns",
                  static_cast<unsigned long long>(t));
  } else if (t < kNsPerMs) {
    std::snprintf(buf, sizeof(buf), "%.2fus", to_us(t));
  } else if (t < kNsPerSec) {
    std::snprintf(buf, sizeof(buf), "%.3fms", to_ms(t));
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fs", to_sec(t));
  }
  return buf;
}

}  // namespace sgdrc
