// Statistics sinks used by benches and the metrics pipeline:
//  - Accumulator: streaming mean/variance/min/max (Welford).
//  - Samples:     stores observations; exact percentiles and CDFs.
//  - Histogram:   fixed-width binning for frequency plots (Fig. 9).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <optional>
#include <utility>
#include <vector>

#include "common/error.h"

namespace sgdrc {

/// Streaming moments without storing samples. Numerically stable (Welford).
class Accumulator {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Stores raw observations for exact percentile queries.
/// Percentiles use the nearest-rank method (matches how inference-serving
/// papers report p99: the smallest value ≥ 99% of samples).
class Samples {
 public:
  void add(double x) {
    data_.push_back(x);
    sorted_ = false;
  }

  void add_all(const Samples& other) {
    data_.insert(data_.end(), other.data_.begin(), other.data_.end());
    sorted_ = false;
  }

  size_t count() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  /// Nearest-rank percentile, q in [0, 100].
  double percentile(double q) const {
    SGDRC_REQUIRE(q >= 0.0 && q <= 100.0, "percentile out of range");
    SGDRC_REQUIRE(!data_.empty(), "percentile of empty sample set");
    ensure_sorted();
    if (q == 0.0) return data_.front();
    const size_t rank = static_cast<size_t>(
        std::ceil(q / 100.0 * static_cast<double>(data_.size())));
    return data_[std::min(rank, data_.size()) - 1];
  }

  double p50() const { return percentile(50.0); }
  double p95() const { return percentile(95.0); }
  double p99() const { return percentile(99.0); }
  double max() const { return percentile(100.0); }

  double mean() const {
    SGDRC_REQUIRE(!data_.empty(), "mean of empty sample set");
    double s = 0.0;
    for (double x : data_) s += x;
    return s / static_cast<double>(data_.size());
  }

  /// Fraction of samples with value <= threshold (e.g. SLO attainment).
  /// An empty sample set has no fraction — returning 1.0 here used to let
  /// a tenant that served zero requests report 100% SLO attainment and
  /// vacuously pass downstream pass/fail gates, so no-data is explicit.
  std::optional<double> fraction_at_most(double threshold) const {
    if (data_.empty()) return std::nullopt;
    ensure_sorted();
    const auto it =
        std::upper_bound(data_.begin(), data_.end(), threshold);
    return static_cast<double>(it - data_.begin()) /
           static_cast<double>(data_.size());
  }

  /// Evenly spaced CDF points: (value, cumulative fraction).
  std::vector<std::pair<double, double>> cdf(size_t points = 100) const {
    SGDRC_REQUIRE(!data_.empty(), "cdf of empty sample set");
    ensure_sorted();
    std::vector<std::pair<double, double>> out;
    out.reserve(points);
    for (size_t i = 1; i <= points; ++i) {
      const double frac = static_cast<double>(i) / static_cast<double>(points);
      const size_t idx = static_cast<size_t>(std::ceil(
                             frac * static_cast<double>(data_.size()))) -
                         1;
      out.emplace_back(data_[idx], frac);
    }
    return out;
  }

  const std::vector<double>& raw() const { return data_; }

 private:
  void ensure_sorted() const {
    if (!sorted_) {
      std::sort(data_.begin(), data_.end());
      sorted_ = true;
    }
  }
  mutable std::vector<double> data_;
  mutable bool sorted_ = true;
};

/// Fixed-bin histogram over integer categories (e.g. permutation pattern
/// indices in Fig. 9).
class CategoryHistogram {
 public:
  explicit CategoryHistogram(size_t categories) : counts_(categories, 0) {}

  void add(size_t category) {
    SGDRC_REQUIRE(category < counts_.size(), "category out of range");
    ++counts_[category];
    ++total_;
  }

  size_t categories() const { return counts_.size(); }
  uint64_t count(size_t category) const { return counts_.at(category); }
  uint64_t total() const { return total_; }

  double frequency(size_t category) const {
    return total_ ? static_cast<double>(counts_.at(category)) /
                        static_cast<double>(total_)
                  : 0.0;
  }

  /// Chi-squared statistic against the uniform distribution; used to verify
  /// "all permutation patterns are uniformly distributed" (paper §5.2).
  double chi_squared_uniform() const {
    if (total_ == 0 || counts_.empty()) return 0.0;
    const double expected =
        static_cast<double>(total_) / static_cast<double>(counts_.size());
    double chi2 = 0.0;
    for (uint64_t c : counts_) {
      const double d = static_cast<double>(c) - expected;
      chi2 += d * d / expected;
    }
    return chi2;
  }

  /// Max relative deviation from the uniform frequency.
  double max_uniform_deviation() const {
    if (total_ == 0 || counts_.empty()) return 0.0;
    const double expected = 1.0 / static_cast<double>(counts_.size());
    double worst = 0.0;
    for (size_t i = 0; i < counts_.size(); ++i) {
      worst = std::max(worst,
                       std::abs(frequency(i) - expected) / expected);
    }
    return worst;
  }

 private:
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
};

}  // namespace sgdrc
