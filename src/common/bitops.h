// Bit-manipulation helpers shared by the address-mapping machinery and the
// reverse-engineering code.
#pragma once

#include <bit>
#include <cstdint>

namespace sgdrc {

/// Parity (XOR-fold) of the bits selected by `mask` within `x`.
/// This is the primitive both real GPU hash circuits and FGPU's model use.
constexpr uint32_t masked_parity(uint64_t x, uint64_t mask) {
  return static_cast<uint32_t>(std::popcount(x & mask) & 1);
}

/// Extract bits [lo, hi] inclusive from x, right-aligned.
constexpr uint64_t extract_bits(uint64_t x, unsigned lo, unsigned hi) {
  const unsigned width = hi - lo + 1;
  if (width >= 64) return x >> lo;
  return (x >> lo) & ((uint64_t{1} << width) - 1);
}

/// True when x is a power of two (and non-zero).
constexpr bool is_pow2(uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

/// Ceil(log2(x)) for x >= 1.
constexpr unsigned ceil_log2(uint64_t x) {
  return x <= 1 ? 0u : 64u - static_cast<unsigned>(std::countl_zero(x - 1));
}

/// Integer ceiling division.
constexpr uint64_t ceil_div(uint64_t a, uint64_t b) {
  return (a + b - 1) / b;
}

}  // namespace sgdrc
