// Deterministic pseudo-random number generation for simulation.
//
// Everything in SGDRC that involves randomness (hidden hash keys, cache
// noise, workload arrivals, MLP init) derives from explicit seeds so that
// every experiment is reproducible bit-for-bit.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <utility>

#include "common/error.h"

namespace sgdrc {

/// The golden-ratio increment (2^64/φ): splitmix64's own Weyl constant,
/// and the repo-wide stride for deriving per-index seed streams —
/// seed_i = splitmix64(base + kGoldenSeedStride * (i + 1)) (fleet
/// device seeds, scenario segment seeds). Derived-stream salts are
/// named constants like this one so docs/determinism.md can enumerate
/// every stream (enforced by sgdrc-lint's `rng-seed-literal` check).
constexpr uint64_t kGoldenSeedStride = 0x9E3779B97F4A7C15ull;

/// SplitMix64: tiny, high-quality 64-bit mixer. Used both as a stream
/// seeder and as the keyed integer hash inside the simulated GPU's
/// address-mapping "gate circuits".
constexpr uint64_t splitmix64(uint64_t x) {
  x += kGoldenSeedStride;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// xoshiro256** — fast general-purpose generator for simulation streams.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed) {
    uint64_t x = seed;
    for (auto& si : s_) {
      x = splitmix64(x);
      si = x;
    }
  }

  uint64_t next_u64() {
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, n). n must be > 0.
  uint64_t uniform_u64(uint64_t n) {
    SGDRC_CHECK(n > 0, "uniform_u64 with empty range");
    // Rejection sampling to avoid modulo bias.
    const uint64_t limit = std::numeric_limits<uint64_t>::max() -
                           std::numeric_limits<uint64_t>::max() % n;
    uint64_t v;
    do {
      v = next_u64();
    } while (v >= limit);
    return v % n;
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t uniform_int(int64_t lo, int64_t hi) {
    SGDRC_CHECK(lo <= hi, "uniform_int with inverted range");
    return lo + static_cast<int64_t>(
                    uniform_u64(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Bernoulli trial with probability p of returning true.
  bool bernoulli(double p) { return uniform() < p; }

  /// Exponential with the given rate (events per unit time).
  double exponential(double rate) {
    SGDRC_CHECK(rate > 0, "exponential rate must be positive");
    double u;
    do {
      u = uniform();
    } while (u <= 0.0);
    return -std::log(u) / rate;
  }

  /// Standard normal via Box–Muller (one value per call; simple > fast here).
  double normal(double mean = 0.0, double stddev = 1.0) {
    double u1;
    do {
      u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double z =
        std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * kPi * u2);
    return mean + stddev * z;
  }

  /// Fisher–Yates shuffle of a random-access container.
  template <typename Container>
  void shuffle(Container& c) {
    for (size_t i = c.size(); i > 1; --i) {
      const size_t j = uniform_u64(i);
      std::swap(c[i - 1], c[j]);
    }
  }

  /// Derive an independent child stream (for per-task / per-worker RNGs).
  Rng fork() { return Rng(next_u64()); }

 private:
  static constexpr double kPi = 3.14159265358979323846;
  static constexpr uint64_t rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  uint64_t s_[4];
};

}  // namespace sgdrc
