// A small work-stealing-free thread pool with two users:
//
//  * independent experiment runs (e.g. the 6-system × 2-GPU × 2-load
//    sweep of Fig. 17) — whole simulations fanned out, nothing shared;
//  * the sharded fleet engine (fleet::FleetOptions::parallel), which
//    runs device shards concurrently inside each conservative time
//    window (docs/fleet-engine.md). Determinism there comes from the
//    shards being disjoint, not from this pool ordering anything.
//
// parallel_for preserves result ordering by index and rethrows the
// first exception after every body has run; tests/thread_pool_test.cc
// pins down the contract (the CI TSan job runs it under contention).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "common/error.h"

namespace sgdrc {

class ThreadPool {
 public:
  explicit ThreadPool(size_t threads = std::thread::hardware_concurrency()) {
    if (threads == 0) threads = 1;
    workers_.reserve(threads);
    for (size_t i = 0; i < threads; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  size_t size() const { return workers_.size(); }

  /// Enqueue a task. Tasks must not throw; wrap anything that can.
  void submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      SGDRC_CHECK(!stopping_, "submit after shutdown");
      tasks_.push(std::move(task));
      ++outstanding_;
    }
    cv_.notify_one();
  }

  /// Block until every submitted task has completed.
  void wait_idle() {
    std::unique_lock<std::mutex> lk(mu_);
    idle_cv_.wait(lk, [this] { return outstanding_ == 0; });
  }

  /// Run body(i) for i in [0, n) across the pool and wait for completion.
  /// Exceptions from body are captured and the first one is rethrown.
  void parallel_for(size_t n, const std::function<void(size_t)>& body) {
    if (n == 0) return;
    std::mutex err_mu;
    std::exception_ptr first_error;
    for (size_t i = 0; i < n; ++i) {
      submit([&, i] {
        try {
          body(i);
        } catch (...) {
          std::lock_guard<std::mutex> lk(err_mu);
          if (!first_error) first_error = std::current_exception();
        }
      });
    }
    wait_idle();
    if (first_error) std::rethrow_exception(first_error);
  }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lk(mu_);
        cv_.wait(lk, [this] { return stopping_ || !tasks_.empty(); });
        if (stopping_ && tasks_.empty()) return;
        task = std::move(tasks_.front());
        tasks_.pop();
      }
      task();
      {
        std::lock_guard<std::mutex> lk(mu_);
        --outstanding_;
        if (outstanding_ == 0) idle_cv_.notify_all();
      }
    }
  }

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  size_t outstanding_ = 0;
  bool stopping_ = false;
};

}  // namespace sgdrc
