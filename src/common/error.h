// Error handling primitives shared across all SGDRC libraries.
//
// Precondition violations and invariant breaks throw; recoverable
// configuration problems surface as sgdrc::ConfigError so callers
// (benches, server) can report them without aborting a whole sweep.
#pragma once

#include <stdexcept>
#include <string>

namespace sgdrc {

/// Thrown when a user-supplied configuration is inconsistent
/// (e.g. a channel mask wider than the GPU's channel count).
class ConfigError : public std::runtime_error {
 public:
  explicit ConfigError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when an internal invariant is violated. Seeing one of these
/// means an SGDRC bug, not a user error.
class InvariantError : public std::logic_error {
 public:
  explicit InvariantError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_config(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  throw ConfigError(std::string(file) + ":" + std::to_string(line) +
                    ": requirement failed: " + expr +
                    (msg.empty() ? "" : " — " + msg));
}
[[noreturn]] inline void throw_invariant(const char* expr, const char* file,
                                         int line, const std::string& msg) {
  throw InvariantError(std::string(file) + ":" + std::to_string(line) +
                       ": invariant failed: " + expr +
                       (msg.empty() ? "" : " — " + msg));
}
}  // namespace detail

}  // namespace sgdrc

/// Validate a user-facing precondition; throws sgdrc::ConfigError.
#define SGDRC_REQUIRE(expr, msg)                                     \
  do {                                                               \
    if (!(expr))                                                     \
      ::sgdrc::detail::throw_config(#expr, __FILE__, __LINE__, msg); \
  } while (0)

/// Validate an internal invariant; throws sgdrc::InvariantError.
#define SGDRC_CHECK(expr, msg)                                          \
  do {                                                                  \
    if (!(expr))                                                        \
      ::sgdrc::detail::throw_invariant(#expr, __FILE__, __LINE__, msg); \
  } while (0)
