// Minimal streaming JSON writer for machine-readable bench output
// (BENCH_*.json artifacts the CI perf trajectory ingests). Commas and
// nesting are handled by a scope stack; strings are escaped; non-finite
// doubles become null so the output always parses.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string>
#include <vector>

#include "common/error.h"

namespace sgdrc {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}
  ~JsonWriter() {
    // Throwing from a dtor would terminate mid-unwind and mask the
    // original error, so an unclosed scope only warns.
    if (!stack_.empty()) {
      std::fprintf(stderr, "JsonWriter: %zu unclosed scope(s)\n",
                   stack_.size());
    }
  }

  JsonWriter& begin_object() { return open('{', '}'); }
  JsonWriter& end_object() { return close('}'); }
  JsonWriter& begin_array() { return open('[', ']'); }
  JsonWriter& end_array() { return close(']'); }

  /// Key of the next value inside an object.
  JsonWriter& key(const std::string& k) {
    comma();
    write_string(k);
    os_ << ':';
    pending_value_ = true;
    return *this;
  }

  JsonWriter& value(const std::string& v) {
    comma();
    write_string(v);
    return *this;
  }
  JsonWriter& value(const char* v) { return value(std::string(v)); }
  JsonWriter& value(bool v) {
    comma();
    os_ << (v ? "true" : "false");
    return *this;
  }
  JsonWriter& value(double v) {
    comma();
    if (!std::isfinite(v)) {
      os_ << "null";
    } else {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.9g", v);
      os_ << buf;
    }
    return *this;
  }
  JsonWriter& value(uint64_t v) {
    comma();
    os_ << v;
    return *this;
  }
  JsonWriter& value(int64_t v) {
    comma();
    os_ << v;
    return *this;
  }
  JsonWriter& value(int v) { return value(static_cast<int64_t>(v)); }
  JsonWriter& value(unsigned v) { return value(static_cast<uint64_t>(v)); }

  template <typename T>
  JsonWriter& kv(const std::string& k, const T& v) {
    return key(k).value(v);
  }

 private:
  JsonWriter& open(char c, char closer) {
    comma();
    os_ << c;
    stack_.push_back(closer);
    fresh_ = true;
    return *this;
  }
  JsonWriter& close(char closer) {
    SGDRC_REQUIRE(!stack_.empty() && stack_.back() == closer,
                  "mismatched JSON scope close");
    stack_.pop_back();
    os_ << closer;
    fresh_ = false;
    return *this;
  }
  void comma() {
    if (pending_value_) {
      pending_value_ = false;  // value right after key: no comma
      return;
    }
    if (!fresh_ && !stack_.empty()) os_ << ',';
    fresh_ = false;
  }
  void write_string(const std::string& s) {
    os_ << '"';
    for (const char c : s) {
      switch (c) {
        case '"': os_ << "\\\""; break;
        case '\\': os_ << "\\\\"; break;
        case '\n': os_ << "\\n"; break;
        case '\t': os_ << "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            os_ << buf;
          } else {
            os_ << c;
          }
      }
    }
    os_ << '"';
  }

  std::ostream& os_;
  std::vector<char> stack_;
  bool fresh_ = true;          // no sibling emitted yet in current scope
  bool pending_value_ = false; // key emitted, value expected
};

}  // namespace sgdrc
