// Debug-build shard-ownership race detector for the sharded fleet
// engine (docs/fleet-engine.md).
//
// The engine's concurrency contract is structural: inside a
// conservative time window exactly one worker thread drives a device
// shard (ServingSim::run_shard_until*), and everything that crosses
// shards is a timestamped message scheduled by the main thread
// *between* windows. Nothing in the type system enforces that — a
// future refactor could call inject() from a shard callback of another
// device and the result would be a silent determinism bug long before
// TSan happens to interleave the race.
//
// ShardGuard turns the contract into an assertion. Each ServingSim owns
// one guard; the shard-driving entry points claim it for the duration
// of a window (WindowScope), and every mutating entry point asserts
// that the calling thread either holds the claim (a worker inside its
// own window) or that no claim is held (the engine's main thread
// between windows). A violation prints both thread ids and the entry
// point name, then aborts — loudly, in the test run that introduced
// the bug.
//
// Arming: checks are compiled in unconditionally but dormant (one
// relaxed atomic load per entry point) until armed, either
//   * at build time  — compile with -DSGDRC_DEBUG_OWNERSHIP (the CMake
//     option of the same name), or
//   * at run time    — set the SGDRC_DEBUG_OWNERSHIP environment
//     variable to anything but "0" (how the `fleet_parallel_guarded`
//     ctest arms the stock test matrix), or
//   * programmatically — ShardGuard::arm_process() (the deliberate-
//     violation death tests).
//
// TSan-friendliness: the guard's atomics use memory_order_relaxed
// throughout, deliberately. Acquire/release ordering here would create
// happens-before edges between the racing threads and *hide the very
// races from TSan that this guard exists to surface* — the guard
// observes, it must never synchronize. The engine's real
// happens-before (the pool's submit/wait_idle pair) is unaffected.
#pragma once

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>

namespace sgdrc {

class ShardGuard {
 public:
  /// True when ownership checking is active for this process.
  static bool armed() { return armed_flag().load(std::memory_order_relaxed); }

  /// Arm checking for the rest of the process (tests; idempotent).
  static void arm_process() {
    armed_flag().store(true, std::memory_order_relaxed);
  }

  /// A worker (or the serial engine's main thread) takes exclusive
  /// ownership of the shard for one window. Claiming a shard another
  /// thread currently owns is a violation: two workers are inside the
  /// same shard's window.
  void claim(const char* what) {
    if (!armed()) return;
    const std::thread::id self = std::this_thread::get_id();
    std::thread::id expected{};  // unowned
    if (!owner_.compare_exchange_strong(expected, self,
                                        std::memory_order_relaxed,
                                        std::memory_order_relaxed)) {
      if (expected != self) violation(what, expected);
    }
    ++depth_;  // same-thread re-entry is benign (nested window drains)
  }

  /// Release the window's claim (same thread that claimed).
  void release() {
    if (!armed()) return;
    const std::thread::id self = std::this_thread::get_id();
    const std::thread::id owner = owner_.load(std::memory_order_relaxed);
    if (owner != self) violation("release", owner);
    if (--depth_ == 0) {
      owner_.store(std::thread::id{}, std::memory_order_relaxed);
    }
  }

  /// Assert the calling thread may mutate the shard right now: it holds
  /// the claim (worker inside its own window), or no claim is held (the
  /// engine's main thread between windows). A foreign claim means some
  /// other thread is mid-window in this shard — a cross-thread mutation
  /// race, the exact bug class behind PR 5's device-0 hot-spotting.
  void assert_mutable(const char* what) const {
    if (!armed()) return;
    const std::thread::id owner = owner_.load(std::memory_order_relaxed);
    if (owner != std::thread::id{} && owner != std::this_thread::get_id()) {
      violation(what, owner);
    }
  }

  /// RAII claim for the shard-driving entry points.
  class WindowScope {
   public:
    WindowScope(ShardGuard& g, const char* what) : g_(g) { g_.claim(what); }
    ~WindowScope() { g_.release(); }
    WindowScope(const WindowScope&) = delete;
    WindowScope& operator=(const WindowScope&) = delete;

   private:
    ShardGuard& g_;
  };

 private:
  static std::atomic<bool>& armed_flag() {
    static std::atomic<bool> armed{[] {
#ifdef SGDRC_DEBUG_OWNERSHIP
      return true;
#else
      const char* env = std::getenv("SGDRC_DEBUG_OWNERSHIP");
      return env != nullptr && *env != '\0' &&
             !(env[0] == '0' && env[1] == '\0');
#endif
    }()};
    return armed;
  }

  [[noreturn]] static void violation(const char* what, std::thread::id owner) {
    char self_buf[32], owner_buf[32];
    format_tid(self_buf, sizeof(self_buf), std::this_thread::get_id());
    format_tid(owner_buf, sizeof(owner_buf), owner);
    std::fprintf(stderr,
                 "SGDRC shard-ownership violation in %s: thread %s touched "
                 "a shard claimed by thread %s (cross-thread mutation "
                 "inside a window — see docs/determinism.md)\n",
                 what, self_buf, owner_buf);
    std::abort();
  }

  static void format_tid(char* buf, size_t n, std::thread::id tid) {
    // std::thread::id has no portable integer view; hash it for display.
    std::snprintf(buf, n, "%zx", std::hash<std::thread::id>{}(tid));
  }

  std::atomic<std::thread::id> owner_{};
  /// Same-thread claim nesting depth; only ever touched by the owning
  /// thread between claim() and release(), so a plain int is race-free.
  int depth_ = 0;
};

}  // namespace sgdrc
