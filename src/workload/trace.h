// LS request traces (§9.2). The paper replays Baidu's Apollo autonomous-
// driving trace (via the DISB benchmark); that trace is not
// redistributable, so this generator reproduces its qualitative shape:
// sensor-frame-periodic bursts — each service fires around a frame clock
// with phase offsets and jitter — plus a Poisson background. "Light"
// workload scales the average rate to half of "heavy", exactly as §9.2.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/sim_time.h"

namespace sgdrc::workload {

struct Request {
  TimeNs arrival = 0;
  unsigned service = 0;  // LS service index
};

struct TraceOptions {
  unsigned services = 8;
  TimeNs duration = 2 * kNsPerSec;
  /// Mean request rate per service (requests/s) at scale 1.0. Ignored for
  /// services covered by per_service_rates.
  double rate_per_service = 200.0;
  /// Optional per-service rates (req/s at scale 1.0); models differ in
  /// cost, so the harness balances utilisation across services.
  std::vector<double> per_service_rates;
  /// §9.2: heavy = 1.0 (original trace), light = 0.5.
  double scale = 1.0;
  /// Sensor frame interval (Apollo module cadence).
  TimeNs frame_interval = 10 * kNsPerMs;
  /// Fraction of requests arriving in the frame-aligned burst (the rest
  /// is Poisson background).
  double burstiness = 0.5;
  uint64_t seed = 0xa110;
};

/// Generate an arrival-sorted request stream.
std::vector<Request> generate_apollo_like_trace(const TraceOptions& opt);

}  // namespace sgdrc::workload
