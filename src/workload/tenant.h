// Tenant vocabulary shared by the workload metrics and the serving
// engine: every co-located workload — a latency-sensitive service or a
// best-effort batch task — is a tenant with a QoS class. The scheduler
// API (core/serving.h) and the metrics (workload/metrics.h) are both
// keyed by TenantId, so N-way colocations are first-class rather than a
// hardcoded LS/BE pair.
#pragma once

#include <cstdint>

#include "common/sim_time.h"

namespace sgdrc::workload {

/// Dense index of a tenant within one serving simulation (assignment
/// order of the TenantSpec list; also the index into
/// ServingMetrics::tenants).
using TenantId = uint32_t;

/// Identifies one job — an admitted LS request or a BE batch loop —
/// within one serving simulation. Unique across tenants and classes.
using JobId = uint64_t;

enum class QosClass : uint8_t {
  kLatencySensitive,  // open-loop, SLO-bound (Tab. 3 models A..H)
  kBestEffort,        // closed-loop, throughput-oriented (models I..K)
};

constexpr const char* qos_name(QosClass c) {
  return c == QosClass::kLatencySensitive ? "LS" : "BE";
}

/// Dynamic request batching for a latency-sensitive tenant: requests
/// accumulate in an assembly queue and launch as ONE batched job when
/// either the batch fills (`max_batch`) or the oldest queued request has
/// waited `assembly_timeout` — the classic throughput-for-latency trade
/// of production inference servers. End-to-end latency of every request
/// in the batch includes its own assembly wait.
///
/// Defaults are OFF (max_batch = 1): a tenant without a policy serves
/// each request as its own job, bit-for-bit as before batching existed.
struct BatchPolicy {
  /// Requests per batch at most; 1 disables batching entirely.
  unsigned max_batch = 1;
  /// How long a partial batch may wait for companions before launching
  /// anyway (measured from the first request in the assembly queue).
  /// 0 with max_batch > 1 degenerates to never waiting: every request
  /// launches as a batch of one.
  TimeNs assembly_timeout = 0;

  bool enabled() const { return max_batch > 1; }
};

inline BatchPolicy batch_up_to(unsigned max_batch, TimeNs assembly_timeout) {
  return {max_batch, assembly_timeout};
}

}  // namespace sgdrc::workload
