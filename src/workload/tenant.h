// Tenant vocabulary shared by the workload metrics and the serving
// engine: every co-located workload — a latency-sensitive service or a
// best-effort batch task — is a tenant with a QoS class. The scheduler
// API (core/serving.h) and the metrics (workload/metrics.h) are both
// keyed by TenantId, so N-way colocations are first-class rather than a
// hardcoded LS/BE pair.
#pragma once

#include <cstdint>

namespace sgdrc::workload {

/// Dense index of a tenant within one serving simulation (assignment
/// order of the TenantSpec list; also the index into
/// ServingMetrics::tenants).
using TenantId = uint32_t;

/// Identifies one job — an admitted LS request or a BE batch loop —
/// within one serving simulation. Unique across tenants and classes.
using JobId = uint64_t;

enum class QosClass : uint8_t {
  kLatencySensitive,  // open-loop, SLO-bound (Tab. 3 models A..H)
  kBestEffort,        // closed-loop, throughput-oriented (models I..K)
};

constexpr const char* qos_name(QosClass c) {
  return c == QosClass::kLatencySensitive ? "LS" : "BE";
}

}  // namespace sgdrc::workload
