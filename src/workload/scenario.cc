#include "workload/scenario.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace sgdrc::workload {

// ------------------------------------------------------------ builders ----

Scenario& Scenario::rate(unsigned service, TimeNs at, double multiplier) {
  SGDRC_REQUIRE(multiplier >= 0.0, "rate multiplier must be non-negative");
  SGDRC_REQUIRE(at < duration_, "rate step past the scenario end");
  rate_steps_.push_back({at, service, multiplier});
  return *this;
}

Scenario& Scenario::diurnal(double low, double high, unsigned steps) {
  SGDRC_REQUIRE(steps >= 2 && low >= 0.0 && high >= low,
                "diurnal needs ≥2 steps and 0 ≤ low ≤ high");
  constexpr double kPi = 3.14159265358979323846;
  for (unsigned i = 0; i < steps; ++i) {
    const double phase = 2.0 * kPi * static_cast<double>(i) /
                         static_cast<double>(steps);
    const double m = low + (high - low) * 0.5 * (1.0 - std::cos(phase));
    rate(kAllServices, duration_ * i / steps, m);
  }
  return *this;
}

Scenario& Scenario::arrive(TimeNs at, ScenarioTenant tenant) {
  SGDRC_REQUIRE(at < duration_, "arrival past the scenario end");
  // Arrival order must equal time order: FleetSim assigns service
  // indices as arrivals fire, and the compiled trace assumes they match.
  SGDRC_REQUIRE(arrivals_.empty() || arrivals_.back().at <= at,
                "arrivals must be scripted in time order");
  arrivals_.push_back({at, std::move(tenant)});
  return *this;
}

Scenario& Scenario::depart(TimeNs at, unsigned tenant_index) {
  SGDRC_REQUIRE(at < duration_, "departure past the scenario end");
  departures_.push_back({at, tenant_index});
  return *this;
}

Scenario& Scenario::slo_factor(TimeNs at, double factor) {
  SGDRC_REQUIRE(factor > 0.0, "SLO factor must be positive");
  SGDRC_REQUIRE(at < duration_, "SLO change past the scenario end");
  slo_changes_.push_back({at, factor});
  return *this;
}

Scenario& Scenario::set_quota(TimeNs at, unsigned tenant_index,
                              control::VgpuSpec vgpu) {
  SGDRC_REQUIRE(at < duration_, "quota change past the scenario end");
  quota_changes_.push_back({at, tenant_index, vgpu});
  return *this;
}

Scenario& Scenario::devices(unsigned n) {
  SGDRC_REQUIRE(n >= 1, "scenario needs at least one device");
  devices_ = n;
  return *this;
}

Scenario& Scenario::hardware(std::vector<gpusim::GpuSpec> specs) {
  SGDRC_REQUIRE(!specs.empty(), "hardware needs at least one device spec");
  devices_ = static_cast<unsigned>(specs.size());
  device_specs_ = std::move(specs);
  return *this;
}

Scenario& Scenario::front_door(fleet::FrontDoorConfig cfg) {
  SGDRC_REQUIRE(cfg.enabled, "Scenario::front_door needs an enabled config");
  front_door_ = std::move(cfg);
  return *this;
}

Scenario& Scenario::fail_device(TimeNs at, fleet::DeviceId device) {
  SGDRC_REQUIRE(at < duration_, "device failure past the scenario end");
  failures_.push_back({at, device});
  return *this;
}

Scenario& Scenario::priority(unsigned tenant_index, int priority) {
  priorities_.push_back({tenant_index, priority});
  return *this;
}

Scenario& Scenario::autoscale(fleet::AutoscalerOptions opt) {
  autoscale_ = true;
  autoscaler_opt_ = opt;
  return *this;
}

Scenario& Scenario::batch_ls(BatchPolicy policy) {
  SGDRC_REQUIRE(policy.enabled(), "batch_ls needs max_batch > 1");
  ls_batching_ = policy;
  return *this;
}

Scenario& Scenario::memory(memory::MemoryOptions opt) {
  SGDRC_REQUIRE(opt.enabled, "Scenario::memory needs an enabled config");
  memory_ = opt;
  return *this;
}

// ------------------------------------------------------------ compiler ----

namespace {

/// The open-loop lifetime of one LS service within a scenario.
struct ServiceWindow {
  unsigned service = 0;  // LS service index (fleet numbering)
  double base_rate = 0.0;
  TimeNs from = 0;  // arrival (0 for initial tenants)
  TimeNs to = 0;    // departure, or the scenario end
};

TimeNs departure_of(const Scenario& sc, unsigned tenant_index) {
  TimeNs t = sc.duration();
  for (const auto& d : sc.departures()) {
    if (d.tenant == tenant_index) t = std::min(t, d.at);
  }
  return t;
}

std::vector<ServiceWindow> service_windows(
    const Scenario& sc, const std::vector<ScenarioTenant>& initial) {
  std::vector<ServiceWindow> out;
  unsigned service = 0;
  for (size_t i = 0; i < initial.size(); ++i) {
    if (initial[i].spec.qos != QosClass::kLatencySensitive) continue;
    out.push_back({service++, initial[i].base_rate, 0,
                   departure_of(sc, static_cast<unsigned>(i))});
  }
  for (size_t a = 0; a < sc.arrivals().size(); ++a) {
    const auto& arr = sc.arrivals()[a];
    const unsigned tenant = static_cast<unsigned>(initial.size() + a);
    if (arr.tenant.spec.qos != QosClass::kLatencySensitive) continue;
    out.push_back(
        {service++, arr.tenant.base_rate, arr.at, departure_of(sc, tenant)});
  }
  return out;
}

uint64_t segment_seed(uint64_t base, unsigned service, size_t segment) {
  return splitmix64(splitmix64(base + kGoldenSeedStride *
                                          (static_cast<uint64_t>(service) +
                                           1)) +
                    static_cast<uint64_t>(segment));
}

}  // namespace

std::vector<Request> build_scenario_trace(
    const Scenario& scenario, const std::vector<ScenarioTenant>& initial,
    const ScenarioEngineConfig& cfg) {
  // Piecewise-constant timeline lookup: the last step at or before `t`
  // wins (steps are time-sorted, stable, so the later-scripted of two
  // same-time steps prevails); 1.0 before the first step.
  const auto value_at = [](const std::vector<std::pair<TimeNs, double>>& v,
                           TimeNs t) {
    double m = 1.0;
    for (const auto& s : v) {
      if (s.first <= t) m = s.second;
    }
    return m;
  };

  std::vector<Request> out;
  for (const ServiceWindow& w : service_windows(scenario, initial)) {
    if (w.base_rate <= 0.0 || w.from >= w.to) continue;

    // Two independent timelines that compose multiplicatively: the
    // kAllServices baseline (e.g. a diurnal ramp) and the per-service
    // overlay (e.g. a flash crowd on one service) — so an overlay is
    // not clobbered by the next baseline step.
    std::vector<std::pair<TimeNs, double>> all_steps, svc_steps;
    for (const auto& rs : scenario.rate_steps()) {
      if (rs.service == Scenario::kAllServices) {
        all_steps.emplace_back(rs.at, rs.multiplier);
      } else if (rs.service == w.service) {
        svc_steps.emplace_back(rs.at, rs.multiplier);
      }
    }
    const auto by_time = [](const auto& a, const auto& b) {
      return a.first < b.first;
    };
    std::stable_sort(all_steps.begin(), all_steps.end(), by_time);
    std::stable_sort(svc_steps.begin(), svc_steps.end(), by_time);

    std::vector<TimeNs> cuts{w.from};
    for (const auto* steps : {&all_steps, &svc_steps}) {
      for (const auto& s : *steps) {
        if (s.first > w.from && s.first < w.to) cuts.push_back(s.first);
      }
    }
    std::sort(cuts.begin(), cuts.end());
    cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
    cuts.push_back(w.to);

    for (size_t i = 0; i + 1 < cuts.size(); ++i) {
      const TimeNs from = cuts[i];
      const TimeNs to = cuts[i + 1];
      const double m =
          value_at(all_steps, from) * value_at(svc_steps, from);
      if (m <= 0.0 || to <= from) continue;
      TraceOptions o;
      o.services = 1;
      o.duration = to - from;
      o.per_service_rates = {w.base_rate * m};
      o.burstiness = cfg.burstiness;
      o.frame_interval = cfg.frame_interval;
      o.seed = segment_seed(cfg.seed, w.service, i);
      for (const Request& r : generate_apollo_like_trace(o)) {
        out.push_back({r.arrival + from, w.service});
      }
    }
  }
  std::sort(out.begin(), out.end(), [](const Request& a, const Request& b) {
    return a.arrival != b.arrival ? a.arrival < b.arrival
                                  : a.service < b.service;
  });
  return out;
}

// -------------------------------------------------------------- runner ----

ScenarioOutcome run_scenario(const Scenario& scenario,
                             const std::vector<ScenarioTenant>& initial,
                             const ScenarioEngineConfig& cfg,
                             const fleet::PlacementPolicy& placement,
                             fleet::Router& router,
                             const fleet::PolicyFactory& make_policy) {
  SGDRC_REQUIRE(cfg.slo_multiplier > 0.0,
                "scenarios need an explicit SLO multiplier (tenant churn "
                "makes the per-device default drift)");
  SGDRC_REQUIRE(!initial.empty(), "scenario needs initial tenants");
  const unsigned tenant_space =
      static_cast<unsigned>(initial.size() + scenario.arrivals().size());
  for (const auto& d : scenario.departures()) {
    SGDRC_REQUIRE(d.tenant < tenant_space,
                  "departure references an unknown tenant");
    if (d.tenant >= initial.size()) {
      // A scripted arrival can only depart after it has arrived;
      // rejecting here beats throwing from inside the event loop.
      const auto& arr = scenario.arrivals()[d.tenant - initial.size()];
      SGDRC_REQUIRE(arr.at <= d.at,
                    "departure scheduled before its tenant's arrival");
    }
  }

  for (const auto& q : scenario.quota_changes()) {
    SGDRC_REQUIRE(q.tenant < tenant_space,
                  "quota change references an unknown tenant");
  }
  for (const auto& f : scenario.device_failures()) {
    SGDRC_REQUIRE(f.device < scenario.device_count(),
                  "device failure references an unknown device");
  }
  for (const auto& p : scenario.priorities()) {
    SGDRC_REQUIRE(p.tenant < initial.size(),
                  "priority references a non-initial tenant");
  }

  fleet::FleetConfig fcfg;
  fcfg.spec = cfg.spec;
  fcfg.device_specs = scenario.device_specs();  // empty = homogeneous
  fcfg.front_door = scenario.front_door_config();
  fcfg.exec_params = cfg.exec_params;
  fcfg.devices = scenario.device_count();
  fcfg.ls_instances = cfg.ls_instances;
  fcfg.duration = scenario.duration();
  fcfg.slo_multiplier = cfg.slo_multiplier;
  fcfg.be_mode = cfg.be_mode;
  fcfg.seed = cfg.seed;
  fcfg.dispatch_latency = cfg.dispatch_latency;
  fcfg.dispatch_jitter = cfg.dispatch_jitter;
  // The scenario's own memory script wins only when armed, so the seven
  // memory-less stock scenarios replay bit-identically whatever the
  // catalog options carry for model-zoo.
  fcfg.memory =
      scenario.memory_options().enabled ? scenario.memory_options()
                                        : cfg.memory;

  // Scenario-wide LS batching: arm every LS tenant that does not declare
  // its own policy (initial and arriving alike), so one catalog entry
  // flips the throughput-for-latency axis for every system identically.
  const auto armed = [&scenario](core::TenantSpec spec) {
    if (scenario.ls_batch_policy().enabled() &&
        spec.qos == QosClass::kLatencySensitive &&
        !spec.batching.enabled()) {
      spec.batching = scenario.ls_batch_policy();
    }
    return spec;
  };

  std::vector<fleet::FleetTenantSpec> tenants;
  tenants.reserve(initial.size());
  for (const ScenarioTenant& t : initial) {
    tenants.push_back(fleet::replicated(armed(t.spec), t.replicas));
  }
  // Shed-protection tiers are construction state, not events: the spec
  // is amended before the fleet is built, so the door (and any
  // priority-sensitive controller) sees it from the first request.
  for (const auto& p : scenario.priorities()) {
    tenants[p.tenant].spec.vgpu.priority = p.priority;
  }

  fleet::FleetSim sim(fcfg, std::move(tenants), placement, router,
                      make_policy);
  fleet::Autoscaler autoscaler(scenario.autoscaler_options());
  const std::vector<Request> trace =
      build_scenario_trace(scenario, initial, cfg);

  sim.begin();
  if (scenario.autoscaled()) autoscaler.attach(sim);
  // Control actions are scheduled before same-timestamp injections, so
  // an arriving service exists before its first request routes.
  for (const auto& a : scenario.arrivals()) {
    sim.at(a.at, [&sim, &placement, spec = armed(a.tenant.spec),
                  replicas = a.tenant.replicas] {
      sim.add_fleet_tenant(fleet::replicated(spec, replicas), placement);
    });
  }
  for (const auto& d : scenario.departures()) {
    sim.at(d.at, [&sim, d] { sim.remove_fleet_tenant(d.tenant); });
  }
  for (const auto& s : scenario.slo_changes()) {
    sim.at(s.at, [&sim, s] { sim.set_slo_factor(s.factor); });
  }
  for (const auto& q : scenario.quota_changes()) {
    sim.at(q.at, [&sim, q] { sim.set_fleet_vgpu(q.tenant, q.vgpu); });
  }
  for (const auto& f : scenario.device_failures()) {
    sim.at(f.at, [&sim, f] { sim.fail_device(f.device); });
  }
  for (const Request& r : trace) {
    if (r.arrival >= scenario.duration()) continue;
    sim.at(r.arrival, [&sim, r] { sim.inject(r.service, r.arrival); });
  }
  sim.run_until(scenario.duration());

  ScenarioOutcome out;
  out.metrics = sim.finish();
  out.requests = trace.size();
  out.scaling = autoscaler.decisions();
  return out;
}

// ------------------------------------------------------------- catalog ----

std::vector<Scenario> scenario_catalog(const ScenarioCatalogOptions& opt) {
  const TimeNs d = opt.duration;
  std::vector<Scenario> out;

  out.emplace_back("steady",
                   "constant load — the static-world sanity check", d);
  out.back().devices(opt.devices);

  out.emplace_back(
      "diurnal", "one sine day: every rate swings 0.4x..1.6x in 8 steps", d);
  out.back().devices(opt.devices).diurnal(0.4, 1.6, 8);

  {
    Scenario flash("flash-crowd",
                   "service 0 spikes 5x for 30% of the run; a reactive "
                   "autoscaler adds and drops replicas",
                   d);
    flash.devices(opt.devices + 1)
        .rate(0, (2 * d) / 5, 5.0)
        .rate(0, (7 * d) / 10, 1.0);
    fleet::AutoscalerOptions aso;
    aso.interval = d / 50;
    flash.autoscale(aso);
    out.push_back(std::move(flash));
  }

  {
    Scenario churn("tenant-churn",
                   "services arrive and depart mid-run; replicas drain", d);
    churn.devices(opt.devices);
    if (opt.make_ls_arrival) {
      // The late departure targets the first scripted arrival, indexed
      // past the initial list — a forgotten initial_tenants would
      // silently depart initial tenant 0 instead.
      SGDRC_REQUIRE(opt.initial_tenants > 0,
                    "scenario_catalog needs initial_tenants when churn "
                    "arrivals are scripted");
      churn.arrive(d / 4, opt.make_ls_arrival(0));
      churn.arrive((3 * d) / 5, opt.make_ls_arrival(1));
      // The second initial tenant leaves mid-run; the first arrival
      // leaves near the end (initial list is LS-first by convention).
      churn.depart(d / 2, 1);
      churn.depart((17 * d) / 20, opt.initial_tenants);
    }
    out.push_back(std::move(churn));
  }

  {
    Scenario surge("be-backfill-surge",
                   "a wave of best-effort batch tenants lands mid-run and "
                   "stays",
                   d);
    surge.devices(opt.devices);
    if (opt.make_be_arrival) {
      surge.arrive((2 * d) / 5, opt.make_be_arrival(0));
      surge.arrive((9 * d) / 20, opt.make_be_arrival(1));
      surge.arrive(d / 2, opt.make_be_arrival(2));
    }
    out.push_back(std::move(surge));
  }

  out.emplace_back("slo-tighten",
                   "every LS SLO tightens to 0.6x halfway through", d);
  out.back().devices(opt.devices).slo_factor(d / 2, 0.6);

  {
    // The throughput-for-latency axis: every LS tenant batches (up to 8
    // requests, 1 ms assembly) while a 3x surge lands mid-run — batching
    // absorbs the surge by amortising launches and weight traffic.
    Scenario batching("batching",
                      "every LS service batches up to 8 requests (1 ms "
                      "assembly) through a 3x mid-run surge",
                      d);
    batching.devices(opt.devices)
        .batch_ls(batch_up_to(8, 1 * kNsPerMs))
        .rate(Scenario::kAllServices, (2 * d) / 5, 3.0)
        .rate(Scenario::kAllServices, (7 * d) / 10, 1.0);
    out.push_back(std::move(batching));
  }

  {
    // The weight-residency axis: far more registered models than fit
    // resident at once. Services arrive throughout the run while early
    // ones cool off or depart, so the hot set keeps shifting and the
    // memory layer must keep re-deciding which weights stay warm.
    Scenario zoo("model-zoo",
                 "high-churn model fleet under VRAM pressure: services "
                 "arrive all run while early ones cool or depart",
                 d);
    zoo.devices(opt.devices);
    if (opt.model_zoo_memory.enabled) zoo.memory(opt.model_zoo_memory);
    if (opt.make_ls_arrival) {
      SGDRC_REQUIRE(opt.initial_tenants > 0,
                    "scenario_catalog needs initial_tenants when model-zoo "
                    "arrivals are scripted");
      zoo.arrive(d / 6, opt.make_ls_arrival(2));
      zoo.arrive(d / 3, opt.make_ls_arrival(3));
      zoo.arrive(d / 2, opt.make_ls_arrival(4));
      zoo.arrive((2 * d) / 3, opt.make_ls_arrival(5));
      // Early services fade as the newcomers heat up: initial services
      // 0 and 1 cool to a trickle (cold enough to become eviction
      // candidates, warm enough to keep paying cold starts if their
      // weights get dropped), and the first two arrivals depart.
      zoo.rate(0, d / 3, 0.1);
      zoo.rate(1, d / 2, 0.1);
      zoo.depart((5 * d) / 12, opt.initial_tenants);
      zoo.depart((3 * d) / 4, opt.initial_tenants + 1);
    }
    out.push_back(std::move(zoo));
  }

  {
    // The heterogeneity axis: the same sine day as `diurnal`, but on a
    // mixed fleet — perf-aware placement and routing should keep the
    // faster devices proportionally busier through both shoulders.
    Scenario hetero("hetero-diurnal",
                    "the diurnal sine day on a mixed fleet (per-device "
                    "GpuSpecs); perf-aware policies keep big devices "
                    "proportionally busier",
                    d);
    if (!opt.hetero_specs.empty()) {
      hetero.hardware(opt.hetero_specs);
    } else {
      hetero.devices(opt.devices);
    }
    hetero.diurnal(0.4, 1.6, 8);
    out.push_back(std::move(hetero));
  }

  {
    // The overload axis: an 8x all-service spike that no placement can
    // absorb — the interesting question is *how* the fleet degrades.
    // With the front door armed, degradation must be QoS-ordered: BE
    // pauses first, then low-priority LS sheds, and the premium tier
    // (service 0, priority 2) keeps attainment longest.
    Scenario overload("flash-overload",
                      "an 8x beyond-capacity spike on a mixed fleet; the "
                      "front door sheds BE first, then low-priority LS — "
                      "the premium tier degrades last",
                      d);
    if (!opt.hetero_specs.empty()) {
      overload.hardware(opt.hetero_specs);
    } else {
      overload.devices(opt.devices);
    }
    overload.rate(Scenario::kAllServices, (2 * d) / 5, 8.0)
        .rate(Scenario::kAllServices, (7 * d) / 10, 1.0)
        .priority(0, 2);
    if (opt.front_door.enabled) overload.front_door(opt.front_door);
    out.push_back(std::move(overload));
  }

  {
    // The client-behaviour axis: a tight per-service token bucket keeps
    // rejecting a 3x surge, and every rejection schedules a backed-off
    // retry — the herd the backoff-and-jitter model must disperse
    // instead of re-synchronising.
    Scenario storm("retry-storm",
                   "a 3x surge against a tight admission bucket; rejected "
                   "clients retry with exponential backoff + jitter",
                   d);
    storm.devices(opt.devices)
        .rate(Scenario::kAllServices, d / 4, 3.0)
        .rate(Scenario::kAllServices, (3 * d) / 5, 1.0);
    if (opt.admission_door.enabled) storm.front_door(opt.admission_door);
    out.push_back(std::move(storm));
  }

  {
    // The availability axis: a device is cordoned mid-run (replicas
    // drain, routing and the autoscaler avoid it) and the survivors
    // must absorb its share — with the front door shedding whatever
    // they cannot.
    Scenario failure("device-failure",
                     "device 1 is cordoned at 40% of the run; a reactive "
                     "autoscaler re-spreads load onto the survivors",
                     d);
    failure.devices(opt.devices + 1).fail_device((2 * d) / 5, 1);
    fleet::AutoscalerOptions aso;
    aso.interval = d / 50;
    failure.autoscale(aso);
    if (opt.front_door.enabled) failure.front_door(opt.front_door);
    out.push_back(std::move(failure));
  }

  return out;
}

}  // namespace sgdrc::workload
