// The dynamic-scenario engine: a Scenario scripts *time* — piecewise
// per-service rate multipliers (diurnal ramps, step spikes, flash
// crowds), tenant arrivals and departures mid-run, and SLO changes —
// while the substrate (models, rates, policy, placement, routing) stays
// a parameter. run_scenario() compiles the script into an open-loop
// request stream plus a timeline of control actions and drives a
// FleetSim through its begin()/inject()/at()/finish() hooks, optionally
// with a reactive Autoscaler in the loop.
//
// This is the layer that exercises the "dynamic" half of SGDRC's claim:
// every benchmark and test that wants a new workload shape writes a
// Scenario (or picks one from scenario_catalog) instead of hand-rolling
// a trace.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "fleet/autoscaler.h"
#include "fleet/fleet.h"
#include "workload/trace.h"

namespace sgdrc::workload {

/// One scripted tenant: the per-device spec, its open-loop base request
/// rate (req/s at multiplier 1.0; LS only), and its replica count.
struct ScenarioTenant {
  core::TenantSpec spec;
  double base_rate = 0.0;
  unsigned replicas = 1;
};

/// A named, scripted dynamic serving scenario. Times are absolute within
/// [0, duration). Tenant indices refer to the combined fleet list: the
/// initial tenants passed to run_scenario() in order, then arrivals in
/// arrival order. LS *service* indices (for rate()) count only LS
/// tenants, in the same combined order — matching FleetSim's service
/// numbering.
class Scenario {
 public:
  /// rate() target meaning "every LS service".
  static constexpr unsigned kAllServices = ~0u;

  Scenario(std::string name, std::string description, TimeNs duration)
      : name_(std::move(name)),
        description_(std::move(description)),
        duration_(duration) {}

  // ------------------------------------------------ timeline builders ----
  /// Set the rate multiplier of one LS service (or kAllServices) from
  /// `at` onward. Each timeline is piecewise constant starting at 1.0,
  /// and the two kinds compose multiplicatively: a service's effective
  /// multiplier is (kAllServices baseline) × (its own overlay), so a
  /// per-service flash crowd rides on top of a diurnal ramp instead of
  /// being clobbered by its next step.
  Scenario& rate(unsigned service, TimeNs at, double multiplier);
  /// Diurnal ramp for every service: one sine period over the run,
  /// sampled as `steps` equal segments between `low` and `high`.
  Scenario& diurnal(double low, double high, unsigned steps);
  /// A tenant arrives mid-run; LS arrivals join the open-loop trace at
  /// `tenant.base_rate` from `at` and take the next service index.
  Scenario& arrive(TimeNs at, ScenarioTenant tenant);
  /// A tenant departs: its traffic stops and its replicas drain.
  /// `tenant_index` is the combined fleet index (see class comment).
  Scenario& depart(TimeNs at, unsigned tenant_index);
  /// Multiply every LS SLO by `factor` from `at` (< 1 tightens).
  Scenario& slo_factor(TimeNs at, double factor);
  /// Re-plan one tenant's vGPU guarantees from `at` (scripted quota
  /// change: grow/shrink a hard TPC reservation or channel share
  /// mid-run). `tenant_index` is the combined fleet index.
  Scenario& set_quota(TimeNs at, unsigned tenant_index,
                      control::VgpuSpec vgpu);
  /// Fleet size the scenario expects (default 2).
  Scenario& devices(unsigned n);
  /// Heterogeneous fleet: one GpuSpec per device (also sets the device
  /// count). run_scenario forwards these as FleetConfig::device_specs;
  /// perf-aware placement/routing normalize by the engine-config
  /// baseline spec.
  Scenario& hardware(std::vector<gpusim::GpuSpec> specs);
  /// Arm the overload front door (admission control, QoS-ordered
  /// shedding, retry storms) for this scenario's fleet.
  Scenario& front_door(fleet::FrontDoorConfig cfg);
  /// Cordon a device mid-run (FleetSim::fail_device): its replicas
  /// drain, routing and scaling avoid it from `at` on.
  Scenario& fail_device(TimeNs at, fleet::DeviceId device);
  /// Shed-protection tier of an *initial* tenant (VgpuSpec::priority;
  /// higher sheds later). Applied to the tenant spec before the fleet
  /// is built — no control event, no effect unless the front door (or
  /// a priority-sensitive controller) reads it.
  Scenario& priority(unsigned tenant_index, int priority);
  /// Put a reactive autoscaler in the loop.
  Scenario& autoscale(fleet::AutoscalerOptions opt);
  /// Arm dynamic request batching on every LS tenant of the run (initial
  /// and scripted arrivals) that does not declare its own BatchPolicy —
  /// the scenario-level switch the stock `batching` scenario uses, so
  /// one catalog entry turns the throughput-for-latency trade on for
  /// every system under test identically.
  Scenario& batch_ls(BatchPolicy policy);
  /// Model GPU memory on every device of the run (weight residency,
  /// cold-start loads, eviction; src/memory) — the scenario-level switch
  /// the stock `model-zoo` scenario uses. Overrides the engine-config
  /// default only when `opt.enabled`; other scenarios stay untouched.
  Scenario& memory(memory::MemoryOptions opt);

  // ------------------------------------------------------- accessors ----
  struct RateStep {
    TimeNs at = 0;
    unsigned service = 0;  // kAllServices = every LS service
    double multiplier = 1.0;
  };
  struct Arrival {
    TimeNs at = 0;
    ScenarioTenant tenant;
  };
  struct Departure {
    TimeNs at = 0;
    unsigned tenant = 0;
  };
  struct SloChange {
    TimeNs at = 0;
    double factor = 1.0;
  };
  struct QuotaChange {
    TimeNs at = 0;
    unsigned tenant = 0;
    control::VgpuSpec vgpu;
  };
  struct DeviceFailure {
    TimeNs at = 0;
    fleet::DeviceId device = 0;
  };
  struct PriorityChange {
    unsigned tenant = 0;
    int priority = 0;
  };

  const std::string& name() const { return name_; }
  const std::string& description() const { return description_; }
  TimeNs duration() const { return duration_; }
  unsigned device_count() const { return devices_; }
  bool autoscaled() const { return autoscale_; }
  /// The scenario-wide LS batching policy (disabled unless batch_ls()).
  const BatchPolicy& ls_batch_policy() const { return ls_batching_; }
  /// The scenario-wide memory model (disabled unless memory()).
  const memory::MemoryOptions& memory_options() const { return memory_; }
  const fleet::AutoscalerOptions& autoscaler_options() const {
    return autoscaler_opt_;
  }
  const std::vector<RateStep>& rate_steps() const { return rate_steps_; }
  const std::vector<Arrival>& arrivals() const { return arrivals_; }
  const std::vector<Departure>& departures() const { return departures_; }
  const std::vector<SloChange>& slo_changes() const { return slo_changes_; }
  const std::vector<QuotaChange>& quota_changes() const {
    return quota_changes_;
  }
  /// Empty = homogeneous (the engine-config spec on every device).
  const std::vector<gpusim::GpuSpec>& device_specs() const {
    return device_specs_;
  }
  const fleet::FrontDoorConfig& front_door_config() const {
    return front_door_;
  }
  const std::vector<DeviceFailure>& device_failures() const {
    return failures_;
  }
  const std::vector<PriorityChange>& priorities() const {
    return priorities_;
  }

 private:
  std::string name_;
  std::string description_;
  TimeNs duration_;
  unsigned devices_ = 2;
  bool autoscale_ = false;
  fleet::AutoscalerOptions autoscaler_opt_;
  BatchPolicy ls_batching_;        // default: disabled
  memory::MemoryOptions memory_;   // default: disabled
  std::vector<gpusim::GpuSpec> device_specs_;  // empty = homogeneous
  fleet::FrontDoorConfig front_door_;          // default: disabled
  std::vector<RateStep> rate_steps_;
  std::vector<Arrival> arrivals_;
  std::vector<Departure> departures_;
  std::vector<SloChange> slo_changes_;
  std::vector<QuotaChange> quota_changes_;
  std::vector<DeviceFailure> failures_;
  std::vector<PriorityChange> priorities_;
};

/// The substrate a scenario runs on. slo_multiplier must be explicit
/// (> 0): tenants arrive and depart mid-run, so the per-device default
/// (n = co-resident tenants at init) would drift across scenarios.
struct ScenarioEngineConfig {
  gpusim::GpuSpec spec;
  gpusim::ExecutorParams exec_params;
  unsigned ls_instances = 4;
  double slo_multiplier = 0.0;
  core::BeMode be_mode = core::BeMode::kRoundRobin;
  uint64_t seed = 0x5ce0;
  TimeNs dispatch_latency = 0;
  TimeNs dispatch_jitter = 0;
  /// Trace shape knobs (forwarded to generate_apollo_like_trace).
  double burstiness = 0.35;
  TimeNs frame_interval = 10 * kNsPerMs;
  /// Fleet-wide memory model default (OFF). A scenario that calls
  /// Scenario::memory() with an enabled config overrides this.
  memory::MemoryOptions memory;
};

struct ScenarioOutcome {
  fleet::FleetMetrics metrics;
  size_t requests = 0;  // open-loop requests compiled from the script
  std::vector<fleet::Autoscaler::Decision> scaling;
};

/// Compile a scenario's rate script into the open-loop request stream:
/// per LS service, piecewise segments between its arrival, every rate
/// step, and its departure, each generated with a seed derived from
/// (cfg.seed, service, segment) so runs are reproducible bit-for-bit.
/// Exposed separately so tests can assert on the stream itself.
std::vector<Request> build_scenario_trace(
    const Scenario& scenario, const std::vector<ScenarioTenant>& initial,
    const ScenarioEngineConfig& cfg);

/// Run one scenario end-to-end on a fleet. `initial` lists the tenants
/// present at t=0 (LS first is conventional but not required); `router`
/// and `placement` must outlive the call. The placement policy is also
/// reused to place mid-run arrivals.
ScenarioOutcome run_scenario(const Scenario& scenario,
                             const std::vector<ScenarioTenant>& initial,
                             const ScenarioEngineConfig& cfg,
                             const fleet::PlacementPolicy& placement,
                             fleet::Router& router,
                             const fleet::PolicyFactory& make_policy);

/// Options for the stock scenario library. The factories mint tenants
/// for churn arrivals (index = arrival ordinal); they may be empty when
/// the caller skips the scenarios that need them.
struct ScenarioCatalogOptions {
  TimeNs duration = 1 * kNsPerSec;
  unsigned devices = 2;
  /// Size of the initial tenant list run_scenario() will receive
  /// (LS + BE), used to index departures of scripted arrivals.
  unsigned initial_tenants = 0;
  std::function<ScenarioTenant(unsigned)> make_ls_arrival;
  std::function<ScenarioTenant(unsigned)> make_be_arrival;
  /// Memory model for the `model-zoo` scenario (high-churn fleet under
  /// VRAM pressure). Leave disabled to get the scenario without memory
  /// modeling (it then degenerates to a churn workload).
  memory::MemoryOptions model_zoo_memory;
  /// Per-device specs for the heterogeneous scenarios (hetero-diurnal,
  /// flash-overload). Empty = those scenarios run homogeneous on
  /// `devices` devices, like the rest of the catalog.
  std::vector<gpusim::GpuSpec> hetero_specs;
  /// Shed-oriented front door for the overload scenarios
  /// (flash-overload, device-failure): queue-depth BE pause + LS shed
  /// bounds and the retry model. Leave disabled to watch them degrade
  /// by unbounded queueing instead (the pre-front-door behaviour).
  fleet::FrontDoorConfig front_door;
  /// Admission-oriented front door for `retry-storm`: a tight
  /// per-service token bucket whose rejections drive the retry herd.
  fleet::FrontDoorConfig admission_door;
};

/// The stock scenario names scenario_catalog() emits, in order — the
/// single source docs/scenarios.md and the sweep's gates key on.
inline constexpr unsigned kStockScenarioCount = 12;

/// The stock library of 12 named dynamic scenarios (docs/scenarios.md
/// catalogs each): steady, diurnal, flash-crowd (5× spike +
/// autoscaler), tenant-churn, BE-backfill-surge, SLO-tighten, batching,
/// model-zoo (weight residency under VRAM pressure), hetero-diurnal
/// (the sine day on a mixed fleet), flash-overload (beyond-capacity
/// spike through the front door), retry-storm (tight admission + client
/// backoff), and device-failure (mid-run cordon + recovery).
std::vector<Scenario> scenario_catalog(const ScenarioCatalogOptions& opt);

}  // namespace sgdrc::workload
