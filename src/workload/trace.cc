#include "workload/trace.h"

#include <algorithm>

#include "common/error.h"

namespace sgdrc::workload {

std::vector<Request> generate_apollo_like_trace(const TraceOptions& opt) {
  SGDRC_REQUIRE(opt.services > 0, "trace needs at least one service");
  SGDRC_REQUIRE(opt.scale > 0.0 && opt.rate_per_service > 0.0,
                "rates must be positive");
  SGDRC_REQUIRE(opt.burstiness >= 0.0 && opt.burstiness <= 1.0,
                "burstiness is a fraction");
  Rng rng(opt.seed);
  std::vector<Request> out;

  for (unsigned s = 0; s < opt.services; ++s) {
    const double base_rate = s < opt.per_service_rates.size()
                                 ? opt.per_service_rates[s]
                                 : opt.rate_per_service;
    SGDRC_REQUIRE(base_rate > 0.0, "per-service rate must be positive");
    const double rate = base_rate * opt.scale;  // req/s
    const double per_frame = rate * to_sec(opt.frame_interval);
    Rng srng = rng.fork();
    // Phase offset: services are not frame-synchronised with each other.
    const TimeNs phase = srng.uniform_u64(opt.frame_interval);

    // Burst component: Poisson count at each frame tick, arrivals packed
    // shortly after the tick (sensor → inference fan-out). Skipped
    // entirely at burstiness 0 (exponential gaps need a positive rate).
    const double mean_burst = per_frame * opt.burstiness;
    if (mean_burst > 0.0) {
      for (TimeNs frame = phase; frame < opt.duration;
           frame += opt.frame_interval) {
        // Poisson via exponential gaps.
        double t = 0.0;
        for (;;) {
          t += srng.exponential(mean_burst);
          if (t >= 1.0) break;
          const TimeNs jitter =
              from_ms(srng.exponential(1.0));  // ~1ms fan-out tail
          const TimeNs at = frame + jitter;
          if (at < opt.duration) out.push_back({at, s});
        }
      }
    }

    // Background component: plain Poisson across the whole window.
    // Skipped entirely at burstiness 1 (everything is in the bursts).
    const double bg_rate = rate * (1.0 - opt.burstiness);  // req/s
    if (bg_rate > 0.0) {
      double t = to_sec(phase);
      for (;;) {
        t += srng.exponential(bg_rate);
        const TimeNs at = from_sec(t);
        if (at >= opt.duration) break;
        out.push_back({at, s});
      }
    }
  }

  std::sort(out.begin(), out.end(),
            [](const Request& a, const Request& b) {
              return a.arrival < b.arrival;
            });
  return out;
}

}  // namespace sgdrc::workload
