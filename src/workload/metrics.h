// Serving metrics (§9.2), keyed by TenantId: per-LS-tenant latency
// distributions, SLO attainment (SLO = n × p99 isolated runtime, n =
// co-running services), LS goodput (requests finishing within SLO per
// second), per-BE-tenant throughput (samples/s), and the combined
// "overall throughput" of Fig. 17c. One TenantMetrics slot carries both
// metric families; the QoS class says which one is live.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/sim_time.h"
#include "common/stats.h"
#include "workload/tenant.h"

namespace sgdrc::workload {

struct TenantMetrics {
  TenantId id = 0;
  QosClass qos = QosClass::kBestEffort;
  std::string name;
  char letter = '?';

  // ---- latency-sensitive family ----
  TimeNs isolated_p99 = 0;  // profiled isolated runtime
  TimeNs slo = 0;           // n × isolated_p99 (§9.2)
  Samples latency;          // end-to-end incl. queueing (ns)
  uint64_t arrived = 0;
  uint64_t served = 0;
  uint64_t attained = 0;  // served within SLO

  /// NaN (→ null in the bench JSON) when no request was served: zero
  /// traffic is "no data", not 100% attainment — a vacuous 1.0 here used
  /// to sail through the CI slo_ok gate.
  double attainment() const {
    return served ? static_cast<double>(attained) /
                        static_cast<double>(served)
                  : std::numeric_limits<double>::quiet_NaN();
  }
  bool has_latency_data() const { return served > 0; }
  double p99_ms() const {
    return latency.empty() ? 0.0 : to_ms(static_cast<TimeNs>(latency.p99()));
  }

  // ---- request-batching family (LS tenants with a BatchPolicy) ----
  /// One sample per launched batch: its occupancy (requests per batch).
  /// Empty when the tenant does not batch.
  Samples batch_sizes;

  // ---- memory-residency family (devices with memory modeling on) ----
  /// Cold-start weight loads (host→device DMA) charged to this tenant.
  uint64_t weight_loads = 0;
  /// Times this tenant's resident weights were evicted under pressure.
  uint64_t weight_evictions = 0;
  /// Requests served in the demand-paging degraded mode.
  uint64_t paged_requests = 0;
  /// End-to-end latency (ns) of the requests that hit a cold or paged
  /// replica — the cold-start tail the memory bench reports the p99 of.
  /// A subset of `latency`; empty when every request found warm weights.
  Samples cold_latency;

  // ---- best-effort family ----
  unsigned batch = 1;
  uint64_t batches_completed = 0;
  uint64_t kernels_done = 0;       // kernel-granularity progress
  uint64_t kernels_per_batch = 1;
  uint64_t evictions = 0;

  /// Samples processed, at kernel granularity (a batch in flight counts
  /// proportionally — throughput over finite windows stays meaningful for
  /// long BE batches).
  double samples() const {
    return static_cast<double>(batch) * static_cast<double>(kernels_done) /
           static_cast<double>(kernels_per_batch);
  }

  /// Fold a replica's metrics into this tenant-wide view (fleet
  /// aggregation: one tenant, instances on many devices). Counters add,
  /// latency samples merge, so p99/attainment are computed over the
  /// union of requests served by every replica.
  void absorb(const TenantMetrics& replica) {
    SGDRC_REQUIRE(qos == replica.qos, "absorbing across QoS classes");
    latency.add_all(replica.latency);
    batch_sizes.add_all(replica.batch_sizes);
    cold_latency.add_all(replica.cold_latency);
    arrived += replica.arrived;
    served += replica.served;
    attained += replica.attained;
    batches_completed += replica.batches_completed;
    kernels_done += replica.kernels_done;
    evictions += replica.evictions;
    weight_loads += replica.weight_loads;
    weight_evictions += replica.weight_evictions;
    paged_requests += replica.paged_requests;
  }
};

// Class-level aggregates over any tenant list (a single device's, or a
// fleet's replica-merged view — both layers report through these).
inline double ls_goodput(const std::vector<TenantMetrics>& tenants,
                         TimeNs duration) {  // attained requests / s
  uint64_t ok = 0;
  for (const auto& m : tenants) {
    if (m.qos == QosClass::kLatencySensitive) ok += m.attained;
  }
  return static_cast<double>(ok) / to_sec(duration);
}

inline double be_throughput(const std::vector<TenantMetrics>& tenants,
                            TimeNs duration) {  // samples / s
  double n = 0;
  for (const auto& m : tenants) {
    if (m.qos == QosClass::kBestEffort) n += m.samples();
  }
  return n / to_sec(duration);
}

inline double mean_attainment(const std::vector<TenantMetrics>& tenants) {
  // Over LS tenants *with data*: a zero-served tenant must not pull the
  // mean toward a vacuous 1.0. NaN when no LS tenant served anything.
  double s = 0.0;
  size_t n = 0;
  for (const auto& m : tenants) {
    if (m.qos != QosClass::kLatencySensitive || !m.has_latency_data()) {
      continue;
    }
    s += m.attainment();
    ++n;
  }
  return n ? s / static_cast<double>(n)
           : std::numeric_limits<double>::quiet_NaN();
}

struct ServingMetrics {
  std::vector<TenantMetrics> tenants;  // indexed by TenantId
  TimeNs duration = 0;
  TimeNs ls_busy_ns = 0;  // wall time with ≥1 LS kernel in flight
  TimeNs be_busy_ns = 0;  // wall time with ≥1 BE kernel in flight
  /// Launches that put a kernel inside another tenant's guaranteed vGPU
  /// TPC region. Plan-emitting controllers are rejected outright by the
  /// enforcer, so a non-zero count exposes a guarantee-blind legacy
  /// policy running against guaranteed tenants.
  uint64_t guarantee_violations = 0;
  /// Weight loads that pushed a tenant past its own declared
  /// VgpuSpec::memory_bytes quota (memory virtualization; quotas are
  /// guarantees, not caps, so the load proceeds but is counted — the
  /// memory analogue of guarantee_violations).
  uint64_t memory_trespasses = 0;

  /// Tenants of one class, in TenantId order (stable across runs of the
  /// same spec list, so results can be joined tenant-by-tenant).
  std::vector<const TenantMetrics*> of_class(QosClass c) const {
    std::vector<const TenantMetrics*> out;
    for (const auto& t : tenants) {
      if (t.qos == c) out.push_back(&t);
    }
    return out;
  }
  size_t count(QosClass c) const {
    size_t n = 0;
    for (const auto& t : tenants) n += t.qos == c;
    return n;
  }

  void record_latency(TenantId t, TimeNs arrival, TimeNs completion) {
    SGDRC_REQUIRE(t < tenants.size(), "unknown tenant");
    auto& m = tenants[t];
    SGDRC_REQUIRE(m.qos == QosClass::kLatencySensitive,
                  "latency recorded for a non-LS tenant");
    const TimeNs lat = completion - arrival;
    m.latency.add(static_cast<double>(lat));
    ++m.served;
    if (lat <= m.slo) ++m.attained;
  }

  double ls_goodput() const {
    return workload::ls_goodput(tenants, duration);
  }
  double be_throughput() const {
    return workload::be_throughput(tenants, duration);
  }
  double overall_throughput() const {
    return ls_goodput() + be_throughput();
  }
  double mean_attainment() const {
    return workload::mean_attainment(tenants);
  }
};

}  // namespace sgdrc::workload
