// Serving metrics (§9.2): per-LS-service latency distributions, SLO
// attainment (SLO = n × p99 isolated runtime, n = co-running services),
// LS goodput (requests finishing within SLO per second), BE throughput
// (samples/s), and the combined "overall throughput" of Fig. 17c.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/sim_time.h"
#include "common/stats.h"

namespace sgdrc::workload {

struct LsServiceMetrics {
  std::string name;
  char letter = '?';
  TimeNs isolated_p99 = 0;  // profiled isolated runtime
  TimeNs slo = 0;           // n × isolated_p99 (§9.2)
  Samples latency;          // end-to-end incl. queueing (ns)
  uint64_t arrived = 0;
  uint64_t served = 0;
  uint64_t attained = 0;  // served within SLO

  double attainment() const {
    return served ? static_cast<double>(attained) /
                        static_cast<double>(served)
                  : 1.0;
  }
  double p99_ms() const {
    return latency.empty() ? 0.0 : to_ms(static_cast<TimeNs>(latency.p99()));
  }
};

struct BeTaskMetrics {
  std::string name;
  char letter = '?';
  unsigned batch = 1;
  uint64_t batches_completed = 0;
  uint64_t kernels_done = 0;       // kernel-granularity progress
  uint64_t kernels_per_batch = 1;
  uint64_t evictions = 0;

  /// Samples processed, at kernel granularity (a batch in flight counts
  /// proportionally — throughput over finite windows stays meaningful for
  /// long BE batches).
  double samples() const {
    return static_cast<double>(batch) * static_cast<double>(kernels_done) /
           static_cast<double>(kernels_per_batch);
  }
};

struct ServingMetrics {
  std::vector<LsServiceMetrics> ls;
  std::vector<BeTaskMetrics> be;
  TimeNs duration = 0;
  TimeNs ls_busy_ns = 0;  // wall time with ≥1 LS kernel in flight
  TimeNs be_busy_ns = 0;  // wall time with a BE kernel in flight

  void record_ls(unsigned service, TimeNs arrival, TimeNs completion) {
    SGDRC_REQUIRE(service < ls.size(), "unknown LS service");
    auto& m = ls[service];
    const TimeNs lat = completion - arrival;
    m.latency.add(static_cast<double>(lat));
    ++m.served;
    if (lat <= m.slo) ++m.attained;
  }

  double ls_goodput() const {  // attained requests / s
    uint64_t ok = 0;
    for (const auto& m : ls) ok += m.attained;
    return static_cast<double>(ok) / to_sec(duration);
  }
  double be_throughput() const {  // samples / s
    double n = 0;
    for (const auto& m : be) n += m.samples();
    return n / to_sec(duration);
  }
  double overall_throughput() const {
    return ls_goodput() + be_throughput();
  }
  double mean_attainment() const {
    if (ls.empty()) return 1.0;
    double s = 0.0;
    for (const auto& m : ls) s += m.attainment();
    return s / static_cast<double>(ls.size());
  }
};

}  // namespace sgdrc::workload
