#include "coloring/transformer.h"

#include <map>

#include "common/rng.h"

namespace sgdrc::coloring {

TransformResult transform_kernel(const gpusim::KernelDesc& k,
                                 TimeNs t_iso_ns) {
  TransformResult res;
  res.kernel = k;
  res.kernel.spt_transformed = true;

  // Count uses per index expression.
  std::map<int, unsigned> uses;
  for (const auto& acc : k.accesses) {
    ++uses[acc.index_expr];
    ++res.rewritten_accesses;
  }
  // Shared expressions materialise one temp each; single-use expressions
  // fold into the address computation.
  for (const auto& [expr, n] : uses) {
    if (n >= 2) ++res.extra_registers;
  }

  // Tiny kernels: register allocation is dominated by unrelated compiler
  // heuristics (§9.1.2's observed outliers). Deterministic per kernel name.
  if (t_iso_ns < from_ms(0.01)) {
    uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : k.name) {
      h = (h ^ static_cast<uint64_t>(c)) * 0x100000001b3ull;
    }
    res.extra_registers += 8 + static_cast<unsigned>(splitmix64(h) % 9);
  }

  res.kernel.base_registers = k.base_registers + res.extra_registers;
  return res;
}

}  // namespace sgdrc::coloring
