// The kernel transformer (§6 / §9.1.2): rewrites a kernel's array-access
// expressions through translate() so colored tensors stay inside their
// sectors, and accounts for the register cost of the rewrite.
//
// Register model (validated against Fig. 15b's shape):
//  * an index expression used by exactly ONE access folds into that
//    access's address computation — nvcc needs no extra live value;
//  * an index expression SHARED by several accesses materialises one
//    temporary → +1 register;
//  * tiny kernels (isolated runtime < 0.01 ms) are dominated by compiler
//    heuristics; the paper observed >10-register outliers on exactly this
//    class. Modelled as a deterministic, name-keyed perturbation.
#pragma once

#include <cstdint>

#include "common/sim_time.h"
#include "gpusim/kernel.h"

namespace sgdrc::coloring {

struct TransformResult {
  gpusim::KernelDesc kernel;    // transformed copy (spt_transformed set)
  unsigned extra_registers = 0;
  unsigned rewritten_accesses = 0;
};

/// Transform `k` for SPT execution. `t_iso_ns` is the kernel's isolated
/// full-GPU runtime (profiler output), used for the tiny-kernel rule.
TransformResult transform_kernel(const gpusim::KernelDesc& k,
                                 TimeNs t_iso_ns);

}  // namespace sgdrc::coloring
