// The transformed-kernel index arithmetic (§6, Fig. 12b/c).
//
// A colored buffer owns one n-KiB sector of every 4 KiB page it spans, so
// logical offsets must be stride-expanded to skip the other sectors:
//
//   #define translate(offset) ((offset) + ((offset) & 0xFFFFF800))   // 2KiB
//
// generalised here for any power-of-two granularity, plus the base shift
// by sector-index × sector-size the paper applies to kernel arguments.
// Each re-indexing costs 2 integer ops (~8 GPU cycles) and at most one
// extra register — the overhead quantified in §9.1.2 / Fig. 15b.
#pragma once

#include <cstdint>

#include "driver/uvm_pool.h"
#include "gpusim/address.h"

namespace sgdrc::coloring {

/// Stride-expand a logical byte offset for a coloring granularity of
/// `sector_bytes` within 4 KiB pages (Fig. 12c's translate()).
constexpr uint64_t translate_offset(uint64_t offset, uint64_t sector_bytes) {
  const uint64_t expansion = gpusim::kPageBytes / sector_bytes;  // 2 or 4
  const uint64_t block = offset & ~(sector_bytes - 1);
  return offset + block * (expansion - 1);
}

/// Virtual address of logical byte `offset` inside a colored buffer:
/// base + sector shift + stride expansion.
inline gpusim::VirtAddr colored_va(const driver::ColoredBuffer& buf,
                                   uint64_t offset) {
  const uint64_t sector = buf.granularity_kib * 1024ull;
  return buf.va + buf.sector * sector + translate_offset(offset, sector);
}

}  // namespace sgdrc::coloring
