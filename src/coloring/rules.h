// Coloring-granularity rules (§A.3 / Tab. 4):
//   1. minimum granularity = channel-partition size (1 KiB);
//   2. maximum granularity = (max # contiguous VRAM channels) KiB;
//   3. allocating 2^N channels → granularity min(2^N, maximum) KiB;
//   4. allocating a non-power-of-two channel count → granularity 1 KiB.
#pragma once

#include "common/bitops.h"
#include "common/error.h"
#include "gpusim/gpu_spec.h"

namespace sgdrc::coloring {

inline unsigned min_granularity_kib(const gpusim::GpuSpec&) { return 1; }

inline unsigned max_granularity_kib(const gpusim::GpuSpec& spec) {
  return spec.channel_group_size;  // Tab. 4: contiguous channel run
}

/// Granularity for a task that will own `channels` VRAM channels.
inline unsigned granularity_for(const gpusim::GpuSpec& spec,
                                unsigned channels) {
  SGDRC_REQUIRE(channels >= 1 && channels <= spec.num_channels,
                "channel allocation out of range");
  if (!is_pow2(channels)) return 1;
  return std::min(channels, max_granularity_kib(spec));
}

}  // namespace sgdrc::coloring
