#include "reveng/conflict.h"

#include <algorithm>

#include "common/error.h"
#include "common/rng.h"
#include "common/stats.h"
#include "gpusim/address.h"

namespace sgdrc::reveng {

using gpusim::kCachelineBytes;
using gpusim::kPartitionBits;
using gpusim::kPartitionBytes;
using gpusim::PhysAddr;

TimeNs ConflictProber::timed_read(PhysAddr pa) {
  ++probes_;
  return arena_.read_pa(pa).latency;
}

void ConflictProber::refresh_l2() {
  arena_.device().mem().flush_l2();
}

void ConflictProber::refresh_l2_via_pchase() {
  // Pointer-chase 4× the L2 capacity. The arena's pages are physically
  // random, so VA-sequential lines land uniformly over channels and sets;
  // 4× capacity pushes the survival probability of any stale line to ~0.
  const uint64_t bytes = arena_.device().spec().l2_bytes * 4;
  const uint64_t lines = std::min(bytes, arena_.bytes()) / kCachelineBytes;
  for (uint64_t i = 0; i < lines; ++i) {
    arena_.device().read(arena_.base() + i * kCachelineBytes);
  }
}

CalibrationResult ConflictProber::calibrate(size_t pair_samples,
                                            uint64_t seed) {
  Rng rng(seed);
  const uint64_t arena_parts = arena_.bytes() >> kPartitionBits;
  SGDRC_REQUIRE(arena_parts >= 64, "arena too small to calibrate");
  auto random_pa = [&]() -> PhysAddr {
    const gpusim::VirtAddr va =
        arena_.base() + rng.uniform_u64(arena_parts) * kPartitionBytes;
    return arena_.device().pa_of(va);
  };

  // --- Hit / miss clusters: re-reading a line we just touched is a hit;
  //     the first touch after a refresh is a miss.
  Samples hits, misses;
  for (int i = 0; i < 64; ++i) {
    const PhysAddr pa = random_pa();
    refresh_l2();
    misses.add(static_cast<double>(timed_read(pa)));
    // Retry the hit a couple of times: the black-box policy occasionally
    // bypasses the fill, turning the re-read into another miss.
    TimeNs best = ~TimeNs{0};
    for (int r = 0; r < 3; ++r) {
      best = std::min(best, timed_read(pa));
    }
    hits.add(static_cast<double>(best));
  }
  cal_.l2_hit_ns = static_cast<TimeNs>(hits.p50());
  cal_.l2_miss_ns = static_cast<TimeNs>(misses.p50());
  SGDRC_CHECK(cal_.l2_miss_ns > cal_.l2_hit_ns,
              "miss latency not above hit latency");
  cal_.l2_miss_threshold = (cal_.l2_hit_ns + cal_.l2_miss_ns) / 2;

  // --- Pair-read clusters: random pairs are almost never bank-conflicted,
  //     so conflicts form a small, clearly separated upper cluster. Split
  //     at the largest latency gap whose upper side is a minority.
  std::vector<double> lat;
  lat.reserve(pair_samples);
  for (size_t i = 0; i < pair_samples; ++i) {
    const PhysAddr a = random_pa();
    const PhysAddr b = random_pa();
    if (a == b) continue;
    refresh_l2();
    ++probes_;
    lat.push_back(static_cast<double>(
        arena_.device().timed_pair_read(arena_.va_of(a), arena_.va_of(b))));
  }
  std::sort(lat.begin(), lat.end());
  cal_.pair_baseline_ns = static_cast<TimeNs>(lat[lat.size() / 2]);
  double best_gap = 0.0;
  size_t split = lat.size();
  for (size_t i = lat.size() / 2; i + 1 < lat.size(); ++i) {
    const double gap = lat[i + 1] - lat[i];
    if (gap > best_gap) {
      best_gap = gap;
      split = i;
    }
  }
  if (split + 1 < lat.size() && best_gap > 0.0) {
    cal_.bank_conflict_threshold =
        static_cast<TimeNs>((lat[split] + lat[split + 1]) / 2.0);
  } else {
    // No conflict observed in the sample (tiny arenas): anything above the
    // observed maximum counts as a conflict.
    cal_.bank_conflict_threshold = static_cast<TimeNs>(lat.back()) + 1;
  }
  calibrated_ = true;
  return cal_;
}

bool ConflictProber::is_dram_bank_conflicted(PhysAddr a0, PhysAddr a1) {
  SGDRC_REQUIRE(calibrated_, "calibrate() before probing");
  refresh_l2();
  ++probes_;
  const TimeNs t =
      arena_.device().timed_pair_read(arena_.va_of(a0), arena_.va_of(a1));
  return t > cal_.bank_conflict_threshold;
}

std::vector<PhysAddr> ConflictProber::find_dram_conflict_addrs(
    PhysAddr addr, size_t need, uint64_t scan_limit) {
  SGDRC_REQUIRE(calibrated_, "calibrate() before probing");
  std::vector<PhysAddr> out;
  uint64_t scanned = 0;
  arena_.for_each_partition(
      gpusim::partition_of(addr) + 1, [&](PhysAddr pa) {
        if (++scanned > scan_limit || out.size() >= need) return false;
        if (is_dram_bank_conflicted(addr, pa)) out.push_back(pa);
        return true;
      });
  return out;
}

bool ConflictProber::is_cacheline_evicted(PhysAddr addr, PhysAddr end) {
  SGDRC_REQUIRE(calibrated_, "calibrate() before probing");
  refresh_l2();
  timed_read(addr);  // populate
  const uint64_t first = gpusim::line_of(addr) + 1;
  const uint64_t last = gpusim::line_of(end);
  for (uint64_t line = first; line <= last; ++line) {
    const PhysAddr pa = line << gpusim::kCachelineBits;
    if (!arena_.owns_pa(pa)) continue;
    timed_read(pa);
  }
  return timed_read(addr) > cal_.l2_miss_threshold;
}

std::vector<PhysAddr> ConflictProber::find_cache_conflict_addrs(
    PhysAddr addr, size_t max_iter) {
  SGDRC_REQUIRE(calibrated_, "calibrate() before probing");
  const gpusim::GpuSpec& spec = arena_.device().spec();
  // Upper bound: intervals longer than a few aggregate L2 capacities are
  // guaranteed to contain enough same-set lines.
  const uint64_t max_upper_lines = spec.l2_bytes * 8 / kCachelineBytes;
  std::vector<PhysAddr> found;

  for (size_t iter = 0; iter < max_iter; ++iter) {
    // Binary search the minimal end (in lines past addr) whose interval
    // read evicts addr, skipping lines already identified so each
    // iteration discovers a fresh conflicting address.
    auto evicted_with = [&](uint64_t lines) {
      refresh_l2();
      timed_read(addr);
      const uint64_t first = gpusim::line_of(addr) + 1;
      for (uint64_t line = first; line <= first + lines - 1; ++line) {
        const PhysAddr pa = line << gpusim::kCachelineBits;
        if (!arena_.owns_pa(pa)) continue;
        if (std::find(found.begin(), found.end(), pa) != found.end()) {
          continue;
        }
        timed_read(pa);
      }
      return timed_read(addr) > cal_.l2_miss_threshold;
    };

    uint64_t lower = 1, upper = max_upper_lines;
    if (!evicted_with(upper)) break;  // nothing more to find in range
    while (lower < upper) {
      const uint64_t mid = (lower + upper) / 2;
      if (evicted_with(mid)) {
        upper = mid;
      } else {
        lower = mid + 1;
      }
    }
    const PhysAddr conflict =
        (gpusim::line_of(addr) + upper) << gpusim::kCachelineBits;
    if (!arena_.owns_pa(conflict)) break;
    found.push_back(conflict);
  }
  return found;
}

bool ConflictProber::fill_evicts(PhysAddr addr,
                                 const std::vector<PhysAddr>& fill) {
  SGDRC_REQUIRE(calibrated_, "calibrate() before probing");
  refresh_l2();
  timed_read(addr);  // a) populate Addr'
  for (const PhysAddr pa : fill) {
    timed_read(pa);  // b) refresh all cachelines of one channel
  }
  return timed_read(addr) > cal_.l2_miss_threshold;  // c) re-time
}

}  // namespace sgdrc::reveng
