#include "reveng/fgpu_xor.h"

#include <algorithm>

#include "common/bitops.h"
#include "common/error.h"

namespace sgdrc::reveng {

namespace {

constexpr unsigned kBits = 25;  // unknown mask bits (hash window)
constexpr unsigned kConst = kBits;
constexpr unsigned kUnknowns = kBits + 1;  // + affine constant

uint64_t hash_window(gpusim::PhysAddr pa) {
  return extract_bits(pa, gpusim::kPartitionBits, gpusim::kHashInputHighBit);
}

}  // namespace

FgpuSolveResult fgpu_solve(
    const std::vector<std::pair<gpusim::PhysAddr, unsigned>>& samples,
    unsigned num_channels) {
  FgpuSolveResult res;
  if (!is_pow2(num_channels)) {
    res.failure =
        "channel count is not a power of two — a pure XOR fold cannot "
        "produce it (Tab. 1's non-power-of-two parts)";
    return res;
  }
  SGDRC_REQUIRE(samples.size() >= kUnknowns,
                "too few samples for the equation system");
  const unsigned out_bits = ceil_log2(num_channels);

  res.masks.assign(out_bits, 0);
  res.constants.assign(out_bits, 0);

  for (unsigned bit = 0; bit < out_bits; ++bit) {
    // Row encoding: bits 0..24 = coefficients, bit 25 = affine term,
    // bit 26 = RHS. Gaussian elimination over GF(2).
    std::vector<uint64_t> rows;
    rows.reserve(samples.size());
    for (const auto& [pa, ch] : samples) {
      uint64_t row = hash_window(pa);
      row |= uint64_t{1} << kConst;  // affine coefficient is always 1
      row |= static_cast<uint64_t>((ch >> bit) & 1) << (kConst + 1);
      rows.push_back(row);
    }

    std::vector<uint64_t> basis;  // reduced rows, one pivot each
    std::vector<int> pivot_of;    // pivot column of basis[i]
    for (uint64_t row : rows) {
      for (size_t b = 0; b < basis.size(); ++b) {
        if ((row >> pivot_of[b]) & 1) row ^= basis[b];
      }
      if ((row & ((uint64_t{1} << kUnknowns) - 1)) == 0) {
        if (row != 0) {
          // 0 = 1: the system is inconsistent. Exactly the failure mode
          // the paper describes for noisy or non-linear mappings.
          res.failure =
              "inconsistent XOR equation system (non-linear mapping or "
              "noise-polluted samples)";
          return res;
        }
        continue;  // redundant equation
      }
      int pivot = 0;
      for (unsigned c = 0; c < kUnknowns; ++c) {
        if ((row >> c) & 1) {
          pivot = static_cast<int>(c);
          break;
        }
      }
      // Keep the basis fully reduced.
      for (size_t b = 0; b < basis.size(); ++b) {
        if ((basis[b] >> pivot) & 1) basis[b] ^= row;
      }
      basis.push_back(row);
      pivot_of.push_back(pivot);
    }

    // Back-substitute: free variables default to 0.
    uint64_t solution = 0;
    for (size_t b = 0; b < basis.size(); ++b) {
      const uint64_t rhs = (basis[b] >> (kConst + 1)) & 1;
      if (rhs) solution |= uint64_t{1} << pivot_of[b];
    }
    res.masks[bit] = solution & ((uint64_t{1} << kBits) - 1);
    res.constants[bit] = static_cast<int>((solution >> kConst) & 1);
  }

  res.success = true;
  return res;
}

unsigned fgpu_predict(const FgpuSolveResult& model, gpusim::PhysAddr pa) {
  SGDRC_REQUIRE(model.success, "predicting with a failed model");
  const uint64_t x = hash_window(pa);
  unsigned ch = 0;
  for (size_t b = 0; b < model.masks.size(); ++b) {
    const unsigned v =
        masked_parity(x, model.masks[b]) ^ static_cast<unsigned>(model.constants[b]);
    ch |= v << b;
  }
  return ch;
}

double fgpu_accuracy(
    const FgpuSolveResult& model,
    const std::vector<std::pair<gpusim::PhysAddr, unsigned>>& samples) {
  if (!model.success || samples.empty()) return 0.0;
  size_t ok = 0;
  for (const auto& [pa, ch] : samples) {
    ok += fgpu_predict(model, pa) == ch;
  }
  return static_cast<double>(ok) / static_cast<double>(samples.size());
}

}  // namespace sgdrc::reveng
