// ChannelMarker — Algorithm 3 of the paper, generalised to first
// *discover* the channels and then label arbitrary addresses:
//
//  1. For each yet-unseen channel, pick a seed address no existing fill
//     set can evict, harvest its DRAM-bank-conflict neighbours (all in the
//     same channel, §2.1), and expand them into a line set large enough to
//     refresh that channel's whole L2 slice.
//  2. label(): read Addr', refresh channel i's cachelines, re-time Addr'.
//     A miss means Addr' lives in channel i (Fig. 11 right).
//
// Labels are *discovered* channel ids — a fixed but arbitrary permutation
// of the silicon's internal numbering. That is all cache coloring needs:
// disjoint channel sets, not NVIDIA's private names. Benches align the two
// spaces with a confusion-matrix match before scoring accuracy.
//
// Noise handling (§5.3): one probe can mislabel when the black-box policy
// bypasses the populate fill (~1 % Pascal / ~5 % Ampere). label() probes
// channels in random order and takes a majority over `repeats` trials,
// which is why the marking — unlike FGPU's equation system — tolerates
// cache noise.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "reveng/conflict.h"
#include "reveng/probe_arena.h"

namespace sgdrc::reveng {

struct MarkerOptions {
  /// Partitions harvested per channel fill set. The fill set must cover
  /// the channel's L2 slice with slack: lines = partitions × 8.
  size_t fill_partitions = 0;  // 0 = derive from slice size (2× coverage)
  /// Candidate partitions examined per channel while harvesting.
  uint64_t scan_limit = 2'000'000;
  /// Majority votes per label() call.
  unsigned default_repeats = 3;
  uint64_t seed = 0x3a27;
};

class ChannelMarker {
 public:
  ChannelMarker(ProbeArena& arena, ConflictProber& prober,
                MarkerOptions options = {});

  /// Discover `num_channels` channels and build their fill sets.
  /// `num_channels` comes from public specs (Tab. 1: bus width / 32).
  void build(unsigned num_channels);

  bool built() const { return !fill_sets_.empty(); }
  unsigned num_channels() const {
    return static_cast<unsigned>(fill_sets_.size());
  }

  /// Label the (discovered) channel of `addr`; nullopt when no channel
  /// wins the majority (rare, noise-dominated probes).
  std::optional<unsigned> label(gpusim::PhysAddr addr,
                                unsigned repeats = 0);

  /// One un-denoised probe — what FGPU-style single-shot sampling sees.
  std::optional<unsigned> label_single_trial(gpusim::PhysAddr addr);

  const std::vector<std::vector<gpusim::PhysAddr>>& fill_sets() const {
    return fill_sets_;
  }

 private:
  ProbeArena& arena_;
  ConflictProber& prober_;
  MarkerOptions opt_;
  Rng rng_;
  std::vector<std::vector<gpusim::PhysAddr>> fill_sets_;
};

}  // namespace sgdrc::reveng
