#include "reveng/lut.h"

#include <algorithm>

#include "common/rng.h"

namespace sgdrc::reveng {

ChannelLut ChannelLut::from_mlp(const Mlp& model, gpusim::PhysAddr start_pa,
                                gpusim::PhysAddr end_pa,
                                unsigned num_channels) {
  ChannelLut lut(start_pa, end_pa, num_channels);
  std::vector<float> feat(Mlp::kAddressFeatures);
  for (uint64_t p = lut.start_; p < lut.end_; ++p) {
    const gpusim::PhysAddr pa = p << gpusim::kPartitionBits;
    Mlp::encode_pa(pa, feat.data());
    lut.labels_[p - lut.start_] =
        static_cast<int16_t>(model.predict(feat.data()));
  }
  return lut;
}

ChannelLut ChannelLut::from_function(
    const std::function<int(gpusim::PhysAddr)>& label,
    gpusim::PhysAddr start_pa, gpusim::PhysAddr end_pa,
    unsigned num_channels) {
  ChannelLut lut(start_pa, end_pa, num_channels);
  for (uint64_t p = lut.start_; p < lut.end_; ++p) {
    const gpusim::PhysAddr pa = p << gpusim::kPartitionBits;
    lut.labels_[p - lut.start_] = static_cast<int16_t>(label(pa));
  }
  return lut;
}

std::vector<int> align_labels(const std::vector<int>& discovered,
                              const std::vector<int>& reference,
                              unsigned num_channels) {
  SGDRC_REQUIRE(discovered.size() == reference.size(),
                "label vectors must have equal length");
  std::vector<std::vector<uint64_t>> confusion(
      num_channels, std::vector<uint64_t>(num_channels, 0));
  for (size_t i = 0; i < discovered.size(); ++i) {
    const int d = discovered[i];
    const int r = reference[i];
    if (d < 0 || r < 0) continue;
    SGDRC_REQUIRE(static_cast<unsigned>(d) < num_channels &&
                      static_cast<unsigned>(r) < num_channels,
                  "label out of range");
    ++confusion[d][r];
  }
  std::vector<int> map(num_channels, -1);
  for (unsigned d = 0; d < num_channels; ++d) {
    const auto& row = confusion[d];
    map[d] = static_cast<int>(
        std::max_element(row.begin(), row.end()) - row.begin());
  }
  return map;
}

double lut_oracle_accuracy(const ChannelLut& lut,
                           const gpusim::AddressMapping& oracle,
                           size_t samples, uint64_t seed) {
  Rng rng(seed);
  const uint64_t parts = lut.partitions();
  std::vector<int> d, r;
  d.reserve(samples);
  r.reserve(samples);
  for (size_t i = 0; i < samples; ++i) {
    const gpusim::PhysAddr pa =
        lut.start_pa() + rng.uniform_u64(parts) * gpusim::kPartitionBytes;
    d.push_back(lut.channel_of(pa));
    r.push_back(static_cast<int>(oracle.channel_of(pa)));
  }
  const auto map = align_labels(d, r, lut.num_channels());
  size_t ok = 0, counted = 0;
  for (size_t i = 0; i < d.size(); ++i) {
    ++counted;
    if (d[i] >= 0 && map[d[i]] == r[i]) ++ok;
  }
  return counted ? static_cast<double>(ok) / static_cast<double>(counted)
                 : 0.0;
}

}  // namespace sgdrc::reveng
