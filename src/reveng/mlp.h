// A from-scratch multi-layer perceptron, the paper's §5.3 instrument:
// "DNNs have been proven to be theoretically capable of statistically
// meaningful approximation of any boolean function" — here it learns the
// VRAM channel hash from (physical address → channel id) samples.
//
// No external ML dependency: dense layers, ReLU, softmax cross-entropy,
// SGD with momentum and weight decay. Deterministic for a given seed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "gpusim/address.h"

namespace sgdrc::reveng {

class Mlp {
 public:
  struct TrainOptions {
    size_t epochs = 80;
    size_t batch = 32;
    double lr = 0.02;
    double momentum = 0.9;
    double weight_decay = 1e-5;
    double lr_decay = 0.99;  // multiplicative per epoch
    uint64_t seed = 0x7ea0;
    bool verbose = false;
  };

  /// `layers` = {input, hidden..., output}; e.g. {25, 128, 64, 12}.
  Mlp(std::vector<size_t> layers, uint64_t seed);

  size_t input_dim() const { return layers_.front(); }
  size_t output_dim() const { return layers_.back(); }

  /// X is row-major [n × input_dim]; y holds class ids in [0, output_dim).
  /// Returns final training-set accuracy.
  double train(const std::vector<float>& x, const std::vector<int>& y,
               const TrainOptions& opt);

  int predict(const float* x) const;
  std::vector<int> predict_batch(const std::vector<float>& x) const;
  double accuracy(const std::vector<float>& x,
                  const std::vector<int>& y) const;

  /// Raw output scores (pre-softmax) for one sample.
  std::vector<float> logits(const float* x) const;

  /// Feature encoding used throughout: hash-input bits 10..34 of the
  /// physical address as ±1 values (25 features, Fig. 10's hash window).
  static constexpr size_t kAddressFeatures = 25;
  static void encode_pa(gpusim::PhysAddr pa, float* out);
  static std::vector<float> encode_pa(gpusim::PhysAddr pa);

 private:
  struct Layer {
    size_t in, out;
    std::vector<float> w, b;      // weights [out×in], bias [out]
    std::vector<float> vw, vb;    // momentum buffers
  };

  void forward(const float* x, std::vector<std::vector<float>>& acts) const;

  std::vector<size_t> layers_;
  std::vector<Layer> net_;
};

}  // namespace sgdrc::reveng
