#include "reveng/mlp.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/bitops.h"
#include "common/error.h"
#include "common/rng.h"

namespace sgdrc::reveng {

void Mlp::encode_pa(gpusim::PhysAddr pa, float* out) {
  const uint64_t x = extract_bits(pa, gpusim::kPartitionBits,
                                  gpusim::kHashInputHighBit);
  for (size_t b = 0; b < kAddressFeatures; ++b) {
    out[b] = (x >> b) & 1 ? 1.0f : -1.0f;
  }
}

std::vector<float> Mlp::encode_pa(gpusim::PhysAddr pa) {
  std::vector<float> v(kAddressFeatures);
  encode_pa(pa, v.data());
  return v;
}

Mlp::Mlp(std::vector<size_t> layers, uint64_t seed)
    : layers_(std::move(layers)) {
  SGDRC_REQUIRE(layers_.size() >= 2, "need at least input and output layers");
  Rng rng(seed);
  for (size_t l = 0; l + 1 < layers_.size(); ++l) {
    Layer lay;
    lay.in = layers_[l];
    lay.out = layers_[l + 1];
    lay.w.resize(lay.in * lay.out);
    lay.b.assign(lay.out, 0.0f);
    lay.vw.assign(lay.w.size(), 0.0f);
    lay.vb.assign(lay.out, 0.0f);
    // He initialisation.
    const double scale = std::sqrt(2.0 / static_cast<double>(lay.in));
    for (auto& w : lay.w) {
      w = static_cast<float>(rng.normal(0.0, scale));
    }
    net_.push_back(std::move(lay));
  }
}

void Mlp::forward(const float* x,
                  std::vector<std::vector<float>>& acts) const {
  acts.resize(net_.size() + 1);
  acts[0].assign(x, x + layers_[0]);
  for (size_t l = 0; l < net_.size(); ++l) {
    const Layer& lay = net_[l];
    auto& out = acts[l + 1];
    out.assign(lay.out, 0.0f);
    const auto& in = acts[l];
    for (size_t o = 0; o < lay.out; ++o) {
      const float* wrow = &lay.w[o * lay.in];
      float s = lay.b[o];
      for (size_t i = 0; i < lay.in; ++i) s += wrow[i] * in[i];
      // ReLU on hidden layers; identity (logits) on the last.
      out[o] = (l + 1 < net_.size()) ? std::max(0.0f, s) : s;
    }
  }
}

double Mlp::train(const std::vector<float>& x, const std::vector<int>& y,
                  const TrainOptions& opt) {
  const size_t n = y.size();
  SGDRC_REQUIRE(x.size() == n * input_dim(), "X shape mismatch");
  for (int label : y) {
    SGDRC_REQUIRE(label >= 0 && static_cast<size_t>(label) < output_dim(),
                  "label out of range");
  }

  Rng rng(opt.seed);
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});

  // Gradient accumulators (reused across batches).
  std::vector<std::vector<float>> gw(net_.size()), gb(net_.size());
  for (size_t l = 0; l < net_.size(); ++l) {
    gw[l].assign(net_[l].w.size(), 0.0f);
    gb[l].assign(net_[l].out, 0.0f);
  }
  std::vector<std::vector<float>> acts;
  std::vector<std::vector<float>> deltas(net_.size() + 1);

  double lr = opt.lr;
  for (size_t epoch = 0; epoch < opt.epochs; ++epoch) {
    rng.shuffle(order);
    for (size_t start = 0; start < n; start += opt.batch) {
      const size_t end = std::min(n, start + opt.batch);
      const float inv = 1.0f / static_cast<float>(end - start);
      for (auto& g : gw) std::fill(g.begin(), g.end(), 0.0f);
      for (auto& g : gb) std::fill(g.begin(), g.end(), 0.0f);

      for (size_t s = start; s < end; ++s) {
        const size_t idx = order[s];
        forward(&x[idx * input_dim()], acts);

        // Softmax cross-entropy gradient at the output.
        auto& out = acts.back();
        float maxv = *std::max_element(out.begin(), out.end());
        float z = 0.0f;
        for (float v : out) z += std::exp(v - maxv);
        auto& dout = deltas[net_.size()];
        dout.resize(out.size());
        for (size_t o = 0; o < out.size(); ++o) {
          const float p = std::exp(out[o] - maxv) / z;
          dout[o] = p - (static_cast<int>(o) == y[idx] ? 1.0f : 0.0f);
        }

        // Backprop.
        for (size_t l = net_.size(); l-- > 0;) {
          const Layer& lay = net_[l];
          const auto& in = acts[l];
          const auto& dout_l = deltas[l + 1];
          auto& din = deltas[l];
          din.assign(lay.in, 0.0f);
          for (size_t o = 0; o < lay.out; ++o) {
            const float d = dout_l[o];
            if (d == 0.0f) continue;
            gb[l][o] += d * inv;
            float* gwrow = &gw[l][o * lay.in];
            const float* wrow = &lay.w[o * lay.in];
            for (size_t i = 0; i < lay.in; ++i) {
              gwrow[i] += d * in[i] * inv;
              din[i] += d * wrow[i];
            }
          }
          if (l > 0) {
            // ReLU derivative of the hidden activation.
            for (size_t i = 0; i < lay.in; ++i) {
              if (acts[l][i] <= 0.0f) din[i] = 0.0f;
            }
          }
        }
      }

      // SGD with momentum + decoupled weight decay.
      for (size_t l = 0; l < net_.size(); ++l) {
        Layer& lay = net_[l];
        for (size_t i = 0; i < lay.w.size(); ++i) {
          lay.vw[i] = static_cast<float>(opt.momentum) * lay.vw[i] -
                      static_cast<float>(lr) * gw[l][i];
          lay.w[i] += lay.vw[i] -
                      static_cast<float>(lr * opt.weight_decay) * lay.w[i];
        }
        for (size_t o = 0; o < lay.out; ++o) {
          lay.vb[o] = static_cast<float>(opt.momentum) * lay.vb[o] -
                      static_cast<float>(lr) * gb[l][o];
          lay.b[o] += lay.vb[o];
        }
      }
    }
    lr *= opt.lr_decay;
    if (opt.verbose && (epoch + 1) % 10 == 0) {
      std::fprintf(stderr, "[mlp] epoch %zu/%zu acc=%.4f\n", epoch + 1,
                   opt.epochs, accuracy(x, y));
    }
  }
  return accuracy(x, y);
}

int Mlp::predict(const float* x) const {
  std::vector<std::vector<float>> acts;
  forward(x, acts);
  const auto& out = acts.back();
  return static_cast<int>(
      std::max_element(out.begin(), out.end()) - out.begin());
}

std::vector<int> Mlp::predict_batch(const std::vector<float>& x) const {
  SGDRC_REQUIRE(x.size() % input_dim() == 0, "X shape mismatch");
  const size_t n = x.size() / input_dim();
  std::vector<int> out(n);
  std::vector<std::vector<float>> acts;
  for (size_t s = 0; s < n; ++s) {
    forward(&x[s * input_dim()], acts);
    const auto& o = acts.back();
    out[s] =
        static_cast<int>(std::max_element(o.begin(), o.end()) - o.begin());
  }
  return out;
}

double Mlp::accuracy(const std::vector<float>& x,
                     const std::vector<int>& y) const {
  const auto pred = predict_batch(x);
  SGDRC_REQUIRE(pred.size() == y.size(), "label count mismatch");
  size_t ok = 0;
  for (size_t i = 0; i < y.size(); ++i) ok += pred[i] == y[i];
  return y.empty() ? 0.0
                   : static_cast<double>(ok) / static_cast<double>(y.size());
}

std::vector<float> Mlp::logits(const float* x) const {
  std::vector<std::vector<float>> acts;
  forward(x, acts);
  return acts.back();
}

}  // namespace sgdrc::reveng
