// FGPU's reverse-engineering approach (§3.2 / Fig. 11 left): assume the
// channel hash is a pure XOR of address bits and solve for the masks with
// a GF(2) equation system. This is the baseline the paper shows to be
//
//   (a) inapplicable when the channel count is not a power of two,
//   (b) wrong on non-linear hashes (the system turns inconsistent), and
//   (c) fragile under cache noise — "even one false positive sample can
//       pollute the equation system".
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "gpusim/address.h"

namespace sgdrc::reveng {

struct FgpuSolveResult {
  bool success = false;
  std::string failure;  // human-readable reason when !success
  /// One 25-bit mask per channel-index bit (over hash-input bits 10..34).
  std::vector<uint64_t> masks;
  /// Affine constants per channel-index bit.
  std::vector<int> constants;
};

/// Solve masks from (physical address, observed channel) samples.
FgpuSolveResult fgpu_solve(
    const std::vector<std::pair<gpusim::PhysAddr, unsigned>>& samples,
    unsigned num_channels);

/// Predict a channel with a recovered linear model.
unsigned fgpu_predict(const FgpuSolveResult& model, gpusim::PhysAddr pa);

/// Accuracy of a recovered model against labelled samples.
double fgpu_accuracy(
    const FgpuSolveResult& model,
    const std::vector<std::pair<gpusim::PhysAddr, unsigned>>& samples);

}  // namespace sgdrc::reveng
