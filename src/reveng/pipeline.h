// End-to-end §5 pipeline: calibrate timing thresholds → discover channels
// and fill sets → collect labelled samples (with majority denoising) →
// train the DNN → emit lookup tables.
//
// On real hardware this campaign took the authors a month per GPU; the
// simulator serves probes immediately, but the sample budget (15 K) and
// every algorithmic step match the paper.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "gpusim/device.h"
#include "reveng/conflict.h"
#include "reveng/lut.h"
#include "reveng/marker.h"
#include "reveng/mlp.h"

namespace sgdrc::reveng {

struct PipelineOptions {
  size_t samples = 15000;        // paper's §5.3 sample budget
  unsigned label_repeats = 3;    // majority votes per sample
  double arena_fraction = 0.9;
  std::vector<size_t> hidden = {128, 64};
  Mlp::TrainOptions train;
  double holdout_fraction = 0.1;
  uint64_t seed = 0x5a1e;
};

struct PipelineReport {
  CalibrationResult calibration;
  unsigned channels = 0;
  size_t samples_collected = 0;   // labelled (majority reached)
  size_t samples_unlabeled = 0;   // majority failed (noise)
  double single_trial_noise = 0;  // single-probe disagreement vs majority
  double holdout_accuracy = 0;    // DNN vs marker labels, unseen addresses
  uint64_t probes = 0;
};

class HashCracker {
 public:
  HashCracker(gpusim::GpuDevice& dev, PipelineOptions opt = {});
  ~HashCracker();

  /// Run the full campaign. Idempotent: reruns retrain from scratch.
  PipelineReport run();

  const Mlp& model() const;

  /// Batch-infer a lookup table over [start_pa, end_pa).
  ChannelLut build_lut(gpusim::PhysAddr start_pa,
                       gpusim::PhysAddr end_pa) const;

  /// The labelled samples — discovered-id space — e.g. for feeding the
  /// FGPU baseline solver.
  const std::vector<std::pair<gpusim::PhysAddr, unsigned>>& samples() const {
    return samples_;
  }

  ChannelMarker& marker();

 private:
  gpusim::GpuDevice& dev_;
  PipelineOptions opt_;
  std::unique_ptr<ProbeArena> arena_;
  std::unique_ptr<ConflictProber> prober_;
  std::unique_ptr<ChannelMarker> marker_;
  std::unique_ptr<Mlp> model_;
  std::vector<std::pair<gpusim::PhysAddr, unsigned>> samples_;
};

}  // namespace sgdrc::reveng
