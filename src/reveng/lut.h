// The channel lookup table (§5.3): one label per 1 KiB channel partition
// over a physical range, generated offline by batch DNN inference (or by
// direct marking for small windows, or from the oracle in tests).
//
// Labels live in *discovered* channel-id space; align_labels() computes
// the confusion-majority correspondence with another labelling (e.g. the
// silicon oracle) so benches can report real accuracy.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/error.h"
#include "gpusim/address.h"
#include "gpusim/hash_mapping.h"
#include "reveng/mlp.h"

namespace sgdrc::reveng {

class ChannelLut {
 public:
  ChannelLut(gpusim::PhysAddr start_pa, gpusim::PhysAddr end_pa,
             unsigned num_channels)
      : start_(gpusim::partition_of(start_pa)),
        end_(gpusim::partition_of(end_pa + gpusim::kPartitionBytes - 1)),
        num_channels_(num_channels),
        labels_(end_ - start_, kUnknown) {
    SGDRC_REQUIRE(end_ > start_, "empty LUT range");
  }

  /// Build by batch inference from a trained model.
  static ChannelLut from_mlp(const Mlp& model, gpusim::PhysAddr start_pa,
                             gpusim::PhysAddr end_pa, unsigned num_channels);

  /// Build from any labelling function (direct marking, oracle in tests).
  static ChannelLut from_function(
      const std::function<int(gpusim::PhysAddr)>& label,
      gpusim::PhysAddr start_pa, gpusim::PhysAddr end_pa,
      unsigned num_channels);

  unsigned num_channels() const { return num_channels_; }
  gpusim::PhysAddr start_pa() const {
    return start_ << gpusim::kPartitionBits;
  }
  gpusim::PhysAddr end_pa() const { return end_ << gpusim::kPartitionBits; }

  bool contains(gpusim::PhysAddr pa) const {
    const uint64_t p = gpusim::partition_of(pa);
    return p >= start_ && p < end_;
  }

  void set(gpusim::PhysAddr pa, int channel) {
    SGDRC_REQUIRE(contains(pa), "address outside LUT range");
    SGDRC_REQUIRE(channel == kUnknown ||
                      (channel >= 0 &&
                       static_cast<unsigned>(channel) < num_channels_),
                  "channel id out of range");
    labels_[gpusim::partition_of(pa) - start_] =
        static_cast<int16_t>(channel);
  }

  /// Label of the 1 KiB partition holding `pa`; kUnknown when unlabeled.
  int channel_of(gpusim::PhysAddr pa) const {
    SGDRC_REQUIRE(contains(pa), "address outside LUT range");
    return labels_[gpusim::partition_of(pa) - start_];
  }

  uint64_t partitions() const { return labels_.size(); }

  static constexpr int kUnknown = -1;

 private:
  uint64_t start_, end_;  // partition indices [start, end)
  unsigned num_channels_;
  std::vector<int16_t> labels_;
};

/// Best discovered→reference correspondence by confusion-matrix majority.
/// Returns map[discovered] = reference label.
std::vector<int> align_labels(const std::vector<int>& discovered,
                              const std::vector<int>& reference,
                              unsigned num_channels);

/// Fraction of sampled partitions where the LUT (after optimal alignment
/// against the silicon oracle) predicts the true channel. Bench scoring
/// only — this is the one place reverse-engineered results meet the oracle.
double lut_oracle_accuracy(const ChannelLut& lut,
                           const gpusim::AddressMapping& oracle,
                           size_t samples, uint64_t seed);

}  // namespace sgdrc::reveng
