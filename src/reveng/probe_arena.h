// The probe arena: a huge allocation covering most of VRAM, the canvas on
// which reverse engineering works. Because physical placement is random,
// the arena gives us (a) access to almost every physical partition and
// (b) a PA→VA reverse map so probes expressed in physical space (the
// paper's Algorithms 1–3) can be issued through the normal load path.
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.h"
#include "gpusim/device.h"

namespace sgdrc::reveng {

class ProbeArena {
 public:
  /// Map `fraction` of the GPU's VRAM (the paper's campaigns allocate as
  /// much as the driver will give them).
  explicit ProbeArena(gpusim::GpuDevice& dev, double fraction = 0.9)
      : dev_(dev) {
    SGDRC_REQUIRE(fraction > 0.0 && fraction <= 1.0,
                  "arena fraction must be in (0, 1]");
    const uint64_t total = dev.spec().vram_bytes;
    bytes_ = (static_cast<uint64_t>(static_cast<double>(total) * fraction) >>
              gpusim::kPageBits)
             << gpusim::kPageBits;
    SGDRC_REQUIRE(bytes_ >= gpusim::kPageBytes, "arena too small");
    base_ = dev.malloc(bytes_);
    va_of_pfn_.assign(dev.page_table().total_frames(), kNone);
    for (uint64_t off = 0; off < bytes_; off += gpusim::kPageBytes) {
      const gpusim::PhysAddr pa = dev.pa_of(base_ + off);
      va_of_pfn_[gpusim::frame_of(pa)] = base_ + off;
    }
  }

  ProbeArena(const ProbeArena&) = delete;
  ProbeArena& operator=(const ProbeArena&) = delete;

  ~ProbeArena() { dev_.free(base_, bytes_); }

  gpusim::VirtAddr base() const { return base_; }
  uint64_t bytes() const { return bytes_; }

  /// Is the physical address inside a page the arena owns?
  bool owns_pa(gpusim::PhysAddr pa) const {
    const uint64_t pfn = gpusim::frame_of(pa);
    return pfn < va_of_pfn_.size() && va_of_pfn_[pfn] != kNone;
  }

  /// Virtual address through which `pa` can be read.
  gpusim::VirtAddr va_of(gpusim::PhysAddr pa) const {
    const uint64_t pfn = gpusim::frame_of(pa);
    SGDRC_REQUIRE(pfn < va_of_pfn_.size() && va_of_pfn_[pfn] != kNone,
                  "physical address outside the probe arena");
    return va_of_pfn_[pfn] | gpusim::page_offset(pa);
  }

  /// Read the word at physical address `pa` through the memory hierarchy.
  gpusim::ReadResult read_pa(gpusim::PhysAddr pa) {
    return dev_.read(va_of(pa));
  }

  gpusim::GpuDevice& device() { return dev_; }

  /// Iterate mapped partitions starting at `from_partition`, in physical
  /// order, invoking fn(pa) until it returns false or space is exhausted.
  /// Returns the number of partitions visited.
  template <typename Fn>
  uint64_t for_each_partition(uint64_t from_partition, Fn&& fn) const {
    const uint64_t last =
        dev_.spec().vram_bytes >> gpusim::kPartitionBits;
    uint64_t visited = 0;
    for (uint64_t p = from_partition; p < last; ++p) {
      const gpusim::PhysAddr pa = p << gpusim::kPartitionBits;
      if (!owns_pa(pa)) continue;
      ++visited;
      if (!fn(pa)) break;
    }
    return visited;
  }

 private:
  static constexpr gpusim::VirtAddr kNone = ~uint64_t{0};

  gpusim::GpuDevice& dev_;
  gpusim::VirtAddr base_ = 0;
  uint64_t bytes_ = 0;
  std::vector<gpusim::VirtAddr> va_of_pfn_;
};

}  // namespace sgdrc::reveng
