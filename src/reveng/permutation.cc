#include "reveng/permutation.h"

#include <algorithm>
#include <set>

#include "common/error.h"

namespace sgdrc::reveng {

namespace {

// Union-find over channel ids.
struct Dsu {
  std::vector<unsigned> parent;
  explicit Dsu(unsigned n) : parent(n) {
    for (unsigned i = 0; i < n; ++i) parent[i] = i;
  }
  unsigned find(unsigned x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  }
  void unite(unsigned a, unsigned b) { parent[find(a)] = find(b); }
};

std::string pattern_key(const std::vector<int>& window) {
  std::string key;
  for (size_t i = 0; i < window.size(); ++i) {
    if (i) key += ',';
    key += static_cast<char>('A' + window[i]);
  }
  return key;
}

}  // namespace

CensusResult analyze_channel_labels(const std::vector<int>& labels,
                                    unsigned num_channels) {
  SGDRC_REQUIRE(num_channels >= 2, "need at least two channels");
  SGDRC_REQUIRE(labels.size() >= 64, "label window too small to analyse");

  for (unsigned s : {4u, 2u}) {
    if (num_channels % s != 0) continue;

    // Co-occurrence of channel pairs inside aligned windows of size s.
    std::vector<std::vector<uint64_t>> co(
        num_channels, std::vector<uint64_t>(num_channels, 0));
    uint64_t valid_windows = 0, total_windows = 0;
    for (size_t w = 0; w + s <= labels.size(); w += s) {
      ++total_windows;
      std::set<int> chans(labels.begin() + w, labels.begin() + w + s);
      if (chans.size() != s || chans.count(-1)) continue;
      ++valid_windows;
      for (int a : chans) {
        for (int b : chans) {
          if (a != b) ++co[a][b];
        }
      }
    }
    // A true region size keeps (almost) every aligned window on a single
    // group: require a 3/4 supermajority so coincidental adjacency (e.g.
    // paired channels seen through a quad window) is rejected.
    if (valid_windows * 4 < total_windows * 3) continue;

    // Channels whose co-occurrence is a large fraction of the strongest
    // signal belong to the same group; noise contributes only stray counts.
    uint64_t max_co = 0;
    for (const auto& row : co) {
      for (uint64_t v : row) max_co = std::max(max_co, v);
    }
    if (max_co == 0) continue;
    Dsu dsu(num_channels);
    for (unsigned a = 0; a < num_channels; ++a) {
      for (unsigned b = a + 1; b < num_channels; ++b) {
        if (co[a][b] * 2 > max_co) dsu.unite(a, b);
      }
    }
    std::map<unsigned, std::vector<unsigned>> comps;
    for (unsigned c = 0; c < num_channels; ++c) {
      comps[dsu.find(c)].push_back(c);
    }
    bool consistent = comps.size() == num_channels / s;
    for (const auto& [root, members] : comps) {
      consistent = consistent && members.size() == s;
    }
    if (!consistent) continue;

    CensusResult res;
    res.region_size = s;
    for (auto& [root, members] : comps) {
      std::sort(members.begin(), members.end());
      res.groups.push_back(members);
    }
    std::sort(res.groups.begin(), res.groups.end());

    // Pattern census for the group containing the lowest channel id.
    const std::set<int> target(res.groups.front().begin(),
                               res.groups.front().end());
    uint64_t bad = 0;
    for (size_t w = 0; w + s <= labels.size(); w += s) {
      std::vector<int> window(labels.begin() + w, labels.begin() + w + s);
      const std::set<int> chans(window.begin(), window.end());
      if (chans.size() != s || chans.count(-1)) {
        ++bad;
        continue;
      }
      if (chans == target) ++res.pattern_counts[pattern_key(window)];
    }
    res.inconsistent_fraction =
        total_windows
            ? static_cast<double>(bad) / static_cast<double>(total_windows)
            : 0.0;

    uint64_t total = 0;
    for (const auto& [k, v] : res.pattern_counts) total += v;
    if (total > 0 && !res.pattern_counts.empty()) {
      const double expected = static_cast<double>(total) /
                              static_cast<double>(res.pattern_counts.size());
      double worst = 0.0;
      for (const auto& [k, v] : res.pattern_counts) {
        worst = std::max(
            worst, std::abs(static_cast<double>(v) - expected) / expected);
      }
      res.pattern_uniform_deviation = worst;
    }
    return res;
  }

  CensusResult flat;
  flat.region_size = 1;
  return flat;
}

}  // namespace sgdrc::reveng
