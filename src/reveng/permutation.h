// Structure discovery over marked channel labels (§5.2, Fig. 8/9/19 and
// Tab. 4): given one label per consecutive 1 KiB partition, recover
//
//   * the channel-group structure (which channels co-occupy regions),
//   * the region size = max # contiguous channels (Tab. 4 column 3),
//   * the permutation-pattern census and its uniformity (Fig. 9).
//
// The analysis tolerates a few percent of mislabeled partitions (noise).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sgdrc::reveng {

struct CensusResult {
  /// Discovered region size in partitions (= max contiguous channels =
  /// max coloring granularity in KiB). 1 when no grouping was found.
  unsigned region_size = 1;
  /// Channel ids per discovered group (each of size region_size).
  std::vector<std::vector<unsigned>> groups;
  /// Pattern census for group 0 (the paper plots channels A&B / A..D):
  /// pattern string (e.g. "A,B") → occurrences.
  std::map<std::string, uint64_t> pattern_counts;
  /// Max relative deviation of pattern frequencies from uniform.
  double pattern_uniform_deviation = 1.0;
  /// Fraction of aligned windows whose labels were inconsistent with the
  /// discovered grouping (noise estimate).
  double inconsistent_fraction = 0.0;
};

/// Analyse `labels` (one per consecutive partition; -1 = unknown) assuming
/// `num_channels` channels. Tries region sizes 4 then 2.
CensusResult analyze_channel_labels(const std::vector<int>& labels,
                                    unsigned num_channels);

}  // namespace sgdrc::reveng
