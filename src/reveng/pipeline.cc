#include "reveng/pipeline.h"

#include <algorithm>

#include "common/error.h"
#include "common/rng.h"

namespace sgdrc::reveng {

using gpusim::kPartitionBytes;
using gpusim::PhysAddr;

HashCracker::HashCracker(gpusim::GpuDevice& dev, PipelineOptions opt)
    : dev_(dev), opt_(std::move(opt)) {}

HashCracker::~HashCracker() = default;

ChannelMarker& HashCracker::marker() {
  SGDRC_REQUIRE(marker_ != nullptr, "run() the pipeline first");
  return *marker_;
}

const Mlp& HashCracker::model() const {
  SGDRC_REQUIRE(model_ != nullptr, "run() the pipeline first");
  return *model_;
}

PipelineReport HashCracker::run() {
  PipelineReport report;
  Rng rng(opt_.seed);

  // --- Stage 1: arena + calibration (§5.1, [30]-style micro-benchmarks).
  arena_ = std::make_unique<ProbeArena>(dev_, opt_.arena_fraction);
  prober_ = std::make_unique<ConflictProber>(*arena_);
  report.calibration = prober_->calibrate(4096, rng.next_u64());

  // --- Stage 2: channel discovery. The channel count is public data
  // (Tab. 1: bus width / per-GDDR width, cross-validated by PCB photos).
  const unsigned channels =
      dev_.spec().vram_bus_width_bits / dev_.spec().bus_width_per_gddr_bits;
  MarkerOptions mopt;
  mopt.default_repeats = opt_.label_repeats;
  mopt.seed = rng.next_u64();
  marker_ = std::make_unique<ChannelMarker>(*arena_, *prober_, mopt);
  marker_->build(channels);
  report.channels = channels;

  // --- Stage 3: sample campaign with majority denoising.
  samples_.clear();
  samples_.reserve(opt_.samples);
  const uint64_t arena_parts = arena_->bytes() >> gpusim::kPartitionBits;
  size_t single_disagree = 0, single_total = 0;
  while (samples_.size() < opt_.samples) {
    const gpusim::VirtAddr va =
        arena_->base() + rng.uniform_u64(arena_parts) * kPartitionBytes;
    const PhysAddr pa = dev_.pa_of(va);
    const auto majority = marker_->label(pa);
    if (!majority) {
      ++report.samples_unlabeled;
      continue;
    }
    samples_.emplace_back(pa, *majority);
    // Estimate raw single-probe noise on a subsample.
    if (samples_.size() % 16 == 0) {
      ++single_total;
      const auto single = marker_->label_single_trial(pa);
      single_disagree += !single || *single != *majority;
    }
  }
  report.samples_collected = samples_.size();
  report.single_trial_noise =
      single_total ? static_cast<double>(single_disagree) /
                         static_cast<double>(single_total)
                   : 0.0;

  // --- Stage 4: train the DNN on bits 10..34 → discovered channel id.
  std::vector<size_t> order(samples_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.shuffle(order);
  const size_t holdout = static_cast<size_t>(
      static_cast<double>(samples_.size()) * opt_.holdout_fraction);
  const size_t train_n = samples_.size() - holdout;

  std::vector<float> train_x(train_n * Mlp::kAddressFeatures);
  std::vector<int> train_y(train_n);
  std::vector<float> hold_x(holdout * Mlp::kAddressFeatures);
  std::vector<int> hold_y(holdout);
  for (size_t i = 0; i < samples_.size(); ++i) {
    const auto& [pa, label] = samples_[order[i]];
    if (i < train_n) {
      Mlp::encode_pa(pa, &train_x[i * Mlp::kAddressFeatures]);
      train_y[i] = static_cast<int>(label);
    } else {
      const size_t j = i - train_n;
      Mlp::encode_pa(pa, &hold_x[j * Mlp::kAddressFeatures]);
      hold_y[j] = static_cast<int>(label);
    }
  }

  std::vector<size_t> arch{Mlp::kAddressFeatures};
  arch.insert(arch.end(), opt_.hidden.begin(), opt_.hidden.end());
  arch.push_back(channels);
  model_ = std::make_unique<Mlp>(arch, rng.next_u64());
  Mlp::TrainOptions topt = opt_.train;
  topt.seed = rng.next_u64();
  model_->train(train_x, train_y, topt);
  report.holdout_accuracy =
      holdout ? model_->accuracy(hold_x, hold_y) : 1.0;
  report.probes = prober_->probe_count();
  return report;
}

ChannelLut HashCracker::build_lut(PhysAddr start_pa, PhysAddr end_pa) const {
  SGDRC_REQUIRE(model_ != nullptr, "run() the pipeline first");
  return ChannelLut::from_mlp(*model_, start_pa, end_pa,
                              dev_.spec().num_channels);
}

}  // namespace sgdrc::reveng
