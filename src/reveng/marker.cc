#include "reveng/marker.h"

#include <algorithm>
#include <map>
#include <numeric>

#include "common/error.h"
#include "gpusim/address.h"

namespace sgdrc::reveng {

using gpusim::kCachelineBytes;
using gpusim::kPartitionBytes;
using gpusim::PhysAddr;

ChannelMarker::ChannelMarker(ProbeArena& arena, ConflictProber& prober,
                             MarkerOptions options)
    : arena_(arena), prober_(prober), opt_(options), rng_(options.seed) {}

void ChannelMarker::build(unsigned num_channels) {
  SGDRC_REQUIRE(num_channels >= 2, "need at least two channels");
  SGDRC_REQUIRE(fill_sets_.empty(), "marker already built");

  const auto& spec = arena_.device().spec();
  size_t fill_partitions = opt_.fill_partitions;
  if (fill_partitions == 0) {
    // 2× slice coverage: slice lines / lines-per-partition × 2.
    const uint64_t slice_lines = spec.l2_slice_bytes() / kCachelineBytes;
    fill_partitions = static_cast<size_t>(
        2 * slice_lines / (kPartitionBytes / kCachelineBytes));
  }

  const uint64_t arena_parts = arena_.bytes() >> gpusim::kPartitionBits;
  uint64_t seed_cursor = 0;
  for (unsigned c = 0; c < num_channels; ++c) {
    // Find a seed no existing fill set can evict — i.e. a new channel.
    PhysAddr seed_pa = 0;
    for (;; ++seed_cursor) {
      SGDRC_CHECK(seed_cursor < arena_parts,
                  "ran out of candidates while seeding channels");
      const gpusim::VirtAddr va =
          arena_.base() + seed_cursor * kPartitionBytes;
      const PhysAddr pa = arena_.device().pa_of(va);
      bool known = false;
      for (const auto& fill : fill_sets_) {
        if (prober_.fill_evicts(pa, fill)) {
          known = true;
          break;
        }
      }
      if (!known) {
        seed_pa = pa;
        ++seed_cursor;
        break;
      }
    }

    // Harvest same-channel partitions via DRAM bank conflicts (Algo 1/3),
    // then expand every partition into its 8 cachelines.
    std::vector<PhysAddr> partitions = prober_.find_dram_conflict_addrs(
        seed_pa, fill_partitions, opt_.scan_limit);
    partitions.push_back(seed_pa);
    SGDRC_CHECK(partitions.size() >= fill_partitions / 2,
                "could not harvest enough conflict addresses; "
                "arena too small or thresholds miscalibrated");
    std::vector<PhysAddr> fill;
    fill.reserve(partitions.size() * (kPartitionBytes / kCachelineBytes));
    for (const PhysAddr part : partitions) {
      for (uint64_t off = 0; off < kPartitionBytes; off += kCachelineBytes) {
        fill.push_back(part + off);
      }
    }
    fill_sets_.push_back(std::move(fill));
  }
}

std::optional<unsigned> ChannelMarker::label_single_trial(PhysAddr addr) {
  SGDRC_REQUIRE(built(), "build() before labelling");
  // Random probe order: a noise-induced false positive then lands on a
  // random channel instead of systematically on channel 0.
  std::vector<unsigned> order(fill_sets_.size());
  std::iota(order.begin(), order.end(), 0u);
  rng_.shuffle(order);
  for (const unsigned c : order) {
    if (prober_.fill_evicts(addr, fill_sets_[c])) return c;
  }
  return std::nullopt;
}

std::optional<unsigned> ChannelMarker::label(PhysAddr addr,
                                             unsigned repeats) {
  if (repeats == 0) repeats = opt_.default_repeats;
  std::map<unsigned, unsigned> votes;
  for (unsigned r = 0; r < repeats; ++r) {
    if (const auto c = label_single_trial(addr)) ++votes[*c];
  }
  unsigned best = 0, best_votes = 0;
  for (const auto& [c, v] : votes) {
    if (v > best_votes) {
      best = c;
      best_votes = v;
    }
  }
  if (best_votes * 2 > repeats) return best;  // strict majority
  return std::nullopt;
}

}  // namespace sgdrc::reveng
